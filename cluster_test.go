package ganc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// clusterTestPipeline trains the cheapest snapshot-compatible pipeline on a
// small deterministic universe.
func clusterTestPipeline(t *testing.T) (*Pipeline, *Universe) {
	t.Helper()
	u, err := NewUniverse(UniverseConfig{Users: 50, Items: 30, Ratings: 700, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(u.Train(),
		WithBaseNamed("Pop"),
		WithPreferences(PreferenceTFIDF),
		WithTopN(5),
		WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	return p, u
}

// TestClusterMatchesSingleNode: a routed read through the cluster must
// return exactly what a single-node server over the same pipeline returns —
// sharding partitions the work, never the answers.
func TestClusterMatchesSingleNode(t *testing.T) {
	p, u := clusterTestPipeline(t)
	single, err := NewServer(p.Train(), p, 5)
	if err != nil {
		t.Fatal(err)
	}
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()

	c, err := NewCluster(p, WithShards(3), WithClusterDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	routerTS := httptest.NewServer(c.Handler())
	defer routerTS.Close()

	get := func(base, user string) (int, RecommendResponsePayload) {
		resp, err := http.Get(base + "/recommend?user=" + user)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out RecommendResponsePayload
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	users := u.Train().UserInterner()
	seenShards := make(map[int]int)
	for k := 0; k < u.Train().NumUsers(); k++ {
		user := users.Key(int32(k))
		seenShards[c.OwnerShard(user)]++
		wantStatus, want := get(singleTS.URL, user)
		gotStatus, got := get(routerTS.URL, user)
		if gotStatus != wantStatus {
			t.Fatalf("user %s: cluster status %d, single-node %d", user, gotStatus, wantStatus)
		}
		if fmt.Sprint(got.Items) != fmt.Sprint(want.Items) {
			t.Fatalf("user %s: cluster items %v != single-node %v", user, got.Items, want.Items)
		}
	}
	if len(seenShards) != 3 {
		t.Fatalf("users hit %d shards, want all 3: %v", len(seenShards), seenShards)
	}
}

// RecommendResponsePayload mirrors the serving layer's /recommend body for
// facade-level tests.
type RecommendResponsePayload struct {
	// User and Items echo the request's user and its list.
	User  string   `json:"user"`
	Items []string `json:"items"`
	// Error carries the inline failure, if any.
	Error string `json:"error,omitempty"`
}

// TestShardSnapshotRoundTrip pins the shard-scoped snapshot format: the
// identity survives save/load, plain snapshots are refused by
// LoadShardEngine, and invalid identities are rejected at save time.
func TestShardSnapshotRoundTrip(t *testing.T) {
	p, _ := clusterTestPipeline(t)
	dir := t.TempDir()
	shardPath := dir + "/shard.snap"
	if err := p.SaveShard(shardPath, ShardIdentity{ShardID: 2, NumShards: 5, RingEpoch: 9}); err != nil {
		t.Fatal(err)
	}
	sp, id, err := LoadShardEngine(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	if id != (ShardIdentity{ShardID: 2, NumShards: 5, RingEpoch: 9}) {
		t.Fatalf("identity round-tripped as %+v", id)
	}
	if got := sp.Shard(); got == nil || *got != id {
		t.Fatalf("pipeline carries identity %+v", got)
	}
	// A shard snapshot is still a valid plain snapshot...
	if _, err := LoadEngine(shardPath); err != nil {
		t.Fatalf("LoadEngine refused a shard snapshot: %v", err)
	}
	// ...but a plain snapshot is not a shard snapshot.
	plainPath := dir + "/plain.snap"
	if err := p.Save(plainPath); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadShardEngine(plainPath); err == nil {
		t.Fatal("LoadShardEngine accepted a snapshot without shard identity")
	}
	// The original pipeline must stay identity-free after SaveShard.
	if p.Shard() != nil {
		t.Fatalf("SaveShard leaked identity %+v into the source pipeline", p.Shard())
	}
	for _, bad := range []ShardIdentity{{ShardID: -1, NumShards: 3}, {ShardID: 3, NumShards: 3}, {ShardID: 0, NumShards: 0}} {
		if err := p.SaveShard(dir+"/bad.snap", bad); err == nil {
			t.Fatalf("SaveShard accepted invalid identity %+v", bad)
		}
	}
}

// TestClusterKillRestartShard: killing a shard turns its users' requests
// into typed 503s while other shards keep serving; restarting it restores
// identical answers and replays the WAL suffix of any ingested events.
func TestClusterKillRestartShard(t *testing.T) {
	p, u := clusterTestPipeline(t)
	c, err := NewCluster(p, WithShards(2), WithClusterDir(t.TempDir()), WithRouterRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	users := u.Train().UserInterner()
	victim := 1
	victimUser, otherUser := "", ""
	for k := 0; k < u.Train().NumUsers() && (victimUser == "" || otherUser == ""); k++ {
		key := users.Key(int32(k))
		if c.OwnerShard(key) == victim {
			if victimUser == "" {
				victimUser = key
			}
		} else if otherUser == "" {
			otherUser = key
		}
	}

	get := func(user string) (int, RecommendResponsePayload) {
		resp, err := http.Get(ts.URL + "/recommend?user=" + user)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out RecommendResponsePayload
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	_, before := get(victimUser)

	// Ingest a few events owned by the victim so the restart has a WAL
	// suffix to replay (no checkpoint cadence is configured).
	events := []IngestEvent{
		{User: victimUser, Item: "brand-new-item", Value: 5},
		{User: victimUser, Item: "brand-new-item-2", Value: 4},
	}
	body, _ := json.Marshal(map[string]interface{}{"events": events})
	resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest answered %d", resp.StatusCode)
	}
	if v := c.ShardVersion(victim); v != 2 {
		t.Fatalf("victim shard version %d after one ingest batch, want 2", v)
	}
	_, afterIngest := get(victimUser)

	if err := c.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	if status, _ := get(victimUser); status != http.StatusServiceUnavailable {
		t.Fatalf("dead shard's user answered %d, want 503", status)
	}
	if status, _ := get(otherUser); status != http.StatusOK {
		t.Fatalf("live shard's user answered %d during outage", status)
	}

	replayed, err := c.RestartShard(victim)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != len(events) {
		t.Fatalf("restart replayed %d events, want %d", replayed, len(events))
	}
	status, recovered := get(victimUser)
	if status != http.StatusOK {
		t.Fatalf("restarted shard answered %d", status)
	}
	if fmt.Sprint(recovered.Items) != fmt.Sprint(afterIngest.Items) {
		t.Fatalf("post-restart answer %v != pre-kill answer %v (before ingest it was %v)",
			recovered.Items, afterIngest.Items, before.Items)
	}
	// Restart must not disturb double-kill protection.
	if _, err := c.RestartShard(victim); err == nil {
		t.Fatal("restarting a live shard succeeded")
	}
	if err := c.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.KillShard(victim); err == nil {
		t.Fatal("killing a dead shard succeeded")
	}
	if _, err := c.RestartShard(victim); err != nil {
		t.Fatal(err)
	}
}

// TestClusterIngestIsolation: events ingested through the router bump only
// the owning shard's engine generation and statistics.
func TestClusterIngestIsolation(t *testing.T) {
	p, u := clusterTestPipeline(t)
	c, err := NewCluster(p, WithShards(3), WithClusterDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	users := u.Train().UserInterner()
	target := c.OwnerShard(users.Key(0))
	events := []IngestEvent{{User: users.Key(0), Item: "fresh-item", Value: 5}}
	body, _ := json.Marshal(map[string]interface{}{"events": events})
	resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest answered %d", resp.StatusCode)
	}
	for i := 0; i < c.NumShards(); i++ {
		want := 1
		if i == target {
			want = 2
		}
		if got := c.ShardVersion(i); got != want {
			t.Fatalf("shard %d at version %d after targeted ingest, want %d", i, got, want)
		}
	}
}
