package ganc

import (
	"context"
	"fmt"
	"net/http"

	"ganc/internal/dataset"
	"ganc/internal/ingest"
	"ganc/internal/simulate"
)

// Simulation facade: deterministic synthetic universes, event/request stream
// generators, the closed-loop load driver and the scenario runner from
// internal/simulate, bound to the real Pipeline/Server/Ingestor stack. This
// is the entry point the E2E scenario suite and cmd/loadgen build on; see
// DESIGN.md §9 for the architecture.
type (
	// UniverseConfig describes a synthetic serving universe.
	UniverseConfig = simulate.UniverseConfig
	// Universe is a generated universe with deterministic stream samplers.
	Universe = simulate.Universe
	// EventStreamConfig shapes a deterministic interaction stream.
	EventStreamConfig = simulate.EventStreamConfig
	// RequestStreamConfig shapes a deterministic request stream.
	RequestStreamConfig = simulate.RequestStreamConfig
	// LoadConfig configures one closed-loop load run.
	LoadConfig = simulate.LoadConfig
	// LoadMix weights the traffic composition of a load run.
	LoadMix = simulate.LoadMix
	// LoadResult is the measurement of one load run.
	LoadResult = simulate.LoadResult
	// LatencyStats summarizes a latency distribution.
	LatencyStats = simulate.LatencyStats
	// BenchReport is the BENCH_serve.json document.
	BenchReport = simulate.BenchReport
	// ClusterBenchReport is the BENCH_cluster.json document (single node vs
	// N-shard cluster under the same load and per-node cache budget).
	ClusterBenchReport = simulate.ClusterBenchReport
	// FailoverReport is the failover section of BENCH_cluster.json: a
	// read-only run spanning a mid-run primary kill against a replicated
	// cluster.
	FailoverReport = simulate.FailoverReport
	// ReshardReport is the reshard section of BENCH_cluster.json: a mixed
	// read/write run spanning a mid-run elastic grow of the cluster.
	ReshardReport = simulate.ReshardReport
	// AutoFailoverReport is the auto-failover section of BENCH_cluster.json:
	// a read-only run spanning a mid-run primary kill with no operator
	// promotion — the failure detector must promote on its own.
	AutoFailoverReport = simulate.AutoFailoverReport
	// Scenario is a system lifecycle expressed as a phase list.
	Scenario = simulate.Scenario
	// ScenarioPhase is one step of a Scenario.
	ScenarioPhase = simulate.Phase
	// ScenarioResult is the per-phase record of one scenario run.
	ScenarioResult = simulate.Result
	// ScenarioSystem is the stack abstraction the scenario runner drives.
	ScenarioSystem = simulate.System
)

// Scenario phase kinds, re-exported for scenario literals.
const (
	PhaseTrain          = simulate.PhaseTrain
	PhaseSave           = simulate.PhaseSave
	PhaseLoad           = simulate.PhaseLoad
	PhaseServeUnderLoad = simulate.PhaseServeUnderLoad
	PhaseIngestChurn    = simulate.PhaseIngestChurn
	PhaseKillAndRecover = simulate.PhaseKillAndRecover
	// PhaseOverload offers load beyond the system's admission capacity and
	// asserts graceful degradation: typed 429s, zero 5xx, bounded p99 for the
	// requests that were served. Requires a system built with admission
	// control (see SimSystemConfig.Admission).
	PhaseOverload = simulate.PhaseOverload
)

// NewUniverse generates a synthetic serving universe. Deterministic: the same
// configuration yields the byte-identical dataset and streams.
func NewUniverse(cfg UniverseConfig) (*Universe, error) { return simulate.NewUniverse(cfg) }

// RunLoad drives the closed-loop mixed-traffic driver against the server at
// cfg.BaseURL, generating requests from the universe's streams.
func RunLoad(ctx context.Context, u *Universe, cfg LoadConfig) (*LoadResult, error) {
	return simulate.RunLoad(ctx, u, cfg)
}

// WriteBenchReport writes a load measurement as an indented-JSON benchmark
// artifact (BENCH_serve.json), atomically.
func WriteBenchReport(path string, rep *BenchReport) error {
	return simulate.WriteBenchReport(path, rep)
}

// WriteClusterBenchReport writes the single-node vs cluster comparison as
// an indented-JSON benchmark artifact (BENCH_cluster.json), atomically.
func WriteClusterBenchReport(path string, rep *ClusterBenchReport) error {
	return simulate.WriteClusterBenchReport(path, rep)
}

// SimSystemConfig describes the pipeline a scenario system assembles: a
// registry base, a θ model and the serving knobs. Every component must be
// snapshot-compatible (see Pipeline.Save) because scenarios exercise the
// persistence and ingestion lifecycles.
type SimSystemConfig struct {
	// Base is the registry base name (default "Pop", the cheapest to train).
	Base string
	// Theta selects the θ estimator (default PreferenceTFIDF: deterministic
	// and cheap at scale).
	Theta PreferenceModel
	// CacheCapacity bounds the serving LRU (0 = serving default).
	CacheCapacity int
	// Workers drives the pipeline's parallel phases (0 = sequential).
	Workers int
	// Seed drives training and θ estimation.
	Seed int64
	// Metrics mounts GET /metrics on the system's serving surface (a fresh
	// registry per served generation), so scenario phases can scrape and
	// validate the exposition mid-run.
	Metrics bool
	// Admission applies admission control (per-client rate limiting and/or a
	// concurrency cap) on the serving surface. The zero value disables it;
	// overload phases require it.
	Admission AdmissionConfig
}

// withDefaults fills the optional fields.
func (c SimSystemConfig) withDefaults() SimSystemConfig {
	if c.Base == "" {
		c.Base = "Pop"
	}
	if c.Theta == "" {
		c.Theta = PreferenceTFIDF
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// NewScenarioSystem binds the Pipeline/Server/Ingestor stack to the scenario
// runner's System interface.
func NewScenarioSystem(cfg SimSystemConfig) ScenarioSystem {
	return &pipelineSystem{cfg: cfg.withDefaults()}
}

// RunScenario executes a scenario against the real stack, using dir for the
// snapshot and write-ahead-log files. It is the one-call surface of the E2E
// suite: every assertion (warm-start parity, recovery equivalence, error-free
// serving under churn) is enforced by the runner and surfaces as an error.
func RunScenario(ctx context.Context, sc Scenario, dir string, cfg SimSystemConfig) (*ScenarioResult, error) {
	r := &simulate.Runner{
		NewSystem: func() simulate.System { return NewScenarioSystem(cfg) },
		Dir:       dir,
	}
	return r.Run(ctx, sc)
}

// pipelineSystem is the production binding of simulate.System: a Pipeline
// serving through serve.Server, persisted with Pipeline.Save/LoadEngine and
// ingesting through NewIngestor — exactly the assembly cmd/ganc stands up.
type pipelineSystem struct {
	cfg  SimSystemConfig
	topN int

	pipe *Pipeline
	srv  *Server
	ing  *Ingestor

	// Ingestion wiring survives Kill so Recover can re-attach it.
	ingestEnabled   bool
	logPath         string
	checkpointPath  string
	checkpointEvery int
}

// Train implements simulate.System.
func (s *pipelineSystem) Train(train *dataset.Dataset, topN int) error {
	p, err := NewPipeline(train,
		WithBaseNamed(s.cfg.Base),
		WithPreferences(s.cfg.Theta),
		WithTopN(topN),
		WithWorkers(s.cfg.Workers),
		WithSeed(s.cfg.Seed))
	if err != nil {
		return err
	}
	s.pipe, s.topN = p, topN
	return s.serve()
}

// serve stands the HTTP layer up around the current pipeline.
func (s *pipelineSystem) serve() error {
	opts := []ServerOption{}
	if s.cfg.CacheCapacity > 0 {
		opts = append(opts, WithServerCacheCapacity(s.cfg.CacheCapacity))
	}
	if s.cfg.Metrics {
		opts = append(opts, WithMetrics(NewMetricsRegistry()))
	}
	if c := NewAdmission(s.cfg.Admission); c != nil {
		opts = append(opts, WithServerAdmission(c))
	}
	srv, err := NewServer(s.pipe.Train(), s.pipe, s.topN, opts...)
	if err != nil {
		return err
	}
	s.srv = srv
	return nil
}

// Handler implements simulate.System.
func (s *pipelineSystem) Handler() (http.Handler, error) {
	if s.srv == nil {
		return nil, fmt.Errorf("ganc: scenario system is not serving (killed or untrained)")
	}
	return s.srv.Handler(), nil
}

// Save implements simulate.System.
func (s *pipelineSystem) Save(path string) error {
	if s.pipe == nil {
		return fmt.Errorf("ganc: scenario system has no pipeline to save")
	}
	return s.pipe.Save(path)
}

// Load implements simulate.System: restore the snapshot and serve it, exactly
// like a warm-started process — including re-attaching ingestion when it was
// enabled, so a reloaded system keeps accepting events (Recover then replays
// any write-ahead-log suffix past the restored cursor).
func (s *pipelineSystem) Load(path string) error {
	p, err := LoadEngine(path)
	if err != nil {
		return err
	}
	if s.ing != nil {
		// Release the old WAL handle before the successor reopens it.
		if err := s.ing.Close(); err != nil {
			return err
		}
		s.ing = nil
	}
	s.pipe = p
	s.topN = p.TopN()
	if err := s.serve(); err != nil {
		return err
	}
	if s.ingestEnabled {
		return s.attachIngest()
	}
	return nil
}

// EnableIngest implements simulate.System.
func (s *pipelineSystem) EnableIngest(logPath, checkpointPath string, every int) error {
	s.ingestEnabled = true
	s.logPath, s.checkpointPath, s.checkpointEvery = logPath, checkpointPath, every
	return s.attachIngest()
}

// attachIngest wires an ingestor around the current pipeline/server pair.
func (s *pipelineSystem) attachIngest() error {
	if s.pipe == nil {
		return fmt.Errorf("ganc: cannot enable ingestion before training")
	}
	opts := []IngestorOption{}
	if s.logPath != "" {
		opts = append(opts, WithIngestLog(s.logPath))
	}
	if s.checkpointPath != "" {
		opts = append(opts, WithIngestCheckpoint(s.checkpointPath, s.checkpointEvery))
	}
	ing, err := NewIngestor(s.srv, s.pipe, opts...)
	if err != nil {
		return err
	}
	s.ing = ing
	return nil
}

// Ingest implements simulate.System (the shadow's direct path).
func (s *pipelineSystem) Ingest(ctx context.Context, events []IngestEvent) error {
	if s.ing == nil {
		return fmt.Errorf("ganc: ingestion is not enabled on this scenario system")
	}
	_, err := s.ing.Apply(ctx, events)
	return err
}

// Recover implements simulate.System: after Load, re-attach ingestion and
// replay the write-ahead-log suffix past the checkpoint cursor.
func (s *pipelineSystem) Recover() (int, error) {
	if !s.ingestEnabled {
		return 0, nil
	}
	if s.ing == nil {
		if err := s.attachIngest(); err != nil {
			return 0, err
		}
	}
	return s.ing.Recover()
}

// Kill implements simulate.System: drop everything in memory and release the
// WAL handle; durable files survive for Load/Recover.
func (s *pipelineSystem) Kill() error {
	var err error
	if s.ing != nil {
		err = s.ing.Close()
	}
	s.pipe, s.srv, s.ing = nil, nil, nil
	return err
}

// Fingerprint implements simulate.System. The batch sweep mutates Dyn
// coverage state, so it never runs on the live pipeline: the sweep runs on a
// throwaway clone rebuilt from the current ingestion state (or an equivalent
// fresh state for systems that never ingested), leaving serving untouched.
func (s *pipelineSystem) Fingerprint(ctx context.Context) ([]byte, error) {
	if s.pipe == nil {
		return nil, fmt.Errorf("ganc: cannot fingerprint a killed scenario system")
	}
	return fingerprintPipeline(ctx, s.pipe, s.ing, nil)
}

// fingerprintPipeline computes the canonical batch fingerprint of a
// pipeline's current state (live ingestor state when ing is non-nil, an
// equivalent fresh view otherwise), sweeping a throwaway clone so serving
// state is never disturbed. A non-nil keep predicate restricts the
// fingerprint to the users it accepts — the shard-scoped form.
func fingerprintPipeline(ctx context.Context, p *Pipeline, ing *Ingestor, keep func(userKey string) bool) ([]byte, error) {
	kind, err := p.baseKind()
	if err != nil {
		return nil, err
	}
	covName, err := p.coverageName()
	if err != nil {
		return nil, err
	}
	viewIng := ing
	if viewIng == nil {
		// No live ingestor: derive a state view the same way NewIngestor
		// would, without attaching anything to the server.
		viewIng, err = NewIngestor(nil, p)
		if err != nil {
			return nil, err
		}
	}
	var clone *Pipeline
	var cloneErr error
	viewIng.View(func(st *ingest.State) {
		clone, cloneErr = p.pipelineFromState(kind, covName, st)
	})
	if cloneErr != nil {
		return nil, cloneErr
	}
	recs, err := clone.RecommendAll(ctx)
	if err != nil {
		return nil, err
	}
	fp := simulate.CanonicalRecommendations(clone.Train(), recs)
	if keep == nil {
		return fp, nil
	}
	return simulate.FilterCanonical(fp, keep), nil
}
