package ganc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// persistSplit builds the small synthetic split shared by the persistence
// round-trip tests.
func persistSplit(t *testing.T, seed int64) *Split {
	t.Helper()
	data, err := GenerateML100K(0.08)
	if err != nil {
		t.Fatal(err)
	}
	return SplitByUser(data, 0.8, rand.New(rand.NewSource(seed)))
}

// assertRecsIdentical fails unless the two collections are byte-identical:
// same users, same lists, same order.
func assertRecsIdentical(t *testing.T, label string, got, want Recommendations) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: user counts differ: %d vs %d", label, len(got), len(want))
	}
	for _, u := range want.SortedUsers() {
		gotSet, wantSet := got[u], want[u]
		if len(gotSet) != len(wantSet) {
			t.Fatalf("%s: user %d list sizes differ: %v vs %v", label, u, gotSet, wantSet)
		}
		for k := range wantSet {
			if gotSet[k] != wantSet[k] {
				t.Fatalf("%s: user %d: loaded %v != saved %v", label, u, gotSet, wantSet)
			}
		}
	}
}

// buildPersistablePipeline assembles a pipeline for the named base kind on
// cheap-to-train configurations.
func buildPersistablePipeline(t *testing.T, train *Dataset, base string) *Pipeline {
	t.Helper()
	opts := []PipelineOption{
		WithTopN(5),
		WithPreferences(PreferenceTFIDF),
		WithSeed(7),
	}
	switch base {
	case "RSVD":
		cfg := DefaultRSVDConfig()
		cfg.Factors = 6
		cfg.Epochs = 2
		cfg.Seed = 7
		m, err := TrainRSVD(train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		opts = append(opts, WithBase(m))
	case "PSVD":
		m, err := TrainPSVD(train, PSVDConfig{Factors: 5, PowerIterations: 1, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		opts = append(opts, WithBase(m))
	case "ItemKNN":
		cfg := DefaultItemKNNConfig()
		cfg.Neighbors = 10
		m, err := TrainItemKNN(train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		opts = append(opts, WithBase(m))
	case "CofiRank":
		m, err := TrainCofi(train, CofiConfig{
			Factors: 6, Regularization: 0.05, LearningRate: 0.02,
			Epochs: 2, InitStd: 0.1, Seed: 7, PairsPerUser: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		opts = append(opts, WithBase(m))
	default: // registry kinds trained by name (Pop, ItemAvg)
		opts = append(opts, WithBaseNamed(base))
	}
	p, err := NewPipeline(train, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSaveLoadRoundTripByteIdentical is the acceptance property: for every
// persistable base kind, a loaded engine must produce byte-identical
// RecommendAll output to the engine that saved it, and agree online as well.
func TestSaveLoadRoundTripByteIdentical(t *testing.T) {
	split := persistSplit(t, 31)
	dir := t.TempDir()
	for _, base := range []string{"Pop", "ItemAvg", "RSVD", "PSVD", "ItemKNN", "CofiRank"} {
		base := base
		t.Run(base, func(t *testing.T) {
			p := buildPersistablePipeline(t, split.Train, base)
			path := filepath.Join(dir, base+".snap")
			if err := p.Save(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadEngine(path)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Name() != p.Name() {
				t.Fatalf("loaded pipeline %q != saved %q", loaded.Name(), p.Name())
			}
			ctx := context.Background()
			// Online parity first (before any batch sweep mutates Dyn state).
			for u := UserID(0); u < 5; u++ {
				a, err := p.RecommendUser(ctx, u, 5)
				if err != nil {
					t.Fatal(err)
				}
				b, err := loaded.RecommendUser(ctx, u, 5)
				if err != nil {
					t.Fatal(err)
				}
				assertRecsIdentical(t, base+" online", Recommendations{u: b}, Recommendations{u: a})
			}
			want, err := p.RecommendAll(ctx)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.RecommendAll(ctx)
			if err != nil {
				t.Fatal(err)
			}
			assertRecsIdentical(t, base, got, want)
		})
	}
}

// TestSaveLoadPreservesDynState checks that accumulated Dyn frequencies
// survive the round trip: an engine saved *after* a batch sweep must reload
// with the discounted coverage state, not a zeroed one.
func TestSaveLoadPreservesDynState(t *testing.T) {
	split := persistSplit(t, 37)
	p := buildPersistablePipeline(t, split.Train, "Pop")
	ctx := context.Background()
	if _, err := p.RecommendAll(ctx); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "warm.snap")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(path)
	if err != nil {
		t.Fatal(err)
	}
	// Both engines now hold the post-sweep frequency state; their next
	// outputs must again be identical.
	want, err := p.RecommendAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.RecommendAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertRecsIdentical(t, "post-sweep", got, want)
}

// TestLoadEngineErrorPaths exercises the corrupted/truncated/unsupported
// snapshot failure modes: every one must yield a matchable error, never a
// panic or a silently wrong engine.
func TestLoadEngineErrorPaths(t *testing.T) {
	split := persistSplit(t, 41)
	p := buildPersistablePipeline(t, split.Train, "Pop")
	dir := t.TempDir()
	path := filepath.Join(dir, "good.snap")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("missing file", func(t *testing.T) {
		if _, err := LoadEngine(filepath.Join(dir, "nope.snap")); err == nil {
			t.Fatal("expected an error for a missing snapshot")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := filepath.Join(dir, "magic.snap")
		if err := os.WriteFile(bad, []byte("definitely not a snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadEngine(bad); !errors.Is(err, ErrSnapshotBadMagic) {
			t.Fatalf("err = %v, want ErrSnapshotBadMagic", err)
		}
	})
	t.Run("unsupported version", func(t *testing.T) {
		buf := append([]byte("GANCSNAP"), 0, 0, 0, 0, 0, 0, 0, 0)
		binary.BigEndian.PutUint32(buf[8:], 99)
		bad := filepath.Join(dir, "future.snap")
		if err := os.WriteFile(bad, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadEngine(bad); !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("err = %v, want ErrSnapshotVersion", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{10, 40, len(raw) / 2, len(raw) - 3} {
			bad := filepath.Join(dir, fmt.Sprintf("trunc%d.snap", cut))
			if err := os.WriteFile(bad, raw[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadEngine(bad); !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("cut %d: err = %v, want ErrSnapshotCorrupt", cut, err)
			}
		}
	})
	t.Run("bit flip", func(t *testing.T) {
		flipped := append([]byte(nil), raw...)
		flipped[len(flipped)/2] ^= 0x10
		bad := filepath.Join(dir, "flip.snap")
		if err := os.WriteFile(bad, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadEngine(bad); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
		}
	})
}

// TestSaveRejectsUnsupportedComponents: custom accuracy recommenders and the
// Rand coverage baseline have no snapshot codec and must fail loudly.
func TestSaveRejectsUnsupportedComponents(t *testing.T) {
	split := persistSplit(t, 43)
	dir := t.TempDir()

	randCov, err := NewPipeline(split.Train, WithBaseNamed("Pop"), WithCoverage(CoverageRand()), WithTopN(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := randCov.Save(filepath.Join(dir, "rand.snap")); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Fatalf("Rand coverage: err = %v, want ErrSnapshotUnsupported", err)
	}

	custom, err := NewPipeline(split.Train, WithAccuracy(constantAccuracy{}), WithTopN(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := custom.Save(filepath.Join(dir, "custom.snap")); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Fatalf("custom accuracy: err = %v, want ErrSnapshotUnsupported", err)
	}
}

// constantAccuracy is a minimal custom accuracy recommender for the
// unsupported-component test.
type constantAccuracy struct{}

func (constantAccuracy) AccuracyScore(UserID, ItemID) float64 { return 0.5 }
func (constantAccuracy) Name() string                         { return "Const" }
