package ganc

// Sweep benchmarks: the candidate-pipeline refactor's acceptance gate. Each
// benchmark runs the same GANC(Pop, θ^G, Dyn) assembly on the medium synth
// preset (ML-1M) through both the buffered/CELF pipeline and the preserved
// pre-refactor per-pick rescan path (core.GANC.ReferenceRecommendAll), so
// `go test -bench RecommendAll -benchmem` prints the speedup and allocation
// ratio directly, and cmd/bench records them in BENCH_sweep.json.

import (
	"context"
	"math/rand"
	"testing"

	"ganc/internal/longtail"
)

// sweepBenchScale sizes the medium preset; ML1M at 0.5 gives ~750 users and
// ~460 items, big enough that per-pick rescans dominate and small enough for
// a CI smoke run.
const sweepBenchScale = 0.5

// sweepBenchPipeline assembles GANC(Pop, θ^G, Dyn) on the ML-1M stand-in.
func sweepBenchPipeline(tb testing.TB) *Pipeline {
	tb.Helper()
	data, err := GenerateML1M(sweepBenchScale)
	if err != nil {
		tb.Fatal(err)
	}
	split := SplitByUser(data, 0.8, rand.New(rand.NewSource(77)))
	prefs, err := longtail.Estimate(longtail.ModelGeneralized, split.Train, nil, 0, 77)
	if err != nil {
		tb.Fatal(err)
	}
	p, err := NewPipeline(split.Train,
		WithBaseNamed("Pop"),
		WithPreferenceVector(prefs),
		WithCoverage(CoverageDyn()),
		WithTopN(10),
		WithSampleSize(split.Train.NumUsers()/10),
		WithSeed(77))
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// BenchmarkRecommendAll compares the full batch sweep: the buffered/CELF
// candidate pipeline vs the pre-refactor per-pick rescan reference.
func BenchmarkRecommendAll(b *testing.B) {
	b.Run("pipeline", func(b *testing.B) {
		p := sweepBenchPipeline(b)
		// Warm the Pop accuracy membership cache so both sub-benchmarks
		// measure the steady-state sweep, not one-time cache fills.
		if _, err := p.RecommendAll(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.RecommendAll(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		p := sweepBenchPipeline(b)
		_ = p.GANC().ReferenceRecommendAll()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = p.GANC().ReferenceRecommendAll()
		}
	})
}

// BenchmarkRecommendUser compares one online request (frozen Dyn snapshot
// sweep) through both paths, after a batch pass has warmed the Dyn state.
func BenchmarkRecommendUser(b *testing.B) {
	ctx := context.Background()
	b.Run("pipeline", func(b *testing.B) {
		p := sweepBenchPipeline(b)
		if _, err := p.RecommendAll(ctx); err != nil {
			b.Fatal(err)
		}
		users := p.Train().NumUsers()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.RecommendUser(ctx, UserID(i%users), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		p := sweepBenchPipeline(b)
		if _, err := p.RecommendAll(ctx); err != nil {
			b.Fatal(err)
		}
		users := p.Train().NumUsers()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.GANC().ReferenceRecommendUser(ctx, UserID(i%users), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
