//go:build e2e

package ganc

import (
	"context"
	"runtime"
	"testing"
	"time"

	"ganc/internal/simtest"
)

// The tier-2 E2E scenario suite: full system lifecycles — train, snapshot,
// reload, serve under closed-loop load, ingest churn, crash and recover —
// driven by the internal/simulate scenario runner against the real
// Pipeline/Server/Ingestor stack. Build-tagged e2e and run under -race by the
// CI e2e job:
//
//	go test -race -tags e2e -run TestScenario .
//
// Every assertion lives in the runner: warm-start parity (PhaseLoad),
// recovery equivalence against an uninterrupted shadow (PhaseKillAndRecover)
// and error-free serving (PhaseServeUnderLoad, PhaseIngestChurn) all fail the
// scenario with a descriptive error.

// e2eUniverse is the shared tier-2 universe fixture (internal/simtest):
// large enough to exercise real eviction/coalescing behavior but small
// enough for -race throughput.
func e2eUniverse(seed int64) UniverseConfig {
	return simtest.E2E(seed)
}

// e2eSystem is the standard system under test from the shared fixture
// parameters: the cheapest snapshot-compatible pipeline, so scenario time
// goes to lifecycle coverage rather than training.
func e2eSystem() SimSystemConfig {
	return SimSystemConfig{
		Base:  simtest.StandardBase,
		Theta: ParsePreferenceModel(simtest.StandardTheta),
		Seed:  simtest.StandardSeed,
	}
}

// TestScenarioWarmStartParity: train → save → serve under load → reload the
// snapshot → serve again. The runner asserts the reloaded system's batch
// output is byte-identical to the trained one's, and that no request fails
// before or after the swap.
func TestScenarioWarmStartParity(t *testing.T) {
	sc := Scenario{
		Name:     "warm-start-parity",
		Universe: e2eUniverse(11),
		TopN:     10,
		Seed:     23,
		Phases: []ScenarioPhase{
			{Kind: PhaseTrain},
			{Kind: PhaseSave},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8},
			{Kind: PhaseLoad},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8},
		},
	}
	res, err := RunScenario(context.Background(), sc, t.TempDir(), e2eSystem())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Phases[3].ParityChecked {
		t.Fatal("load phase did not assert warm-start parity")
	}
	for _, k := range []int{2, 4} {
		load := res.Phases[k].Load
		if load == nil || load.Requests == 0 {
			t.Fatalf("serve phase %d recorded no load result", k)
		}
		if load.CacheHitRate <= 0 {
			t.Fatalf("serve phase %d saw no cache hits (rate %v)", k, load.CacheHitRate)
		}
	}
}

// TestScenarioKillRecoverEquivalence: the crash-consistency property at
// system level. Events stream through POST /ingest with a WAL and periodic
// checkpoints; the process is killed between checkpoints, restored from the
// last checkpoint and replays the WAL suffix. The runner asserts the
// recovered output is byte-identical to an uninterrupted shadow system that
// absorbed the same events, then serving resumes error-free.
func TestScenarioKillRecoverEquivalence(t *testing.T) {
	sc := Scenario{
		Name:            "kill-and-recover",
		Universe:        e2eUniverse(13),
		TopN:            10,
		CheckpointEvery: 75,
		Seed:            29,
		Phases: []ScenarioPhase{
			{Kind: PhaseTrain},
			{Kind: PhaseSave},
			{Kind: PhaseIngestChurn, Events: 200, EventBatch: 30, Concurrency: 4},
			{Kind: PhaseKillAndRecover},
			{Kind: PhaseServeUnderLoad, Requests: 300, Concurrency: 8},
		},
	}
	res, err := RunScenario(context.Background(), sc, t.TempDir(), e2eSystem())
	if err != nil {
		t.Fatal(err)
	}
	churn, kr := res.Phases[2], res.Phases[3]
	if churn.EventsApplied != 200 {
		t.Fatalf("churn applied %d events, want 200", churn.EventsApplied)
	}
	if churn.ReaderRequests == 0 {
		t.Fatal("no concurrent read traffic during churn")
	}
	if !kr.ParityChecked {
		t.Fatal("kill-and-recover did not assert equivalence")
	}
	// Batches of 30 with cadence 75 checkpoint at 90 and 180 events, leaving
	// a 20-event WAL suffix the recovery must replay.
	if kr.Replayed != 20 {
		t.Fatalf("recovery replayed %d events, want the 20-event WAL suffix", kr.Replayed)
	}
}

// TestScenarioOverloadGracefulDegradation: drive offered load well past the
// admission budget and assert the system degrades gracefully — typed 429s
// with Retry-After, zero 5xx, bounded served-request p99 — while /metrics
// stays scrapeable mid-scenario and parses under the strict text-format
// parser. The token bucket (1 req/s, burst 8) against 300 closed-loop
// requests from one client key makes shedding an arithmetic certainty, so
// the assertion is deterministic under the scenario seed.
func TestScenarioOverloadGracefulDegradation(t *testing.T) {
	cfg := e2eSystem()
	cfg.Metrics = true
	cfg.Admission = AdmissionConfig{RatePerSec: 1, Burst: 8}
	sc := Scenario{
		Name:     "overload-graceful-degradation",
		Universe: e2eUniverse(19),
		TopN:     10,
		Seed:     37,
		Phases: []ScenarioPhase{
			{Kind: PhaseTrain},
			{Kind: PhaseOverload, Requests: 300, Concurrency: 8},
		},
	}
	res, err := RunScenario(context.Background(), sc, t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ov := res.Phases[1]
	if ov.Load == nil || ov.Load.Requests == 0 {
		t.Fatal("overload phase recorded no load result")
	}
	if ov.Load.Shed == 0 {
		t.Fatalf("overload shed nothing across %d requests", ov.Load.Requests)
	}
	if ov.Load.Errors != 0 {
		t.Fatalf("overload produced %d hard errors; degradation must be 429s, not 5xx", ov.Load.Errors)
	}
	if !ov.MetricsValidated {
		t.Fatal("mid-scenario /metrics scrape was not validated")
	}
}

// TestScenarioIngestChurnUnderLoad: sustained concurrent ingestion against
// read traffic, twice, with no crash — the no-panic/no-leak property. The
// goroutine census before and after bounds leaks from the serving layer's
// coalescing and the ingestor's swap path.
func TestScenarioIngestChurnUnderLoad(t *testing.T) {
	before := goroutineCensus()
	sc := Scenario{
		Name:            "ingest-churn-under-load",
		Universe:        e2eUniverse(17),
		TopN:            10,
		CheckpointEvery: 0, // WAL only: churn without snapshot pauses
		Seed:            31,
		Phases: []ScenarioPhase{
			{Kind: PhaseTrain},
			{Kind: PhaseSave},
			{Kind: PhaseIngestChurn, Events: 300, EventBatch: 20, Concurrency: 8},
			{Kind: PhaseServeUnderLoad, Requests: 300, Concurrency: 8, Mix: LoadMix{Recommend: 80, Batch: 10, Ingest: 10}},
			{Kind: PhaseIngestChurn, Events: 200, EventBatch: 20, Concurrency: 8},
		},
	}
	res, err := RunScenario(context.Background(), sc, t.TempDir(), e2eSystem())
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res.Phases {
		if pr.ReaderErrors != 0 {
			t.Fatalf("phase %s: %d reader errors", pr.Kind, pr.ReaderErrors)
		}
	}
	serveRes := res.Phases[3].Load
	if serveRes.EndVersion <= serveRes.StartVersion {
		t.Fatalf("ingest traffic never republished the engine (version %d → %d)",
			serveRes.StartVersion, serveRes.EndVersion)
	}
	after := goroutineCensus()
	// Allow slack for runtime helpers, but catch per-request or per-batch
	// goroutine leaks (hundreds of requests ran).
	if after > before+10 {
		t.Fatalf("goroutine census grew from %d to %d: serving leaked", before, after)
	}
}

// goroutineCensus samples the goroutine count after letting transient
// HTTP/test goroutines drain.
func goroutineCensus() int {
	n := runtime.NumGoroutine()
	for k := 0; k < 50; k++ {
		time.Sleep(10 * time.Millisecond)
		m := runtime.NumGoroutine()
		if m >= n {
			return n
		}
		n = m
	}
	return n
}
