package ganc

import (
	"context"
	"math/rand"
	"strings"
	"testing"
)

func pipelineFixture(t *testing.T) *Split {
	t.Helper()
	data, err := GenerateML100K(0.12)
	if err != nil {
		t.Fatal(err)
	}
	return SplitByUser(data, 0.8, rand.New(rand.NewSource(7)))
}

func TestPipelineValidation(t *testing.T) {
	split := pipelineFixture(t)
	if _, err := NewPipeline(nil, WithBaseNamed("Pop")); err == nil {
		t.Fatal("nil train accepted")
	}
	if _, err := NewPipeline(split.Train); err == nil {
		t.Fatal("pipeline without an accuracy source accepted")
	}
	if _, err := NewPipeline(split.Train, WithBaseNamed("Pop"), WithBase(NewPop(split.Train))); err == nil {
		t.Fatal("two accuracy sources accepted")
	}
	if _, err := NewPipeline(split.Train, WithBaseNamed("Pop"), WithTopN(0)); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := NewPipeline(split.Train, WithBaseNamed("Pop"), WithSampleSize(-1)); err == nil {
		t.Fatal("negative sample size accepted")
	}
	if _, err := NewPipeline(split.Train, WithBaseNamed("NoSuchModel")); err == nil {
		t.Fatal("unknown base name accepted")
	}
}

// TestPipelineOnlineMatchesFreshBatch verifies the core online-serving
// contract: RecommendUser on a fresh pipeline (Dyn frequencies all zero)
// agrees with the first sweep the batch path would make, and repeated online
// calls are deterministic and mutate nothing.
func TestPipelineOnlineMatchesFreshBatch(t *testing.T) {
	split := pipelineFixture(t)
	const n = 5
	ctx := context.Background()

	p, err := NewPipeline(split.Train,
		WithBaseNamed("Pop"),
		WithCoverage(CoverageStat()), // stateless coverage → online == batch exactly
		WithTopN(n),
		WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := p.RecommendAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 5 && u < split.Train.NumUsers(); u++ {
		online, err := p.RecommendUser(ctx, UserID(u), n)
		if err != nil {
			t.Fatal(err)
		}
		if len(online) != len(batch[UserID(u)]) {
			t.Fatalf("user %d: online %v vs batch %v", u, online, batch[UserID(u)])
		}
		for k := range online {
			if online[k] != batch[UserID(u)][k] {
				t.Fatalf("user %d: online %v vs batch %v", u, online, batch[UserID(u)])
			}
		}
	}

	// Dyn coverage: online calls must be deterministic (no state mutation).
	pd, err := NewPipeline(split.Train, WithBaseNamed("Pop"), WithTopN(n), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	first, err := pd.RecommendUser(ctx, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	second, err := pd.RecommendUser(ctx, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != n || len(second) != n {
		t.Fatalf("online lists wrong length: %d / %d", len(first), len(second))
	}
	for k := range first {
		if first[k] != second[k] {
			t.Fatalf("online recommendation not deterministic: %v vs %v", first, second)
		}
	}

	// Out-of-range users and canceled contexts error instead of panicking.
	if _, err := pd.RecommendUser(ctx, UserID(split.Train.NumUsers()), n); err == nil {
		t.Fatal("out-of-range user accepted")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := pd.RecommendUser(canceled, 0, n); err == nil {
		t.Fatal("canceled context accepted")
	}
}

func TestPipelineIsAnEngine(t *testing.T) {
	split := pipelineFixture(t)
	p, err := NewPipeline(split.Train, WithBaseNamed("Pop"), WithTopN(4), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	var e Engine = p
	if e.TopN() != 4 {
		t.Fatalf("TopN %d, want 4", e.TopN())
	}
	if !strings.HasPrefix(e.Name(), "GANC(") {
		t.Fatalf("engine name %q", e.Name())
	}
}

func TestRegistryBasesAndRerankers(t *testing.T) {
	split := pipelineFixture(t)
	for _, name := range []string{"Pop", "Rand", "ItemAvg"} {
		s, err := NewBaseScorer(name, split.Train, 7)
		if err != nil {
			t.Fatalf("base %s: %v", name, err)
		}
		recs, err := NewBaseEngine(s, split.Train, 3).RecommendAll(context.Background())
		if err != nil {
			t.Fatalf("base %s: %v", name, err)
		}
		if len(recs) != split.Train.NumUsers() {
			t.Fatalf("base %s: %d users recommended", name, len(recs))
		}
	}
	if _, err := NewBaseScorer("NoSuchModel", split.Train, 7); err == nil {
		t.Fatal("unknown base accepted")
	}

	base, err := NewBaseScorer("Pop", split.Train, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"RBT-Pop", "PRA-10", "GANC"} {
		e, err := NewReranker(name, split.Train, base, 3, 7)
		if err != nil {
			t.Fatalf("reranker %s: %v", name, err)
		}
		set, err := e.RecommendUser(context.Background(), 0, 3)
		if err != nil {
			t.Fatalf("reranker %s online: %v", name, err)
		}
		if len(set) == 0 {
			t.Fatalf("reranker %s produced an empty list", name)
		}
	}
	if _, err := NewReranker("NoSuchReranker", split.Train, base, 3, 7); err == nil {
		t.Fatal("unknown reranker accepted")
	}

	// The registries enumerate their built-ins.
	if len(BaseNames()) < 7 || len(RerankerNames()) < 6 {
		t.Fatalf("registry incomplete: bases %v, rerankers %v", BaseNames(), RerankerNames())
	}
}

func TestStaticEngine(t *testing.T) {
	recs := Recommendations{0: {1, 2}, 1: {0}}
	if _, err := NewStaticEngine("m", nil, 2); err == nil {
		t.Fatal("empty collection accepted")
	}
	e, err := NewStaticEngine("m", recs, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	set, err := e.RecommendUser(ctx, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[0] != 1 {
		t.Fatalf("static engine truncation wrong: %v", set)
	}
	if _, err := e.RecommendUser(ctx, 99, 1); err == nil {
		t.Fatal("missing user should error")
	}
	all, err := e.RecommendAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("static RecommendAll %d users", len(all))
	}
}
