// Command ganc trains a base recommender on a ratings file (or a synthetic
// preset), assembles the GANC re-ranking pipeline on top of it and either
// prints top-N recommendations, evaluates the result against a held-out test
// split, or serves recommendations over HTTP with online per-user
// computation.
//
// The accuracy recommender and the optional reranker are resolved by name
// from the model registry, so any base/reranker combination can be selected
// from flags.
//
// Examples:
//
//	# Evaluate GANC(RSVD, θ^G, Dyn) on a synthetic ML-100K stand-in.
//	ganc -preset ML-100K -arec RSVD -theta G -crec Dyn -evaluate
//
//	# Serve GANC(Pop, θ^G, Dyn) with lazy per-user computation.
//	ganc -preset ML-1M -arec Pop -serve :8080
//
//	# Evaluate a registry baseline instead of GANC (any -rerank name works).
//	ganc -preset ML-100K -arec RSVD -rerank RBT-Pop -evaluate
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"

	"ganc"
)

func main() {
	ratingsPath := flag.String("ratings", "", "path to a ratings file (CSV, MovieLens ::, or tab separated)")
	preset := flag.String("preset", "ML-100K", "synthetic preset to use when -ratings is not given")
	scale := flag.Float64("scale", 0.25, "synthetic preset scale")
	kappa := flag.Float64("kappa", 0.8, "per-user train ratio")
	arecName := flag.String("arec", "RSVD", "accuracy recommender: "+strings.Join(ganc.BaseNames(), ", "))
	rerankName := flag.String("rerank", "GANC", "reranker applied on top of -arec: "+strings.Join(ganc.RerankerNames(), ", ")+", or \"none\" for the raw base model")
	thetaName := flag.String("theta", "G", "long-tail preference model: A, N, T, G, R, C (GANC only)")
	crecName := flag.String("crec", "Dyn", "coverage recommender: Dyn, Stat, Rand (GANC only)")
	n := flag.Int("n", 5, "top-N size")
	sample := flag.Int("sample", 0, "OSLG sample size (0 = fully sequential)")
	workers := flag.Int("workers", 1, "worker goroutines for the parallel phases of GANC")
	seed := flag.Int64("seed", 1, "random seed")
	evaluate := flag.Bool("evaluate", false, "evaluate against the held-out split instead of printing recommendations")
	show := flag.Int("show", 3, "number of users whose recommendations are printed")
	serveAddr := flag.String("serve", "", "serve recommendations over HTTP on this address (e.g. :8080) instead of printing them")
	cacheCap := flag.Int("cache", 0, "serve-mode LRU cache capacity (0 = default)")
	warm := flag.Bool("warm", false, "serve-mode: precompute the full batch collection as a warm cache")
	flag.Parse()

	data, err := loadData(*ratingsPath, *preset, *scale)
	if err != nil {
		fatal(err)
	}
	split := data.SplitByUser(*kappa, rand.New(rand.NewSource(*seed)))
	fmt.Fprintf(os.Stderr, "dataset %s: %d users, %d items, %d train / %d test ratings\n",
		data.Name(), data.NumUsers(), data.NumItems(), split.Train.NumRatings(), split.Test.NumRatings())

	engine, err := buildEngine(split.Train, *arecName, *rerankName, *thetaName, *crecName, *n, *sample, *workers, *seed)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()

	if *serveAddr != "" {
		opts := []ganc.ServerOption{}
		if *cacheCap > 0 {
			opts = append(opts, ganc.WithServerCacheCapacity(*cacheCap))
		}
		if *warm {
			fmt.Fprintf(os.Stderr, "precomputing warm cache for %s ...\n", engine.Name())
			recs, err := engine.RecommendAll(ctx)
			if err != nil {
				fatal(err)
			}
			opts = append(opts, ganc.WithServerPrecomputed(recs))
		}
		srv, err := ganc.NewServer(split.Train, engine, *n, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "serving %s on %s (GET /recommend?user=<id>, POST /recommend/batch, /info, /health)\n",
			engine.Name(), *serveAddr)
		if err := http.ListenAndServe(*serveAddr, srv.Handler()); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Fprintf(os.Stderr, "running %s ...\n", engine.Name())
	recs, err := engine.RecommendAll(ctx)
	if err != nil {
		fatal(err)
	}

	if *evaluate {
		ev := ganc.NewEvaluator(split, 0)
		rep := ev.Evaluate(engine.Name(), recs, *n)
		fmt.Printf("%-40s\n", rep.Algorithm)
		fmt.Printf("  Precision@%d   : %.4f\n", *n, rep.Precision)
		fmt.Printf("  Recall@%d      : %.4f\n", *n, rep.Recall)
		fmt.Printf("  F-measure@%d   : %.4f\n", *n, rep.FMeasure)
		fmt.Printf("  LTAccuracy@%d  : %.4f\n", *n, rep.LTAccuracy)
		fmt.Printf("  StratRecall@%d : %.4f\n", *n, rep.StratRecall)
		fmt.Printf("  Coverage@%d    : %.4f\n", *n, rep.Coverage)
		fmt.Printf("  Gini@%d        : %.4f\n", *n, rep.Gini)
		return
	}

	users := make([]ganc.UserID, 0, len(recs))
	for u := range recs {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
	if *show < len(users) {
		users = users[:*show]
	}
	for _, u := range users {
		key := split.Train.UserInterner().Key(int32(u))
		fmt.Printf("user %s:", key)
		for _, i := range recs[u] {
			fmt.Printf(" %s", split.Train.ItemInterner().Key(int32(i)))
		}
		fmt.Println()
	}
}

// buildEngine assembles the requested engine: a full GANC pipeline (the
// default), a registry reranker over the named base, or the raw base model.
func buildEngine(train *ganc.Dataset, arecName, rerankName, thetaName, crecName string, n, sample, workers int, seed int64) (ganc.Engine, error) {
	if rerankName == "GANC" {
		spec, err := coverageSpec(crecName)
		if err != nil {
			return nil, err
		}
		return ganc.NewPipeline(train,
			ganc.WithBaseNamed(arecName),
			ganc.WithPreferences(thetaModel(thetaName)),
			ganc.WithCoverage(spec),
			ganc.WithTopN(n),
			ganc.WithSampleSize(sample),
			ganc.WithWorkers(workers),
			ganc.WithSeed(seed))
	}
	base, err := ganc.NewBaseScorer(arecName, train, seed)
	if err != nil {
		return nil, err
	}
	if rerankName == "none" {
		return ganc.NewBaseEngine(base, train, n), nil
	}
	return ganc.NewReranker(rerankName, train, base, n, seed)
}

func coverageSpec(name string) (ganc.CoverageSpec, error) {
	switch name {
	case "Dyn":
		return ganc.CoverageDyn(), nil
	case "Stat":
		return ganc.CoverageStat(), nil
	case "Rand":
		return ganc.CoverageRand(), nil
	default:
		return ganc.CoverageSpec{}, fmt.Errorf("unknown coverage recommender %q", name)
	}
}

func loadData(path, preset string, scale float64) (*ganc.Dataset, error) {
	if path != "" {
		return ganc.LoadRatings(path, ganc.LoadOptions{Name: path})
	}
	return ganc.GeneratePreset(preset, scale)
}

func thetaModel(short string) ganc.PreferenceModel {
	switch short {
	case "A":
		return ganc.PreferenceActivity
	case "N":
		return ganc.PreferenceNormalizedLongTail
	case "T":
		return ganc.PreferenceTFIDF
	case "G":
		return ganc.PreferenceGeneralized
	case "R":
		return ganc.PreferenceRandom
	case "C":
		return ganc.PreferenceConstant
	default:
		return ganc.PreferenceModel(short)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ganc:", err)
	os.Exit(1)
}
