// Command ganc trains a base recommender on a ratings file (or a synthetic
// preset), runs the GANC re-ranking framework on top of it and either prints
// top-N recommendations or evaluates the result against a held-out test
// split.
//
// Examples:
//
//	# Evaluate GANC(RSVD, θ^G, Dyn) on a synthetic ML-100K stand-in.
//	ganc -preset ML-100K -arec RSVD -theta G -crec Dyn -evaluate
//
//	# Recommend 10 items per user from a ratings CSV using Pop as the
//	# accuracy recommender and print the first 5 users.
//	ganc -ratings ratings.csv -arec Pop -theta T -n 10 -show 5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"

	"ganc/internal/core"
	"ganc/internal/dataset"
	"ganc/internal/eval"
	"ganc/internal/knn"
	"ganc/internal/longtail"
	"ganc/internal/mf"
	"ganc/internal/recommender"
	"ganc/internal/serve"
	"ganc/internal/synth"
	"ganc/internal/types"
)

func main() {
	ratingsPath := flag.String("ratings", "", "path to a ratings file (CSV, MovieLens ::, or tab separated)")
	preset := flag.String("preset", "ML-100K", "synthetic preset to use when -ratings is not given")
	scale := flag.Float64("scale", 0.25, "synthetic preset scale")
	kappa := flag.Float64("kappa", 0.8, "per-user train ratio")
	arecName := flag.String("arec", "RSVD", "accuracy recommender: Pop, RSVD, PSVD10, PSVD100, ItemKNN")
	thetaName := flag.String("theta", "G", "long-tail preference model: A, N, T, G, R, C")
	crecName := flag.String("crec", "Dyn", "coverage recommender: Dyn, Stat, Rand")
	n := flag.Int("n", 5, "top-N size")
	sample := flag.Int("sample", 0, "OSLG sample size (0 = fully sequential)")
	workers := flag.Int("workers", 1, "worker goroutines for the parallel phases of GANC")
	seed := flag.Int64("seed", 1, "random seed")
	evaluate := flag.Bool("evaluate", false, "evaluate against the held-out split instead of printing recommendations")
	show := flag.Int("show", 3, "number of users whose recommendations are printed")
	serveAddr := flag.String("serve", "", "serve recommendations over HTTP on this address (e.g. :8080) instead of printing them")
	flag.Parse()

	data, err := loadData(*ratingsPath, *preset, synth.Scale(*scale))
	if err != nil {
		fatal(err)
	}
	split := data.SplitByUser(*kappa, rand.New(rand.NewSource(*seed)))
	fmt.Fprintf(os.Stderr, "dataset %s: %d users, %d items, %d train / %d test ratings\n",
		data.Name(), data.NumUsers(), data.NumItems(), split.Train.NumRatings(), split.Test.NumRatings())

	arec, err := buildAccuracy(split.Train, *arecName, *n, *seed)
	if err != nil {
		fatal(err)
	}
	crec, err := buildCoverage(split.Train, *crecName, *seed)
	if err != nil {
		fatal(err)
	}
	prefs, err := longtail.Estimate(thetaModel(*thetaName), split.Train, nil, 0.5, *seed)
	if err != nil {
		fatal(err)
	}
	g, err := core.New(split.Train, arec, prefs, crec, core.Config{N: *n, SampleSize: *sample, Seed: *seed, Workers: *workers})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "running %s ...\n", g.Name())
	recs := g.Recommend()

	if *serveAddr != "" {
		srv, err := serve.New(split.Train, g.Name(), recs, *n)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "serving %s on %s (GET /recommend?user=<id>, /info, /health)\n", g.Name(), *serveAddr)
		if err := http.ListenAndServe(*serveAddr, srv.Handler()); err != nil {
			fatal(err)
		}
		return
	}

	if *evaluate {
		ev := eval.NewEvaluator(split, 0)
		rep := ev.Evaluate(g.Name(), recs, *n)
		fmt.Printf("%-40s\n", rep.Algorithm)
		fmt.Printf("  Precision@%d   : %.4f\n", *n, rep.Precision)
		fmt.Printf("  Recall@%d      : %.4f\n", *n, rep.Recall)
		fmt.Printf("  F-measure@%d   : %.4f\n", *n, rep.FMeasure)
		fmt.Printf("  LTAccuracy@%d  : %.4f\n", *n, rep.LTAccuracy)
		fmt.Printf("  StratRecall@%d : %.4f\n", *n, rep.StratRecall)
		fmt.Printf("  Coverage@%d    : %.4f\n", *n, rep.Coverage)
		fmt.Printf("  Gini@%d        : %.4f\n", *n, rep.Gini)
		return
	}

	users := make([]types.UserID, 0, len(recs))
	for u := range recs {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
	if *show < len(users) {
		users = users[:*show]
	}
	for _, u := range users {
		key := split.Train.UserInterner().Key(int32(u))
		fmt.Printf("user %s:", key)
		for _, i := range recs[u] {
			fmt.Printf(" %s", split.Train.ItemInterner().Key(int32(i)))
		}
		fmt.Println()
	}
}

func loadData(path, preset string, scale synth.Scale) (*dataset.Dataset, error) {
	if path != "" {
		return dataset.LoadRatings(path, dataset.LoadOptions{Name: path})
	}
	var cfg synth.Config
	switch preset {
	case "ML-100K":
		cfg = synth.ML100K(scale)
	case "ML-1M":
		cfg = synth.ML1M(scale)
	case "ML-10M":
		cfg = synth.ML10M(scale)
	case "MT-200K":
		cfg = synth.MT200K(scale)
	case "Netflix":
		cfg = synth.NetflixSample(scale)
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
	return synth.Generate(cfg)
}

func buildAccuracy(train *dataset.Dataset, name string, n int, seed int64) (core.AccuracyRecommender, error) {
	switch name {
	case "Pop":
		return core.NewPopAccuracy(train, n), nil
	case "RSVD":
		cfg := mf.DefaultRSVDConfig()
		cfg.Factors = 40
		cfg.Epochs = 15
		cfg.Seed = seed
		m, err := mf.TrainRSVD(train, cfg)
		if err != nil {
			return nil, err
		}
		return &core.ScorerAccuracy{Scorer: recommender.NewNormalizedScorer(m, train.NumItems())}, nil
	case "PSVD10", "PSVD100":
		factors := 10
		if name == "PSVD100" {
			factors = 100
		}
		m, err := mf.TrainPSVD(train, mf.PSVDConfig{Factors: factors, PowerIterations: 2, Seed: seed})
		if err != nil {
			return nil, err
		}
		return &core.ScorerAccuracy{Scorer: recommender.NewNormalizedScorer(m, train.NumItems())}, nil
	case "ItemKNN":
		m, err := knn.Train(train, knn.DefaultConfig())
		if err != nil {
			return nil, err
		}
		return &core.ScorerAccuracy{Scorer: recommender.NewNormalizedScorer(m, train.NumItems())}, nil
	default:
		return nil, fmt.Errorf("unknown accuracy recommender %q", name)
	}
}

func buildCoverage(train *dataset.Dataset, name string, seed int64) (core.CoverageRecommender, error) {
	switch name {
	case "Dyn":
		return core.NewDynCoverage(train.NumItems()), nil
	case "Stat":
		return core.NewStatCoverage(train), nil
	case "Rand":
		return core.NewRandCoverage(seed), nil
	default:
		return nil, fmt.Errorf("unknown coverage recommender %q", name)
	}
}

func thetaModel(short string) longtail.Model {
	switch short {
	case "A":
		return longtail.ModelActivity
	case "N":
		return longtail.ModelNormalizedLongTail
	case "T":
		return longtail.ModelTFIDF
	case "G":
		return longtail.ModelGeneralized
	case "R":
		return longtail.ModelRandom
	case "C":
		return longtail.ModelConstant
	default:
		return longtail.Model(short)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ganc:", err)
	os.Exit(1)
}
