// Command ganc trains a base recommender on a ratings file (or a synthetic
// preset), assembles the GANC re-ranking pipeline on top of it and either
// prints top-N recommendations, evaluates the result against a held-out test
// split, or serves recommendations over HTTP with online per-user
// computation.
//
// The accuracy recommender and the optional reranker are resolved by name
// from the model registry, so any base/reranker combination can be selected
// from flags.
//
// Trained pipelines can be persisted and warm-started: -save writes a
// versioned snapshot (dataset, trained base, θ preferences, coverage state),
// -load restores one without retraining, and in serve mode the POST /ingest
// endpoint absorbs new interactions incrementally, with -ingest-log enabling
// a write-ahead log and -checkpoint-interval periodic snapshots (see
// DESIGN.md §8).
//
// Examples:
//
//	# Evaluate GANC(RSVD, θ^G, Dyn) on a synthetic ML-100K stand-in.
//	ganc -preset ML-100K -arec RSVD -theta G -crec Dyn -evaluate
//
//	# Train once, snapshot, then serve warm-started with streaming ingestion.
//	ganc -preset ML-1M -arec Pop -save model.snap
//	ganc -load model.snap -serve :8080 -ingest-log events.log -checkpoint-interval 1000
//
//	# Evaluate a registry baseline instead of GANC (any -rerank name works).
//	ganc -preset ML-100K -arec RSVD -rerank RBT-Pop -evaluate
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"ganc"
)

func main() {
	ratingsPath := flag.String("ratings", "", "path to a ratings file (CSV, MovieLens ::, or tab separated)")
	preset := flag.String("preset", "ML-100K", "synthetic preset to use when -ratings is not given")
	scale := flag.Float64("scale", 0.25, "synthetic preset scale")
	kappa := flag.Float64("kappa", 0.8, "per-user train ratio")
	arecName := flag.String("arec", "RSVD", "accuracy recommender: "+strings.Join(ganc.BaseNames(), ", "))
	rerankName := flag.String("rerank", "GANC", "reranker applied on top of -arec: "+strings.Join(ganc.RerankerNames(), ", ")+", or \"none\" for the raw base model")
	thetaName := flag.String("theta", "G", "long-tail preference model: A, N, T, G, R, C (GANC only)")
	crecName := flag.String("crec", "Dyn", "coverage recommender: Dyn, Stat, Rand (GANC only)")
	n := flag.Int("n", 5, "top-N size")
	sample := flag.Int("sample", 0, "OSLG sample size (0 = fully sequential)")
	workers := flag.Int("workers", 1, "worker goroutines for the parallel phases of GANC")
	seed := flag.Int64("seed", 1, "random seed")
	evaluate := flag.Bool("evaluate", false, "evaluate against the held-out split instead of printing recommendations")
	show := flag.Int("show", 3, "number of users whose recommendations are printed")
	serveAddr := flag.String("serve", "", "serve recommendations over HTTP on this address (e.g. :8080) instead of printing them")
	cacheCap := flag.Int("cache", 0, "serve-mode LRU cache capacity (0 = default)")
	warm := flag.Bool("warm", false, "serve-mode: precompute the full batch collection as a warm cache")
	savePath := flag.String("save", "", "write a warm-start snapshot of the assembled GANC pipeline to this path")
	loadPath := flag.String("load", "", "load a snapshot written by -save instead of training (skips -ratings/-preset)")
	ingestLog := flag.String("ingest-log", "", "serve-mode: write-ahead log path for POST /ingest events")
	checkpointInterval := flag.Int("checkpoint-interval", 0, "serve-mode: snapshot the serving state every this many ingested events (0 = never; target is -save, falling back to -load)")
	obsFlags := registerObsFlags(flag.CommandLine)
	flag.Parse()

	engine, train, err := assemble(*ratingsPath, *preset, *scale, *kappa, *arecName, *rerankName,
		*thetaName, *crecName, *n, *sample, *workers, *seed, *evaluate, *savePath, *loadPath)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()

	if *serveAddr != "" {
		if err := serveHTTP(ctx, engine, train, *serveAddr, *n, *cacheCap, *warm,
			*savePath, *loadPath, *ingestLog, *checkpointInterval, obsFlags); err != nil {
			fatal(err)
		}
		return
	}
	if *ingestLog != "" || *checkpointInterval > 0 {
		fatal(fmt.Errorf("-ingest-log and -checkpoint-interval only apply in serve mode (-serve)"))
	}
	if obsFlags.active() {
		fatal(fmt.Errorf("-metrics, -request-log and the admission flags only apply in serve mode (-serve)"))
	}

	// The evaluate path prints its report and exits inside assemble (it needs
	// the held-out split, which only exists at train time).
	fmt.Fprintf(os.Stderr, "running %s ...\n", engine.Name())
	recs, err := engine.RecommendAll(ctx)
	if err != nil {
		fatal(err)
	}
	printRecommendations(recs, train, *show)
}

// assemble resolves the engine either by loading a snapshot (-load) or by
// generating data, splitting and training (-preset/-ratings), applying -save
// when requested. It returns the engine plus the train set backing it (for
// identifier translation). Every failure path returns a clear error; nothing
// panics.
func assemble(ratingsPath, preset string, scale, kappa float64, arecName, rerankName, thetaName, crecName string,
	n, sample, workers int, seed int64, evaluate bool, savePath, loadPath string) (ganc.Engine, *ganc.Dataset, error) {
	if loadPath != "" {
		if ratingsPath != "" {
			return nil, nil, fmt.Errorf("-load and -ratings are mutually exclusive: a snapshot carries its own dataset")
		}
		if evaluate {
			return nil, nil, fmt.Errorf("-load cannot be combined with -evaluate: a snapshot has no held-out test split (evaluate at train time, before -save)")
		}
		if savePath != "" {
			return nil, nil, fmt.Errorf("-load and -save are mutually exclusive (checkpointing in serve mode re-uses the -load path)")
		}
		p, err := ganc.LoadEngine(loadPath)
		if err != nil {
			switch {
			case errors.Is(err, ganc.ErrSnapshotVersion):
				return nil, nil, fmt.Errorf("snapshot %s was written by an incompatible version of this tool: %w", loadPath, err)
			case errors.Is(err, ganc.ErrSnapshotBadMagic):
				return nil, nil, fmt.Errorf("%s is not a GANC snapshot: %w", loadPath, err)
			case errors.Is(err, ganc.ErrSnapshotCorrupt):
				return nil, nil, fmt.Errorf("snapshot %s is corrupt (truncated or bit-flipped): %w", loadPath, err)
			default:
				return nil, nil, err
			}
		}
		fmt.Fprintf(os.Stderr, "loaded %s from %s: %d users, %d items, %d ratings\n",
			p.Name(), loadPath, p.Train().NumUsers(), p.Train().NumItems(), p.Train().NumRatings())
		return p, p.Train(), nil
	}

	data, err := loadData(ratingsPath, preset, scale)
	if err != nil {
		return nil, nil, err
	}
	split := data.SplitByUser(kappa, rand.New(rand.NewSource(seed)))
	fmt.Fprintf(os.Stderr, "dataset %s: %d users, %d items, %d train / %d test ratings\n",
		data.Name(), data.NumUsers(), data.NumItems(), split.Train.NumRatings(), split.Test.NumRatings())

	engine, err := buildEngine(split.Train, arecName, rerankName, thetaName, crecName, n, sample, workers, seed)
	if err != nil {
		return nil, nil, err
	}
	// Save before evaluating: -evaluate -save means "snapshot the trained
	// pipeline AND report its metrics" — the training run must not be lost
	// to the evaluate path's early exit. Saving first also snapshots the
	// pristine pre-sweep coverage state.
	if savePath != "" {
		p, ok := engine.(*ganc.Pipeline)
		if !ok {
			return nil, nil, fmt.Errorf("-save supports GANC pipelines only (use -rerank GANC); %s has no snapshot format", engine.Name())
		}
		if err := p.Save(savePath); err != nil {
			return nil, nil, fmt.Errorf("saving snapshot: %w", err)
		}
		fmt.Fprintf(os.Stderr, "saved warm-start snapshot to %s\n", savePath)
	}
	if evaluate {
		if err := runEvaluation(engine, split, n); err != nil {
			return nil, nil, err
		}
		os.Exit(0)
	}
	return engine, split.Train, nil
}

// runEvaluation scores the engine's batch output against the held-out split.
func runEvaluation(engine ganc.Engine, split *ganc.Split, n int) error {
	fmt.Fprintf(os.Stderr, "running %s ...\n", engine.Name())
	recs, err := engine.RecommendAll(context.Background())
	if err != nil {
		return err
	}
	ev := ganc.NewEvaluator(split, 0)
	rep := ev.Evaluate(engine.Name(), recs, n)
	fmt.Printf("%-40s\n", rep.Algorithm)
	fmt.Printf("  Precision@%d   : %.4f\n", n, rep.Precision)
	fmt.Printf("  Recall@%d      : %.4f\n", n, rep.Recall)
	fmt.Printf("  F-measure@%d   : %.4f\n", n, rep.FMeasure)
	fmt.Printf("  LTAccuracy@%d  : %.4f\n", n, rep.LTAccuracy)
	fmt.Printf("  StratRecall@%d : %.4f\n", n, rep.StratRecall)
	fmt.Printf("  Coverage@%d    : %.4f\n", n, rep.Coverage)
	fmt.Printf("  Gini@%d        : %.4f\n", n, rep.Gini)
	return nil
}

// obsFlags bundles the serve-mode observability and admission flags shared
// by ganc and gancd.
type obsFlags struct {
	metrics       *bool
	requestLog    *string
	rateLimit     *float64
	rateBurst     *float64
	maxConcurrent *int
	maxWaitMs     *int
}

// registerObsFlags declares the observability/admission flag set on fs.
func registerObsFlags(fs *flag.FlagSet) obsFlags {
	return obsFlags{
		metrics:       fs.Bool("metrics", false, "serve-mode: mount GET /metrics (Prometheus text format)"),
		requestLog:    fs.String("request-log", "", "serve-mode: append one JSON line per request to this file (\"-\" = stderr)"),
		rateLimit:     fs.Float64("rate-limit", 0, "serve-mode: per-client sustained requests/second (0 = unlimited)"),
		rateBurst:     fs.Float64("rate-burst", 0, "serve-mode: per-client burst allowance (0 = max(rate-limit, 1))"),
		maxConcurrent: fs.Int("max-concurrent", 0, "serve-mode: cap on requests inside handlers at once (0 = uncapped)"),
		maxWaitMs:     fs.Int("max-wait-ms", 0, "serve-mode: how long an over-capacity request waits for a slot before a 429 (0 = shed immediately)"),
	}
}

// active reports whether any observability/admission flag was set.
func (f obsFlags) active() bool {
	return *f.metrics || *f.requestLog != "" || *f.rateLimit > 0 || *f.maxConcurrent > 0
}

// serverOptions translates the flags into server options, opening the
// request-log sink when one was named. The returned cleanup (possibly nil)
// closes that sink.
func (f obsFlags) serverOptions() ([]ganc.ServerOption, func() error, error) {
	var opts []ganc.ServerOption
	var cleanup func() error
	if *f.metrics {
		opts = append(opts, ganc.WithMetrics(ganc.NewMetricsRegistry()))
	}
	if *f.requestLog != "" {
		w := os.Stderr
		if *f.requestLog != "-" {
			file, err := os.OpenFile(*f.requestLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, nil, fmt.Errorf("opening request log: %w", err)
			}
			w = file
			cleanup = file.Close
		}
		opts = append(opts, ganc.WithRequestLog(ganc.NewRequestLogger(w, ganc.LogInfo)))
	}
	if *f.rateLimit > 0 {
		opts = append(opts, ganc.WithRateLimit(*f.rateLimit, *f.rateBurst))
	}
	if *f.maxConcurrent > 0 {
		opts = append(opts, ganc.WithMaxConcurrent(*f.maxConcurrent, time.Duration(*f.maxWaitMs)*time.Millisecond))
	}
	return opts, cleanup, nil
}

// serveHTTP puts the engine behind the HTTP serving layer, enabling streaming
// ingestion (POST /ingest) when the engine is a GANC pipeline.
func serveHTTP(ctx context.Context, engine ganc.Engine, train *ganc.Dataset, addr string,
	n, cacheCap int, warm bool, savePath, loadPath, ingestLog string, checkpointInterval int, obs obsFlags) error {
	opts, obsCleanup, err := obs.serverOptions()
	if err != nil {
		return err
	}
	if obsCleanup != nil {
		defer func() { _ = obsCleanup() }()
	}
	if cacheCap > 0 {
		opts = append(opts, ganc.WithServerCacheCapacity(cacheCap))
	}
	if warm {
		fmt.Fprintf(os.Stderr, "precomputing warm cache for %s ...\n", engine.Name())
		recs, err := engine.RecommendAll(ctx)
		if err != nil {
			return err
		}
		opts = append(opts, ganc.WithServerPrecomputed(recs))
	}
	srv, err := ganc.NewServer(train, engine, n, opts...)
	if err != nil {
		return err
	}

	// Streaming ingestion requires a snapshot-compatible GANC pipeline. When
	// the operator asked for it (-ingest-log / -checkpoint-interval), an
	// incompatible engine is a hard error; otherwise ingestion is enabled
	// opportunistically and silently skipped for engines that cannot ingest
	// (rerankers, Rand components), which still serve read-only.
	ingestRequested := ingestLog != "" || checkpointInterval > 0
	endpoints := "GET /recommend?user=<id>, POST /recommend/batch, /info, /health"
	if *obs.metrics {
		endpoints += ", GET /metrics"
	}
	p, isPipeline := engine.(*ganc.Pipeline)
	if !isPipeline && ingestRequested {
		return fmt.Errorf("streaming ingestion supports GANC pipelines only (use -rerank GANC); %s cannot ingest", engine.Name())
	}
	if isPipeline {
		ingOpts := []ganc.IngestorOption{}
		if ingestLog != "" {
			ingOpts = append(ingOpts, ganc.WithIngestLog(ingestLog))
		}
		checkpointPath := savePath
		if checkpointPath == "" {
			checkpointPath = loadPath
		}
		if checkpointInterval > 0 && checkpointPath == "" {
			return fmt.Errorf("-checkpoint-interval needs a snapshot target: pass -save (cold start) or -load (warm start)")
		}
		if checkpointPath != "" {
			ingOpts = append(ingOpts, ganc.WithIngestCheckpoint(checkpointPath, checkpointInterval))
		}
		switch ing, err := ganc.NewIngestor(srv, p, ingOpts...); {
		case err != nil && ingestRequested:
			return fmt.Errorf("enabling ingestion: %w", err)
		case err != nil:
			fmt.Fprintf(os.Stderr, "serving without ingestion (%v)\n", err)
		default:
			if ingestLog != "" {
				replayed, err := ing.Recover()
				if err != nil {
					return fmt.Errorf("replaying ingest log %s: %w", ingestLog, err)
				}
				if replayed > 0 {
					fmt.Fprintf(os.Stderr, "replayed %d events from %s (resuming at seq %d)\n", replayed, ingestLog, ing.Seq())
				}
			}
			endpoints += ", POST /ingest"
		}
	}

	fmt.Fprintf(os.Stderr, "serving %s on %s (%s)\n", engine.Name(), addr, endpoints)
	return http.ListenAndServe(addr, srv.Handler())
}

// printRecommendations prints the first `show` users' lists with external
// identifiers.
func printRecommendations(recs ganc.Recommendations, train *ganc.Dataset, show int) {
	users := make([]ganc.UserID, 0, len(recs))
	for u := range recs {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
	if show < len(users) {
		users = users[:show]
	}
	for _, u := range users {
		key := train.UserInterner().Key(int32(u))
		fmt.Printf("user %s:", key)
		for _, i := range recs[u] {
			fmt.Printf(" %s", train.ItemInterner().Key(int32(i)))
		}
		fmt.Println()
	}
}

// buildEngine assembles the requested engine: a full GANC pipeline (the
// default), a registry reranker over the named base, or the raw base model.
func buildEngine(train *ganc.Dataset, arecName, rerankName, thetaName, crecName string, n, sample, workers int, seed int64) (ganc.Engine, error) {
	if rerankName == "GANC" {
		spec, err := coverageSpec(crecName)
		if err != nil {
			return nil, err
		}
		return ganc.NewPipeline(train,
			ganc.WithBaseNamed(arecName),
			ganc.WithPreferences(ganc.ParsePreferenceModel(thetaName)),
			ganc.WithCoverage(spec),
			ganc.WithTopN(n),
			ganc.WithSampleSize(sample),
			ganc.WithWorkers(workers),
			ganc.WithSeed(seed))
	}
	base, err := ganc.NewBaseScorer(arecName, train, seed)
	if err != nil {
		return nil, err
	}
	if rerankName == "none" {
		return ganc.NewBaseEngine(base, train, n), nil
	}
	return ganc.NewReranker(rerankName, train, base, n, seed)
}

func coverageSpec(name string) (ganc.CoverageSpec, error) {
	switch name {
	case "Dyn":
		return ganc.CoverageDyn(), nil
	case "Stat":
		return ganc.CoverageStat(), nil
	case "Rand":
		return ganc.CoverageRand(), nil
	default:
		return ganc.CoverageSpec{}, fmt.Errorf("unknown coverage recommender %q", name)
	}
}

// loadData resolves the input dataset, failing fast with a clear message when
// the ratings path does not exist instead of surfacing a bare open error deep
// in a parse stack.
func loadData(path, preset string, scale float64) (*ganc.Dataset, error) {
	if path != "" {
		if _, err := os.Stat(path); err != nil {
			if os.IsNotExist(err) {
				return nil, fmt.Errorf("ratings file %s does not exist (check -ratings, or drop it to use the -preset synthetic data)", path)
			}
			return nil, fmt.Errorf("ratings file %s is not readable: %w", path, err)
		}
		return ganc.LoadRatings(path, ganc.LoadOptions{Name: path})
	}
	return ganc.GeneratePreset(preset, scale)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ganc:", err)
	os.Exit(1)
}
