// Command datagen generates a synthetic rating dataset calibrated to one of
// the paper's evaluation datasets and writes it as CSV (user,item,rating) to
// stdout or a file. The output can be reloaded by cmd/ganc and the examples
// through the same loader used for real MovieLens exports.
//
// Usage:
//
//	datagen -preset ML-1M -scale 0.5 -out ml1m.csv
//	datagen -preset MT-200K -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"ganc/internal/dataset"
	"ganc/internal/synth"
)

func main() {
	preset := flag.String("preset", "ML-100K", "dataset preset: ML-100K, ML-1M, ML-10M, MT-200K, Netflix")
	scale := flag.Float64("scale", 1.0, "size multiplier applied to the preset")
	seed := flag.Int64("seed", 0, "override the preset's random seed (0 keeps the default)")
	out := flag.String("out", "", "output CSV path (default: stdout)")
	statsOnly := flag.Bool("stats", false, "print Table II-style statistics instead of the ratings")
	flag.Parse()

	cfg, err := presetByName(*preset, synth.Scale(*scale))
	if err != nil {
		fatal(err)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	d, err := synth.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	if *statsOnly {
		s := d.ComputeStats()
		fmt.Printf("dataset   : %s\n", s.Name)
		fmt.Printf("|D|       : %d ratings\n", s.NumRatings)
		fmt.Printf("|U|       : %d users\n", s.NumUsers)
		fmt.Printf("|I|       : %d items\n", s.NumItems)
		fmt.Printf("density   : %.3f%%\n", s.DensityPct)
		fmt.Printf("long-tail : %.2f%% of items\n", s.LongTailPct)
		fmt.Printf("mean r    : %.3f\n", s.MeanRating)
		fmt.Printf("user deg  : min %d, max %d\n", s.MinUserDeg, s.MaxUserDeg)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteRatings(w, d); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d ratings to %s\n", d.NumRatings(), *out)
	}
}

func presetByName(name string, s synth.Scale) (synth.Config, error) {
	switch name {
	case "ML-100K":
		return synth.ML100K(s), nil
	case "ML-1M":
		return synth.ML1M(s), nil
	case "ML-10M":
		return synth.ML10M(s), nil
	case "MT-200K":
		return synth.MT200K(s), nil
	case "Netflix":
		return synth.NetflixSample(s), nil
	default:
		return synth.Config{}, fmt.Errorf("unknown preset %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
