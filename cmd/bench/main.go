// Command bench records the performance trajectory of the recommendation hot
// paths in BENCH_sweep.json: ns/op, B/op and allocs/op for online
// RecommendUser and batch RecommendAll on the synthetic presets, for both the
// buffered/CELF candidate pipeline and the preserved pre-refactor per-pick
// rescan path (core.GANC's Reference* methods), plus the derived speedup and
// allocation ratios. CI runs the benchmark smoke via `go test -bench`; this
// runner exists so the numbers land in a stable, diffable artifact that
// later PRs extend.
//
// The -precision flag selects the serving tier for the pipeline under test
// (f64, f32 or int8; see DESIGN.md §12), and -cpuprofile/-memprofile write
// pprof profiles of the benchmark loops for `go tool pprof`.
//
//	bench                      # ML-100K and ML-1M at the default scale
//	bench -presets ML-1M -scale 0.5 -out BENCH_sweep.json
//	bench -precision f32 -cpuprofile cpu.out
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"ganc"
	"ganc/internal/longtail"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Comparison derives the headline ratios between the pipeline and the
// pre-refactor reference for one preset and operation.
type Comparison struct {
	Preset     string  `json:"preset"`
	Op         string  `json:"op"`
	Speedup    float64 `json:"speedup"`
	AllocRatio float64 `json:"alloc_ratio"`
}

// Report is the BENCH_sweep.json document.
type Report struct {
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Scale       float64      `json:"scale"`
	TopN        int          `json:"top_n"`
	Precision   string       `json:"precision"`
	Results     []Result     `json:"results"`
	Comparisons []Comparison `json:"comparisons"`
}

func main() {
	presets := flag.String("presets", "ML-100K,ML-1M", "comma-separated synth presets to benchmark")
	scale := flag.Float64("scale", 0.5, "synthetic dataset scale")
	topN := flag.Int("n", 10, "top-N list size")
	out := flag.String("out", "BENCH_sweep.json", "output path")
	precisionName := flag.String("precision", "f64", "scoring precision tier for the pipeline under test (f64, f32, int8)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark loops to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after all benchmarks) to this file")
	flag.Parse()

	precision, err := ganc.ParseScoringPrecision(*precisionName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Scale:       *scale,
		TopN:        *topN,
		Precision:   precision.String(),
	}

	for _, preset := range strings.Split(*presets, ",") {
		preset = strings.TrimSpace(preset)
		if preset == "" {
			continue
		}
		if err := benchPreset(&rep, preset, *scale, *topN, precision); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		f.Close()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results)\n", *out, len(rep.Results))
}

// benchPreset measures both paths on one preset and appends the results.
func benchPreset(rep *Report, preset string, scale float64, topN int, precision ganc.ScoringPrecision) error {
	data, err := ganc.GeneratePreset(preset, scale)
	if err != nil {
		return err
	}
	split := ganc.SplitByUser(data, 0.8, rand.New(rand.NewSource(77)))
	prefs, err := longtail.Estimate(longtail.ModelGeneralized, split.Train, nil, 0, 77)
	if err != nil {
		return err
	}
	p, err := ganc.NewPipeline(split.Train,
		ganc.WithBaseNamed("Pop"),
		ganc.WithPreferenceVector(prefs),
		ganc.WithCoverage(ganc.CoverageDyn()),
		ganc.WithTopN(topN),
		ganc.WithSampleSize(split.Train.NumUsers()/10),
		ganc.WithScoringPrecision(precision),
		ganc.WithSeed(77))
	if err != nil {
		return err
	}
	ctx := context.Background()
	g := p.GANC()
	numUsers := split.Train.NumUsers()

	// Warm the accuracy cache and the Dyn state so every measurement below is
	// steady state.
	if _, err := p.RecommendAll(ctx); err != nil {
		return err
	}

	record := func(op, path string, fn func(i int)) Result {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn(i)
			}
		})
		r := Result{
			Name:        fmt.Sprintf("%s/%s/%s", op, preset, path),
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		rep.Results = append(rep.Results, r)
		fmt.Printf("%-44s %12.0f ns/op %10d B/op %8d allocs/op\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		return r
	}
	compare := func(op string, pipeline, reference Result) {
		c := Comparison{Preset: preset, Op: op}
		if pipeline.NsPerOp > 0 {
			c.Speedup = reference.NsPerOp / pipeline.NsPerOp
		}
		if pipeline.AllocsPerOp > 0 {
			c.AllocRatio = float64(reference.AllocsPerOp) / float64(pipeline.AllocsPerOp)
		}
		rep.Comparisons = append(rep.Comparisons, c)
		fmt.Printf("%-44s %.1fx faster, %.1fx fewer allocs\n", op+"/"+preset, c.Speedup, c.AllocRatio)
	}

	userPipeline := record("RecommendUser", "pipeline", func(i int) {
		if _, err := p.RecommendUser(ctx, ganc.UserID(i%numUsers), 0); err != nil {
			panic(err)
		}
	})
	userReference := record("RecommendUser", "reference", func(i int) {
		if _, err := g.ReferenceRecommendUser(ctx, ganc.UserID(i%numUsers), 0); err != nil {
			panic(err)
		}
	})
	compare("RecommendUser", userPipeline, userReference)

	allPipeline := record("RecommendAll", "pipeline", func(int) {
		if _, err := p.RecommendAll(ctx); err != nil {
			panic(err)
		}
	})
	allReference := record("RecommendAll", "reference", func(int) {
		_ = g.ReferenceRecommendAll()
	})
	compare("RecommendAll", allPipeline, allReference)
	return nil
}
