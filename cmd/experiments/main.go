// Command experiments regenerates the paper's tables and figures on the
// synthetic calibrated datasets and prints them as text tables. Individual
// experiments can be selected with -only; by default every experiment runs.
//
// Beyond the fixed paper experiments, -compare runs an ad-hoc Table IV-style
// comparison of any base/reranker combinations constructed by name from the
// model registry: each entry is either "Base" (the raw model) or
// "Reranker@Base".
//
// Output is deterministic: for a fixed flag set, the report bytes are
// identical run to run and for any -workers value (pinned by this package's
// golden-file tests), so regenerated experiment artifacts diff cleanly.
//
// Examples:
//
//	experiments -scale 0.25                 # run everything at quarter scale
//	experiments -only table4,figure6       # only the Table IV and Figure 6 runs
//	experiments -only figure3 -scale 0.5   # the ML-1M sample-size sweep
//	experiments -compare RSVD,RBT-Pop@RSVD,PRA-10@RSVD,GANC@RSVD -preset ML-100K
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"

	"ganc"
	"ganc/internal/experiment"
	"ganc/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run parses the argument vector and executes the selected experiments,
// writing the report to stdout and progress to stderr. Separated from main
// (and writer-injected) so the golden-file determinism tests can execute the
// CLI end to end in-process.
func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 0.2, "synthetic dataset scale (1.0 = calibrated defaults)")
	seed := fs.Int64("seed", 1, "random seed")
	n := fs.Int("n", 5, "top-N cutoff")
	sample := fs.Int("sample", 0, "OSLG sample size (0 = scaled default)")
	workers := fs.Int("workers", 1, "worker goroutines for GANC's parallel phases (output is identical for any value)")
	only := fs.String("only", "", "comma-separated experiment ids: table2,figure1,figure2,figure3,figure4,figure5,table4,figure6,figure7,figure8,table5")
	compare := fs.String("compare", "", "comma-separated registry combos to evaluate instead of the paper experiments: Base or Reranker@Base (bases: "+strings.Join(ganc.BaseNames(), ", ")+"; rerankers: "+strings.Join(ganc.RerankerNames(), ", ")+")")
	preset := fs.String("preset", "ML-100K", "dataset preset for -compare")
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h printed usage; that is success, not failure
		}
		return err
	}

	if *compare != "" {
		return runCompare(stdout, stderr, *compare, *preset, *scale, *n, *sample, *workers, *seed)
	}

	s := experiment.NewSuite(synth.Scale(*scale), *seed, *n, *sample)
	s.Workers = *workers
	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	var firstErr error
	runOne := func(id, title string, f func() (string, error)) {
		if firstErr != nil || !want(id) {
			return
		}
		fmt.Fprintf(stdout, "==== %s ====\n", title)
		text, err := f()
		if err != nil {
			firstErr = fmt.Errorf("%s failed: %w", id, err)
			return
		}
		fmt.Fprintln(stdout, text)
	}

	runOne("table2", "Table II — dataset statistics", func() (string, error) {
		_, text, err := s.TableII()
		return text, err
	})
	runOne("figure1", "Figure 1 — avg popularity of rated items vs activity", func() (string, error) {
		var sb strings.Builder
		for _, name := range experiment.DatasetNames() {
			_, text, err := s.Figure1(name, 10)
			if err != nil {
				return "", err
			}
			sb.WriteString(text)
			sb.WriteString("\n")
		}
		return sb.String(), nil
	})
	runOne("figure2", "Figure 2 — long-tail preference distributions", func() (string, error) {
		var sb strings.Builder
		for _, name := range experiment.DatasetNames() {
			_, text, err := s.Figure2(name, 20)
			if err != nil {
				return "", err
			}
			sb.WriteString(text)
			sb.WriteString("\n")
		}
		return sb.String(), nil
	})
	runOne("figure3", "Figure 3 — sample size sweep (ML-1M)", func() (string, error) {
		_, text, err := s.SampleSizeSweep("ML-1M", nil, nil)
		return text, err
	})
	runOne("figure4", "Figure 4 — sample size sweep (MT-200K)", func() (string, error) {
		_, text, err := s.SampleSizeSweep("MT-200K", nil, nil)
		return text, err
	})
	runOne("figure5", "Figure 5 — preference models × accuracy recommenders (ML-1M)", func() (string, error) {
		_, text, err := s.PreferenceModelSweep("ML-1M", nil, nil, nil)
		return text, err
	})
	runOne("table4", "Table IV — re-ranking RSVD across datasets", func() (string, error) {
		_, text, err := s.TableIV(nil)
		return text, err
	})
	runOne("figure6", "Figure 6 — accuracy vs coverage vs novelty", func() (string, error) {
		_, text, err := s.Figure6(nil)
		return text, err
	})
	runOne("figure7", "Figure 7 — ranking protocol comparison (ML-100K)", func() (string, error) {
		_, text, err := s.ProtocolComparison("ML-100K")
		return text, err
	})
	runOne("figure8", "Figure 8 — ranking protocol comparison (ML-1M)", func() (string, error) {
		_, text, err := s.ProtocolComparison("ML-1M")
		return text, err
	})
	runOne("table5", "Table V — RSVD configuration and error", func() (string, error) {
		_, text, err := s.TableV(nil)
		return text, err
	})
	return firstErr
}

// runCompare evaluates every named base/reranker combination on one dataset
// and prints a Table IV-style summary sorted by the average-rank score.
func runCompare(stdout, stderr io.Writer, spec, preset string, scale float64, n, sample, workers int, seed int64) error {
	data, err := ganc.GeneratePreset(preset, scale)
	if err != nil {
		return err
	}
	split := data.SplitByUser(0.8, rand.New(rand.NewSource(seed)))
	fmt.Fprintf(stdout, "dataset %s: %d users, %d items, %d train / %d test ratings\n",
		data.Name(), data.NumUsers(), data.NumItems(), split.Train.NumRatings(), split.Test.NumRatings())

	ctx := context.Background()
	ev := ganc.NewEvaluator(split, 0)
	bases := map[string]ganc.Scorer{} // train each named base once
	var reports []ganc.Report
	for _, combo := range strings.Split(spec, ",") {
		combo = strings.TrimSpace(combo)
		if combo == "" {
			continue
		}
		rerankName, baseName := "", combo
		if at := strings.IndexByte(combo, '@'); at >= 0 {
			rerankName, baseName = combo[:at], combo[at+1:]
		}
		base, ok := bases[baseName]
		if !ok {
			fmt.Fprintf(stderr, "training base %s ...\n", baseName)
			if base, err = ganc.NewBaseScorer(baseName, split.Train, seed); err != nil {
				return err
			}
			bases[baseName] = base
		}
		engine := ganc.NewBaseEngine(base, split.Train, n)
		switch rerankName {
		case "":
		case "GANC":
			// Assemble GANC directly so -sample and -workers reach the OSLG
			// optimizer; the registry entry always runs fully sequential.
			var p *ganc.Pipeline
			if p, err = ganc.NewPipeline(split.Train,
				ganc.WithBase(base),
				ganc.WithTopN(n),
				ganc.WithSampleSize(sample),
				ganc.WithWorkers(workers),
				ganc.WithSeed(seed)); err != nil {
				return err
			}
			engine = p
		default:
			if engine, err = ganc.NewReranker(rerankName, split.Train, base, n, seed); err != nil {
				return err
			}
		}
		fmt.Fprintf(stderr, "running %s ...\n", engine.Name())
		recs, err := engine.RecommendAll(ctx)
		if err != nil {
			return err
		}
		reports = append(reports, ev.Evaluate(engine.Name(), recs, n))
	}
	if len(reports) == 0 {
		return fmt.Errorf("-compare selected no combos")
	}

	ranks := ganc.RankReports(reports)
	sort.Slice(reports, func(a, b int) bool {
		return ranks[reports[a].Algorithm] < ranks[reports[b].Algorithm]
	})
	fmt.Fprintf(stdout, "\n%-34s %8s %8s %8s %8s %8s %6s\n", "algorithm", "F", "S", "L", "C", "G", "score")
	for _, rep := range reports {
		fmt.Fprintf(stdout, "%-34s %8.4f %8.4f %8.4f %8.4f %8.4f %6.1f\n",
			rep.Algorithm, rep.FMeasure, rep.StratRecall, rep.LTAccuracy, rep.Coverage, rep.Gini, ranks[rep.Algorithm])
	}
	return nil
}
