// Command experiments regenerates the paper's tables and figures on the
// synthetic calibrated datasets and prints them as text tables. Individual
// experiments can be selected with -only; by default every experiment runs.
//
// Examples:
//
//	experiments -scale 0.25                 # run everything at quarter scale
//	experiments -only table4,figure6       # only the Table IV and Figure 6 runs
//	experiments -only figure3 -scale 0.5   # the ML-1M sample-size sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ganc/internal/experiment"
	"ganc/internal/synth"
)

func main() {
	scale := flag.Float64("scale", 0.2, "synthetic dataset scale (1.0 = calibrated defaults)")
	seed := flag.Int64("seed", 1, "random seed")
	n := flag.Int("n", 5, "top-N cutoff")
	sample := flag.Int("sample", 0, "OSLG sample size (0 = scaled default)")
	only := flag.String("only", "", "comma-separated experiment ids: table2,figure1,figure2,figure3,figure4,figure5,table4,figure6,figure7,figure8,table5")
	flag.Parse()

	s := experiment.NewSuite(synth.Scale(*scale), *seed, *n, *sample)
	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	run := func(id, title string, f func() (string, error)) {
		if !want(id) {
			return
		}
		fmt.Printf("==== %s ====\n", title)
		text, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(text)
	}

	run("table2", "Table II — dataset statistics", func() (string, error) {
		_, text, err := s.TableII()
		return text, err
	})
	run("figure1", "Figure 1 — avg popularity of rated items vs activity", func() (string, error) {
		var sb strings.Builder
		for _, name := range experiment.DatasetNames() {
			_, text, err := s.Figure1(name, 10)
			if err != nil {
				return "", err
			}
			sb.WriteString(text)
			sb.WriteString("\n")
		}
		return sb.String(), nil
	})
	run("figure2", "Figure 2 — long-tail preference distributions", func() (string, error) {
		var sb strings.Builder
		for _, name := range experiment.DatasetNames() {
			_, text, err := s.Figure2(name, 20)
			if err != nil {
				return "", err
			}
			sb.WriteString(text)
			sb.WriteString("\n")
		}
		return sb.String(), nil
	})
	run("figure3", "Figure 3 — sample size sweep (ML-1M)", func() (string, error) {
		_, text, err := s.SampleSizeSweep("ML-1M", nil, nil)
		return text, err
	})
	run("figure4", "Figure 4 — sample size sweep (MT-200K)", func() (string, error) {
		_, text, err := s.SampleSizeSweep("MT-200K", nil, nil)
		return text, err
	})
	run("figure5", "Figure 5 — preference models × accuracy recommenders (ML-1M)", func() (string, error) {
		_, text, err := s.PreferenceModelSweep("ML-1M", nil, nil, nil)
		return text, err
	})
	run("table4", "Table IV — re-ranking RSVD across datasets", func() (string, error) {
		_, text, err := s.TableIV(nil)
		return text, err
	})
	run("figure6", "Figure 6 — accuracy vs coverage vs novelty", func() (string, error) {
		_, text, err := s.Figure6(nil)
		return text, err
	})
	run("figure7", "Figure 7 — ranking protocol comparison (ML-100K)", func() (string, error) {
		_, text, err := s.ProtocolComparison("ML-100K")
		return text, err
	})
	run("figure8", "Figure 8 — ranking protocol comparison (ML-1M)", func() (string, error) {
		_, text, err := s.ProtocolComparison("ML-1M")
		return text, err
	})
	run("table5", "Table V — RSVD configuration and error", func() (string, error) {
		_, text, err := s.TableV(nil)
		return text, err
	})
}
