package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden files from the current output:
//
//	go test ./cmd/experiments -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// runCLI executes the experiments CLI in-process, returning its stdout.
// Progress chatter goes to stderr and is deliberately not captured — only
// the report bytes must be deterministic.
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out, io.Discard); err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return out.String()
}

// checkGolden compares the output against the checked-in golden file
// (regenerating it under -update).
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output diverged from %s (regenerate with -update if intended).\n--- got ---\n%s\n--- want ---\n%s",
			path, got, string(want))
	}
}

// TestCompareReportGoldenAndDeterministic pins the -compare path three ways:
// byte-identical across two runs of the same process, byte-identical across
// -workers 1 and -workers 8 (the OSLG out-of-sample pass shards across
// workers when -sample > 0), and byte-identical to the checked-in golden
// file across processes and commits.
func TestCompareReportGoldenAndDeterministic(t *testing.T) {
	args := func(workers string) []string {
		return []string{
			"-compare", "Pop,ItemAvg,GANC@Pop",
			"-preset", "ML-100K",
			"-scale", "0.06",
			"-n", "5",
			"-sample", "20",
			"-seed", "3",
			"-workers", workers,
		}
	}
	first := runCLI(t, args("1")...)
	second := runCLI(t, args("1")...)
	if first != second {
		t.Fatal("two identical runs produced different reports")
	}
	parallel := runCLI(t, args("8")...)
	if parallel != first {
		t.Fatalf("-workers 8 diverged from -workers 1.\n--- workers=8 ---\n%s\n--- workers=1 ---\n%s", parallel, first)
	}
	if !strings.Contains(first, "GANC(Pop") {
		t.Fatalf("report is missing the GANC row:\n%s", first)
	}
	checkGolden(t, "compare_ml100k.golden", first)
}

// TestSuiteReportGoldenAndDeterministic pins a paper-experiment run (the
// dataset-statistics table: every synthetic dataset generated, no training)
// the same three ways.
func TestSuiteReportGoldenAndDeterministic(t *testing.T) {
	args := []string{"-only", "table2", "-scale", "0.06", "-seed", "3"}
	first := runCLI(t, args...)
	if second := runCLI(t, args...); second != first {
		t.Fatal("two identical table2 runs produced different reports")
	}
	if !strings.Contains(first, "Table II") {
		t.Fatalf("report is missing the Table II header:\n%s", first)
	}
	checkGolden(t, "table2.golden", first)
}

// TestCompareRejectsUnknownCombos pins the CLI's error path (no os.Exit in
// run, so failures are testable).
func TestCompareRejectsUnknownCombos(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-compare", "NoSuchModel", "-scale", "0.06"}, &out, io.Discard)
	if err == nil {
		t.Fatal("unknown base accepted")
	}
}
