// Command gancd is the serving daemon: it runs one role of a (possibly
// sharded) GANC serving deployment from warm-start snapshots. Training and
// evaluation live in cmd/ganc; gancd only loads, splits and serves.
//
// Roles (-role):
//
//	standalone  serve one snapshot on one node (the cmd/ganc serve mode,
//	            without the training machinery)
//	split       shard-split a snapshot: write N shard-scoped snapshots
//	            (shard id + hash-ring epoch in each) into -out
//	shard       serve one shard snapshot; refuses snapshots whose identity
//	            disagrees with the -shards/-shard-id/-epoch flags. With
//	            -replica-addrs it also ships every committed ingest batch to
//	            the listed replica nodes over POST /replicate
//	replica     serve one shard snapshot as a warm read replica: no client
//	            writes (/ingest is absent), POST /replicate applies the
//	            primary's committed batches into the replica's own
//	            write-ahead log, /health reports the replication cursor/lag
//	router      scatter-gather front over -peers: proxies /recommend, fans
//	            /recommend/batch and /ingest out by user ownership, merges,
//	            aggregates /info and /health, answers typed 503s for dead
//	            shards. A "primary+replica" peer entry enables read failover
//	            to that shard's replicas, bounded by -max-replica-lag
//	cluster     the whole topology in one process (a demo/benchmark form):
//	            split into a temp dir, boot every shard (-replicas warm
//	            replicas each), serve the router. -write-quorum K acks each
//	            committed batch only after K replicas hold it; -auto-failover
//	            promotes a suspected-dead primary's freshest replica with no
//	            operator call (tune the detector with -detect-interval-ms
//	            and -suspect-after)
//
// A 3-shard deployment, one process per node:
//
//	ganc -preset ML-1M -arec Pop -save model.snap
//	gancd -role split -load model.snap -shards 3 -out shards/
//	gancd -role shard -load shards/shard-000.snap -serve :8081 &
//	gancd -role shard -load shards/shard-001.snap -serve :8082 &
//	gancd -role shard -load shards/shard-002.snap -serve :8083 &
//	gancd -role router -peers :8081,:8082,:8083 -serve :8080
//
// The same topology with one replica behind shard 0:
//
//	gancd -role replica -load shards/shard-000.snap -ingest-log r0.wal -serve :9081 &
//	gancd -role shard -load shards/shard-000.snap -ingest-log s0.wal \
//	      -replica-addrs :9081 -serve :8081 &
//	gancd -role router -peers :8081+:9081,:8082,:8083 -serve :8080
//
// The same topology in one process:
//
//	gancd -role cluster -load model.snap -shards 3 -replicas 1 -serve :8080
//
// A cluster-role daemon can be resharded live — user histories stream to
// the new owners while traffic keeps flowing (DESIGN.md §14):
//
//	curl -X POST 'http://localhost:8080/admin/reshard?target=4'
//
// The router and the shard snapshots must agree on (epoch, shard count):
// ownership is a pure function of that pair, so a mismatched deployment
// would silently route users to shards that never ingested their events.
// Shard servers embed their identity in /info and the router flags
// mismatches there (see DESIGN.md §10 for the epoch rules).
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ganc"
)

// obsSettings carries the observability/admission flags every serving role
// shares: a /metrics endpoint, JSON-line request logging, per-client rate
// limiting and a concurrency cap.
type obsSettings struct {
	metrics       bool
	requestLog    string
	rateLimit     float64
	rateBurst     float64
	maxConcurrent int
	maxWaitMs     int
}

// admission translates the flags into an admission configuration (the zero
// value disables both gates).
func (o obsSettings) admission() ganc.AdmissionConfig {
	return ganc.AdmissionConfig{
		RatePerSec:    o.rateLimit,
		Burst:         o.rateBurst,
		MaxConcurrent: o.maxConcurrent,
		MaxWait:       time.Duration(o.maxWaitMs) * time.Millisecond,
	}
}

// logger opens the request-log sink ("-" = stderr). The cleanup (possibly
// nil) closes a file sink.
func (o obsSettings) logger() (*ganc.RequestLogger, func() error, error) {
	if o.requestLog == "" {
		return nil, nil, nil
	}
	if o.requestLog == "-" {
		return ganc.NewRequestLogger(os.Stderr, ganc.LogInfo), nil, nil
	}
	f, err := os.OpenFile(o.requestLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("opening request log: %w", err)
	}
	return ganc.NewRequestLogger(f, ganc.LogInfo), f.Close, nil
}

// serverOptions translates the flags into single-node server options.
func (o obsSettings) serverOptions() ([]ganc.ServerOption, func() error, error) {
	var opts []ganc.ServerOption
	if o.metrics {
		opts = append(opts, ganc.WithMetrics(ganc.NewMetricsRegistry()))
	}
	log, cleanup, err := o.logger()
	if err != nil {
		return nil, nil, err
	}
	if log != nil {
		opts = append(opts, ganc.WithRequestLog(log))
	}
	if o.rateLimit > 0 {
		opts = append(opts, ganc.WithRateLimit(o.rateLimit, o.rateBurst))
	}
	if o.maxConcurrent > 0 {
		opts = append(opts, ganc.WithMaxConcurrent(o.maxConcurrent, time.Duration(o.maxWaitMs)*time.Millisecond))
	}
	return opts, cleanup, nil
}

func main() {
	role := flag.String("role", "standalone", "standalone | split | shard | replica | router | cluster")
	loadPath := flag.String("load", "", "snapshot to load (written by ganc -save, or a shard snapshot from -role split)")
	serveAddr := flag.String("serve", "", "listen address (e.g. :8080)")
	shards := flag.Int("shards", 3, "shard count (split, cluster; cross-checked in shard role)")
	shardID := flag.Int("shard-id", -1, "expected shard id (shard role; -1 trusts the snapshot)")
	peers := flag.String("peers", "", "comma-separated shard addresses in shard-id order (router role); \"primary+replica1+replica2\" entries declare read-failover replicas")
	replicaAddrs := flag.String("replica-addrs", "", "comma-separated replica addresses this shard ships committed batches to (shard role)")
	replicas := flag.Int("replicas", 0, "warm replicas per shard (cluster role)")
	writeQuorum := flag.Int("write-quorum", 0, "k-of-n quorum writes: ack a committed batch only after k replicas hold it (shard and cluster roles; 0 = fire-and-forget)")
	autoFailover := flag.Bool("auto-failover", false, "cluster: promote a suspected-dead primary's freshest replica automatically, no operator call")
	detectIntervalMs := flag.Int("detect-interval-ms", 0, "failure-detector /health sampling interval in ms (router and cluster roles; 0 = default 250)")
	suspectAfter := flag.Int("suspect-after", 0, "consecutive missed probes before the detector suspects a node (0 = default 3)")
	maxReplicaLag := flag.Int64("max-replica-lag", 0, "router: max committed-event lag for a replica to serve a failover read (0 = default 1024, negative disables failover)")
	epoch := flag.Uint64("epoch", 1, "hash-ring epoch (split, router, cluster; cross-checked in shard role)")
	outDir := flag.String("out", "", "output directory for shard snapshots (split role)")
	cache := flag.Int("cache", 0, "per-node LRU cache capacity (0 = serving default)")
	ingestLog := flag.String("ingest-log", "", "write-ahead log path for POST /ingest (standalone and shard roles)")
	checkpointInterval := flag.Int("checkpoint-interval", 0, "checkpoint the snapshot every this many ingested events (0 = never)")
	retries := flag.Int("retries", 2, "router: bounded retries per shard call before the typed 503")
	metrics := flag.Bool("metrics", false, "mount GET /metrics (Prometheus text format) on serving roles")
	requestLog := flag.String("request-log", "", "append one JSON line per request to this file (\"-\" = stderr)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client sustained requests/second (0 = unlimited)")
	rateBurst := flag.Float64("rate-burst", 0, "per-client burst allowance (0 = max(rate-limit, 1))")
	maxConcurrent := flag.Int("max-concurrent", 0, "cap on requests inside handlers at once (0 = uncapped)")
	maxWaitMs := flag.Int("max-wait-ms", 0, "how long an over-capacity request waits for a slot before a 429 (0 = shed immediately)")
	flag.Parse()

	obs := obsSettings{
		metrics:       *metrics,
		requestLog:    *requestLog,
		rateLimit:     *rateLimit,
		rateBurst:     *rateBurst,
		maxConcurrent: *maxConcurrent,
		maxWaitMs:     *maxWaitMs,
	}
	var err error
	switch *role {
	case "standalone":
		err = runStandalone(*loadPath, *serveAddr, *cache, *ingestLog, *checkpointInterval, obs)
	case "split":
		err = runSplit(*loadPath, *outDir, *shards, *epoch)
	case "shard":
		err = runShard(*loadPath, *serveAddr, *shards, *shardID, *epoch, *cache, *ingestLog, *checkpointInterval, *replicaAddrs, *writeQuorum, obs)
	case "replica":
		err = runReplica(*loadPath, *serveAddr, *shards, *shardID, *epoch, *cache, *ingestLog, *checkpointInterval, obs)
	case "router":
		err = runRouter(*peers, *serveAddr, *epoch, *retries, *maxReplicaLag, *detectIntervalMs, *suspectAfter, obs)
	case "cluster":
		err = runCluster(*loadPath, *serveAddr, *shards, *replicas, *writeQuorum, *autoFailover, *detectIntervalMs, *suspectAfter, *epoch, *cache, *checkpointInterval, obs)
	default:
		err = fmt.Errorf("unknown -role %q (standalone, split, shard, replica, router, cluster)", *role)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gancd:", err)
		os.Exit(1)
	}
}

// loadSnapshot loads a snapshot with operator-grade error messages.
func loadSnapshot(path string) (*ganc.Pipeline, error) {
	if path == "" {
		return nil, fmt.Errorf("-load is required (train and snapshot with: ganc -arec Pop -save model.snap)")
	}
	p, err := ganc.LoadEngine(path)
	switch {
	case errors.Is(err, ganc.ErrSnapshotVersion):
		return nil, fmt.Errorf("snapshot %s was written by an incompatible version of this tool: %w", path, err)
	case errors.Is(err, ganc.ErrSnapshotBadMagic):
		return nil, fmt.Errorf("%s is not a GANC snapshot: %w", path, err)
	case errors.Is(err, ganc.ErrSnapshotCorrupt):
		return nil, fmt.Errorf("snapshot %s is corrupt (truncated or bit-flipped): %w", path, err)
	case err != nil:
		return nil, err
	}
	return p, nil
}

// serveNode stands one serve.Server up around a pipeline (standalone and
// shard roles share it) and blocks. A non-empty replicaAddrs list attaches
// the primary-side replication shipper: every committed ingest batch is
// shipped to the replicas synchronously, with write-ahead-log catch-up for
// stragglers.
func serveNode(p *ganc.Pipeline, addr string, cache int, shard *ganc.ShardIdentity,
	ingestLog string, checkpointPath string, checkpointInterval int, replicaAddrs []string,
	writeQuorum int, obs obsSettings) error {
	if addr == "" {
		return fmt.Errorf("-serve is required for serving roles")
	}
	opts, obsCleanup, err := obs.serverOptions()
	if err != nil {
		return err
	}
	if obsCleanup != nil {
		defer func() { _ = obsCleanup() }()
	}
	if cache > 0 {
		opts = append(opts, ganc.WithServerCacheCapacity(cache))
	}
	if shard != nil {
		opts = append(opts, ganc.WithServerShardIdentity(*shard))
	}
	srv, err := ganc.NewServer(p.Train(), p, p.TopN(), opts...)
	if err != nil {
		return err
	}
	ingOpts := []ganc.IngestorOption{}
	if ingestLog != "" {
		ingOpts = append(ingOpts, ganc.WithIngestLog(ingestLog))
	}
	if checkpointInterval > 0 {
		ingOpts = append(ingOpts, ganc.WithIngestCheckpoint(checkpointPath, checkpointInterval))
	}
	var shipper *ganc.Shipper
	if len(replicaAddrs) > 0 {
		if shard == nil {
			return fmt.Errorf("-replica-addrs requires a shard snapshot (replication is per shard)")
		}
		if ingestLog == "" {
			return fmt.Errorf("-replica-addrs requires -ingest-log (the shipper replays the write-ahead log to catch lagging replicas up)")
		}
		if writeQuorum > len(replicaAddrs) {
			return fmt.Errorf("-write-quorum %d exceeds the %d replicas in -replica-addrs", writeQuorum, len(replicaAddrs))
		}
		shipper = ganc.NewShipper(ganc.ShipperConfig{
			Shard:       shard.ShardID,
			Epoch:       shard.RingEpoch,
			WALPath:     ingestLog,
			Replicas:    replicaAddrs,
			WriteQuorum: writeQuorum,
		})
		defer shipper.Close()
		ingOpts = append(ingOpts, ganc.WithCommitHook(shipper.Commit))
		srv.SetReplicationProbe(shipper.Status)
	}
	endpoints := "GET /recommend?user=<id>, POST /recommend/batch, /info, /health"
	if obs.metrics {
		endpoints += ", GET /metrics"
	}
	ing, err := ganc.NewIngestor(srv, p, ingOpts...)
	if err != nil {
		return fmt.Errorf("enabling ingestion: %w", err)
	}
	if ingestLog != "" {
		replayed, err := ing.Recover()
		if err != nil {
			return fmt.Errorf("replaying ingest log %s: %w", ingestLog, err)
		}
		if replayed > 0 {
			fmt.Fprintf(os.Stderr, "replayed %d events from %s (resuming at seq %d)\n", replayed, ingestLog, ing.Seq())
		}
	}
	if shipper != nil {
		// Recovery replay already advanced the shipper's head through the
		// commit hook; the handshake adopts each replica's true cursor so
		// catch-up starts from reality rather than a guess.
		shipper.Resync()
		if writeQuorum > 0 {
			fmt.Fprintf(os.Stderr, "replicating to %s (write quorum %d of %d)\n",
				strings.Join(replicaAddrs, ", "), writeQuorum, len(replicaAddrs))
		} else {
			fmt.Fprintf(os.Stderr, "replicating to %s\n", strings.Join(replicaAddrs, ", "))
		}
	}
	endpoints += ", POST /ingest"
	if shard != nil {
		fmt.Fprintf(os.Stderr, "serving %s on %s as shard %d/%d epoch %d (%s)\n",
			p.Name(), addr, shard.ShardID, shard.NumShards, shard.RingEpoch, endpoints)
	} else {
		fmt.Fprintf(os.Stderr, "serving %s on %s (%s)\n", p.Name(), addr, endpoints)
	}
	return http.ListenAndServe(addr, srv.Handler())
}

// runStandalone serves a plain snapshot on one node.
func runStandalone(loadPath, addr string, cache int, ingestLog string, checkpointInterval int, obs obsSettings) error {
	p, err := loadSnapshot(loadPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %s from %s: %d users, %d items, %d ratings\n",
		p.Name(), loadPath, p.Train().NumUsers(), p.Train().NumItems(), p.Train().NumRatings())
	return serveNode(p, addr, cache, nil, ingestLog, loadPath, checkpointInterval, nil, 0, obs)
}

// runSplit writes N shard-scoped snapshots of one plain snapshot.
func runSplit(loadPath, outDir string, shards int, epoch uint64) error {
	if outDir == "" {
		return fmt.Errorf("-out directory is required for -role split")
	}
	if shards <= 0 {
		return fmt.Errorf("-shards must be positive, got %d", shards)
	}
	p, err := loadSnapshot(loadPath)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for i := 0; i < shards; i++ {
		path := filepath.Join(outDir, fmt.Sprintf("shard-%03d.snap", i))
		id := ganc.ShardIdentity{ShardID: i, NumShards: shards, RingEpoch: epoch}
		if err := p.SaveShard(path, id); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (shard %d/%d, epoch %d)\n", path, i, shards, epoch)
	}
	fmt.Fprintf(os.Stderr, "serve each with: gancd -role shard -load %s/shard-NNN.snap -serve :PORT\n", outDir)
	return nil
}

// loadShardSnapshot loads a shard snapshot, cross-checking its identity
// against the flags when they are given (shard and replica roles share it).
func loadShardSnapshot(loadPath string, shards, shardID int, epoch uint64) (*ganc.Pipeline, ganc.ShardIdentity, error) {
	var id ganc.ShardIdentity
	if loadPath == "" {
		return nil, id, fmt.Errorf("-load is required (produce shard snapshots with -role split)")
	}
	p, id, err := ganc.LoadShardEngine(loadPath)
	if err != nil {
		return nil, id, err
	}
	if shardID >= 0 && id.ShardID != shardID {
		return nil, id, fmt.Errorf("snapshot %s is shard %d, but -shard-id says %d", loadPath, id.ShardID, shardID)
	}
	if flagWasSet("shards") && id.NumShards != shards {
		return nil, id, fmt.Errorf("snapshot %s was cut for %d shards, but -shards says %d", loadPath, id.NumShards, shards)
	}
	if flagWasSet("epoch") && id.RingEpoch != epoch {
		return nil, id, fmt.Errorf("snapshot %s was cut for ring epoch %d, but -epoch says %d (re-split after membership changes)",
			loadPath, id.RingEpoch, epoch)
	}
	return p, id, nil
}

// runShard serves one shard snapshot, cross-checking its identity against
// the flags when they are given.
func runShard(loadPath, addr string, shards, shardID int, epoch uint64, cache int,
	ingestLog string, checkpointInterval int, replicaAddrs string, writeQuorum int, obs obsSettings) error {
	p, id, err := loadShardSnapshot(loadPath, shards, shardID, epoch)
	if err != nil {
		return err
	}
	var reps []string
	if replicaAddrs != "" {
		for _, a := range strings.Split(replicaAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				reps = append(reps, a)
			}
		}
	}
	return serveNode(p, addr, cache, &id, ingestLog, loadPath, checkpointInterval, reps, writeQuorum, obs)
}

// runReplica serves one shard snapshot as a warm read replica: the only
// write path is POST /replicate (client /ingest is absent), applied batches
// land in the replica's own write-ahead log, and /health reports the
// replication cursor and lag.
func runReplica(loadPath, addr string, shards, shardID int, epoch uint64, cache int,
	ingestLog string, checkpointInterval int, obs obsSettings) error {
	if addr == "" {
		return fmt.Errorf("-serve is required for -role replica")
	}
	if ingestLog == "" {
		return fmt.Errorf("-ingest-log is required for -role replica (the replica's own write-ahead log makes it promotable)")
	}
	p, id, err := loadShardSnapshot(loadPath, shards, shardID, epoch)
	if err != nil {
		return err
	}
	opts, obsCleanup, err := obs.serverOptions()
	if err != nil {
		return err
	}
	if obsCleanup != nil {
		defer func() { _ = obsCleanup() }()
	}
	if cache > 0 {
		opts = append(opts, ganc.WithServerCacheCapacity(cache))
	}
	opts = append(opts, ganc.WithServerShardIdentity(id))
	srv, err := ganc.NewServer(p.Train(), p, p.TopN(), opts...)
	if err != nil {
		return err
	}
	ingOpts := []ganc.IngestorOption{
		ganc.WithIngestLog(ingestLog),
		ganc.WithoutIngestSink(),
	}
	if checkpointInterval > 0 {
		ingOpts = append(ingOpts, ganc.WithIngestCheckpoint(loadPath, checkpointInterval))
	}
	ing, err := ganc.NewIngestor(srv, p, ingOpts...)
	if err != nil {
		return fmt.Errorf("enabling replication apply: %w", err)
	}
	replayed, err := ing.Recover()
	if err != nil {
		return fmt.Errorf("replaying ingest log %s: %w", ingestLog, err)
	}
	if replayed > 0 {
		fmt.Fprintf(os.Stderr, "replayed %d events from %s (resuming at seq %d)\n", replayed, ingestLog, ing.Seq())
	}
	applier := ganc.NewReplicaApplier(id.ShardID, id.RingEpoch, ing)
	srv.SetReplicationProbe(applier.Status)
	mux := http.NewServeMux()
	mux.Handle("/replicate", applier.Handler())
	mux.Handle("/", srv.Handler())
	endpoints := "GET /recommend?user=<id>, POST /recommend/batch, /info, /health, POST /replicate"
	if obs.metrics {
		endpoints += ", GET /metrics"
	}
	fmt.Fprintf(os.Stderr, "serving %s on %s as replica of shard %d/%d epoch %d (%s)\n",
		p.Name(), addr, id.ShardID, id.NumShards, id.RingEpoch, endpoints)
	return http.ListenAndServe(addr, mux)
}

// runRouter fronts the peers with the scatter-gather router. When any peer
// entry declares replicas, a shared failure detector samples every node's
// /health in the background so failed reads route by the cached liveness
// view — zero per-request probes — and suspected primaries are skipped
// without burning the retry budget.
func runRouter(peers, addr string, epoch uint64, retries int, maxReplicaLag int64,
	detectIntervalMs, suspectAfter int, obs obsSettings) error {
	if addr == "" {
		return fmt.Errorf("-serve is required for -role router")
	}
	infos, err := ganc.ParsePeerTopology(peers)
	if err != nil {
		return fmt.Errorf("-peers: %w (expected \"host1:port,host2:port,…\" in shard-id order; append \"+replicahost:port\" for read-failover replicas)", err)
	}
	ring, err := ganc.NewRing(epoch, infos)
	if err != nil {
		return err
	}
	cfg := ganc.RouterConfig{Ring: ring, Retries: retries, MaxReplicaLag: maxReplicaLag, Admission: ganc.NewAdmission(obs.admission())}
	hasReplicas := false
	for _, info := range infos {
		if len(info.Replicas) > 0 {
			hasReplicas = true
		}
	}
	if hasReplicas {
		d := ganc.NewFailureDetector(ganc.FailureDetectorConfig{
			Ring:         func() *ganc.Ring { return ring },
			Interval:     time.Duration(detectIntervalMs) * time.Millisecond,
			SuspectAfter: suspectAfter,
		})
		defer d.Close()
		cfg.Detector = d
	}
	if obs.metrics {
		cfg.Metrics = ganc.NewMetricsRegistry()
	}
	log, logCleanup, err := obs.logger()
	if err != nil {
		return err
	}
	if logCleanup != nil {
		defer func() { _ = logCleanup() }()
	}
	cfg.RequestLog = log
	rt, err := ganc.NewRouter(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "routing over %d shards (epoch %d) on %s: %s\n",
		ring.NumShards(), epoch, addr, peers)
	return http.ListenAndServe(addr, rt.Handler())
}

// runCluster boots the whole sharded topology in one process.
func runCluster(loadPath, addr string, shards, replicas, writeQuorum int, autoFailover bool,
	detectIntervalMs, suspectAfter int, epoch uint64, cache, checkpointInterval int, obs obsSettings) error {
	if addr == "" {
		return fmt.Errorf("-serve is required for -role cluster")
	}
	if writeQuorum > replicas {
		return fmt.Errorf("-write-quorum %d exceeds -replicas %d", writeQuorum, replicas)
	}
	if autoFailover && replicas < 1 {
		return fmt.Errorf("-auto-failover requires -replicas >= 1 (promotion needs a replica to promote)")
	}
	p, err := loadSnapshot(loadPath)
	if err != nil {
		return err
	}
	opts := []ganc.ClusterOption{
		ganc.WithShards(shards),
		ganc.WithRouterAddr(addr),
		ganc.WithClusterEpoch(epoch),
		ganc.WithClusterCheckpointEvery(checkpointInterval),
	}
	if replicas > 0 {
		opts = append(opts, ganc.WithReplicas(replicas))
	}
	if writeQuorum > 0 {
		opts = append(opts, ganc.WithWriteQuorum(writeQuorum))
	}
	if autoFailover {
		opts = append(opts, ganc.WithAutoFailover())
	}
	if detectIntervalMs > 0 || suspectAfter > 0 {
		opts = append(opts, ganc.WithFailureDetection(time.Duration(detectIntervalMs)*time.Millisecond, suspectAfter))
	}
	if cache > 0 {
		opts = append(opts, ganc.WithShardCacheCapacity(cache))
	}
	if obs.metrics {
		opts = append(opts, ganc.WithClusterMetrics(ganc.NewMetricsRegistry()))
	}
	if a := obs.admission(); ganc.NewAdmission(a) != nil {
		opts = append(opts, ganc.WithClusterAdmission(a))
	}
	log, logCleanup, err := obs.logger()
	if err != nil {
		return err
	}
	if logCleanup != nil {
		defer func() { _ = logCleanup() }()
	}
	if log != nil {
		opts = append(opts, ganc.WithClusterRequestLog(log))
	}
	c, err := ganc.NewCluster(p, opts...)
	if err != nil {
		return err
	}
	defer c.Close()
	shardAddrs := make([]string, c.NumShards())
	for i := range shardAddrs {
		shardAddrs[i] = c.ShardAddr(i)
	}
	fmt.Fprintf(os.Stderr, "cluster up: router on %s, %d shards on %s (dir %s)\n",
		c.RouterAddr(), c.NumShards(), strings.Join(shardAddrs, ", "), c.Dir())
	select {} // serve until killed
}

// flagWasSet reports whether the named flag was given explicitly (so the
// shard role only cross-checks identities the operator asserted).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
