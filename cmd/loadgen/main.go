// Command loadgen benchmarks the serving layer: it drives a closed loop of
// mixed /recommend, /recommend/batch and /ingest traffic and writes the
// latency/throughput/cache measurement as BENCH_serve.json (the serving
// counterpart of cmd/bench's BENCH_sweep.json).
//
// By default it is self-contained: it generates a seeded synthetic universe,
// trains a pipeline on it, serves it on a loopback listener with streaming
// ingestion enabled, and measures that server. Against -url it becomes a pure
// driver for an externally running server — the universe flags must then
// match the dataset the target was trained on, because request user keys are
// derived from the generated universe.
//
// Examples:
//
//	# The standard benchmark: a 100k-user universe, read-heavy mix.
//	loadgen -users 100000 -items 10000 -ratings 1000000 -requests 20000
//
//	# Quick smoke for CI.
//	loadgen -users 2000 -items 500 -ratings 40000 -requests 2000 -out BENCH_serve.json
//
//	# Drive an already running server.
//	ganc -preset ML-100K -arec Pop -serve :8080 &
//	loadgen -url http://127.0.0.1:8080 -users 943 ...
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"ganc"
)

func main() {
	users := flag.Int("users", 100_000, "universe user count")
	items := flag.Int("items", 10_000, "universe item count")
	ratings := flag.Int("ratings", 1_000_000, "universe rating count")
	zipf := flag.Float64("zipf", 1.1, "item-popularity Zipf exponent")
	seed := flag.Int64("seed", 1, "universe and stream seed")
	arec := flag.String("arec", "Pop", "accuracy recommender for the served pipeline")
	theta := flag.String("theta", "T", "preference model: A, N, T, G, R, C (cheap estimators recommended at scale)")
	topN := flag.Int("n", 10, "serving list size")
	cache := flag.Int("cache", 0, "serving LRU capacity (0 = serving default)")
	url := flag.String("url", "", "drive this external server instead of self-hosting")
	requests := flag.Int("requests", 20_000, "total requests in the closed loop")
	concurrency := flag.Int("concurrency", 16, "closed-loop worker count")
	mixRecommend := flag.Int("mix-recommend", 90, "relative weight of GET /recommend traffic")
	mixBatch := flag.Int("mix-batch", 8, "relative weight of POST /recommend/batch traffic")
	mixIngest := flag.Int("mix-ingest", 2, "relative weight of POST /ingest traffic")
	batchSize := flag.Int("batch", 20, "users per batch request")
	ingestBatch := flag.Int("ingest-batch", 20, "events per ingest request")
	reqZipf := flag.Float64("request-zipf", 1.0, "request-popularity skew across users")
	out := flag.String("out", "BENCH_serve.json", "output report path")
	flag.Parse()

	if err := run(universeConfig(*users, *items, *ratings, *zipf, *seed),
		*arec, *theta, *topN, *cache, *url, *out,
		ganc.LoadConfig{
			Requests:        *requests,
			Concurrency:     *concurrency,
			Mix:             ganc.LoadMix{Recommend: *mixRecommend, Batch: *mixBatch, Ingest: *mixIngest},
			BatchSize:       *batchSize,
			IngestBatchSize: *ingestBatch,
			RequestZipf:     *reqZipf,
			Seed:            *seed,
		}); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// universeConfig maps the flags onto a universe description.
func universeConfig(users, items, ratings int, zipf float64, seed int64) ganc.UniverseConfig {
	return ganc.UniverseConfig{
		Name:         "loadgen",
		Users:        users,
		Items:        items,
		Ratings:      ratings,
		ZipfExponent: zipf,
		Seed:         seed,
	}
}

// run generates the universe, resolves (or stands up) the target server,
// drives the load and writes the report.
func run(ucfg ganc.UniverseConfig, arec, theta string, topN, cache int, url, out string, load ganc.LoadConfig) error {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating universe: %d users × %d items, %d ratings ...\n",
		ucfg.Users, ucfg.Items, ucfg.Ratings)
	u, err := ganc.NewUniverse(ucfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "universe ready in %.1fs (%d ratings)\n",
		time.Since(start).Seconds(), u.Train().NumRatings())

	if url == "" {
		addr, shutdown, err := selfHost(u, arec, theta, topN, cache)
		if err != nil {
			return err
		}
		defer shutdown()
		url = "http://" + addr
	}
	load.BaseURL = url

	fmt.Fprintf(os.Stderr, "driving %d requests × %d workers against %s ...\n",
		load.Requests, load.Concurrency, load.BaseURL)
	res, err := ganc.RunLoad(context.Background(), u, load)
	if err != nil {
		return err
	}
	printSummary(res)

	// The target's /info is authoritative for what was actually measured —
	// in external mode the local -n/-arec flags describe nothing.
	rep := &ganc.BenchReport{
		Universe: u.Config(),
		Engine:   res.Model,
		TopN:     res.TopN,
		Load:     load,
		Result:   res,
	}
	if err := ganc.WriteBenchReport(out, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	if res.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed server-side", res.Errors, res.Requests)
	}
	// Rejected (4xx) traffic means the driver and the target disagree — the
	// universe flags don't match the served dataset, or /ingest is disabled —
	// and its fast error responses would silently flatter every latency
	// percentile. A trace of legitimate 404s (a user with an exhausted
	// candidate set) is tolerated; more fails the benchmark.
	if res.Rejected*200 > res.Requests {
		return fmt.Errorf("%d of %d requests were rejected (4xx): universe flags likely do not match the target "+
			"(check -users/-items/-seed, or -mix-ingest 0 for targets without ingestion)", res.Rejected, res.Requests)
	}
	return nil
}

// selfHost trains a pipeline on the universe and serves it (with in-memory
// streaming ingestion) on a loopback listener.
func selfHost(u *ganc.Universe, arec, theta string, topN, cache int) (addr string, shutdown func(), err error) {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "training %s pipeline ...\n", arec)
	p, err := ganc.NewPipeline(u.Train(),
		ganc.WithBaseNamed(arec),
		ganc.WithPreferences(ganc.ParsePreferenceModel(theta)),
		ganc.WithTopN(topN))
	if err != nil {
		return "", nil, err
	}
	opts := []ganc.ServerOption{}
	if cache > 0 {
		opts = append(opts, ganc.WithServerCacheCapacity(cache))
	}
	srv, err := ganc.NewServer(u.Train(), p, topN, opts...)
	if err != nil {
		return "", nil, err
	}
	if _, err := ganc.NewIngestor(srv, p); err != nil {
		return "", nil, fmt.Errorf("enabling ingestion: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	fmt.Fprintf(os.Stderr, "serving %s on %s (trained in %.1fs)\n",
		p.Name(), ln.Addr(), time.Since(start).Seconds())
	return ln.Addr().String(), func() { hs.Close() }, nil
}

// printSummary reports the headline numbers on stderr.
func printSummary(res *ganc.LoadResult) {
	fmt.Fprintf(os.Stderr, "done: %d requests in %.1fs → %.0f req/s, %d errors, %d rejected, cache hit rate %.3f\n",
		res.Requests, res.DurationSec, res.ThroughputRPS, res.Errors, res.Rejected, res.CacheHitRate)
	for ep, st := range res.Endpoints {
		fmt.Fprintf(os.Stderr, "  %-10s n=%-7d p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
			ep, st.Count, st.P50Ms, st.P95Ms, st.P99Ms, st.MaxMs)
	}
}
