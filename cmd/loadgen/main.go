// Command loadgen benchmarks the serving layer: it drives a closed loop of
// mixed /recommend, /recommend/batch and /ingest traffic and writes the
// latency/throughput/cache measurement as BENCH_serve.json (the serving
// counterpart of cmd/bench's BENCH_sweep.json).
//
// By default it is self-contained: it generates a seeded synthetic universe,
// trains a pipeline on it, serves it on a loopback listener with streaming
// ingestion enabled, and measures that server. Against -url it becomes a pure
// driver for an externally running server — the universe flags must then
// match the dataset the target was trained on, because request user keys are
// derived from the generated universe.
//
// With -cluster N it instead benchmarks the sharded serving tier: the same
// universe and load are driven against a single node and an N-shard cluster
// behind the scatter-gather router, both with the identical per-node cache
// budget (-node-cache) and an unmeasured warm-up pass first, and the
// comparison lands in BENCH_cluster.json. On one machine the cluster's win
// is aggregate cache capacity (N× the working set), so the measured speedup
// is a conservative floor for multi-host deployments — see DESIGN.md §10.
// Adding -replicas R puts R warm replicas behind every shard and appends a
// failover section to the report: a read-only run during which shard 0's
// primary is killed mid-flight, measuring the req/s and error count the
// router's replica failover sustains, followed by a promotion (DESIGN.md
// §13). Adding -autofail instead arms the cluster's failure detector with
// auto-failover and repeats the kill with NO operator promotion — the
// detector must suspect the dead primary and promote its freshest replica
// on its own (ring epoch bump), still with zero client-visible errors; the
// measurement lands in an auto_failover report section, and -write-quorum K
// makes every committed batch quorum-acknowledged during the comparison.
// Adding -reshard M appends a reshard section: a mixed read/write run
// during which the cluster grows to M shards live — user histories stream to
// the new owners and the router cuts over per user — with zero client-visible
// errors required (DESIGN.md §14).
//
// Examples:
//
//	# The standard benchmark: a 100k-user universe, read-heavy mix.
//	loadgen -users 100000 -items 10000 -ratings 1000000 -requests 20000
//
//	# Quick smoke for CI.
//	loadgen -users 2000 -items 500 -ratings 40000 -requests 2000 -out BENCH_serve.json
//
//	# Drive an already running server.
//	ganc -preset ML-100K -arec Pop -serve :8080 &
//	loadgen -url http://127.0.0.1:8080 -users 943 ...
//
//	# 3-shard cluster vs single node on the standard universe.
//	loadgen -cluster 3 -arec RSVD -requests 20000 -mix-ingest 0
//
//	# Elastic reshard drill: grow 2 shards to 3 mid-run, zero errors required.
//	loadgen -cluster 2 -reshard 3 -users 2000 -items 500 -ratings 40000 -requests 2000
//
//	# Overload drill: admission-controlled server, offered load beyond
//	# capacity, graceful shedding required (typed 429s, zero 5xx).
//	loadgen -overload -users 2000 -items 500 -ratings 40000 -requests 4000 -max-concurrent 4
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"ganc"
	"ganc/internal/simtest"
)

func main() {
	users := flag.Int("users", 100_000, "universe user count")
	items := flag.Int("items", 10_000, "universe item count")
	ratings := flag.Int("ratings", 1_000_000, "universe rating count")
	zipf := flag.Float64("zipf", 1.1, "item-popularity Zipf exponent")
	seed := flag.Int64("seed", 1, "universe and stream seed")
	arec := flag.String("arec", "Pop", "accuracy recommender for the served pipeline")
	precisionName := flag.String("precision", "f64", "scoring precision tier for the served pipeline (f64, f32, int8)")
	theta := flag.String("theta", "T", "preference model: A, N, T, G, R, C (cheap estimators recommended at scale)")
	topN := flag.Int("n", 10, "serving list size")
	cache := flag.Int("cache", 0, "serving LRU capacity (0 = serving default)")
	url := flag.String("url", "", "drive this external server instead of self-hosting")
	requests := flag.Int("requests", 20_000, "total requests in the closed loop")
	concurrency := flag.Int("concurrency", 16, "closed-loop worker count")
	mixRecommend := flag.Int("mix-recommend", 90, "relative weight of GET /recommend traffic")
	mixBatch := flag.Int("mix-batch", 8, "relative weight of POST /recommend/batch traffic")
	mixIngest := flag.Int("mix-ingest", 2, "relative weight of POST /ingest traffic")
	batchSize := flag.Int("batch", 20, "users per batch request")
	ingestBatch := flag.Int("ingest-batch", 20, "events per ingest request")
	reqZipf := flag.Float64("request-zipf", 1.0, "request-popularity skew across users")
	out := flag.String("out", "", "output report path (default BENCH_serve.json; BENCH_cluster.json in -cluster mode, BENCH_overload.json in -overload mode)")
	clusterShards := flag.Int("cluster", 0, "compare an N-shard cluster against a single node and write BENCH_cluster.json (0 = plain single-target mode)")
	clusterReplicas := flag.Int("replicas", 0, "cluster mode: warm replicas per shard; > 0 appends a mid-run primary-kill failover drill to the report")
	writeQuorum := flag.Int("write-quorum", 0, "cluster mode: k-of-n quorum writes — every committed batch waits for k replica acks (0 = fire-and-forget)")
	autoFail := flag.Bool("autofail", false, "cluster mode: hands-off failover drill — kill a primary mid-run with auto-failover armed and require a detector-driven promotion with zero client errors (replaces the manual failover drill)")
	reshardTo := flag.Int("reshard", 0, "cluster mode: grow the cluster to this shard count mid-run and append a reshard section to the report (0 = no drill)")
	nodeCache := flag.Int("node-cache", 8192, "cluster mode: per-node LRU budget shared by the single node and every shard")
	warmup := flag.Int("warmup", -1, "cluster mode: unmeasured warm-up requests before each measured run (-1 = same as -requests)")
	overload := flag.Bool("overload", false, "overload drill: serve with admission control, offer load beyond capacity and require graceful shedding (typed 429s, zero 5xx)")
	rateLimit := flag.Float64("rate-limit", 0, "overload mode: per-client sustained requests/second (0 = no rate gate)")
	rateBurst := flag.Float64("rate-burst", 0, "overload mode: per-client burst allowance (0 = max(rate-limit, 1))")
	maxConcurrent := flag.Int("max-concurrent", 0, "overload mode: concurrency cap inside handlers (0 with no -rate-limit = defaults to concurrency/4, forcing overload)")
	maxWaitMs := flag.Int("max-wait-ms", 0, "overload mode: how long an over-capacity request waits before the 429 (0 = shed immediately)")
	flag.Parse()

	precision, err := ganc.ParseScoringPrecision(*precisionName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	load := ganc.LoadConfig{
		Requests:        *requests,
		Concurrency:     *concurrency,
		Mix:             ganc.LoadMix{Recommend: *mixRecommend, Batch: *mixBatch, Ingest: *mixIngest},
		BatchSize:       *batchSize,
		IngestBatchSize: *ingestBatch,
		RequestZipf:     *reqZipf,
		Seed:            *seed,
	}
	admitCfg := ganc.AdmissionConfig{
		RatePerSec:    *rateLimit,
		Burst:         *rateBurst,
		MaxConcurrent: *maxConcurrent,
		MaxWait:       time.Duration(*maxWaitMs) * time.Millisecond,
	}
	if *overload && *rateLimit <= 0 && *maxConcurrent <= 0 {
		// No admission flag given: cap concurrency at a quarter of the offered
		// worker count, so the closed loop overruns capacity by construction.
		admitCfg.MaxConcurrent = *concurrency / 4
		if admitCfg.MaxConcurrent < 1 {
			admitCfg.MaxConcurrent = 1
		}
	}
	switch {
	case *clusterShards > 0 && *url != "":
		err = fmt.Errorf("-cluster and -url are mutually exclusive: the comparison self-hosts both targets")
	case *clusterShards > 0 && *overload:
		err = fmt.Errorf("-cluster and -overload are mutually exclusive (run the overload drill against a single node, or an external router via -url)")
	case *clusterReplicas > 0 && *clusterShards <= 0:
		err = fmt.Errorf("-replicas requires -cluster (replicas are a property of the sharded target)")
	case *reshardTo > 0 && *clusterShards <= 0:
		err = fmt.Errorf("-reshard requires -cluster (the drill grows the sharded target)")
	case *reshardTo > 0 && *reshardTo <= *clusterShards:
		err = fmt.Errorf("-reshard must exceed -cluster: the drill grows %d shards to a larger ring", *clusterShards)
	case *autoFail && *clusterReplicas < 1:
		err = fmt.Errorf("-autofail requires -cluster with -replicas >= 1 (the detector needs a replica to promote)")
	case *writeQuorum > 0 && *writeQuorum > *clusterReplicas:
		err = fmt.Errorf("-write-quorum %d exceeds -replicas %d", *writeQuorum, *clusterReplicas)
	case *clusterShards > 0:
		err = runCluster(universeConfig(*users, *items, *ratings, *zipf, *seed),
			*arec, *theta, precision, *topN, *clusterShards, *clusterReplicas, *writeQuorum, *nodeCache, *warmup,
			*reshardTo, *autoFail, defaultOut(*out, "BENCH_cluster.json"), load)
	default:
		// The overload drill gets its own default output: its latency numbers
		// describe a deliberately saturated server and must not clobber the
		// steady-state BENCH_serve.json artifact.
		def := "BENCH_serve.json"
		if *overload {
			def = "BENCH_overload.json"
		}
		err = run(universeConfig(*users, *items, *ratings, *zipf, *seed),
			*arec, *theta, precision, *topN, *cache, *url, defaultOut(*out, def), load,
			*overload, admitCfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// defaultOut resolves the output path for the selected mode.
func defaultOut(out, def string) string {
	if out == "" {
		return def
	}
	return out
}

// universeConfig maps the flags onto the shared universe fixture
// (internal/simtest), so the benchmark's universe shape and the test
// suites' stay defined in one place.
func universeConfig(users, items, ratings int, zipf float64, seed int64) ganc.UniverseConfig {
	return simtest.Config(users, items, ratings, zipf, seed)
}

// run generates the universe, resolves (or stands up) the target server,
// drives the load and writes the report. In overload mode the self-hosted
// server gets admission control and /metrics, and the run fails unless the
// target shed (429) without any 5xx.
func run(ucfg ganc.UniverseConfig, arec, theta string, precision ganc.ScoringPrecision, topN, cache int, url, out string, load ganc.LoadConfig,
	overload bool, admitCfg ganc.AdmissionConfig) error {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating universe: %d users × %d items, %d ratings ...\n",
		ucfg.Users, ucfg.Items, ucfg.Ratings)
	u, err := ganc.NewUniverse(ucfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "universe ready in %.1fs (%d ratings)\n",
		time.Since(start).Seconds(), u.Train().NumRatings())

	if url == "" {
		// The self-hosted target always serves the production configuration —
		// metrics registry mounted, request instrumentation on the hot path —
		// so BENCH_serve.json prices the instrumented serving stack rather
		// than an idealized bare one.
		extra := []ganc.ServerOption{ganc.WithMetrics(ganc.NewMetricsRegistry())}
		if overload {
			extra = append(extra,
				ganc.WithServerAdmission(ganc.NewAdmission(admitCfg)))
			fmt.Fprintf(os.Stderr, "overload drill: admission rate=%.1f/s burst=%.1f max-concurrent=%d max-wait=%s\n",
				admitCfg.RatePerSec, admitCfg.Burst, admitCfg.MaxConcurrent, admitCfg.MaxWait)
		}
		addr, shutdown, err := selfHost(u, arec, theta, precision, topN, cache, extra...)
		if err != nil {
			return err
		}
		defer shutdown()
		url = "http://" + addr
	}
	load.BaseURL = url

	fmt.Fprintf(os.Stderr, "driving %d requests × %d workers against %s ...\n",
		load.Requests, load.Concurrency, load.BaseURL)
	res, err := ganc.RunLoad(context.Background(), u, load)
	if err != nil {
		return err
	}
	printSummary(res)

	// The target's /info is authoritative for what was actually measured —
	// in external mode the local -n/-arec flags describe nothing.
	rep := &ganc.BenchReport{
		Universe: u.Config(),
		Engine:   res.Model,
		TopN:     res.TopN,
		Load:     load,
		Result:   res,
	}
	if err := ganc.WriteBenchReport(out, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	if res.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed server-side", res.Errors, res.Requests)
	}
	if overload && res.Shed == 0 {
		return fmt.Errorf("overload drill shed nothing across %d requests: the target admitted everything "+
			"(tighten -rate-limit/-max-concurrent, or raise -concurrency)", res.Requests)
	}
	// Rejected (4xx) traffic means the driver and the target disagree — the
	// universe flags don't match the served dataset, or /ingest is disabled —
	// and its fast error responses would silently flatter every latency
	// percentile. A trace of legitimate 404s (a user with an exhausted
	// candidate set) is tolerated; more fails the benchmark.
	if res.Rejected*200 > res.Requests {
		return fmt.Errorf("%d of %d requests were rejected (4xx): universe flags likely do not match the target "+
			"(check -users/-items/-seed, or -mix-ingest 0 for targets without ingestion)", res.Rejected, res.Requests)
	}
	return nil
}

// trainPipeline builds the pipeline under test.
func trainPipeline(u *ganc.Universe, arec, theta string, precision ganc.ScoringPrecision, topN int) (*ganc.Pipeline, error) {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "training %s pipeline ...\n", arec)
	p, err := ganc.NewPipeline(u.Train(),
		ganc.WithBaseNamed(arec),
		ganc.WithPreferences(ganc.ParsePreferenceModel(theta)),
		ganc.WithScoringPrecision(precision),
		ganc.WithTopN(topN))
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "trained %s in %.1fs\n", p.Name(), time.Since(start).Seconds())
	return p, nil
}

// servePipeline serves an already trained pipeline (with in-memory
// streaming ingestion) on a loopback listener.
func servePipeline(u *ganc.Universe, p *ganc.Pipeline, topN, cache int, extra ...ganc.ServerOption) (addr string, shutdown func(), err error) {
	opts := append([]ganc.ServerOption{}, extra...)
	if cache > 0 {
		opts = append(opts, ganc.WithServerCacheCapacity(cache))
	}
	srv, err := ganc.NewServer(u.Train(), p, topN, opts...)
	if err != nil {
		return "", nil, err
	}
	if _, err := ganc.NewIngestor(srv, p); err != nil {
		return "", nil, fmt.Errorf("enabling ingestion: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	fmt.Fprintf(os.Stderr, "serving %s on %s\n", p.Name(), ln.Addr())
	return ln.Addr().String(), func() { hs.Close() }, nil
}

// selfHost trains a pipeline on the universe and serves it on a loopback
// listener (the plain single-target mode).
func selfHost(u *ganc.Universe, arec, theta string, precision ganc.ScoringPrecision, topN, cache int, extra ...ganc.ServerOption) (addr string, shutdown func(), err error) {
	p, err := trainPipeline(u, arec, theta, precision, topN)
	if err != nil {
		return "", nil, err
	}
	return servePipeline(u, p, topN, cache, extra...)
}

// runCluster measures the same universe and load against a single node and
// an N-shard cluster (identical per-node cache budgets), and writes the
// comparison as BENCH_cluster.json. Each target gets an unmeasured warm-up
// pass of the same seeded request sequence first, so the measurement
// captures steady-state serving: the regime where the cluster's aggregate
// cache (N × node budget) holds the working set a single node's budget
// cannot.
func runCluster(ucfg ganc.UniverseConfig, arec, theta string, precision ganc.ScoringPrecision, topN, shards, replicas, writeQuorum, nodeCache, warmup, reshardTo int, autoFail bool, out string, load ganc.LoadConfig) error {
	if nodeCache <= 0 {
		return fmt.Errorf("-node-cache must be positive in cluster mode (it is the per-node budget under comparison)")
	}
	if warmup < 0 {
		warmup = load.Requests
	}
	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating universe: %d users × %d items, %d ratings ...\n",
		ucfg.Users, ucfg.Items, ucfg.Ratings)
	u, err := ganc.NewUniverse(ucfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "universe ready in %.1fs\n", time.Since(start).Seconds())
	p, err := trainPipeline(u, arec, theta, precision, topN)
	if err != nil {
		return err
	}

	ctx := context.Background()
	measure := func(label, url string) (*ganc.LoadResult, error) {
		if warmup > 0 {
			wcfg := load
			wcfg.BaseURL = url
			wcfg.Requests = warmup
			fmt.Fprintf(os.Stderr, "%s: warming with %d requests ...\n", label, warmup)
			if _, err := ganc.RunLoad(ctx, u, wcfg); err != nil {
				return nil, fmt.Errorf("%s warm-up: %w", label, err)
			}
		}
		mcfg := load
		mcfg.BaseURL = url
		fmt.Fprintf(os.Stderr, "%s: driving %d requests × %d workers ...\n", label, mcfg.Requests, mcfg.Concurrency)
		res, err := ganc.RunLoad(ctx, u, mcfg)
		if err != nil {
			return nil, fmt.Errorf("%s measurement: %w", label, err)
		}
		printSummary(res)
		return res, nil
	}

	// The cluster: the pipeline shard-split via the snapshot format, same
	// per-node budget on every shard, the scatter-gather router in front.
	// The split happens before any load runs: the single-node server's
	// ingest traffic grows the live pipeline state in place, and shard
	// snapshots cut from a mutated pipeline would no longer match its
	// training-time preference vector (every node — primary and replica —
	// boots by loading its snapshot, and the load validates that pairing).
	fmt.Fprintf(os.Stderr, "shard-splitting into %d shards ...\n", shards)
	copts := []ganc.ClusterOption{
		ganc.WithShards(shards),
		ganc.WithShardCacheCapacity(nodeCache),
	}
	if replicas > 0 {
		copts = append(copts, ganc.WithReplicas(replicas))
	}
	if writeQuorum > 0 {
		copts = append(copts, ganc.WithWriteQuorum(writeQuorum))
	}
	if autoFail {
		// A tight suspicion window keeps the drill (and CI) fast: 50ms
		// sampling, 3 consecutive misses → suspicion after ~150ms.
		copts = append(copts, ganc.WithAutoFailover(), ganc.WithFailureDetection(50*time.Millisecond, 3))
	}
	c, err := ganc.NewCluster(p, copts...)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.WaitReady(30 * time.Second); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: c.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	// Single node, bounded to the per-node cache budget.
	addr, shutdown, err := servePipeline(u, p, topN, nodeCache)
	if err != nil {
		return err
	}
	single, err := measure("single-node", "http://"+addr)
	shutdown()
	if err != nil {
		return err
	}

	clusterRes, err := measure(fmt.Sprintf("%d-shard cluster", shards), "http://"+ln.Addr().String())
	if err != nil {
		return err
	}

	// The reshard drill runs first, on the fully healthy cluster: the
	// kill-based drills leave the killed shard's ex-primary dead until an
	// operator rejoins it, and under a k-of-n write quorum that dead replica
	// would stall every migrated-write commit into its quorum timeout.
	var reshard *ganc.ReshardReport
	if reshardTo > 0 {
		reshard, err = runReshardDrill(ctx, u, c, "http://"+ln.Addr().String(), load, reshardTo)
		if err != nil {
			return err
		}
	}
	var failover *ganc.FailoverReport
	var autoFailRep *ganc.AutoFailoverReport
	switch {
	case autoFail:
		// The hands-off drill replaces the manual one: the armed detector
		// would race a manual Promote call.
		autoFailRep, err = runAutoFailoverDrill(ctx, u, c, "http://"+ln.Addr().String(), load, writeQuorum)
		if err != nil {
			return err
		}
	case replicas > 0:
		failover, err = runFailoverDrill(ctx, u, c, "http://"+ln.Addr().String(), load)
		if err != nil {
			return err
		}
	}

	speedup := 0.0
	if single.ThroughputRPS > 0 {
		speedup = clusterRes.ThroughputRPS / single.ThroughputRPS
	}
	rep := &ganc.ClusterBenchReport{
		Universe:          u.Config(),
		Engine:            clusterRes.Model,
		TopN:              clusterRes.TopN,
		Shards:            shards,
		Replicas:          replicas,
		NodeCacheCapacity: nodeCache,
		WarmupRequests:    warmup,
		Load:              load,
		SingleNode:        single,
		Cluster:           clusterRes,
		Speedup:           speedup,
		Failover:          failover,
		Reshard:           reshard,
		AutoFailover:      autoFailRep,
	}
	if err := ganc.WriteClusterBenchReport(out, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: single %.0f req/s vs %d-shard %.0f req/s → %.2fx\n",
		out, single.ThroughputRPS, shards, clusterRes.ThroughputRPS, speedup)
	if single.Errors > 0 || clusterRes.Errors > 0 {
		return fmt.Errorf("server-side errors during the comparison (single %d, cluster %d)", single.Errors, clusterRes.Errors)
	}
	if failover != nil && failover.Result.Errors > 0 {
		return fmt.Errorf("%d read errors leaked through replica failover during the mid-run primary kill", failover.Result.Errors)
	}
	if autoFailRep != nil && autoFailRep.Result.Errors > 0 {
		return fmt.Errorf("%d read errors leaked through the hands-off failover drill", autoFailRep.Result.Errors)
	}
	if reshard != nil && reshard.Result.Errors > 0 {
		return fmt.Errorf("%d errors leaked through the mid-run reshard cutover", reshard.Result.Errors)
	}
	return nil
}

// runFailoverDrill measures a read-only run against the replicated cluster
// during which shard 0's primary is killed mid-run: the router's replica
// failover must keep the error count at zero. Afterwards the freshest
// replica is promoted, recording the new ring epoch in the report.
func runFailoverDrill(ctx context.Context, u *ganc.Universe, c *ganc.Cluster, url string, load ganc.LoadConfig) (*ganc.FailoverReport, error) {
	const killDelay = 150 * time.Millisecond
	// Writes cannot fail over (the shard's write-ahead log dies with its
	// primary), so the drill measures the read path only.
	load.Mix.Ingest = 0
	load.BaseURL = url
	if err := c.WaitForReplicaSync(10 * time.Second); err != nil {
		return nil, fmt.Errorf("replicas never caught up before the drill: %w", err)
	}
	fmt.Fprintf(os.Stderr, "failover drill: killing shard 0's primary %s into a read-only run of %d requests ...\n",
		killDelay, load.Requests)
	killed := make(chan error, 1)
	timer := time.AfterFunc(killDelay, func() { killed <- c.KillShard(0) })
	defer timer.Stop()
	res, err := ganc.RunLoad(ctx, u, load)
	if err != nil {
		return nil, err
	}
	select {
	case err := <-killed:
		if err != nil {
			return nil, fmt.Errorf("mid-run kill of shard 0: %w", err)
		}
	case <-time.After(5 * time.Second):
		return nil, fmt.Errorf("mid-run kill of shard 0 never fired")
	}
	epoch, err := c.Promote(0)
	if err != nil {
		return nil, fmt.Errorf("promoting shard 0 after the drill: %w", err)
	}
	printSummary(res)
	fmt.Fprintf(os.Stderr, "failover drill: promoted shard 0's freshest replica (ring epoch %d), %d errors\n", epoch, res.Errors)
	return &ganc.FailoverReport{
		KilledShard:   0,
		KillDelayMs:   int(killDelay / time.Millisecond),
		PromotedEpoch: epoch,
		Result:        res,
	}, nil
}

// runAutoFailoverDrill measures a read-only run against a replicated cluster
// whose failure detector is armed with auto-failover, during which shard 0's
// primary is killed mid-run and NOBODY calls Promote: the detector must
// suspect the dead primary, promote its freshest replica, and republish the
// ring, all while the router's replica failover keeps the client error count
// at zero. The drill fails if the epoch never bumps within the wait window.
func runAutoFailoverDrill(ctx context.Context, u *ganc.Universe, c *ganc.Cluster, url string, load ganc.LoadConfig, writeQuorum int) (*ganc.AutoFailoverReport, error) {
	const killDelay = 150 * time.Millisecond
	const promotionWait = 15 * time.Second
	// Writes cannot fail over (the shard's write-ahead log dies with its
	// primary), so the drill measures the read path only.
	load.Mix.Ingest = 0
	load.BaseURL = url
	if err := c.WaitForReplicaSync(10 * time.Second); err != nil {
		return nil, fmt.Errorf("replicas never caught up before the drill: %w", err)
	}
	epochBefore := c.Epoch()
	fmt.Fprintf(os.Stderr, "auto-failover drill: killing shard 0's primary %s into a read-only run of %d requests (no manual promotion) ...\n",
		killDelay, load.Requests)
	killed := make(chan error, 1)
	var killedAt time.Time
	timer := time.AfterFunc(killDelay, func() {
		killedAt = time.Now()
		killed <- c.KillShard(0)
	})
	defer timer.Stop()
	res, err := ganc.RunLoad(ctx, u, load)
	if err != nil {
		return nil, err
	}
	select {
	case err := <-killed:
		if err != nil {
			return nil, fmt.Errorf("mid-run kill of shard 0: %w", err)
		}
	case <-time.After(5 * time.Second):
		return nil, fmt.Errorf("mid-run kill of shard 0 never fired")
	}
	// No Promote call: poll the ring epoch until the detector's suspicion
	// callback has promoted and republished on its own.
	var epoch uint64
	deadline := time.Now().Add(promotionWait)
	for {
		if epoch = c.Epoch(); epoch > epochBefore {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("the failure detector never promoted shard 0's replica within %s (epoch still %d)", promotionWait, epochBefore)
		}
		time.Sleep(10 * time.Millisecond)
	}
	promotionMs := float64(time.Since(killedAt)) / float64(time.Millisecond)
	printSummary(res)
	fmt.Fprintf(os.Stderr, "auto-failover drill: detector promoted shard 0's freshest replica %.0fms after the kill (ring epoch %d → %d), %d errors\n",
		promotionMs, epochBefore, epoch, res.Errors)
	return &ganc.AutoFailoverReport{
		KilledShard:   0,
		KillDelayMs:   int(killDelay / time.Millisecond),
		WriteQuorum:   writeQuorum,
		PromotedEpoch: epoch,
		PromotionMs:   promotionMs,
		Result:        res,
	}, nil
}

// runReshardDrill measures a mixed read/write run against the cluster during
// which the ring grows to target shards mid-flight: snapshots and WAL tails
// stream to the new owners, the router double-dispatches in-flight users, and
// the cutover must stay invisible — zero client-visible errors while both
// reads and writes keep flowing.
func runReshardDrill(ctx context.Context, u *ganc.Universe, c *ganc.Cluster, url string, load ganc.LoadConfig, target int) (*ganc.ReshardReport, error) {
	const kickoff = 150 * time.Millisecond
	load.BaseURL = url
	// The cutover must be invisible to writes too. If the configured mix is
	// read-only (the comparison default), add a small ingest weight so the
	// drill actually exercises write routing across the ring transition.
	if load.Mix.Ingest == 0 {
		load.Mix.Ingest = 2
	}
	fmt.Fprintf(os.Stderr, "reshard drill: growing %d → %d shards %s into a mixed run of %d requests ...\n",
		c.NumShards(), target, kickoff, load.Requests)
	type outcome struct {
		stats *ganc.ReshardStats
		err   error
	}
	done := make(chan outcome, 1)
	timer := time.AfterFunc(kickoff, func() {
		stats, err := c.Reshard(target)
		done <- outcome{stats, err}
	})
	defer timer.Stop()
	res, err := ganc.RunLoad(ctx, u, load)
	if err != nil {
		return nil, err
	}
	var stats *ganc.ReshardStats
	select {
	case out := <-done:
		if out.err != nil {
			return nil, fmt.Errorf("mid-run reshard to %d shards: %w", target, out.err)
		}
		stats = out.stats
	case <-time.After(60 * time.Second):
		return nil, fmt.Errorf("mid-run reshard to %d shards never completed", target)
	}
	printSummary(res)
	fmt.Fprintf(os.Stderr, "reshard drill: epoch %d after cutover of %.1fms — %d users / %d events migrated, %d double-dispatched reads, %d errors\n",
		stats.Epoch, stats.CutoverMs, stats.UsersMigrated, stats.EventsMigrated, stats.DoubleDispatches, res.Errors)
	return &ganc.ReshardReport{
		KickoffDelayMs: int(kickoff / time.Millisecond),
		Stats:          stats,
		Result:         res,
	}, nil
}

// printSummary reports the headline numbers on stderr.
func printSummary(res *ganc.LoadResult) {
	fmt.Fprintf(os.Stderr, "done: %d requests in %.1fs → %.0f req/s, %d errors, %d rejected, %d shed (%.1f%%), cache hit rate %.3f\n",
		res.Requests, res.DurationSec, res.ThroughputRPS, res.Errors, res.Rejected, res.Shed, 100*res.ShedRate, res.CacheHitRate)
	for ep, st := range res.Endpoints {
		fmt.Fprintf(os.Stderr, "  %-10s n=%-7d p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
			ep, st.Count, st.P50Ms, st.P95Ms, st.P99Ms, st.MaxMs)
	}
}
