package ganc

import (
	"ganc/internal/recommender"
	"ganc/internal/types"
)

// ScoringPrecision selects the arithmetic tier of a pipeline's bulk scoring
// hot path (see DESIGN.md §12). Pointwise Score calls always stay float64;
// the tier only governs the candidate-sweep kernels.
type ScoringPrecision = types.ScoringPrecision

// Scoring precision tiers.
const (
	// PrecisionF64 is the default exact tier: bulk scores are bit-identical
	// to pointwise Score.
	PrecisionF64 = types.PrecisionF64
	// PrecisionF32 serves bulk scores from contiguous float32 factor blocks
	// through unrolled SIMD-friendly kernels; scores match the float64
	// reference to the documented tolerance.
	PrecisionF32 = types.PrecisionF32
	// PrecisionInt8 serves bulk scores from symmetrically quantized int8
	// factor blocks with per-row scales; the cheapest and least precise tier.
	PrecisionInt8 = types.PrecisionInt8
)

// ParseScoringPrecision resolves the CLI/config spellings "f64", "f32" and
// "int8" (the empty string means f64, so older snapshots and configs keep
// loading).
func ParseScoringPrecision(s string) (ScoringPrecision, error) {
	return types.ParseScoringPrecision(s)
}

// BulkScorer32 is the reduced-precision bulk scoring interface the float32
// and int8 tiers serve through (re-exported for custom scorer authors; see
// DESIGN.md §7 for the contract).
type BulkScorer32 = recommender.BulkScorer32

// precisionSetter is implemented by the base models whose bulk path can be
// switched to a reduced-precision tier (RSVD, PSVD, CofiModel).
type precisionSetter interface {
	SetPrecision(types.ScoringPrecision)
}

// applyScoringPrecision switches scorer's serving tier when it supports
// tiered scoring; scorers without a reduced-precision path (Pop, ItemKNN,
// custom scorers) are left untouched and keep serving exact float64.
func applyScoringPrecision(scorer Scorer, p ScoringPrecision) {
	if ps, ok := scorer.(precisionSetter); ok {
		ps.SetPrecision(p)
	}
}
