package ganc

// The docs gate: a golint/revive-style exported-comment check implemented on
// the standard library's go/parser so it runs in plain `go test` (and in CI)
// with no external tooling. It enforces that
//
//   - every package (including the mains under cmd/ and examples/) has a
//     package comment, and
//   - every exported top-level declaration — functions, methods, types, and
//     const/var specs — in the library packages carries a doc comment,
//
// so `go doc ganc` (and every internal package) reads as a real API
// reference and documentation cannot silently rot.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// collectPackageDirs walks the module and returns every directory containing
// non-test Go files.
func collectPackageDirs(t *testing.T) []string {
	t.Helper()
	dirSet := map[string]struct{}{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (name != "." && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirSet[filepath.Dir(path)] = struct{}{}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]string, 0, len(dirSet))
	for dir := range dirSet {
		dirs = append(dirs, dir)
	}
	return dirs
}

func TestDocCommentsDoNotRot(t *testing.T) {
	var violations []string
	for _, dir := range collectPackageDirs(t) {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			violations = append(violations, lintPackage(fset, dir, pkg)...)
		}
	}
	if len(violations) > 0 {
		t.Errorf("%d documentation violations:\n  %s", len(violations), strings.Join(violations, "\n  "))
	}
}

// lintPackage checks one parsed package and returns its violations.
func lintPackage(fset *token.FileSet, dir string, pkg *ast.Package) []string {
	var out []string
	hasPkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
	}
	// Exported-symbol docs are enforced in library packages; mains document
	// themselves through their package (command) comment.
	if pkg.Name == "main" {
		return out
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && !exportedRecvOk(d) {
					continue // unexported receiver: method is not reachable API
				}
				if d.Name.IsExported() && d.Doc == nil {
					out = append(out, fmt.Sprintf("%s: exported %s %s is undocumented",
						position(fset, d.Pos()), funcKind(d), d.Name.Name))
				}
			case *ast.GenDecl:
				out = append(out, lintGenDecl(fset, d)...)
			}
		}
	}
	return out
}

// exportedRecvOk reports whether a method's receiver type is exported (doc
// comments on methods of unexported types never surface in go doc).
func exportedRecvOk(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic receiver type parameters if present.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.IsExported()
	}
	return true
}

// lintGenDecl checks type/const/var declarations: a doc comment may sit on
// the grouped declaration or on the individual spec.
func lintGenDecl(fset *token.FileSet, d *ast.GenDecl) []string {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return nil
	}
	var out []string
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				out = append(out, fmt.Sprintf("%s: exported type %s is undocumented", position(fset, s.Pos()), s.Name.Name))
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					out = append(out, fmt.Sprintf("%s: exported %s %s is undocumented",
						position(fset, s.Pos()), strings.ToLower(d.Tok.String()), name.Name))
				}
			}
		}
	}
	return out
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func position(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
