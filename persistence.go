package ganc

import (
	"errors"
	"fmt"

	"ganc/internal/core"
	"ganc/internal/dataset"
	"ganc/internal/knn"
	"ganc/internal/longtail"
	"ganc/internal/mf"
	"ganc/internal/persist"
	"ganc/internal/rank"
	"ganc/internal/recommender"
)

// Model persistence facade: Pipeline.Save writes a complete warm-start
// snapshot — train set, trained base model, θ preferences, coverage state and
// the PopAccuracy cache — into the versioned container implemented by
// internal/persist, and LoadEngine reassembles a serving-ready Pipeline from
// it without retraining anything. DESIGN.md §8 documents the snapshot format
// and its compatibility rules.
//
// Restart cost drops from O(retrain + GANC sweep) to O(read + index rebuild):
// the expensive artifacts (factor matrices, similarity lists, estimated θ,
// accumulated Dyn frequencies) are restored bit-identically, so a loaded
// engine's RecommendAll output is byte-identical to the engine that saved it.

// Snapshot section names. The "ingest" section is present only in snapshots
// written as streaming-ingestion checkpoints.
const (
	sectionMeta     = "meta"
	sectionDataset  = "dataset"
	sectionBase     = "base"
	sectionPrefs    = "prefs"
	sectionCoverage = "coverage"
	sectionPopCache = "popcache"
	sectionIngest   = "ingest"
	sectionCluster  = "cluster"
)

// ErrSnapshotUnsupported marks pipelines that cannot be persisted: fully
// custom accuracy or coverage components the snapshot format has no codec
// for, and the seeded-random Rand base/coverage whose mid-stream rng state is
// not captured.
var ErrSnapshotUnsupported = errors.New("ganc: pipeline has components the snapshot format cannot persist")

// snapshotMeta is the "meta" section: everything needed to re-dispatch the
// remaining sections plus the original pipeline configuration.
type snapshotMeta struct {
	PipelineName string
	BaseKind     string
	CoverageName string
	TopN         int
	SampleSize   int
	Workers      int
	Seed         int64
	PrefModel    string
	PrefConstant float64
	// Precision is the serving tier ("f64", "f32", "int8"); snapshots from
	// before the tiered hot path carry the empty string, which parses as f64.
	Precision string
}

// prefsSnapshot is the "prefs" section.
type prefsSnapshot struct {
	Model  string
	Values []float64
}

// coverageSnapshot is the "coverage" section; Freq is nil for Stat coverage
// (rebuilt from the dataset at load time).
type coverageSnapshot struct {
	Name string
	Freq []int
}

// popSnapshot is the "base" section for the Pop base.
type popSnapshot struct {
	Counts []int
}

// itemAvgSnapshot is the "base" section for the ItemAvg base.
type itemAvgSnapshot struct {
	Avg    []float64
	Lambda float64
}

// clusterSnapshot is the "cluster" section written by shard-scoped
// snapshots: the shard's identity and the hash-ring epoch the split was cut
// for, so a shard server can refuse a snapshot from another ring generation
// and a router can detect a mixed-epoch deployment through /info.
type clusterSnapshot struct {
	ShardID   int
	NumShards int
	RingEpoch uint64
}

// ingestSnapshot is the "ingest" section written by checkpoints: the
// applied-event cursor plus the incremental statistics that are cheaper to
// restore than to recount.
type ingestSnapshot struct {
	AppliedSeq uint64
	AvgLambda  float64
	PrefFill   float64
}

// baseKind classifies the pipeline's accuracy component for the snapshot
// dispatch table.
func (p *Pipeline) baseKind() (string, error) {
	if p.baseScorer != nil {
		switch p.baseScorer.(type) {
		case *recommender.Pop:
			return "Pop", nil
		case *recommender.ItemAvg:
			return "ItemAvg", nil
		case *mf.RSVD:
			return "RSVD", nil
		case *mf.PSVD:
			return "PSVD", nil
		case *knn.ItemKNN:
			return "ItemKNN", nil
		case *rank.Model:
			return "CofiRank", nil
		default:
			return "", fmt.Errorf("%w: base scorer %T (%s)", ErrSnapshotUnsupported, p.baseScorer, p.baseScorer.Name())
		}
	}
	if _, ok := p.arec.(*core.PopAccuracy); ok {
		return "Pop", nil
	}
	return "", fmt.Errorf("%w: custom accuracy recommender %T", ErrSnapshotUnsupported, p.arec)
}

// coverageName classifies the pipeline's coverage component.
func (p *Pipeline) coverageName() (string, error) {
	switch p.crec.(type) {
	case *core.DynCoverage:
		return "Dyn", nil
	case *core.StatCoverage:
		return "Stat", nil
	default:
		// RandCoverage is deliberately excluded: its shared rng state is
		// consumed in evaluation order, so a restore could not reproduce the
		// saved engine's behaviour anyway.
		return "", fmt.Errorf("%w: coverage recommender %T", ErrSnapshotUnsupported, p.crec)
	}
}

// addBaseSection encodes the trained base model under the "base" section.
func (p *Pipeline) addBaseSection(b *persist.Builder, kind string) error {
	switch kind {
	case "Pop":
		counts := p.train.PopularityVector()
		if pop, ok := p.baseScorer.(*recommender.Pop); ok {
			counts = pop.Counts()
		}
		return b.AddGob(sectionBase, &popSnapshot{Counts: counts})
	case "ItemAvg":
		avg := p.baseScorer.(*recommender.ItemAvg)
		return b.AddGob(sectionBase, &itemAvgSnapshot{Avg: avg.Averages(), Lambda: avg.Lambda()})
	case "RSVD":
		return b.AddFrom(sectionBase, p.baseScorer.(*mf.RSVD).Save)
	case "PSVD":
		return b.AddFrom(sectionBase, p.baseScorer.(*mf.PSVD).Save)
	case "ItemKNN":
		return b.AddFrom(sectionBase, p.baseScorer.(*knn.ItemKNN).Save)
	case "CofiRank":
		return b.AddFrom(sectionBase, p.baseScorer.(*rank.Model).Save)
	default:
		return fmt.Errorf("%w: base kind %q", ErrSnapshotUnsupported, kind)
	}
}

// snapshotBuilder assembles the full snapshot for this pipeline. seq carries
// the ingestion cursor (zero outside checkpoints).
func (p *Pipeline) snapshotBuilder(seq uint64, avgLambda, prefFill float64) (*persist.Builder, error) {
	kind, err := p.baseKind()
	if err != nil {
		return nil, err
	}
	covName, err := p.coverageName()
	if err != nil {
		return nil, err
	}
	var b persist.Builder
	meta := snapshotMeta{
		PipelineName: p.Name(),
		BaseKind:     kind,
		CoverageName: covName,
		TopN:         p.cfg.topN,
		SampleSize:   p.cfg.sampleSize,
		Workers:      p.cfg.workers,
		Seed:         p.cfg.seed,
		PrefModel:    string(p.prefs.Model),
		PrefConstant: p.cfg.prefConstant,
		Precision:    p.cfg.precision.String(),
	}
	if err := b.AddGob(sectionMeta, &meta); err != nil {
		return nil, err
	}
	if err := b.AddFrom(sectionDataset, p.train.EncodeSnapshot); err != nil {
		return nil, err
	}
	if err := p.addBaseSection(&b, kind); err != nil {
		return nil, err
	}
	if err := b.AddGob(sectionPrefs, &prefsSnapshot{Model: string(p.prefs.Model), Values: p.prefs.Values}); err != nil {
		return nil, err
	}
	cov := coverageSnapshot{Name: covName}
	if dyn, ok := p.crec.(*core.DynCoverage); ok {
		cov.Freq = dyn.Frequencies()
	}
	if err := b.AddGob(sectionCoverage, &cov); err != nil {
		return nil, err
	}
	if pa, ok := p.arec.(*core.PopAccuracy); ok {
		if cache := pa.CacheSnapshot(); len(cache) > 0 {
			if err := b.AddGob(sectionPopCache, cache); err != nil {
				return nil, err
			}
		}
	}
	if seq > 0 || avgLambda > 0 {
		if err := b.AddGob(sectionIngest, &ingestSnapshot{AppliedSeq: seq, AvgLambda: avgLambda, PrefFill: prefFill}); err != nil {
			return nil, err
		}
	}
	if p.shard != nil {
		if err := b.AddGob(sectionCluster, &clusterSnapshot{
			ShardID:   p.shard.ShardID,
			NumShards: p.shard.NumShards,
			RingEpoch: p.shard.RingEpoch,
		}); err != nil {
			return nil, err
		}
	}
	return &b, nil
}

// Save writes a warm-start snapshot of the pipeline to path, atomically
// (temp file + rename). The snapshot captures the train set, the trained
// base model, the θ preferences, the coverage state (including accumulated
// Dyn frequencies) and the PopAccuracy cache; LoadEngine restores all of it
// without retraining. Pipelines assembled around custom accuracy/coverage
// components, or around the Rand baselines, return ErrSnapshotUnsupported.
func (p *Pipeline) Save(path string) error {
	b, err := p.snapshotBuilder(p.ingestSeq, p.ingestAvgLambda, p.ingestPrefFill)
	if err != nil {
		return err
	}
	return b.Save(path)
}

// LoadEngine reads a snapshot written by Pipeline.Save (or by a streaming-
// ingestion checkpoint) and reassembles a serving-ready Pipeline: the dataset
// indexes are rebuilt, the trained base model is restored bit-identically,
// and the GANC instance starts from the saved θ vector and coverage state.
// The loaded engine's RecommendAll output is byte-identical to what the
// saving engine would have produced from the same state.
//
// Unsupported format versions, corruption (bad magic, failed checksums,
// truncation) and missing sections are reported as errors wrapping the
// internal/persist sentinels — they never panic, so callers can fail fast
// with a clear message.
func LoadEngine(path string) (*Pipeline, error) {
	snap, err := persist.Load(path)
	if err != nil {
		return nil, err
	}
	var meta snapshotMeta
	if err := snap.Gob(sectionMeta, &meta); err != nil {
		return nil, err
	}
	dsReader, err := snap.Reader(sectionDataset)
	if err != nil {
		return nil, err
	}
	train, err := dataset.DecodeSnapshot(dsReader)
	if err != nil {
		return nil, err
	}
	if train.NumUsers() == 0 || train.NumItems() == 0 {
		return nil, fmt.Errorf("ganc: snapshot %s holds an empty dataset", path)
	}

	var prefSnap prefsSnapshot
	if err := snap.Gob(sectionPrefs, &prefSnap); err != nil {
		return nil, err
	}
	if len(prefSnap.Values) != train.NumUsers() {
		return nil, fmt.Errorf("ganc: snapshot preference vector covers %d users but the dataset has %d",
			len(prefSnap.Values), train.NumUsers())
	}
	prefs := &Preferences{Model: longtail.Model(prefSnap.Model), Values: prefSnap.Values}

	precision, err := ParseScoringPrecision(meta.Precision)
	if err != nil {
		return nil, fmt.Errorf("ganc: snapshot %s: %w", path, err)
	}

	arec, baseScorer, err := loadBase(snap, meta, train)
	if err != nil {
		return nil, err
	}
	if baseScorer != nil && precision != PrecisionF64 {
		applyScoringPrecision(baseScorer, precision)
	}

	var covSnap coverageSnapshot
	if err := snap.Gob(sectionCoverage, &covSnap); err != nil {
		return nil, err
	}
	var crec CoverageRecommender
	var covSpec CoverageSpec
	switch covSnap.Name {
	case "Dyn":
		if len(covSnap.Freq) != train.NumItems() {
			return nil, fmt.Errorf("ganc: snapshot Dyn frequencies cover %d items but the dataset has %d",
				len(covSnap.Freq), train.NumItems())
		}
		crec = core.NewDynCoverageFrom(covSnap.Freq)
		covSpec = CoverageDyn()
	case "Stat":
		crec = core.NewStatCoverage(train)
		covSpec = CoverageStat()
	default:
		return nil, fmt.Errorf("ganc: snapshot has unknown coverage recommender %q", covSnap.Name)
	}

	g, err := core.New(train, arec, prefs, crec, core.Config{
		N:          meta.TopN,
		SampleSize: meta.SampleSize,
		Seed:       meta.Seed,
		Workers:    meta.Workers,
		Precision:  precision,
	})
	if err != nil {
		return nil, err
	}

	p := &Pipeline{
		train: train,
		ganc:  g,
		prefs: prefs,
		cfg: pipelineConfig{
			baseName:     meta.BaseKind,
			prefModel:    longtail.Model(meta.PrefModel),
			prefConstant: meta.PrefConstant,
			coverage:     covSpec,
			topN:         meta.TopN,
			sampleSize:   meta.SampleSize,
			workers:      meta.Workers,
			seed:         meta.Seed,
			precision:    precision,
		},
		arec:       arec,
		baseScorer: baseScorer,
		crec:       crec,
	}
	if snap.Has(sectionIngest) {
		var ing ingestSnapshot
		if err := snap.Gob(sectionIngest, &ing); err != nil {
			return nil, err
		}
		p.ingestSeq = ing.AppliedSeq
		p.ingestPrefFill = ing.PrefFill
		p.ingestAvgLambda = ing.AvgLambda
	}
	if snap.Has(sectionCluster) {
		var cs clusterSnapshot
		if err := snap.Gob(sectionCluster, &cs); err != nil {
			return nil, err
		}
		if cs.NumShards <= 0 || cs.ShardID < 0 || cs.ShardID >= cs.NumShards {
			return nil, fmt.Errorf("ganc: snapshot %s has invalid shard identity %d/%d", path, cs.ShardID, cs.NumShards)
		}
		p.shard = &ShardIdentity{ShardID: cs.ShardID, NumShards: cs.NumShards, RingEpoch: cs.RingEpoch}
	}
	return p, nil
}

// SaveShard writes a shard-scoped warm-start snapshot: the full Pipeline.Save
// payload plus a cluster section naming the shard, the shard count and the
// hash-ring epoch the split was cut for. A snapshot dealt out by SaveShard is
// what bootstraps one shard server of a cluster (see NewCluster and
// cmd/gancd -role split).
func (p *Pipeline) SaveShard(path string, id ShardIdentity) error {
	if id.NumShards <= 0 || id.ShardID < 0 || id.ShardID >= id.NumShards {
		return fmt.Errorf("ganc: invalid shard identity %d/%d", id.ShardID, id.NumShards)
	}
	shadow := *p
	shadow.shard = &id
	b, err := shadow.snapshotBuilder(p.ingestSeq, p.ingestAvgLambda, p.ingestPrefFill)
	if err != nil {
		return err
	}
	return b.Save(path)
}

// LoadShardEngine restores a shard-scoped snapshot written by SaveShard (or
// by a shard's ingestion checkpoint) and returns the pipeline together with
// its shard identity. Snapshots without a cluster section are refused: a
// plain single-node snapshot behind a shard flag is a deployment mistake
// worth failing fast on (LoadEngine still reads shard snapshots fine when no
// identity is expected).
func LoadShardEngine(path string) (*Pipeline, ShardIdentity, error) {
	p, err := LoadEngine(path)
	if err != nil {
		return nil, ShardIdentity{}, err
	}
	if p.shard == nil {
		return nil, ShardIdentity{}, fmt.Errorf("ganc: snapshot %s carries no shard identity (not written by SaveShard)", path)
	}
	return p, *p.shard, nil
}

// loadBase restores the accuracy component and the raw base scorer from the
// "base" section according to the meta dispatch.
func loadBase(snap *persist.Snapshot, meta snapshotMeta, train *Dataset) (AccuracyRecommender, Scorer, error) {
	normalized := func(s Scorer) AccuracyRecommender {
		return newNormalizedAccuracy(s, train.NumItems())
	}
	switch meta.BaseKind {
	case "Pop":
		var ps popSnapshot
		if err := snap.Gob(sectionBase, &ps); err != nil {
			return nil, nil, err
		}
		if len(ps.Counts) != train.NumItems() {
			return nil, nil, fmt.Errorf("ganc: snapshot Pop counts cover %d items but the dataset has %d",
				len(ps.Counts), train.NumItems())
		}
		pop := recommender.NewPopFromCounts(ps.Counts)
		arec := core.NewPopAccuracyWith(pop, train, meta.TopN)
		if snap.Has(sectionPopCache) {
			var cache map[UserID][]ItemID
			if err := snap.Gob(sectionPopCache, &cache); err != nil {
				return nil, nil, err
			}
			arec.RestoreCache(cache)
		}
		return arec, pop, nil
	case "ItemAvg":
		var ia itemAvgSnapshot
		if err := snap.Gob(sectionBase, &ia); err != nil {
			return nil, nil, err
		}
		s := recommender.NewItemAvgFromAverages(ia.Avg, ia.Lambda)
		return normalized(s), s, nil
	case "RSVD":
		r, err := snap.Reader(sectionBase)
		if err != nil {
			return nil, nil, err
		}
		s, err := mf.LoadRSVD(r)
		if err != nil {
			return nil, nil, err
		}
		return normalized(s), s, nil
	case "PSVD":
		r, err := snap.Reader(sectionBase)
		if err != nil {
			return nil, nil, err
		}
		s, err := mf.LoadPSVD(r)
		if err != nil {
			return nil, nil, err
		}
		return normalized(s), s, nil
	case "ItemKNN":
		r, err := snap.Reader(sectionBase)
		if err != nil {
			return nil, nil, err
		}
		s, err := knn.Load(r, train)
		if err != nil {
			return nil, nil, err
		}
		return normalized(s), s, nil
	case "CofiRank":
		r, err := snap.Reader(sectionBase)
		if err != nil {
			return nil, nil, err
		}
		s, err := rank.Load(r)
		if err != nil {
			return nil, nil, err
		}
		return normalized(s), s, nil
	default:
		return nil, nil, fmt.Errorf("ganc: snapshot has unknown base kind %q", meta.BaseKind)
	}
}

// Snapshot error sentinels re-exported from internal/persist so callers can
// errors.Is-match load failures without importing internal packages.
var (
	// ErrSnapshotBadMagic marks a file that is not a GANC snapshot.
	ErrSnapshotBadMagic = persist.ErrBadMagic
	// ErrSnapshotVersion marks an incompatible snapshot format version.
	ErrSnapshotVersion = persist.ErrUnsupportedVersion
	// ErrSnapshotCorrupt marks structural or checksum corruption.
	ErrSnapshotCorrupt = persist.ErrCorrupt
)
