package ganc

import (
	"math/rand"
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd exercises the complete facade workflow exactly as the
// README's quickstart describes it: generate → split → train → estimate θ →
// assemble GANC → recommend → evaluate.
func TestPublicAPIEndToEnd(t *testing.T) {
	data, err := GenerateML100K(0.12)
	if err != nil {
		t.Fatal(err)
	}
	split := SplitByUser(data, 0.8, rand.New(rand.NewSource(3)))
	if split.Train.NumRatings() == 0 || split.Test.NumRatings() == 0 {
		t.Fatal("degenerate split")
	}

	prefs, err := EstimatePreferences(PreferenceGeneralized, split.Train, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if prefs.Len() != split.Train.NumUsers() {
		t.Fatal("preference vector size mismatch")
	}

	const n = 5
	g, err := NewGANC(split.Train,
		AccuracyFromPop(split.Train, n),
		prefs,
		CoverageDyn(split.Train.NumItems()),
		GANCConfig{N: n, SampleSize: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Recommend()
	if len(recs) != split.Train.NumUsers() {
		t.Fatalf("recommendations for %d users, want %d", len(recs), split.Train.NumUsers())
	}

	ev := NewEvaluator(split, 0)
	gancRep := ev.Evaluate(g.Name(), recs, n)
	popRep := ev.Evaluate("Pop", RecommendAll(NewPop(split.Train), split.Train, n), n)
	if gancRep.Coverage <= popRep.Coverage {
		t.Fatalf("GANC coverage %.4f should exceed Pop coverage %.4f", gancRep.Coverage, popRep.Coverage)
	}

	ranks := RankReports([]Report{gancRep, popRep})
	if len(ranks) != 2 {
		t.Fatal("RankReports incomplete")
	}
}

func TestPublicAPIModelTraining(t *testing.T) {
	data, err := GenerateML100K(0.12)
	if err != nil {
		t.Fatal(err)
	}
	split := SplitByUser(data, 0.8, rand.New(rand.NewSource(5)))

	rsvdCfg := DefaultRSVDConfig()
	rsvdCfg.Factors = 8
	rsvdCfg.Epochs = 3
	rsvd, err := TrainRSVD(split.Train, rsvdCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rsvd.RMSE(split.Test) <= 0 {
		t.Fatal("RMSE should be positive on held-out data")
	}

	psvd, err := TrainPSVD(split.Train, PSVDConfig{Factors: 8, PowerIterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(psvd.Name(), "PSVD") {
		t.Fatal("PSVD name wrong")
	}

	cofiCfg := CofiConfig{Factors: 8, Regularization: 0.05, LearningRate: 0.02, Epochs: 2, InitStd: 0.1, Seed: 1, PairsPerUser: 5}
	cofi, err := TrainCofi(split.Train, cofiCfg)
	if err != nil {
		t.Fatal(err)
	}
	if cofi.Factors() != 8 {
		t.Fatal("Cofi factors wrong")
	}

	// AccuracyFromScorer clamps into [0,1]; smoke-test through GANC with Stat
	// and Rand coverage as well.
	prefs, err := EstimatePreferences(PreferenceTFIDF, split.Train, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, crec := range []CoverageRecommender{CoverageStat(split.Train), CoverageRand(1)} {
		g, err := NewGANC(split.Train, AccuracyFromScorer(rsvd, split.Train.NumItems()), prefs, crec, GANCConfig{N: 3})
		if err != nil {
			t.Fatal(err)
		}
		if got := g.Recommend(); len(got) != split.Train.NumUsers() {
			t.Fatal("facade GANC run incomplete")
		}
	}
}

func TestPublicAPIReadRatings(t *testing.T) {
	csv := "u1,i1,5\nu1,i2,3\nu2,i1,4\n"
	d, err := ReadRatings(strings.NewReader(csv), LoadOptions{Name: "inline"})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRatings() != 3 || d.NumUsers() != 2 || d.NumItems() != 2 {
		t.Fatalf("parse result wrong: %d/%d/%d", d.NumRatings(), d.NumUsers(), d.NumItems())
	}
}

func TestPublicAPISyntheticGenerators(t *testing.T) {
	cases := []struct {
		name string
		gen  func(float64) (*Dataset, error)
	}{
		{"ML-100K", GenerateML100K},
		{"ML-1M", GenerateML1M},
		{"ML-10M", GenerateML10M},
		{"MT-200K", GenerateMT200K},
		{"Netflix", GenerateNetflixSample},
	}
	for _, tc := range cases {
		d, err := tc.gen(0.05)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if d.NumRatings() == 0 {
			t.Fatalf("%s: empty dataset", tc.name)
		}
		if d.Name() != tc.name {
			t.Fatalf("%s: generated dataset named %q", tc.name, d.Name())
		}
	}
}
