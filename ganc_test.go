package ganc

import (
	"context"
	"math/rand"
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd exercises the complete facade workflow exactly as the
// README's quickstart describes it: generate → split → assemble the pipeline
// in one call → recommend through the Engine → evaluate.
func TestPublicAPIEndToEnd(t *testing.T) {
	data, err := GenerateML100K(0.12)
	if err != nil {
		t.Fatal(err)
	}
	split := SplitByUser(data, 0.8, rand.New(rand.NewSource(3)))
	if split.Train.NumRatings() == 0 || split.Test.NumRatings() == 0 {
		t.Fatal("degenerate split")
	}

	const n = 5
	p, err := NewPipeline(split.Train,
		WithBaseNamed("Pop"),
		WithPreferences(PreferenceGeneralized),
		WithCoverage(CoverageDyn()),
		WithTopN(n),
		WithSampleSize(40),
		WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if p.Preferences().Len() != split.Train.NumUsers() {
		t.Fatal("preference vector size mismatch")
	}
	ctx := context.Background()
	recs, err := p.RecommendAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != split.Train.NumUsers() {
		t.Fatalf("recommendations for %d users, want %d", len(recs), split.Train.NumUsers())
	}

	ev := NewEvaluator(split, 0)
	gancRep := ev.Evaluate(p.Name(), recs, n)
	popRecs, err := NewBaseEngine(NewPop(split.Train), split.Train, n).RecommendAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	popRep := ev.Evaluate("Pop", popRecs, n)
	if gancRep.Coverage <= popRep.Coverage {
		t.Fatalf("GANC coverage %.4f should exceed Pop coverage %.4f", gancRep.Coverage, popRep.Coverage)
	}

	ranks := RankReports([]Report{gancRep, popRep})
	if len(ranks) != 2 {
		t.Fatal("RankReports incomplete")
	}
}

func TestPublicAPIModelTraining(t *testing.T) {
	data, err := GenerateML100K(0.12)
	if err != nil {
		t.Fatal(err)
	}
	split := SplitByUser(data, 0.8, rand.New(rand.NewSource(5)))

	rsvdCfg := DefaultRSVDConfig()
	rsvdCfg.Factors = 8
	rsvdCfg.Epochs = 3
	rsvd, err := TrainRSVD(split.Train, rsvdCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rsvd.RMSE(split.Test) <= 0 {
		t.Fatal("RMSE should be positive on held-out data")
	}

	psvd, err := TrainPSVD(split.Train, PSVDConfig{Factors: 8, PowerIterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(psvd.Name(), "PSVD") {
		t.Fatal("PSVD name wrong")
	}

	cofiCfg := CofiConfig{Factors: 8, Regularization: 0.05, LearningRate: 0.02, Epochs: 2, InitStd: 0.1, Seed: 1, PairsPerUser: 5}
	cofi, err := TrainCofi(split.Train, cofiCfg)
	if err != nil {
		t.Fatal(err)
	}
	if cofi.Factors() != 8 {
		t.Fatal("Cofi factors wrong")
	}

	// WithBase normalizes scorer output into [0,1]; smoke-test the pipeline
	// with Stat and Rand coverage as well.
	for _, spec := range []CoverageSpec{CoverageStat(), CoverageRand()} {
		p, err := NewPipeline(split.Train,
			WithBase(rsvd),
			WithPreferences(PreferenceTFIDF),
			WithCoverage(spec),
			WithTopN(3))
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.RecommendAll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != split.Train.NumUsers() {
			t.Fatal("facade GANC run incomplete")
		}
	}
}

func TestPublicAPIReadRatings(t *testing.T) {
	csv := "u1,i1,5\nu1,i2,3\nu2,i1,4\n"
	d, err := ReadRatings(strings.NewReader(csv), LoadOptions{Name: "inline"})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRatings() != 3 || d.NumUsers() != 2 || d.NumItems() != 2 {
		t.Fatalf("parse result wrong: %d/%d/%d", d.NumRatings(), d.NumUsers(), d.NumItems())
	}
}

func TestPublicAPISyntheticGenerators(t *testing.T) {
	cases := []struct {
		name string
		gen  func(float64) (*Dataset, error)
	}{
		{"ML-100K", GenerateML100K},
		{"ML-1M", GenerateML1M},
		{"ML-10M", GenerateML10M},
		{"MT-200K", GenerateMT200K},
		{"Netflix", GenerateNetflixSample},
	}
	for _, tc := range cases {
		d, err := tc.gen(0.05)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if d.NumRatings() == 0 {
			t.Fatalf("%s: empty dataset", tc.name)
		}
		if d.Name() != tc.name {
			t.Fatalf("%s: generated dataset named %q", tc.name, d.Name())
		}
	}
}
