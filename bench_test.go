package ganc

// Benchmark harness: one testing.B target per table and figure in the paper's
// evaluation, plus ablation benches for the design choices called out in
// DESIGN.md §6. Each benchmark regenerates the corresponding experiment on
// the synthetic calibrated datasets at a small scale (so the whole suite runs
// in minutes) and reports a handful of headline numbers as custom metrics, so
// `go test -bench=. -benchmem` doubles as the reproduction run recorded in
// EXPERIMENTS.md. Scale and sample size can be raised via the GANC_BENCH_SCALE
// environment variable for a closer-to-paper run.

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"ganc/internal/core"
	"ganc/internal/experiment"
	"ganc/internal/longtail"
	"ganc/internal/submodular"
	"ganc/internal/synth"
	"ganc/internal/types"
)

// benchScale returns the dataset scale used by the benchmark suite.
func benchScale() synth.Scale {
	if v := os.Getenv("GANC_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return synth.Scale(f)
		}
	}
	return 0.12
}

// newBenchSuite builds a fresh experiment suite for a benchmark.
func newBenchSuite() *experiment.Suite {
	return experiment.NewSuite(benchScale(), 1, 5, 0)
}

// --- Table and figure reproduction benches -------------------------------------

// BenchmarkTableII_DatasetStats regenerates Table II (dataset statistics).
func BenchmarkTableII_DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, _, err := s.TableII()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "datasets")
	}
}

// BenchmarkFigure1_AvgPopularityVsActivity regenerates Figure 1 on every dataset.
func BenchmarkFigure1_AvgPopularityVsActivity(b *testing.B) {
	s := newBenchSuite()
	for i := 0; i < b.N; i++ {
		for _, name := range experiment.DatasetNames() {
			if _, _, err := s.Figure1(name, 10); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure2_PreferenceHistograms regenerates Figure 2 on every dataset.
func BenchmarkFigure2_PreferenceHistograms(b *testing.B) {
	s := newBenchSuite()
	for i := 0; i < b.N; i++ {
		for _, name := range experiment.DatasetNames() {
			res, _, err := s.Figure2(name, 20)
			if err != nil {
				b.Fatal(err)
			}
			if name == "ML-1M" {
				b.ReportMetric(res.Means[longtail.ModelGeneralized], "thetaG-mean-ML1M")
			}
		}
	}
}

// BenchmarkFigure3_SampleSizeML1M regenerates the Figure 3 sweep (sample size
// vs F-measure and coverage on ML-1M).
func BenchmarkFigure3_SampleSizeML1M(b *testing.B) {
	s := newBenchSuite()
	sizes := []int{30, 60, 120}
	for i := 0; i < b.N; i++ {
		points, _, err := s.SampleSizeSweep("ML-1M", []experiment.AccuracyRecName{experiment.ARecPSVD100, experiment.ARecPop}, sizes)
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		b.ReportMetric(last.Coverage, "coverage@maxS")
		b.ReportMetric(last.FMeasure, "fmeasure@maxS")
	}
}

// BenchmarkFigure4_SampleSizeMT200K regenerates the Figure 4 sweep on the
// sparse MT-200K stand-in.
func BenchmarkFigure4_SampleSizeMT200K(b *testing.B) {
	s := newBenchSuite()
	sizes := []int{30, 60, 120}
	for i := 0; i < b.N; i++ {
		points, _, err := s.SampleSizeSweep("MT-200K", []experiment.AccuracyRecName{experiment.ARecPop, experiment.ARecRSVD}, sizes)
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		b.ReportMetric(last.Coverage, "coverage@maxS")
	}
}

// BenchmarkFigure5_PreferenceModelSweep regenerates the Figure 5 sweep
// (preference models × accuracy recommenders) on ML-1M at N=5.
func BenchmarkFigure5_PreferenceModelSweep(b *testing.B) {
	s := newBenchSuite()
	arecs := []experiment.AccuracyRecName{experiment.ARecPop, experiment.ARecPSVD10}
	thetas := []longtail.Model{longtail.ModelConstant, longtail.ModelTFIDF, longtail.ModelGeneralized}
	for i := 0; i < b.N; i++ {
		points, _, err := s.PreferenceModelSweep("ML-1M", arecs, thetas, []int{5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(points)), "configurations")
	}
}

// BenchmarkTableIV_RerankingComparison regenerates Table IV (re-ranking RSVD)
// on the dense ML-100K and sparse MT-200K stand-ins.
func BenchmarkTableIV_RerankingComparison(b *testing.B) {
	s := newBenchSuite()
	for i := 0; i < b.N; i++ {
		results, _, err := s.TableIV([]string{"ML-100K", "MT-200K"})
		if err != nil {
			b.Fatal(err)
		}
		// Report the GANC(θ^G) and RSVD coverage on ML-100K so regressions in
		// the headline effect are visible in benchmark diffs.
		for _, rep := range results[0].Reports {
			switch {
			case rep.Algorithm == "RSVD":
				b.ReportMetric(rep.Coverage, "rsvd-coverage")
			case rep.Algorithm == "GANC(RSVD, θ^G, Dyn)":
				b.ReportMetric(rep.Coverage, "ganc-coverage")
			}
		}
	}
}

// BenchmarkFigure6_TopNComparison regenerates the Figure 6 scatter on the
// dense ML-100K and sparse MT-200K stand-ins.
func BenchmarkFigure6_TopNComparison(b *testing.B) {
	s := newBenchSuite()
	for i := 0; i < b.N; i++ {
		points, _, err := s.Figure6([]string{"ML-100K", "MT-200K"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(points)), "algorithm-points")
	}
}

// BenchmarkFigure7_ProtocolML100K regenerates the Appendix C protocol
// comparison on ML-100K.
func BenchmarkFigure7_ProtocolML100K(b *testing.B) {
	s := newBenchSuite()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.ProtocolComparison("ML-100K"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8_ProtocolML1M regenerates the Appendix C protocol
// comparison on ML-1M.
func BenchmarkFigure8_ProtocolML1M(b *testing.B) {
	s := newBenchSuite()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.ProtocolComparison("ML-1M"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableV_RSVDConfig regenerates Table V (RSVD configuration and
// held-out error) across all datasets.
func BenchmarkTableV_RSVDConfig(b *testing.B) {
	s := newBenchSuite()
	for i := 0; i < b.N; i++ {
		rows, _, err := s.TableV(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].RMSE, "rmse-ML100K")
	}
}

// --- Ablation benches ------------------------------------------------------------

// ablationFixture builds the split and preferences the ablations share.
func ablationFixture(b *testing.B) (*Split, *Preferences) {
	b.Helper()
	data, err := GenerateML100K(float64(benchScale()))
	if err != nil {
		b.Fatal(err)
	}
	split := SplitByUser(data, 0.8, rand.New(rand.NewSource(2)))
	prefs, err := longtail.Estimate(longtail.ModelGeneralized, split.Train, nil, 0, 2)
	if err != nil {
		b.Fatal(err)
	}
	return split, prefs
}

// ablationPipeline assembles GANC(Pop, prefs, Dyn) through the public
// Pipeline API with the given OSLG sample size.
func ablationPipeline(b *testing.B, split *Split, prefs *Preferences, sample int, seed int64) *Pipeline {
	b.Helper()
	p, err := NewPipeline(split.Train,
		WithBaseNamed("Pop"),
		WithPreferenceVector(prefs),
		WithCoverage(CoverageDyn()),
		WithTopN(5),
		WithSampleSize(sample),
		WithSeed(seed))
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkAblation_SamplingVsFull compares OSLG with sampling against the
// fully sequential locally greedy optimizer (objective value and wall time).
func BenchmarkAblation_SamplingVsFull(b *testing.B) {
	split, prefs := ablationFixture(b)
	run := func(sample int) (float64, Recommendations) {
		p := ablationPipeline(b, split, prefs, sample, 2)
		recs := p.GANC().Recommend()
		return p.GANC().ValueOf(recs), recs
	}
	b.Run("full-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v, _ := run(0)
			b.ReportMetric(v, "objective")
		}
	})
	b.Run("oslg-sampled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v, _ := run(split.Train.NumUsers() / 5)
			b.ReportMetric(v, "objective")
		}
	})
}

// BenchmarkAblation_UserOrder compares processing users in increasing θ
// (OSLG's ordering) against arbitrary order, measuring catalog coverage.
func BenchmarkAblation_UserOrder(b *testing.B) {
	split, prefs := ablationFixture(b)
	coverageWith := func(pv *Preferences) float64 {
		p := ablationPipeline(b, split, pv, 0, 2)
		recs := p.GANC().Recommend()
		return float64(len(recs.DistinctItems())) / float64(split.Train.NumItems())
	}
	b.Run("increasing-theta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(coverageWith(prefs), "coverage")
		}
	})
	b.Run("shuffled-theta", func(b *testing.B) {
		// Shuffling the preference values decouples the processing order from
		// the users' actual appetites, which is the ablation's control arm.
		shuffled := &longtail.Preferences{Model: prefs.Model, Values: append([]float64(nil), prefValues(prefs)...)}
		rng := rand.New(rand.NewSource(9))
		rng.Shuffle(len(shuffled.Values), func(i, j int) {
			shuffled.Values[i], shuffled.Values[j] = shuffled.Values[j], shuffled.Values[i]
		})
		for i := 0; i < b.N; i++ {
			b.ReportMetric(coverageWith(shuffled), "coverage")
		}
	})
}

func prefValues(p *Preferences) []float64 { return p.Values }

// BenchmarkAblation_CoverageRecommender compares the Dyn, Stat and Rand
// coverage recommenders inside GANC on the same dataset.
func BenchmarkAblation_CoverageRecommender(b *testing.B) {
	split, prefs := ablationFixture(b)
	ev := NewEvaluator(split, 0)
	for _, tc := range []struct {
		name string
		spec CoverageSpec
	}{
		{"Dyn", CoverageDyn()},
		{"Stat", CoverageStat()},
		{"Rand", CoverageRand()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := NewPipeline(split.Train,
					WithBaseNamed("Pop"),
					WithPreferenceVector(prefs),
					WithCoverage(tc.spec),
					WithTopN(5),
					WithSampleSize(40),
					WithSeed(3))
				if err != nil {
					b.Fatal(err)
				}
				rep := ev.Evaluate(p.Name(), p.GANC().Recommend(), 5)
				b.ReportMetric(rep.Coverage, "coverage")
				b.ReportMetric(rep.FMeasure, "fmeasure")
			}
		})
	}
}

// BenchmarkAblation_PreferenceModel compares θ^G against the simpler θ models
// inside GANC(Pop, θ, Dyn).
func BenchmarkAblation_PreferenceModel(b *testing.B) {
	split, _ := ablationFixture(b)
	ev := NewEvaluator(split, 0)
	for _, model := range []PreferenceModel{PreferenceConstant, PreferenceNormalizedLongTail, PreferenceTFIDF, PreferenceGeneralized} {
		b.Run(string(model), func(b *testing.B) {
			prefs, err := longtail.Estimate(model, split.Train, nil, 0.5, 4)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				p, err := NewPipeline(split.Train,
					WithBaseNamed("Pop"),
					WithPreferenceVector(prefs),
					WithCoverage(CoverageDyn()),
					WithTopN(5),
					WithSampleSize(40),
					WithSeed(4))
				if err != nil {
					b.Fatal(err)
				}
				rep := ev.Evaluate(p.Name(), p.GANC().Recommend(), 5)
				b.ReportMetric(rep.FMeasure, "fmeasure")
				b.ReportMetric(rep.Coverage, "coverage")
			}
		})
	}
}

// BenchmarkAblation_LazyGreedy compares lazy-greedy against plain greedy
// marginal-gain evaluation on a Dyn-style submodular objective.
func BenchmarkAblation_LazyGreedy(b *testing.B) {
	const numItems, numUsers, n = 400, 100, 5
	buildOracle := func() submodular.Oracle { return newDynOracle(numItems) }
	users := make([]types.UserID, numUsers)
	for i := range users {
		users[i] = types.UserID(i)
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			submodular.LocallyGreedy(users, n, buildOracle())
		}
	})
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := buildOracle()
			for _, u := range users {
				submodular.LazyGreedyForUser(u, n, o)
			}
		}
	})
}

// dynOracle is a minimal Dyn-style oracle for the lazy-greedy ablation.
type dynOracle struct {
	freq  []int
	cands []types.ItemID
}

func newDynOracle(numItems int) *dynOracle {
	cands := make([]types.ItemID, numItems)
	for i := range cands {
		cands[i] = types.ItemID(i)
	}
	return &dynOracle{freq: make([]int, numItems), cands: cands}
}

func (o *dynOracle) Gain(_ types.UserID, i types.ItemID) float64 {
	return 1 / (1 + float64(o.freq[i]))
}
func (o *dynOracle) Commit(_ types.UserID, i types.ItemID)  { o.freq[i]++ }
func (o *dynOracle) Candidates(types.UserID) []types.ItemID { return o.cands }

// --- Micro-benches for the core primitives ----------------------------------------

// BenchmarkCore_OSLGRecommend measures a single GANC(Pop, θ^G, Dyn) pass.
func BenchmarkCore_OSLGRecommend(b *testing.B) {
	split, prefs := ablationFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ablationPipeline(b, split, prefs, 40, 5)
		_ = p.GANC().Recommend()
	}
}

// BenchmarkCore_GeneralizedPreferenceLearning measures the θ^G minimax solver.
func BenchmarkCore_GeneralizedPreferenceLearning(b *testing.B) {
	data, err := GenerateML100K(float64(benchScale()))
	if err != nil {
		b.Fatal(err)
	}
	split := SplitByUser(data, 0.8, rand.New(rand.NewSource(6)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := longtail.Estimate(longtail.ModelGeneralized, split.Train, nil, 0, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCore_RSVDTraining measures SGD matrix-factorization training.
func BenchmarkCore_RSVDTraining(b *testing.B) {
	data, err := GenerateML100K(float64(benchScale()))
	if err != nil {
		b.Fatal(err)
	}
	split := SplitByUser(data, 0.8, rand.New(rand.NewSource(7)))
	cfg := DefaultRSVDConfig()
	cfg.Factors = 20
	cfg.Epochs = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainRSVD(split.Train, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCore_PSVDTraining measures the randomized truncated SVD.
func BenchmarkCore_PSVDTraining(b *testing.B) {
	data, err := GenerateML100K(float64(benchScale()))
	if err != nil {
		b.Fatal(err)
	}
	split := SplitByUser(data, 0.8, rand.New(rand.NewSource(8)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainPSVD(split.Train, PSVDConfig{Factors: 20, PowerIterations: 2, Seed: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ensure the core package's DynCoverage satisfies the facade interface (a
// compile-time check that the public API stays assembled).
var _ CoverageRecommender = (*core.DynCoverage)(nil)
