//go:build e2e

package ganc

import (
	"context"
	"testing"
	"time"
)

// The tier-2 cluster scenario: the kill-one-shard drill at system level,
// driven by the same data-driven runner as the single-node suite but against
// the real sharded assembly — scatter-gather router, per-shard servers,
// write-ahead logs and checkpoints. Run under -race by the CI e2e job:
//
//	go test -race -tags e2e -run TestScenario .
//
// The choreography: train → shard-split save (each shard checkpoints its
// shard-scoped snapshot) → ingest churn through the router (events routed to
// their owning shards; a single-node shadow absorbs exactly the drilled
// shard's slice) → Zipf load with the drilled shard killed mid-load (its
// users' requests fail with the router's typed 503; the phase records
// rather than rejects those errors) → restart the shard from snapshot + WAL
// → a final load phase that must be entirely error-free. The runner asserts
// the recovered shard's owned-user fingerprint is byte-identical to the
// uninterrupted single-node shadow.
func TestScenarioClusterKillShardRecovery(t *testing.T) {
	const drilled = 1
	target := drilled
	sc := Scenario{
		Name:            "cluster-kill-shard",
		Universe:        e2eUniverse(19),
		TopN:            10,
		CheckpointEvery: 0, // WAL-only: the restart must replay the full shard slice
		Seed:            37,
		Phases: []ScenarioPhase{
			{Kind: PhaseTrain},
			{Kind: PhaseSave},
			{Kind: PhaseIngestChurn, Events: 180, EventBatch: 30, Concurrency: 4},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8, KillShardMid: &target, KillDelayMs: 150},
			{Kind: PhaseRestartShard, Shard: drilled},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8},
		},
	}
	res, err := RunClusterScenario(context.Background(), sc, t.TempDir(), e2eSystem(), 3)
	if err != nil {
		t.Fatal(err)
	}

	churn := res.Phases[2]
	if churn.EventsApplied != 180 {
		t.Fatalf("churn applied %d events, want 180", churn.EventsApplied)
	}
	if churn.ReaderRequests == 0 || churn.ReaderErrors != 0 {
		t.Fatalf("churn readers: %d requests, %d errors", churn.ReaderRequests, churn.ReaderErrors)
	}

	midKill := res.Phases[3]
	if midKill.Load == nil || midKill.Load.Requests != 400 {
		t.Fatalf("mid-kill phase recorded %+v", midKill.Load)
	}
	if midKill.Shard != drilled {
		t.Fatalf("mid-kill phase targeted shard %d, want %d", midKill.Shard, drilled)
	}

	restart := res.Phases[4]
	if !restart.ParityChecked {
		t.Fatal("restart-shard did not assert recovery equivalence against the shadow")
	}
	if restart.Replayed == 0 {
		t.Fatal("restart replayed no events: the WAL suffix was empty, so the drill proved nothing")
	}

	// The post-recovery load is the zero-client-visible-errors criterion:
	// the runner fails the scenario on any server-side error, so reaching
	// here means recovery was clean; the explicit checks below document it.
	after := res.Phases[5]
	if after.Load == nil || after.Load.Errors != 0 {
		t.Fatalf("post-recovery load: %+v", after.Load)
	}
	if after.Load.Requests != 400 {
		t.Fatalf("post-recovery load completed %d of 400 requests", after.Load.Requests)
	}
}

// TestScenarioKillPrimaryMidLoad is the replication chaos drill: every shard
// runs with one warm replica, and the drilled shard's primary is killed in
// the middle of a Zipf read load. Three hard promises are asserted:
//
//  1. Zero client-visible errors. With warm replicas and a read-only mix the
//     router's read failover must mask the outage completely — the phase
//     itself fails on any surviving error (see serve-under-load's
//     replicated-kill contract), and the final load phase re-checks after
//     promotion.
//  2. Bounded staleness. The surviving shards' replica lag must drain to the
//     MaxReplicaLagEvents knob (zero here: the load is read-only, so a
//     healthy shipper has nothing left in flight); the rejoined ex-primary
//     must converge to zero lag before its phase passes.
//  3. Recovery equivalence. The promoted ex-replica's owned-user fingerprint
//     must be byte-identical to the uninterrupted single-node shadow — the
//     same parity contract the restart-shard drill enforces, now across an
//     address change and a bumped ring epoch.
func TestScenarioKillPrimaryMidLoad(t *testing.T) {
	const drilled = 1
	target := drilled
	noLag := uint64(0)
	sc := Scenario{
		Name:            "kill-primary-mid-load",
		Universe:        e2eUniverse(29),
		TopN:            10,
		CheckpointEvery: 0, // WAL-only: replicas converge by replication, not snapshots
		Seed:            43,
		Phases: []ScenarioPhase{
			{Kind: PhaseTrain},
			{Kind: PhaseIngestChurn, Events: 180, EventBatch: 30, Concurrency: 4},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8,
				KillShardMid: &target, KillDelayMs: 150, MaxReplicaLagEvents: &noLag},
			{Kind: PhasePromoteReplica, Shard: drilled},
			{Kind: PhaseRejoinReplica, Shard: drilled},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8, MaxReplicaLagEvents: &noLag},
		},
	}
	res, err := RunReplicatedClusterScenario(context.Background(), sc, t.TempDir(), e2eSystem(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}

	churn := res.Phases[1]
	if churn.EventsApplied != 180 {
		t.Fatalf("churn applied %d events, want 180", churn.EventsApplied)
	}

	// The mid-kill load: full request count, zero errors — the kill happened
	// (the runner verifies the kill fired) yet failover hid it.
	midKill := res.Phases[2]
	if midKill.Load == nil || midKill.Load.Requests != 400 {
		t.Fatalf("mid-kill phase recorded %+v", midKill.Load)
	}
	if midKill.Load.Errors != 0 {
		t.Fatalf("mid-kill load leaked %d errors despite replicas", midKill.Load.Errors)
	}
	if midKill.ReplicaLagEvents != 0 {
		t.Fatalf("surviving shards' replica lag %d events, want 0", midKill.ReplicaLagEvents)
	}

	// Promotion: a bumped epoch and the byte-identical owned-user parity
	// check against the uninterrupted shadow.
	promote := res.Phases[3]
	if promote.Epoch < 2 {
		t.Fatalf("promotion left the ring at epoch %d, want a bump past 1", promote.Epoch)
	}
	if !promote.ParityChecked {
		t.Fatal("promote-replica did not assert parity against the shadow")
	}

	// Rejoin: the dead ex-primary replayed its own WAL (the churn slice it
	// committed while it was the primary) and converged to zero lag.
	rejoin := res.Phases[4]
	if rejoin.Replayed == 0 {
		t.Fatal("rejoin replayed no events: the ex-primary's WAL was empty, so the drill proved nothing")
	}
	if rejoin.ReplicaLagEvents != 0 {
		t.Fatalf("rejoined replica stuck %d events behind", rejoin.ReplicaLagEvents)
	}

	// Post-promotion serving: error-free at the new epoch, replicas in sync.
	after := res.Phases[5]
	if after.Load == nil || after.Load.Requests != 400 || after.Load.Errors != 0 {
		t.Fatalf("post-promotion load: %+v", after.Load)
	}
	if after.ReplicaLagEvents != 0 {
		t.Fatalf("post-promotion replica lag %d events, want 0", after.ReplicaLagEvents)
	}
}

// TestScenarioAutoFailoverKillPrimaryMidLoad is the hands-off failover drill:
// the kill-primary chaos scenario with NO manual promotion anywhere in the
// phase list. Every shard runs two warm replicas with a k=2-of-2 write
// quorum and the failure detector armed for auto-failover; the drilled
// shard's primary is killed mid-read-load and the scenario then merely WAITS
// (await-promotion) for the detector to suspect the corpse, promote the
// freshest replica, and republish the ring on its own. Hard promises:
//
//  1. Zero operator intervention. The phase list contains no promote-replica;
//     the epoch bump the await-promotion phase observes can only come from
//     the detector's suspicion callback.
//  2. Zero client-visible errors. The router masks the outage through the
//     detector's cached liveness view while promotion is in flight.
//  3. Quorum durability. The churn events were each acknowledged only after
//     both replicas held them (k=2, n=2), so the promoted replica must carry
//     every acked write: await-promotion's parity check compares the new
//     primary's owned-user fingerprint byte-for-byte against the
//     uninterrupted single-node shadow.
//  4. Replica-assisted rejoin. The dead ex-primary rejoins as a replica and
//     converges to zero lag, after which serving stays error-free.
func TestScenarioAutoFailoverKillPrimaryMidLoad(t *testing.T) {
	const drilled = 1
	target := drilled
	noLag := uint64(0)
	sc := Scenario{
		Name:            "auto-failover-kill-primary",
		Universe:        e2eUniverse(41),
		TopN:            10,
		CheckpointEvery: 0,
		Seed:            61,
		Phases: []ScenarioPhase{
			{Kind: PhaseTrain},
			{Kind: PhaseIngestChurn, Events: 180, EventBatch: 30, Concurrency: 4},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8,
				KillShardMid: &target, KillDelayMs: 150},
			{Kind: PhaseAwaitPromotion, Shard: drilled, PromotionWindowMs: 10_000},
			{Kind: PhaseRejoinReplica, Shard: drilled},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8, MaxReplicaLagEvents: &noLag},
		},
	}
	res, err := RunReplicatedClusterScenario(context.Background(), sc, t.TempDir(), e2eSystem(), 2, 2,
		WithWriteQuorum(2), WithAutoFailover(), WithFailureDetection(50*time.Millisecond, 3))
	if err != nil {
		t.Fatal(err)
	}

	if churn := res.Phases[1]; churn.EventsApplied != 180 {
		t.Fatalf("churn applied %d events, want 180", churn.EventsApplied)
	}

	midKill := res.Phases[2]
	if midKill.Load == nil || midKill.Load.Requests != 400 {
		t.Fatalf("mid-kill phase recorded %+v", midKill.Load)
	}
	if midKill.Load.Errors != 0 {
		t.Fatalf("mid-kill load leaked %d errors despite replicas and the detector view", midKill.Load.Errors)
	}

	// The detector promoted with no operator call: the epoch bumped past the
	// training-time baseline, and the promoted primary carries every
	// quorum-acked write (byte-identical to the shadow).
	promoted := res.Phases[3]
	if promoted.Epoch < 2 {
		t.Fatalf("await-promotion observed epoch %d, want a bump past 1", promoted.Epoch)
	}
	if !promoted.ParityChecked {
		t.Fatal("await-promotion did not assert quorum durability via shadow parity")
	}

	rejoin := res.Phases[4]
	if rejoin.ReplicaLagEvents != 0 {
		t.Fatalf("rejoined ex-primary stuck %d events behind", rejoin.ReplicaLagEvents)
	}

	after := res.Phases[5]
	if after.Load == nil || after.Load.Requests != 400 || after.Load.Errors != 0 {
		t.Fatalf("post-promotion load: %+v", after.Load)
	}
	if after.ReplicaLagEvents != 0 {
		t.Fatalf("post-promotion replica lag %d events, want 0", after.ReplicaLagEvents)
	}
}

// TestScenarioReshardGrowWhileReplicated is the grow-the-ring-while-replicas-
// lag chaos drill: a replicated 2-shard cluster grows to 3 shards in the
// middle of a read load. The new shard's replica is the stress point — it
// boots from a history-empty snapshot while the live migration bursts every
// reassigned user's history through the new primary's shipper, so it lags by
// construction mid-drill and must converge through replication catch-up
// alone. Hard promises: zero client-visible errors through the cutover, real
// migration, byte-identical parity for the new shard after post-grow churn,
// and zero replica lag everywhere once the dust settles.
func TestScenarioReshardGrowWhileReplicated(t *testing.T) {
	const drilled = 2 // the shard the grow adds
	grown := 3
	noLag := uint64(0)
	sc := Scenario{
		Name:            "reshard-grow-replicated",
		Universe:        e2eUniverse(43),
		TopN:            10,
		CheckpointEvery: 0,
		Seed:            67,
		Stream:          EventStreamConfig{NewUserRate: -1, NewItemRate: -1},
		Phases: []ScenarioPhase{
			{Kind: PhaseTrain},
			{Kind: PhaseIngestChurn, Events: 180, EventBatch: 30, Concurrency: 4},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8,
				ReshardMid: &grown, Shard: drilled, ReshardDelayMs: 100},
			{Kind: PhaseIngestChurn, Events: 120, EventBatch: 30, Concurrency: 4},
			{Kind: PhaseShardParity, Shard: drilled},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8, MaxReplicaLagEvents: &noLag},
		},
	}
	res, err := RunReplicatedClusterScenario(context.Background(), sc, t.TempDir(), e2eSystem(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}

	mid := res.Phases[2]
	if mid.Load == nil || mid.Load.Requests != 400 || mid.Load.Errors != 0 {
		t.Fatalf("mid-grow load: %+v", mid.Load)
	}
	rs := mid.Reshard
	if rs == nil {
		t.Fatal("mid-grow phase recorded no migration stats")
	}
	if rs.FromShards != 2 || rs.ToShards != 3 || rs.Epoch != 2 {
		t.Fatalf("reshard stats topology %d→%d epoch %d, want 2→3 epoch 2", rs.FromShards, rs.ToShards, rs.Epoch)
	}
	if rs.UsersMigrated == 0 || rs.EventsMigrated == 0 {
		t.Fatalf("grow migrated %d users / %d events; a drill where nothing moves proves nothing", rs.UsersMigrated, rs.EventsMigrated)
	}

	parity := res.Phases[4]
	if !parity.ParityChecked || parity.Shard != drilled {
		t.Fatalf("shard-parity did not assert the new shard's equivalence: %+v", parity)
	}
	final := res.Phases[5]
	if final.Load == nil || final.Load.Requests != 400 || final.Load.Errors != 0 {
		t.Fatalf("post-grow load: %+v", final.Load)
	}
	if final.ReplicaLagEvents != 0 {
		t.Fatalf("replicas still %d events behind after the grow settled", final.ReplicaLagEvents)
	}
}

// TestScenarioReshardGrowMidLoad is the elastic-growth chaos drill: a
// 2-shard cluster takes pre-reshard ingest churn, then grows to 3 shards in
// the middle of a Zipf read load. The drilled shard is the NEW shard 2 —
// born empty of history, populated entirely by the live migration plus the
// post-reshard churn of its finally-owned users. Hard promises:
//
//  1. Zero client-visible errors through the cutover. The staged transition
//     (writes re-routed at begin, reads double-dispatched to old owners until
//     each user's history lands) must make the grow invisible; the phase
//     itself fails on any error.
//  2. Real migration. The reshard stats must show users and events actually
//     moved — a drill where nothing migrates proves nothing.
//  3. Byte-identical convergence. After more churn lands on the grown ring,
//     the new shard's owned-user fingerprint must equal the uninterrupted
//     single-node shadow restricted to the same users. The shadow absorbed
//     the drilled shard's final-topology event slice from the first churn on,
//     so the comparison spans history that arrived via migration AND history
//     that arrived via normal post-reshard routing.
//
// The universe is closed (negative new-user/new-item rates): a migrated
// shard applies its users' histories in per-user order, which matches the
// shadow's global order byte-for-byte only when no event can extend the
// interner tables (see DESIGN.md §14).
func TestScenarioReshardGrowMidLoad(t *testing.T) {
	const drilled = 2 // the shard the grow adds
	grown := 3
	sc := Scenario{
		Name:            "reshard-grow-mid-load",
		Universe:        e2eUniverse(31),
		TopN:            10,
		CheckpointEvery: 0,
		Seed:            53,
		Stream:          EventStreamConfig{NewUserRate: -1, NewItemRate: -1},
		Phases: []ScenarioPhase{
			{Kind: PhaseTrain},
			{Kind: PhaseIngestChurn, Events: 180, EventBatch: 30, Concurrency: 4},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8,
				ReshardMid: &grown, Shard: drilled, ReshardDelayMs: 100},
			{Kind: PhaseIngestChurn, Events: 120, EventBatch: 30, Concurrency: 4},
			{Kind: PhaseShardParity, Shard: drilled},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8},
		},
	}
	res, err := RunClusterScenario(context.Background(), sc, t.TempDir(), e2eSystem(), 2)
	if err != nil {
		t.Fatal(err)
	}

	churn := res.Phases[1]
	if churn.EventsApplied != 180 {
		t.Fatalf("pre-reshard churn applied %d events, want 180", churn.EventsApplied)
	}

	mid := res.Phases[2]
	if mid.Load == nil || mid.Load.Requests != 400 {
		t.Fatalf("mid-reshard phase recorded %+v", mid.Load)
	}
	if mid.Load.Errors != 0 {
		t.Fatalf("mid-reshard load leaked %d errors; the cutover must be invisible", mid.Load.Errors)
	}
	rs := mid.Reshard
	if rs == nil {
		t.Fatal("mid-reshard phase recorded no migration stats")
	}
	if rs.FromShards != 2 || rs.ToShards != 3 || rs.Epoch != 2 {
		t.Fatalf("reshard stats topology %d→%d epoch %d, want 2→3 epoch 2", rs.FromShards, rs.ToShards, rs.Epoch)
	}
	if rs.UsersMigrated == 0 || rs.EventsMigrated == 0 {
		t.Fatalf("reshard migrated %d users / %d events; a drill where nothing moves proves nothing", rs.UsersMigrated, rs.EventsMigrated)
	}
	if rs.UsersMigrated > rs.UsersMoved {
		t.Fatalf("reshard migrated %d users but only %d changed owner", rs.UsersMigrated, rs.UsersMoved)
	}

	if after := res.Phases[3]; after.EventsApplied != 120 {
		t.Fatalf("post-reshard churn applied %d events, want 120", after.EventsApplied)
	}
	parity := res.Phases[4]
	if !parity.ParityChecked || parity.Shard != drilled {
		t.Fatalf("shard-parity did not assert the new shard's equivalence: %+v", parity)
	}
	if final := res.Phases[5]; final.Load == nil || final.Load.Requests != 400 || final.Load.Errors != 0 {
		t.Fatalf("post-reshard load: %+v", final.Load)
	}
}

// TestScenarioReshardShrinkMidLoad is the inverse drill: a 3-shard cluster
// shrinks to 2 in the middle of a Zipf read load, retiring shard 2 and
// migrating its users' histories to the survivors. The drilled shard is
// survivor 0: after the shrink it owns its original users PLUS the ex-shard-2
// users the ring reassigns to it, and its owned-user fingerprint must match
// the uninterrupted shadow — which absorbed exactly the final 2-shard
// topology's shard-0 slice from the first churn on. Ring minimality
// guarantees no user moves between the survivors themselves, so the final
// slice is well-defined from the start.
func TestScenarioReshardShrinkMidLoad(t *testing.T) {
	const drilled = 0 // a survivor that inherits part of the retired shard
	shrunk := 2
	sc := Scenario{
		Name:            "reshard-shrink-mid-load",
		Universe:        e2eUniverse(37),
		TopN:            10,
		CheckpointEvery: 0,
		Seed:            59,
		Stream:          EventStreamConfig{NewUserRate: -1, NewItemRate: -1},
		Phases: []ScenarioPhase{
			{Kind: PhaseTrain},
			{Kind: PhaseIngestChurn, Events: 180, EventBatch: 30, Concurrency: 4},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8,
				ReshardMid: &shrunk, Shard: drilled, ReshardDelayMs: 100},
			{Kind: PhaseIngestChurn, Events: 120, EventBatch: 30, Concurrency: 4},
			{Kind: PhaseShardParity, Shard: drilled},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8},
		},
	}
	res, err := RunClusterScenario(context.Background(), sc, t.TempDir(), e2eSystem(), 3)
	if err != nil {
		t.Fatal(err)
	}

	mid := res.Phases[2]
	if mid.Load == nil || mid.Load.Requests != 400 || mid.Load.Errors != 0 {
		t.Fatalf("mid-shrink load: %+v", mid.Load)
	}
	rs := mid.Reshard
	if rs == nil {
		t.Fatal("mid-shrink phase recorded no migration stats")
	}
	if rs.FromShards != 3 || rs.ToShards != 2 || rs.Epoch != 2 {
		t.Fatalf("reshard stats topology %d→%d epoch %d, want 3→2 epoch 2", rs.FromShards, rs.ToShards, rs.Epoch)
	}
	if rs.UsersMigrated == 0 || rs.EventsMigrated == 0 {
		t.Fatalf("shrink migrated %d users / %d events; the retired shard's history must move", rs.UsersMigrated, rs.EventsMigrated)
	}

	parity := res.Phases[4]
	if !parity.ParityChecked || parity.Shard != drilled {
		t.Fatalf("shard-parity did not assert the survivor's equivalence: %+v", parity)
	}
	if final := res.Phases[5]; final.Load == nil || final.Load.Requests != 400 || final.Load.Errors != 0 {
		t.Fatalf("post-shrink load: %+v", final.Load)
	}
}

// TestScenarioClusterWarmStartParity: the whole-cluster restart. Saving
// checkpoints every shard; Load kills and restores all of them (snapshot +
// WAL replay); the runner asserts the cluster's union fingerprint is
// byte-identical across the restart, then serving resumes error-free.
func TestScenarioClusterWarmStartParity(t *testing.T) {
	sc := Scenario{
		Name:     "cluster-warm-start",
		Universe: e2eUniverse(23),
		TopN:     10,
		Seed:     41,
		Phases: []ScenarioPhase{
			{Kind: PhaseTrain},
			{Kind: PhaseSave},
			{Kind: PhaseServeUnderLoad, Requests: 300, Concurrency: 8},
			{Kind: PhaseLoad},
			{Kind: PhaseServeUnderLoad, Requests: 300, Concurrency: 8},
		},
	}
	res, err := RunClusterScenario(context.Background(), sc, t.TempDir(), e2eSystem(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Phases[3].ParityChecked {
		t.Fatal("cluster load phase did not assert warm-start parity")
	}
	for _, k := range []int{2, 4} {
		load := res.Phases[k].Load
		if load == nil || load.Requests != 300 || load.Errors != 0 {
			t.Fatalf("cluster serve phase %d: %+v", k, load)
		}
	}
}
