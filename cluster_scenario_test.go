//go:build e2e

package ganc

import (
	"context"
	"testing"
)

// The tier-2 cluster scenario: the kill-one-shard drill at system level,
// driven by the same data-driven runner as the single-node suite but against
// the real sharded assembly — scatter-gather router, per-shard servers,
// write-ahead logs and checkpoints. Run under -race by the CI e2e job:
//
//	go test -race -tags e2e -run TestScenario .
//
// The choreography: train → shard-split save (each shard checkpoints its
// shard-scoped snapshot) → ingest churn through the router (events routed to
// their owning shards; a single-node shadow absorbs exactly the drilled
// shard's slice) → Zipf load with the drilled shard killed mid-load (its
// users' requests fail with the router's typed 503; the phase records
// rather than rejects those errors) → restart the shard from snapshot + WAL
// → a final load phase that must be entirely error-free. The runner asserts
// the recovered shard's owned-user fingerprint is byte-identical to the
// uninterrupted single-node shadow.
func TestScenarioClusterKillShardRecovery(t *testing.T) {
	const drilled = 1
	target := drilled
	sc := Scenario{
		Name:            "cluster-kill-shard",
		Universe:        e2eUniverse(19),
		TopN:            10,
		CheckpointEvery: 0, // WAL-only: the restart must replay the full shard slice
		Seed:            37,
		Phases: []ScenarioPhase{
			{Kind: PhaseTrain},
			{Kind: PhaseSave},
			{Kind: PhaseIngestChurn, Events: 180, EventBatch: 30, Concurrency: 4},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8, KillShardMid: &target, KillDelayMs: 150},
			{Kind: PhaseRestartShard, Shard: drilled},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8},
		},
	}
	res, err := RunClusterScenario(context.Background(), sc, t.TempDir(), e2eSystem(), 3)
	if err != nil {
		t.Fatal(err)
	}

	churn := res.Phases[2]
	if churn.EventsApplied != 180 {
		t.Fatalf("churn applied %d events, want 180", churn.EventsApplied)
	}
	if churn.ReaderRequests == 0 || churn.ReaderErrors != 0 {
		t.Fatalf("churn readers: %d requests, %d errors", churn.ReaderRequests, churn.ReaderErrors)
	}

	midKill := res.Phases[3]
	if midKill.Load == nil || midKill.Load.Requests != 400 {
		t.Fatalf("mid-kill phase recorded %+v", midKill.Load)
	}
	if midKill.Shard != drilled {
		t.Fatalf("mid-kill phase targeted shard %d, want %d", midKill.Shard, drilled)
	}

	restart := res.Phases[4]
	if !restart.ParityChecked {
		t.Fatal("restart-shard did not assert recovery equivalence against the shadow")
	}
	if restart.Replayed == 0 {
		t.Fatal("restart replayed no events: the WAL suffix was empty, so the drill proved nothing")
	}

	// The post-recovery load is the zero-client-visible-errors criterion:
	// the runner fails the scenario on any server-side error, so reaching
	// here means recovery was clean; the explicit checks below document it.
	after := res.Phases[5]
	if after.Load == nil || after.Load.Errors != 0 {
		t.Fatalf("post-recovery load: %+v", after.Load)
	}
	if after.Load.Requests != 400 {
		t.Fatalf("post-recovery load completed %d of 400 requests", after.Load.Requests)
	}
}

// TestScenarioKillPrimaryMidLoad is the replication chaos drill: every shard
// runs with one warm replica, and the drilled shard's primary is killed in
// the middle of a Zipf read load. Three hard promises are asserted:
//
//  1. Zero client-visible errors. With warm replicas and a read-only mix the
//     router's read failover must mask the outage completely — the phase
//     itself fails on any surviving error (see serve-under-load's
//     replicated-kill contract), and the final load phase re-checks after
//     promotion.
//  2. Bounded staleness. The surviving shards' replica lag must drain to the
//     MaxReplicaLagEvents knob (zero here: the load is read-only, so a
//     healthy shipper has nothing left in flight); the rejoined ex-primary
//     must converge to zero lag before its phase passes.
//  3. Recovery equivalence. The promoted ex-replica's owned-user fingerprint
//     must be byte-identical to the uninterrupted single-node shadow — the
//     same parity contract the restart-shard drill enforces, now across an
//     address change and a bumped ring epoch.
func TestScenarioKillPrimaryMidLoad(t *testing.T) {
	const drilled = 1
	target := drilled
	noLag := uint64(0)
	sc := Scenario{
		Name:            "kill-primary-mid-load",
		Universe:        e2eUniverse(29),
		TopN:            10,
		CheckpointEvery: 0, // WAL-only: replicas converge by replication, not snapshots
		Seed:            43,
		Phases: []ScenarioPhase{
			{Kind: PhaseTrain},
			{Kind: PhaseIngestChurn, Events: 180, EventBatch: 30, Concurrency: 4},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8,
				KillShardMid: &target, KillDelayMs: 150, MaxReplicaLagEvents: &noLag},
			{Kind: PhasePromoteReplica, Shard: drilled},
			{Kind: PhaseRejoinReplica, Shard: drilled},
			{Kind: PhaseServeUnderLoad, Requests: 400, Concurrency: 8, MaxReplicaLagEvents: &noLag},
		},
	}
	res, err := RunReplicatedClusterScenario(context.Background(), sc, t.TempDir(), e2eSystem(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}

	churn := res.Phases[1]
	if churn.EventsApplied != 180 {
		t.Fatalf("churn applied %d events, want 180", churn.EventsApplied)
	}

	// The mid-kill load: full request count, zero errors — the kill happened
	// (the runner verifies the kill fired) yet failover hid it.
	midKill := res.Phases[2]
	if midKill.Load == nil || midKill.Load.Requests != 400 {
		t.Fatalf("mid-kill phase recorded %+v", midKill.Load)
	}
	if midKill.Load.Errors != 0 {
		t.Fatalf("mid-kill load leaked %d errors despite replicas", midKill.Load.Errors)
	}
	if midKill.ReplicaLagEvents != 0 {
		t.Fatalf("surviving shards' replica lag %d events, want 0", midKill.ReplicaLagEvents)
	}

	// Promotion: a bumped epoch and the byte-identical owned-user parity
	// check against the uninterrupted shadow.
	promote := res.Phases[3]
	if promote.Epoch < 2 {
		t.Fatalf("promotion left the ring at epoch %d, want a bump past 1", promote.Epoch)
	}
	if !promote.ParityChecked {
		t.Fatal("promote-replica did not assert parity against the shadow")
	}

	// Rejoin: the dead ex-primary replayed its own WAL (the churn slice it
	// committed while it was the primary) and converged to zero lag.
	rejoin := res.Phases[4]
	if rejoin.Replayed == 0 {
		t.Fatal("rejoin replayed no events: the ex-primary's WAL was empty, so the drill proved nothing")
	}
	if rejoin.ReplicaLagEvents != 0 {
		t.Fatalf("rejoined replica stuck %d events behind", rejoin.ReplicaLagEvents)
	}

	// Post-promotion serving: error-free at the new epoch, replicas in sync.
	after := res.Phases[5]
	if after.Load == nil || after.Load.Requests != 400 || after.Load.Errors != 0 {
		t.Fatalf("post-promotion load: %+v", after.Load)
	}
	if after.ReplicaLagEvents != 0 {
		t.Fatalf("post-promotion replica lag %d events, want 0", after.ReplicaLagEvents)
	}
}

// TestScenarioClusterWarmStartParity: the whole-cluster restart. Saving
// checkpoints every shard; Load kills and restores all of them (snapshot +
// WAL replay); the runner asserts the cluster's union fingerprint is
// byte-identical across the restart, then serving resumes error-free.
func TestScenarioClusterWarmStartParity(t *testing.T) {
	sc := Scenario{
		Name:     "cluster-warm-start",
		Universe: e2eUniverse(23),
		TopN:     10,
		Seed:     41,
		Phases: []ScenarioPhase{
			{Kind: PhaseTrain},
			{Kind: PhaseSave},
			{Kind: PhaseServeUnderLoad, Requests: 300, Concurrency: 8},
			{Kind: PhaseLoad},
			{Kind: PhaseServeUnderLoad, Requests: 300, Concurrency: 8},
		},
	}
	res, err := RunClusterScenario(context.Background(), sc, t.TempDir(), e2eSystem(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Phases[3].ParityChecked {
		t.Fatal("cluster load phase did not assert warm-start parity")
	}
	for _, k := range []int{2, 4} {
		load := res.Phases[k].Load
		if load == nil || load.Requests != 300 || load.Errors != 0 {
			t.Fatalf("cluster serve phase %d: %+v", k, load)
		}
	}
}
