package ganc

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"ganc/internal/core"
	"ganc/internal/knn"
	"ganc/internal/mf"
	"ganc/internal/rank"
	"ganc/internal/recommender"
	"ganc/internal/rerank"
)

// The model registry maps stable string names to constructors for base
// (accuracy) models and re-ranking baselines, so CLIs and experiment drivers
// can assemble any base/reranker combination from flags without a hand-rolled
// switch per binary. The built-in names cover every model the paper
// evaluates; RegisterBase and RegisterReranker extend the registry.

// BaseBuilder constructs one named base model.
type BaseBuilder struct {
	// Scorer builds the raw base model (for baseline serving/evaluation).
	Scorer func(train *Dataset, seed int64) (Scorer, error)
	// Accuracy builds the GANC accuracy component. When nil, the component is
	// derived from Scorer via per-user min–max normalization.
	Accuracy func(train *Dataset, topN int, seed int64) (AccuracyRecommender, error)
}

// RerankerBuilder constructs a named re-ranker on top of a base scorer and
// returns it as an Engine.
type RerankerBuilder func(train *Dataset, base Scorer, n int, seed int64) (Engine, error)

var (
	registryMu sync.RWMutex
	baseModels = map[string]BaseBuilder{}
	rerankers  = map[string]RerankerBuilder{}
)

// RegisterBase adds (or replaces) a named base-model builder.
func RegisterBase(name string, b BaseBuilder) error {
	if name == "" || b.Scorer == nil {
		return fmt.Errorf("ganc: base registration requires a name and a Scorer builder")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	baseModels[name] = b
	return nil
}

// RegisterReranker adds (or replaces) a named reranker builder.
func RegisterReranker(name string, b RerankerBuilder) error {
	if name == "" || b == nil {
		return fmt.Errorf("ganc: reranker registration requires a name and a builder")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	rerankers[name] = b
	return nil
}

// BaseNames lists the registered base-model names, sorted.
func BaseNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(baseModels))
	for name := range baseModels {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RerankerNames lists the registered reranker names, sorted.
func RerankerNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(rerankers))
	for name := range rerankers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewBaseScorer trains/builds the named base model on the train set.
func NewBaseScorer(name string, train *Dataset, seed int64) (Scorer, error) {
	registryMu.RLock()
	b, ok := baseModels[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ganc: unknown base model %q (known: %v)", name, BaseNames())
	}
	return b.Scorer(train, seed)
}

// newNormalizedAccuracy is the one place a raw scorer becomes a GANC
// accuracy component without a custom adaptation: per-user min–max
// normalization over the catalog, clamped to [0,1]. Cold assembly, snapshot
// loading and ingestion rebuilds all share it, so the three paths cannot
// diverge from each other (the byte-identical round-trip invariant depends
// on that).
func newNormalizedAccuracy(s Scorer, numItems int) AccuracyRecommender {
	return &core.ScorerAccuracy{Scorer: recommender.NewNormalizedScorer(s, numItems)}
}

// accuracyForScorer adapts an already-trained scorer into a GANC accuracy
// component. A registry base with the same name and a custom Accuracy
// builder (e.g. Pop's indicator adaptation) takes precedence, so
// WithBase(popScorer) and WithBaseNamed("Pop") assemble the same model;
// everything else gets per-user min–max normalization.
func accuracyForScorer(s Scorer, train *Dataset, topN int, seed int64) (AccuracyRecommender, error) {
	registryMu.RLock()
	b, ok := baseModels[s.Name()]
	registryMu.RUnlock()
	if ok && b.Accuracy != nil {
		return b.Accuracy(train, topN, seed)
	}
	return newNormalizedAccuracy(s, train.NumItems()), nil
}

// newAccuracyByName resolves a registry base into a GANC accuracy component,
// also returning the raw base scorer (when one was built) so the pipeline can
// retain it for persistence and ingestion rebuilds. Entries with a custom
// Accuracy builder short-circuit before the Scorer constructor runs — the
// scorer may be expensive to train and the accuracy component replaces it
// entirely (persistence handles the built-in such case, Pop, from the
// accuracy component itself).
func newAccuracyByName(name string, train *Dataset, topN int, seed int64) (AccuracyRecommender, Scorer, error) {
	registryMu.RLock()
	b, ok := baseModels[name]
	registryMu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("ganc: unknown base model %q (known: %v)", name, BaseNames())
	}
	if b.Accuracy != nil {
		arec, err := b.Accuracy(train, topN, seed)
		return arec, nil, err
	}
	s, err := b.Scorer(train, seed)
	if err != nil {
		return nil, nil, err
	}
	return newNormalizedAccuracy(s, train.NumItems()), s, nil
}

// NewReranker assembles the named re-ranker over base and returns its Engine.
// The "GANC" entry assembles a default pipeline (θ^G, Dyn) around the base.
func NewReranker(name string, train *Dataset, base Scorer, n int, seed int64) (Engine, error) {
	registryMu.RLock()
	b, ok := rerankers[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ganc: unknown reranker %q (known: %v)", name, RerankerNames())
	}
	return b(train, base, n, seed)
}

// userReranker is the per-user surface the re-ranking baselines share.
type userReranker interface {
	Name() string
	Recommend(u UserID, exclude map[ItemID]struct{}) TopNSet
}

// rerankerEngine adapts a userReranker (whose list size is fixed by its
// config) to the Engine interface.
type rerankerEngine struct {
	model userReranker
	train *Dataset
	n     int
}

func (e *rerankerEngine) Name() string { return e.model.Name() }
func (e *rerankerEngine) TopN() int    { return e.n }

func (e *rerankerEngine) RecommendUser(ctx context.Context, u UserID, n int) (TopNSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if int(u) < 0 || int(u) >= e.train.NumUsers() {
		return nil, fmt.Errorf("ganc: user %d out of range [0,%d)", u, e.train.NumUsers())
	}
	set := e.model.Recommend(u, e.train.UserItemSet(u))
	if n > 0 && n < len(set) {
		set = set[:n]
	}
	return set, nil
}

func (e *rerankerEngine) RecommendAll(ctx context.Context) (Recommendations, error) {
	recs := make(Recommendations, e.train.NumUsers())
	for u := 0; u < e.train.NumUsers(); u++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		uid := UserID(u)
		recs[uid] = e.model.Recommend(uid, e.train.UserItemSet(uid))
	}
	return recs, nil
}

func init() {
	// Base models (Table II/IV of the paper).
	mustBase := func(name string, b BaseBuilder) {
		if err := RegisterBase(name, b); err != nil {
			panic(err)
		}
	}
	mustBase("Pop", BaseBuilder{
		Scorer: func(train *Dataset, _ int64) (Scorer, error) { return recommender.NewPop(train), nil },
		// The paper's Pop accuracy recommender is the indicator a(i)=1 iff i
		// is in the user's popularity top-N, not a normalized count.
		Accuracy: func(train *Dataset, topN int, _ int64) (AccuracyRecommender, error) {
			return core.NewPopAccuracy(train, topN), nil
		},
	})
	mustBase("Rand", BaseBuilder{
		Scorer: func(train *Dataset, seed int64) (Scorer, error) {
			return recommender.NewRand(train.NumItems(), seed), nil
		},
	})
	mustBase("ItemAvg", BaseBuilder{
		Scorer: func(train *Dataset, _ int64) (Scorer, error) { return recommender.NewItemAvg(train, 5), nil },
	})
	mustBase("RSVD", BaseBuilder{
		Scorer: func(train *Dataset, seed int64) (Scorer, error) {
			cfg := mf.DefaultRSVDConfig()
			cfg.Factors = 40
			cfg.Epochs = 15
			cfg.Seed = seed
			return mf.TrainRSVD(train, cfg)
		},
	})
	for _, factors := range []int{10, 100} {
		factors := factors
		mustBase(fmt.Sprintf("PSVD%d", factors), BaseBuilder{
			Scorer: func(train *Dataset, seed int64) (Scorer, error) {
				return mf.TrainPSVD(train, mf.PSVDConfig{Factors: factors, PowerIterations: 2, Seed: seed})
			},
		})
	}
	mustBase("ItemKNN", BaseBuilder{
		Scorer: func(train *Dataset, _ int64) (Scorer, error) {
			return knn.Train(train, knn.DefaultConfig())
		},
	})
	mustBase("CofiRank", BaseBuilder{
		Scorer: func(train *Dataset, seed int64) (Scorer, error) {
			return rank.Train(train, rank.Config{
				Factors: 16, Regularization: 0.05, LearningRate: 0.02,
				Epochs: 5, InitStd: 0.1, Seed: seed, PairsPerUser: 10,
			})
		},
	})

	// Re-ranking baselines (Section V of the paper) plus GANC itself, so one
	// flag value selects the full framework.
	mustRerank := func(name string, b RerankerBuilder) {
		if err := RegisterReranker(name, b); err != nil {
			panic(err)
		}
	}
	mustRerank("RBT-Pop", func(train *Dataset, base Scorer, n int, _ int64) (Engine, error) {
		r, err := rerank.NewRBT(train, base, rerank.DefaultRBTConfig(n, rerank.RBTPop))
		if err != nil {
			return nil, err
		}
		return &rerankerEngine{model: r, train: train, n: n}, nil
	})
	mustRerank("RBT-Avg", func(train *Dataset, base Scorer, n int, _ int64) (Engine, error) {
		r, err := rerank.NewRBT(train, base, rerank.DefaultRBTConfig(n, rerank.RBTAvg))
		if err != nil {
			return nil, err
		}
		return &rerankerEngine{model: r, train: train, n: n}, nil
	})
	mustRerank("5D", func(train *Dataset, base Scorer, n int, _ int64) (Engine, error) {
		f, err := rerank.NewFiveD(train, base, rerank.DefaultFiveDConfig(n))
		if err != nil {
			return nil, err
		}
		return &rerankerEngine{model: f, train: train, n: n}, nil
	})
	mustRerank("5D-AF", func(train *Dataset, base Scorer, n int, _ int64) (Engine, error) {
		f, err := rerank.NewFiveD(train, base, rerank.FiveDConfig{N: n, Q: 1, AccuracyFilter: true, RankByRankings: true})
		if err != nil {
			return nil, err
		}
		return &rerankerEngine{model: f, train: train, n: n}, nil
	})
	for _, x := range []int{10, 20} {
		x := x
		mustRerank(fmt.Sprintf("PRA-%d", x), func(train *Dataset, base Scorer, n int, _ int64) (Engine, error) {
			p, err := rerank.NewPRA(train, base, rerank.DefaultPRAConfig(n, x))
			if err != nil {
				return nil, err
			}
			return &rerankerEngine{model: p, train: train, n: n}, nil
		})
	}
	// GANC with the paper defaults (θ^G, Dyn, fully sequential OSLG); callers
	// needing sampling or other knobs assemble NewPipeline directly.
	mustRerank("GANC", func(train *Dataset, base Scorer, n int, seed int64) (Engine, error) {
		return NewPipeline(train, WithBase(base), WithTopN(n), WithSeed(seed))
	})
}
