// Package ganc is the public facade of the GANC library — a reproduction of
// "A Generic Top-N Recommendation Framework For Trading-off Accuracy,
// Novelty, and Coverage" (Zolaktaf, Babanezhad, Pottinger; ICDE 2018).
//
// The implementation lives in the internal/ packages; this package re-exports
// the types and constructors a downstream application needs for the common
// workflow:
//
//  1. load or generate rating data           (LoadRatings, GenerateML1M, ...)
//  2. split it per user                       (Dataset.SplitByUser)
//  3. train a base accuracy recommender       (TrainRSVD, TrainPSVD, NewPop)
//  4. learn long-tail novelty preferences     (EstimatePreferences)
//  5. assemble and run GANC                   (NewGANC → Recommend)
//  6. evaluate accuracy/novelty/coverage      (NewEvaluator → Evaluate)
//
// See examples/quickstart for a complete end-to-end program and DESIGN.md for
// the experiment-by-experiment map of the paper reproduction.
package ganc

import (
	"io"
	"math/rand"

	"ganc/internal/core"
	"ganc/internal/dataset"
	"ganc/internal/eval"
	"ganc/internal/knn"
	"ganc/internal/longtail"
	"ganc/internal/mf"
	"ganc/internal/rank"
	"ganc/internal/recommender"
	"ganc/internal/synth"
	"ganc/internal/types"
)

// Re-exported identifier and data types.
type (
	// UserID is a dense user index within a Dataset.
	UserID = types.UserID
	// ItemID is a dense item index within a Dataset.
	ItemID = types.ItemID
	// Rating is one observed user–item interaction.
	Rating = types.Rating
	// TopNSet is a ranked recommendation list for one user.
	TopNSet = types.TopNSet
	// Recommendations maps users to their top-N sets.
	Recommendations = types.Recommendations

	// Dataset is an immutable rating collection with per-user/item indexes.
	Dataset = dataset.Dataset
	// Split is a per-user train/test partition of a Dataset.
	Split = dataset.Split
	// LoadOptions configures rating-file parsing.
	LoadOptions = dataset.LoadOptions

	// SynthConfig describes a synthetic calibrated dataset.
	SynthConfig = synth.Config

	// Preferences holds per-user long-tail novelty preferences θ_u.
	Preferences = longtail.Preferences
	// PreferenceModel selects a θ estimator (Activity, TFIDF, Generalized...).
	PreferenceModel = longtail.Model

	// RSVD is the SGD-trained regularized matrix factorization model.
	RSVD = mf.RSVD
	// RSVDConfig holds its hyper-parameters.
	RSVDConfig = mf.RSVDConfig
	// PSVD is the PureSVD ranking model.
	PSVD = mf.PSVD
	// PSVDConfig holds its hyper-parameters.
	PSVDConfig = mf.PSVDConfig
	// CofiModel is the collaborative-ranking (CoFiRank-style) baseline.
	CofiModel = rank.Model
	// CofiConfig holds its hyper-parameters.
	CofiConfig = rank.Config
	// ItemKNN is the item-based nearest-neighbour recommender.
	ItemKNN = knn.ItemKNN
	// ItemKNNConfig holds its hyper-parameters.
	ItemKNNConfig = knn.Config

	// Scorer scores (user, item) pairs; all base models implement it.
	Scorer = recommender.Scorer

	// GANC is a configured instance of the re-ranking framework.
	GANC = core.GANC
	// GANCConfig holds N, the OSLG sample size and the random seed.
	GANCConfig = core.Config
	// AccuracyRecommender supplies a(i) ∈ [0,1] to the value function.
	AccuracyRecommender = core.AccuracyRecommender
	// CoverageRecommender supplies c(i) ∈ [0,1] to the value function.
	CoverageRecommender = core.CoverageRecommender

	// Evaluator computes the paper's Table III metrics against a split.
	Evaluator = eval.Evaluator
	// Report holds one algorithm's metrics at one N.
	Report = eval.Report
)

// Preference model identifiers (the paper's θ^A, θ^N, θ^T, θ^G, θ^R, θ^C).
const (
	PreferenceActivity           = longtail.ModelActivity
	PreferenceNormalizedLongTail = longtail.ModelNormalizedLongTail
	PreferenceTFIDF              = longtail.ModelTFIDF
	PreferenceGeneralized        = longtail.ModelGeneralized
	PreferenceRandom             = longtail.ModelRandom
	PreferenceConstant           = longtail.ModelConstant
)

// LoadRatings reads a ratings file (CSV, MovieLens "::", or tab separated).
func LoadRatings(path string, opts LoadOptions) (*Dataset, error) {
	return dataset.LoadRatings(path, opts)
}

// ReadRatings parses ratings from any reader.
func ReadRatings(r io.Reader, opts LoadOptions) (*Dataset, error) {
	return dataset.ReadRatings(r, opts)
}

// GenerateDataset builds a synthetic dataset from an explicit configuration.
func GenerateDataset(cfg SynthConfig) (*Dataset, error) { return synth.Generate(cfg) }

// Calibrated synthetic stand-ins for the paper's evaluation datasets
// (see DESIGN.md §4 for the substitution rationale). scale 1.0 reproduces the
// calibrated defaults; smaller values shrink everything proportionally.
func GenerateML100K(scale float64) (*Dataset, error) {
	return synth.Generate(synth.ML100K(synth.Scale(scale)))
}
func GenerateML1M(scale float64) (*Dataset, error) {
	return synth.Generate(synth.ML1M(synth.Scale(scale)))
}
func GenerateML10M(scale float64) (*Dataset, error) {
	return synth.Generate(synth.ML10M(synth.Scale(scale)))
}
func GenerateMT200K(scale float64) (*Dataset, error) {
	return synth.Generate(synth.MT200K(synth.Scale(scale)))
}
func GenerateNetflixSample(scale float64) (*Dataset, error) {
	return synth.Generate(synth.NetflixSample(synth.Scale(scale)))
}

// SplitByUser partitions d per user, keeping the fraction kappa of each
// user's ratings in train. A nil rng gives a fixed default seed.
func SplitByUser(d *Dataset, kappa float64, rng *rand.Rand) *Split {
	return d.SplitByUser(kappa, rng)
}

// TrainRSVD fits the regularized-SVD rating predictor.
func TrainRSVD(train *Dataset, cfg RSVDConfig) (*RSVD, error) { return mf.TrainRSVD(train, cfg) }

// DefaultRSVDConfig mirrors the paper's dense-dataset configuration.
func DefaultRSVDConfig() RSVDConfig { return mf.DefaultRSVDConfig() }

// TrainPSVD fits the PureSVD ranking model.
func TrainPSVD(train *Dataset, cfg PSVDConfig) (*PSVD, error) { return mf.TrainPSVD(train, cfg) }

// TrainCofi fits the collaborative-ranking baseline.
func TrainCofi(train *Dataset, cfg CofiConfig) (*CofiModel, error) { return rank.Train(train, cfg) }

// TrainItemKNN fits the item-based nearest-neighbour recommender.
func TrainItemKNN(train *Dataset, cfg ItemKNNConfig) (*ItemKNN, error) { return knn.Train(train, cfg) }

// DefaultItemKNNConfig returns a standard item-KNN configuration.
func DefaultItemKNNConfig() ItemKNNConfig { return knn.DefaultConfig() }

// NewPop builds the most-popular recommender from the train set.
func NewPop(train *Dataset) Scorer { return recommender.NewPop(train) }

// LoadRSVD and LoadPSVD reload models previously written with their Save
// methods, so applications can train offline and serve from snapshots.
func LoadRSVD(r io.Reader) (*RSVD, error) { return mf.LoadRSVD(r) }
func LoadPSVD(r io.Reader) (*PSVD, error) { return mf.LoadPSVD(r) }

// RSVDGrid and RSVDGridResult re-export the cross-validation grid search used
// to select the Table V hyper-parameters.
type (
	RSVDGrid       = mf.Grid
	RSVDGridResult = mf.GridResult
)

// CrossValidateRSVD evaluates an RSVD hyper-parameter grid by k-fold
// cross-validation; BestRSVDConfig selects the winner.
func CrossValidateRSVD(train *Dataset, base RSVDConfig, grid RSVDGrid, folds int, seed int64) ([]RSVDGridResult, error) {
	return mf.CrossValidateRSVD(train, base, grid, folds, seed)
}

// BestRSVDConfig returns the grid-search result with the lowest validation RMSE.
func BestRSVDConfig(results []RSVDGridResult) (RSVDGridResult, error) { return mf.Best(results) }

// EstimatePreferences computes θ_u for every user with the chosen model. The
// constant argument is only used by PreferenceConstant, seed only by
// PreferenceRandom.
func EstimatePreferences(model PreferenceModel, train *Dataset, constant float64, seed int64) (*Preferences, error) {
	return longtail.Estimate(model, train, nil, constant, seed)
}

// Accuracy-recommender adapters for assembling GANC.

// AccuracyFromScorer wraps any Scorer whose scores are normalized per user to
// [0,1] before use, as the paper does with RSVD and PSVD predictions.
func AccuracyFromScorer(s Scorer, numItems int) AccuracyRecommender {
	return &core.ScorerAccuracy{Scorer: recommender.NewNormalizedScorer(s, numItems)}
}

// AccuracyFromPop builds the indicator-style Pop accuracy recommender
// (a(i)=1 iff i is in the user's popularity top-N).
func AccuracyFromPop(train *Dataset, n int) AccuracyRecommender {
	return core.NewPopAccuracy(train, n)
}

// Coverage recommenders (the paper's Rand, Stat and Dyn).
func CoverageRand(seed int64) CoverageRecommender     { return core.NewRandCoverage(seed) }
func CoverageStat(train *Dataset) CoverageRecommender { return core.NewStatCoverage(train) }
func CoverageDyn(numItems int) CoverageRecommender    { return core.NewDynCoverage(numItems) }

// NewGANC assembles a GANC(ARec, θ, CRec) instance.
func NewGANC(train *Dataset, arec AccuracyRecommender, prefs *Preferences, crec CoverageRecommender, cfg GANCConfig) (*GANC, error) {
	return core.New(train, arec, prefs, crec, cfg)
}

// RecommendAll ranks the full catalog for every user with any Scorer under
// the all-unrated-items protocol (the baseline path that does not involve
// GANC).
func RecommendAll(s Scorer, train *Dataset, n int) Recommendations {
	return recommender.RecommendAll(&recommender.ScorerTopN{Scorer: s, NumItems: train.NumItems()}, train, n)
}

// NewEvaluator builds a Table III metrics evaluator for a split. beta ≤ 0
// selects the paper's stratified-recall exponent of 0.5.
func NewEvaluator(split *Split, beta float64) *Evaluator { return eval.NewEvaluator(split, beta) }

// RankReports computes the Table IV "Score" column: each algorithm's average
// rank across F-measure, stratified recall, LTAccuracy, coverage and Gini.
func RankReports(reports []Report) map[string]float64 { return eval.RankReports(reports) }
