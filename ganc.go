// Package ganc is the public facade of the GANC library — a reproduction of
// "A Generic Top-N Recommendation Framework For Trading-off Accuracy,
// Novelty, and Coverage" (Zolaktaf, Babanezhad, Pottinger; ICDE 2018).
//
// The implementation lives in the internal/ packages; this package re-exports
// the types and constructors a downstream application needs for the common
// workflow:
//
//  1. load or generate rating data           (LoadRatings, GenerateML1M, ...)
//  2. split it per user                       (Dataset.SplitByUser)
//  3. assemble the pipeline in one call      (NewPipeline + With... options)
//  4. serve or batch-generate through Engine (RecommendUser / RecommendAll)
//  5. evaluate accuracy/novelty/coverage     (NewEvaluator → Evaluate)
//  6. persist and warm-start                 (Pipeline.Save → LoadEngine)
//  7. ingest interaction streams             (NewIngestor → POST /ingest)
//
// Base models can be trained explicitly (TrainRSVD, TrainPSVD, ...) and
// passed to WithBase, or constructed by name from the model registry
// (WithBaseNamed, NewBaseScorer, NewReranker). Assembled pipelines, base
// models and re-ranking baselines all satisfy the Engine interface, whose
// online RecommendUser path is what NewServer builds on. A trained pipeline
// snapshots to a versioned binary file and reloads byte-identically, and the
// serving layer absorbs new interactions incrementally with write-ahead
// logging and periodic checkpoints (DESIGN.md §8).
//
// See examples/quickstart for a complete end-to-end program (each examples/
// directory has a README), and DESIGN.md for the architecture and the
// experiment-by-experiment map of the paper reproduction.
package ganc

import (
	"fmt"
	"io"
	"math/rand"

	"ganc/internal/core"
	"ganc/internal/dataset"
	"ganc/internal/eval"
	"ganc/internal/knn"
	"ganc/internal/longtail"
	"ganc/internal/mf"
	"ganc/internal/rank"
	"ganc/internal/recommender"
	"ganc/internal/synth"
	"ganc/internal/types"
)

// Re-exported identifier and data types.
type (
	// UserID is a dense user index within a Dataset.
	UserID = types.UserID
	// ItemID is a dense item index within a Dataset.
	ItemID = types.ItemID
	// Rating is one observed user–item interaction.
	Rating = types.Rating
	// TopNSet is a ranked recommendation list for one user.
	TopNSet = types.TopNSet
	// Recommendations maps users to their top-N sets.
	Recommendations = types.Recommendations

	// Dataset is an immutable rating collection with per-user/item indexes.
	Dataset = dataset.Dataset
	// Split is a per-user train/test partition of a Dataset.
	Split = dataset.Split
	// LoadOptions configures rating-file parsing.
	LoadOptions = dataset.LoadOptions

	// SynthConfig describes a synthetic calibrated dataset.
	SynthConfig = synth.Config

	// Preferences holds per-user long-tail novelty preferences θ_u.
	Preferences = longtail.Preferences
	// PreferenceModel selects a θ estimator (Activity, TFIDF, Generalized...).
	PreferenceModel = longtail.Model

	// RSVD is the SGD-trained regularized matrix factorization model.
	RSVD = mf.RSVD
	// RSVDConfig holds its hyper-parameters.
	RSVDConfig = mf.RSVDConfig
	// PSVD is the PureSVD ranking model.
	PSVD = mf.PSVD
	// PSVDConfig holds its hyper-parameters.
	PSVDConfig = mf.PSVDConfig
	// CofiModel is the collaborative-ranking (CoFiRank-style) baseline.
	CofiModel = rank.Model
	// CofiConfig holds its hyper-parameters.
	CofiConfig = rank.Config
	// ItemKNN is the item-based nearest-neighbour recommender.
	ItemKNN = knn.ItemKNN
	// ItemKNNConfig holds its hyper-parameters.
	ItemKNNConfig = knn.Config

	// Scorer scores (user, item) pairs; all base models implement it.
	Scorer = recommender.Scorer

	// GANC is a configured instance of the re-ranking framework.
	GANC = core.GANC
	// GANCConfig holds N, the OSLG sample size and the random seed.
	GANCConfig = core.Config
	// AccuracyRecommender supplies a(i) ∈ [0,1] to the value function.
	AccuracyRecommender = core.AccuracyRecommender
	// CoverageRecommender supplies c(i) ∈ [0,1] to the value function.
	CoverageRecommender = core.CoverageRecommender

	// Evaluator computes the paper's Table III metrics against a split.
	Evaluator = eval.Evaluator
	// Report holds one algorithm's metrics at one N.
	Report = eval.Report
	// Protocol selects which items are ranked at evaluation time (Appendix C).
	Protocol = eval.Protocol
)

// Evaluation protocols (the paper reports all main results under
// ProtocolAllUnrated; ProtocolRatedTestItems exists to reproduce the
// Appendix C bias study).
const (
	ProtocolAllUnrated     = eval.ProtocolAllUnrated
	ProtocolRatedTestItems = eval.ProtocolRatedTestItems
)

// Preference model identifiers (the paper's θ^A, θ^N, θ^T, θ^G, θ^R, θ^C).
const (
	PreferenceActivity           = longtail.ModelActivity
	PreferenceNormalizedLongTail = longtail.ModelNormalizedLongTail
	PreferenceTFIDF              = longtail.ModelTFIDF
	PreferenceGeneralized        = longtail.ModelGeneralized
	PreferenceRandom             = longtail.ModelRandom
	PreferenceConstant           = longtail.ModelConstant
)

// ParsePreferenceModel resolves the paper's one-letter θ names (A, N, T, G,
// R, C) — the form the CLIs accept — to their PreferenceModel identifiers.
// Unknown strings pass through unchanged, so full model names keep working.
func ParsePreferenceModel(short string) PreferenceModel {
	switch short {
	case "A":
		return PreferenceActivity
	case "N":
		return PreferenceNormalizedLongTail
	case "T":
		return PreferenceTFIDF
	case "G":
		return PreferenceGeneralized
	case "R":
		return PreferenceRandom
	case "C":
		return PreferenceConstant
	default:
		return PreferenceModel(short)
	}
}

// LoadRatings reads a ratings file (CSV, MovieLens "::", or tab separated).
func LoadRatings(path string, opts LoadOptions) (*Dataset, error) {
	return dataset.LoadRatings(path, opts)
}

// ReadRatings parses ratings from any reader.
func ReadRatings(r io.Reader, opts LoadOptions) (*Dataset, error) {
	return dataset.ReadRatings(r, opts)
}

// GenerateDataset builds a synthetic dataset from an explicit configuration.
func GenerateDataset(cfg SynthConfig) (*Dataset, error) { return synth.Generate(cfg) }

// GenerateML100K builds the calibrated synthetic ML-100K stand-in (see
// DESIGN.md §4 for the substitution rationale). scale 1.0 reproduces the
// calibrated defaults; smaller values shrink everything proportionally.
func GenerateML100K(scale float64) (*Dataset, error) {
	return synth.Generate(synth.ML100K(synth.Scale(scale)))
}

// GenerateML1M builds the calibrated synthetic ML-1M stand-in.
func GenerateML1M(scale float64) (*Dataset, error) {
	return synth.Generate(synth.ML1M(synth.Scale(scale)))
}

// GenerateML10M builds the calibrated synthetic ML-10M stand-in.
func GenerateML10M(scale float64) (*Dataset, error) {
	return synth.Generate(synth.ML10M(synth.Scale(scale)))
}

// GenerateMT200K builds the calibrated synthetic MovieTweetings-200K
// stand-in.
func GenerateMT200K(scale float64) (*Dataset, error) {
	return synth.Generate(synth.MT200K(synth.Scale(scale)))
}

// GenerateNetflixSample builds the calibrated synthetic Netflix-sample
// stand-in.
func GenerateNetflixSample(scale float64) (*Dataset, error) {
	return synth.Generate(synth.NetflixSample(synth.Scale(scale)))
}

// GeneratePreset generates the named synthetic preset ("ML-100K", "ML-1M",
// "ML-10M", "MT-200K", "Netflix") at the given scale — the shared lookup the
// CLIs use for their -preset flags.
func GeneratePreset(name string, scale float64) (*Dataset, error) {
	switch name {
	case "ML-100K":
		return GenerateML100K(scale)
	case "ML-1M":
		return GenerateML1M(scale)
	case "ML-10M":
		return GenerateML10M(scale)
	case "MT-200K":
		return GenerateMT200K(scale)
	case "Netflix":
		return GenerateNetflixSample(scale)
	default:
		return nil, fmt.Errorf("ganc: unknown preset %q (known: ML-100K, ML-1M, ML-10M, MT-200K, Netflix)", name)
	}
}

// SplitByUser partitions d per user, keeping the fraction kappa of each
// user's ratings in train. A nil rng gives a fixed default seed.
func SplitByUser(d *Dataset, kappa float64, rng *rand.Rand) *Split {
	return d.SplitByUser(kappa, rng)
}

// TrainRSVD fits the regularized-SVD rating predictor.
func TrainRSVD(train *Dataset, cfg RSVDConfig) (*RSVD, error) { return mf.TrainRSVD(train, cfg) }

// DefaultRSVDConfig mirrors the paper's dense-dataset configuration.
func DefaultRSVDConfig() RSVDConfig { return mf.DefaultRSVDConfig() }

// TrainPSVD fits the PureSVD ranking model.
func TrainPSVD(train *Dataset, cfg PSVDConfig) (*PSVD, error) { return mf.TrainPSVD(train, cfg) }

// TrainCofi fits the collaborative-ranking baseline.
func TrainCofi(train *Dataset, cfg CofiConfig) (*CofiModel, error) { return rank.Train(train, cfg) }

// TrainItemKNN fits the item-based nearest-neighbour recommender.
func TrainItemKNN(train *Dataset, cfg ItemKNNConfig) (*ItemKNN, error) { return knn.Train(train, cfg) }

// DefaultItemKNNConfig returns a standard item-KNN configuration.
func DefaultItemKNNConfig() ItemKNNConfig { return knn.DefaultConfig() }

// NewPop builds the most-popular recommender from the train set.
func NewPop(train *Dataset) Scorer { return recommender.NewPop(train) }

// LoadRSVD reloads a model previously written with (*RSVD).Save, so
// applications can train offline and serve from snapshots. (Full-pipeline
// snapshots use Pipeline.Save / LoadEngine instead.)
func LoadRSVD(r io.Reader) (*RSVD, error) { return mf.LoadRSVD(r) }

// LoadPSVD reloads a model previously written with (*PSVD).Save.
func LoadPSVD(r io.Reader) (*PSVD, error) { return mf.LoadPSVD(r) }

// RSVDGrid and RSVDGridResult re-export the cross-validation grid search used
// to select the Table V hyper-parameters.
type (
	RSVDGrid       = mf.Grid
	RSVDGridResult = mf.GridResult
)

// CrossValidateRSVD evaluates an RSVD hyper-parameter grid by k-fold
// cross-validation; BestRSVDConfig selects the winner.
func CrossValidateRSVD(train *Dataset, base RSVDConfig, grid RSVDGrid, folds int, seed int64) ([]RSVDGridResult, error) {
	return mf.CrossValidateRSVD(train, base, grid, folds, seed)
}

// BestRSVDConfig returns the grid-search result with the lowest validation RMSE.
func BestRSVDConfig(results []RSVDGridResult) (RSVDGridResult, error) { return mf.Best(results) }

// NewEvaluator builds a Table III metrics evaluator for a split. beta ≤ 0
// selects the paper's stratified-recall exponent of 0.5.
func NewEvaluator(split *Split, beta float64) *Evaluator { return eval.NewEvaluator(split, beta) }

// RankReports computes the Table IV "Score" column: each algorithm's average
// rank across F-measure, stratified recall, LTAccuracy, coverage and Gini.
func RankReports(reports []Report) map[string]float64 { return eval.RankReports(reports) }

// RecommendWithProtocol ranks for every user under the chosen evaluation
// protocol (Appendix C): all unrated items, or only the user's rated test
// items.
func RecommendWithProtocol(s Scorer, split *Split, n int, protocol Protocol) Recommendations {
	return eval.RecommendWithProtocol(s, split, n, protocol)
}
