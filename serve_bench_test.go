package ganc

// Online-serving benchmarks: per-user latency of the lazy Engine path through
// the HTTP server, cold (engine compute) vs warm (LRU cache hit). The
// TestServeOnline_CacheHitSpeedup assertion is the acceptance gate for the
// online serving design: cache hits must remain a multiple faster than cold
// computes. The original gate was 10×; the index-contiguous candidate
// pipeline cut cold-compute latency by roughly an order of magnitude and
// moved the gate to 3×, and the sparse Pop+Dyn sweep fast path (see
// DESIGN.md §12) cut the cold sweep again, so the enforced ratio is now 2× —
// the cache must still clearly win, but nearly all of the old gap was closed
// by making the underlying sweep cheap rather than by caching it.

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// serveFixture assembles a GANC(Pop, θ^G, Dyn) pipeline over a mid-sized
// synthetic dataset and mounts it behind the HTTP server.
func serveFixture(tb testing.TB, opts ...ServerOption) (*Server, *Dataset) {
	tb.Helper()
	data, err := GenerateML100K(0.35)
	if err != nil {
		tb.Fatal(err)
	}
	split := SplitByUser(data, 0.8, rand.New(rand.NewSource(41)))
	p, err := NewPipeline(split.Train,
		WithBaseNamed("Pop"),
		WithCoverage(CoverageDyn()),
		WithTopN(10),
		WithSeed(41))
	if err != nil {
		tb.Fatal(err)
	}
	srv, err := NewServer(split.Train, p, 10, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	return srv, split.Train
}

// serveOnce drives one GET /recommend through the handler in process.
func serveOnce(tb testing.TB, handler http.Handler, userKey string) {
	tb.Helper()
	req := httptest.NewRequest(http.MethodGet, "/recommend?user="+userKey, nil)
	w := httptest.NewRecorder()
	handler.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		tb.Fatalf("recommend %s → %d: %s", userKey, w.Code, w.Body.String())
	}
}

// BenchmarkServeOnline_ColdPerUser reports the per-user online latency when
// every request is a cold compute (cache disabled, distinct users).
func BenchmarkServeOnline_ColdPerUser(b *testing.B) {
	srv, train := serveFixture(b, WithServerCacheCapacity(0))
	handler := srv.Handler()
	keys := userKeys(train)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveOnce(b, handler, keys[i%len(keys)])
	}
}

// BenchmarkServeOnline_CacheHit reports the per-user latency once the user's
// list is resident in the LRU cache.
func BenchmarkServeOnline_CacheHit(b *testing.B) {
	srv, train := serveFixture(b)
	handler := srv.Handler()
	key := userKeys(train)[0]
	serveOnce(b, handler, key) // populate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveOnce(b, handler, key)
	}
}

func userKeys(train *Dataset) []string {
	keys := make([]string, train.NumUsers())
	for u := 0; u < train.NumUsers(); u++ {
		keys[u] = train.UserInterner().Key(int32(u))
	}
	return keys
}

// TestServeOnline_CacheHitSpeedup asserts the acceptance criterion: serving a
// cached user is ≥2× faster than a cold online compute (see the file comment
// for why the bar moved from 10× as the cold path got fast). Medians over
// several probes keep the comparison robust to scheduler noise.
func TestServeOnline_CacheHitSpeedup(t *testing.T) {
	srv, train := serveFixture(t)
	handler := srv.Handler()
	keys := userKeys(train)

	const coldProbes = 9
	if len(keys) < coldProbes+1 {
		t.Fatalf("fixture too small: %d users", len(keys))
	}
	coldTimes := make([]time.Duration, 0, coldProbes)
	for k := 0; k < coldProbes; k++ {
		start := time.Now()
		serveOnce(t, handler, keys[k])
		coldTimes = append(coldTimes, time.Since(start))
	}

	// The same users again: every request is now a cache hit. Time batches of
	// hits so each sample is well above timer granularity.
	const hitsPerProbe = 50
	hitTimes := make([]time.Duration, 0, coldProbes)
	for k := 0; k < coldProbes; k++ {
		start := time.Now()
		for j := 0; j < hitsPerProbe; j++ {
			serveOnce(t, handler, keys[k])
		}
		hitTimes = append(hitTimes, time.Since(start)/hitsPerProbe)
	}

	cold, hit := median(coldTimes), median(hitTimes)
	stats := srv.Stats()
	if stats.Hits < coldProbes*hitsPerProbe {
		t.Fatalf("expected ≥%d cache hits, stats: %+v", coldProbes*hitsPerProbe, stats)
	}
	t.Logf("online per-user latency: cold=%v cached=%v speedup=%.1fx (cache stats %+v)",
		cold, hit, float64(cold)/float64(hit), stats)
	if hit*2 > cold {
		t.Fatalf("cache hit (%v) is not ≥2× faster than cold compute (%v)", hit, cold)
	}
}

// BenchmarkServeOnline_InstrumentedCacheHit reports the cache-hit latency
// with the full observability stack enabled — metrics registry, request
// instrumentation and admission middleware — so the delta against
// BenchmarkServeOnline_CacheHit is the whole per-request instrumentation
// cost (two atomic counter bumps, one histogram observe, one token-bucket
// check). BENCH_serve.json records the same comparison at the full
// operating point.
func BenchmarkServeOnline_InstrumentedCacheHit(b *testing.B) {
	srv, train := serveFixture(b,
		WithMetrics(NewMetricsRegistry()),
		WithRateLimit(1e9, 1e9))
	handler := srv.Handler()
	key := userKeys(train)[0]
	serveOnce(b, handler, key) // populate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveOnce(b, handler, key)
	}
}

// TestServeOnline_InstrumentationOverhead is the tier-1 smoke for the
// instrumentation budget: the fully instrumented recommend path (metrics +
// admission) must stay within 1.5× of the bare path on the cache-hit
// latency. The design budget is <5% (documented in BENCH_serve.json at the
// operating point, where request cost dominates); the in-test gate is
// deliberately loose so scheduler noise on shared CI runners cannot flake
// it, while still catching an accidental lock or allocation on the hot
// path, which costs far more than 1.5×.
func TestServeOnline_InstrumentationOverhead(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("latency-ratio gate is meaningless under the race detector (it multiplies atomic/lock costs); CI runs this test without -race")
	}
	bare, bareTrain := serveFixture(t)
	inst, instTrain := serveFixture(t,
		WithMetrics(NewMetricsRegistry()),
		WithRateLimit(1e9, 1e9))
	bareKey := userKeys(bareTrain)[0]
	instKey := userKeys(instTrain)[0]
	bareHandler, instHandler := bare.Handler(), inst.Handler()
	serveOnce(t, bareHandler, bareKey) // populate caches
	serveOnce(t, instHandler, instKey)

	const probes, hitsPerProbe = 9, 200
	timeHits := func(h http.Handler, key string) []time.Duration {
		out := make([]time.Duration, 0, probes)
		for k := 0; k < probes; k++ {
			start := time.Now()
			for j := 0; j < hitsPerProbe; j++ {
				serveOnce(t, h, key)
			}
			out = append(out, time.Since(start)/hitsPerProbe)
		}
		return out
	}
	// Interleave a warmup pass of each before measuring so neither side pays
	// first-touch costs inside its timed window.
	timeHits(bareHandler, bareKey)
	timeHits(instHandler, instKey)
	bareHit := median(timeHits(bareHandler, bareKey))
	instHit := median(timeHits(instHandler, instKey))

	ratio := float64(instHit) / float64(bareHit)
	t.Logf("cache-hit per-request latency: bare=%v instrumented=%v ratio=%.3f", bareHit, instHit, ratio)
	if ratio > 1.5 {
		t.Fatalf("instrumented recommend path is %.2f× the bare path (%v vs %v); budget is <5%% at the operating point, gate is 1.5×",
			ratio, instHit, bareHit)
	}
}

func median(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
