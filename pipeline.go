package ganc

import (
	"context"
	"fmt"

	"ganc/internal/core"
	"ganc/internal/longtail"
)

// Pipeline is the one-call assembly surface of the library. It validates and
// wires the train set, an accuracy recommender, a θ estimator, a coverage
// recommender and the GANC configuration together, replacing the old
// AccuracyFrom*/EstimatePreferences/NewGANC multi-step dance:
//
//	p, err := ganc.NewPipeline(train,
//	        ganc.WithBase(rsvd),
//	        ganc.WithPreferences(ganc.PreferenceGeneralized),
//	        ganc.WithCoverage(ganc.CoverageDyn()),
//	        ganc.WithTopN(20))
//
// A Pipeline is itself an Engine: it answers single-user requests online
// (RecommendUser) and batch sweeps (RecommendAll) through the assembled GANC
// instance.
type Pipeline struct {
	train *Dataset
	ganc  *GANC
	prefs *Preferences
	cfg   pipelineConfig

	// Handles to the assembled components, retained so the persistence layer
	// (Pipeline.Save) and the streaming-ingestion rebuild path can reach them
	// without reaching into the core instance: the accuracy component, the
	// raw base scorer behind it (nil for fully custom accuracy recommenders)
	// and the coverage recommender.
	arec       AccuracyRecommender
	baseScorer Scorer
	crec       CoverageRecommender

	// ingestSeq is the applied-event cursor carried by a loaded checkpoint
	// snapshot (zero for cold-built pipelines); NewIngestor seeds its state
	// with it so write-ahead-log recovery replays only the un-checkpointed
	// suffix. ingestPrefFill and ingestAvgLambda carry the matching
	// ingestion parameters so a restored stream treats new users and item
	// averages exactly as the uninterrupted one would have.
	ingestSeq       uint64
	ingestPrefFill  float64
	ingestAvgLambda float64

	// shard is the cluster identity of a shard-scoped pipeline (nil for
	// single-node pipelines). It is written by SaveShard, restored by
	// LoadShardEngine, and carried through ingestion rebuilds so shard
	// checkpoints keep their identity.
	shard *ShardIdentity
}

type pipelineConfig struct {
	baseName     string
	scorer       Scorer
	accuracy     AccuracyRecommender
	prefModel    PreferenceModel
	prefConstant float64
	prefVector   *Preferences
	coverage     CoverageSpec
	topN         int
	sampleSize   int
	workers      int
	seed         int64
	precision    ScoringPrecision
}

// PipelineOption customizes a Pipeline at construction time.
type PipelineOption func(*pipelineConfig)

// WithBase selects a pre-trained Scorer as the accuracy component. If the
// scorer's Name matches a registry base with a custom accuracy adaptation
// (e.g. "Pop", whose paper-faithful form is the indicator-style top-N
// membership), that adaptation is used; otherwise the scores are min–max
// normalized per user to [0,1] before entering the value function, as the
// paper does with RSVD and PSVD predictions. Exactly one of WithBase,
// WithBaseNamed or WithAccuracy must be given.
func WithBase(s Scorer) PipelineOption {
	return func(c *pipelineConfig) { c.scorer = s }
}

// WithBaseNamed selects the accuracy component from the model registry by
// name (see BaseNames). Registry entries know the paper-faithful adaptation
// for each model — e.g. "Pop" uses the indicator-style top-N membership
// accuracy rather than normalized raw counts.
func WithBaseNamed(name string) PipelineOption {
	return func(c *pipelineConfig) { c.baseName = name }
}

// WithAccuracy plugs in a fully custom accuracy recommender.
func WithAccuracy(a AccuracyRecommender) PipelineOption {
	return func(c *pipelineConfig) { c.accuracy = a }
}

// WithPreferences selects the long-tail preference estimator θ (default:
// PreferenceGeneralized, the paper's learned θ^G).
func WithPreferences(m PreferenceModel) PipelineOption {
	return func(c *pipelineConfig) { c.prefModel = m }
}

// WithPreferenceConstant sets the constant used by PreferenceConstant
// (default 0.5, the paper's θ^C; ignored by every other estimator).
func WithPreferenceConstant(v float64) PipelineOption {
	return func(c *pipelineConfig) { c.prefConstant = v }
}

// WithPreferenceVector bypasses θ estimation entirely and uses the supplied
// per-user vector (ablation studies, precomputed preferences).
func WithPreferenceVector(p *Preferences) PipelineOption {
	return func(c *pipelineConfig) { c.prefVector = p }
}

// WithCoverage selects the coverage recommender (default: CoverageDyn()).
func WithCoverage(spec CoverageSpec) PipelineOption {
	return func(c *pipelineConfig) { c.coverage = spec }
}

// WithTopN sets the recommendation list size N (default 10).
func WithTopN(n int) PipelineOption {
	return func(c *pipelineConfig) { c.topN = n }
}

// WithSampleSize sets the OSLG sample size S; 0 (the default) runs the fully
// sequential locally greedy algorithm. Only meaningful with CoverageDyn.
func WithSampleSize(s int) PipelineOption {
	return func(c *pipelineConfig) { c.sampleSize = s }
}

// WithWorkers sets the goroutine count for GANC's parallel phases (default 1,
// fully deterministic sequential execution). RecommendAll shards the user
// space into contiguous ranges, one range and one reusable sweep scratch per
// worker; outputs are identical for any worker count (the per-user sweeps
// are independent — see DESIGN.md §7).
func WithWorkers(w int) PipelineOption {
	return func(c *pipelineConfig) { c.workers = w }
}

// WithSeed sets the random seed shared by the θ estimator, the KDE sampler
// and any randomized component (default 1).
func WithSeed(seed int64) PipelineOption {
	return func(c *pipelineConfig) { c.seed = seed }
}

// WithScoringPrecision selects the arithmetic tier of the pipeline's bulk
// scoring hot path (default PrecisionF64, exact). PrecisionF32 and
// PrecisionInt8 switch the base model's candidate sweeps onto contiguous
// reduced-precision factor blocks and the optimizer's gain loop onto a
// float32 arena; top-N output then matches the exact pipeline only to the
// tolerances documented in DESIGN.md §12. Base models without a tiered path
// (Pop, ItemKNN, custom scorers) keep scoring in float64; the optimizer
// still uses the float32 selection arena where the accuracy side allows it.
func WithScoringPrecision(p ScoringPrecision) PipelineOption {
	return func(c *pipelineConfig) { c.precision = p }
}

// CoverageSpec is a deferred coverage-recommender constructor: the pipeline
// resolves it against the train set during assembly, so callers no longer
// thread catalog sizes through by hand.
type CoverageSpec struct {
	name  string
	build func(train *Dataset, seed int64) CoverageRecommender
}

// CoverageDyn selects the dynamic coverage recommender c(i) = 1/√(f_i^A + 1),
// the paper's submodular default.
func CoverageDyn() CoverageSpec {
	return CoverageSpec{name: "Dyn", build: func(train *Dataset, _ int64) CoverageRecommender {
		return core.NewDynCoverage(train.NumItems())
	}}
}

// CoverageStat selects the static popularity-based coverage recommender
// c(i) = 1/√(f_i^R + 1).
func CoverageStat() CoverageSpec {
	return CoverageSpec{name: "Stat", build: func(train *Dataset, _ int64) CoverageRecommender {
		return core.NewStatCoverage(train)
	}}
}

// CoverageRand selects the uniform-random coverage recommender, seeded from
// the pipeline seed.
func CoverageRand() CoverageSpec {
	return CoverageSpec{name: "Rand", build: func(_ *Dataset, seed int64) CoverageRecommender {
		return core.NewRandCoverage(seed)
	}}
}

// CoverageCustom wraps an arbitrary coverage recommender constructor so
// downstream code can extend the framework without leaving the Pipeline API.
func CoverageCustom(name string, build func(train *Dataset, seed int64) CoverageRecommender) CoverageSpec {
	return CoverageSpec{name: name, build: build}
}

// NewPipeline validates and assembles a complete GANC pipeline in one call.
// The only required choice is the accuracy component (exactly one of
// WithBase, WithBaseNamed or WithAccuracy); everything else has the paper's
// defaults: θ^G preferences, Dyn coverage, N=10, fully sequential OSLG.
func NewPipeline(train *Dataset, opts ...PipelineOption) (*Pipeline, error) {
	if train == nil {
		return nil, fmt.Errorf("ganc: pipeline requires a train dataset")
	}
	if train.NumUsers() == 0 || train.NumItems() == 0 {
		return nil, fmt.Errorf("ganc: pipeline requires a non-empty train dataset, got %d users × %d items",
			train.NumUsers(), train.NumItems())
	}
	cfg := pipelineConfig{
		prefModel:    PreferenceGeneralized,
		prefConstant: 0.5, // the paper's θ^C default; a constant of 0 would degenerate GANC to pure accuracy
		coverage:     CoverageDyn(),
		topN:         10,
		workers:      1,
		seed:         1,
	}
	for _, opt := range opts {
		opt(&cfg)
	}

	if cfg.topN <= 0 {
		return nil, fmt.Errorf("ganc: top-N must be positive, got %d", cfg.topN)
	}
	if cfg.sampleSize < 0 {
		return nil, fmt.Errorf("ganc: OSLG sample size must be ≥ 0, got %d", cfg.sampleSize)
	}
	if cfg.coverage.build == nil {
		return nil, fmt.Errorf("ganc: coverage spec %q has no constructor", cfg.coverage.name)
	}

	sources := 0
	if cfg.scorer != nil {
		sources++
	}
	if cfg.baseName != "" {
		sources++
	}
	if cfg.accuracy != nil {
		sources++
	}
	if sources != 1 {
		return nil, fmt.Errorf("ganc: exactly one of WithBase, WithBaseNamed or WithAccuracy is required (got %d)", sources)
	}

	arec := cfg.accuracy
	baseScorer := cfg.scorer
	var err error
	switch {
	case cfg.scorer != nil:
		arec, err = accuracyForScorer(cfg.scorer, train, cfg.topN, cfg.seed)
	case cfg.baseName != "":
		arec, baseScorer, err = newAccuracyByName(cfg.baseName, train, cfg.topN, cfg.seed)
	}
	if err != nil {
		return nil, err
	}
	// Only push a non-default tier down: a base scorer whose precision was
	// set directly (SetPrecision before WithBase) keeps its tier when the
	// pipeline option is left at the default.
	if baseScorer != nil && cfg.precision != PrecisionF64 {
		applyScoringPrecision(baseScorer, cfg.precision)
	}

	prefs := cfg.prefVector
	if prefs == nil {
		prefs, err = longtail.Estimate(cfg.prefModel, train, nil, cfg.prefConstant, cfg.seed)
		if err != nil {
			return nil, fmt.Errorf("ganc: estimating θ preferences: %w", err)
		}
	}

	crec := cfg.coverage.build(train, cfg.seed)
	g, err := core.New(train, arec, prefs, crec, core.Config{
		N:          cfg.topN,
		SampleSize: cfg.sampleSize,
		Seed:       cfg.seed,
		Workers:    cfg.workers,
		Precision:  cfg.precision,
	})
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		train:      train,
		ganc:       g,
		prefs:      prefs,
		cfg:        cfg,
		arec:       arec,
		baseScorer: baseScorer,
		crec:       crec,
	}, nil
}

// Name returns the paper-style template string GANC(ARec, θ, CRec).
func (p *Pipeline) Name() string { return p.ganc.Name() }

// TopN returns the configured list size.
func (p *Pipeline) TopN() int { return p.cfg.topN }

// Train returns the train set the pipeline was assembled against.
func (p *Pipeline) Train() *Dataset { return p.train }

// Preferences returns the estimated per-user θ vector.
func (p *Pipeline) Preferences() *Preferences { return p.prefs }

// GANC returns the assembled core instance for callers that need the
// lower-level surface (e.g. ValueOf in ablation studies).
func (p *Pipeline) GANC() *GANC { return p.ganc }

// Shard returns the pipeline's cluster identity, or nil for single-node
// pipelines (see SaveShard/LoadShardEngine).
func (p *Pipeline) Shard() *ShardIdentity {
	if p.shard == nil {
		return nil
	}
	id := *p.shard
	return &id
}

// RecommendUser implements Engine: one user's list, computed on demand
// against a frozen snapshot of the coverage state. Safe for concurrent use.
func (p *Pipeline) RecommendUser(ctx context.Context, u UserID, n int) (TopNSet, error) {
	return p.ganc.RecommendUser(ctx, u, n)
}

// RecommendAll implements Engine: the full batch collection (OSLG for Dyn
// coverage, independent greedy sweeps otherwise).
func (p *Pipeline) RecommendAll(ctx context.Context) (Recommendations, error) {
	return p.ganc.RecommendAll(ctx)
}
