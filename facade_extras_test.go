package ganc

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

func TestPublicAPIItemKNNAndRankingMetrics(t *testing.T) {
	data, err := GenerateML100K(0.12)
	if err != nil {
		t.Fatal(err)
	}
	split := SplitByUser(data, 0.8, rand.New(rand.NewSource(23)))

	cfg := DefaultItemKNNConfig()
	cfg.Neighbors = 20
	m, err := TrainItemKNN(split.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := NewBaseEngine(m, split.Train, 5).RecommendAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(split, 0)
	rep := ev.Evaluate(m.Name(), recs, 5)
	if rep.Coverage <= 0 {
		t.Fatal("item-KNN produced no coverage at all")
	}
	// The position-sensitive metrics must be internally consistent:
	// HitRate ≥ NDCG and HitRate ≥ MRR for binary relevance.
	ndcg := ev.NDCG(recs, 5)
	mrr := ev.MRR(recs, 5)
	hit := ev.HitRate(recs, 5)
	if ndcg < 0 || ndcg > 1 || mrr < 0 || mrr > 1 || hit < 0 || hit > 1 {
		t.Fatalf("ranking metrics out of range: ndcg=%v mrr=%v hit=%v", ndcg, mrr, hit)
	}
	if hit+1e-9 < ndcg || hit+1e-9 < mrr {
		t.Fatalf("hit rate %v cannot be below ndcg %v or mrr %v", hit, ndcg, mrr)
	}
}

func TestPublicAPIModelPersistence(t *testing.T) {
	data, err := GenerateML100K(0.1)
	if err != nil {
		t.Fatal(err)
	}
	split := SplitByUser(data, 0.8, rand.New(rand.NewSource(29)))
	cfg := DefaultRSVDConfig()
	cfg.Factors = 6
	cfg.Epochs = 2
	m, err := TrainRSVD(split.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRSVD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Score(0, 0) != m.Score(0, 0) {
		t.Fatal("reloaded model scores differ")
	}

	p, err := TrainPSVD(split.Train, PSVDConfig{Factors: 5, PowerIterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPSVD(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIGridSearch(t *testing.T) {
	data, err := GenerateML100K(0.1)
	if err != nil {
		t.Fatal(err)
	}
	split := SplitByUser(data, 0.8, rand.New(rand.NewSource(31)))
	base := DefaultRSVDConfig()
	base.Epochs = 2
	grid := RSVDGrid{Factors: []int{4}, Regularization: []float64{0.05, 0.1}, LearningRate: []float64{0.02}}
	results, err := CrossValidateRSVD(split.Train, base, grid, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestRSVDConfig(results)
	if err != nil {
		t.Fatal(err)
	}
	if best.MeanRMSE <= 0 {
		t.Fatal("best RMSE not positive")
	}
}
