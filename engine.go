package ganc

import (
	"context"
	"fmt"

	"ganc/internal/recommender"
)

// Engine is the serving-oriented contract every assembled recommender in this
// library satisfies: GANC pipelines, the base models and the re-ranking
// baselines all answer both a single user's request on demand and the full
// batch sweep. The online path is what internal/serve is built on — one
// user's list can be computed without precomputing the other million.
type Engine interface {
	// Name identifies the model in logs, experiment output and /info.
	Name() string
	// TopN returns the engine's default list size.
	TopN() int
	// RecommendUser computes one user's ranked top-n list on demand. n ≤ 0
	// selects the engine's default. Implementations are safe for concurrent
	// use and never mutate shared state on this path.
	RecommendUser(ctx context.Context, u UserID, n int) (TopNSet, error)
	// RecommendAll computes the full collection (the batch path used by the
	// offline experiments and evaluation).
	RecommendAll(ctx context.Context) (Recommendations, error)
}

// NewBaseEngine wraps any Scorer as an Engine under the paper's
// all-unrated-items protocol. Requests run through the index-contiguous
// candidate pipeline: the user's candidates (catalog minus train items) are
// enumerated by a linear merge and scored in one BulkScores call, so a model
// implementing BulkScorer (RSVD, PSVD, ItemKNN, Pop, ItemAvg, CofiRank) pays
// one virtual dispatch per request instead of one per item.
func NewBaseEngine(s Scorer, train *Dataset, n int) Engine {
	return &recommender.TopNEngine{
		Model: &recommender.ScorerTopN{Scorer: s, NumItems: train.NumItems()},
		Train: train,
		N:     n,
	}
}

// NewParallelBaseEngine is NewBaseEngine with RecommendAll sharded over
// contiguous user ranges across the given number of workers, each reusing its
// own candidate buffer. The scorer must be safe for concurrent use (every
// built-in model except Rand is).
func NewParallelBaseEngine(s Scorer, train *Dataset, n, workers int) Engine {
	return &recommender.TopNEngine{
		Model:   &recommender.ScorerTopN{Scorer: s, NumItems: train.NumItems()},
		Train:   train,
		N:       n,
		Workers: workers,
	}
}

// NewTopNEngine wraps a model that already implements ranked top-N selection
// (e.g. the Pop recommender's direct path) as an Engine. Models implementing
// recommender.TopNFrom are served through the candidate pipeline.
func NewTopNEngine(model TopNRecommender, train *Dataset, n int) Engine {
	return &recommender.TopNEngine{Model: model, Train: train, N: n}
}

// BulkScorer re-exports the batch scoring contract of the candidate pipeline
// (see internal/recommender.BulkScorer) so downstream models can opt in.
type BulkScorer = recommender.BulkScorer

// TopNRecommender is the per-user ranked-list interface the base models
// implement (re-exported from internal/recommender).
type TopNRecommender = recommender.TopN

// StaticEngine serves a frozen precomputed collection: RecommendUser is a map
// lookup, RecommendAll returns the collection itself. It adapts legacy batch
// output (or an offline snapshot loaded from disk) to the Engine interface.
type StaticEngine struct {
	name string
	recs Recommendations
	n    int
}

// NewStaticEngine wraps a precomputed collection. It fails on an empty
// collection or a non-positive n, mirroring the old serve-time validation.
func NewStaticEngine(name string, recs Recommendations, n int) (*StaticEngine, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("ganc: refusing to build a static engine from an empty collection")
	}
	if n <= 0 {
		return nil, fmt.Errorf("ganc: static engine N must be positive, got %d", n)
	}
	return &StaticEngine{name: name, recs: recs, n: n}, nil
}

// Name implements Engine.
func (e *StaticEngine) Name() string { return e.name }

// TopN implements Engine.
func (e *StaticEngine) TopN() int { return e.n }

// RecommendUser implements Engine by looking the user up in the frozen
// collection; users without an entry get an error (there is nothing to
// compute lazily).
func (e *StaticEngine) RecommendUser(ctx context.Context, u UserID, n int) (TopNSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	set, ok := e.recs[u]
	if !ok {
		return nil, fmt.Errorf("ganc: no precomputed recommendations for user %d", u)
	}
	if n > 0 && n < len(set) {
		set = set[:n]
	}
	return set, nil
}

// RecommendAll implements Engine.
func (e *StaticEngine) RecommendAll(ctx context.Context) (Recommendations, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.recs, nil
}
