// Command warm_start demonstrates the persistence + streaming-ingestion
// workflow end to end: cold-train a GANC pipeline, snapshot it, warm-start a
// second engine from the snapshot, verify the two produce byte-identical
// recommendations, then stream new interaction events through an Ingestor and
// checkpoint the evolved state.
//
// Run with: go run ./examples/warm_start
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"ganc"
)

func main() {
	data, err := ganc.GenerateML100K(0.15)
	if err != nil {
		log.Fatal(err)
	}
	split := ganc.SplitByUser(data, 0.8, rand.New(rand.NewSource(1)))
	fmt.Printf("dataset: %d users, %d items, %d train ratings\n",
		data.NumUsers(), data.NumItems(), split.Train.NumRatings())

	// --- Cold start: train the base model and assemble the pipeline. --------
	coldStart := time.Now()
	cfg := ganc.DefaultRSVDConfig()
	cfg.Factors = 16
	cfg.Epochs = 8
	model, err := ganc.TrainRSVD(split.Train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := ganc.NewPipeline(split.Train,
		ganc.WithBase(model),
		ganc.WithTopN(10),
	)
	if err != nil {
		log.Fatal(err)
	}
	coldTime := time.Since(coldStart)

	// --- Save, then warm-start a second engine from the snapshot. -----------
	dir, err := os.MkdirTemp("", "ganc-warm-start")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "engine.snap")
	if err := pipeline.Save(snapPath); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(snapPath)
	if err != nil {
		log.Fatal(err)
	}

	warmStart := time.Now()
	loaded, err := ganc.LoadEngine(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	warmTime := time.Since(warmStart)
	fmt.Printf("cold start (train + assemble): %v\n", coldTime.Round(time.Millisecond))
	fmt.Printf("warm start (load %d KiB snapshot): %v\n", info.Size()/1024, warmTime.Round(time.Millisecond))

	// --- Parity: the loaded engine must recommend byte-identically. ---------
	ctx := context.Background()
	want, err := pipeline.RecommendAll(ctx)
	if err != nil {
		log.Fatal(err)
	}
	got, err := loaded.RecommendAll(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range want.SortedUsers() {
		for k := range want[u] {
			if got[u][k] != want[u][k] {
				log.Fatalf("parity violation at user %d: %v != %v", u, got[u], want[u])
			}
		}
	}
	fmt.Printf("parity: RecommendAll output of saved and loaded engines is byte-identical (%d users)\n", len(want))

	// --- Stream new interactions into the loaded engine. --------------------
	ing, err := ganc.NewIngestor(nil, loaded,
		ganc.WithIngestLog(filepath.Join(dir, "events.log")),
		ganc.WithIngestCheckpoint(snapPath, 0)) // manual checkpoints only
	if err != nil {
		log.Fatal(err)
	}
	users := split.Train.UserInterner()
	events := []ganc.IngestEvent{
		{User: users.Key(0), Item: "i0000003", Value: 5},
		{User: "newcomer-1", Item: "i0000010", Value: 4},
		{User: "newcomer-1", Item: "i0000011", Value: 5},
	}
	res, err := ing.Apply(ctx, events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d events (seq %d): popularity, item averages, adjacency and Dyn frequencies updated\n",
		len(events), res.Seq)
	if err := ing.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	resumed, err := ganc.LoadEngine(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint restored: %d ratings (was %d), newcomer servable: %v\n",
		resumed.Train().NumRatings(), split.Train.NumRatings(),
		func() bool { _, ok := resumed.Train().UserInterner().Lookup("newcomer-1"); return ok }())
}
