// Quickstart: the ten-minute tour of the GANC library.
//
// This example generates a small synthetic MovieLens-100K stand-in, splits it
// into train and test, assembles GANC(Pop, θ^G, Dyn) with a single
// NewPipeline call and compares it against the plain popularity recommender
// on all Table III metrics — then shows the online path: one user's list
// computed on demand, as the serving layer does it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ganc"
)

func main() {
	// 1. Data: a calibrated synthetic stand-in for ML-100K at 20% scale.
	//    To use a real ratings file instead, see ganc.LoadRatings.
	data, err := ganc.GenerateML100K(0.2)
	if err != nil {
		log.Fatal(err)
	}
	split := ganc.SplitByUser(data, 0.8, rand.New(rand.NewSource(7)))
	fmt.Printf("dataset: %d users, %d items, %d train + %d test ratings\n",
		data.NumUsers(), data.NumItems(), split.Train.NumRatings(), split.Test.NumRatings())

	// 2. Assemble GANC(Pop, θ^G, Dyn) in one call: the popularity accuracy
	//    recommender from the registry, the learned generalized preferences
	//    (Eq. II.4–II.6) and the dynamic coverage recommender.
	const n = 5
	p, err := ganc.NewPipeline(split.Train,
		ganc.WithBaseNamed("Pop"),
		ganc.WithPreferences(ganc.PreferenceGeneralized),
		ganc.WithCoverage(ganc.CoverageDyn()),
		ganc.WithTopN(n),
		ganc.WithSampleSize(60),
		ganc.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	prefs := p.Preferences()
	fmt.Printf("learned θ^G for %d users (mean %.3f, std %.3f)\n", prefs.Len(), prefs.Mean(), prefs.StdDev())

	// 3. Batch generation through the Engine interface.
	ctx := context.Background()
	gancRecs, err := p.RecommendAll(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Baseline: the plain popularity recommender as an Engine.
	pop := ganc.NewBaseEngine(ganc.NewPop(split.Train), split.Train, n)
	popRecs, err := pop.RecommendAll(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Evaluate both on the held-out test set.
	ev := ganc.NewEvaluator(split, 0)
	popReport := ev.Evaluate(pop.Name(), popRecs, n)
	gancReport := ev.Evaluate(p.Name(), gancRecs, n)

	fmt.Println("\nmetric            Pop        GANC")
	fmt.Printf("F-measure@5     %8.4f   %8.4f\n", popReport.FMeasure, gancReport.FMeasure)
	fmt.Printf("StratRecall@5   %8.4f   %8.4f\n", popReport.StratRecall, gancReport.StratRecall)
	fmt.Printf("LTAccuracy@5    %8.4f   %8.4f\n", popReport.LTAccuracy, gancReport.LTAccuracy)
	fmt.Printf("Coverage@5      %8.4f   %8.4f\n", popReport.Coverage, gancReport.Coverage)
	fmt.Printf("Gini@5          %8.4f   %8.4f\n", popReport.Gini, gancReport.Gini)

	// 6. The online path: one user's list computed on demand — no batch
	//    precomputation required. This is what /recommend?user=X serves.
	fmt.Println("\non-demand recommendations (RecommendUser):")
	for u := 0; u < 3 && u < split.Train.NumUsers(); u++ {
		set, err := p.RecommendUser(ctx, ganc.UserID(u), n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s:", split.Train.UserInterner().Key(int32(u)))
		for _, i := range set {
			fmt.Printf(" %s", split.Train.ItemInterner().Key(int32(i)))
		}
		fmt.Println()
	}
}
