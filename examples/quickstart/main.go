// Quickstart: the ten-minute tour of the GANC library.
//
// This example generates a small synthetic MovieLens-100K stand-in, splits it
// into train and test, learns the users' long-tail novelty preferences θ^G,
// assembles GANC(Pop, θ^G, Dyn) and compares it against the plain popularity
// recommender on all Table III metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ganc/internal/core"
	"ganc/internal/eval"
	"ganc/internal/longtail"
	"ganc/internal/recommender"
	"ganc/internal/synth"
	"ganc/internal/types"
)

func main() {
	// 1. Data: a calibrated synthetic stand-in for ML-100K at 20% scale.
	//    To use a real ratings file instead, see dataset.LoadRatings.
	cfg := synth.ML100K(0.2)
	data, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	split := data.SplitByUser(synth.Kappa(cfg.Name), rand.New(rand.NewSource(7)))
	fmt.Printf("dataset: %d users, %d items, %d train + %d test ratings\n",
		data.NumUsers(), data.NumItems(), split.Train.NumRatings(), split.Test.NumRatings())

	// 2. Learn each user's long-tail novelty preference from the train data
	//    (the paper's generalized θ^G, Eq. II.4–II.6).
	prefs, err := longtail.Estimate(longtail.ModelGeneralized, split.Train, nil, 0, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned θ^G for %d users (mean %.3f, std %.3f)\n", prefs.Len(), prefs.Mean(), prefs.StdDev())

	// 3. Assemble GANC(Pop, θ^G, Dyn): the popularity accuracy recommender,
	//    the learned preferences, and the dynamic coverage recommender.
	const n = 5
	arec := core.NewPopAccuracy(split.Train, n)
	crec := core.NewDynCoverage(split.Train.NumItems())
	g, err := core.New(split.Train, arec, prefs, crec, core.Config{N: n, SampleSize: 60, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	gancRecs := g.Recommend()

	// 4. Baseline: the plain popularity recommender.
	popRecs := recommender.RecommendAll(recommender.NewPop(split.Train), split.Train, n)

	// 5. Evaluate both on the held-out test set.
	ev := eval.NewEvaluator(split, 0)
	popReport := ev.Evaluate("Pop", popRecs, n)
	gancReport := ev.Evaluate(g.Name(), gancRecs, n)

	fmt.Println("\nmetric            Pop        GANC")
	fmt.Printf("F-measure@5     %8.4f   %8.4f\n", popReport.FMeasure, gancReport.FMeasure)
	fmt.Printf("StratRecall@5   %8.4f   %8.4f\n", popReport.StratRecall, gancReport.StratRecall)
	fmt.Printf("LTAccuracy@5    %8.4f   %8.4f\n", popReport.LTAccuracy, gancReport.LTAccuracy)
	fmt.Printf("Coverage@5      %8.4f   %8.4f\n", popReport.Coverage, gancReport.Coverage)
	fmt.Printf("Gini@5          %8.4f   %8.4f\n", popReport.Gini, gancReport.Gini)

	// 6. Show the first few users' lists with external identifiers.
	fmt.Println("\nsample recommendations (GANC):")
	for u := 0; u < 3 && u < split.Train.NumUsers(); u++ {
		set := gancRecs[types.UserID(u)]
		fmt.Printf("  %s:", split.Train.UserInterner().Key(int32(u)))
		for _, i := range set {
			fmt.Printf(" %s", split.Train.ItemInterner().Key(int32(i)))
		}
		fmt.Println()
	}
}
