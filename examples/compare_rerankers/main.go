// Comparing re-ranking frameworks head-to-head.
//
// This example pits GANC against the three re-ranking baselines the paper
// evaluates — RBT (both criteria), the 5D resource-allocation method (all
// four variants) and PRA (both exchangeable-set sizes) — all post-processing
// the same RSVD model on the same synthetic ML-100K stand-in, and prints a
// Table IV-style summary with the average-rank score column.
//
// Run with:
//
//	go run ./examples/compare_rerankers
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"ganc/internal/core"
	"ganc/internal/eval"
	"ganc/internal/longtail"
	"ganc/internal/mf"
	"ganc/internal/recommender"
	"ganc/internal/rerank"
	"ganc/internal/synth"
	"ganc/internal/types"
)

func main() {
	const n = 5

	cfg := synth.ML100K(0.35)
	data, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	split := data.SplitByUser(synth.Kappa(cfg.Name), rand.New(rand.NewSource(17)))
	fmt.Printf("dataset: %d users, %d items, %d train ratings\n",
		data.NumUsers(), data.NumItems(), split.Train.NumRatings())

	rsvdCfg := mf.DefaultRSVDConfig()
	rsvdCfg.Factors = 40
	rsvdCfg.Epochs = 15
	rsvd, err := mf.TrainRSVD(split.Train, rsvdCfg)
	if err != nil {
		log.Fatal(err)
	}

	ev := eval.NewEvaluator(split, 0)
	var reports []eval.Report
	add := func(name string, recs types.Recommendations) {
		reports = append(reports, ev.Evaluate(name, recs, n))
	}

	// The base model.
	add("RSVD", recommender.RecommendAll(
		&recommender.ScorerTopN{Scorer: rsvd, NumItems: split.Train.NumItems()}, split.Train, n))

	// RBT variants.
	for _, crit := range []rerank.RBTCriterion{rerank.RBTPop, rerank.RBTAvg} {
		r, err := rerank.NewRBT(split.Train, rsvd, rerank.DefaultRBTConfig(n, crit))
		if err != nil {
			log.Fatal(err)
		}
		add(r.Name(), r.RecommendAll())
	}

	// 5D resource-allocation variants.
	fiveDConfigs := []rerank.FiveDConfig{
		rerank.DefaultFiveDConfig(n),
		{N: n, Q: 1, AccuracyFilter: true, RankByRankings: true},
	}
	for _, fc := range fiveDConfigs {
		f, err := rerank.NewFiveD(split.Train, rsvd, fc)
		if err != nil {
			log.Fatal(err)
		}
		add(f.Name(), f.RecommendAll())
	}

	// PRA variants.
	for _, x := range []int{10, 20} {
		p, err := rerank.NewPRA(split.Train, rsvd, rerank.DefaultPRAConfig(n, x))
		if err != nil {
			log.Fatal(err)
		}
		add(p.Name(), p.RecommendAll())
	}

	// GANC with the TFIDF and learned generalized preferences.
	arec := &core.ScorerAccuracy{Scorer: recommender.NewNormalizedScorer(rsvd, split.Train.NumItems())}
	for _, theta := range []longtail.Model{longtail.ModelTFIDF, longtail.ModelGeneralized} {
		prefs, err := longtail.Estimate(theta, split.Train, nil, 0, 17)
		if err != nil {
			log.Fatal(err)
		}
		g, err := core.New(split.Train, arec, prefs, core.NewDynCoverage(split.Train.NumItems()),
			core.Config{N: n, SampleSize: 120, Seed: 17})
		if err != nil {
			log.Fatal(err)
		}
		add(g.Name(), g.Recommend())
	}

	// Print sorted by the average-rank score (best first), as in Table IV.
	ranks := eval.RankReports(reports)
	sort.Slice(reports, func(a, b int) bool {
		return ranks[reports[a].Algorithm] < ranks[reports[b].Algorithm]
	})
	fmt.Printf("\n%-30s %8s %8s %8s %8s %8s %6s\n", "algorithm", "F@5", "S@5", "L@5", "C@5", "G@5", "score")
	for _, rep := range reports {
		fmt.Printf("%-30s %8.4f %8.4f %8.4f %8.4f %8.4f %6.1f\n",
			rep.Algorithm, rep.FMeasure, rep.StratRecall, rep.LTAccuracy, rep.Coverage, rep.Gini, ranks[rep.Algorithm])
	}
}
