// Comparing re-ranking frameworks head-to-head.
//
// This example pits GANC against the three re-ranking baselines the paper
// evaluates — RBT (both criteria), the 5D resource-allocation method and PRA
// (both exchangeable-set sizes) — all post-processing the same RSVD model on
// the same synthetic ML-100K stand-in, and prints a Table IV-style summary
// with the average-rank score column. Every re-ranker is constructed by name
// from the model registry, exactly as cmd/experiments -compare does.
//
// Run with:
//
//	go run ./examples/compare_rerankers
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"ganc"
)

func main() {
	const n = 5
	ctx := context.Background()

	data, err := ganc.GenerateML100K(0.35)
	if err != nil {
		log.Fatal(err)
	}
	split := ganc.SplitByUser(data, 0.8, rand.New(rand.NewSource(17)))
	fmt.Printf("dataset: %d users, %d items, %d train ratings\n",
		data.NumUsers(), data.NumItems(), split.Train.NumRatings())

	rsvdCfg := ganc.DefaultRSVDConfig()
	rsvdCfg.Factors = 40
	rsvdCfg.Epochs = 15
	rsvd, err := ganc.TrainRSVD(split.Train, rsvdCfg)
	if err != nil {
		log.Fatal(err)
	}

	ev := ganc.NewEvaluator(split, 0)
	var reports []ganc.Report
	evaluate := func(e ganc.Engine) {
		recs, err := e.RecommendAll(ctx)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, ev.Evaluate(e.Name(), recs, n))
	}

	// The base model itself, then every registry re-ranker over it.
	evaluate(ganc.NewBaseEngine(rsvd, split.Train, n))
	for _, name := range []string{"RBT-Pop", "RBT-Avg", "5D", "5D-AF", "PRA-10", "PRA-20"} {
		e, err := ganc.NewReranker(name, split.Train, rsvd, n, 17)
		if err != nil {
			log.Fatal(err)
		}
		evaluate(e)
	}

	// GANC with the TFIDF and learned generalized preferences.
	for _, theta := range []ganc.PreferenceModel{ganc.PreferenceTFIDF, ganc.PreferenceGeneralized} {
		p, err := ganc.NewPipeline(split.Train,
			ganc.WithBase(rsvd),
			ganc.WithPreferences(theta),
			ganc.WithCoverage(ganc.CoverageDyn()),
			ganc.WithTopN(n),
			ganc.WithSampleSize(120),
			ganc.WithSeed(17))
		if err != nil {
			log.Fatal(err)
		}
		evaluate(p)
	}

	// Print sorted by the average-rank score (best first), as in Table IV.
	ranks := ganc.RankReports(reports)
	sort.Slice(reports, func(a, b int) bool {
		return ranks[reports[a].Algorithm] < ranks[reports[b].Algorithm]
	})
	fmt.Printf("\n%-30s %8s %8s %8s %8s %8s %6s\n", "algorithm", "F@5", "S@5", "L@5", "C@5", "G@5", "score")
	for _, rep := range reports {
		fmt.Printf("%-30s %8.4f %8.4f %8.4f %8.4f %8.4f %6.1f\n",
			rep.Algorithm, rep.FMeasure, rep.StratRecall, rep.LTAccuracy, rep.Coverage, rep.Gini, ranks[rep.Algorithm])
	}
}
