// Dense setting: re-ranking a rating-prediction model with GANC.
//
// The paper's Table IV shows that in dense datasets (ML-100K, ML-1M),
// re-ranking an RSVD rating-prediction model with GANC(RSVD, θ^G, Dyn)
// dramatically increases coverage and lowers the Gini concentration while
// keeping the F-measure close to the base model. This example reproduces
// that comparison on a synthetic ML-1M stand-in, also running the RBT and
// PRA baselines for context — every model assembled by name from the model
// registry or through the Pipeline API.
//
// Run with:
//
//	go run ./examples/dense_movielens
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ganc"
)

func main() {
	const n = 5
	ctx := context.Background()

	// Dense dataset: the ML-1M stand-in at 30% scale (density ≈ 4.5%).
	data, err := ganc.GenerateML1M(0.3)
	if err != nil {
		log.Fatal(err)
	}
	split := ganc.SplitByUser(data, 0.8, rand.New(rand.NewSource(11)))
	fmt.Printf("dense dataset: %d users, %d items, density %.2f%%\n",
		data.NumUsers(), data.NumItems(), data.Density()*100)

	// Base model: RSVD trained with SGD (the paper's LIBMF analogue). Trained
	// once, shared by every re-ranker below.
	rsvdCfg := ganc.DefaultRSVDConfig()
	rsvdCfg.Factors = 40
	rsvdCfg.Epochs = 15
	rsvd, err := ganc.TrainRSVD(split.Train, rsvdCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RSVD trained: test RMSE %.3f\n", rsvd.RMSE(split.Test))

	ev := ganc.NewEvaluator(split, 0)
	var reports []ganc.Report
	evaluate := func(e ganc.Engine) {
		recs, err := e.RecommendAll(ctx)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, ev.Evaluate(e.Name(), recs, n))
	}

	// 1. The plain RSVD ranking.
	evaluate(ganc.NewBaseEngine(rsvd, split.Train, n))

	// 2–3. RBT(RSVD, Pop) and PRA(RSVD, 10) from the reranker registry.
	for _, name := range []string{"RBT-Pop", "PRA-10"} {
		e, err := ganc.NewReranker(name, split.Train, rsvd, n, 11)
		if err != nil {
			log.Fatal(err)
		}
		evaluate(e)
	}

	// 4. GANC(RSVD, θ^G, Dyn): the paper's main model, assembled in one call.
	p, err := ganc.NewPipeline(split.Train,
		ganc.WithBase(rsvd),
		ganc.WithPreferences(ganc.PreferenceGeneralized),
		ganc.WithCoverage(ganc.CoverageDyn()),
		ganc.WithTopN(n),
		ganc.WithSampleSize(150),
		ganc.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	evaluate(p)

	// Print the Table IV–style comparison with the average-rank score.
	ranks := ganc.RankReports(reports)
	fmt.Printf("\n%-28s %8s %8s %8s %8s %8s %6s\n", "algorithm", "F@5", "S@5", "L@5", "C@5", "G@5", "score")
	for _, rep := range reports {
		fmt.Printf("%-28s %8.4f %8.4f %8.4f %8.4f %8.4f %6.1f\n",
			rep.Algorithm, rep.FMeasure, rep.StratRecall, rep.LTAccuracy, rep.Coverage, rep.Gini, ranks[rep.Algorithm])
	}
	fmt.Println("\nExpected shape (paper Table IV, dense settings): every re-ranker trades some")
	fmt.Println("F-measure for coverage; GANC gains the most coverage and the best average rank.")
}
