// Dense setting: re-ranking a rating-prediction model with GANC.
//
// The paper's Table IV shows that in dense datasets (ML-100K, ML-1M),
// re-ranking an RSVD rating-prediction model with GANC(RSVD, θ^G, Dyn)
// dramatically increases coverage and lowers the Gini concentration while
// keeping the F-measure close to the base model. This example reproduces
// that comparison on a synthetic ML-1M stand-in, also running the RBT and
// PRA baselines for context.
//
// Run with:
//
//	go run ./examples/dense_movielens
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ganc/internal/core"
	"ganc/internal/eval"
	"ganc/internal/longtail"
	"ganc/internal/mf"
	"ganc/internal/recommender"
	"ganc/internal/rerank"
	"ganc/internal/synth"
)

func main() {
	const n = 5

	// Dense dataset: the ML-1M stand-in at 30% scale (density ≈ 4.5%).
	cfg := synth.ML1M(0.3)
	data, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	split := data.SplitByUser(synth.Kappa(cfg.Name), rand.New(rand.NewSource(11)))
	fmt.Printf("dense dataset: %d users, %d items, density %.2f%%\n",
		data.NumUsers(), data.NumItems(), data.Density()*100)

	// Base model: RSVD trained with SGD (the paper's LIBMF analogue).
	rsvdCfg := mf.DefaultRSVDConfig()
	rsvdCfg.Factors = 40
	rsvdCfg.Epochs = 15
	rsvd, err := mf.TrainRSVD(split.Train, rsvdCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RSVD trained: test RMSE %.3f\n", rsvd.RMSE(split.Test))

	ev := eval.NewEvaluator(split, 0)
	var reports []eval.Report

	// 1. The plain RSVD ranking.
	base := recommender.RecommendAll(
		&recommender.ScorerTopN{Scorer: rsvd, NumItems: split.Train.NumItems()}, split.Train, n)
	reports = append(reports, ev.Evaluate("RSVD", base, n))

	// 2. RBT(RSVD, Pop): re-rank confident predictions by inverse popularity.
	rbt, err := rerank.NewRBT(split.Train, rsvd, rerank.DefaultRBTConfig(n, rerank.RBTPop))
	if err != nil {
		log.Fatal(err)
	}
	reports = append(reports, ev.Evaluate(rbt.Name(), rbt.RecommendAll(), n))

	// 3. PRA(RSVD, 10): swap items toward each user's novelty tendency.
	pra, err := rerank.NewPRA(split.Train, rsvd, rerank.DefaultPRAConfig(n, 10))
	if err != nil {
		log.Fatal(err)
	}
	reports = append(reports, ev.Evaluate(pra.Name(), pra.RecommendAll(), n))

	// 4. GANC(RSVD, θ^G, Dyn): the paper's main model.
	prefs, err := longtail.Estimate(longtail.ModelGeneralized, split.Train, nil, 0, 11)
	if err != nil {
		log.Fatal(err)
	}
	arec := &core.ScorerAccuracy{Scorer: recommender.NewNormalizedScorer(rsvd, split.Train.NumItems())}
	g, err := core.New(split.Train, arec, prefs, core.NewDynCoverage(split.Train.NumItems()),
		core.Config{N: n, SampleSize: 150, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	reports = append(reports, ev.Evaluate(g.Name(), g.Recommend(), n))

	// Print the Table IV–style comparison with the average-rank score.
	ranks := eval.RankReports(reports)
	fmt.Printf("\n%-28s %8s %8s %8s %8s %8s %6s\n", "algorithm", "F@5", "S@5", "L@5", "C@5", "G@5", "score")
	for _, rep := range reports {
		fmt.Printf("%-28s %8.4f %8.4f %8.4f %8.4f %8.4f %6.1f\n",
			rep.Algorithm, rep.FMeasure, rep.StratRecall, rep.LTAccuracy, rep.Coverage, rep.Gini, ranks[rep.Algorithm])
	}
	fmt.Println("\nExpected shape (paper Table IV, dense settings): every re-ranker trades some")
	fmt.Println("F-measure for coverage; GANC gains the most coverage and the best average rank.")
}
