// Evaluation-protocol bias (Appendix C of the paper).
//
// Off-line accuracy numbers depend heavily on which items are ranked at test
// time. Under the "rated test items" protocol only the items a user actually
// rated in the test set are ranked, which rewards popularity-biased models;
// under the "all unrated items" protocol the model must place relevant items
// above the whole catalog, which is what a deployed recommender really has to
// do. This example re-runs the paper's Figure 7/8 study on one synthetic
// dataset: the same registry models, both protocols, side by side.
//
// Run with:
//
//	go run ./examples/protocol_bias
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ganc"
)

func main() {
	const n = 5

	data, err := ganc.GenerateML100K(0.3)
	if err != nil {
		log.Fatal(err)
	}
	split := ganc.SplitByUser(data, 0.8, rand.New(rand.NewSource(23)))
	fmt.Printf("dataset: %d users, %d items, %d train / %d test ratings\n\n",
		data.NumUsers(), data.NumItems(), split.Train.NumRatings(), split.Test.NumRatings())

	// The accuracy-focused models of the appendix study, built by name.
	var models []ganc.Scorer
	for _, name := range []string{"Rand", "Pop", "RSVD", "PSVD10", "PSVD100"} {
		m, err := ganc.NewBaseScorer(name, split.Train, 23)
		if err != nil {
			log.Printf("skipping %s: %v", name, err)
			continue
		}
		models = append(models, m)
	}

	ev := ganc.NewEvaluator(split, 0)
	fmt.Printf("%-10s  %-18s %10s %10s %10s %10s\n",
		"model", "protocol", "precision", "f-measure", "coverage", "ltacc")
	for _, m := range models {
		for _, proto := range []ganc.Protocol{ganc.ProtocolAllUnrated, ganc.ProtocolRatedTestItems} {
			recs := ganc.RecommendWithProtocol(m, split, n, proto)
			rep := ev.Evaluate(m.Name(), recs, n)
			fmt.Printf("%-10s  %-18s %10.4f %10.4f %10.4f %10.4f\n",
				m.Name(), proto, rep.Precision, rep.FMeasure, rep.Coverage, rep.LTAccuracy)
		}
		fmt.Println()
	}
	fmt.Println("Expected shape (paper Figures 7/8): every model's precision jumps under the")
	fmt.Println("rated-test-items protocol — even Rand looks strong — while the all-unrated")
	fmt.Println("protocol preserves the real differences between models. The paper therefore")
	fmt.Println("reports all of its main results under the all-unrated-items protocol.")
}
