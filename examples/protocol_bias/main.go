// Evaluation-protocol bias (Appendix C of the paper).
//
// Off-line accuracy numbers depend heavily on which items are ranked at test
// time. Under the "rated test items" protocol only the items a user actually
// rated in the test set are ranked, which rewards popularity-biased models;
// under the "all unrated items" protocol the model must place relevant items
// above the whole catalog, which is what a deployed recommender really has to
// do. This example re-runs the paper's Figure 7/8 study on one synthetic
// dataset: the same models, both protocols, side by side.
//
// Run with:
//
//	go run ./examples/protocol_bias
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ganc/internal/eval"
	"ganc/internal/mf"
	"ganc/internal/recommender"
	"ganc/internal/synth"
)

func main() {
	const n = 5

	cfg := synth.ML100K(0.3)
	data, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	split := data.SplitByUser(synth.Kappa(cfg.Name), rand.New(rand.NewSource(23)))
	fmt.Printf("dataset: %d users, %d items, %d train / %d test ratings\n\n",
		data.NumUsers(), data.NumItems(), split.Train.NumRatings(), split.Test.NumRatings())

	// The accuracy-focused models of the appendix study.
	models := []recommender.Scorer{
		recommender.NewRand(split.Train.NumItems(), 23),
		recommender.NewPop(split.Train),
	}
	rsvdCfg := mf.DefaultRSVDConfig()
	rsvdCfg.Factors = 40
	rsvdCfg.Epochs = 15
	if rsvd, err := mf.TrainRSVD(split.Train, rsvdCfg); err == nil {
		models = append(models, rsvd)
	}
	for _, k := range []int{10, 100} {
		if psvd, err := mf.TrainPSVD(split.Train, mf.PSVDConfig{Factors: k, PowerIterations: 2, Seed: 23}); err == nil {
			models = append(models, psvd)
		}
	}

	ev := eval.NewEvaluator(split, 0)
	fmt.Printf("%-10s  %-18s %10s %10s %10s %10s\n",
		"model", "protocol", "precision", "f-measure", "coverage", "ltacc")
	for _, m := range models {
		for _, proto := range []eval.Protocol{eval.ProtocolAllUnrated, eval.ProtocolRatedTestItems} {
			recs := eval.RecommendWithProtocol(m, split, n, proto)
			rep := ev.Evaluate(m.Name(), recs, n)
			fmt.Printf("%-10s  %-18s %10.4f %10.4f %10.4f %10.4f\n",
				m.Name(), proto, rep.Precision, rep.FMeasure, rep.Coverage, rep.LTAccuracy)
		}
		fmt.Println()
	}
	fmt.Println("Expected shape (paper Figures 7/8): every model's precision jumps under the")
	fmt.Println("rated-test-items protocol — even Rand looks strong — while the all-unrated")
	fmt.Println("protocol preserves the real differences between models. The paper therefore")
	fmt.Println("reports all of its main results under the all-unrated-items protocol.")
}
