// Sparse setting: personalizing a non-personalized recommender.
//
// The paper's second headline result (Section V-B, Figure 6) is that in very
// sparse datasets such as MovieTweetings-200K, re-ranking a rating-prediction
// model is ineffective; instead, plugging the non-personalized Pop
// recommender into GANC as the accuracy component — personalized only through
// the learned θ^G preferences and the Dyn coverage recommender — yields a
// model that is competitive with latent-factor rankers on accuracy while far
// exceeding them on coverage.
//
// This example reproduces that comparison on the synthetic MT-200K stand-in,
// assembling every model through the Pipeline/Engine API.
//
// Run with:
//
//	go run ./examples/sparse_tweets
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ganc"
)

func main() {
	const n = 5
	ctx := context.Background()

	data, err := ganc.GenerateMT200K(0.3)
	if err != nil {
		log.Fatal(err)
	}
	split := ganc.SplitByUser(data, 0.8, rand.New(rand.NewSource(13)))
	fmt.Printf("sparse dataset: %d users, %d items, density %.3f%%\n",
		data.NumUsers(), data.NumItems(), data.Density()*100)

	ev := ganc.NewEvaluator(split, 0)
	var reports []ganc.Report
	evaluate := func(e ganc.Engine) {
		recs, err := e.RecommendAll(ctx)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, ev.Evaluate(e.Name(), recs, n))
	}

	// Non-personalized and latent-factor baselines, all built by name from
	// the model registry: Pop, Rand, a PSVD ranker and the RSVD predictor
	// whose ranking accuracy collapses in sparse data.
	for _, name := range []string{"Pop", "Rand", "PSVD100", "RSVD"} {
		s, err := ganc.NewBaseScorer(name, split.Train, 13)
		if err != nil {
			log.Fatal(err)
		}
		evaluate(ganc.NewBaseEngine(s, split.Train, n))
	}

	// GANC(Pop, θ^G, Dyn): the paper's sparse-setting recipe — a generic
	// framework lets us swap the accuracy recommender to match the data.
	p, err := ganc.NewPipeline(split.Train,
		ganc.WithBaseNamed("Pop"),
		ganc.WithPreferences(ganc.PreferenceGeneralized),
		ganc.WithCoverage(ganc.CoverageDyn()),
		ganc.WithTopN(n),
		ganc.WithSampleSize(150),
		ganc.WithSeed(13))
	if err != nil {
		log.Fatal(err)
	}
	evaluate(p)

	fmt.Printf("\n%-26s %8s %8s %8s %8s %8s\n", "algorithm", "F@5", "S@5", "L@5", "C@5", "G@5")
	for _, rep := range reports {
		fmt.Printf("%-26s %8.4f %8.4f %8.4f %8.4f %8.4f\n",
			rep.Algorithm, rep.FMeasure, rep.StratRecall, rep.LTAccuracy, rep.Coverage, rep.Gini)
	}
	fmt.Println("\nExpected shape (paper Figure 6, MT-200K): RSVD's ranking accuracy is poor in")
	fmt.Println("sparse data; GANC built on Pop keeps accuracy close to Pop while covering far")
	fmt.Println("more of the catalog than Pop, PSVD or RSVD.")
}
