// Sparse setting: personalizing a non-personalized recommender.
//
// The paper's second headline result (Section V-B, Figure 6) is that in very
// sparse datasets such as MovieTweetings-200K, re-ranking a rating-prediction
// model is ineffective; instead, plugging the non-personalized Pop
// recommender into GANC as the accuracy component — personalized only through
// the learned θ^G preferences and the Dyn coverage recommender — yields a
// model that is competitive with latent-factor rankers on accuracy while far
// exceeding them on coverage.
//
// This example reproduces that comparison on the synthetic MT-200K stand-in.
//
// Run with:
//
//	go run ./examples/sparse_tweets
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ganc/internal/core"
	"ganc/internal/eval"
	"ganc/internal/longtail"
	"ganc/internal/mf"
	"ganc/internal/recommender"
	"ganc/internal/synth"
)

func main() {
	const n = 5

	cfg := synth.MT200K(0.3)
	data, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	split := data.SplitByUser(synth.Kappa(cfg.Name), rand.New(rand.NewSource(13)))
	fmt.Printf("sparse dataset: %d users, %d items, density %.3f%% (τ=%d)\n",
		data.NumUsers(), data.NumItems(), data.Density()*100, cfg.MinRatingsPerUser)

	ev := eval.NewEvaluator(split, 0)
	var reports []eval.Report

	// Non-personalized baselines.
	popRecs := recommender.RecommendAll(recommender.NewPop(split.Train), split.Train, n)
	reports = append(reports, ev.Evaluate("Pop", popRecs, n))
	randRecs := recommender.RecommendAll(recommender.NewRand(split.Train.NumItems(), 13), split.Train, n)
	reports = append(reports, ev.Evaluate("Rand", randRecs, n))

	// A latent-factor ranker for contrast (PSVD with 50 factors).
	psvd, err := mf.TrainPSVD(split.Train, mf.PSVDConfig{Factors: 50, PowerIterations: 2, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	psvdRecs := recommender.RecommendAll(
		&recommender.ScorerTopN{Scorer: psvd, NumItems: split.Train.NumItems()}, split.Train, n)
	reports = append(reports, ev.Evaluate(psvd.Name(), psvdRecs, n))

	// A rating-prediction model re-ranked directly (what standard re-rankers
	// would rely on): in sparse settings its ranking accuracy collapses.
	rsvdCfg := mf.DefaultRSVDConfig()
	rsvdCfg.Factors = 40
	rsvdCfg.Epochs = 15
	rsvdCfg.LearningRate = 0.01
	rsvd, err := mf.TrainRSVD(split.Train, rsvdCfg)
	if err != nil {
		log.Fatal(err)
	}
	rsvdRecs := recommender.RecommendAll(
		&recommender.ScorerTopN{Scorer: rsvd, NumItems: split.Train.NumItems()}, split.Train, n)
	reports = append(reports, ev.Evaluate("RSVD", rsvdRecs, n))

	// GANC(Pop, θ^G, Dyn): the paper's sparse-setting recipe — a generic
	// framework lets us swap the accuracy recommender to match the data.
	prefs, err := longtail.Estimate(longtail.ModelGeneralized, split.Train, nil, 0, 13)
	if err != nil {
		log.Fatal(err)
	}
	g, err := core.New(split.Train,
		core.NewPopAccuracy(split.Train, n),
		prefs,
		core.NewDynCoverage(split.Train.NumItems()),
		core.Config{N: n, SampleSize: 150, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	reports = append(reports, ev.Evaluate(g.Name(), g.Recommend(), n))

	fmt.Printf("\n%-26s %8s %8s %8s %8s %8s\n", "algorithm", "F@5", "S@5", "L@5", "C@5", "G@5")
	for _, rep := range reports {
		fmt.Printf("%-26s %8.4f %8.4f %8.4f %8.4f %8.4f\n",
			rep.Algorithm, rep.FMeasure, rep.StratRecall, rep.LTAccuracy, rep.Coverage, rep.Gini)
	}
	fmt.Println("\nExpected shape (paper Figure 6, MT-200K): RSVD's ranking accuracy is poor in")
	fmt.Println("sparse data; GANC built on Pop keeps accuracy close to Pop while covering far")
	fmt.Println("more of the catalog than Pop, PSVD or RSVD.")
}
