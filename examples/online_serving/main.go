// Online serving: one user at a time, no batch precomputation.
//
// The production story of this library: assemble a GANC pipeline, put it
// behind the HTTP server and answer GET /recommend?user=X by computing that
// single user's list on demand through the Engine interface — with an LRU
// cache, in-flight request coalescing and atomic engine swaps on retrain.
// This example runs the whole lifecycle in-process against a test server:
// cold request, cache hit, batch lookup, then a simulated retrain swap.
//
// Run with:
//
//	go run ./examples/online_serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"ganc"
)

func main() {
	data, err := ganc.GenerateML100K(0.3)
	if err != nil {
		log.Fatal(err)
	}
	split := ganc.SplitByUser(data, 0.8, rand.New(rand.NewSource(31)))
	fmt.Printf("dataset: %d users, %d items\n", data.NumUsers(), data.NumItems())

	// GANC(Pop, θ^G, Dyn) behind the serving layer. Nothing is precomputed.
	const n = 10
	p, err := ganc.NewPipeline(split.Train,
		ganc.WithBaseNamed("Pop"),
		ganc.WithTopN(n),
		ganc.WithSeed(31))
	if err != nil {
		log.Fatal(err)
	}
	srv, err := ganc.NewServer(split.Train, p, n)
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	user := split.Train.UserInterner().Key(0)

	// Cold request: computed online, only for this user.
	start := time.Now()
	body := get(ts.URL + "/recommend?user=" + user)
	fmt.Printf("\ncold   %-8s %8v  %s\n", user, time.Since(start).Round(time.Microsecond), body)

	// Warm request: served from the LRU cache.
	start = time.Now()
	get(ts.URL + "/recommend?user=" + user)
	fmt.Printf("cached %-8s %8v\n", user, time.Since(start).Round(time.Microsecond))

	// Batch endpoint: many users in one call.
	users := []string{split.Train.UserInterner().Key(1), split.Train.UserInterner().Key(2)}
	payload, _ := json.Marshal(map[string][]string{"users": users})
	resp, err := http.Post(ts.URL+"/recommend/batch", "application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	batch, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("batch  %v → %s\n", users, trim(batch, 120))

	// Simulated nightly retrain: swap in a new engine atomically. In-flight
	// requests finish against the old engine; new ones see version 2.
	p2, err := ganc.NewPipeline(split.Train,
		ganc.WithBaseNamed("Pop"),
		ganc.WithPreferences(ganc.PreferenceTFIDF),
		ganc.WithTopN(n),
		ganc.WithSeed(32))
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Update(p2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter Update: version=%d, info=%s\n", srv.Version(), trim([]byte(get(ts.URL+"/info")), 160))
	fmt.Printf("cache stats: %+v\n", srv.Stats())
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(bytes.TrimSpace(b))
}

func trim(b []byte, max int) string {
	s := string(bytes.TrimSpace(b))
	if len(s) > max {
		return s[:max] + "..."
	}
	return s
}
