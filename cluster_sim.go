package ganc

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"ganc/internal/dataset"
	"ganc/internal/simulate"
)

// Cluster scenario binding: the multi-node counterpart of
// NewScenarioSystem. A clusterSystem drives the real NewCluster assembly —
// router, shard servers, per-shard write-ahead logs and checkpoints —
// through the scenario runner's ShardedSystem interface, so cluster
// lifecycles (kill one shard mid-load, restart from snapshot + WAL, compare
// the recovered shard against a single-node shadow) are expressed as the
// same phase lists single-node scenarios use.

// ShardedScenarioSystem is the multi-node scenario-system abstraction
// re-exported from internal/simulate.
type ShardedScenarioSystem = simulate.ShardedSystem

// ReplicatedScenarioSystem is the replication-aware scenario-system
// abstraction re-exported from internal/simulate: a sharded system whose
// shards carry warm replicas, with promotion and rejoin choreography.
type ReplicatedScenarioSystem = simulate.ReplicatedSystem

// ReshardableScenarioSystem is the elastic scenario-system abstraction
// re-exported from internal/simulate: a sharded system whose ring can grow
// or shrink mid-load with a live migration.
type ReshardableScenarioSystem = simulate.ReshardableSystem

// Cluster scenario phase kinds, re-exported for scenario literals.
const (
	PhaseKillShard      = simulate.PhaseKillShard
	PhaseRestartShard   = simulate.PhaseRestartShard
	PhasePromoteReplica = simulate.PhasePromoteReplica
	PhaseRejoinReplica  = simulate.PhaseRejoinReplica
	PhaseAwaitPromotion = simulate.PhaseAwaitPromotion
	PhaseShardParity    = simulate.PhaseShardParity
)

// NewClusterScenarioSystem binds the NewCluster assembly to the scenario
// runner: a sharded primary with `shards` shard servers whose durable files
// (shard snapshots, write-ahead logs) live in dir, checkpointing every
// checkpointEvery ingested events per shard.
func NewClusterScenarioSystem(cfg SimSystemConfig, shards int, dir string, checkpointEvery int) ShardedScenarioSystem {
	return &clusterSystem{cfg: cfg.withDefaults(), shards: shards, dir: dir, checkpointEvery: checkpointEvery}
}

// NewReplicatedClusterScenarioSystem is NewClusterScenarioSystem with
// `replicas` warm replicas behind every shard, enabling the promotion and
// rejoin phases and the router's read failover during mid-load kills. Extra
// cluster options (WithWriteQuorum, WithAutoFailover, WithFailureDetection)
// are appended after the scenario's own, so hands-off failover drills can
// shape the cluster without a new constructor per knob.
func NewReplicatedClusterScenarioSystem(cfg SimSystemConfig, shards, replicas int, dir string, checkpointEvery int, extra ...ClusterOption) ReplicatedScenarioSystem {
	return &clusterSystem{cfg: cfg.withDefaults(), shards: shards, replicas: replicas, dir: dir, checkpointEvery: checkpointEvery, extra: extra}
}

// RunClusterScenario executes a scenario against a sharded primary with a
// single-node shadow: the cluster serves through its scatter-gather router,
// the shadow absorbs exactly the events routed to the scenario's drilled
// shard, and a restart-shard phase asserts the recovered shard's owned-user
// output is byte-identical to the shadow's.
func RunClusterScenario(ctx context.Context, sc Scenario, dir string, cfg SimSystemConfig, shards int) (*ScenarioResult, error) {
	r := &simulate.Runner{
		NewSystem: func() simulate.System {
			return NewClusterScenarioSystem(cfg, shards, dir, sc.CheckpointEvery)
		},
		NewShadow: func() simulate.System { return NewScenarioSystem(cfg) },
		Dir:       dir,
	}
	return r.Run(ctx, sc)
}

// RunReplicatedClusterScenario is RunClusterScenario with `replicas` warm
// replicas behind every shard: kill-primary drills keep serving through read
// failover, promote-replica phases re-point the shard at its freshest
// replica under a bumped epoch, and the owned-user parity contract against
// the single-node shadow is asserted across the promotion.
func RunReplicatedClusterScenario(ctx context.Context, sc Scenario, dir string, cfg SimSystemConfig, shards, replicas int, extra ...ClusterOption) (*ScenarioResult, error) {
	r := &simulate.Runner{
		NewSystem: func() simulate.System {
			return NewReplicatedClusterScenarioSystem(cfg, shards, replicas, dir, sc.CheckpointEvery, extra...)
		},
		NewShadow: func() simulate.System { return NewScenarioSystem(cfg) },
		Dir:       dir,
	}
	return r.Run(ctx, sc)
}

// clusterSystem implements simulate.ShardedSystem (and, with replicas > 0,
// simulate.ReplicatedSystem) over the facade Cluster.
type clusterSystem struct {
	cfg             SimSystemConfig
	shards          int
	replicas        int
	dir             string
	checkpointEvery int
	extra           []ClusterOption
	topN            int

	cluster *Cluster

	// ringMu guards rings, the OwnerAt cache of throwaway rings by shard
	// count.
	ringMu sync.Mutex
	rings  map[int]*Ring
}

// Train implements simulate.System: build the pipeline, shard-split it and
// stand the whole cluster (shards + router) up. Streaming ingestion is part
// of the cluster's standing configuration — every shard runs its
// write-ahead log from boot — so EnableIngest below only confirms it.
func (s *clusterSystem) Train(train *dataset.Dataset, topN int) error {
	p, err := NewPipeline(train,
		WithBaseNamed(s.cfg.Base),
		WithPreferences(s.cfg.Theta),
		WithTopN(topN),
		WithWorkers(s.cfg.Workers),
		WithSeed(s.cfg.Seed))
	if err != nil {
		return err
	}
	s.topN = topN
	opts := []ClusterOption{
		WithShards(s.shards),
		WithClusterDir(s.dir),
		WithClusterCheckpointEvery(s.checkpointEvery),
	}
	if s.replicas > 0 {
		opts = append(opts, WithReplicas(s.replicas))
	}
	if s.cfg.CacheCapacity > 0 {
		opts = append(opts, WithShardCacheCapacity(s.cfg.CacheCapacity))
	}
	if s.cfg.Metrics {
		opts = append(opts, WithClusterMetrics(NewMetricsRegistry()))
	}
	if NewAdmission(s.cfg.Admission) != nil {
		// Admission applies at the router — the surface scenarios drive — so
		// overload phases shed with the router's typed 429s.
		opts = append(opts, WithClusterAdmission(s.cfg.Admission))
	}
	opts = append(opts, s.extra...)
	c, err := NewCluster(p, opts...)
	if err != nil {
		return err
	}
	s.cluster = c
	return nil
}

// Handler implements simulate.System: the router's scatter-gather surface.
func (s *clusterSystem) Handler() (http.Handler, error) {
	if s.cluster == nil {
		return nil, fmt.Errorf("ganc: cluster scenario system is not serving (killed or untrained)")
	}
	return s.cluster.Handler(), nil
}

// Save implements simulate.System: checkpoint every shard into its own
// shard snapshot (the path argument names the single-node snapshot file and
// is ignored — shard snapshots live at the cluster's fixed per-shard
// paths).
func (s *clusterSystem) Save(string) error {
	if s.cluster == nil {
		return fmt.Errorf("ganc: cluster scenario system has nothing to save")
	}
	return s.cluster.SaveShards()
}

// Load implements simulate.System: restore every shard from its snapshot
// (killing live ones first), replaying each write-ahead-log suffix — the
// whole-cluster restart. Warm-start parity holds because checkpoint + WAL
// suffix reconstructs exactly the pre-restart state.
func (s *clusterSystem) Load(string) error {
	if s.cluster == nil {
		return fmt.Errorf("ganc: cluster scenario system was never trained")
	}
	for i := 0; i < s.cluster.NumShards(); i++ {
		if s.cluster.ShardVersion(i) > 0 {
			if err := s.cluster.KillShard(i); err != nil {
				return err
			}
		}
		if _, err := s.cluster.RestartShard(i); err != nil {
			return err
		}
	}
	return nil
}

// EnableIngest implements simulate.System. The cluster's durability stack
// (per-shard WAL + checkpoints) is wired at construction, so this only
// validates the request: a cluster cannot run the shadow's pure in-memory
// mode.
func (s *clusterSystem) EnableIngest(logPath, checkpointPath string, every int) error {
	if s.cluster == nil {
		return fmt.Errorf("ganc: cannot enable ingestion before training")
	}
	if every != s.checkpointEvery {
		return fmt.Errorf("ganc: cluster checkpoint cadence is fixed at construction (%d), cannot change to %d", s.checkpointEvery, every)
	}
	return nil
}

// Ingest implements simulate.System: apply a batch directly, partitioned by
// the ring exactly as the router would partition it.
func (s *clusterSystem) Ingest(ctx context.Context, events []IngestEvent) error {
	if s.cluster == nil {
		return fmt.Errorf("ganc: cluster scenario system is not ingesting")
	}
	perShard := make(map[int][]IngestEvent)
	for _, ev := range events {
		owner := s.cluster.OwnerShard(ev.User)
		perShard[owner] = append(perShard[owner], ev)
	}
	for shard, evs := range perShard {
		_, ing, err := s.cluster.shardState(shard)
		if err != nil {
			return err
		}
		if ing == nil {
			return fmt.Errorf("ganc: shard %d is not ingesting (killed?)", shard)
		}
		if _, err := ing.Apply(ctx, evs); err != nil {
			return err
		}
	}
	return nil
}

// Recover implements simulate.System. Load already replayed every shard's
// write-ahead-log suffix, so there is nothing left to recover.
func (s *clusterSystem) Recover() (int, error) { return 0, nil }

// Kill implements simulate.System: crash every shard. Durable files survive
// for Load; the cluster's listeners' addresses stay reserved for restarts.
func (s *clusterSystem) Kill() error {
	if s.cluster == nil {
		return nil
	}
	var firstErr error
	for i := 0; i < s.cluster.NumShards(); i++ {
		if s.cluster.ShardVersion(i) == 0 {
			continue
		}
		if err := s.cluster.KillShard(i); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Fingerprint implements simulate.System: the union of every shard's
// owned-user fingerprint — each user appears exactly once, under its owning
// shard's state.
func (s *clusterSystem) Fingerprint(ctx context.Context) ([]byte, error) {
	if s.cluster == nil {
		return nil, fmt.Errorf("ganc: cannot fingerprint an untrained cluster system")
	}
	var lines []string
	for i := 0; i < s.cluster.NumShards(); i++ {
		fp, err := s.ShardFingerprint(ctx, i)
		if err != nil {
			return nil, err
		}
		if len(fp) > 0 {
			lines = append(lines, strings.Split(string(fp), "\n")...)
		}
	}
	sort.Strings(lines)
	return []byte(strings.Join(lines, "\n")), nil
}

// NumShards implements simulate.ShardedSystem.
func (s *clusterSystem) NumShards() int {
	if s.cluster == nil {
		return s.shards
	}
	return s.cluster.NumShards()
}

// ShardOwner implements simulate.ShardedSystem.
func (s *clusterSystem) ShardOwner(userKey string) int { return s.cluster.OwnerShard(userKey) }

// KillShard implements simulate.ShardedSystem.
func (s *clusterSystem) KillShard(shard int) error { return s.cluster.KillShard(shard) }

// RestartShard implements simulate.ShardedSystem.
func (s *clusterSystem) RestartShard(shard int) (int, error) { return s.cluster.RestartShard(shard) }

// NumReplicas implements simulate.ReplicatedSystem.
func (s *clusterSystem) NumReplicas() int { return s.replicas }

// PromoteReplica implements simulate.ReplicatedSystem: promote the freshest
// live replica of the (killed) shard to primary under a bumped ring epoch.
func (s *clusterSystem) PromoteReplica(shard int) (uint64, error) {
	if s.cluster == nil {
		return 0, fmt.Errorf("ganc: cannot promote in an untrained cluster system")
	}
	return s.cluster.Promote(shard)
}

// RejoinAsReplica implements simulate.ReplicatedSystem: boot the shard's
// dead ex-primary as a replica of the promoted primary.
func (s *clusterSystem) RejoinAsReplica(shard int) (int, error) {
	if s.cluster == nil {
		return 0, fmt.Errorf("ganc: cannot rejoin in an untrained cluster system")
	}
	return s.cluster.RejoinAsReplica(shard)
}

// Epoch implements simulate.EpochReporter: the cluster's current ring epoch,
// so await-promotion phases can observe a detector-triggered promotion.
func (s *clusterSystem) Epoch() uint64 {
	if s.cluster == nil {
		return 0
	}
	return s.cluster.Epoch()
}

// ReplicaLag implements simulate.ReplicatedSystem.
func (s *clusterSystem) ReplicaLag(shard int) uint64 {
	if s.cluster == nil {
		return 0
	}
	return s.cluster.ReplicaLag(shard)
}

// Reshard implements simulate.ReshardableSystem: grow or shrink the live
// cluster to target shards with a staged migration and cutover.
func (s *clusterSystem) Reshard(target int) (*ReshardStats, error) {
	if s.cluster == nil {
		return nil, fmt.Errorf("ganc: cannot reshard an untrained cluster system")
	}
	return s.cluster.Reshard(target)
}

// OwnerAt implements simulate.ReshardableSystem: the shard that owns userKey
// in a ring of the given shard count. Ownership is a pure function of the
// shard-ID set — neither the epoch nor the addresses are hashed — so a
// throwaway ring over IDs 0..shards-1 answers for any topology, past or
// future (the ring-delta unit tests in internal/cluster pin this property).
func (s *clusterSystem) OwnerAt(userKey string, shards int) int {
	if shards <= 0 {
		return -1
	}
	s.ringMu.Lock()
	r, ok := s.rings[shards]
	if !ok {
		infos := make([]ShardInfo, shards)
		for i := range infos {
			infos[i] = ShardInfo{ID: i, Addr: fmt.Sprintf("owner-at:%d", i)}
		}
		ring, err := NewRing(1, infos)
		if err != nil {
			s.ringMu.Unlock()
			return -1
		}
		if s.rings == nil {
			s.rings = make(map[int]*Ring)
		}
		s.rings[shards] = ring
		r = ring
	}
	s.ringMu.Unlock()
	return r.Owner(userKey)
}

// ShardFingerprint implements simulate.ShardedSystem: the shard's current
// state swept on a throwaway clone, restricted to the users the ring
// assigns to it. The sweep deliberately covers the whole universe even
// though only the owned users' lines survive: the OSLG batch sweep evolves
// Dyn coverage state across users in order, so a subset sweep would produce
// different lists than the single-node shadow's full sweep — the filter
// must come after the sweep for the byte-identical parity contract to hold.
func (s *clusterSystem) ShardFingerprint(ctx context.Context, shard int) ([]byte, error) {
	pipe, ing, err := s.cluster.shardState(shard)
	if err != nil {
		return nil, err
	}
	if pipe == nil {
		return nil, fmt.Errorf("ganc: cannot fingerprint dead shard %d", shard)
	}
	return fingerprintPipeline(ctx, pipe, ing, func(userKey string) bool {
		return s.cluster.OwnerShard(userKey) == shard
	})
}
