package ganc

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"testing"

	"ganc/internal/recommender"
)

// Reduced-precision equivalence policy (DESIGN.md §12). Pointwise Score at
// float64 is the reference; the f32 and int8 bulk tiers are not bit-identical
// to it, they are held to the documented tolerances below instead:
//
//   - per-score error, measured relative to the user's full-catalog score
//     range: ≤ f32ScoreTol for the float32 tier (kernel rounding only) and
//     ≤ int8ScoreTol for the int8 tier (symmetric per-row quantization at
//     127 levels);
//   - ranking agreement: the mean top-10 overlap with the float64 oracle
//     across sampled users must stay above the per-tier floor.
const (
	f32ScoreTol    = 1e-3
	int8ScoreTol   = 0.10
	f32OverlapMin  = 0.90
	int8OverlapMin = 0.50
	equivTopN      = 10
)

// tieredScorer is the shape shared by the factor models with a
// reduced-precision bulk path (RSVD, PSVD, CofiModel).
type tieredScorer interface {
	Scorer
	SetPrecision(ScoringPrecision)
	ScoringPrecision() ScoringPrecision
	ScoreUser(UserID, []ItemID, []float64)
	ScoreUser32(UserID, []ItemID, []float32)
}

func smallRSVDConfig() RSVDConfig {
	cfg := DefaultRSVDConfig()
	cfg.Factors = 16
	cfg.Epochs = 6
	cfg.Seed = 3
	return cfg
}

// trainTieredScorers fits one small instance of every tiered model on train.
func trainTieredScorers(t *testing.T, train *Dataset) map[string]tieredScorer {
	t.Helper()
	rsvd, err := TrainRSVD(train, smallRSVDConfig())
	if err != nil {
		t.Fatal(err)
	}
	psvd, err := TrainPSVD(train, PSVDConfig{Factors: 16, PowerIterations: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cofi, err := TrainCofi(train, CofiConfig{
		Factors: 16, Regularization: 0.05, LearningRate: 0.02,
		Epochs: 4, InitStd: 0.1, Seed: 3, PairsPerUser: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]tieredScorer{"RSVD": rsvd, "PSVD": psvd, "CofiRank": cofi}
}

// sampleUsers returns up to max users spread evenly across [0, numUsers).
func sampleUsers(numUsers, max int) []UserID {
	if numUsers < max {
		max = numUsers
	}
	out := make([]UserID, 0, max)
	for k := 0; k < max; k++ {
		out = append(out, UserID(k*numUsers/max))
	}
	return out
}

// fullCatalog returns the identity item slice [0, numItems).
func fullCatalog(numItems int) []ItemID {
	catalog := make([]ItemID, numItems)
	for i := range catalog {
		catalog[i] = ItemID(i)
	}
	return catalog
}

// overlapFrac returns the fraction of oracle's items present in got.
func overlapFrac(oracle, got TopNSet) float64 {
	if len(oracle) == 0 {
		return 1
	}
	in := make(map[ItemID]bool, len(got))
	for _, i := range got {
		in[i] = true
	}
	hits := 0
	for _, i := range oracle {
		if in[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(oracle))
}

// TestReducedPrecisionBulkScoreTolerance pins the numeric half of the policy:
// bulk float64 scores are bit-identical to Score at the default tier, and the
// f32/int8 tiers stay within their documented relative tolerances.
func TestReducedPrecisionBulkScoreTolerance(t *testing.T) {
	split := pipelineFixture(t)
	train := split.Train
	catalog := fullCatalog(train.NumItems())
	users := sampleUsers(train.NumUsers(), 20)

	for name, m := range trainTieredScorers(t, train) {
		ref := make(map[UserID][]float64, len(users))
		for _, u := range users {
			buf := make([]float64, len(catalog))
			m.ScoreUser(u, catalog, buf)
			for k, i := range catalog {
				if buf[k] != m.Score(u, i) {
					t.Fatalf("%s: f64 bulk score of (u=%d, i=%d) = %v differs from Score = %v",
						name, u, i, buf[k], m.Score(u, i))
				}
			}
			ref[u] = buf
		}
		tiers := []struct {
			p   ScoringPrecision
			tol float64
		}{
			{PrecisionF32, f32ScoreTol},
			{PrecisionInt8, int8ScoreTol},
		}
		for _, tier := range tiers {
			m.SetPrecision(tier.p)
			got32 := make([]float32, len(catalog))
			got64 := make([]float64, len(catalog))
			worstRel := 0.0
			for _, u := range users {
				exact := ref[u]
				lo, hi := exact[0], exact[0]
				for _, s := range exact {
					lo, hi = math.Min(lo, s), math.Max(hi, s)
				}
				span := hi - lo
				if span == 0 {
					span = 1
				}
				m.ScoreUser32(u, catalog, got32)
				m.ScoreUser(u, catalog, got64)
				for k := range catalog {
					if rel := math.Abs(float64(got32[k])-exact[k]) / span; rel > worstRel {
						worstRel = rel
					}
					// The float64 bulk path serves the same tier (converted),
					// never a mix of tiers.
					if got64[k] != float64(got32[k]) {
						t.Fatalf("%s at %v: f64 bulk path diverged from the 32-bit path at item %d", name, tier.p, k)
					}
				}
			}
			t.Logf("%s at %v: worst per-score error %.2e of range (tolerance %.0e)", name, tier.p, worstRel, tier.tol)
			if worstRel > tier.tol {
				t.Errorf("%s at %v: worst per-score error %.3g of range exceeds tolerance %g", name, tier.p, worstRel, tier.tol)
			}
		}
		m.SetPrecision(PrecisionF64)
	}
}

// TestReducedPrecisionTopNAgreement pins the ranking half of the policy: the
// candidate-pipeline top-10 lists of the f32 and int8 tiers overlap the
// float64 oracle's above the per-tier floors.
func TestReducedPrecisionTopNAgreement(t *testing.T) {
	split := pipelineFixture(t)
	train := split.Train
	catalog := fullCatalog(train.NumItems())
	users := sampleUsers(train.NumUsers(), 40)

	for name, m := range trainTieredScorers(t, train) {
		topn := &recommender.ScorerTopN{Scorer: m, NumItems: train.NumItems()}
		oracle := make(map[UserID]TopNSet, len(users))
		for _, u := range users {
			oracle[u] = topn.RecommendFrom(u, equivTopN, catalog)
		}
		tiers := []struct {
			p     ScoringPrecision
			floor float64
		}{
			{PrecisionF32, f32OverlapMin},
			{PrecisionInt8, int8OverlapMin},
		}
		for _, tier := range tiers {
			m.SetPrecision(tier.p)
			sum := 0.0
			for _, u := range users {
				sum += overlapFrac(oracle[u], topn.RecommendFrom(u, equivTopN, catalog))
			}
			mean := sum / float64(len(users))
			t.Logf("%s at %v: mean top-%d overlap with f64 oracle %.3f (floor %.2f)", name, tier.p, equivTopN, mean, tier.floor)
			if mean < tier.floor {
				t.Errorf("%s at %v: mean top-%d overlap %.3f below floor %.2f", name, tier.p, equivTopN, mean, tier.floor)
			}
		}
		m.SetPrecision(PrecisionF64)
	}
}

// TestPipelineScoringPrecisionTiers runs the same agreement check end to end
// through the facade: pipelines assembled with WithScoringPrecision(f32/int8)
// serve lists that overlap the float64 pipeline's. Stat coverage keeps the
// sweep stateless, so every list is deterministic.
func TestPipelineScoringPrecisionTiers(t *testing.T) {
	split := pipelineFixture(t)
	ctx := context.Background()
	users := sampleUsers(split.Train.NumUsers(), 30)

	build := func(p ScoringPrecision) *Pipeline {
		t.Helper()
		m, err := TrainRSVD(split.Train, smallRSVDConfig())
		if err != nil {
			t.Fatal(err)
		}
		pl, err := NewPipeline(split.Train,
			WithBase(m),
			WithCoverage(CoverageStat()),
			WithTopN(equivTopN),
			WithSeed(7),
			WithScoringPrecision(p))
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}

	ref := build(PrecisionF64)
	oracle := make(map[UserID]TopNSet, len(users))
	for _, u := range users {
		set, err := ref.RecommendUser(ctx, u, 0)
		if err != nil {
			t.Fatal(err)
		}
		oracle[u] = set
	}
	tiers := []struct {
		p     ScoringPrecision
		floor float64
	}{
		{PrecisionF32, f32OverlapMin},
		{PrecisionInt8, int8OverlapMin},
	}
	for _, tier := range tiers {
		pl := build(tier.p)
		sum := 0.0
		for _, u := range users {
			set, err := pl.RecommendUser(ctx, u, 0)
			if err != nil {
				t.Fatal(err)
			}
			sum += overlapFrac(oracle[u], set)
		}
		mean := sum / float64(len(users))
		t.Logf("pipeline at %v: mean top-%d overlap with f64 pipeline %.3f (floor %.2f)", tier.p, equivTopN, mean, tier.floor)
		if mean < tier.floor {
			t.Errorf("pipeline at %v: mean top-%d overlap %.3f below floor %.2f", tier.p, equivTopN, mean, tier.floor)
		}
	}
}

// TestPrecisionSnapshotRoundTrip verifies the versioned persistence of the
// tiers: a model snapshot carries its precision and f32 factor section, and a
// full engine snapshot restores a pipeline that serves identical lists.
func TestPrecisionSnapshotRoundTrip(t *testing.T) {
	split := pipelineFixture(t)
	train := split.Train
	catalog := fullCatalog(train.NumItems())
	users := sampleUsers(train.NumUsers(), 10)

	m, err := TrainRSVD(train, smallRSVDConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.SetPrecision(PrecisionF32)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadRSVD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.ScoringPrecision(); got != PrecisionF32 {
		t.Fatalf("reloaded RSVD serves %v, want %v", got, PrecisionF32)
	}
	a, b := make([]float32, len(catalog)), make([]float32, len(catalog))
	for _, u := range users {
		m.ScoreUser32(u, catalog, a)
		m2.ScoreUser32(u, catalog, b)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("reloaded RSVD f32 score of (u=%d, i=%d) = %v differs from original %v", u, k, b[k], a[k])
			}
		}
	}

	// Engine-level: an int8 pipeline round-trips through Save/LoadEngine
	// (the section persists the f32 blocks; int8 codes re-quantize
	// deterministically at load).
	ctx := context.Background()
	base, err := TrainRSVD(train, smallRSVDConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPipeline(train,
		WithBase(base),
		WithCoverage(CoverageStat()),
		WithTopN(equivTopN),
		WithSeed(7),
		WithScoringPrecision(PrecisionInt8))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "engine.snapshot")
	if err := pl.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users {
		want, err := pl.RecommendUser(ctx, u, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.RecommendUser(ctx, u, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("user %d: reloaded engine list length %d != %d", u, len(got), len(want))
		}
		for k := range want {
			if want[k] != got[k] {
				t.Fatalf("user %d: reloaded int8 engine diverged at rank %d: %d != %d", u, k, got[k], want[k])
			}
		}
	}
}
