module ganc

go 1.24
