package ganc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ganc/internal/admit"
	"ganc/internal/cluster"
	"ganc/internal/ingest"
	"ganc/internal/obs"
	"ganc/internal/serve"
)

// Cluster facade: stand a sharded serving tier up in one process — N shard
// servers, each bootstrapped from a shard-scoped snapshot (SaveShard) with
// its own write-ahead log and checkpoint cadence, behind a consistent-hash
// scatter-gather router from internal/cluster. Users are partitioned by the
// hash ring; every shard holds the full model state but serves (and caches,
// and ingests) only its owned users, so the cluster's aggregate cache and
// compute capacity scale with the shard count. DESIGN.md §10 documents the
// architecture, the hash-ring epoch rules and the failure semantics;
// cmd/gancd runs the same roles as separate processes.

// Cluster re-exported types from internal/cluster, so drivers and tests can
// partition work exactly the way the router does.
type (
	// Ring is the consistent-hash user-sharding ring.
	Ring = cluster.Ring
	// ShardInfo describes one shard of a ring (ID + address).
	ShardInfo = cluster.ShardInfo
	// Router is the scatter-gather HTTP router.
	Router = cluster.Router
	// RouterConfig assembles a Router over an existing ring.
	RouterConfig = cluster.RouterConfig
	// ClusterInfoResponse is the router's aggregated /info payload.
	ClusterInfoResponse = cluster.InfoResponse
	// ClusterHealthResponse is the router's aggregated /health payload,
	// including per-shard admission rows when shards shed.
	ClusterHealthResponse = cluster.HealthResponse
	// ShardAdmissionStatus is one shard's admission row in the router's
	// aggregated /health: shed counts and limiter saturation.
	ShardAdmissionStatus = cluster.ShardAdmission
	// ReplicaHealthStatus is one replica's liveness/lag row in the router's
	// aggregated /health.
	ReplicaHealthStatus = cluster.ReplicaHealth
	// ReplicationStatus is a node's replication role and cursor/lag report,
	// exposed through /health and the ganc_replication_* metric series.
	ReplicationStatus = serve.ReplicationStatus
	// ReplicaApplier is the replica-side replication endpoint: it applies
	// the primary's committed batches behind POST /replicate, sequenced by
	// the shard's write-ahead-log cursor (cmd/gancd's replica role mounts
	// one; NewCluster wires them automatically).
	ReplicaApplier = cluster.ReplicaApplier
	// Shipper is the primary-side replication half: it ships every committed
	// batch (via WithCommitHook) to the shard's replicas and catches
	// stragglers up from the write-ahead log.
	Shipper = cluster.Shipper
	// ShipperConfig configures NewShipper.
	ShipperConfig = cluster.ShipperConfig
	// MigrationApplier is the destination-side live-migration endpoint: it
	// applies per-user history slices behind POST /migrate during a reshard,
	// sequenced per user with duplicate and gap detection (every shard
	// primary mounts one; Reshard drives them).
	MigrationApplier = cluster.MigrationApplier
	// UserMove is one user's ownership change between two ring epochs.
	UserMove = cluster.UserMove
	// ReshardStats summarizes one completed Reshard: shard counts, the new
	// epoch, users moved and migrated, events migrated, double-dispatched
	// reads and the cutover window width.
	ReshardStats = cluster.ReshardStats
	// FailureDetector is the shared liveness sampler: it probes every node's
	// /health on an interval, caches the cluster-liveness view the router
	// fails over by, and raises suspicion after consecutive missed probes
	// (NewCluster wires one automatically on replicated clusters).
	FailureDetector = cluster.Detector
	// FailureDetectorConfig configures NewFailureDetector.
	FailureDetectorConfig = cluster.DetectorConfig
	// NodeLiveness is one node's row in the detector's cached view.
	NodeLiveness = cluster.NodeLiveness
)

// Cluster error sentinels re-exported from internal/cluster.
var (
	// ErrShardUnavailable marks a shard unreachable within the retry budget.
	ErrShardUnavailable = cluster.ErrShardUnavailable
	// ErrBadPeerList marks a malformed -peers value.
	ErrBadPeerList = cluster.ErrBadPeers
)

// ErrReplicaRejoin marks a rejoin attempt whose shard snapshot is ahead of
// the node's own write-ahead log: replaying would assign file sequence
// numbers that disagree with the cluster's global cursor, silently forking
// the shard's history. The node needs a fresh WAL-complete snapshot instead
// (operationally: re-split the shard).
var ErrReplicaRejoin = errors.New("ganc: shard snapshot is ahead of the rejoining node's write-ahead log")

// NewRing builds a consistent-hash ring (epoch, default virtual-node count)
// over the given shards.
func NewRing(epoch uint64, shards []ShardInfo) (*Ring, error) {
	return cluster.NewRing(epoch, 0, shards)
}

// ParsePeers parses a comma-separated shard address list into ring shard
// descriptors with positional IDs.
func ParsePeers(list string) ([]ShardInfo, error) { return cluster.ParsePeers(list) }

// ParsePeerTopology parses a replica-aware peer list: each comma-separated
// entry is "primary" or "primary+replica1+replica2".
func ParsePeerTopology(list string) ([]ShardInfo, error) { return cluster.ParsePeerTopology(list) }

// NewRouter builds a scatter-gather router over a ring whose shards carry
// addresses.
func NewRouter(cfg RouterConfig) (*Router, error) { return cluster.NewRouter(cfg) }

// NewReplicaApplier builds the replica-side applier for one shard at a ring
// epoch, applying replicated batches into the node's ingestor. Mount its
// Handler at POST /replicate next to the node's serving surface.
func NewReplicaApplier(shard int, epoch uint64, ing *Ingestor) *ReplicaApplier {
	return cluster.NewReplicaApplier(shard, epoch, ing)
}

// NewShipper builds the primary-side replication shipper. Wire its Commit
// method into the shard's ingestor with WithCommitHook, and call Resync
// after write-ahead-log recovery so it adopts each replica's true cursor.
func NewShipper(cfg ShipperConfig) *Shipper { return cluster.NewShipper(cfg) }

// NewFailureDetector builds and starts a shared failure detector over a ring
// source. Hand it to RouterConfig.Detector so failed reads route by the
// cached liveness view; Close it when the router retires (cmd/gancd's router
// role runs one; NewCluster wires one automatically).
func NewFailureDetector(cfg FailureDetectorConfig) *FailureDetector { return cluster.NewDetector(cfg) }

// NewMigrationApplier builds the destination-side live-migration applier for
// one shard at a ring epoch, applying migrated user histories into the
// node's ingestor. Mount its Handler at POST /migrate next to the node's
// serving surface (NewCluster wires one into every shard primary).
func NewMigrationApplier(shard int, epoch uint64, ing *Ingestor) *MigrationApplier {
	return cluster.NewMigrationApplier(shard, epoch, ing)
}

// MovedUsers computes the ownership delta between two rings over the given
// user keys: every user whose owner changes, with its old and new shard.
func MovedUsers(old, next *Ring, keys []string) map[string]UserMove {
	return cluster.MovedUsers(old, next, keys)
}

// ClusterOption customizes a Cluster at construction time.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	shards          int
	replicas        int
	writeQuorum     int
	maxReplicaLag   int64
	autoFailover    bool
	detectInterval  time.Duration
	suspectAfter    int
	routerAddr      string
	dir             string
	cacheCap        int
	checkpointEvery int
	epoch           uint64
	retries         int
	metrics         *obs.Registry
	reqLog          *obs.RequestLogger
	routerAdmit     admit.Config
	shardAdmit      *admit.Config
}

// WithShards sets the shard count (default 3).
func WithShards(n int) ClusterOption {
	return func(c *clusterConfig) { c.shards = n }
}

// WithReplicas attaches n warm replicas to every shard (default 0). Each
// replica boots from the shard's snapshot, applies the primary's committed
// batches over /replicate, and serves reads when the router fails over; it
// never accepts client writes. Promotion (see Promote) turns the freshest
// replica into the shard's primary after a kill.
func WithReplicas(n int) ClusterOption {
	return func(c *clusterConfig) { c.replicas = n }
}

// WithWriteQuorum makes every shard's commits quorum-acknowledged: the
// ingest path acks a committed batch only after k of the shard's replicas
// hold it (bounded by the shipper's quorum timeout, after which the commit
// degrades to asynchronous catch-up). A quorum-acked write survives the loss
// of the primary plus any replicas beyond the k that acknowledged. Requires
// k ≤ the WithReplicas count; 0 (the default) keeps fire-and-forget
// shipping.
func WithWriteQuorum(k int) ClusterOption {
	return func(c *clusterConfig) { c.writeQuorum = k }
}

// WithAutoFailover turns on hands-off failover: the cluster's failure
// detector watches every primary, and sustained suspicion (the detector's
// consecutive-miss threshold) triggers an automatic Promote of the shard's
// freshest live replica followed by a ring republish — no operator call.
// Requires WithReplicas(n ≥ 1).
func WithAutoFailover() ClusterOption {
	return func(c *clusterConfig) { c.autoFailover = true }
}

// WithFailureDetection tunes the shared failure detector: the /health
// sampling interval and how many consecutive missed probes turn a node
// suspected (defaults 250ms and 3 — suspicion after ~750ms of sustained
// unreachability). The detector runs on every replicated cluster; this knob
// mainly serves chaos drills that want a tighter suspicion window.
func WithFailureDetection(interval time.Duration, suspectAfter int) ClusterOption {
	return func(c *clusterConfig) { c.detectInterval, c.suspectAfter = interval, suspectAfter }
}

// WithMaxReplicaLag bounds read failover staleness: a replica lagging more
// than lag committed events behind its primary is never chosen as a read
// target (default cluster.DefaultMaxReplicaLag; negative disables failover).
func WithMaxReplicaLag(lag int64) ClusterOption {
	return func(c *clusterConfig) { c.maxReplicaLag = lag }
}

// WithRouterAddr makes the cluster listen for router traffic on addr (e.g.
// ":8080"). Without it the router is reachable only through
// Cluster.Handler() — the in-process form tests and benchmarks mount
// themselves.
func WithRouterAddr(addr string) ClusterOption {
	return func(c *clusterConfig) { c.routerAddr = addr }
}

// WithClusterDir places the shard snapshots and write-ahead logs in dir
// (which must exist). Without it the cluster owns a temporary directory,
// removed on Close.
func WithClusterDir(dir string) ClusterOption {
	return func(c *clusterConfig) { c.dir = dir }
}

// WithShardCacheCapacity bounds every shard server's LRU cache — the
// per-node memory budget. The cluster's aggregate cache is shards × this.
func WithShardCacheCapacity(capacity int) ClusterOption {
	return func(c *clusterConfig) { c.cacheCap = capacity }
}

// WithClusterCheckpointEvery makes every shard checkpoint its snapshot after
// that many ingested events (0, the default, keeps the write-ahead log as
// the only durability between explicit SaveShards calls).
func WithClusterCheckpointEvery(every int) ClusterOption {
	return func(c *clusterConfig) { c.checkpointEvery = every }
}

// WithClusterEpoch sets the hash-ring epoch stamped into the shard
// snapshots and the router's ring (default 1). Bump it whenever the shard
// count changes.
func WithClusterEpoch(epoch uint64) ClusterOption {
	return func(c *clusterConfig) { c.epoch = epoch }
}

// WithRouterRetries sets the router's bounded retry budget per shard call
// (default 2).
func WithRouterRetries(retries int) ClusterOption {
	return func(c *clusterConfig) { c.retries = retries }
}

// WithClusterMetrics instruments the whole tier: the router registers its
// per-shard fan-out/retry/failure counters, epoch-mismatch gauges and
// per-route HTTP series on reg and mounts GET /metrics; every shard gets its
// own private registry with the full single-node catalog, scrapable on the
// shard's own address (registries must not be shared between servers).
func WithClusterMetrics(reg *MetricsRegistry) ClusterOption {
	return func(c *clusterConfig) { c.metrics = reg }
}

// WithClusterRequestLog emits one structured JSON line per router request to
// the logger (shard-level requests are not logged; enable per-shard logging
// by running shards as separate processes with cmd/gancd -request-log).
func WithClusterRequestLog(l *RequestLogger) ClusterOption {
	return func(c *clusterConfig) { c.reqLog = l }
}

// WithClusterAdmission applies admission control at the router: per-client
// rate limiting and a concurrency cap over the whole fan-out surface.
func WithClusterAdmission(cfg AdmissionConfig) ClusterOption {
	return func(c *clusterConfig) { c.routerAdmit = cfg }
}

// WithShardAdmission applies admission control on every shard server (each
// shard gets its own controller from cfg). The router's aggregated /health
// surfaces each shard's shed counts and limiter saturation.
func WithShardAdmission(cfg AdmissionConfig) ClusterOption {
	return func(c *clusterConfig) { cc := cfg; c.shardAdmit = &cc }
}

// commitRelay is the indirection between an ingestor's commit hook (fixed at
// construction) and the shipper that consumes it (replaced on promotion): the
// hook calls through an atomic pointer, so a replica's ingestor can start
// shipping the moment the node is promoted, without rebuilding the ingestor.
type commitRelay struct {
	fn atomic.Pointer[func(firstSeq uint64, events []IngestEvent)]
}

// set installs (or, with nil, removes) the relay's target.
func (r *commitRelay) set(fn func(firstSeq uint64, events []IngestEvent)) {
	if fn == nil {
		r.fn.Store(nil)
		return
	}
	r.fn.Store(&fn)
}

// invoke forwards a committed batch to the current target, if any.
func (r *commitRelay) invoke(firstSeq uint64, events []IngestEvent) {
	if f := r.fn.Load(); f != nil {
		(*f)(firstSeq, events)
	}
}

// replicaNode is one warm replica of a shard: the same restored pipeline,
// server and ingestor as a primary, plus the /replicate applier — but no
// client write path (WithoutIngestSink) and no automatic checkpoints. A dead
// node (nil pipe) keeps its address and write-ahead log so RejoinAsReplica
// can bring it back.
type replicaNode struct {
	addr    string
	walPath string

	pipe    *Pipeline
	srv     *Server
	ing     *Ingestor
	hs      *http.Server
	applier *cluster.ReplicaApplier
	relay   *commitRelay
}

// clusterShard is one in-process shard: its current primary's restored
// pipeline, server, ingestor and HTTP listener, plus its replica set and the
// replication shipper. A killed primary keeps its paths and address (nil
// runtime fields) so RestartShard — or Promote — can recover the shard.
type clusterShard struct {
	id       int
	addr     string
	snapPath string
	walPath  string

	pipe     *Pipeline
	srv      *Server
	ing      *Ingestor
	hs       *http.Server
	relay    *commitRelay
	migrator *cluster.MigrationApplier

	replicas []*replicaNode
	shipper  *cluster.Shipper
}

// replicaAddrs lists the shard's current replica addresses.
func (sh *clusterShard) replicaAddrs() []string {
	addrs := make([]string, len(sh.replicas))
	for i, rep := range sh.replicas {
		addrs[i] = rep.addr
	}
	return addrs
}

// Cluster is an in-process sharded serving tier: N shard servers behind a
// scatter-gather router. Construct with NewCluster; drive it through
// Handler() (or the WithRouterAddr listener); tear it down with Close.
type Cluster struct {
	cfg     clusterConfig
	router  *Router
	shards  []*clusterShard
	topN    int
	ownsDir bool

	// ring is the published hash ring, held atomically: read paths (owner
	// lookups, the detector's sampling loop) load it lock-free while Promote
	// and Reshard republish it.
	ring atomic.Pointer[Ring]

	// detector is the shared failure detector (replicated clusters only): the
	// router fails reads over by its cached view, and with WithAutoFailover
	// its suspicion callback drives promotion.
	detector *cluster.Detector

	// baselinePath is the pristine pre-split snapshot Reshard boots added
	// shards from; lineage records every shard count this cluster has ever
	// run, so loadShardNode accepts checkpoints stamped before a reshard;
	// reshardMu serializes topology changes — Promote, Reshard, kills and
	// rejoins all hold it, so the detector's automatic promotion cannot race
	// an operator-driven topology change.
	baselinePath string
	lineage      map[int]bool
	reshardMu    sync.Mutex

	routerLn net.Listener
	routerHS *http.Server
}

// NewCluster shard-splits a trained (snapshot-compatible) pipeline and
// stands the cluster up: each shard gets a shard-scoped snapshot
// (SaveShard), is restored from it exactly like a warm-started process,
// serves on its own loopback listener with streaming ingestion (per-shard
// write-ahead log, checkpoints back into its snapshot), and the router
// scatter-gathers over all of them.
func NewCluster(p *Pipeline, opts ...ClusterOption) (*Cluster, error) {
	if p == nil {
		return nil, fmt.Errorf("ganc: cluster requires a trained pipeline")
	}
	cfg := clusterConfig{shards: 3, epoch: 1, retries: 2}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.shards <= 0 {
		return nil, fmt.Errorf("ganc: cluster needs a positive shard count, got %d", cfg.shards)
	}
	if cfg.replicas < 0 {
		return nil, fmt.Errorf("ganc: cluster needs a non-negative replica count, got %d", cfg.replicas)
	}
	if cfg.writeQuorum < 0 || cfg.writeQuorum > cfg.replicas {
		return nil, fmt.Errorf("ganc: write quorum %d outside [0, %d replicas]", cfg.writeQuorum, cfg.replicas)
	}
	if cfg.autoFailover && cfg.replicas == 0 {
		return nil, fmt.Errorf("ganc: auto-failover requires at least one replica per shard")
	}
	c := &Cluster{cfg: cfg, topN: p.TopN()}
	if cfg.dir == "" {
		dir, err := os.MkdirTemp("", "ganc-cluster-*")
		if err != nil {
			return nil, fmt.Errorf("ganc: cluster work directory: %w", err)
		}
		c.cfg.dir = dir
		c.ownsDir = true
	}

	fail := func(err error) (*Cluster, error) {
		_ = c.Close()
		return nil, err
	}

	// The pristine pre-split snapshot is what a future Reshard boots added
	// shards from: full trained state, no stream history, no shard-slice
	// identity skew. Written once, before any shard can diverge.
	c.baselinePath = filepath.Join(c.cfg.dir, "baseline.snap")
	if err := p.SaveShard(c.baselinePath, ShardIdentity{ShardID: 0, NumShards: 1, RingEpoch: cfg.epoch}); err != nil {
		return fail(fmt.Errorf("ganc: saving baseline snapshot: %w", err))
	}
	c.lineage = map[int]bool{cfg.shards: true}

	// Bind every listener first — primaries and replicas alike — so the ring
	// carries final addresses.
	infos := make([]ShardInfo, cfg.shards)
	listeners := make([]net.Listener, cfg.shards)
	replicaLns := make([][]net.Listener, cfg.shards)
	var bound []net.Listener
	closeBound := func() {
		for _, l := range bound {
			l.Close()
		}
	}
	for i := 0; i < cfg.shards; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeBound()
			return fail(fmt.Errorf("ganc: shard %d listener: %w", i, err))
		}
		bound = append(bound, ln)
		listeners[i] = ln
		infos[i] = ShardInfo{ID: i, Addr: ln.Addr().String()}
		for r := 0; r < cfg.replicas; r++ {
			rln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				closeBound()
				return fail(fmt.Errorf("ganc: shard %d replica %d listener: %w", i, r, err))
			}
			bound = append(bound, rln)
			replicaLns[i] = append(replicaLns[i], rln)
			infos[i].Replicas = append(infos[i].Replicas, rln.Addr().String())
		}
	}
	ring, err := cluster.NewRing(cfg.epoch, 0, infos)
	if err != nil {
		closeBound()
		return fail(err)
	}
	c.ring.Store(ring)

	// Boot order per shard: replicas first, then the primary. A failed boot
	// closes its own listener; closeRest releases every listener a failed
	// construction never reached (Close, via fail, tears down booted nodes).
	type pendingBoot struct {
		ln   net.Listener
		boot func() error
		desc string
	}
	var boots []pendingBoot
	c.shards = make([]*clusterShard, cfg.shards)
	for i := 0; i < cfg.shards; i++ {
		sh := &clusterShard{
			id:       i,
			addr:     infos[i].Addr,
			snapPath: filepath.Join(c.cfg.dir, fmt.Sprintf("shard-%03d.snap", i)),
			walPath:  filepath.Join(c.cfg.dir, fmt.Sprintf("shard-%03d.wal", i)),
		}
		for r := 0; r < cfg.replicas; r++ {
			sh.replicas = append(sh.replicas, &replicaNode{
				addr:    infos[i].Replicas[r],
				walPath: filepath.Join(c.cfg.dir, fmt.Sprintf("shard-%03d-replica-%d.wal", i, r)),
			})
		}
		c.shards[i] = sh
		if err := p.SaveShard(sh.snapPath, ShardIdentity{ShardID: i, NumShards: cfg.shards, RingEpoch: cfg.epoch}); err != nil {
			closeBound()
			return fail(fmt.Errorf("ganc: shard-splitting snapshot for shard %d: %w", i, err))
		}
		sh, i := sh, i
		for r, rep := range sh.replicas {
			rep, r := rep, r
			boots = append(boots, pendingBoot{ln: replicaLns[i][r],
				boot: func() error { return c.bootReplica(sh, rep, replicaLns[i][r]) },
				desc: fmt.Sprintf("shard %d replica %d", i, r)})
		}
		boots = append(boots, pendingBoot{ln: listeners[i],
			boot: func() error { return c.bootShard(sh, listeners[i]) },
			desc: fmt.Sprintf("shard %d", i)})
	}
	for k, b := range boots {
		if err := b.boot(); err != nil {
			for _, rest := range boots[k+1:] {
				rest.ln.Close()
			}
			return fail(fmt.Errorf("ganc: booting %s: %w", b.desc, err))
		}
	}

	// Replicated clusters get the shared failure detector: the router reads
	// its cached view instead of probing per request, and with auto-failover
	// its suspicion callback promotes dead primaries without an operator.
	if cfg.replicas > 0 {
		var onSuspect func(shard int, addr string)
		if cfg.autoFailover {
			onSuspect = c.autoPromote
		}
		c.detector = cluster.NewDetector(cluster.DetectorConfig{
			Ring:             func() *Ring { return c.ring.Load() },
			Interval:         cfg.detectInterval,
			SuspectAfter:     cfg.suspectAfter,
			OnSuspectPrimary: onSuspect,
			Metrics:          c.cfg.metrics,
		})
	}

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Ring:          ring,
		Retries:       cfg.retries,
		Metrics:       c.cfg.metrics,
		RequestLog:    c.cfg.reqLog,
		Admission:     admit.New(c.cfg.routerAdmit),
		MaxReplicaLag: cfg.maxReplicaLag,
		Detector:      c.detector,
	})
	if err != nil {
		return fail(err)
	}
	c.router = rt

	if cfg.routerAddr != "" {
		ln, err := net.Listen("tcp", cfg.routerAddr)
		if err != nil {
			return fail(fmt.Errorf("ganc: router listener on %s: %w", cfg.routerAddr, err))
		}
		c.routerLn = ln
		c.routerHS = &http.Server{Handler: c.Handler()}
		go func() { _ = c.routerHS.Serve(ln) }()
	}
	return c, nil
}

// loadShardNode restores a shard-scoped snapshot and validates its identity
// against the cluster. The snapshot's ring epoch may be older than the
// cluster's current epoch — promotion and resharding bump the epoch without
// rewriting checkpoints — and its shard count may be any count in the
// cluster's lineage: a checkpoint written before a reshard still names the
// old topology (a shard's user set after a migration legitimately differs
// from the original split). The returned identity is stamped up to the
// current topology before it reaches a server.
func (c *Cluster) loadShardNode(sh *clusterShard) (*Pipeline, ShardIdentity, error) {
	pipe, id, err := LoadShardEngine(sh.snapPath)
	if err != nil {
		return nil, ShardIdentity{}, err
	}
	if id.ShardID != sh.id || !(id.NumShards == c.cfg.shards || c.lineage[id.NumShards]) || id.RingEpoch > c.cfg.epoch {
		return nil, ShardIdentity{}, fmt.Errorf("snapshot %s identifies as shard %d/%d epoch %d, want %d/%d epoch ≤ %d",
			sh.snapPath, id.ShardID, id.NumShards, id.RingEpoch, sh.id, c.cfg.shards, c.cfg.epoch)
	}
	id.NumShards = c.cfg.shards
	id.RingEpoch = c.cfg.epoch
	return pipe, id, nil
}

// newShardServer builds the HTTP server for a shard node (primary and
// replica alike) with the cluster's shared serving options.
func (c *Cluster) newShardServer(pipe *Pipeline, id ShardIdentity) (*Server, error) {
	opts := []ServerOption{WithServerShardIdentity(id)}
	if c.cfg.cacheCap > 0 {
		opts = append(opts, WithServerCacheCapacity(c.cfg.cacheCap))
	}
	if c.cfg.metrics != nil {
		opts = append(opts, serve.WithMetrics(obs.NewRegistry()))
	}
	if c.cfg.shardAdmit != nil {
		opts = append(opts, serve.WithAdmission(admit.New(*c.cfg.shardAdmit)))
	}
	return NewServer(pipe.Train(), pipe, c.topN, opts...)
}

// bootShard restores a shard's primary from its snapshot, verifies the
// identity, attaches ingestion (and, when the shard has replicas, the
// replication shipper behind the commit hook) and starts serving on the
// listener.
func (c *Cluster) bootShard(sh *clusterShard, ln net.Listener) error {
	pipe, id, err := c.loadShardNode(sh)
	if err != nil {
		ln.Close()
		return err
	}
	srv, err := c.newShardServer(pipe, id)
	if err != nil {
		ln.Close()
		return err
	}
	relay := &commitRelay{}
	ingOpts := []IngestorOption{
		WithIngestLog(sh.walPath),
		WithIngestCheckpoint(sh.snapPath, c.cfg.checkpointEvery),
		WithCommitHook(relay.invoke),
	}
	ing, err := NewIngestor(srv, pipe, ingOpts...)
	if err != nil {
		ln.Close()
		return err
	}
	sh.pipe, sh.srv, sh.ing, sh.relay = pipe, srv, ing, relay
	if len(sh.replicas) > 0 {
		sh.shipper = cluster.NewShipper(cluster.ShipperConfig{
			Shard:       sh.id,
			Epoch:       c.cfg.epoch,
			WALPath:     sh.walPath,
			Replicas:    sh.replicaAddrs(),
			StartSeq:    pipe.ingestSeq,
			WriteQuorum: c.cfg.writeQuorum,
		})
		relay.set(sh.shipper.Commit)
		srv.SetReplicationProbe(sh.shipper.Status)
		// The shipper assumes every replica sits at the snapshot cursor; a
		// restarted primary's replicas are typically ahead (they kept applying
		// while it was down — or were never behind). One heartbeat round
		// adopts their true cursors before any commit ships.
		sh.shipper.Resync()
	}
	// Every primary is a potential migration destination: the /migrate
	// applier sits in front of the serving routes, same as a replica's
	// /replicate.
	sh.migrator = cluster.NewMigrationApplier(sh.id, c.cfg.epoch, ing)
	mux := http.NewServeMux()
	mux.Handle("/migrate", sh.migrator.Handler())
	mux.Handle(cluster.TailPath, cluster.NewWALTailHandler(sh.id, sh.walPath))
	mux.Handle("/", srv.Handler())
	sh.hs = &http.Server{Handler: mux}
	go func(hs *http.Server, ln net.Listener) { _ = hs.Serve(ln) }(sh.hs, ln)
	return nil
}

// bootReplica restores one replica from the shard's snapshot and starts it:
// the same serving stack as a primary, minus the client write path
// (WithoutIngestSink) and automatic checkpoints, plus the /replicate applier
// mounted in front of the serving routes. The caller is responsible for
// calling rep.ing.Recover() when the node's own write-ahead log may hold a
// suffix (the rejoin path).
func (c *Cluster) bootReplica(sh *clusterShard, rep *replicaNode, ln net.Listener) error {
	pipe, id, err := c.loadShardNode(sh)
	if err != nil {
		ln.Close()
		return err
	}
	srv, err := c.newShardServer(pipe, id)
	if err != nil {
		ln.Close()
		return err
	}
	relay := &commitRelay{}
	ing, err := NewIngestor(srv, pipe,
		WithIngestLog(rep.walPath),
		// Manual-only checkpoint capability (every=0): replicas never
		// checkpoint on their own — two nodes writing one snapshot file would
		// race — but a promoted ex-replica must be able to.
		WithIngestCheckpoint(sh.snapPath, 0),
		WithCommitHook(relay.invoke),
		WithoutIngestSink())
	if err != nil {
		ln.Close()
		return err
	}
	applier := cluster.NewReplicaApplier(sh.id, c.cfg.epoch, ing)
	srv.SetReplicationProbe(applier.Status)
	mux := http.NewServeMux()
	mux.Handle("/replicate", applier.Handler())
	// Replicas serve WAL-tail pulls too: after a promotion the shard's
	// primary is an ex-replica running this mux, and a rejoining node must
	// be able to fetch its missing tail from whoever is primary now.
	mux.Handle(cluster.TailPath, cluster.NewWALTailHandler(sh.id, rep.walPath))
	mux.Handle("/", srv.Handler())
	rep.pipe, rep.srv, rep.ing, rep.applier, rep.relay = pipe, srv, ing, applier, relay
	rep.hs = &http.Server{Handler: mux}
	go func(hs *http.Server, ln net.Listener) { _ = hs.Serve(ln) }(rep.hs, ln)
	return nil
}

// Handler returns the router's HTTP surface (for mounting on a test
// listener or an existing mux), with the cluster admin endpoints mounted
// under /admin/: POST /admin/reshard?target=N grows or shrinks the live
// ring (see Reshard).
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", c.router.Handler())
	mux.HandleFunc("/admin/reshard", c.handleReshard)
	return mux
}

// handleReshard answers POST /admin/reshard?target=N: it runs a live
// reshard to the requested shard count and reports the migration
// statistics. Refused reshards (bad target, dead shard, one already in
// flight) answer 409 with the error; a malformed target answers 400.
func (c *Cluster) handleReshard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		w.WriteHeader(http.StatusMethodNotAllowed)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "reshard requires POST"})
		return
	}
	target, err := strconv.Atoi(r.URL.Query().Get("target"))
	if err != nil {
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "missing or malformed ?target=N"})
		return
	}
	stats, err := c.Reshard(target)
	if err != nil {
		w.WriteHeader(http.StatusConflict)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		return
	}
	_ = json.NewEncoder(w).Encode(stats)
}

// Router returns the scatter-gather router.
func (c *Cluster) Router() *Router { return c.router }

// Ring returns the cluster's hash ring.
func (c *Cluster) Ring() *Ring { return c.ring.Load() }

// NumShards returns the shard count.
func (c *Cluster) NumShards() int {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	return len(c.shards)
}

// OwnerShard returns the shard index owning an external user key.
func (c *Cluster) OwnerShard(userKey string) int { return c.ring.Load().Owner(userKey) }

// ShardAddr returns shard i's listen address.
func (c *Cluster) ShardAddr(i int) string {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	return c.shards[i].addr
}

// RouterAddr returns the router's listen address, or "" when the cluster
// was built without WithRouterAddr.
func (c *Cluster) RouterAddr() string {
	if c.routerLn == nil {
		return ""
	}
	return c.routerLn.Addr().String()
}

// Dir returns the directory holding the shard snapshots and write-ahead
// logs.
func (c *Cluster) Dir() string { return c.cfg.dir }

// shardByIndex validates a shard index.
func (c *Cluster) shardByIndex(i int) (*clusterShard, error) {
	if i < 0 || i >= len(c.shards) {
		return nil, fmt.Errorf("ganc: shard %d out of range [0,%d)", i, len(c.shards))
	}
	return c.shards[i], nil
}

// shardState snapshots shard i's live pipeline and ingestor under the
// topology lock, so scenario drivers do not race a concurrent
// detector-triggered promotion swapping them.
func (c *Cluster) shardState(i int) (*Pipeline, *Ingestor, error) {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	sh, err := c.shardByIndex(i)
	if err != nil {
		return nil, nil, err
	}
	return sh.pipe, sh.ing, nil
}

// KillShard crashes shard i's primary: its listener and connections close,
// in-memory state drops, the write-ahead-log handle is released. Durable
// files (the shard snapshot and WAL) survive for RestartShard; replicas keep
// serving, so reads fail over while writes get the router's typed 503 until
// a restart or a promotion.
func (c *Cluster) KillShard(i int) error {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	return c.killShardLocked(i)
}

// killShardLocked is KillShard under an already-held topology lock (Reshard
// and Close hold it across several kills).
func (c *Cluster) killShardLocked(i int) error {
	sh, err := c.shardByIndex(i)
	if err != nil {
		return err
	}
	if sh.pipe == nil {
		return fmt.Errorf("ganc: shard %d is already dead", i)
	}
	if sh.shipper != nil {
		sh.relay.set(nil)
		sh.shipper.Close()
		sh.shipper = nil
	}
	var closeErr error
	if sh.hs != nil {
		closeErr = sh.hs.Close()
	}
	if sh.ing != nil {
		if err := sh.ing.Close(); err != nil && closeErr == nil {
			closeErr = err
		}
	}
	sh.pipe, sh.srv, sh.ing, sh.hs, sh.relay, sh.migrator = nil, nil, nil, nil, nil, nil
	return closeErr
}

// KillReplica crashes shard i's replica r: its listener and connections
// close, in-memory state drops, its write-ahead log survives on disk. The
// primary's shipper flips the replica to catch-up mode and retries in the
// background, so the shard's reported lag grows until RejoinAsReplica brings
// the node back — the lagging-replica half of the reshard × replication
// chaos drill.
func (c *Cluster) KillReplica(i, r int) error {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	sh, err := c.shardByIndex(i)
	if err != nil {
		return err
	}
	if r < 0 || r >= len(sh.replicas) {
		return fmt.Errorf("ganc: shard %d replica %d out of range [0,%d)", i, r, len(sh.replicas))
	}
	rep := sh.replicas[r]
	if rep.pipe == nil {
		return fmt.Errorf("ganc: shard %d replica %d is already dead", i, r)
	}
	return c.killReplica(rep)
}

// killReplica crashes one replica node (used by Close, Reshard teardown and
// KillReplica; callers hold the topology lock where it matters).
func (c *Cluster) killReplica(rep *replicaNode) error {
	if rep.pipe == nil {
		return nil
	}
	var closeErr error
	if rep.hs != nil {
		closeErr = rep.hs.Close()
	}
	if rep.ing != nil {
		if err := rep.ing.Close(); err != nil && closeErr == nil {
			closeErr = err
		}
	}
	rep.pipe, rep.srv, rep.ing, rep.hs, rep.applier, rep.relay = nil, nil, nil, nil, nil, nil
	return closeErr
}

// RestartShard brings a killed shard back on its original address: the
// pipeline is restored from the shard snapshot (the last checkpoint),
// ingestion re-attaches, and the write-ahead-log suffix past the checkpoint
// cursor is replayed. Returns how many events the replay recovered.
func (c *Cluster) RestartShard(i int) (replayed int, err error) {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	sh, err := c.shardByIndex(i)
	if err != nil {
		return 0, err
	}
	if sh.pipe != nil {
		return 0, fmt.Errorf("ganc: shard %d is still running (kill it first)", i)
	}
	// The old listener is closed, so the original port is free to rebind —
	// the ring's address for this shard must not change.
	ln, err := net.Listen("tcp", sh.addr)
	if err != nil {
		return 0, fmt.Errorf("ganc: rebinding shard %d on %s: %w", i, sh.addr, err)
	}
	if err := c.bootShard(sh, ln); err != nil {
		return 0, err
	}
	return sh.ing.Recover()
}

// Promote turns shard i's freshest live replica into its primary after a
// kill: the ring epoch bumps, the promoted node gains the client write path
// and a shipper over the remaining replica set (including the dead old
// primary's address, so a later RejoinAsReplica needs no further ring
// change), every surviving node adopts the new epoch, and the router is
// re-pointed at the new shard map. Returns the new epoch.
func (c *Cluster) Promote(i int) (uint64, error) {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	return c.promoteLocked(i)
}

// autoPromote is the detector's suspicion callback under WithAutoFailover:
// it re-checks, under the topology lock, that the suspected primary is
// actually dead at the address the suspicion was raised for — a restarted
// primary, a completed promotion or a false suspicion all make it a no-op —
// and then runs the regular promotion. Promotion failures (e.g. no live
// replica either) are dropped: the detector fires again next outage episode,
// and the router keeps failing reads over meanwhile.
func (c *Cluster) autoPromote(shard int, addr string) {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	sh, err := c.shardByIndex(shard)
	if err != nil || sh.pipe != nil || sh.addr != addr {
		return
	}
	_, _ = c.promoteLocked(shard)
}

// promoteLocked is Promote under an already-held topology lock.
func (c *Cluster) promoteLocked(i int) (uint64, error) {
	sh, err := c.shardByIndex(i)
	if err != nil {
		return 0, err
	}
	if sh.pipe != nil {
		return 0, fmt.Errorf("ganc: shard %d still has a live primary (kill it first)", i)
	}
	// Freshest live replica: the one with the highest applied cursor — any
	// other choice would discard committed events it has already applied.
	best := -1
	var bestSeq uint64
	for k, rep := range sh.replicas {
		if rep.pipe == nil {
			continue
		}
		if seq := rep.ing.Seq(); best < 0 || seq > bestSeq {
			best, bestSeq = k, seq
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("ganc: shard %d has no live replica to promote", i)
	}
	promoted := sh.replicas[best]
	c.cfg.epoch++
	epoch := c.cfg.epoch

	// Swap roles: the promoted node's runtime becomes the shard's primary;
	// the dead old primary keeps its address and WAL as a dead replica slot
	// for RejoinAsReplica.
	oldPrimary := &replicaNode{addr: sh.addr, walPath: sh.walPath}
	sh.replicas[best] = oldPrimary
	sh.addr, sh.walPath = promoted.addr, promoted.walPath
	sh.pipe, sh.srv, sh.ing, sh.hs, sh.relay = promoted.pipe, promoted.srv, promoted.ing, promoted.hs, promoted.relay

	// The promoted node starts accepting client writes and shipping commits;
	// its applier stays mounted but moves to the new epoch, so a stale
	// shipper from the demoted primary is refused with replicate_epoch.
	sh.srv.SetIngestSink(sh.ing)
	promoted.applier.SetEpoch(epoch)
	sh.shipper = cluster.NewShipper(cluster.ShipperConfig{
		Shard:       sh.id,
		Epoch:       epoch,
		WALPath:     sh.walPath,
		Replicas:    sh.replicaAddrs(),
		StartSeq:    bestSeq,
		WriteQuorum: c.cfg.writeQuorum,
	})
	sh.relay.set(sh.shipper.Commit)
	sh.srv.SetReplicationProbe(sh.shipper.Status)
	sh.shipper.Resync()

	// Every surviving node adopts the new epoch, and every live server's
	// identity is restamped so the router's /info epoch cross-check holds.
	for _, other := range c.shards {
		for _, rep := range other.replicas {
			if rep.applier != nil {
				rep.applier.SetEpoch(epoch)
			}
			if rep.srv != nil {
				rep.srv.SetShardIdentity(ShardIdentity{ShardID: other.id, NumShards: c.cfg.shards, RingEpoch: epoch})
			}
		}
		if other.shipper != nil {
			other.shipper.SetEpoch(epoch)
		}
		if other.srv != nil {
			other.srv.SetShardIdentity(ShardIdentity{ShardID: other.id, NumShards: c.cfg.shards, RingEpoch: epoch})
		}
	}

	// Re-point the map: same shard IDs (ownership is untouched), new
	// primary address for shard i, new epoch.
	infos := make([]ShardInfo, len(c.shards))
	for k, other := range c.shards {
		infos[k] = ShardInfo{ID: other.id, Addr: other.addr, Replicas: other.replicaAddrs()}
	}
	ring, err := cluster.NewRing(epoch, 0, infos)
	if err != nil {
		return 0, err
	}
	if err := c.router.UpdateRing(ring); err != nil {
		return 0, err
	}
	c.ring.Store(ring)
	return epoch, nil
}

// RejoinAsReplica boots shard i's dead replica slot — after a promotion,
// the demoted old primary — back as a replica: restored from the shard
// snapshot, its own write-ahead-log suffix replayed, and re-announced to the
// new primary's shipper, which catches it up to the committed head. When the
// node's local log is shorter than the snapshot cursor (the disk did not
// survive with the full history), the missing tail is pulled from the live
// primary over the /replicate cursor protocol before boot — replica-assisted
// catch-up. Returns how many events the local replay recovered.
func (c *Cluster) RejoinAsReplica(i int) (replayed int, err error) {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	sh, err := c.shardByIndex(i)
	if err != nil {
		return 0, err
	}
	if sh.pipe == nil {
		return 0, fmt.Errorf("ganc: shard %d has no live primary to rejoin under", i)
	}
	var dead *replicaNode
	for _, rep := range sh.replicas {
		if rep.pipe == nil {
			dead = rep
			break
		}
	}
	if dead == nil {
		return 0, fmt.Errorf("ganc: shard %d has no dead replica slot to rejoin", i)
	}
	// The WAL-sequence invariant: record n of a node's log must be global
	// event n. A snapshot checkpointed past this node's own log would replay
	// onto the wrong cursor — so when the local log is short, the missing
	// records (records, snapSeq] are pulled from the live primary and
	// appended before boot, restoring the invariant from a peer instead of
	// refusing the rejoin.
	records, err := countWALRecords(dead.walPath)
	if err != nil {
		return 0, fmt.Errorf("ganc: inspecting rejoin write-ahead log: %w", err)
	}
	snapSeq, err := shardSnapshotCursor(sh.snapPath)
	if err != nil {
		return 0, err
	}
	if snapSeq > records {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		tail, err := cluster.FetchWALTail(ctx, nil, sh.addr, sh.id, records, snapSeq)
		cancel()
		if err != nil {
			return 0, fmt.Errorf("%w: snapshot cursor %d, log has %d records, and the primary could not supply the tail: %v",
				ErrReplicaRejoin, snapSeq, records, err)
		}
		wal, err := ingest.OpenLog(dead.walPath)
		if err != nil {
			return 0, fmt.Errorf("ganc: opening rejoin write-ahead log: %w", err)
		}
		if head := wal.Seq(); head != records {
			wal.Close()
			return 0, fmt.Errorf("%w: log moved from %d to %d records during the tail pull", ErrReplicaRejoin, records, head)
		}
		head, err := wal.Append(tail)
		if closeErr := wal.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			return 0, fmt.Errorf("ganc: appending fetched tail: %w", err)
		}
		if head != snapSeq {
			return 0, fmt.Errorf("%w: fetched tail ends at %d, snapshot cursor is %d", ErrReplicaRejoin, head, snapSeq)
		}
	}
	ln, err := net.Listen("tcp", dead.addr)
	if err != nil {
		return 0, fmt.Errorf("ganc: rebinding replica on %s: %w", dead.addr, err)
	}
	if err := c.bootReplica(sh, dead, ln); err != nil {
		return 0, err
	}
	replayed, err = dead.ing.Recover()
	if err != nil {
		return replayed, err
	}
	// Tell the primary's shipper where the rejoined node actually is; its
	// catch-up loop re-feeds the rest from the primary's WAL.
	if sh.shipper != nil {
		sh.shipper.Resync()
	}
	return replayed, nil
}

// AddShard grows the cluster by one shard with a live migration (see
// Reshard).
func (c *Cluster) AddShard() (*ReshardStats, error) { return c.Reshard(len(c.shards) + 1) }

// RemoveShard shrinks the cluster by one shard with a live migration (see
// Reshard): the highest-numbered shard is drained and retired.
func (c *Cluster) RemoveShard() (*ReshardStats, error) { return c.Reshard(len(c.shards) - 1) }

// Reshard grows or shrinks the cluster to target shards with zero
// client-visible downtime. Added shards boot from the pristine baseline
// snapshot (full trained state, no stream history) at ring epoch E+1; the
// ownership delta between the current ring and the E+1 ring is computed over
// every user with write-ahead history (users without history need no
// migration — every shard holds the full trained baseline); then a staged
// cutover runs: writes route by the E+1 ring from the moment the transition
// begins (freezing moving users' histories at their old owners), reads for a
// moving user stay on the old owner until the user's history has fully
// landed at the new owner over POST /migrate, and once every mover has
// flipped the E+1 ring is published to every node and the router. Shrinking
// retires the highest-numbered shards after a short drain grace; their files
// stay on disk (a later grow wipes and re-migrates them).
//
// Ordering note: ingest accepted during the cutover window is serialized by
// the user's new owner and may interleave ahead of the user's migrated
// history in the new owner's log; per-source order is preserved, global
// cross-owner order is not re-established (DESIGN.md §14).
//
// Reshard requires every current primary to be live (each is a migration
// source) and serializes with other topology changes. On an error before the
// ring publish the transition is aborted: routing reverts to the old ring
// and added shards are torn down.
func (c *Cluster) Reshard(target int) (*ReshardStats, error) {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	oldN := len(c.shards)
	if target <= 0 {
		return nil, fmt.Errorf("ganc: reshard needs a positive shard count, got %d", target)
	}
	if target == oldN {
		return nil, fmt.Errorf("ganc: cluster already has %d shards", oldN)
	}
	for _, sh := range c.shards {
		if sh.pipe == nil {
			return nil, fmt.Errorf("ganc: shard %d is dead; restart or promote it before resharding", sh.id)
		}
	}
	oldRing := c.ring.Load()
	oldEpoch := c.cfg.epoch
	newEpoch := oldEpoch + 1
	stats := &ReshardStats{FromShards: oldN, ToShards: target, Epoch: newEpoch}

	// The new topology is effective for everything booted from here on: the
	// added shards' snapshots are stamped with it, and loadShardNode keeps
	// accepting pre-reshard checkpoints through the lineage set.
	c.cfg.epoch, c.cfg.shards = newEpoch, target
	lineageAdded := !c.lineage[target]
	c.lineage[target] = true
	restoreCfg := func() {
		c.cfg.epoch, c.cfg.shards = oldEpoch, oldN
		if lineageAdded {
			delete(c.lineage, target)
		}
	}
	teardownAdded := func() {
		for i := oldN; i < len(c.shards); i++ {
			if c.shards[i].pipe != nil {
				_ = c.killShardLocked(i)
			}
			for _, rep := range c.shards[i].replicas {
				_ = c.killReplica(rep)
			}
		}
		c.shards = c.shards[:oldN]
	}

	if target > oldN {
		base, _, err := LoadShardEngine(c.baselinePath)
		if err != nil {
			restoreCfg()
			return nil, fmt.Errorf("ganc: loading baseline snapshot: %w", err)
		}
		// Bind every listener first (same discipline as NewCluster), then
		// boot replicas-before-primary per shard.
		type pendingShard struct {
			sh     *clusterShard
			ln     net.Listener
			repLns []net.Listener
		}
		var pend []pendingShard
		bindFail := func(err error) (*ReshardStats, error) {
			for _, pb := range pend {
				pb.ln.Close()
				for _, l := range pb.repLns {
					l.Close()
				}
			}
			restoreCfg()
			return nil, err
		}
		for i := oldN; i < target; i++ {
			sh := &clusterShard{
				id:       i,
				snapPath: filepath.Join(c.cfg.dir, fmt.Sprintf("shard-%03d.snap", i)),
				walPath:  filepath.Join(c.cfg.dir, fmt.Sprintf("shard-%03d.wal", i)),
			}
			// A slot retired by an earlier shrink leaves its files behind;
			// the re-added shard re-migrates its history in full.
			_ = os.Remove(sh.snapPath)
			_ = os.Remove(sh.walPath)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return bindFail(fmt.Errorf("ganc: shard %d listener: %w", i, err))
			}
			sh.addr = ln.Addr().String()
			pb := pendingShard{sh: sh, ln: ln}
			for r := 0; r < c.cfg.replicas; r++ {
				rep := &replicaNode{walPath: filepath.Join(c.cfg.dir, fmt.Sprintf("shard-%03d-replica-%d.wal", i, r))}
				_ = os.Remove(rep.walPath)
				rln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					pend = append(pend, pb)
					return bindFail(fmt.Errorf("ganc: shard %d replica %d listener: %w", i, r, err))
				}
				rep.addr = rln.Addr().String()
				pb.repLns = append(pb.repLns, rln)
				sh.replicas = append(sh.replicas, rep)
			}
			if err := base.SaveShard(sh.snapPath, ShardIdentity{ShardID: i, NumShards: target, RingEpoch: newEpoch}); err != nil {
				pend = append(pend, pb)
				return bindFail(fmt.Errorf("ganc: snapshot for added shard %d: %w", i, err))
			}
			pend = append(pend, pb)
		}
		for pi, pb := range pend {
			c.shards = append(c.shards, pb.sh)
			bootFail := func(err error) (*ReshardStats, error) {
				// The failing boot closed its own listener; release the rest.
				for _, rest := range pend[pi+1:] {
					rest.ln.Close()
					for _, l := range rest.repLns {
						l.Close()
					}
				}
				teardownAdded()
				restoreCfg()
				return nil, err
			}
			for r, rep := range pb.sh.replicas {
				if err := c.bootReplica(pb.sh, rep, pb.repLns[r]); err != nil {
					for _, l := range pb.repLns[r+1:] {
						l.Close()
					}
					pb.ln.Close()
					return bootFail(fmt.Errorf("ganc: booting shard %d replica %d: %w", pb.sh.id, r, err))
				}
			}
			if err := c.bootShard(pb.sh, pb.ln); err != nil {
				return bootFail(fmt.Errorf("ganc: booting shard %d: %w", pb.sh.id, err))
			}
		}
	}

	infos := make([]ShardInfo, target)
	for i := 0; i < target; i++ {
		infos[i] = ShardInfo{ID: i, Addr: c.shards[i].addr, Replicas: c.shards[i].replicaAddrs()}
	}
	nextRing, err := cluster.NewRing(newEpoch, 0, infos)
	if err != nil {
		teardownAdded()
		restoreCfg()
		return nil, err
	}

	// The moving set: every user with write-ahead history whose owner
	// changes between the two rings.
	seen := make(map[string]struct{})
	var keys []string
	for i := 0; i < oldN; i++ {
		if err := ingest.ReplayLog(c.shards[i].walPath, 0, func(_ uint64, ev IngestEvent) error {
			if _, ok := seen[ev.User]; !ok {
				seen[ev.User] = struct{}{}
				keys = append(keys, ev.User)
			}
			return nil
		}); err != nil {
			teardownAdded()
			restoreCfg()
			return nil, fmt.Errorf("ganc: scanning shard %d write-ahead log: %w", i, err)
		}
	}
	moving := cluster.MovedUsers(oldRing, nextRing, keys)
	stats.UsersMoved = len(moving)

	// Seed destination cursors from the destinations' own logs before any
	// write can race them: a user returning to a previous owner must not
	// have its migrated prefix applied twice. Per-user order preservation
	// makes the destination's local count exactly the already-held prefix
	// length.
	for d := 0; d < target; d++ {
		dest := c.shards[d]
		if dest.migrator == nil {
			continue
		}
		d := d
		counts, err := walUserCounts(dest.walPath, func(u string) bool {
			mv, ok := moving[u]
			return ok && mv.To == d
		})
		if err != nil {
			teardownAdded()
			restoreCfg()
			return nil, fmt.Errorf("ganc: scanning shard %d write-ahead log: %w", d, err)
		}
		for u, n := range counts {
			dest.migrator.SeedCursor(u, n)
		}
	}

	ddBefore := c.router.DoubleDispatches()
	cutStart := time.Now()
	if err := c.router.BeginReshard(nextRing, moving); err != nil {
		teardownAdded()
		restoreCfg()
		return nil, err
	}
	abort := func(err error) (*ReshardStats, error) {
		c.router.AbortReshard()
		teardownAdded()
		restoreCfg()
		return nil, err
	}

	// Ship every moving user's history from its old owner to its new one.
	// Writes route by the next ring from BeginReshard on, so the source logs
	// are frozen for these users: the first pass is complete, and the drain
	// passes below catch only appends from requests that were already in
	// flight when the transition began (including users whose first-ever
	// event raced the scan above — the ring predicate, not the moving map,
	// decides what ships).
	shipped := make(map[string]uint64)
	shipPass := func() (int, error) {
		total := 0
		for s := 0; s < oldN; s++ {
			s := s
			hist, _, err := ingest.CollectUserEvents(c.shards[s].walPath, func(u string) bool {
				return oldRing.Owner(u) == s && nextRing.Owner(u) != s
			})
			if err != nil {
				return total, fmt.Errorf("ganc: collecting shard %d histories: %w", s, err)
			}
			for u, evs := range hist {
				if uint64(len(evs)) <= shipped[u] {
					continue
				}
				d := nextRing.Owner(u)
				// A generous per-chunk timeout: during a reshard under
				// saturating load the destination queues migration posts
				// behind cold-cache serving traffic, and the default 2s can
				// expire on queueing alone. Patience here is invisible to
				// clients — reads keep double-dispatching to the old owner
				// until this user flips.
				applied, err := cluster.ShipUserHistory(nil, c.shards[d].addr, d, newEpoch, u, evs, 0, 15*time.Second)
				if err != nil {
					return total, fmt.Errorf("ganc: migrating user %q to shard %d: %w", u, d, err)
				}
				total += applied
				shipped[u] = uint64(len(evs))
				c.router.FlipUser(u)
			}
		}
		return total, nil
	}
	n, err := shipPass()
	stats.EventsMigrated += n
	if err != nil {
		return abort(err)
	}
	// Movers with no shippable history flip with the herd (idempotent).
	for u := range moving {
		c.router.FlipUser(u)
	}
	for pass := 0; pass < 8; pass++ {
		time.Sleep(25 * time.Millisecond)
		n, err := shipPass()
		stats.EventsMigrated += n
		if err != nil {
			return abort(err)
		}
		if n == 0 {
			break
		}
	}
	stats.UsersMigrated = len(shipped)

	// Publish: every surviving node adopts the new epoch and shard count,
	// then the router leaves the transition state on the final ring.
	for i := 0; i < target; i++ {
		sh := c.shards[i]
		id := ShardIdentity{ShardID: sh.id, NumShards: target, RingEpoch: newEpoch}
		if sh.srv != nil {
			sh.srv.SetShardIdentity(id)
		}
		if sh.shipper != nil {
			sh.shipper.SetEpoch(newEpoch)
		}
		if sh.migrator != nil {
			sh.migrator.SetEpoch(newEpoch)
		}
		for _, rep := range sh.replicas {
			if rep.applier != nil {
				rep.applier.SetEpoch(newEpoch)
			}
			if rep.srv != nil {
				rep.srv.SetShardIdentity(id)
			}
		}
	}
	if err := c.router.CompleteReshard(nextRing); err != nil {
		return abort(err)
	}
	c.ring.Store(nextRing)
	stats.CutoverMs = float64(time.Since(cutStart).Microseconds()) / 1000.0
	stats.DoubleDispatches = c.router.DoubleDispatches() - ddBefore

	// Shrink: the retired shards stopped receiving writes at BeginReshard
	// and reads at their last user's flip; a short grace period lets
	// in-flight requests drain before their listeners close. Their files
	// stay on disk — a later grow wipes and re-migrates them. A teardown
	// error is reported alongside the stats: the reshard itself has already
	// been published.
	if target < oldN {
		time.Sleep(200 * time.Millisecond)
		var firstErr error
		for i := oldN - 1; i >= target; i-- {
			if err := c.killShardLocked(i); err != nil && firstErr == nil {
				firstErr = err
			}
			for _, rep := range c.shards[i].replicas {
				if err := c.killReplica(rep); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		c.shards = c.shards[:target]
		if firstErr != nil {
			return stats, firstErr
		}
	}
	return stats, nil
}

// walUserCounts counts, per user accepted by keep, how many events the
// write-ahead log at path holds (empty for a missing log).
func walUserCounts(path string, keep func(string) bool) (map[string]uint64, error) {
	counts := make(map[string]uint64)
	err := ingest.ReplayLog(path, 0, func(_ uint64, ev IngestEvent) error {
		if keep == nil || keep(ev.User) {
			counts[ev.User]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return counts, nil
}

// countWALRecords counts the committed records in a write-ahead log (0 for a
// missing file).
func countWALRecords(path string) (uint64, error) {
	var n uint64
	err := ingest.ReplayLog(path, 0, func(seq uint64, _ IngestEvent) error {
		n = seq
		return nil
	})
	if err != nil {
		if os.IsNotExist(err) || errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	return n, nil
}

// shardSnapshotCursor reads the ingestion cursor out of a shard snapshot.
func shardSnapshotCursor(path string) (uint64, error) {
	pipe, _, err := LoadShardEngine(path)
	if err != nil {
		return 0, err
	}
	return pipe.ingestSeq, nil
}

// SaveShards checkpoints every live shard's current state into its shard
// snapshot (the same files RestartShard restores from).
func (c *Cluster) SaveShards() error {
	for _, sh := range c.shards {
		if sh.ing == nil {
			continue
		}
		if err := sh.ing.Checkpoint(); err != nil {
			return fmt.Errorf("ganc: checkpointing shard %d: %w", sh.id, err)
		}
	}
	return nil
}

// ShardVersion returns shard i's serving-engine generation (0 for a dead
// shard).
func (c *Cluster) ShardVersion(i int) int {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	if sh := c.shards[i]; sh.srv != nil {
		return sh.srv.Version()
	}
	return 0
}

// NumReplicas returns the per-shard replica count the cluster was built
// with.
func (c *Cluster) NumReplicas() int { return c.cfg.replicas }

// Epoch returns the cluster's current ring epoch (bumped by every Promote —
// manual or detector-triggered — and every Reshard).
func (c *Cluster) Epoch() uint64 {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	return c.cfg.epoch
}

// ReplicaAddr returns shard i's replica r's listen address.
func (c *Cluster) ReplicaAddr(i, r int) string {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	return c.shards[i].replicas[r].addr
}

// ShardReplication returns shard i's primary-side replication status (zero
// value when the shard has no shipper — dead primary or no replicas).
func (c *Cluster) ShardReplication(i int) ReplicationStatus {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	if sh := c.shards[i]; sh.shipper != nil {
		return sh.shipper.Status()
	}
	return ReplicationStatus{}
}

// ReplicaLag returns shard i's widest replica lag in committed events (0
// with no live shipper).
func (c *Cluster) ReplicaLag(i int) uint64 {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	if sh := c.shards[i]; sh.shipper != nil {
		return sh.shipper.MaxLag()
	}
	return 0
}

// WaitForReplicaSync blocks until every live primary's replicas have
// acknowledged its committed head, or the timeout expires. The shipper set is
// snapshotted under the topology lock, then waited on outside it so a
// concurrent promotion is not blocked.
func (c *Cluster) WaitForReplicaSync(timeout time.Duration) error {
	type pair struct {
		id      int
		shipper *cluster.Shipper
	}
	c.reshardMu.Lock()
	shippers := make([]pair, 0, len(c.shards))
	for _, sh := range c.shards {
		if sh.shipper != nil {
			shippers = append(shippers, pair{sh.id, sh.shipper})
		}
	}
	c.reshardMu.Unlock()
	deadline := time.Now().Add(timeout)
	for _, p := range shippers {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			remaining = time.Millisecond
		}
		if err := p.shipper.WaitSync(remaining); err != nil {
			return fmt.Errorf("ganc: shard %d: %w", p.id, err)
		}
	}
	return nil
}

// Close tears the cluster down: every shard is killed, the router listener
// (if any) stops, and the work directory is removed when the cluster owns
// it.
func (c *Cluster) Close() error {
	// The detector stops before the topology lock is taken: a suspicion
	// callback fired during teardown blocks on that lock, and Close waiting
	// for it while holding the lock would deadlock.
	if c.detector != nil {
		c.detector.Close()
		c.detector = nil
	}
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	var firstErr error
	for i, sh := range c.shards {
		if sh == nil {
			continue
		}
		if sh.pipe != nil {
			if err := c.killShardLocked(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		for _, rep := range sh.replicas {
			if err := c.killReplica(rep); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if c.routerHS != nil {
		if err := c.routerHS.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		c.routerHS, c.routerLn = nil, nil
	}
	if c.ownsDir && c.cfg.dir != "" {
		if err := os.RemoveAll(c.cfg.dir); err != nil && firstErr == nil {
			firstErr = err
		}
		c.ownsDir = false
	}
	return firstErr
}

// WaitReady blocks until every shard answers /health (or the timeout
// expires) — a convenience for callers that start driving traffic
// immediately after NewCluster.
func (c *Cluster) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: time.Second}
	wait := func(addr, what string) error {
		for {
			resp, err := client.Get("http://" + addr + "/health")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return nil
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("ganc: %s not ready within %v", what, timeout)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	for _, sh := range c.shards {
		if err := wait(sh.addr, fmt.Sprintf("shard %d", sh.id)); err != nil {
			return err
		}
		for r, rep := range sh.replicas {
			if rep.pipe == nil {
				continue
			}
			if err := wait(rep.addr, fmt.Sprintf("shard %d replica %d", sh.id, r)); err != nil {
				return err
			}
		}
	}
	return nil
}
