package ganc

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"ganc/internal/admit"
	"ganc/internal/cluster"
	"ganc/internal/obs"
	"ganc/internal/serve"
)

// Cluster facade: stand a sharded serving tier up in one process — N shard
// servers, each bootstrapped from a shard-scoped snapshot (SaveShard) with
// its own write-ahead log and checkpoint cadence, behind a consistent-hash
// scatter-gather router from internal/cluster. Users are partitioned by the
// hash ring; every shard holds the full model state but serves (and caches,
// and ingests) only its owned users, so the cluster's aggregate cache and
// compute capacity scale with the shard count. DESIGN.md §10 documents the
// architecture, the hash-ring epoch rules and the failure semantics;
// cmd/gancd runs the same roles as separate processes.

// Cluster re-exported types from internal/cluster, so drivers and tests can
// partition work exactly the way the router does.
type (
	// Ring is the consistent-hash user-sharding ring.
	Ring = cluster.Ring
	// ShardInfo describes one shard of a ring (ID + address).
	ShardInfo = cluster.ShardInfo
	// Router is the scatter-gather HTTP router.
	Router = cluster.Router
	// RouterConfig assembles a Router over an existing ring.
	RouterConfig = cluster.RouterConfig
	// ClusterInfoResponse is the router's aggregated /info payload.
	ClusterInfoResponse = cluster.InfoResponse
	// ClusterHealthResponse is the router's aggregated /health payload,
	// including per-shard admission rows when shards shed.
	ClusterHealthResponse = cluster.HealthResponse
	// ShardAdmissionStatus is one shard's admission row in the router's
	// aggregated /health: shed counts and limiter saturation.
	ShardAdmissionStatus = cluster.ShardAdmission
)

// Cluster error sentinels re-exported from internal/cluster.
var (
	// ErrShardUnavailable marks a shard unreachable within the retry budget.
	ErrShardUnavailable = cluster.ErrShardUnavailable
	// ErrBadPeerList marks a malformed -peers value.
	ErrBadPeerList = cluster.ErrBadPeers
)

// NewRing builds a consistent-hash ring (epoch, default virtual-node count)
// over the given shards.
func NewRing(epoch uint64, shards []ShardInfo) (*Ring, error) {
	return cluster.NewRing(epoch, 0, shards)
}

// ParsePeers parses a comma-separated shard address list into ring shard
// descriptors with positional IDs.
func ParsePeers(list string) ([]ShardInfo, error) { return cluster.ParsePeers(list) }

// NewRouter builds a scatter-gather router over a ring whose shards carry
// addresses.
func NewRouter(cfg RouterConfig) (*Router, error) { return cluster.NewRouter(cfg) }

// ClusterOption customizes a Cluster at construction time.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	shards          int
	routerAddr      string
	dir             string
	cacheCap        int
	checkpointEvery int
	epoch           uint64
	retries         int
	metrics         *obs.Registry
	reqLog          *obs.RequestLogger
	routerAdmit     admit.Config
	shardAdmit      *admit.Config
}

// WithShards sets the shard count (default 3).
func WithShards(n int) ClusterOption {
	return func(c *clusterConfig) { c.shards = n }
}

// WithRouterAddr makes the cluster listen for router traffic on addr (e.g.
// ":8080"). Without it the router is reachable only through
// Cluster.Handler() — the in-process form tests and benchmarks mount
// themselves.
func WithRouterAddr(addr string) ClusterOption {
	return func(c *clusterConfig) { c.routerAddr = addr }
}

// WithClusterDir places the shard snapshots and write-ahead logs in dir
// (which must exist). Without it the cluster owns a temporary directory,
// removed on Close.
func WithClusterDir(dir string) ClusterOption {
	return func(c *clusterConfig) { c.dir = dir }
}

// WithShardCacheCapacity bounds every shard server's LRU cache — the
// per-node memory budget. The cluster's aggregate cache is shards × this.
func WithShardCacheCapacity(capacity int) ClusterOption {
	return func(c *clusterConfig) { c.cacheCap = capacity }
}

// WithClusterCheckpointEvery makes every shard checkpoint its snapshot after
// that many ingested events (0, the default, keeps the write-ahead log as
// the only durability between explicit SaveShards calls).
func WithClusterCheckpointEvery(every int) ClusterOption {
	return func(c *clusterConfig) { c.checkpointEvery = every }
}

// WithClusterEpoch sets the hash-ring epoch stamped into the shard
// snapshots and the router's ring (default 1). Bump it whenever the shard
// count changes.
func WithClusterEpoch(epoch uint64) ClusterOption {
	return func(c *clusterConfig) { c.epoch = epoch }
}

// WithRouterRetries sets the router's bounded retry budget per shard call
// (default 2).
func WithRouterRetries(retries int) ClusterOption {
	return func(c *clusterConfig) { c.retries = retries }
}

// WithClusterMetrics instruments the whole tier: the router registers its
// per-shard fan-out/retry/failure counters, epoch-mismatch gauges and
// per-route HTTP series on reg and mounts GET /metrics; every shard gets its
// own private registry with the full single-node catalog, scrapable on the
// shard's own address (registries must not be shared between servers).
func WithClusterMetrics(reg *MetricsRegistry) ClusterOption {
	return func(c *clusterConfig) { c.metrics = reg }
}

// WithClusterRequestLog emits one structured JSON line per router request to
// the logger (shard-level requests are not logged; enable per-shard logging
// by running shards as separate processes with cmd/gancd -request-log).
func WithClusterRequestLog(l *RequestLogger) ClusterOption {
	return func(c *clusterConfig) { c.reqLog = l }
}

// WithClusterAdmission applies admission control at the router: per-client
// rate limiting and a concurrency cap over the whole fan-out surface.
func WithClusterAdmission(cfg AdmissionConfig) ClusterOption {
	return func(c *clusterConfig) { c.routerAdmit = cfg }
}

// WithShardAdmission applies admission control on every shard server (each
// shard gets its own controller from cfg). The router's aggregated /health
// surfaces each shard's shed counts and limiter saturation.
func WithShardAdmission(cfg AdmissionConfig) ClusterOption {
	return func(c *clusterConfig) { cc := cfg; c.shardAdmit = &cc }
}

// clusterShard is one in-process shard: its restored pipeline, server,
// ingestor and HTTP listener. A killed shard keeps its paths and address
// (nil runtime fields) so RestartShard can bring it back.
type clusterShard struct {
	id       int
	addr     string
	snapPath string
	walPath  string

	pipe *Pipeline
	srv  *Server
	ing  *Ingestor
	hs   *http.Server
}

// Cluster is an in-process sharded serving tier: N shard servers behind a
// scatter-gather router. Construct with NewCluster; drive it through
// Handler() (or the WithRouterAddr listener); tear it down with Close.
type Cluster struct {
	cfg     clusterConfig
	ring    *Ring
	router  *Router
	shards  []*clusterShard
	topN    int
	ownsDir bool

	routerLn net.Listener
	routerHS *http.Server
}

// NewCluster shard-splits a trained (snapshot-compatible) pipeline and
// stands the cluster up: each shard gets a shard-scoped snapshot
// (SaveShard), is restored from it exactly like a warm-started process,
// serves on its own loopback listener with streaming ingestion (per-shard
// write-ahead log, checkpoints back into its snapshot), and the router
// scatter-gathers over all of them.
func NewCluster(p *Pipeline, opts ...ClusterOption) (*Cluster, error) {
	if p == nil {
		return nil, fmt.Errorf("ganc: cluster requires a trained pipeline")
	}
	cfg := clusterConfig{shards: 3, epoch: 1, retries: 2}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.shards <= 0 {
		return nil, fmt.Errorf("ganc: cluster needs a positive shard count, got %d", cfg.shards)
	}
	c := &Cluster{cfg: cfg, topN: p.TopN()}
	if cfg.dir == "" {
		dir, err := os.MkdirTemp("", "ganc-cluster-*")
		if err != nil {
			return nil, fmt.Errorf("ganc: cluster work directory: %w", err)
		}
		c.cfg.dir = dir
		c.ownsDir = true
	}

	fail := func(err error) (*Cluster, error) {
		_ = c.Close()
		return nil, err
	}

	// Bind every shard listener first: the ring must carry final addresses.
	infos := make([]ShardInfo, cfg.shards)
	listeners := make([]net.Listener, cfg.shards)
	for i := 0; i < cfg.shards; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return fail(fmt.Errorf("ganc: shard %d listener: %w", i, err))
		}
		listeners[i] = ln
		infos[i] = ShardInfo{ID: i, Addr: ln.Addr().String()}
	}
	ring, err := cluster.NewRing(cfg.epoch, 0, infos)
	if err != nil {
		for _, l := range listeners {
			l.Close()
		}
		return fail(err)
	}
	c.ring = ring

	c.shards = make([]*clusterShard, cfg.shards)
	for i := 0; i < cfg.shards; i++ {
		sh := &clusterShard{
			id:       i,
			addr:     infos[i].Addr,
			snapPath: filepath.Join(c.cfg.dir, fmt.Sprintf("shard-%03d.snap", i)),
			walPath:  filepath.Join(c.cfg.dir, fmt.Sprintf("shard-%03d.wal", i)),
		}
		c.shards[i] = sh
		if err := p.SaveShard(sh.snapPath, ShardIdentity{ShardID: i, NumShards: cfg.shards, RingEpoch: cfg.epoch}); err != nil {
			for _, l := range listeners[i:] {
				l.Close()
			}
			return fail(fmt.Errorf("ganc: shard-splitting snapshot for shard %d: %w", i, err))
		}
		if err := c.bootShard(sh, listeners[i]); err != nil {
			for _, l := range listeners[i+1:] {
				l.Close()
			}
			return fail(fmt.Errorf("ganc: booting shard %d: %w", i, err))
		}
	}

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Ring:       ring,
		Retries:    cfg.retries,
		Metrics:    c.cfg.metrics,
		RequestLog: c.cfg.reqLog,
		Admission:  admit.New(c.cfg.routerAdmit),
	})
	if err != nil {
		return fail(err)
	}
	c.router = rt

	if cfg.routerAddr != "" {
		ln, err := net.Listen("tcp", cfg.routerAddr)
		if err != nil {
			return fail(fmt.Errorf("ganc: router listener on %s: %w", cfg.routerAddr, err))
		}
		c.routerLn = ln
		c.routerHS = &http.Server{Handler: rt.Handler()}
		go func() { _ = c.routerHS.Serve(ln) }()
	}
	return c, nil
}

// bootShard restores a shard from its snapshot, verifies the identity,
// attaches ingestion and starts serving on the listener.
func (c *Cluster) bootShard(sh *clusterShard, ln net.Listener) error {
	pipe, id, err := LoadShardEngine(sh.snapPath)
	if err != nil {
		ln.Close()
		return err
	}
	if id.ShardID != sh.id || id.NumShards != c.cfg.shards || id.RingEpoch != c.cfg.epoch {
		ln.Close()
		return fmt.Errorf("snapshot %s identifies as shard %d/%d epoch %d, want %d/%d epoch %d",
			sh.snapPath, id.ShardID, id.NumShards, id.RingEpoch, sh.id, c.cfg.shards, c.cfg.epoch)
	}
	opts := []ServerOption{WithServerShardIdentity(id)}
	if c.cfg.cacheCap > 0 {
		opts = append(opts, WithServerCacheCapacity(c.cfg.cacheCap))
	}
	if c.cfg.metrics != nil {
		opts = append(opts, serve.WithMetrics(obs.NewRegistry()))
	}
	if c.cfg.shardAdmit != nil {
		opts = append(opts, serve.WithAdmission(admit.New(*c.cfg.shardAdmit)))
	}
	srv, err := NewServer(pipe.Train(), pipe, c.topN, opts...)
	if err != nil {
		ln.Close()
		return err
	}
	ingOpts := []IngestorOption{
		WithIngestLog(sh.walPath),
		WithIngestCheckpoint(sh.snapPath, c.cfg.checkpointEvery),
	}
	ing, err := NewIngestor(srv, pipe, ingOpts...)
	if err != nil {
		ln.Close()
		return err
	}
	sh.pipe, sh.srv, sh.ing = pipe, srv, ing
	sh.hs = &http.Server{Handler: srv.Handler()}
	go func(hs *http.Server, ln net.Listener) { _ = hs.Serve(ln) }(sh.hs, ln)
	return nil
}

// Handler returns the router's HTTP surface (for mounting on a test
// listener or an existing mux).
func (c *Cluster) Handler() http.Handler { return c.router.Handler() }

// Router returns the scatter-gather router.
func (c *Cluster) Router() *Router { return c.router }

// Ring returns the cluster's hash ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// OwnerShard returns the shard index owning an external user key.
func (c *Cluster) OwnerShard(userKey string) int { return c.ring.Owner(userKey) }

// ShardAddr returns shard i's listen address.
func (c *Cluster) ShardAddr(i int) string { return c.shards[i].addr }

// RouterAddr returns the router's listen address, or "" when the cluster
// was built without WithRouterAddr.
func (c *Cluster) RouterAddr() string {
	if c.routerLn == nil {
		return ""
	}
	return c.routerLn.Addr().String()
}

// Dir returns the directory holding the shard snapshots and write-ahead
// logs.
func (c *Cluster) Dir() string { return c.cfg.dir }

// shardByIndex validates a shard index.
func (c *Cluster) shardByIndex(i int) (*clusterShard, error) {
	if i < 0 || i >= len(c.shards) {
		return nil, fmt.Errorf("ganc: shard %d out of range [0,%d)", i, len(c.shards))
	}
	return c.shards[i], nil
}

// KillShard crashes shard i: its listener and connections close, in-memory
// state drops, the write-ahead-log handle is released. Durable files (the
// shard snapshot and WAL) survive for RestartShard. Requests routed to the
// dead shard fail with the router's typed 503 until the restart.
func (c *Cluster) KillShard(i int) error {
	sh, err := c.shardByIndex(i)
	if err != nil {
		return err
	}
	if sh.pipe == nil {
		return fmt.Errorf("ganc: shard %d is already dead", i)
	}
	var closeErr error
	if sh.hs != nil {
		closeErr = sh.hs.Close()
	}
	if sh.ing != nil {
		if err := sh.ing.Close(); err != nil && closeErr == nil {
			closeErr = err
		}
	}
	sh.pipe, sh.srv, sh.ing, sh.hs = nil, nil, nil, nil
	return closeErr
}

// RestartShard brings a killed shard back on its original address: the
// pipeline is restored from the shard snapshot (the last checkpoint),
// ingestion re-attaches, and the write-ahead-log suffix past the checkpoint
// cursor is replayed. Returns how many events the replay recovered.
func (c *Cluster) RestartShard(i int) (replayed int, err error) {
	sh, err := c.shardByIndex(i)
	if err != nil {
		return 0, err
	}
	if sh.pipe != nil {
		return 0, fmt.Errorf("ganc: shard %d is still running (kill it first)", i)
	}
	// The old listener is closed, so the original port is free to rebind —
	// the ring's address for this shard must not change.
	ln, err := net.Listen("tcp", sh.addr)
	if err != nil {
		return 0, fmt.Errorf("ganc: rebinding shard %d on %s: %w", i, sh.addr, err)
	}
	if err := c.bootShard(sh, ln); err != nil {
		return 0, err
	}
	return sh.ing.Recover()
}

// SaveShards checkpoints every live shard's current state into its shard
// snapshot (the same files RestartShard restores from).
func (c *Cluster) SaveShards() error {
	for _, sh := range c.shards {
		if sh.ing == nil {
			continue
		}
		if err := sh.ing.Checkpoint(); err != nil {
			return fmt.Errorf("ganc: checkpointing shard %d: %w", sh.id, err)
		}
	}
	return nil
}

// ShardVersion returns shard i's serving-engine generation (0 for a dead
// shard).
func (c *Cluster) ShardVersion(i int) int {
	if sh := c.shards[i]; sh.srv != nil {
		return sh.srv.Version()
	}
	return 0
}

// Close tears the cluster down: every shard is killed, the router listener
// (if any) stops, and the work directory is removed when the cluster owns
// it.
func (c *Cluster) Close() error {
	var firstErr error
	for i, sh := range c.shards {
		if sh == nil || sh.pipe == nil {
			continue
		}
		if err := c.KillShard(i); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.routerHS != nil {
		if err := c.routerHS.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		c.routerHS, c.routerLn = nil, nil
	}
	if c.ownsDir && c.cfg.dir != "" {
		if err := os.RemoveAll(c.cfg.dir); err != nil && firstErr == nil {
			firstErr = err
		}
		c.ownsDir = false
	}
	return firstErr
}

// WaitReady blocks until every shard answers /health (or the timeout
// expires) — a convenience for callers that start driving traffic
// immediately after NewCluster.
func (c *Cluster) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: time.Second}
	for _, sh := range c.shards {
		for {
			resp, err := client.Get("http://" + sh.addr + "/health")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("ganc: shard %d not ready within %v", sh.id, timeout)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return nil
}
