package ganc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"ganc/internal/ingest"
)

// reshardTestCluster boots a cluster over the standard small fixture and a
// router test server.
func reshardTestCluster(t *testing.T, shards int) (*Cluster, *Universe, *httptest.Server) {
	t.Helper()
	p, u := clusterTestPipeline(t)
	c, err := NewCluster(p, WithShards(shards), WithClusterDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, u, ts
}

// postIngest sends one event batch through the router and fails the test on
// any non-200 answer.
func postIngest(t *testing.T, url string, events []IngestEvent) {
	t.Helper()
	body, _ := json.Marshal(map[string]interface{}{"events": events})
	resp, err := http.Post(url+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest answered %d", resp.StatusCode)
	}
}

// ownedWALEvents reads the final owner's write-ahead log and returns the
// user's event values in log order.
func ownedWALEvents(t *testing.T, c *Cluster, user string) []float64 {
	t.Helper()
	owner := c.OwnerShard(user)
	hist, _, err := ingest.CollectUserEvents(c.shards[owner].walPath, func(u string) bool { return u == user })
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 0, len(hist[user]))
	for _, ev := range hist[user] {
		out = append(out, ev.Value)
	}
	return out
}

// TestClusterReshardConcurrentIngestExactlyOnce is the facade half of the
// migration race suite: writers stream events through the router while the
// cluster grows 2→3 underneath them. Afterward, for every user, the final
// owner's write-ahead log must hold exactly the events sent for that user —
// each exactly once, whether it arrived before the reshard (and was migrated),
// during the cutover (and was routed to the new owner directly), or after.
// Cross-source ordering is NOT asserted: a cutover-era write may legally land
// before the user's migrated history (see DESIGN.md §14); per-source order is
// still exact, which the subset checks pin.
func TestClusterReshardConcurrentIngestExactlyOnce(t *testing.T) {
	c, u, ts := reshardTestCluster(t, 2)
	users := u.Train().UserInterner()

	const workers, batches, perBatch = 4, 6, 5
	// Worker w owns users w, workers+w, 2*workers+w, ... — disjoint sets, so
	// per-user event sequences have a single source and a known multiset.
	sent := make([]map[string][]float64, workers)
	var wg sync.WaitGroup
	reshardDone := make(chan *ReshardStats, 1)
	errCh := make(chan error, workers+1)

	for w := 0; w < workers; w++ {
		sent[w] = make(map[string][]float64)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				evs := make([]IngestEvent, 0, perBatch)
				for k := 0; k < perBatch; k++ {
					idx := (b*perBatch+k)*workers + w
					user := users.Key(int32(idx % u.Train().NumUsers()))
					val := float64(w*1000 + b*perBatch + k)
					evs = append(evs, IngestEvent{User: user, Item: fmt.Sprintf("it-%d-%d", w, b*perBatch+k), Value: val})
					sent[w][user] = append(sent[w][user], val)
				}
				body, _ := json.Marshal(map[string]interface{}{"events": evs})
				resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("worker %d batch %d: ingest answered %d", w, b, resp.StatusCode)
					return
				}
				time.Sleep(2 * time.Millisecond) // stretch the stream across the cutover
			}
		}(w)
	}
	go func() {
		time.Sleep(5 * time.Millisecond) // let some history accumulate pre-reshard
		stats, err := c.Reshard(3)
		if err != nil {
			errCh <- err
			return
		}
		reshardDone <- stats
	}()
	wg.Wait()
	var stats *ReshardStats
	select {
	case stats = <-reshardDone:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(30 * time.Second):
		t.Fatal("reshard never completed")
	}
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if c.NumShards() != 3 || c.Epoch() != 2 {
		t.Fatalf("cluster at %d shards epoch %d after the grow, want 3 at epoch 2", c.NumShards(), c.Epoch())
	}
	if stats.FromShards != 2 || stats.ToShards != 3 {
		t.Fatalf("stats recorded %d→%d", stats.FromShards, stats.ToShards)
	}
	// The ship pass uses the ring predicate, not the boot-time moving set, so
	// latecomers (users whose first event landed after the scan) are still
	// migrated: migrated ⊇ moved, never the reverse.
	if stats.UsersMigrated < stats.UsersMoved {
		t.Fatalf("migrated %d users, but %d changed owner at reshard start", stats.UsersMigrated, stats.UsersMoved)
	}
	if stats.UsersMigrated == 0 || stats.EventsMigrated == 0 {
		t.Fatalf("reshard migrated nothing (%+v) under concurrent ingest", stats)
	}

	// Exactly once at the final owner: per user, the owner's WAL holds the
	// union of all workers' sends for that user — same multiset, no event
	// duplicated by the migration, none lost in the cutover.
	want := make(map[string][]float64)
	for w := range sent {
		for user, vals := range sent[w] {
			want[user] = append(want[user], vals...)
		}
	}
	for user, vals := range want {
		got := ownedWALEvents(t, c, user)
		a := append([]float64(nil), vals...)
		b := append([]float64(nil), got...)
		sort.Float64s(a)
		sort.Float64s(b)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("user %q: final owner %d holds events %v, want multiset %v",
				user, c.OwnerShard(user), got, vals)
		}
	}

	// The grown cluster still answers reads for every user.
	for k := 0; k < u.Train().NumUsers(); k++ {
		user := users.Key(int32(k))
		resp, err := http.Get(ts.URL + "/recommend?user=" + user)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("user %q answered %d after the grow", user, resp.StatusCode)
		}
	}
}

// TestClusterAddRemoveShardRoundTrip grows 2→3, churns, and shrinks back —
// the A→B→A return path: a user whose history migrated to the new shard and
// back must end with its full history exactly once at its original owner
// (the seeded-cursor rule: the prefix the original owner still holds is
// acknowledged, not re-applied). Validation rules ride along: resharding to
// the current count or with a dead shard is refused.
func TestClusterAddRemoveShardRoundTrip(t *testing.T) {
	c, u, ts := reshardTestCluster(t, 2)
	users := u.Train().UserInterner()

	// Pre-grow history for every 3rd user.
	var tracked []string
	for k := 0; k < u.Train().NumUsers(); k += 3 {
		user := users.Key(int32(k))
		tracked = append(tracked, user)
		postIngest(t, ts.URL, []IngestEvent{{User: user, Item: "pre-grow", Value: 1}})
	}

	stats, err := c.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ToShards != 3 || c.NumShards() != 3 || c.Epoch() != 2 {
		t.Fatalf("grow left %d shards at epoch %d (stats %+v)", c.NumShards(), c.Epoch(), stats)
	}
	// Mid-topology history: events written while the ring has 3 shards.
	for _, user := range tracked {
		postIngest(t, ts.URL, []IngestEvent{{User: user, Item: "mid-grow", Value: 2}})
	}

	stats, err = c.RemoveShard()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FromShards != 3 || stats.ToShards != 2 || c.NumShards() != 2 || c.Epoch() != 3 {
		t.Fatalf("shrink left %d shards at epoch %d (stats %+v)", c.NumShards(), c.Epoch(), stats)
	}

	// Every tracked user's full history — pre-grow and mid-grow — sits at its
	// final owner exactly once, in order (single source per user here, so
	// order must hold too).
	for _, user := range tracked {
		got := ownedWALEvents(t, c, user)
		if fmt.Sprint(got) != fmt.Sprint([]float64{1, 2}) {
			t.Fatalf("user %q: final owner holds %v, want [1 2]", user, got)
		}
	}

	// Refusals.
	if _, err := c.Reshard(2); err == nil {
		t.Fatal("reshard to the current shard count succeeded")
	}
	if _, err := c.Reshard(0); err == nil {
		t.Fatal("reshard to zero shards succeeded")
	}
	if err := c.KillShard(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reshard(3); err == nil {
		t.Fatal("reshard with a dead shard succeeded")
	}
	if _, err := c.RestartShard(1); err != nil {
		t.Fatal(err)
	}
}

// TestClusterReshardAdminEndpoint drives a live grow through the router's
// admin surface — the path cmd/gancd operators use — and pins its error
// taxonomy: 405 for non-POST, 400 for a malformed target, 409 for a refused
// reshard, 200 with the migration statistics on success.
func TestClusterReshardAdminEndpoint(t *testing.T) {
	c, _, ts := reshardTestCluster(t, 2)

	post := func(target string) (int, map[string]interface{}) {
		resp, err := http.Post(ts.URL+"/admin/reshard?target="+target, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]interface{}
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}

	if resp, err := http.Get(ts.URL + "/admin/reshard?target=3"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET answered %d, want 405", resp.StatusCode)
		}
	}
	if status, _ := post("abc"); status != http.StatusBadRequest {
		t.Fatalf("malformed target answered %d, want 400", status)
	}
	if status, body := post("2"); status != http.StatusConflict || body["error"] == "" {
		t.Fatalf("no-op reshard answered %d %v, want a 409 with an error", status, body)
	}
	status, body := post("3")
	if status != http.StatusOK {
		t.Fatalf("grow answered %d %v", status, body)
	}
	if body["to_shards"] != float64(3) || body["epoch"] != float64(2) {
		t.Fatalf("grow answered stats %v, want to_shards 3 at epoch 2", body)
	}
	if c.NumShards() != 3 {
		t.Fatalf("cluster has %d shards after the admin grow", c.NumShards())
	}
}

// TestClusterReshardLineageRestart is the satellite-6 regression: restarting
// shards after a reshard must accept checkpoints whose stamped topology
// predates the reshard (the lineage rule) AND post-migration checkpoints
// whose user sets differ from the original split.
func TestClusterReshardLineageRestart(t *testing.T) {
	c, u, ts := reshardTestCluster(t, 2)
	users := u.Train().UserInterner()
	for k := 0; k < u.Train().NumUsers(); k += 2 {
		postIngest(t, ts.URL, []IngestEvent{{User: users.Key(int32(k)), Item: "seed", Value: 3}})
	}
	if _, err := c.Reshard(3); err != nil {
		t.Fatal(err)
	}

	get := func(user string) (int, RecommendResponsePayload) {
		resp, err := http.Get(ts.URL + "/recommend?user=" + user)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out RecommendResponsePayload
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	// Shard 0's snapshot on disk still says "shard 0 of 2, epoch 1" — the
	// pre-reshard boot checkpoint. The lineage rule must accept it and replay
	// the WAL on top (which now includes migrated-in histories, a user set
	// the original 2-way split never produced).
	probe := ""
	for k := 0; k < u.Train().NumUsers(); k++ {
		if user := users.Key(int32(k)); c.OwnerShard(user) == 0 {
			probe = user
			break
		}
	}
	if probe == "" {
		t.Fatal("no user owned by shard 0")
	}
	_, before := get(probe)
	if err := c.KillShard(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestartShard(0); err != nil {
		t.Fatalf("restart refused the pre-reshard checkpoint lineage: %v", err)
	}
	if status, after := get(probe); status != http.StatusOK || fmt.Sprint(after.Items) != fmt.Sprint(before.Items) {
		t.Fatalf("post-restart answer (%d) %v != pre-kill %v", status, after.Items, before.Items)
	}

	// Checkpoint the post-migration state (stamped with the new topology and
	// a migrated user set), then restart the NEW shard from it: the snapshot
	// loader must accept a shard snapshot whose ingested users differ from
	// any boot-time split.
	if err := c.SaveShards(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadShardEngine(c.shards[2].snapPath); err != nil {
		t.Fatalf("post-migration shard snapshot refused: %v", err)
	}
	probe2 := ""
	for k := 0; k < u.Train().NumUsers(); k++ {
		if user := users.Key(int32(k)); c.OwnerShard(user) == 2 {
			probe2 = user
			break
		}
	}
	if probe2 == "" {
		t.Fatal("no user owned by the added shard")
	}
	_, before2 := get(probe2)
	if err := c.KillShard(2); err != nil {
		t.Fatal(err)
	}
	replayed, err := c.RestartShard(2)
	if err != nil {
		t.Fatalf("restart refused the post-migration checkpoint: %v", err)
	}
	if replayed != 0 {
		t.Fatalf("restart replayed %d events over a fresh checkpoint, want 0", replayed)
	}
	if status, after2 := get(probe2); status != http.StatusOK || fmt.Sprint(after2.Items) != fmt.Sprint(before2.Items) {
		t.Fatalf("restarted added shard answer (%d) %v != pre-kill %v", status, after2.Items, before2.Items)
	}
}
