package ganc

import (
	"fmt"

	"ganc/internal/core"
	"ganc/internal/ingest"
	"ganc/internal/knn"
	"ganc/internal/recommender"
	"ganc/internal/serve"
)

// Streaming-ingestion facade: NewIngestor puts a Pipeline's state behind the
// internal/ingest consumer, so POST /ingest events (or direct Apply calls)
// update the served model incrementally — popularity counts, item-average
// sums, the dataset adjacency and the Dyn coverage frequencies — and publish
// each batch through the server's versioned atomic engine swap. Trained
// factor models stay frozen between full retrains (warm-start semantics);
// everything derived cheaply from counts is rebuilt per batch.

// IngestEvent is one interaction event, keyed by external identifiers. New
// users and items are interned on the fly.
type IngestEvent = serve.IngestEvent

// IngestResult summarizes one applied batch (events absorbed, sequence
// cursor, serving engine version).
type IngestResult = serve.IngestResult

// Ingestor consumes interaction events behind the serving layer; construct
// with NewIngestor. See internal/ingest for the full contract.
type Ingestor = ingest.Ingestor

// IngestorOption customizes an Ingestor at construction time.
type IngestorOption func(*ingestorConfig)

type ingestorConfig struct {
	logPath         string
	checkpointPath  string
	checkpointEvery int
	onCommit        func(firstSeq uint64, events []IngestEvent)
	noSink          bool
}

// WithIngestLog makes the write path write-ahead: events are appended and
// fsynced to the JSON-lines log at path before they touch serving state, and
// recovery replays the un-checkpointed suffix after a restart.
func WithIngestLog(path string) IngestorOption {
	return func(c *ingestorConfig) { c.logPath = path }
}

// WithIngestCheckpoint writes a full warm-start snapshot (the Pipeline.Save
// format plus the ingestion cursor) to path after every `every` applied
// events; every ≤ 0 disables automatic checkpoints but keeps manual
// Ingestor.Checkpoint calls working.
func WithIngestCheckpoint(path string, every int) IngestorOption {
	return func(c *ingestorConfig) {
		c.checkpointPath = path
		c.checkpointEvery = every
	}
}

// WithCommitHook invokes fn after every committed batch — live Apply and
// write-ahead-log Recover replay alike — with the sequence number of the
// batch's first event. It runs under the ingestor's lock and must not call
// back into the ingestor; the cluster layer uses it to ship committed batches
// to replicas.
func WithCommitHook(fn func(firstSeq uint64, events []IngestEvent)) IngestorOption {
	return func(c *ingestorConfig) { c.onCommit = fn }
}

// WithoutIngestSink builds the ingestor without attaching it behind the
// server's POST /ingest endpoint: the replica role, where the only legal
// write path is /replicate — a replica that accepted client writes would fork
// its shard's history from the primary's write-ahead log.
func WithoutIngestSink() IngestorOption {
	return func(c *ingestorConfig) { c.noSink = true }
}

// NewIngestor wires streaming ingestion around a pipeline and, when srv is
// non-nil, attaches itself as the sink behind the server's POST /ingest
// endpoint. The pipeline must be snapshot-compatible (see Pipeline.Save);
// for a pipeline restored by LoadEngine from a checkpoint, the ingestion
// cursor carries over, so calling (*Ingestor).Recover() afterwards replays
// exactly the write-ahead-log suffix the checkpoint had not absorbed.
func NewIngestor(srv *Server, p *Pipeline, opts ...IngestorOption) (*Ingestor, error) {
	var c ingestorConfig
	for _, opt := range opts {
		opt(&c)
	}
	kind, err := p.baseKind()
	if err != nil {
		return nil, err
	}
	covName, err := p.coverageName()
	if err != nil {
		return nil, err
	}

	lambda := p.ingestAvgLambda
	if lambda == 0 {
		if ia, ok := p.baseScorer.(*recommender.ItemAvg); ok {
			lambda = ia.Lambda()
		} else {
			lambda = 5 // the registry's ItemAvg shrinkage default
		}
	}
	state := ingest.NewStateFromDataset(p.train, p.prefs, lambda)
	if p.ingestPrefFill > 0 {
		state.PrefFill = p.ingestPrefFill
	}
	if dyn, ok := p.crec.(*core.DynCoverage); ok {
		state.DynFreq = dyn.Frequencies()
	}
	state.AppliedSeq = p.ingestSeq

	cfg := ingest.Config{
		State: state,
		Rebuild: func(s *ingest.State) (serve.Engine, error) {
			return p.pipelineFromState(kind, covName, s)
		},
		Server:   srv,
		OnCommit: c.onCommit,
	}
	if c.logPath != "" {
		log, err := ingest.OpenLog(c.logPath)
		if err != nil {
			return nil, err
		}
		cfg.Log = log
	}
	if c.checkpointPath != "" {
		path := c.checkpointPath
		cfg.Checkpoint = func(s *ingest.State) error {
			np, err := p.pipelineFromState(kind, covName, s)
			if err != nil {
				return err
			}
			b, err := np.snapshotBuilder(s.AppliedSeq, s.AvgLambda, s.PrefFill)
			if err != nil {
				return err
			}
			return b.Save(path)
		}
		cfg.CheckpointEvery = c.checkpointEvery
	}
	ing, err := ingest.New(cfg)
	if err != nil {
		return nil, err
	}
	if srv != nil && !c.noSink {
		srv.SetIngestSink(ing)
	}
	return ing, nil
}

// pipelineFromState reassembles a serving pipeline around the ingestion
// state: incrementally maintained statistics rebuild the cheap components
// (Pop counts, ItemAvg means, Stat/Dyn coverage, PopAccuracy), while trained
// factor models are reused frozen — ItemKNN rebound so its scoring consults
// the extended user profiles.
func (p *Pipeline) pipelineFromState(kind, covName string, s *ingest.State) (*Pipeline, error) {
	train := s.Train
	normalized := func(sc Scorer) AccuracyRecommender {
		return newNormalizedAccuracy(sc, train.NumItems())
	}
	var arec AccuracyRecommender
	var scorer Scorer
	switch kind {
	case "Pop":
		pop := recommender.NewPopFromCounts(s.PopCounts)
		arec = core.NewPopAccuracyWith(pop, train, p.cfg.topN)
		scorer = pop
	case "ItemAvg":
		ia := recommender.NewItemAvgFromStats(s.AvgSums, s.AvgCounts, s.AvgLambda, s.GlobalMean())
		arec, scorer = normalized(ia), ia
	case "ItemKNN":
		m := p.baseScorer.(*knn.ItemKNN).Rebind(train)
		arec, scorer = normalized(m), m
	case "RSVD", "PSVD", "CofiRank":
		scorer = p.baseScorer
		arec = normalized(scorer)
	default:
		return nil, fmt.Errorf("%w: base kind %q", ErrSnapshotUnsupported, kind)
	}

	var crec CoverageRecommender
	var covSpec CoverageSpec
	switch covName {
	case "Dyn":
		crec = core.NewDynCoverageFrom(s.DynFreq)
		covSpec = CoverageDyn()
	case "Stat":
		crec = core.NewStatCoverageFromCounts(s.PopCounts)
		covSpec = CoverageStat()
	default:
		return nil, fmt.Errorf("%w: coverage recommender %q", ErrSnapshotUnsupported, covName)
	}

	g, err := core.New(train, arec, s.Prefs, crec, core.Config{
		N:          p.cfg.topN,
		SampleSize: p.cfg.sampleSize,
		Seed:       p.cfg.seed,
		Workers:    p.cfg.workers,
		Precision:  p.cfg.precision,
	})
	if err != nil {
		return nil, err
	}
	cfg := p.cfg
	cfg.coverage = covSpec
	return &Pipeline{
		train:           train,
		ganc:            g,
		prefs:           s.Prefs,
		cfg:             cfg,
		arec:            arec,
		baseScorer:      scorer,
		crec:            crec,
		ingestSeq:       s.AppliedSeq,
		ingestPrefFill:  s.PrefFill,
		ingestAvgLambda: s.AvgLambda,
		shard:           p.shard,
	}, nil
}
