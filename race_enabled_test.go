//go:build race

package ganc

// raceDetectorEnabled reports whether this test binary was built with
// -race. Latency-ratio gates skip under the race detector: it multiplies
// the cost of exactly the atomic and lock operations instrumentation is
// made of, so the measured ratio says nothing about production overhead.
const raceDetectorEnabled = true
