package synth

import (
	"testing"

	"ganc/internal/types"
)

func TestConfigValidate(t *testing.T) {
	good := ML100K(0.1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid preset failed validation: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no users", func(c *Config) { c.NumUsers = 0 }},
		{"one item", func(c *Config) { c.NumItems = 1 }},
		{"too few ratings", func(c *Config) { c.NumRatings = c.NumUsers - 1 }},
		{"zero zipf", func(c *Config) { c.ZipfExponent = 0 }},
		{"zero tau", func(c *Config) { c.MinRatingsPerUser = 0 }},
		{"no levels", func(c *Config) { c.RatingLevels = nil }},
		{"zero latent", func(c *Config) { c.LatentDim = 0 }},
	}
	for _, tc := range cases {
		cfg := ML100K(0.1)
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	cfg := ML100K(0.05)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRatings() != b.NumRatings() {
		t.Fatalf("same seed produced different sizes: %d vs %d", a.NumRatings(), b.NumRatings())
	}
	for k := range a.Ratings() {
		if a.Rating(k) != b.Rating(k) {
			t.Fatalf("rating %d differs between runs: %v vs %v", k, a.Rating(k), b.Rating(k))
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg1 := ML100K(0.05)
	cfg2 := ML100K(0.05)
	cfg2.Seed = 999
	a, _ := Generate(cfg1)
	b, _ := Generate(cfg2)
	same := a.NumRatings() == b.NumRatings()
	if same {
		diff := false
		for k := range a.Ratings() {
			if a.Rating(k) != b.Rating(k) {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical datasets")
		}
	}
}

func TestGenerateRespectsMinRatingsPerUser(t *testing.T) {
	cfg := MT200K(0.1)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.NumUsers(); u++ {
		n := len(d.UserRatings(types0(u)))
		if n > 0 && n < cfg.MinRatingsPerUser {
			// A user can occasionally land below τ when the rejection
			// sampler exhausts attempts on a tiny item space, but not by
			// more than a couple of ratings. Treat a large shortfall as a
			// generator bug.
			if n < cfg.MinRatingsPerUser/2 {
				t.Fatalf("user %d has only %d ratings (τ=%d)", u, n, cfg.MinRatingsPerUser)
			}
		}
	}
}

func TestGenerateRatingValuesAreOnScale(t *testing.T) {
	cfg := ML10M(0.1)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	valid := make(map[float64]bool, len(cfg.RatingLevels))
	for _, l := range cfg.RatingLevels {
		valid[l] = true
	}
	for _, r := range d.Ratings() {
		if !valid[r.Value] {
			t.Fatalf("rating value %v is not one of the configured levels", r.Value)
		}
	}
}

func TestGeneratePopularityIsSkewed(t *testing.T) {
	// Use the full preset scale: shrinking users and items while keeping the
	// per-user profile size constant flattens the popularity distribution,
	// which is exactly the distortion this test is meant to catch.
	cfg := ML1M(1)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := d.ComputeStats()
	// The Pareto cut should classify well over half the catalog as long-tail,
	// as in every dataset in Table II (67%–88%).
	if stats.LongTailPct < 50 {
		t.Fatalf("long-tail share %.1f%% too small; popularity not skewed enough", stats.LongTailPct)
	}
	// And the most popular item should dwarf the median item.
	pops := d.PopularityVector()
	max := 0
	for _, p := range pops {
		if p > max {
			max = p
		}
	}
	if max < 10 {
		t.Fatalf("max popularity %d implausibly low", max)
	}
}

func TestGenerateDensityRoughlyMatchesTarget(t *testing.T) {
	cfg := ML100K(0.2)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	target := float64(cfg.NumRatings) / (float64(cfg.NumUsers) * float64(cfg.NumItems))
	got := d.Density()
	if got < target*0.5 || got > target*2.0 {
		t.Fatalf("density %.4f too far from target %.4f", got, target)
	}
}

func TestPresetsCoverPaperDatasets(t *testing.T) {
	names := map[string]bool{}
	for _, cfg := range AllPresets(0.05) {
		names[cfg.Name] = true
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", cfg.Name, err)
		}
	}
	for _, want := range []string{"ML-100K", "ML-1M", "ML-10M", "MT-200K", "Netflix"} {
		if !names[want] {
			t.Errorf("missing preset %s", want)
		}
	}
}

func TestKappaMatchesPaperProtocol(t *testing.T) {
	if Kappa("ML-1M") != 0.5 || Kappa("ML-10M") != 0.5 || Kappa("ML-100K") != 0.5 {
		t.Fatal("MovieLens kappa should be 0.5")
	}
	if Kappa("MT-200K") != 0.8 {
		t.Fatal("MT-200K kappa should be 0.8")
	}
	if Kappa("unknown") <= 0 || Kappa("unknown") > 1 {
		t.Fatal("unknown dataset kappa out of range")
	}
}

func TestGeneratedDataIsLearnable(t *testing.T) {
	// Sanity check for the latent-factor rating model: the per-item mean
	// ratings should not all coincide, otherwise CF has nothing to learn.
	cfg := ML100K(0.1)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var means []float64
	for i := 0; i < d.NumItems(); i++ {
		idxs := d.ItemRatings(types1(i))
		if len(idxs) < 3 {
			continue
		}
		s := 0.0
		for _, idx := range idxs {
			s += d.Rating(idx).Value
		}
		means = append(means, s/float64(len(idxs)))
	}
	if len(means) < 10 {
		t.Skip("not enough frequently rated items at this scale")
	}
	lo, hi := means[0], means[0]
	for _, m := range means {
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if hi-lo < 0.5 {
		t.Fatalf("item mean ratings span only %.2f stars; rating signal too weak", hi-lo)
	}
}

func types0(u int) types.UserID { return types.UserID(u) }
func types1(i int) types.ItemID { return types.ItemID(i) }
