// Package synth generates synthetic collaborative-filtering datasets whose
// marginal statistics are calibrated to the datasets used in the paper's
// evaluation (Table II): MovieLens 100K/1M/10M, MovieTweetings-200K and
// Netflix. The real datasets do not ship with this repository, so every
// experiment runs on these calibrated stand-ins; a real file can be swapped in
// through dataset.LoadRatings without touching anything downstream.
//
// The generative model reproduces the three properties the paper's
// experiments depend on:
//
//  1. Popularity bias — item popularity follows a Zipf-like power law whose
//     exponent is fitted so the Pareto 80/20 long-tail share matches the
//     paper's L% column.
//  2. Heterogeneous user activity — profile sizes follow a shifted log-normal
//     with the per-dataset minimum τ, so both "difficult infrequent" users
//     and heavy raters exist.
//  3. Informative ratings — rating values come from a low-rank latent-factor
//     model plus user/item biases and noise, so that matrix-factorization
//     recommenders genuinely out-predict random, and popular items receive
//     systematically more (and slightly higher) ratings, reproducing the
//     "rich get richer" effect the paper corrects for.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ganc/internal/dataset"
	"ganc/internal/types"
)

// Config describes a synthetic dataset.
type Config struct {
	Name     string
	NumUsers int
	NumItems int
	// NumRatings is the target rating count; the generator lands within a few
	// percent of it (user profiles are drawn, then trimmed/topped up).
	NumRatings int
	// ZipfExponent controls the skew of item popularity (1.0–1.6 covers the
	// paper's datasets; higher values mean a heavier head).
	ZipfExponent float64
	// MinRatingsPerUser is the paper's τ.
	MinRatingsPerUser int
	// RatingLevels are the admissible rating values (e.g. 1..5 whole stars,
	// or half-star increments for ML-10M).
	RatingLevels []float64
	// LatentDim is the rank of the latent user/item factors that drive the
	// rating values. Must be ≥ 1.
	LatentDim int
	// NoiseStd is the standard deviation of the Gaussian noise added to the
	// latent score before snapping to the nearest rating level.
	NoiseStd float64
	// PopularityRatingBoost shifts the expected rating of popular items
	// upward (observed in MovieLens-like data); 0 disables the effect.
	PopularityRatingBoost float64
	// Seed makes generation deterministic.
	Seed int64
}

// Validate checks the configuration for obvious mistakes.
func (c *Config) Validate() error {
	switch {
	case c.NumUsers <= 0:
		return fmt.Errorf("synth: NumUsers must be positive, got %d", c.NumUsers)
	case c.NumItems <= 1:
		return fmt.Errorf("synth: NumItems must be > 1, got %d", c.NumItems)
	case c.NumRatings < c.NumUsers:
		return fmt.Errorf("synth: NumRatings (%d) must be at least NumUsers (%d)", c.NumRatings, c.NumUsers)
	case c.ZipfExponent <= 0:
		return fmt.Errorf("synth: ZipfExponent must be positive, got %v", c.ZipfExponent)
	case c.MinRatingsPerUser < 1:
		return fmt.Errorf("synth: MinRatingsPerUser must be ≥ 1, got %d", c.MinRatingsPerUser)
	case len(c.RatingLevels) == 0:
		return fmt.Errorf("synth: RatingLevels must not be empty")
	case c.LatentDim < 1:
		return fmt.Errorf("synth: LatentDim must be ≥ 1, got %d", c.LatentDim)
	}
	return nil
}

// Generate builds the synthetic dataset described by cfg.
func Generate(cfg Config) (*dataset.Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// --- latent factors driving rating values -------------------------------
	userF := make([][]float64, cfg.NumUsers)
	for u := range userF {
		userF[u] = randomUnitVector(rng, cfg.LatentDim)
	}
	itemF := make([][]float64, cfg.NumItems)
	itemBias := make([]float64, cfg.NumItems)
	for i := range itemF {
		itemF[i] = randomUnitVector(rng, cfg.LatentDim)
		itemBias[i] = rng.NormFloat64() * 0.3
	}
	userBias := make([]float64, cfg.NumUsers)
	for u := range userBias {
		userBias[u] = rng.NormFloat64() * 0.3
	}

	// --- item popularity weights (Zipf over a random item permutation) ------
	// The permutation decorrelates popularity rank from item identifier.
	perm := rng.Perm(cfg.NumItems)
	popWeight := make([]float64, cfg.NumItems)
	totalW := 0.0
	for rank, item := range perm {
		w := 1.0 / math.Pow(float64(rank+1), cfg.ZipfExponent)
		popWeight[item] = w
		totalW += w
	}
	cumWeight := make([]float64, cfg.NumItems)
	acc := 0.0
	for i := 0; i < cfg.NumItems; i++ {
		acc += popWeight[i] / totalW
		cumWeight[i] = acc
	}
	sampleItem := func() types.ItemID {
		x := rng.Float64()
		lo, hi := 0, cfg.NumItems-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cumWeight[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return types.ItemID(lo)
	}

	// --- per-user profile sizes (log-normal, shifted by τ) ------------------
	avg := float64(cfg.NumRatings) / float64(cfg.NumUsers)
	// Choose log-normal parameters so the mean of (τ + X) is roughly avg.
	mu := math.Log(math.Max(avg-float64(cfg.MinRatingsPerUser), 1.0))
	sigma := 1.0
	profile := make([]int, cfg.NumUsers)
	total := 0
	for u := range profile {
		size := cfg.MinRatingsPerUser + int(math.Exp(mu+sigma*rng.NormFloat64()))
		if size > cfg.NumItems {
			size = cfg.NumItems
		}
		profile[u] = size
		total += size
	}
	// Rescale toward the target rating count while respecting τ and |I|.
	scale := float64(cfg.NumRatings) / float64(total)
	for u := range profile {
		s := int(float64(profile[u]) * scale)
		if s < cfg.MinRatingsPerUser {
			s = cfg.MinRatingsPerUser
		}
		if s > cfg.NumItems {
			s = cfg.NumItems
		}
		profile[u] = s
	}

	// --- emit ratings --------------------------------------------------------
	levels := append([]float64(nil), cfg.RatingLevels...)
	sort.Float64s(levels)
	minLevel, maxLevel := levels[0], levels[len(levels)-1]
	mid := (minLevel + maxLevel) / 2
	halfSpan := (maxLevel - minLevel) / 2

	b := dataset.NewBuilder(cfg.Name, cfg.NumRatings+cfg.NumUsers)
	for u := 0; u < cfg.NumUsers; u++ {
		want := profile[u]
		seen := make(map[types.ItemID]struct{}, want)
		attempts := 0
		maxAttempts := want * 30
		for len(seen) < want && attempts < maxAttempts {
			attempts++
			i := sampleItem()
			if _, dup := seen[i]; dup {
				continue
			}
			seen[i] = struct{}{}
			score := dot(userF[u], itemF[i])
			score += userBias[u] + itemBias[i]
			score += cfg.PopularityRatingBoost * math.Log1p(popWeight[i]*float64(cfg.NumItems))
			score += rng.NormFloat64() * cfg.NoiseStd
			value := snapToLevel(mid+score*halfSpan, levels)
			b.Add(userKey(u), itemKey(int(i)), value)
		}
	}
	// Make sure every item identifier exists even if it drew no rating, so
	// |I| matches the configuration (mirrors real catalogs that contain
	// never-rated items only through the item file; here the ID space is the
	// catalog).
	d := b.Build()
	return d, nil
}

func userKey(u int) string { return fmt.Sprintf("u%07d", u) }
func itemKey(i int) string { return fmt.Sprintf("i%07d", i) }

func randomUnitVector(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	norm := 0.0
	for i := range v {
		v[i] = rng.NormFloat64()
		norm += v[i] * v[i]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		v[0] = 1
		return v
	}
	for i := range v {
		v[i] /= norm
	}
	return v
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func snapToLevel(x float64, levels []float64) float64 {
	best := levels[0]
	bestDist := math.Abs(x - best)
	for _, l := range levels[1:] {
		if d := math.Abs(x - l); d < bestDist {
			best, bestDist = l, d
		}
	}
	return best
}
