package synth

// Presets calibrated to the paper's Table II. Netflix and ML-10M are scaled
// down (users, items and ratings divided by roughly the same factor) so the
// full experiment suite runs on a single machine; density, rating scale, the
// long-tail share and the per-user minimum τ — the properties the paper's
// conclusions depend on — are preserved. DESIGN.md §4 documents this
// substitution.

// Scale multiplies the size of every preset. 1.0 reproduces the calibrated
// (already scaled for the large datasets) defaults; tests use smaller values.
type Scale float64

// wholeStars and halfStars are the admissible rating values of the MovieLens
// datasets; MovieTweetings ratings are mapped onto [1,5] as in the paper.
var (
	wholeStars = []float64{1, 2, 3, 4, 5}
	halfStars  = []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}
)

func scaled(n int, s Scale) int {
	v := int(float64(n) * float64(s))
	if v < 8 {
		v = 8
	}
	return v
}

// ML100K mirrors MovieLens-100K: 943 users, 1682 items, 100K ratings,
// density ≈ 6.3%, L% ≈ 67, τ = 20.
func ML100K(s Scale) Config {
	return Config{
		Name:                  "ML-100K",
		NumUsers:              scaled(943, s),
		NumItems:              scaled(1682, s),
		NumRatings:            scaled(100_000, s),
		ZipfExponent:          0.95,
		MinRatingsPerUser:     20,
		RatingLevels:          wholeStars,
		LatentDim:             8,
		NoiseStd:              0.35,
		PopularityRatingBoost: 0.12,
		Seed:                  100,
	}
}

// ML1M mirrors MovieLens-1M: 6040 users, 3706 items, 1M ratings, density ≈
// 4.5%, L% ≈ 68, τ = 20. The default is generated at 1/4 scale; pass Scale(4)
// for the full calibrated size.
func ML1M(s Scale) Config {
	return Config{
		Name:                  "ML-1M",
		NumUsers:              scaled(1510, s),
		NumItems:              scaled(927, s),
		NumRatings:            scaled(62_500, s),
		ZipfExponent:          1.0,
		MinRatingsPerUser:     20,
		RatingLevels:          wholeStars,
		LatentDim:             10,
		NoiseStd:              0.35,
		PopularityRatingBoost: 0.12,
		Seed:                  101,
	}
}

// ML10M mirrors MovieLens-10M at reduced scale: density ≈ 1.3%, half-star
// ratings, L% ≈ 84, τ = 20.
func ML10M(s Scale) Config {
	return Config{
		Name:                  "ML-10M",
		NumUsers:              scaled(3494, s),
		NumItems:              scaled(1068, s),
		NumRatings:            scaled(50_000, s),
		ZipfExponent:          1.25,
		MinRatingsPerUser:     20,
		RatingLevels:          halfStars,
		LatentDim:             10,
		NoiseStd:              0.4,
		PopularityRatingBoost: 0.12,
		Seed:                  102,
	}
}

// MT200K mirrors MovieTweetings-200K: extremely sparse (density ≈ 0.16%),
// τ = 5, nearly half the users have fewer than 10 ratings, L% ≈ 87.
func MT200K(s Scale) Config {
	return Config{
		Name:                  "MT-200K",
		NumUsers:              scaled(1992, s),
		NumItems:              scaled(3466, s),
		NumRatings:            scaled(43_126, s),
		ZipfExponent:          1.35,
		MinRatingsPerUser:     5,
		RatingLevels:          wholeStars,
		LatentDim:             8,
		NoiseStd:              0.5,
		PopularityRatingBoost: 0.15,
		Seed:                  103,
	}
}

// NetflixSample mirrors the Netflix prize data at heavily reduced scale:
// density ≈ 1.2%, τ effectively 1 (no minimum), L% ≈ 88.
func NetflixSample(s Scale) Config {
	return Config{
		Name:                  "Netflix",
		NumUsers:              scaled(4595, s),
		NumItems:              scaled(1777, s),
		NumRatings:            scaled(98_754, s),
		ZipfExponent:          1.3,
		MinRatingsPerUser:     3,
		RatingLevels:          wholeStars,
		LatentDim:             12,
		NoiseStd:              0.45,
		PopularityRatingBoost: 0.15,
		Seed:                  104,
	}
}

// AllPresets returns the five paper datasets in the order they appear in
// Table II.
func AllPresets(s Scale) []Config {
	return []Config{ML100K(s), ML1M(s), ML10M(s), MT200K(s), NetflixSample(s)}
}

// Kappa returns the per-dataset train ratio κ used in the paper: 0.5 for the
// MovieLens datasets, 0.8 for MT-200K, and 0.8 for the Netflix stand-in
// (the paper uses the official probe split, which holds out a small
// fraction; 0.8 keeps the same sparse-test character).
func Kappa(name string) float64 {
	switch name {
	case "ML-100K", "ML-1M", "ML-10M":
		return 0.5
	case "MT-200K":
		return 0.8
	case "Netflix":
		return 0.8
	default:
		return 0.8
	}
}
