package eval

import (
	"sort"

	"ganc/internal/types"
)

// Lorenz-curve and aggregate-diversity helpers. The Gini coefficient reported
// in Table III is the summary statistic of the Lorenz curve of recommendation
// frequencies; exposing the curve itself lets callers plot how concentrated a
// recommender's exposure is (the visual counterpart of the paper's Gini@N
// column) and quantify aggregate diversity the way Adomavicius & Kwon do.

// LorenzPoint is one point of a Lorenz curve: after including the
// `ItemShare` least-recommended fraction of the catalog, those items together
// account for `ExposureShare` of all recommendations.
type LorenzPoint struct {
	ItemShare     float64
	ExposureShare float64
}

// LorenzCurve computes the Lorenz curve of a recommendation-frequency vector
// at `points` evenly spaced item-share positions (plus the origin). A uniform
// distribution yields the diagonal; heavy concentration bows the curve toward
// the bottom-right. An empty or all-zero frequency vector returns only the
// origin.
func LorenzCurve(freq []int, points int) []LorenzPoint {
	if points <= 0 {
		points = 10
	}
	out := []LorenzPoint{{ItemShare: 0, ExposureShare: 0}}
	n := len(freq)
	if n == 0 {
		return out
	}
	sorted := make([]float64, n)
	total := 0.0
	for i, f := range freq {
		sorted[i] = float64(f)
		total += float64(f)
	}
	if total == 0 {
		return out
	}
	sort.Float64s(sorted)
	cum := make([]float64, n+1)
	for i, f := range sorted {
		cum[i+1] = cum[i] + f
	}
	for p := 1; p <= points; p++ {
		share := float64(p) / float64(points)
		idx := int(share * float64(n))
		if idx > n {
			idx = n
		}
		out = append(out, LorenzPoint{ItemShare: share, ExposureShare: cum[idx] / total})
	}
	return out
}

// RecommendationFrequencies counts how often each catalog item appears in the
// collection, truncating each list at n (pass n ≤ 0 to count full lists). The
// result is indexed by ItemID over a catalog of numItems items.
func RecommendationFrequencies(recs types.Recommendations, numItems, n int) []int {
	freq := make([]int, numItems)
	for _, set := range recs {
		list := set
		if n > 0 && len(list) > n {
			list = list[:n]
		}
		for _, i := range list {
			if int(i) >= 0 && int(i) < numItems {
				freq[i]++
			}
		}
	}
	return freq
}

// AggregateDiversity is the number of distinct items recommended at least
// once — the absolute form of Coverage@N used by the re-ranking literature.
func AggregateDiversity(freq []int) int {
	count := 0
	for _, f := range freq {
		if f > 0 {
			count++
		}
	}
	return count
}
