package eval

import (
	"math"
	"testing"
	"testing/quick"

	"ganc/internal/types"
)

func TestLorenzCurveUniformDistributionIsDiagonal(t *testing.T) {
	freq := []int{3, 3, 3, 3, 3}
	curve := LorenzCurve(freq, 5)
	if len(curve) != 6 {
		t.Fatalf("curve has %d points, want 6", len(curve))
	}
	for _, p := range curve {
		if math.Abs(p.ExposureShare-p.ItemShare) > 1e-9 {
			t.Fatalf("uniform distribution should give the diagonal, got %+v", p)
		}
	}
}

func TestLorenzCurveConcentratedDistributionBowsDown(t *testing.T) {
	freq := []int{0, 0, 0, 0, 100}
	curve := LorenzCurve(freq, 5)
	// At 80% of the (least-recommended) items, exposure share must still be 0.
	for _, p := range curve {
		if p.ItemShare <= 0.8+1e-9 && p.ExposureShare > 1e-9 {
			t.Fatalf("concentrated distribution should have zero exposure at %.2f items, got %+v", p.ItemShare, p)
		}
	}
	last := curve[len(curve)-1]
	if last.ItemShare != 1 || math.Abs(last.ExposureShare-1) > 1e-9 {
		t.Fatalf("curve must end at (1,1), got %+v", last)
	}
}

func TestLorenzCurveDegenerateInputs(t *testing.T) {
	if got := LorenzCurve(nil, 4); len(got) != 1 || got[0].ItemShare != 0 {
		t.Fatalf("empty input should return only the origin, got %v", got)
	}
	if got := LorenzCurve([]int{0, 0}, 4); len(got) != 1 {
		t.Fatalf("all-zero input should return only the origin, got %v", got)
	}
	if got := LorenzCurve([]int{1, 2}, 0); len(got) != 11 {
		t.Fatalf("non-positive points should fall back to 10, got %d points", len(got))
	}
}

func TestLorenzCurveMonotoneAndBelowDiagonalProperty(t *testing.T) {
	// Properties: the curve is non-decreasing in both coordinates and never
	// rises above the diagonal (the least-recommended x% of items can carry
	// at most x% of the exposure).
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		freq := make([]int, len(raw))
		for i, v := range raw {
			freq[i] = int(v)
		}
		curve := LorenzCurve(freq, 20)
		prev := LorenzPoint{}
		for _, p := range curve {
			if p.ExposureShare < prev.ExposureShare-1e-12 || p.ItemShare < prev.ItemShare-1e-12 {
				return false
			}
			if p.ExposureShare > p.ItemShare+1e-9 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRecommendationFrequenciesAndAggregateDiversity(t *testing.T) {
	recs := types.Recommendations{
		0: {0, 1, 2},
		1: {1, 2, 3},
	}
	freq := RecommendationFrequencies(recs, 5, 2)
	// Truncated at 2: user0 counts items 0,1; user1 counts items 1,2.
	if freq[0] != 1 || freq[1] != 2 || freq[2] != 1 || freq[3] != 0 {
		t.Fatalf("frequencies with truncation = %v", freq)
	}
	full := RecommendationFrequencies(recs, 5, 0)
	if full[3] != 1 {
		t.Fatalf("full-list frequencies = %v", full)
	}
	if AggregateDiversity(freq) != 3 {
		t.Fatalf("aggregate diversity = %d, want 3", AggregateDiversity(freq))
	}
	// Out-of-catalog items are ignored rather than panicking.
	weird := types.Recommendations{0: {99}}
	if got := RecommendationFrequencies(weird, 5, 0); len(got) != 5 {
		t.Fatal("out-of-range item broke the frequency vector")
	}
}

func TestLorenzGiniConsistency(t *testing.T) {
	// A distribution with a higher Gini must have a Lorenz curve that is
	// (weakly) lower at the midpoint.
	even := []int{5, 5, 5, 5}
	skewed := []int{1, 1, 1, 17}
	if Gini(skewed) <= Gini(even) {
		t.Fatal("fixture broken: skewed Gini should exceed even Gini")
	}
	evenMid := LorenzCurve(even, 2)[1].ExposureShare
	skewMid := LorenzCurve(skewed, 2)[1].ExposureShare
	if skewMid > evenMid+1e-9 {
		t.Fatalf("skewed Lorenz midpoint %.3f should not exceed even midpoint %.3f", skewMid, evenMid)
	}
}
