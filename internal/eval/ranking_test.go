package eval

import (
	"math"
	"testing"

	"ganc/internal/types"
)

func TestNDCGPerfectAndWorstRanking(t *testing.T) {
	sp := fixtureSplit()
	ev := NewEvaluator(sp, 0)
	// User 0's only relevant test item is item 3.
	perfect := types.Recommendations{0: {3, 4}}
	worst := types.Recommendations{0: {4, 6}}
	if got := ev.NDCG(perfect, 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("NDCG of a list with the relevant item first = %v, want 1", got)
	}
	if got := ev.NDCG(worst, 2); got != 0 {
		t.Fatalf("NDCG of a list with no relevant items = %v, want 0", got)
	}
}

func TestNDCGPositionDiscount(t *testing.T) {
	sp := fixtureSplit()
	ev := NewEvaluator(sp, 0)
	first := ev.NDCG(types.Recommendations{0: {3, 4, 6}}, 3)
	second := ev.NDCG(types.Recommendations{0: {4, 3, 6}}, 3)
	third := ev.NDCG(types.Recommendations{0: {4, 6, 3}}, 3)
	if !(first > second && second > third && third > 0) {
		t.Fatalf("NDCG should decay with the hit position: %v, %v, %v", first, second, third)
	}
}

func TestNDCGSkipsUsersWithoutRelevantItems(t *testing.T) {
	sp := fixtureSplit()
	ev := NewEvaluator(sp, 0)
	// User 2 has no relevant test items; their list alone gives NDCG 0 (no
	// users averaged).
	if got := ev.NDCG(types.Recommendations{2: {0, 1}}, 2); got != 0 {
		t.Fatalf("NDCG over only irrelevant users = %v, want 0", got)
	}
	// Mixing in user 0 with a perfect list averages only over user 0.
	got := ev.NDCG(types.Recommendations{0: {3}, 2: {0, 1}}, 1)
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("NDCG = %v, want 1 (only user 0 counted)", got)
	}
}

func TestMRR(t *testing.T) {
	sp := fixtureSplit()
	ev := NewEvaluator(sp, 0)
	// user0: relevant item 3 at position 2 → 1/2; user1: relevant item 5 at
	// position 1 → 1. Mean = 0.75.
	recs := types.Recommendations{
		0: {4, 3},
		1: {5, 6},
	}
	if got := ev.MRR(recs, 2); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("MRR = %v, want 0.75", got)
	}
	if got := ev.MRR(types.Recommendations{0: {6}}, 1); got != 0 {
		t.Fatalf("MRR with no hits = %v, want 0", got)
	}
	if ev.MRR(nil, 5) != 0 || ev.MRR(recs, 0) != 0 {
		t.Fatal("degenerate MRR inputs should give 0")
	}
}

func TestHitRate(t *testing.T) {
	sp := fixtureSplit()
	ev := NewEvaluator(sp, 0)
	recs := types.Recommendations{
		0: {3, 4}, // hit
		1: {6, 4}, // miss (relevant item is 5)
	}
	if got := ev.HitRate(recs, 2); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("HitRate = %v, want 0.5", got)
	}
	if got := ev.HitRate(recs, 0); got != 0 {
		t.Fatal("n=0 hit rate should be 0")
	}
}

func TestRankingMetricsTruncateAtN(t *testing.T) {
	sp := fixtureSplit()
	ev := NewEvaluator(sp, 0)
	// The relevant item sits at position 3, beyond the cutoff of 2.
	recs := types.Recommendations{0: {4, 6, 3}}
	if got := ev.NDCG(recs, 2); got != 0 {
		t.Fatalf("NDCG beyond cutoff = %v, want 0", got)
	}
	if got := ev.MRR(recs, 2); got != 0 {
		t.Fatalf("MRR beyond cutoff = %v, want 0", got)
	}
	if got := ev.HitRate(recs, 2); got != 0 {
		t.Fatalf("HitRate beyond cutoff = %v, want 0", got)
	}
}
