package eval

import (
	"ganc/internal/dataset"
	"ganc/internal/recommender"
	"ganc/internal/types"
)

// Protocol selects which candidate items are ranked for each user when
// building a top-N set for evaluation, following the terminology of Steck
// (2013) that the paper's Appendix C adopts.
type Protocol int

const (
	// ProtocolAllUnrated ranks every item not in the user's train set (the
	// paper's main protocol: closest to real deployment accuracy).
	ProtocolAllUnrated Protocol = iota
	// ProtocolRatedTestItems ranks only the items the user rated in the test
	// set. Accuracy looks much higher under this protocol; the paper's
	// Appendix C quantifies that bias.
	ProtocolRatedTestItems
)

// String names the protocol for experiment output.
func (p Protocol) String() string {
	switch p {
	case ProtocolAllUnrated:
		return "all-unrated-items"
	case ProtocolRatedTestItems:
		return "rated-test-items"
	default:
		return "unknown-protocol"
	}
}

// RecommendWithProtocol produces the top-N collection for every user under
// the chosen protocol using an arbitrary scorer.
//
// Under the all-unrated protocol the candidate pool is the full catalog minus
// the user's train items. Under the rated-test-items protocol the pool is the
// user's test items only (users without test ratings receive no list and are
// skipped, as in the paper's evaluation).
func RecommendWithProtocol(scorer recommender.Scorer, split *dataset.Split, n int, protocol Protocol) types.Recommendations {
	train, test := split.Train, split.Test
	recs := make(types.Recommendations, train.NumUsers())
	switch protocol {
	case ProtocolRatedTestItems:
		for u := 0; u < train.NumUsers(); u++ {
			uid := types.UserID(u)
			testItems := test.UserItems(uid)
			if len(testItems) == 0 {
				continue
			}
			// Rank only the user's test items.
			items := append([]types.ItemID(nil), testItems...)
			recommender.SortItemsByScoreDesc(items, func(i types.ItemID) float64 {
				return scorer.Score(uid, i)
			})
			if len(items) > n {
				items = items[:n]
			}
			recs[uid] = types.TopNSet(items)
		}
	default: // ProtocolAllUnrated
		top := &recommender.ScorerTopN{Scorer: scorer, NumItems: train.NumItems()}
		for u := 0; u < train.NumUsers(); u++ {
			uid := types.UserID(u)
			recs[uid] = top.Recommend(uid, n, train.UserItemSet(uid))
		}
	}
	return recs
}
