package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ganc/internal/dataset"
	"ganc/internal/recommender"
	"ganc/internal/types"
)

// fixtureSplit builds a hand-crafted split with known relevance structure:
//
//	train: user0 rated items 0,1; user1 rated items 0,2; user2 rated item 0
//	test:  user0 rated item 3 with 5 (relevant) and item 4 with 2 (not)
//	       user1 rated item 5 with 4 (relevant)
//	       user2 has no test ratings
//
// Item 0 is the popular head item (3 train ratings).
func fixtureSplit() *dataset.Split {
	bTrain := dataset.NewBuilder("train", 8)
	bTrain.AddIDs(0, 0, 5)
	bTrain.AddIDs(0, 1, 4)
	bTrain.AddIDs(1, 0, 4)
	bTrain.AddIDs(1, 2, 3)
	bTrain.AddIDs(2, 0, 2)
	// Items 3, 4, 5, 6 exist in the catalog (rated once by a filler user so
	// the ID space includes them, mirroring a shared parent ID space).
	bTrain.AddIDs(3, 3, 3)
	bTrain.AddIDs(3, 4, 3)
	bTrain.AddIDs(3, 5, 3)
	bTrain.AddIDs(3, 6, 3)
	train := bTrain.Build()

	bTest := dataset.NewBuilder("test", 4)
	bTest.AddIDs(0, 3, 5)
	bTest.AddIDs(0, 4, 2)
	bTest.AddIDs(1, 5, 4)
	test := bTest.Build()
	// Expand test's ID space to match train by registering the same items.
	// (FromRatings-style datasets share nothing, so rebuild via parent.)
	parentB := dataset.NewBuilder("parent", 16)
	for _, r := range train.Ratings() {
		parentB.AddIDs(r.User, r.Item, r.Value)
	}
	for _, r := range test.Ratings() {
		parentB.AddIDs(r.User, r.Item, r.Value)
	}
	parent := parentB.Build()
	// Manually build the split with shared ID spaces.
	trainChild := parent.SubsetUsers([]types.UserID{0, 1, 2, 3})
	_ = trainChild
	return &dataset.Split{Parent: parent, Train: train, Test: test, Kappa: 0.8}
}

func TestEvaluatePrecisionRecallFMeasure(t *testing.T) {
	sp := fixtureSplit()
	ev := NewEvaluator(sp, 0)
	recs := types.Recommendations{
		0: {3, 4}, // hit on 3 (relevant), miss on 4
		1: {6, 5}, // hit on 5
		2: {3, 4}, // user2 has no relevant test items
	}
	rep := ev.Evaluate("probe", recs, 2)
	// Precision: user0 1/2, user1 1/2, user2 0/2 → 1/3.
	if math.Abs(rep.Precision-1.0/3) > 1e-9 {
		t.Fatalf("Precision = %v, want 1/3", rep.Precision)
	}
	// Recall: averaged over users with relevant items (user0: 1/1, user1: 1/1) → 1.
	if math.Abs(rep.Recall-1.0) > 1e-9 {
		t.Fatalf("Recall = %v, want 1", rep.Recall)
	}
	wantF := rep.Precision * rep.Recall / (rep.Precision + rep.Recall)
	if math.Abs(rep.FMeasure-wantF) > 1e-12 {
		t.Fatalf("FMeasure = %v, want %v", rep.FMeasure, wantF)
	}
	if rep.UsersEvaluated != 3 {
		t.Fatalf("UsersEvaluated = %d", rep.UsersEvaluated)
	}
}

func TestEvaluateLTAccuracy(t *testing.T) {
	sp := fixtureSplit()
	ev := NewEvaluator(sp, 0)
	tail := ev.LongTail()
	// Head item 0 must not be long-tail; the once-rated items are.
	if _, isTail := tail[0]; isTail {
		t.Fatal("item 0 should be head")
	}
	recs := types.Recommendations{
		0: {0, 3}, // one head, one tail (item 3 rated once)
	}
	rep := ev.Evaluate("lt", recs, 2)
	if _, tail3 := tail[3]; tail3 {
		if math.Abs(rep.LTAccuracy-0.5) > 1e-9 {
			t.Fatalf("LTAccuracy = %v, want 0.5", rep.LTAccuracy)
		}
	}
}

func TestEvaluateCoverageAndGini(t *testing.T) {
	sp := fixtureSplit()
	ev := NewEvaluator(sp, 0)
	numItems := sp.Train.NumItems()
	// Every user gets the same two items → low coverage, high gini.
	concentrated := types.Recommendations{0: {0, 1}, 1: {0, 1}, 2: {0, 1}}
	repC := ev.Evaluate("conc", concentrated, 2)
	if math.Abs(repC.Coverage-2.0/float64(numItems)) > 1e-9 {
		t.Fatalf("Coverage = %v, want %v", repC.Coverage, 2.0/float64(numItems))
	}
	// Spread recommendations across distinct items → higher coverage, lower gini.
	spread := types.Recommendations{0: {0, 1}, 1: {2, 3}, 2: {4, 5}}
	repS := ev.Evaluate("spread", spread, 2)
	if repS.Coverage <= repC.Coverage {
		t.Fatal("spread coverage should exceed concentrated coverage")
	}
	if repS.Gini >= repC.Gini {
		t.Fatalf("spread gini %v should be below concentrated gini %v", repS.Gini, repC.Gini)
	}
}

func TestGiniKnownValues(t *testing.T) {
	// Perfect equality: every item recommended once → gini 0.
	if g := Gini([]int{1, 1, 1, 1}); math.Abs(g) > 1e-9 {
		t.Fatalf("uniform gini = %v, want 0", g)
	}
	// All recommendations on a single item out of n: gini → (n-1)/n.
	g := Gini([]int{0, 0, 0, 10})
	if math.Abs(g-0.75) > 1e-9 {
		t.Fatalf("single-item gini = %v, want 0.75", g)
	}
	// Empty or all-zero frequency vectors are defined as 0.
	if Gini(nil) != 0 || Gini([]int{0, 0}) != 0 {
		t.Fatal("degenerate gini should be 0")
	}
}

func TestGiniMonotoneUnderConcentrationProperty(t *testing.T) {
	// Property: moving one recommendation from a less-recommended item to a
	// more-recommended item never decreases the Gini coefficient.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8
		freq := make([]int, n)
		for i := range freq {
			freq[i] = rng.Intn(20) + 1
		}
		before := Gini(freq)
		// Pick donor = a minimum item, recipient = a maximum item.
		lo, hi := 0, 0
		for i, f := range freq {
			if f < freq[lo] {
				lo = i
			}
			if f > freq[hi] {
				hi = i
			}
		}
		if lo == hi || freq[lo] == 0 {
			return true
		}
		freq[lo]--
		freq[hi]++
		after := Gini(freq)
		return after >= before-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageHelper(t *testing.T) {
	if Coverage([]int{1, 0, 2, 0}) != 0.5 {
		t.Fatal("Coverage helper wrong")
	}
	if Coverage(nil) != 0 {
		t.Fatal("empty coverage should be 0")
	}
}

func TestStratifiedRecallWeightsRareHitsHigher(t *testing.T) {
	sp := fixtureSplit()
	ev := NewEvaluator(sp, 0.5)
	// Construct two single-user collections: one hits the user's relevant
	// item (item 3, popularity 1), another misses. Stratified recall of the
	// hit must be positive and ≤ 1; the miss is 0.
	hit := types.Recommendations{0: {3}}
	miss := types.Recommendations{0: {6}}
	if got := ev.Evaluate("hit", hit, 1).StratRecall; got <= 0 || got > 1 {
		t.Fatalf("hit stratified recall = %v", got)
	}
	if got := ev.Evaluate("miss", miss, 1).StratRecall; got != 0 {
		t.Fatalf("miss stratified recall = %v, want 0", got)
	}
}

func TestStratifiedRecallEmphasizesLongTailOverHead(t *testing.T) {
	// Build a split where user0 has two relevant test items: one popular in
	// train, one rare. Hitting only the rare one must yield higher stratified
	// recall than hitting only the popular one, even though plain recall is
	// identical (1/2 each).
	bTrain := dataset.NewBuilder("train", 16)
	for u := 0; u < 6; u++ {
		bTrain.AddIDs(types.UserID(u), 0, 4) // item 0: popular
	}
	bTrain.AddIDs(5, 1, 4) // item 1: rated once
	bTrain.AddIDs(0, 2, 3) // filler so user0 exists in train
	train := bTrain.Build()
	bTest := dataset.NewBuilder("test", 4)
	bTest.AddIDs(0, 0, 5)
	bTest.AddIDs(0, 1, 5)
	test := bTest.Build()
	sp := &dataset.Split{Parent: train, Train: train, Test: test, Kappa: 0.5}
	ev := NewEvaluator(sp, 0.5)

	hitPopular := ev.Evaluate("pop-hit", types.Recommendations{0: {0}}, 1)
	hitRare := ev.Evaluate("rare-hit", types.Recommendations{0: {1}}, 1)
	if hitRare.StratRecall <= hitPopular.StratRecall {
		t.Fatalf("rare hit stratified recall %v should exceed popular hit %v",
			hitRare.StratRecall, hitPopular.StratRecall)
	}
	if hitRare.Recall != hitPopular.Recall {
		t.Fatalf("plain recall should be identical: %v vs %v", hitRare.Recall, hitPopular.Recall)
	}
}

func TestEvaluateTruncatesLongLists(t *testing.T) {
	sp := fixtureSplit()
	ev := NewEvaluator(sp, 0)
	recs := types.Recommendations{0: {3, 4, 5, 6, 0, 1}}
	rep := ev.Evaluate("trunc", recs, 2)
	// Only the first two items count: hit on 3, miss on 4 → precision 1/2.
	if math.Abs(rep.Precision-0.5) > 1e-9 {
		t.Fatalf("Precision with truncation = %v, want 0.5", rep.Precision)
	}
}

func TestEvaluateDegenerateInputs(t *testing.T) {
	sp := fixtureSplit()
	ev := NewEvaluator(sp, 0)
	if rep := ev.Evaluate("none", types.Recommendations{}, 5); rep.FMeasure != 0 || rep.Coverage != 0 {
		t.Fatal("empty recommendations should produce zero metrics")
	}
	if rep := ev.Evaluate("zero-n", types.Recommendations{0: {1}}, 0); rep.Precision != 0 {
		t.Fatal("n=0 should produce zero metrics")
	}
}

func TestRankReportsAverageRank(t *testing.T) {
	reports := []Report{
		{Algorithm: "A", FMeasure: 0.3, StratRecall: 0.3, LTAccuracy: 0.3, Coverage: 0.3, Gini: 0.2},
		{Algorithm: "B", FMeasure: 0.2, StratRecall: 0.2, LTAccuracy: 0.2, Coverage: 0.2, Gini: 0.5},
		{Algorithm: "C", FMeasure: 0.1, StratRecall: 0.1, LTAccuracy: 0.1, Coverage: 0.1, Gini: 0.9},
	}
	ranks := RankReports(reports)
	if ranks["A"] >= ranks["B"] || ranks["B"] >= ranks["C"] {
		t.Fatalf("rank ordering wrong: %v", ranks)
	}
	if ranks["A"] != 1 {
		t.Fatalf("algorithm A should rank 1 on every metric, got %v", ranks["A"])
	}
	if RankReports(nil) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestRankReportsGiniLowerIsBetter(t *testing.T) {
	reports := []Report{
		{Algorithm: "lowGini", FMeasure: 0.1, StratRecall: 0.1, LTAccuracy: 0.1, Coverage: 0.1, Gini: 0.1},
		{Algorithm: "highGini", FMeasure: 0.1, StratRecall: 0.1, LTAccuracy: 0.1, Coverage: 0.1, Gini: 0.9},
	}
	ranks := RankReports(reports)
	if ranks["lowGini"] >= ranks["highGini"] {
		t.Fatalf("lower gini should improve the average rank: %v", ranks)
	}
}

func TestProtocolStrings(t *testing.T) {
	if ProtocolAllUnrated.String() != "all-unrated-items" || ProtocolRatedTestItems.String() != "rated-test-items" {
		t.Fatal("protocol names wrong")
	}
	if Protocol(99).String() != "unknown-protocol" {
		t.Fatal("unknown protocol name wrong")
	}
}

func TestRecommendWithProtocolAllUnratedExcludesTrainItems(t *testing.T) {
	sp := fixtureSplit()
	pop := recommender.NewPop(sp.Train)
	recs := RecommendWithProtocol(pop, sp, 3, ProtocolAllUnrated)
	for u, set := range recs {
		trainItems := sp.Train.UserItemSet(u)
		for _, i := range set {
			if _, bad := trainItems[i]; bad {
				t.Fatalf("user %d recommended train item %d", u, i)
			}
		}
	}
}

func TestRecommendWithProtocolRatedTestItemsOnlyRanksTestItems(t *testing.T) {
	sp := fixtureSplit()
	pop := recommender.NewPop(sp.Train)
	recs := RecommendWithProtocol(pop, sp, 3, ProtocolRatedTestItems)
	// User 0 has test items {3, 4}; their list must be a subset of those.
	for _, i := range recs[0] {
		if i != 3 && i != 4 {
			t.Fatalf("rated-test-items protocol produced out-of-pool item %d", i)
		}
	}
	// User 2 has no test ratings → no list.
	if len(recs[2]) != 0 {
		t.Fatalf("user without test ratings received a list: %v", recs[2])
	}
}

func TestProtocolBiasMatchesAppendixC(t *testing.T) {
	// The paper's Appendix C observation: accuracy measured under the
	// rated-test-items protocol is (much) higher than under the all-unrated
	// protocol for the same model. Verify with Pop on a synthetic-ish split.
	bTrain := dataset.NewBuilder("train", 64)
	bTest := dataset.NewBuilder("test", 32)
	rng := rand.New(rand.NewSource(4))
	for u := 0; u < 12; u++ {
		for i := 0; i < 12; i++ {
			if rng.Float64() < 0.4 {
				bTrain.AddIDs(types.UserID(u), types.ItemID(i), float64(1+rng.Intn(5)))
			} else if rng.Float64() < 0.3 {
				bTest.AddIDs(types.UserID(u), types.ItemID(i), float64(3+rng.Intn(3)))
			}
		}
	}
	sp := &dataset.Split{Train: bTrain.Build(), Test: bTest.Build(), Kappa: 0.5}
	ev := NewEvaluator(sp, 0)
	pop := recommender.NewPop(sp.Train)
	allUnrated := ev.Evaluate("pop-all", RecommendWithProtocol(pop, sp, 3, ProtocolAllUnrated), 3)
	ratedOnly := ev.Evaluate("pop-rated", RecommendWithProtocol(pop, sp, 3, ProtocolRatedTestItems), 3)
	if ratedOnly.Precision < allUnrated.Precision {
		t.Fatalf("rated-test-items precision %v should be at least all-unrated precision %v",
			ratedOnly.Precision, allUnrated.Precision)
	}
}
