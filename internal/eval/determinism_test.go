package eval

import (
	"math/rand"
	"testing"

	"ganc/internal/dataset"
	"ganc/internal/types"
)

// TestEvaluateIsDeterministicAcrossMapInstances pins the sorted-user
// iteration: two Recommendations maps with identical content but different
// insertion histories (and therefore different map iteration orders) must
// produce bitwise-identical reports — floating-point accumulation order is
// part of the output contract for comparison tables and golden tests.
func TestEvaluateIsDeterministicAcrossMapInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var ratings []types.Rating
	const numUsers, numItems = 60, 120
	ratings = append(ratings, types.Rating{User: numUsers - 1, Item: numItems - 1, Value: 5})
	for k := 0; k < 2500; k++ {
		ratings = append(ratings, types.Rating{
			User:  types.UserID(rng.Intn(numUsers)),
			Item:  types.ItemID(rng.Intn(numItems)),
			Value: float64(1 + rng.Intn(5)),
		})
	}
	d := dataset.FromRatings("determinism", ratings)
	sp := d.SplitByUser(0.7, rand.New(rand.NewSource(1)))
	ev := NewEvaluator(sp, 0)

	build := func(order []int) types.Recommendations {
		recs := make(types.Recommendations, numUsers)
		for _, u := range order {
			set := make(types.TopNSet, 0, 5)
			lrng := rand.New(rand.NewSource(int64(u) + 99))
			for len(set) < 5 {
				i := types.ItemID(lrng.Intn(numItems))
				if !set.Contains(i) {
					set = append(set, i)
				}
			}
			recs[types.UserID(u)] = set
		}
		return recs
	}
	forward := make([]int, numUsers)
	for u := range forward {
		forward[u] = u
	}
	shuffled := append([]int(nil), forward...)
	rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })

	repA := ev.Evaluate("algo", build(forward), 5)
	repB := ev.Evaluate("algo", build(shuffled), 5)
	if repA != repB {
		t.Fatalf("reports differ across map instances:\n%+v\n%+v", repA, repB)
	}
	if a, b := ev.NDCG(build(forward), 5), ev.NDCG(build(shuffled), 5); a != b {
		t.Fatalf("NDCG differs: %v vs %v", a, b)
	}
	if a, b := ev.MRR(build(forward), 5), ev.MRR(build(shuffled), 5); a != b {
		t.Fatalf("MRR differs: %v vs %v", a, b)
	}
	if a, b := ev.HitRate(build(forward), 5), ev.HitRate(build(shuffled), 5); a != b {
		t.Fatalf("HitRate differs: %v vs %v", a, b)
	}
}
