package eval

import (
	"math"

	"ganc/internal/types"
)

// Ranking quality metrics beyond the paper's Table III. NDCG is the measure
// CoFiRank optimizes; MRR and HitRate are common companions. They are exposed
// so downstream users can compare GANC against position-sensitive accuracy
// measures, and so the CofiN variant has a native yardstick.

// NDCG computes the mean Normalized Discounted Cumulative Gain at cutoff n
// over a recommendation collection, using binary relevance (a hit is a test
// item rated at or above the relevance threshold). Users without relevant
// test items are skipped, mirroring how recall-style metrics are averaged.
func (e *Evaluator) NDCG(recs types.Recommendations, n int) float64 {
	if n <= 0 {
		return 0
	}
	sum, users := 0.0, 0
	for _, u := range recs.SortedUsers() {
		set := recs[u]
		rel := e.relevant[u]
		if len(rel) == 0 {
			continue
		}
		if len(set) > n {
			set = set[:n]
		}
		dcg := 0.0
		for pos, i := range set {
			if _, ok := rel[i]; ok {
				dcg += 1 / math.Log2(float64(pos)+2)
			}
		}
		ideal := 0.0
		idealHits := len(rel)
		if idealHits > n {
			idealHits = n
		}
		for pos := 0; pos < idealHits; pos++ {
			ideal += 1 / math.Log2(float64(pos)+2)
		}
		if ideal > 0 {
			sum += dcg / ideal
			users++
		}
	}
	if users == 0 {
		return 0
	}
	return sum / float64(users)
}

// MRR computes the mean reciprocal rank of the first relevant item within the
// top-n, averaged over users with at least one relevant test item.
func (e *Evaluator) MRR(recs types.Recommendations, n int) float64 {
	if n <= 0 {
		return 0
	}
	sum, users := 0.0, 0
	for _, u := range recs.SortedUsers() {
		set := recs[u]
		rel := e.relevant[u]
		if len(rel) == 0 {
			continue
		}
		users++
		if len(set) > n {
			set = set[:n]
		}
		for pos, i := range set {
			if _, ok := rel[i]; ok {
				sum += 1 / float64(pos+1)
				break
			}
		}
	}
	if users == 0 {
		return 0
	}
	return sum / float64(users)
}

// HitRate computes the fraction of users (with relevant test items) whose
// top-n contains at least one relevant item.
func (e *Evaluator) HitRate(recs types.Recommendations, n int) float64 {
	if n <= 0 {
		return 0
	}
	hits, users := 0, 0
	for _, u := range recs.SortedUsers() {
		set := recs[u]
		rel := e.relevant[u]
		if len(rel) == 0 {
			continue
		}
		users++
		if len(set) > n {
			set = set[:n]
		}
		for _, i := range set {
			if _, ok := rel[i]; ok {
				hits++
				break
			}
		}
	}
	if users == 0 {
		return 0
	}
	return float64(hits) / float64(users)
}
