// Package eval implements the performance metrics of the paper's Table III —
// local ranking accuracy (Precision@N, Recall@N, F-measure@N), long-tail
// promotion (LTAccuracy@N, Stratified Recall@N) and coverage (Coverage@N,
// Gini@N) — together with the two test ranking protocols compared in the
// paper's Appendix C (all-unrated-items and rated-test-items).
package eval

import (
	"fmt"
	"math"
	"sort"

	"ganc/internal/dataset"
	"ganc/internal/types"
)

// RelevanceThreshold is the rating at or above which a test item counts as
// relevant (the paper uses r_ui ≥ 4).
const RelevanceThreshold = 4.0

// DefaultStratifiedBeta is the β exponent of Stratified Recall; the paper
// follows Steck (2013) and uses 0.5.
const DefaultStratifiedBeta = 0.5

// Report holds every Table III metric for one algorithm at one N.
type Report struct {
	Algorithm string
	N         int

	Precision   float64
	Recall      float64
	FMeasure    float64
	LTAccuracy  float64
	StratRecall float64
	Coverage    float64
	Gini        float64

	// UsersEvaluated is the number of users included in the precision/recall
	// averages (those with at least one recommendation).
	UsersEvaluated int
}

// String renders the report as a single table row.
func (r Report) String() string {
	return fmt.Sprintf("%-34s F@%d=%.4f S@%d=%.4f L@%d=%.4f C@%d=%.4f G@%d=%.4f",
		r.Algorithm, r.N, r.FMeasure, r.N, r.StratRecall, r.N, r.LTAccuracy, r.N, r.Coverage, r.N, r.Gini)
}

// Evaluator computes metrics for recommendation collections against a fixed
// train/test split. Construct once per split and reuse across algorithms so
// the long-tail set, item popularities and relevant-item index are shared.
type Evaluator struct {
	train    *dataset.Dataset
	test     *dataset.Dataset
	numItems int

	relevant map[types.UserID]map[types.ItemID]struct{}
	tail     map[types.ItemID]struct{}
	trainPop []int
	beta     float64

	// stratDen is the Stratified Recall denominator — the summed weights of
	// every relevant test item. It is precomputed in deterministic (sorted)
	// order once, so repeated Evaluate calls produce bitwise-identical
	// reports instead of re-summing floats in randomized map order.
	stratDen float64
}

// NewEvaluator builds an evaluator for the given split. beta ≤ 0 selects the
// default Stratified Recall exponent of 0.5.
func NewEvaluator(split *dataset.Split, beta float64) *Evaluator {
	if beta <= 0 {
		beta = DefaultStratifiedBeta
	}
	rel := make(map[types.UserID]map[types.ItemID]struct{})
	for u, items := range dataset.RelevantTestItems(split.Test, RelevanceThreshold) {
		set := make(map[types.ItemID]struct{}, len(items))
		for _, i := range items {
			set[i] = struct{}{}
		}
		rel[u] = set
	}
	e := &Evaluator{
		train:    split.Train,
		test:     split.Test,
		numItems: split.Train.NumItems(),
		relevant: rel,
		tail:     split.Train.LongTail(dataset.DefaultTailShare),
		trainPop: split.Train.PopularityVector(),
		beta:     beta,
	}
	users := make([]types.UserID, 0, len(rel))
	for u := range rel {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
	for _, u := range users {
		items := make([]types.ItemID, 0, len(rel[u]))
		for i := range rel[u] {
			items = append(items, i)
		}
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		for _, i := range items {
			e.stratDen += e.stratWeight(i)
		}
	}
	return e
}

// LongTail exposes the train-set long-tail item set used by LTAccuracy.
func (e *Evaluator) LongTail() map[types.ItemID]struct{} { return e.tail }

// RelevantItems returns the relevant test items of user u (rated ≥ 4).
func (e *Evaluator) RelevantItems(u types.UserID) map[types.ItemID]struct{} { return e.relevant[u] }

// Evaluate computes the full Table III report for a recommendation
// collection produced by algorithm `name` at cutoff n. Lists longer than n
// are truncated; shorter lists are evaluated as-is (matching the paper's
// fixed-size top-N sets, which are always exactly N in practice).
func (e *Evaluator) Evaluate(name string, recs types.Recommendations, n int) Report {
	rep := Report{Algorithm: name, N: n}
	if n <= 0 || len(recs) == 0 {
		return rep
	}

	var (
		sumPrecision float64
		sumRecall    float64
		usersWithRel int
		usersEval    int

		longTailHits int
		totalRecs    int

		stratNum float64
	)
	itemFreq := make([]int, e.numItems)

	// Iterate users in sorted order: the report's floating-point sums (and
	// therefore printed comparison tables and golden tests) are then stable
	// run to run instead of following randomized map order.
	for _, u := range recs.SortedUsers() {
		set := recs[u]
		if len(set) > n {
			set = set[:n]
		}
		if len(set) == 0 {
			continue
		}
		usersEval++
		rel := e.relevant[u]

		hits := 0
		for _, i := range set {
			if int(i) < e.numItems {
				itemFreq[i]++
			}
			totalRecs++
			if _, isTail := e.tail[i]; isTail {
				longTailHits++
			}
			if rel != nil {
				if _, ok := rel[i]; ok {
					hits++
					stratNum += e.stratWeight(i)
				}
			}
		}
		sumPrecision += float64(hits) / float64(n)
		if len(rel) > 0 {
			usersWithRel++
			sumRecall += float64(hits) / float64(len(rel))
		}
	}

	if usersEval > 0 {
		rep.Precision = sumPrecision / float64(usersEval)
	}
	if usersWithRel > 0 {
		rep.Recall = sumRecall / float64(usersWithRel)
	}
	if rep.Precision+rep.Recall > 0 {
		rep.FMeasure = rep.Precision * rep.Recall / (rep.Precision + rep.Recall)
	}
	if totalRecs > 0 {
		rep.LTAccuracy = float64(longTailHits) / float64(totalRecs)
	}
	rep.StratRecall = e.stratRecall(stratNum)
	rep.Coverage = coverageFromFreq(itemFreq)
	rep.Gini = giniFromFreq(itemFreq)
	rep.UsersEvaluated = usersEval
	return rep
}

// stratWeight is (1/f_i^R)^β, the stratified-recall weight of a hit on item i.
func (e *Evaluator) stratWeight(i types.ItemID) float64 {
	pop := 1.0
	if int(i) < len(e.trainPop) && e.trainPop[i] > 0 {
		pop = float64(e.trainPop[i])
	}
	return math.Pow(1/pop, e.beta)
}

// stratRecall finishes the Stratified Recall computation: the numerator is
// the summed weights of the hits, the denominator the precomputed summed
// weights of all relevant test items across users.
func (e *Evaluator) stratRecall(num float64) float64 {
	if e.stratDen == 0 {
		return 0
	}
	return num / e.stratDen
}

// coverageFromFreq is |distinct recommended items| / |I|.
func coverageFromFreq(freq []int) float64 {
	if len(freq) == 0 {
		return 0
	}
	distinct := 0
	for _, f := range freq {
		if f > 0 {
			distinct++
		}
	}
	return float64(distinct) / float64(len(freq))
}

// giniFromFreq computes the Gini coefficient of the recommendation frequency
// distribution using the paper's formula (Table III): the vector is sorted in
// non-decreasing order and
//
//	Gini = (1/|I|) · (|I| + 1 − 2·Σ_j (|I|+1−j)·f[j] / Σ_j f[j])
//
// 0 means every item is recommended equally often; values near 1 mean the
// recommendations concentrate on a few items.
func giniFromFreq(freq []int) float64 {
	n := len(freq)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	total := 0.0
	for i, f := range freq {
		sorted[i] = float64(f)
		total += float64(f)
	}
	if total == 0 {
		return 0
	}
	sort.Float64s(sorted)
	weighted := 0.0
	for j, f := range sorted {
		// j is zero-based; the formula's j is one-based.
		weighted += float64(n-j) * f
	}
	return (float64(n) + 1 - 2*weighted/total) / float64(n)
}

// Gini is the exported form of giniFromFreq for callers that already hold a
// frequency vector (e.g. the experiment harness's ablation output).
func Gini(freq []int) float64 { return giniFromFreq(freq) }

// Coverage is the exported form of coverageFromFreq.
func Coverage(freq []int) float64 { return coverageFromFreq(freq) }

// RankReports orders reports by ascending average rank across the five
// headline metrics (F-measure, Stratified Recall, LTAccuracy, Coverage and
// Gini), reproducing the "Score" column of the paper's Table IV. Higher is
// better for every metric except Gini, where lower is better. The returned
// map gives each algorithm's average rank.
func RankReports(reports []Report) map[string]float64 {
	if len(reports) == 0 {
		return nil
	}
	type metricAccessor struct {
		value  func(Report) float64
		higher bool
	}
	metrics := []metricAccessor{
		{func(r Report) float64 { return r.FMeasure }, true},
		{func(r Report) float64 { return r.StratRecall }, true},
		{func(r Report) float64 { return r.LTAccuracy }, true},
		{func(r Report) float64 { return r.Coverage }, true},
		{func(r Report) float64 { return r.Gini }, false},
	}
	sums := make(map[string]float64, len(reports))
	for _, m := range metrics {
		idx := make([]int, len(reports))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			va, vb := m.value(reports[idx[a]]), m.value(reports[idx[b]])
			if m.higher {
				return va > vb
			}
			return va < vb
		})
		// Assign ranks, sharing the rank for exact ties.
		rank := 0
		for pos, ri := range idx {
			if pos == 0 || m.value(reports[ri]) != m.value(reports[idx[pos-1]]) {
				rank = pos + 1
			}
			sums[reports[ri].Algorithm] += float64(rank)
		}
	}
	for name := range sums {
		sums[name] /= float64(len(metrics))
	}
	return sums
}
