package experiment

import (
	"fmt"

	"ganc/internal/eval"
	"ganc/internal/longtail"
	"ganc/internal/recommender"
	"ganc/internal/rerank"
	"ganc/internal/types"
)

// --- Table IV --------------------------------------------------------------------

// TableIVResult holds the re-ranking comparison for one dataset: the full
// metric reports and the average-rank "Score" column.
type TableIVResult struct {
	Dataset string
	Reports []eval.Report
	// AvgRank maps each algorithm to its average rank across the five
	// metrics (lower is better), the paper's Score column.
	AvgRank map[string]float64
}

// TableIV reproduces the paper's Table IV on the given datasets: RSVD and
// every re-ranking method applied on top of it (5D, 5D(A,RR), RBT(Pop),
// RBT(Avg), PRA(10), PRA(20)), plus GANC(RSVD, θ^T, Dyn) and
// GANC(RSVD, θ^G, Dyn), all at the suite's N.
func (s *Suite) TableIV(datasets []string) ([]TableIVResult, string, error) {
	if len(datasets) == 0 {
		datasets = DatasetNames()
	}
	var results []TableIVResult
	text := ""
	for _, name := range datasets {
		res, block, err := s.tableIVForDataset(name)
		if err != nil {
			return nil, "", err
		}
		results = append(results, *res)
		text += block + "\n"
	}
	return results, text, nil
}

func (s *Suite) tableIVForDataset(datasetName string) (*TableIVResult, string, error) {
	ev, err := s.Evaluator(datasetName)
	if err != nil {
		return nil, "", err
	}
	n := s.N
	var reports []eval.Report

	// Base model: the plain RSVD ranking.
	baseRecs, err := s.RunBaseline(datasetName, BaselineRSVD, n)
	if err != nil {
		return nil, "", err
	}
	reports = append(reports, ev.Evaluate("RSVD", baseRecs, n))

	// Re-ranking baselines on top of RSVD.
	for _, variant := range []string{"5D", "5D-A-RR", "RBT-Pop", "RBT-Avg", "PRA-10", "PRA-20"} {
		recs, label, err := s.RunReranker(datasetName, variant, n)
		if err != nil {
			return nil, "", err
		}
		reports = append(reports, ev.Evaluate(label, recs, n))
	}

	// GANC variants with the same base model (RSVD) as the accuracy
	// recommender.
	for _, theta := range []longtail.Model{longtail.ModelTFIDF, longtail.ModelGeneralized} {
		recs, label, err := s.RunGANC(datasetName, GANCSpec{ARec: ARecRSVD, Theta: theta, CRec: CRecDyn, N: n})
		if err != nil {
			return nil, "", err
		}
		reports = append(reports, ev.Evaluate(label, recs, n))
	}

	avgRank := eval.RankReports(reports)
	var rows [][]string
	for _, rep := range reports {
		rows = append(rows, []string{
			rep.Algorithm,
			fmt.Sprintf("%.4f", rep.FMeasure),
			fmt.Sprintf("%.4f", rep.StratRecall),
			fmt.Sprintf("%.4f", rep.LTAccuracy),
			fmt.Sprintf("%.4f", rep.Coverage),
			fmt.Sprintf("%.4f", rep.Gini),
			fmt.Sprintf("%.1f", avgRank[rep.Algorithm]),
		})
	}
	text := fmt.Sprintf("Table IV (%s): top-%d re-ranking of RSVD\n", datasetName, n) +
		formatTable([]string{"Algorithm", "F@5", "S@5", "L@5", "C@5", "G@5", "Score"}, rows)
	return &TableIVResult{Dataset: datasetName, Reports: reports, AvgRank: avgRank}, text, nil
}

// --- Figure 6 --------------------------------------------------------------------

// Figure6Point is one algorithm's position in the accuracy/coverage/novelty
// trade-off scatter of Figure 6.
type Figure6Point struct {
	Dataset    string
	Algorithm  string
	FMeasure   float64
	Coverage   float64
	LTAccuracy float64
}

// Figure6 reproduces the paper's Figure 6 comparison of standalone top-N
// recommenders and GANC variants. Following the paper, the accuracy
// recommender plugged into GANC and PRA is Pop on MT-200K and PSVD100
// everywhere else.
func (s *Suite) Figure6(datasets []string) ([]Figure6Point, string, error) {
	if len(datasets) == 0 {
		datasets = DatasetNames()
	}
	n := s.N
	var points []Figure6Point
	var rows [][]string
	for _, name := range datasets {
		ev, err := s.Evaluator(name)
		if err != nil {
			return nil, "", err
		}
		arec := ARecPSVD100
		if name == "MT-200K" {
			arec = ARecPop
		}

		add := func(label string, recs types.Recommendations) {
			rep := ev.Evaluate(label, recs, n)
			points = append(points, Figure6Point{
				Dataset: name, Algorithm: label,
				FMeasure: rep.FMeasure, Coverage: rep.Coverage, LTAccuracy: rep.LTAccuracy,
			})
			rows = append(rows, []string{
				name, label,
				fmt.Sprintf("%.4f", rep.FMeasure),
				fmt.Sprintf("%.4f", rep.Coverage),
				fmt.Sprintf("%.4f", rep.LTAccuracy),
			})
		}

		// Standalone baselines.
		for _, algo := range []BaselineName{BaselineRand, BaselinePop, BaselineRSVD, BaselineCofiR, BaselinePSVD10, BaselinePSVD100} {
			recs, err := s.RunBaseline(name, algo, n)
			if err != nil {
				return nil, "", err
			}
			add(string(algo), recs)
		}

		// PRA with the dataset-appropriate accuracy recommender.
		praRecs, praLabel, err := s.runPRAWithARec(name, arec, n)
		if err != nil {
			return nil, "", err
		}
		add(praLabel, praRecs)

		// GANC variants with the three coverage recommenders.
		for _, crec := range []CoverageRecName{CRecDyn, CRecStat, CRecRand} {
			recs, label, err := s.RunGANC(name, GANCSpec{ARec: arec, Theta: longtail.ModelGeneralized, CRec: crec, N: n})
			if err != nil {
				return nil, "", err
			}
			add(label, recs)
		}
	}
	text := fmt.Sprintf("Figure 6: accuracy vs coverage vs novelty at N=%d\n", n) +
		formatTable([]string{"Dataset", "Algorithm", "F-measure", "Coverage", "LTAccuracy"}, rows)
	return points, text, nil
}

// runPRAWithARec runs the PRA baseline on top of the same accuracy
// recommender GANC uses in Figure 6.
func (s *Suite) runPRAWithARec(datasetName string, arec AccuracyRecName, n int) (types.Recommendations, string, error) {
	sp, err := s.Split(datasetName)
	if err != nil {
		return nil, "", err
	}
	scorer, err := s.accuracyScorer(datasetName, arec)
	if err != nil {
		return nil, "", err
	}
	p, err := rerank.NewPRA(sp.Train, scorer, rerank.DefaultPRAConfig(n, 10))
	if err != nil {
		return nil, "", err
	}
	return p.RecommendAll(), p.Name(), nil
}

// --- Figures 7 and 8 ---------------------------------------------------------------

// ProtocolPoint is one algorithm's accuracy/coverage/novelty under one test
// ranking protocol.
type ProtocolPoint struct {
	Algorithm  string
	Protocol   eval.Protocol
	Precision  float64
	FMeasure   float64
	Coverage   float64
	LTAccuracy float64
}

// ProtocolComparison reproduces the paper's Appendix C study (Figures 7 and
// 8): the same set of accuracy-focused recommenders evaluated under the
// all-unrated-items and rated-test-items protocols.
func (s *Suite) ProtocolComparison(datasetName string) ([]ProtocolPoint, string, error) {
	sp, err := s.Split(datasetName)
	if err != nil {
		return nil, "", err
	}
	ev, err := s.Evaluator(datasetName)
	if err != nil {
		return nil, "", err
	}
	n := s.N

	type namedScorer struct {
		label  string
		scorer recommender.Scorer
	}
	var scorers []namedScorer
	scorers = append(scorers, namedScorer{"Rand", recommender.NewRand(sp.Train.NumItems(), s.Seed)})
	scorers = append(scorers, namedScorer{"Pop", recommender.NewPop(sp.Train)})
	if m, err := s.RSVD(datasetName); err == nil {
		scorers = append(scorers, namedScorer{"RSVD", m})
	}
	for _, k := range []int{10, 100} {
		if m, err := s.PSVD(datasetName, k); err == nil {
			scorers = append(scorers, namedScorer{fmt.Sprintf("PSVD%d", k), m})
		}
	}
	if m, err := s.CofiR(datasetName, 50); err == nil {
		scorers = append(scorers, namedScorer{"CofiR100", m})
	}

	var points []ProtocolPoint
	var rows [][]string
	for _, proto := range []eval.Protocol{eval.ProtocolAllUnrated, eval.ProtocolRatedTestItems} {
		for _, ns := range scorers {
			recs := eval.RecommendWithProtocol(ns.scorer, sp, n, proto)
			rep := ev.Evaluate(ns.label, recs, n)
			points = append(points, ProtocolPoint{
				Algorithm: ns.label, Protocol: proto,
				Precision: rep.Precision, FMeasure: rep.FMeasure,
				Coverage: rep.Coverage, LTAccuracy: rep.LTAccuracy,
			})
			rows = append(rows, []string{
				proto.String(), ns.label,
				fmt.Sprintf("%.4f", rep.Precision), fmt.Sprintf("%.4f", rep.FMeasure),
				fmt.Sprintf("%.4f", rep.Coverage), fmt.Sprintf("%.4f", rep.LTAccuracy),
			})
		}
	}
	text := fmt.Sprintf("Figures 7/8 (%s): effect of the test ranking protocol at N=%d\n", datasetName, n) +
		formatTable([]string{"Protocol", "Algorithm", "Precision", "F-measure", "Coverage", "LTAccuracy"}, rows)
	return points, text, nil
}
