package experiment

import (
	"fmt"

	"ganc/internal/eval"
	"ganc/internal/longtail"
	"ganc/internal/recommender"
	"ganc/internal/types"
)

// --- Table II -------------------------------------------------------------------

// TableII computes the dataset-description statistics for every preset
// (paper Table II) and renders them.
func (s *Suite) TableII() ([]TableIIRow, string, error) {
	var rows []TableIIRow
	var textRows [][]string
	for _, name := range DatasetNames() {
		sp, err := s.Split(name)
		if err != nil {
			return nil, "", err
		}
		stats := sp.Parent.ComputeStats()
		row := TableIIRow{
			Dataset:     name,
			NumRatings:  stats.NumRatings,
			NumUsers:    stats.NumUsers,
			NumItems:    stats.NumItems,
			DensityPct:  stats.DensityPct,
			LongTailPct: stats.LongTailPct,
			Kappa:       sp.Kappa,
			Tau:         stats.MinUserDeg,
		}
		rows = append(rows, row)
		textRows = append(textRows, []string{
			name,
			fmt.Sprintf("%d", row.NumRatings),
			fmt.Sprintf("%d", row.NumUsers),
			fmt.Sprintf("%d", row.NumItems),
			fmt.Sprintf("%.2f", row.DensityPct),
			fmt.Sprintf("%.2f", row.LongTailPct),
			fmt.Sprintf("%.1f", row.Kappa),
			fmt.Sprintf("%d", row.Tau),
		})
	}
	text := "Table II: dataset description (synthetic, calibrated)\n" +
		formatTable([]string{"Dataset", "|D|", "|U|", "|I|", "d%", "L%", "kappa", "tau"}, textRows)
	return rows, text, nil
}

// TableIIRow mirrors one row of the paper's Table II.
type TableIIRow struct {
	Dataset     string
	NumRatings  int
	NumUsers    int
	NumItems    int
	DensityPct  float64
	LongTailPct float64
	Kappa       float64
	Tau         int
}

// --- Figure 1 -------------------------------------------------------------------

// Figure1Point is one bin of the Figure 1 curve: users whose (normalized)
// profile size falls into the bin, and the mean over those users of the
// average popularity of the items they rated.
type Figure1Point struct {
	BinCenter     float64
	MeanAvgPop    float64
	UsersInBucket int
}

// Figure1 reproduces the paper's Figure 1 for one dataset: the average
// popularity of a user's rated items as a function of the user's activity.
func (s *Suite) Figure1(datasetName string, bins int) ([]Figure1Point, string, error) {
	if bins <= 0 {
		bins = 10
	}
	sp, err := s.Split(datasetName)
	if err != nil {
		return nil, "", err
	}
	train := sp.Train
	type userPoint struct {
		activity float64
		avgPop   float64
	}
	var pts []userPoint
	maxActivity := 0.0
	for u := 0; u < train.NumUsers(); u++ {
		idxs := train.UserRatings(types.UserID(u))
		if len(idxs) == 0 {
			continue
		}
		sumPop := 0.0
		for _, idx := range idxs {
			sumPop += float64(train.ItemPopularity(train.Rating(idx).Item))
		}
		act := float64(len(idxs))
		if act > maxActivity {
			maxActivity = act
		}
		pts = append(pts, userPoint{activity: act, avgPop: sumPop / act})
	}
	out := make([]Figure1Point, bins)
	counts := make([]int, bins)
	for _, p := range pts {
		b := 0
		if maxActivity > 0 {
			b = int(p.activity / maxActivity * float64(bins))
		}
		if b >= bins {
			b = bins - 1
		}
		out[b].MeanAvgPop += p.avgPop
		counts[b]++
	}
	var textRows [][]string
	for b := range out {
		out[b].BinCenter = (float64(b) + 0.5) / float64(bins)
		out[b].UsersInBucket = counts[b]
		if counts[b] > 0 {
			out[b].MeanAvgPop /= float64(counts[b])
		}
		textRows = append(textRows, []string{
			fmt.Sprintf("%.2f", out[b].BinCenter),
			fmt.Sprintf("%.1f", out[b].MeanAvgPop),
			fmt.Sprintf("%d", counts[b]),
		})
	}
	text := fmt.Sprintf("Figure 1 (%s): average popularity of rated items vs user activity\n", datasetName) +
		formatTable([]string{"activity-bin", "avg-popularity", "users"}, textRows)
	return out, text, nil
}

// --- Figure 2 -------------------------------------------------------------------

// Figure2Result holds the preference-model histograms for one dataset.
type Figure2Result struct {
	Dataset string
	Bins    int
	// Histograms maps the model name (θ^A, θ^N, θ^T, θ^G) to its bin counts.
	Histograms map[longtail.Model][]int
	Means      map[longtail.Model]float64
	StdDevs    map[longtail.Model]float64
}

// Figure2 reproduces the paper's Figure 2: histograms of the long-tail
// novelty preference models on one dataset.
func (s *Suite) Figure2(datasetName string, bins int) (*Figure2Result, string, error) {
	if bins <= 0 {
		bins = 20
	}
	sp, err := s.Split(datasetName)
	if err != nil {
		return nil, "", err
	}
	models := []longtail.Model{
		longtail.ModelActivity,
		longtail.ModelNormalizedLongTail,
		longtail.ModelTFIDF,
		longtail.ModelGeneralized,
	}
	res := &Figure2Result{
		Dataset:    datasetName,
		Bins:       bins,
		Histograms: make(map[longtail.Model][]int, len(models)),
		Means:      make(map[longtail.Model]float64, len(models)),
		StdDevs:    make(map[longtail.Model]float64, len(models)),
	}
	var textRows [][]string
	for _, m := range models {
		prefs, err := longtail.Estimate(m, sp.Train, nil, 0.5, s.Seed)
		if err != nil {
			return nil, "", err
		}
		res.Histograms[m] = prefs.Histogram(bins)
		res.Means[m] = prefs.Mean()
		res.StdDevs[m] = prefs.StdDev()
		textRows = append(textRows, []string{
			string(m),
			fmt.Sprintf("%.3f", prefs.Mean()),
			fmt.Sprintf("%.3f", prefs.StdDev()),
			fmt.Sprintf("%v", prefs.Histogram(bins)),
		})
	}
	text := fmt.Sprintf("Figure 2 (%s): long-tail novelty preference distributions\n", datasetName) +
		formatTable([]string{"model", "mean", "std", "histogram"}, textRows)
	return res, text, nil
}

// --- Figures 3 and 4 --------------------------------------------------------------

// SampleSizePoint is one point of the Figure 3/4 sweep: GANC(ARec, θ^G, Dyn)
// at a given OSLG sample size.
type SampleSizePoint struct {
	ARec       AccuracyRecName
	SampleSize int
	FMeasure   float64
	Coverage   float64
}

// SampleSizeSweep reproduces Figure 3 (ML-1M) and Figure 4 (MT-200K): the
// effect of the OSLG sample size S on F-measure@N and Coverage@N for
// GANC(ARec, θ^G, Dyn) with each accuracy recommender.
func (s *Suite) SampleSizeSweep(datasetName string, arecs []AccuracyRecName, sizes []int) ([]SampleSizePoint, string, error) {
	if len(arecs) == 0 {
		arecs = []AccuracyRecName{ARecPSVD100, ARecPSVD10, ARecPop, ARecRSVD}
	}
	if len(sizes) == 0 {
		sizes = []int{100, 300, 500, 700, 900}
	}
	ev, err := s.Evaluator(datasetName)
	if err != nil {
		return nil, "", err
	}
	var points []SampleSizePoint
	var textRows [][]string
	for _, arec := range arecs {
		for _, size := range sizes {
			recs, _, err := s.RunGANC(datasetName, GANCSpec{ARec: arec, Theta: longtail.ModelGeneralized, CRec: CRecDyn, N: s.N, SampleSize: size})
			if err != nil {
				return nil, "", err
			}
			rep := ev.Evaluate(fmt.Sprintf("GANC(%s,G,Dyn)@S=%d", arec, size), recs, s.N)
			points = append(points, SampleSizePoint{ARec: arec, SampleSize: size, FMeasure: rep.FMeasure, Coverage: rep.Coverage})
			textRows = append(textRows, []string{
				string(arec), fmt.Sprintf("%d", size),
				fmt.Sprintf("%.4f", rep.FMeasure), fmt.Sprintf("%.4f", rep.Coverage),
			})
		}
	}
	text := fmt.Sprintf("Figures 3/4 (%s): GANC(ARec, θ^G, Dyn) vs OSLG sample size\n", datasetName) +
		formatTable([]string{"ARec", "S", "F-measure@N", "Coverage@N"}, textRows)
	return points, text, nil
}

// --- Figure 5 ---------------------------------------------------------------------

// PreferenceSweepPoint is one point of the Figure 5 sweep.
type PreferenceSweepPoint struct {
	ARec  AccuracyRecName
	Theta longtail.Model
	N     int
	eval.Report
}

// PreferenceModelSweep reproduces Figure 5: GANC(ARec, θ, Dyn) for every
// preference model and list length, against the plain accuracy recommender.
// The returned reports include all five headline metrics.
func (s *Suite) PreferenceModelSweep(datasetName string, arecs []AccuracyRecName, thetas []longtail.Model, ns []int) ([]PreferenceSweepPoint, string, error) {
	if len(arecs) == 0 {
		arecs = []AccuracyRecName{ARecRSVD, ARecPSVD100, ARecPSVD10, ARecPop}
	}
	if len(thetas) == 0 {
		thetas = []longtail.Model{
			longtail.ModelRandom, longtail.ModelConstant,
			longtail.ModelNormalizedLongTail, longtail.ModelTFIDF, longtail.ModelGeneralized,
		}
	}
	if len(ns) == 0 {
		ns = []int{5, 10, 15, 20}
	}
	ev, err := s.Evaluator(datasetName)
	if err != nil {
		return nil, "", err
	}
	sp, err := s.Split(datasetName)
	if err != nil {
		return nil, "", err
	}
	var points []PreferenceSweepPoint
	var textRows [][]string
	for _, arec := range arecs {
		for _, n := range ns {
			// The plain accuracy recommender as its own row ("ARec" line in
			// the figure).
			baseScorer, err := s.accuracyScorer(datasetName, arec)
			if err != nil {
				return nil, "", err
			}
			baseRecs := recommender.RecommendAll(
				&recommender.ScorerTopN{Scorer: baseScorer, NumItems: sp.Train.NumItems()},
				sp.Train, n)
			baseRep := ev.Evaluate(string(arec), baseRecs, n)
			points = append(points, PreferenceSweepPoint{ARec: arec, Theta: "ARec-only", N: n, Report: baseRep})
			textRows = append(textRows, sweepRow(arec, "ARec-only", n, baseRep))

			for _, theta := range thetas {
				recs, name, err := s.RunGANC(datasetName, GANCSpec{ARec: arec, Theta: theta, CRec: CRecDyn, N: n})
				if err != nil {
					return nil, "", err
				}
				rep := ev.Evaluate(name, recs, n)
				points = append(points, PreferenceSweepPoint{ARec: arec, Theta: theta, N: n, Report: rep})
				textRows = append(textRows, sweepRow(arec, theta, n, rep))
			}
		}
	}
	text := fmt.Sprintf("Figure 5 (%s): GANC(ARec, θ, Dyn) across preference models and N\n", datasetName) +
		formatTable([]string{"ARec", "theta", "N", "F", "StratRecall", "LTAcc", "Coverage", "Gini"}, textRows)
	return points, text, nil
}

func sweepRow(arec AccuracyRecName, theta longtail.Model, n int, rep eval.Report) []string {
	return []string{
		string(arec), string(theta), fmt.Sprintf("%d", n),
		fmt.Sprintf("%.4f", rep.FMeasure), fmt.Sprintf("%.4f", rep.StratRecall),
		fmt.Sprintf("%.4f", rep.LTAccuracy), fmt.Sprintf("%.4f", rep.Coverage),
		fmt.Sprintf("%.4f", rep.Gini),
	}
}

// --- Table V ---------------------------------------------------------------------

// TableVRow is one row of the RSVD configuration table.
type TableVRow struct {
	Dataset   string
	Factors   int
	LearnRate float64
	Lambda    float64
	RMSE      float64
	MAE       float64
}

// TableV reports the RSVD hyper-parameters used per dataset and the held-out
// RMSE they achieve, mirroring the paper's Table V.
func (s *Suite) TableV(datasets []string) ([]TableVRow, string, error) {
	if len(datasets) == 0 {
		datasets = DatasetNames()
	}
	var rows []TableVRow
	var textRows [][]string
	for _, name := range datasets {
		sp, err := s.Split(name)
		if err != nil {
			return nil, "", err
		}
		m, err := s.RSVD(name)
		if err != nil {
			return nil, "", err
		}
		cfg := s.rsvdConfigFor(name)
		row := TableVRow{
			Dataset:   name,
			Factors:   cfg.Factors,
			LearnRate: cfg.LearningRate,
			Lambda:    cfg.Regularization,
			RMSE:      m.RMSE(sp.Test),
			MAE:       m.MAE(sp.Test),
		}
		rows = append(rows, row)
		textRows = append(textRows, []string{
			name, fmt.Sprintf("%d", row.Factors), fmt.Sprintf("%.3f", row.LearnRate),
			fmt.Sprintf("%.3f", row.Lambda), fmt.Sprintf("%.3f", row.RMSE), fmt.Sprintf("%.3f", row.MAE),
		})
	}
	text := "Table V: RSVD configuration and held-out error\n" +
		formatTable([]string{"Dataset", "g", "eta", "lambda", "RMSE", "MAE"}, textRows)
	return rows, text, nil
}
