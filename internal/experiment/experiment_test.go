package experiment

import (
	"strings"
	"testing"

	"ganc/internal/longtail"
)

// tinySuite is a very small suite shared across the experiment tests; the
// goal of these tests is to exercise every runner end-to-end, not to obtain
// publication-quality numbers.
func tinySuite() *Suite {
	return NewSuite(0.08, 1, 5, 30)
}

func TestNewSuiteDefaults(t *testing.T) {
	s := NewSuite(0, 0, 0, 0)
	if s.Scale <= 0 || s.Seed == 0 || s.N <= 0 || s.SampleSize <= 0 {
		t.Fatalf("defaults not applied: %+v", s)
	}
}

func TestDatasetNamesMatchTableII(t *testing.T) {
	names := DatasetNames()
	want := []string{"ML-100K", "ML-1M", "ML-10M", "MT-200K", "Netflix"}
	if len(names) != len(want) {
		t.Fatalf("got %v", names)
	}
	for k := range want {
		if names[k] != want[k] {
			t.Fatalf("got %v", names)
		}
	}
}

func TestSplitCachingAndUnknownDataset(t *testing.T) {
	s := tinySuite()
	a, err := s.Split("ML-100K")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Split("ML-100K")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("split not cached")
	}
	if _, err := s.Split("nope"); err == nil {
		t.Fatal("unknown dataset did not error")
	}
}

func TestModelCaching(t *testing.T) {
	s := tinySuite()
	a, err := s.RSVD("ML-100K")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.RSVD("ML-100K")
	if a != b {
		t.Fatal("RSVD not cached")
	}
	p1, err := s.PSVD("ML-100K", 10)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := s.PSVD("ML-100K", 10)
	if p1 != p2 {
		t.Fatal("PSVD not cached")
	}
	p3, err := s.PSVD("ML-100K", 20)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p3 {
		t.Fatal("different ranks must not share a cache entry")
	}
}

func TestTableIIProducesAllDatasets(t *testing.T) {
	s := tinySuite()
	rows, text, err := s.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("TableII rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.NumRatings <= 0 || r.NumUsers <= 0 || r.NumItems <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.LongTailPct <= 0 || r.LongTailPct > 100 {
			t.Fatalf("long-tail pct out of range: %+v", r)
		}
	}
	if !strings.Contains(text, "Table II") || !strings.Contains(text, "ML-1M") {
		t.Fatal("text output incomplete")
	}
}

func TestFigure1TrendMatchesPaper(t *testing.T) {
	// The paper's Figure 1 observation: average popularity of rated items
	// decreases as user activity increases. Check that the first occupied
	// bin's mean popularity exceeds the last occupied bin's.
	s := tinySuite()
	points, text, err := s.Figure1("ML-1M", 10)
	if err != nil {
		t.Fatal(err)
	}
	var first, last *Figure1Point
	for k := range points {
		if points[k].UsersInBucket > 0 {
			if first == nil {
				first = &points[k]
			}
			last = &points[k]
		}
	}
	if first == nil || last == nil || first == last {
		t.Skip("not enough occupied activity bins at this scale")
	}
	if first.MeanAvgPop <= last.MeanAvgPop {
		t.Fatalf("expected decreasing trend: first bin %.1f, last bin %.1f", first.MeanAvgPop, last.MeanAvgPop)
	}
	if !strings.Contains(text, "Figure 1") {
		t.Fatal("text output missing header")
	}
}

func TestFigure2HistogramsCoverAllModels(t *testing.T) {
	s := tinySuite()
	res, text, err := s.Figure2("ML-100K", 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []longtail.Model{longtail.ModelActivity, longtail.ModelNormalizedLongTail, longtail.ModelTFIDF, longtail.ModelGeneralized} {
		h, ok := res.Histograms[m]
		if !ok {
			t.Fatalf("missing histogram for %s", m)
		}
		total := 0
		for _, c := range h {
			total += c
		}
		if total == 0 {
			t.Fatalf("histogram for %s is empty", m)
		}
	}
	// Paper's qualitative claim: θ^G has a larger mean than θ^N.
	if res.Means[longtail.ModelGeneralized] <= res.Means[longtail.ModelNormalizedLongTail] {
		t.Fatalf("θ^G mean %.3f should exceed θ^N mean %.3f",
			res.Means[longtail.ModelGeneralized], res.Means[longtail.ModelNormalizedLongTail])
	}
	if !strings.Contains(text, "Figure 2") {
		t.Fatal("text output missing header")
	}
}

func TestSampleSizeSweepCoverageIncreasesWithS(t *testing.T) {
	s := tinySuite()
	points, text, err := s.SampleSizeSweep("ML-100K", []AccuracyRecName{ARecPop}, []int{10, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	small, large := points[0], points[1]
	if small.SampleSize > large.SampleSize {
		small, large = large, small
	}
	if large.Coverage < small.Coverage-0.02 {
		t.Fatalf("coverage should not drop materially as S grows: S=%d → %.3f, S=%d → %.3f",
			small.SampleSize, small.Coverage, large.SampleSize, large.Coverage)
	}
	if !strings.Contains(text, "Figures 3/4") {
		t.Fatal("text output missing header")
	}
}

func TestPreferenceModelSweepProducesAllCombinations(t *testing.T) {
	s := tinySuite()
	arecs := []AccuracyRecName{ARecPop}
	thetas := []longtail.Model{longtail.ModelConstant, longtail.ModelGeneralized}
	ns := []int{5}
	points, text, err := s.PreferenceModelSweep("ML-100K", arecs, thetas, ns)
	if err != nil {
		t.Fatal(err)
	}
	// One ARec-only row plus one row per theta.
	if len(points) != len(arecs)*len(ns)*(1+len(thetas)) {
		t.Fatalf("got %d points, want %d", len(points), len(arecs)*len(ns)*(1+len(thetas)))
	}
	// The plain accuracy recommender should have the best (or tied) F-measure
	// and the GANC variants should improve coverage, as in Figure 5.
	var baseF, baseCov float64
	for _, p := range points {
		if p.Theta == "ARec-only" {
			baseF, baseCov = p.FMeasure, p.Coverage
		}
	}
	for _, p := range points {
		if p.Theta == longtail.ModelGeneralized {
			if p.FMeasure > baseF+1e-9 {
				t.Fatalf("GANC F-measure %.4f should not exceed the pure accuracy recommender %.4f", p.FMeasure, baseF)
			}
			if p.Coverage < baseCov-1e-9 {
				t.Fatalf("GANC coverage %.4f should not fall below the accuracy recommender %.4f", p.Coverage, baseCov)
			}
		}
	}
	if !strings.Contains(text, "Figure 5") {
		t.Fatal("text output missing header")
	}
}

func TestTableIVRanksGANCWell(t *testing.T) {
	s := tinySuite()
	results, text, err := s.TableIV([]string{"ML-100K"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	res := results[0]
	if len(res.Reports) != 9 {
		t.Fatalf("Table IV should have 9 rows (RSVD + 6 re-rankers + 2 GANC), got %d", len(res.Reports))
	}
	// GANC's coverage must beat plain RSVD's, the paper's headline effect.
	var rsvdCov, gancCov float64
	for _, rep := range res.Reports {
		if rep.Algorithm == "RSVD" {
			rsvdCov = rep.Coverage
		}
		if strings.Contains(rep.Algorithm, "GANC(RSVD, θ^G, Dyn)") {
			gancCov = rep.Coverage
		}
	}
	if gancCov <= rsvdCov {
		t.Fatalf("GANC coverage %.4f should exceed RSVD coverage %.4f", gancCov, rsvdCov)
	}
	if len(res.AvgRank) != len(res.Reports) {
		t.Fatal("average rank missing entries")
	}
	if !strings.Contains(text, "Table IV") {
		t.Fatal("text output missing header")
	}
}

func TestFigure6IncludesAllAlgorithms(t *testing.T) {
	s := tinySuite()
	points, text, err := s.Figure6([]string{"MT-200K"})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, p := range points {
		names[p.Algorithm] = true
	}
	for _, want := range []string{"Rand", "Pop", "RSVD", "PSVD10", "PSVD100", "CofiR100"} {
		if !names[want] {
			t.Fatalf("missing algorithm %s in Figure 6 output (have %v)", want, names)
		}
	}
	foundGANC := false
	for n := range names {
		if strings.HasPrefix(n, "GANC(") {
			foundGANC = true
		}
	}
	if !foundGANC {
		t.Fatal("missing GANC variants in Figure 6 output")
	}
	// Rand anchors the coverage end: no algorithm should exceed its coverage.
	var randCov float64
	for _, p := range points {
		if p.Algorithm == "Rand" {
			randCov = p.Coverage
		}
	}
	for _, p := range points {
		if p.Coverage > randCov+0.05 {
			t.Fatalf("%s coverage %.3f implausibly exceeds Rand %.3f", p.Algorithm, p.Coverage, randCov)
		}
	}
	if !strings.Contains(text, "Figure 6") {
		t.Fatal("text output missing header")
	}
}

func TestProtocolComparisonShowsRatedTestItemsBias(t *testing.T) {
	s := tinySuite()
	points, text, err := s.ProtocolComparison("ML-100K")
	if err != nil {
		t.Fatal(err)
	}
	// For Pop (and most models) precision under the rated-test-items protocol
	// must be at least as high as under all-unrated — the Appendix C bias.
	var popAll, popRated float64
	for _, p := range points {
		if p.Algorithm == "Pop" {
			if p.Protocol.String() == "all-unrated-items" {
				popAll = p.Precision
			} else {
				popRated = p.Precision
			}
		}
	}
	if popRated < popAll {
		t.Fatalf("rated-test-items precision %.4f below all-unrated %.4f for Pop", popRated, popAll)
	}
	if !strings.Contains(text, "Figures 7/8") {
		t.Fatal("text output missing header")
	}
}

func TestTableVReportsErrorMetrics(t *testing.T) {
	s := tinySuite()
	rows, text, err := s.TableV([]string{"ML-100K", "MT-200K"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.RMSE <= 0 || r.RMSE > 3 {
			t.Fatalf("implausible RMSE %v for %s", r.RMSE, r.Dataset)
		}
		if r.MAE <= 0 || r.MAE > r.RMSE+1e-9 {
			t.Fatalf("MAE %v inconsistent with RMSE %v", r.MAE, r.RMSE)
		}
	}
	if !strings.Contains(text, "Table V") {
		t.Fatal("text output missing header")
	}
}

func TestRunBaselineUnknownAndRerankerUnknown(t *testing.T) {
	s := tinySuite()
	if _, err := s.RunBaseline("ML-100K", BaselineName("bogus"), 5); err == nil {
		t.Fatal("unknown baseline did not error")
	}
	if _, _, err := s.RunReranker("ML-100K", "bogus", 5); err == nil {
		t.Fatal("unknown re-ranker did not error")
	}
	if _, _, err := s.RunGANC("ML-100K", GANCSpec{ARec: "bogus", Theta: longtail.ModelTFIDF, CRec: CRecDyn}); err == nil {
		t.Fatal("unknown accuracy recommender did not error")
	}
	if _, _, err := s.RunGANC("ML-100K", GANCSpec{ARec: ARecPop, Theta: longtail.ModelTFIDF, CRec: "bogus"}); err == nil {
		t.Fatal("unknown coverage recommender did not error")
	}
}

func TestFormatTableAlignment(t *testing.T) {
	out := formatTable([]string{"a", "bb"}, [][]string{{"xxx", "y"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d", len(lines))
	}
	if !strings.HasPrefix(lines[2], "xxx") {
		t.Fatalf("row line malformed: %q", lines[2])
	}
}
