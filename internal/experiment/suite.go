// Package experiment is the reproduction harness: it wires the synthetic
// calibrated datasets, the base recommenders, the re-ranking baselines and
// GANC into runners that regenerate every table and figure of the paper's
// evaluation (Section IV, Section V and Appendix C). Each runner returns both
// a structured result (for tests and benchmarks) and a formatted text block
// (for the cmd/experiments CLI and EXPERIMENTS.md).
package experiment

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"ganc/internal/core"
	"ganc/internal/dataset"
	"ganc/internal/eval"
	"ganc/internal/longtail"
	"ganc/internal/mf"
	"ganc/internal/rank"
	"ganc/internal/recommender"
	"ganc/internal/rerank"
	"ganc/internal/synth"
	"ganc/internal/types"
)

// Suite is a configured experiment session: one scale factor, one random
// seed, and a cache of generated datasets, splits and trained base models so
// that successive runners reuse the expensive artifacts.
type Suite struct {
	// Scale multiplies the size of every synthetic dataset (1.0 = the
	// calibrated defaults described in internal/synth; smaller values give
	// faster, rougher runs).
	Scale synth.Scale
	// Seed drives dataset splitting, model initialization and sampling.
	Seed int64
	// N is the top-N cutoff used by the table experiments (the paper reports
	// N=5 throughout Section V).
	N int
	// SampleSize is OSLG's S (the paper fixes S=500 at full dataset scale;
	// the suite scales it with Scale so the sample remains a comparable
	// fraction of the user base).
	SampleSize int
	// Workers drives GANC's parallel phases (0/1 = sequential). Reports are
	// byte-identical for any worker count — the determinism tests in
	// cmd/experiments pin this.
	Workers int

	mu     sync.Mutex
	splits map[string]*dataset.Split
	rsvd   map[string]*mf.RSVD
	psvd   map[string]*mf.PSVD
}

// NewSuite builds a Suite. Non-positive arguments select defaults: scale
// 0.25, seed 1, N 5, and a sample size of 500 scaled by the scale factor.
func NewSuite(scale synth.Scale, seed int64, n, sampleSize int) *Suite {
	if scale <= 0 {
		scale = 0.25
	}
	if seed == 0 {
		seed = 1
	}
	if n <= 0 {
		n = 5
	}
	if sampleSize <= 0 {
		sampleSize = int(500 * float64(scale))
		if sampleSize < 20 {
			sampleSize = 20
		}
	}
	return &Suite{
		Scale:      scale,
		Seed:       seed,
		N:          n,
		SampleSize: sampleSize,
		splits:     make(map[string]*dataset.Split),
		rsvd:       make(map[string]*mf.RSVD),
		psvd:       make(map[string]*mf.PSVD),
	}
}

// DatasetNames returns the five paper datasets in Table II order.
func DatasetNames() []string {
	return []string{"ML-100K", "ML-1M", "ML-10M", "MT-200K", "Netflix"}
}

// presetFor maps a dataset name to its synthetic configuration.
func (s *Suite) presetFor(name string) (synth.Config, error) {
	switch name {
	case "ML-100K":
		return synth.ML100K(s.Scale), nil
	case "ML-1M":
		return synth.ML1M(s.Scale), nil
	case "ML-10M":
		return synth.ML10M(s.Scale), nil
	case "MT-200K":
		return synth.MT200K(s.Scale), nil
	case "Netflix":
		return synth.NetflixSample(s.Scale), nil
	default:
		return synth.Config{}, fmt.Errorf("experiment: unknown dataset %q", name)
	}
}

// Split returns the train/test split for the named dataset, generating and
// caching it on first use. The split ratio κ follows the paper's protocol
// (synth.Kappa).
func (s *Suite) Split(name string) (*dataset.Split, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sp, ok := s.splits[name]; ok {
		return sp, nil
	}
	cfg, err := s.presetFor(name)
	if err != nil {
		return nil, err
	}
	d, err := synth.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: generate %s: %w", name, err)
	}
	sp := d.SplitByUser(synth.Kappa(name), rand.New(rand.NewSource(s.Seed)))
	s.splits[name] = sp
	return sp, nil
}

// RSVD returns a trained RSVD model for the named dataset, cached across
// runners. The hyper-parameters follow Table V, with the epoch count reduced
// in proportion to the synthetic scale.
func (s *Suite) RSVD(name string) (*mf.RSVD, error) {
	s.mu.Lock()
	if m, ok := s.rsvd[name]; ok {
		s.mu.Unlock()
		return m, nil
	}
	s.mu.Unlock()
	sp, err := s.Split(name)
	if err != nil {
		return nil, err
	}
	cfg := s.rsvdConfigFor(name)
	m, err := mf.TrainRSVD(sp.Train, cfg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.rsvd[name] = m
	s.mu.Unlock()
	return m, nil
}

// rsvdConfigFor mirrors the paper's Table V per-dataset configuration, with
// the factor count capped for the smaller synthetic stand-ins.
func (s *Suite) rsvdConfigFor(name string) mf.RSVDConfig {
	cfg := mf.DefaultRSVDConfig()
	cfg.Seed = s.Seed
	cfg.Epochs = 15
	switch name {
	case "ML-100K", "ML-1M":
		cfg.Factors, cfg.LearningRate, cfg.Regularization = 40, 0.03, 0.05
	case "ML-10M":
		cfg.Factors, cfg.LearningRate, cfg.Regularization = 20, 0.01, 0.02
	case "MT-200K":
		cfg.Factors, cfg.LearningRate, cfg.Regularization = 40, 0.01, 0.01
	case "Netflix":
		cfg.Factors, cfg.LearningRate, cfg.Regularization = 40, 0.01, 0.05
	}
	return cfg
}

// PSVD returns a trained PureSVD model with the requested rank for the named
// dataset. Rank-specific models are cached separately.
func (s *Suite) PSVD(name string, factors int) (*mf.PSVD, error) {
	key := fmt.Sprintf("%s/%d", name, factors)
	s.mu.Lock()
	if m, ok := s.psvd[key]; ok {
		s.mu.Unlock()
		return m, nil
	}
	s.mu.Unlock()
	sp, err := s.Split(name)
	if err != nil {
		return nil, err
	}
	m, err := mf.TrainPSVD(sp.Train, mf.PSVDConfig{Factors: factors, PowerIterations: 2, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.psvd[key] = m
	s.mu.Unlock()
	return m, nil
}

// CofiR trains the collaborative-ranking baseline (regression loss) on the
// named dataset. It is not cached because only Figure 6 uses it once per
// dataset.
func (s *Suite) CofiR(name string, factors int) (*rank.Model, error) {
	sp, err := s.Split(name)
	if err != nil {
		return nil, err
	}
	cfg := rank.DefaultConfig()
	cfg.Factors = factors
	cfg.Epochs = 10
	cfg.Seed = s.Seed
	return rank.Train(sp.Train, cfg)
}

// --- GANC assembly helpers -----------------------------------------------------

// AccuracyRecName identifies a base accuracy recommender in runner arguments.
type AccuracyRecName string

// The accuracy recommenders the experiment suite assembles GANC around.
const (
	ARecPop     AccuracyRecName = "Pop"
	ARecRSVD    AccuracyRecName = "RSVD"
	ARecPSVD10  AccuracyRecName = "PSVD10"
	ARecPSVD100 AccuracyRecName = "PSVD100"
)

// accuracyScorer returns the raw Scorer behind an accuracy recommender name.
func (s *Suite) accuracyScorer(datasetName string, arec AccuracyRecName) (recommender.Scorer, error) {
	switch arec {
	case ARecPop:
		sp, err := s.Split(datasetName)
		if err != nil {
			return nil, err
		}
		return recommender.NewPop(sp.Train), nil
	case ARecRSVD:
		return s.RSVD(datasetName)
	case ARecPSVD10:
		return s.PSVD(datasetName, 10)
	case ARecPSVD100:
		return s.PSVD(datasetName, 100)
	default:
		return nil, fmt.Errorf("experiment: unknown accuracy recommender %q", arec)
	}
}

// accuracyComponent adapts an accuracy recommender name into the GANC
// AccuracyRecommender component, normalizing scores to [0,1] where needed.
func (s *Suite) accuracyComponent(datasetName string, arec AccuracyRecName, n int) (core.AccuracyRecommender, error) {
	sp, err := s.Split(datasetName)
	if err != nil {
		return nil, err
	}
	if arec == ARecPop {
		return core.NewPopAccuracy(sp.Train, n), nil
	}
	scorer, err := s.accuracyScorer(datasetName, arec)
	if err != nil {
		return nil, err
	}
	norm := recommender.NewNormalizedScorer(scorer, sp.Train.NumItems())
	return &core.ScorerAccuracy{Scorer: norm}, nil
}

// CoverageRecName identifies a coverage recommender in runner arguments.
type CoverageRecName string

// The paper's three coverage recommenders.
const (
	CRecDyn  CoverageRecName = "Dyn"
	CRecStat CoverageRecName = "Stat"
	CRecRand CoverageRecName = "Rand"
)

// coverageComponent builds a fresh coverage recommender (Dyn is stateful, so
// every GANC run gets its own).
func (s *Suite) coverageComponent(datasetName string, crec CoverageRecName) (core.CoverageRecommender, error) {
	sp, err := s.Split(datasetName)
	if err != nil {
		return nil, err
	}
	switch crec {
	case CRecDyn:
		return core.NewDynCoverage(sp.Train.NumItems()), nil
	case CRecStat:
		return core.NewStatCoverage(sp.Train), nil
	case CRecRand:
		return core.NewRandCoverage(s.Seed), nil
	default:
		return nil, fmt.Errorf("experiment: unknown coverage recommender %q", crec)
	}
}

// GANCSpec describes one GANC variant in the paper's template notation.
type GANCSpec struct {
	ARec       AccuracyRecName
	Theta      longtail.Model
	CRec       CoverageRecName
	N          int
	SampleSize int
}

// RunGANC assembles and runs a GANC variant, returning its recommendations
// and the instance's display name.
func (s *Suite) RunGANC(datasetName string, spec GANCSpec) (types.Recommendations, string, error) {
	sp, err := s.Split(datasetName)
	if err != nil {
		return nil, "", err
	}
	n := spec.N
	if n <= 0 {
		n = s.N
	}
	sample := spec.SampleSize
	if sample <= 0 {
		sample = s.SampleSize
	}
	arec, err := s.accuracyComponent(datasetName, spec.ARec, n)
	if err != nil {
		return nil, "", err
	}
	crec, err := s.coverageComponent(datasetName, spec.CRec)
	if err != nil {
		return nil, "", err
	}
	prefs, err := longtail.Estimate(spec.Theta, sp.Train, nil, 0.5, s.Seed)
	if err != nil {
		return nil, "", err
	}
	g, err := core.New(sp.Train, arec, prefs, crec, core.Config{N: n, SampleSize: sample, Seed: s.Seed, Workers: s.Workers})
	if err != nil {
		return nil, "", err
	}
	return g.Recommend(), g.Name(), nil
}

// Evaluator returns a metrics evaluator for the named dataset.
func (s *Suite) Evaluator(datasetName string) (*eval.Evaluator, error) {
	sp, err := s.Split(datasetName)
	if err != nil {
		return nil, err
	}
	return eval.NewEvaluator(sp, 0), nil
}

// --- Baseline collections ------------------------------------------------------

// BaselineName identifies a standalone top-N algorithm used in Figure 6 and
// the protocol study.
type BaselineName string

// The standalone baseline algorithms of the comparison studies.
const (
	BaselineRand    BaselineName = "Rand"
	BaselinePop     BaselineName = "Pop"
	BaselineRSVD    BaselineName = "RSVD"
	BaselineCofiR   BaselineName = "CofiR100"
	BaselinePSVD10  BaselineName = "PSVD10"
	BaselinePSVD100 BaselineName = "PSVD100"
)

// RunBaseline produces the top-N collection of a standalone algorithm under
// the all-unrated-items protocol.
func (s *Suite) RunBaseline(datasetName string, algo BaselineName, n int) (types.Recommendations, error) {
	sp, err := s.Split(datasetName)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		n = s.N
	}
	switch algo {
	case BaselineRand:
		r := recommender.NewRand(sp.Train.NumItems(), s.Seed)
		return recommender.RecommendAll(r, sp.Train, n), nil
	case BaselinePop:
		return recommender.RecommendAll(recommender.NewPop(sp.Train), sp.Train, n), nil
	case BaselineRSVD:
		m, err := s.RSVD(datasetName)
		if err != nil {
			return nil, err
		}
		return recommender.RecommendAll(&recommender.ScorerTopN{Scorer: m, NumItems: sp.Train.NumItems()}, sp.Train, n), nil
	case BaselineCofiR:
		m, err := s.CofiR(datasetName, 50)
		if err != nil {
			return nil, err
		}
		return recommender.RecommendAll(&recommender.ScorerTopN{Scorer: m, NumItems: sp.Train.NumItems()}, sp.Train, n), nil
	case BaselinePSVD10:
		m, err := s.PSVD(datasetName, 10)
		if err != nil {
			return nil, err
		}
		return recommender.RecommendAll(&recommender.ScorerTopN{Scorer: m, NumItems: sp.Train.NumItems()}, sp.Train, n), nil
	case BaselinePSVD100:
		m, err := s.PSVD(datasetName, 100)
		if err != nil {
			return nil, err
		}
		return recommender.RecommendAll(&recommender.ScorerTopN{Scorer: m, NumItems: sp.Train.NumItems()}, sp.Train, n), nil
	default:
		return nil, fmt.Errorf("experiment: unknown baseline %q", algo)
	}
}

// RunReranker produces the top-N collection of one of the re-ranking
// baselines (Table IV rows) applied to the dataset's RSVD model.
func (s *Suite) RunReranker(datasetName, variant string, n int) (types.Recommendations, string, error) {
	sp, err := s.Split(datasetName)
	if err != nil {
		return nil, "", err
	}
	model, err := s.RSVD(datasetName)
	if err != nil {
		return nil, "", err
	}
	if n <= 0 {
		n = s.N
	}
	switch variant {
	case "5D":
		f, err := rerank.NewFiveD(sp.Train, model, rerank.DefaultFiveDConfig(n))
		if err != nil {
			return nil, "", err
		}
		return f.RecommendAll(), f.Name(), nil
	case "5D-A-RR":
		f, err := rerank.NewFiveD(sp.Train, model, rerank.FiveDConfig{N: n, Q: 1, AccuracyFilter: true, RankByRankings: true})
		if err != nil {
			return nil, "", err
		}
		return f.RecommendAll(), f.Name(), nil
	case "RBT-Pop":
		r, err := rerank.NewRBT(sp.Train, model, rerank.DefaultRBTConfig(n, rerank.RBTPop))
		if err != nil {
			return nil, "", err
		}
		return r.RecommendAll(), r.Name(), nil
	case "RBT-Avg":
		r, err := rerank.NewRBT(sp.Train, model, rerank.DefaultRBTConfig(n, rerank.RBTAvg))
		if err != nil {
			return nil, "", err
		}
		return r.RecommendAll(), r.Name(), nil
	case "PRA-10":
		p, err := rerank.NewPRA(sp.Train, model, rerank.DefaultPRAConfig(n, 10))
		if err != nil {
			return nil, "", err
		}
		return p.RecommendAll(), p.Name(), nil
	case "PRA-20":
		p, err := rerank.NewPRA(sp.Train, model, rerank.DefaultPRAConfig(n, 20))
		if err != nil {
			return nil, "", err
		}
		return p.RecommendAll(), p.Name(), nil
	default:
		return nil, "", fmt.Errorf("experiment: unknown re-ranker variant %q", variant)
	}
}

// formatTable renders rows as a fixed-width text table with a header.
func formatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for c, h := range header {
		widths[c] = len(h)
	}
	for _, row := range rows {
		for c, cell := range row {
			if c < len(widths) && len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for c, cell := range cells {
			if c > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			for pad := len(cell); pad < widths[c]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for c := range sep {
		sep[c] = strings.Repeat("-", widths[c])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}
