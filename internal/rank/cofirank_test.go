package rank

import (
	"math"
	"math/rand"
	"testing"

	"ganc/internal/dataset"
	"ganc/internal/synth"
	"ganc/internal/types"
)

func learnableSplit(t *testing.T) *dataset.Split {
	t.Helper()
	cfg := synth.ML100K(0.2)
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d.SplitByUser(0.8, rand.New(rand.NewSource(9)))
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Factors = 0 },
		func(c *Config) { c.LearningRate = 0 },
		func(c *Config) { c.Regularization = -0.1 },
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.InitStd = 0 },
		func(c *Config) { c.Loss = LossPairwise; c.PairsPerUser = 0 },
	}
	for k, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", k)
		}
	}
}

func TestTrainRejectsEmptyAndUnknownLoss(t *testing.T) {
	sp := learnableSplit(t)
	empty := sp.Train.SubsetUsers(nil)
	if _, err := Train(empty, DefaultConfig()); err == nil {
		t.Fatal("empty dataset did not error")
	}
	cfg := DefaultConfig()
	cfg.Loss = Loss(99)
	if _, err := Train(sp.Train, cfg); err == nil {
		t.Fatal("unknown loss did not error")
	}
}

func TestCofiRNamesAndScoreFallback(t *testing.T) {
	sp := learnableSplit(t)
	cfg := DefaultConfig()
	cfg.Factors = 10
	cfg.Epochs = 2
	m, err := Train(sp.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "CofiR10" {
		t.Fatalf("name = %s", m.Name())
	}
	if m.Factors() != 10 {
		t.Fatalf("Factors = %d", m.Factors())
	}
	if got := m.Score(types.UserID(1_000_000), 0); got != sp.Train.MeanRating() {
		t.Fatalf("unknown user should fall back to mean, got %v", got)
	}
}

func TestCofiNNameAndFallback(t *testing.T) {
	sp := learnableSplit(t)
	cfg := DefaultConfig()
	cfg.Loss = LossPairwise
	cfg.Factors = 8
	cfg.Epochs = 2
	cfg.PairsPerUser = 10
	m, err := Train(sp.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "CofiN8" {
		t.Fatalf("name = %s", m.Name())
	}
	if got := m.Score(types.UserID(1_000_000), 0); got != 0 {
		t.Fatalf("unknown user pairwise score = %v, want 0", got)
	}
}

func TestCofiRLearnsBetterThanMean(t *testing.T) {
	sp := learnableSplit(t)
	cfg := Config{Factors: 16, Regularization: 0.05, LearningRate: 0.01, Epochs: 20, Loss: LossRegression, InitStd: 0.1, Seed: 5, PairsPerUser: 1}
	m, err := Train(sp.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := sp.Train.MeanRating()
	baseSE, modelSE := 0.0, 0.0
	for _, r := range sp.Test.Ratings() {
		be := r.Value - mean
		me := r.Value - m.Score(r.User, r.Item)
		baseSE += be * be
		modelSE += me * me
	}
	if modelSE >= baseSE {
		t.Fatalf("CofiR test SE %.2f not better than mean baseline %.2f", modelSE, baseSE)
	}
}

func TestCofiNOrdersTrainPairsCorrectly(t *testing.T) {
	// The pairwise model should, after training, order a user's own train
	// items mostly consistently with their ratings.
	sp := learnableSplit(t)
	cfg := Config{Factors: 16, Regularization: 0.02, LearningRate: 0.05, Epochs: 10, Loss: LossPairwise, PairsPerUser: 30, InitStd: 0.1, Seed: 6}
	m, err := Train(sp.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for u := 0; u < sp.Train.NumUsers() && total < 2000; u++ {
		uid := types.UserID(u)
		idxs := sp.Train.UserRatings(uid)
		for a := 0; a < len(idxs); a++ {
			for b := a + 1; b < len(idxs); b++ {
				ra, rb := sp.Train.Rating(idxs[a]), sp.Train.Rating(idxs[b])
				if ra.Value == rb.Value {
					continue
				}
				total++
				sa, sb := m.Score(uid, ra.Item), m.Score(uid, rb.Item)
				if (ra.Value > rb.Value) == (sa > sb) {
					correct++
				}
			}
		}
	}
	if total == 0 {
		t.Skip("no comparable pairs")
	}
	if acc := float64(correct) / float64(total); acc < 0.6 {
		t.Fatalf("pairwise training accuracy on train pairs = %.3f, want ≥ 0.6", acc)
	}
}

func TestTrainDeterministicWithSeed(t *testing.T) {
	sp := learnableSplit(t)
	cfg := Config{Factors: 6, Regularization: 0.05, LearningRate: 0.02, Epochs: 3, Loss: LossRegression, InitStd: 0.1, Seed: 77, PairsPerUser: 1}
	a, err := Train(sp.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(sp.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10; u++ {
		for i := 0; i < 10; i++ {
			sa := a.Score(types.UserID(u), types.ItemID(i))
			sb := b.Score(types.UserID(u), types.ItemID(i))
			if math.Abs(sa-sb) > 0 {
				t.Fatal("same seed produced different models")
			}
		}
	}
}
