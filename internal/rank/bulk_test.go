package rank

import (
	"math/rand"
	"testing"

	"ganc/internal/dataset"
	"ganc/internal/types"
)

func TestCofiScoreUserMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ratings := []types.Rating{{User: 14, Item: 24, Value: 3}}
	for k := 0; k < 400; k++ {
		ratings = append(ratings, types.Rating{
			User:  types.UserID(rng.Intn(15)),
			Item:  types.ItemID(rng.Intn(25)),
			Value: float64(1 + rng.Intn(5)),
		})
	}
	d := dataset.FromRatings("rank-bulk", ratings)
	for _, loss := range []Loss{LossRegression, LossPairwise} {
		cfg := DefaultConfig()
		cfg.Factors, cfg.Epochs, cfg.Seed, cfg.Loss = 6, 3, 6, loss
		m, err := Train(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		items := make([]types.ItemID, d.NumItems()+2)
		for k := range items {
			items[k] = types.ItemID(k)
		}
		out := make([]float64, len(items))
		for u := -1; u <= d.NumUsers(); u++ {
			uid := types.UserID(u)
			m.ScoreUser(uid, items, out)
			for k, i := range items {
				if want := m.Score(uid, i); out[k] != want {
					t.Fatalf("loss %v user %d item %d: bulk %v != score %v", loss, u, i, out[k], want)
				}
			}
		}
	}
}
