package rank

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Model persistence: trained collaborative-ranking factorizations serialize
// their factor matrices with encoding/gob behind a version tag, matching the
// RSVD/PSVD snapshot convention in internal/mf.

// rankSnapshotVersion guards the gob payload layout.
const rankSnapshotVersion = 1

// rankSnapshot is the gob-encoded form of a rank.Model.
type rankSnapshot struct {
	Version int
	Config  Config
	UserF   [][]float64
	ItemF   [][]float64
	Mean    float64
	Name    string
}

// Save writes the model to w in its versioned gob form.
func (m *Model) Save(w io.Writer) error {
	snap := rankSnapshot{
		Version: rankSnapshotVersion,
		Config:  m.cfg,
		UserF:   m.userF,
		ItemF:   m.itemF,
		Mean:    m.mean,
		Name:    m.name,
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("rank: save model: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var snap rankSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("rank: load model: %w", err)
	}
	if snap.Version != rankSnapshotVersion {
		return nil, fmt.Errorf("rank: load model: unsupported snapshot version %d (this build reads version %d)",
			snap.Version, rankSnapshotVersion)
	}
	if len(snap.UserF) == 0 || len(snap.ItemF) == 0 {
		return nil, fmt.Errorf("rank: load model: snapshot has no factors")
	}
	return &Model{
		cfg:   snap.Config,
		userF: snap.UserF,
		itemF: snap.ItemF,
		mean:  snap.Mean,
		name:  snap.Name,
	}, nil
}
