package rank

import (
	"encoding/gob"
	"fmt"
	"io"

	"ganc/internal/linalg"
	"ganc/internal/types"
)

// Model persistence: trained collaborative-ranking factorizations serialize
// their factor matrices with encoding/gob behind a version tag, matching the
// RSVD/PSVD snapshot convention in internal/mf. Version 2 adds the serving
// precision tier and the flat float32 factor section; version-1 snapshots
// still load at the exact float64 default.

// rankSnapshotVersion guards the gob payload layout.
const rankSnapshotVersion = 2

// rankSnapshot is the gob-encoded form of a rank.Model. Precision and F32
// are the version-2 additions; both decode as zero values from version-1
// payloads.
type rankSnapshot struct {
	Version   int
	Config    Config
	UserF     [][]float64
	ItemF     [][]float64
	Mean      float64
	Name      string
	Precision string
	F32       linalg.FactorSection
}

// Save writes the model to w in its versioned gob form.
func (m *Model) Save(w io.Writer) error {
	snap := rankSnapshot{
		Version:   rankSnapshotVersion,
		Config:    m.cfg,
		UserF:     m.userF,
		ItemF:     m.itemF,
		Mean:      m.mean,
		Name:      m.name,
		Precision: m.precision.String(),
	}
	if m.precision != types.PrecisionF64 {
		if sec := m.fp.F32Section(); sec != nil {
			snap.F32 = *sec
		}
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("rank: save model: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var snap rankSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("rank: load model: %w", err)
	}
	if snap.Version < 1 || snap.Version > rankSnapshotVersion {
		return nil, fmt.Errorf("rank: load model: unsupported snapshot version %d (this build reads versions 1–%d)",
			snap.Version, rankSnapshotVersion)
	}
	if len(snap.UserF) == 0 || len(snap.ItemF) == 0 {
		return nil, fmt.Errorf("rank: load model: snapshot has no factors")
	}
	m := &Model{
		cfg:   snap.Config,
		userF: snap.UserF,
		itemF: snap.ItemF,
		mean:  snap.Mean,
		name:  snap.Name,
	}
	p, err := types.ParseScoringPrecision(snap.Precision)
	if err != nil {
		return nil, fmt.Errorf("rank: load model: %w", err)
	}
	if err := m.fp.RestoreF32Section(&snap.F32, len(snap.UserF), len(snap.ItemF)); err != nil {
		return nil, fmt.Errorf("rank: load model: %w", err)
	}
	if p != types.PrecisionF64 {
		m.SetPrecision(p)
	}
	return m, nil
}
