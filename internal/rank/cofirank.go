// Package rank implements the collaborative-ranking baseline the paper
// compares against (CoFiRank, Weimer et al. 2007). The original CoFiRank is a
// structured-output maximum-margin matrix factorization; this package
// provides a same-family stand-in implemented from scratch:
//
//   - CofiR — regression (squared) loss over observed ratings, the
//     configuration ("CofiR100") the paper actually reports because it
//     performed best in their experiments.
//   - CofiN — a pairwise logistic surrogate for the NDCG loss: for each user,
//     pairs of rated items with different rating values are sampled and the
//     model is trained to order them correctly, with higher-rated pairs
//     weighted more (an NDCG-style position-free weighting).
//
// DESIGN.md §4 documents this substitution. Both variants implement
// recommender.Scorer.
package rank

import (
	"fmt"
	"math"
	"math/rand"

	"ganc/internal/dataset"
	"ganc/internal/linalg"
	"ganc/internal/types"
)

// Loss selects the training objective of the CoFi model.
type Loss int

const (
	// LossRegression is the squared-error loss (CofiR).
	LossRegression Loss = iota
	// LossPairwise is the pairwise logistic ranking loss (CofiN).
	LossPairwise
)

// Config holds the hyper-parameters of the collaborative ranking model.
type Config struct {
	// Factors is the latent dimensionality (the paper uses 100).
	Factors int
	// Regularization is the L2 coefficient (the paper uses λ=10 for CoFiRank;
	// for this SGD formulation the equivalent shrinkage is much smaller, the
	// default is 0.05).
	Regularization float64
	// LearningRate is the SGD step size.
	LearningRate float64
	// Epochs is the number of passes over the training signal.
	Epochs int
	// Loss selects CofiR (regression) or CofiN (pairwise).
	Loss Loss
	// PairsPerUser is the number of item pairs sampled per user per epoch for
	// the pairwise loss; ignored for regression.
	PairsPerUser int
	// InitStd is the factor initialization scale.
	InitStd float64
	// Seed makes training deterministic.
	Seed int64
}

// DefaultConfig returns the CofiR100-style configuration used in the paper's
// Figure 6 comparison.
func DefaultConfig() Config {
	return Config{
		Factors:        100,
		Regularization: 0.05,
		LearningRate:   0.02,
		Epochs:         15,
		Loss:           LossRegression,
		PairsPerUser:   40,
		InitStd:        0.1,
		Seed:           1,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Factors <= 0:
		return fmt.Errorf("rank: Factors must be positive, got %d", c.Factors)
	case c.LearningRate <= 0:
		return fmt.Errorf("rank: LearningRate must be positive, got %v", c.LearningRate)
	case c.Regularization < 0:
		return fmt.Errorf("rank: Regularization must be non-negative, got %v", c.Regularization)
	case c.Epochs <= 0:
		return fmt.Errorf("rank: Epochs must be positive, got %d", c.Epochs)
	case c.InitStd <= 0:
		return fmt.Errorf("rank: InitStd must be positive, got %v", c.InitStd)
	case c.Loss == LossPairwise && c.PairsPerUser <= 0:
		return fmt.Errorf("rank: PairsPerUser must be positive for the pairwise loss, got %d", c.PairsPerUser)
	}
	return nil
}

// Model is a trained collaborative-ranking factorization.
type Model struct {
	cfg   Config
	userF [][]float64
	itemF [][]float64
	mean  float64
	name  string

	// precision is the tier the bulk path serves at; fp holds the contiguous
	// reduced-precision factor blocks when precision is not float64.
	precision types.ScoringPrecision
	fp        linalg.FactorPair
}

// Train fits the model on the train set.
func Train(train *dataset.Dataset, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if train.NumRatings() == 0 {
		return nil, fmt.Errorf("rank: cannot train on an empty dataset")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		cfg:   cfg,
		userF: initFactors(rng, train.NumUsers(), cfg.Factors, cfg.InitStd),
		itemF: initFactors(rng, train.NumItems(), cfg.Factors, cfg.InitStd),
		mean:  train.MeanRating(),
	}
	switch cfg.Loss {
	case LossRegression:
		m.name = fmt.Sprintf("CofiR%d", cfg.Factors)
		m.trainRegression(train, rng)
	case LossPairwise:
		m.name = fmt.Sprintf("CofiN%d", cfg.Factors)
		m.trainPairwise(train, rng)
	default:
		return nil, fmt.Errorf("rank: unknown loss %d", cfg.Loss)
	}
	return m, nil
}

func (m *Model) trainRegression(train *dataset.Dataset, rng *rand.Rand) {
	ratings := train.Ratings()
	order := rng.Perm(len(ratings))
	lr, reg := m.cfg.LearningRate, m.cfg.Regularization
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			r := ratings[idx]
			pu, qi := m.userF[r.User], m.itemF[r.Item]
			pred := m.mean + dot(pu, qi)
			err := r.Value - pred
			for f := range pu {
				puf, qif := pu[f], qi[f]
				pu[f] += lr * (err*qif - reg*puf)
				qi[f] += lr * (err*puf - reg*qif)
			}
		}
	}
}

func (m *Model) trainPairwise(train *dataset.Dataset, rng *rand.Rand) {
	lr, reg := m.cfg.LearningRate, m.cfg.Regularization
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		for u := 0; u < train.NumUsers(); u++ {
			uid := types.UserID(u)
			idxs := train.UserRatings(uid)
			if len(idxs) < 2 {
				continue
			}
			pu := m.userF[u]
			for p := 0; p < m.cfg.PairsPerUser; p++ {
				a := train.Rating(idxs[rng.Intn(len(idxs))])
				b := train.Rating(idxs[rng.Intn(len(idxs))])
				if a.Value == b.Value {
					continue
				}
				// Ensure a is the preferred item.
				if b.Value > a.Value {
					a, b = b, a
				}
				qa, qb := m.itemF[a.Item], m.itemF[b.Item]
				margin := dot(pu, qa) - dot(pu, qb)
				// NDCG-style weighting: pairs involving higher ratings matter more.
				weight := (math.Pow(2, a.Value) - math.Pow(2, b.Value)) / math.Pow(2, 5)
				if weight < 0 {
					weight = -weight
				}
				// Logistic pairwise loss gradient: σ(-margin) pushes the
				// preferred item up and the other down.
				g := weight / (1 + math.Exp(margin))
				for f := range pu {
					puf, qaf, qbf := pu[f], qa[f], qb[f]
					pu[f] += lr * (g*(qaf-qbf) - reg*puf)
					qa[f] += lr * (g*puf - reg*qaf)
					qb[f] += lr * (-g*puf - reg*qbf)
				}
			}
		}
	}
}

// Score implements recommender.Scorer. For the regression loss the score is a
// predicted rating; for the pairwise loss it is an unscaled ranking score.
func (m *Model) Score(u types.UserID, i types.ItemID) float64 {
	if int(u) < 0 || int(u) >= len(m.userF) || int(i) < 0 || int(i) >= len(m.itemF) {
		if m.cfg.Loss == LossRegression {
			return m.mean
		}
		return 0
	}
	s := dot(m.userF[u], m.itemF[i])
	if m.cfg.Loss == LossRegression {
		s += m.mean
	}
	return s
}

// SetPrecision switches the bulk scoring path to the given tier, building
// the contiguous reduced-precision factor blocks on first use. Pointwise
// Score always stays float64. Not safe for concurrent use with scoring —
// call it at assembly/load time, before the model serves.
func (m *Model) SetPrecision(p types.ScoringPrecision) {
	switch p {
	case types.PrecisionF32:
		m.fp.EnsureF32(m.userF, m.itemF)
	case types.PrecisionInt8:
		m.fp.EnsureInt8(m.userF, m.itemF)
	}
	m.precision = p
}

// ScoringPrecision implements recommender.PrecisionScorer.
func (m *Model) ScoringPrecision() types.ScoringPrecision { return m.precision }

// ScoreUser implements recommender.BulkScorer with the user factor row
// hoisted out of the candidate loop. At the default float64 tier it is
// bit-identical to Score; at the float32/int8 tiers (SetPrecision) the dots
// run unrolled kernels over the contiguous factor blocks and match Score
// only to the tier's documented tolerance (DESIGN.md §12).
func (m *Model) ScoreUser(u types.UserID, items []types.ItemID, out []float64) {
	if m.precision != types.PrecisionF64 {
		buf := make([]float32, len(items))
		m.ScoreUser32(u, items, buf)
		for k, v := range buf {
			out[k] = float64(v)
		}
		return
	}
	oob := 0.0
	if m.cfg.Loss == LossRegression {
		oob = m.mean
	}
	if int(u) < 0 || int(u) >= len(m.userF) {
		for k := range items {
			out[k] = oob
		}
		return
	}
	pu := m.userF[u]
	for k, i := range items {
		if int(i) < 0 || int(i) >= len(m.itemF) {
			out[k] = oob
			continue
		}
		s := dot(pu, m.itemF[i])
		if m.cfg.Loss == LossRegression {
			s += m.mean
		}
		out[k] = s
	}
}

// ScoreUser32 implements recommender.BulkScorer32; see mf.RSVD.ScoreUser32
// for the tier dispatch rules. The regression loss adds the train mean, the
// pairwise loss serves the raw kernel dot.
func (m *Model) ScoreUser32(u types.UserID, items []types.ItemID, out []float32) {
	base := 0.0
	if m.cfg.Loss == LossRegression {
		base = m.mean
	}
	oob := float32(base)
	if int(u) < 0 || int(u) >= len(m.userF) {
		for k := range items {
			out[k] = oob
		}
		return
	}
	switch {
	case m.precision == types.PrecisionInt8 && m.fp.UserQ.Rows() > 0:
		pu := m.fp.UserQ.Row(int(u))
		su := float64(m.fp.UserQ.Scale(int(u)))
		for k, i := range items {
			if int(i) < 0 || int(i) >= len(m.itemF) {
				out[k] = oob
				continue
			}
			out[k] = float32(base + float64(linalg.DotQ8(pu, m.fp.ItemQ.Row(int(i))))*su*float64(m.fp.ItemQ.Scale(int(i))))
		}
	case m.precision == types.PrecisionF32 && m.fp.UserB.Rows() > 0:
		pu := m.fp.UserB.Row(int(u))
		for k, i := range items {
			if int(i) < 0 || int(i) >= len(m.itemF) {
				out[k] = oob
				continue
			}
			out[k] = float32(base + float64(linalg.Dot32x8(pu, m.fp.ItemB.Row(int(i)))))
		}
	default:
		pu := m.userF[u]
		for k, i := range items {
			if int(i) < 0 || int(i) >= len(m.itemF) {
				out[k] = oob
				continue
			}
			out[k] = float32(base + dot(pu, m.itemF[i]))
		}
	}
}

// Name implements recommender.Scorer ("CofiR100", "CofiN100", ...).
func (m *Model) Name() string { return m.name }

// Factors returns the latent dimensionality.
func (m *Model) Factors() int { return m.cfg.Factors }

func initFactors(rng *rand.Rand, n, k int, std float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, k)
		for f := range row {
			row[f] = rng.NormFloat64() * std
		}
		out[i] = row
	}
	return out
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
