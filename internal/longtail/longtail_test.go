package longtail

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ganc/internal/dataset"
	"ganc/internal/synth"
	"ganc/internal/types"
)

// fixture builds a small dataset with two clearly different user styles:
// "popular" users rate only the head items, "explorer" users rate mostly
// long-tail items, so preference estimators have signal to separate them.
func fixture() *dataset.Dataset {
	b := dataset.NewBuilder("lt", 256)
	// 10 head items each rated by many users, 40 tail items rated rarely.
	// Users 0..9 are popularity-focused: they rate only head items.
	for u := 0; u < 10; u++ {
		for i := 0; i < 10; i++ {
			b.AddIDs(types.UserID(u), types.ItemID(i), float64(3+(u+i)%3))
		}
	}
	// Users 10..19 are explorers: they rate 2 head items and 8 tail items,
	// and they like the tail items (high ratings).
	for u := 10; u < 20; u++ {
		b.AddIDs(types.UserID(u), 0, 3)
		b.AddIDs(types.UserID(u), 1, 3)
		for k := 0; k < 8; k++ {
			item := types.ItemID(10 + (u-10)*4 + k%4 + (k/4)*20)
			b.AddIDs(types.UserID(u), item, 5)
		}
	}
	return b.Build()
}

func TestActivityNormalizedToUnitInterval(t *testing.T) {
	d := fixture()
	p := Activity(d)
	if p.Model != ModelActivity || p.Len() != d.NumUsers() {
		t.Fatalf("wrong shape: %v len %d", p.Model, p.Len())
	}
	for u, v := range p.Values {
		if v < 0 || v > 1 {
			t.Fatalf("user %d activity %v outside [0,1]", u, v)
		}
	}
	// Everyone rated 10 items here, so after min-max normalization all values
	// collapse; verify with a second dataset with different profile sizes.
	b := dataset.NewBuilder("act", 16)
	b.AddIDs(0, 0, 4)
	for i := 0; i < 10; i++ {
		b.AddIDs(1, types.ItemID(i), 4)
	}
	p2 := Activity(b.Build())
	if p2.Get(1) != 1 || p2.Get(0) != 0 {
		t.Fatalf("activity ordering wrong: %v", p2.Values)
	}
}

func TestNormalizedLongTailSeparatesUserStyles(t *testing.T) {
	d := fixture()
	tail := d.LongTail(dataset.DefaultTailShare)
	p := NormalizedLongTail(d, tail)
	// Explorers (users 10..19) must have strictly higher θ^N than popularity
	// users (0..9), who rate only head items.
	for u := 0; u < 10; u++ {
		for e := 10; e < 20; e++ {
			if p.Get(types.UserID(e)) <= p.Get(types.UserID(u)) {
				t.Fatalf("explorer %d (θ=%.3f) not above popular user %d (θ=%.3f)",
					e, p.Get(types.UserID(e)), u, p.Get(types.UserID(u)))
			}
		}
	}
}

func TestNormalizedLongTailRange(t *testing.T) {
	d := fixture()
	p := NormalizedLongTail(d, d.LongTail(dataset.DefaultTailShare))
	for u, v := range p.Values {
		if v < 0 || v > 1 {
			t.Fatalf("user %d θ^N = %v outside [0,1]", u, v)
		}
	}
}

func TestTFIDFSeparatesUserStyles(t *testing.T) {
	d := fixture()
	p := TFIDF(d)
	avgPop, avgExp := 0.0, 0.0
	for u := 0; u < 10; u++ {
		avgPop += p.Get(types.UserID(u))
		avgExp += p.Get(types.UserID(u + 10))
	}
	if avgExp <= avgPop {
		t.Fatalf("TFIDF did not separate explorers (%.3f) from popularity users (%.3f)", avgExp/10, avgPop/10)
	}
	for _, v := range p.Values {
		if v < 0 || v > 1 {
			t.Fatalf("θ^T %v outside [0,1]", v)
		}
	}
}

func TestRandomAndConstantControls(t *testing.T) {
	r := Random(100, 42)
	if r.Len() != 100 {
		t.Fatal("wrong length")
	}
	allSame := true
	for _, v := range r.Values {
		if v < 0 || v > 1 {
			t.Fatalf("random preference %v outside [0,1]", v)
		}
		if v != r.Values[0] {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("random preferences are all identical")
	}
	// Determinism by seed.
	r2 := Random(100, 42)
	for i := range r.Values {
		if r.Values[i] != r2.Values[i] {
			t.Fatal("same seed produced different random preferences")
		}
	}
	c := Constant(10, 0.5)
	for _, v := range c.Values {
		if v != 0.5 {
			t.Fatalf("constant preference %v != 0.5", v)
		}
	}
	clamped := Constant(3, 7)
	if clamped.Values[0] != 1 {
		t.Fatal("constant not clamped to [0,1]")
	}
}

func TestGeneralizedMatchesTFIDFWhenForcedToOneIteration(t *testing.T) {
	// With zero completed weight updates θ^G equals θ^T by construction; after
	// the first iteration they already differ. We check the documented
	// initialization property: iteration counts are reported and θ stays in
	// range.
	d := fixture()
	res := Generalized(d, GeneralizedConfig{Iterations: 1, Lambda: 1})
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", res.Iterations)
	}
	for _, v := range res.Preferences.Values {
		if v < 0 || v > 1 {
			t.Fatalf("θ^G %v outside [0,1]", v)
		}
	}
	if len(res.ItemWeights) != d.NumItems() {
		t.Fatalf("item weight vector has %d entries, want %d", len(res.ItemWeights), d.NumItems())
	}
}

func TestGeneralizedSeparatesUserStylesAndConverges(t *testing.T) {
	d := fixture()
	res := Generalized(d, DefaultGeneralizedConfig())
	p := res.Preferences
	avgPop, avgExp := 0.0, 0.0
	for u := 0; u < 10; u++ {
		avgPop += p.Get(types.UserID(u))
		avgExp += p.Get(types.UserID(u + 10))
	}
	if avgExp <= avgPop {
		t.Fatalf("θ^G did not separate explorers (%.3f) from popularity users (%.3f)", avgExp/10, avgPop/10)
	}
	if res.Iterations >= DefaultGeneralizedConfig().Iterations {
		t.Logf("warning: solver used all %d iterations (no early convergence)", res.Iterations)
	}
	// Item weights must be positive for every rated item (log barrier keeps
	// them away from zero) and zero for unrated items.
	for i := 0; i < d.NumItems(); i++ {
		w := res.ItemWeights[i]
		if d.ItemPopularity(types.ItemID(i)) > 0 && w <= 0 {
			t.Fatalf("rated item %d has non-positive weight %v", i, w)
		}
		if d.ItemPopularity(types.ItemID(i)) == 0 && w != 0 {
			t.Fatalf("unrated item %d has weight %v", i, w)
		}
	}
}

func TestGeneralizedIsIdempotentOnFixedData(t *testing.T) {
	d := fixture()
	a := Generalized(d, DefaultGeneralizedConfig())
	b := Generalized(d, DefaultGeneralizedConfig())
	for u := range a.Preferences.Values {
		if a.Preferences.Values[u] != b.Preferences.Values[u] {
			t.Fatal("deterministic solver produced different results")
		}
	}
}

func TestGeneralizedWeightsDownMediocreItems(t *testing.T) {
	// An item whose raters all have θ_ui equal to their θ^G (perfectly
	// mediocre) should receive a lower weight than an item whose raters
	// disagree with their own average. We approximate this by comparing the
	// head item 0 (rated by everyone, low θ_ui for explorers) with a tail
	// item (rated only by explorers with high ratings).
	d := fixture()
	res := Generalized(d, DefaultGeneralizedConfig())
	headWeight := res.ItemWeights[0]
	// Find the most-weighted tail item.
	tailMax := 0.0
	for i := 10; i < d.NumItems(); i++ {
		if res.ItemWeights[i] > tailMax {
			tailMax = res.ItemWeights[i]
		}
	}
	if tailMax <= headWeight {
		t.Fatalf("expected some discriminative tail item to outweigh the head item: tail max %.4f vs head %.4f", tailMax, headWeight)
	}
}

func TestEstimateDispatch(t *testing.T) {
	d := fixture()
	for _, m := range AllModels() {
		p, err := Estimate(m, d, nil, 0.5, 1)
		if err != nil {
			t.Fatalf("Estimate(%s) failed: %v", m, err)
		}
		if p.Len() != d.NumUsers() {
			t.Fatalf("Estimate(%s) returned %d values, want %d", m, p.Len(), d.NumUsers())
		}
		if p.Model != m {
			t.Fatalf("Estimate(%s) labelled result %s", m, p.Model)
		}
	}
	if _, err := Estimate(Model("bogus"), d, nil, 0, 0); err == nil {
		t.Fatal("unknown model did not error")
	}
}

func TestHistogramBinsSumToUserCount(t *testing.T) {
	d := fixture()
	p := TFIDF(d)
	h := p.Histogram(20)
	if len(h) != 20 {
		t.Fatalf("histogram has %d bins", len(h))
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != d.NumUsers() {
		t.Fatalf("histogram total %d != user count %d", total, d.NumUsers())
	}
	// Degenerate bin count falls back to a sane default.
	if len(p.Histogram(0)) != 10 {
		t.Fatal("bins<=0 should fall back to 10")
	}
}

func TestPreferencesGetOutOfRange(t *testing.T) {
	p := &Preferences{Model: ModelConstant, Values: []float64{0.1, 0.2}}
	if p.Get(-1) != 0 || p.Get(5) != 0 {
		t.Fatal("out-of-range Get should return 0")
	}
	if p.Mean() == 0 || p.StdDev() < 0 {
		t.Fatal("summary statistics broken")
	}
}

func TestGeneralizedOnSyntheticDatasetStaysInRange(t *testing.T) {
	// Property-style test on a realistic synthetic dataset: θ^G must always
	// lie in [0,1] and never be NaN, for several random splits.
	cfg := synth.ML100K(0.1)
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		sp := d.SplitByUser(0.8, rand.New(rand.NewSource(seed)))
		res := Generalized(sp.Train, DefaultGeneralizedConfig())
		for _, v := range res.Preferences.Values {
			if v < 0 || v > 1 || v != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralizedDistributionLessSkewedThanNormalized(t *testing.T) {
	// The paper's Figure 2 observation: θ^N is right-skewed (most users near
	// 0) while θ^G is more centred with larger mean. Verify the mean ordering
	// on a synthetic dataset with realistic popularity bias.
	cfg := synth.ML1M(0.5)
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := d.SplitByUser(0.5, rand.New(rand.NewSource(3)))
	tail := sp.Train.LongTail(dataset.DefaultTailShare)
	n := NormalizedLongTail(sp.Train, tail)
	g := Generalized(sp.Train, DefaultGeneralizedConfig()).Preferences
	if g.Mean() <= n.Mean() {
		t.Fatalf("expected θ^G mean (%.3f) > θ^N mean (%.3f) as in Figure 2", g.Mean(), n.Mean())
	}
}
