// Package longtail implements the paper's user long-tail novelty preference
// models (Section II): the simple Activity, Normalized long-tail and
// TFIDF-based measures, the Random and Constant controls used in the
// ablation, and the Generalized preference θ^G learned by the alternating
// min–max optimization of Eq. II.4–II.6.
//
// Every estimator returns one value per user in [0,1]; 0 means the user is
// best served by popular items, 1 means the user actively seeks long-tail
// items.
package longtail

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ganc/internal/dataset"
	"ganc/internal/mat"
	"ganc/internal/types"
)

// Model identifies a preference estimator. The names follow the paper's
// superscripts: θ^A, θ^N, θ^T, θ^G plus the θ^R / θ^C controls.
type Model string

const (
	// ModelActivity is θ^A: the (normalized) number of items the user rated.
	ModelActivity Model = "Activity"
	// ModelNormalizedLongTail is θ^N: the fraction of the user's rated items
	// that are long-tail (Eq. II.1).
	ModelNormalizedLongTail Model = "NormalizedLongTail"
	// ModelTFIDF is θ^T: the rating-weighted inverse-popularity measure
	// (Eq. II.2).
	ModelTFIDF Model = "TFIDF"
	// ModelGeneralized is θ^G: the learned weighted preference (Eq. II.6).
	ModelGeneralized Model = "Generalized"
	// ModelRandom is θ^R: uniformly random preferences (ablation control).
	ModelRandom Model = "Random"
	// ModelConstant is θ^C: the same constant for every user (ablation control).
	ModelConstant Model = "Constant"
)

// Preferences holds one θ_u per user, aligned with the dataset's UserIDs.
type Preferences struct {
	Model  Model
	Values []float64
}

// Get returns θ_u, or 0 for out-of-range users.
func (p *Preferences) Get(u types.UserID) float64 {
	if int(u) < 0 || int(u) >= len(p.Values) {
		return 0
	}
	return p.Values[u]
}

// Len returns the number of users covered.
func (p *Preferences) Len() int { return len(p.Values) }

// Clone returns a deep copy of the preference vector.
func (p *Preferences) Clone() *Preferences {
	values := make([]float64, len(p.Values))
	copy(values, p.Values)
	return &Preferences{Model: p.Model, Values: values}
}

// ExtendTo returns a preference vector covering n users: a copy of this one
// with users beyond the current range assigned fill. The streaming-ingestion
// layer uses it to give freshly observed users a θ (the mean of the existing
// population) without re-running estimation; n below Len just clones.
func (p *Preferences) ExtendTo(n int, fill float64) *Preferences {
	if n < len(p.Values) {
		n = len(p.Values)
	}
	values := make([]float64, n)
	copy(values, p.Values)
	for k := len(p.Values); k < n; k++ {
		values[k] = fill
	}
	return &Preferences{Model: p.Model, Values: values}
}

// Histogram bins the preference values into `bins` equal-width buckets over
// [0,1], the quantity plotted in the paper's Figure 2.
func (p *Preferences) Histogram(bins int) []int {
	if bins <= 0 {
		bins = 10
	}
	out := make([]int, bins)
	for _, v := range p.Values {
		b := int(v * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		out[b]++
	}
	return out
}

// Mean returns the average preference across users.
func (p *Preferences) Mean() float64 { return mat.Mean(p.Values) }

// StdDev returns the standard deviation of preferences across users.
func (p *Preferences) StdDev() float64 { return mat.StdDev(p.Values) }

// Activity computes θ^A_u = |I^R_u|, min–max normalized across users.
func Activity(train *dataset.Dataset) *Preferences {
	vals := make([]float64, train.NumUsers())
	for u := range vals {
		vals[u] = float64(len(train.UserRatings(types.UserID(u))))
	}
	mat.Normalize01(vals)
	return &Preferences{Model: ModelActivity, Values: vals}
}

// NormalizedLongTail computes θ^N_u = |I^R_u ∩ L| / |I^R_u| (Eq. II.1), the
// fraction of the user's train items that belong to the long tail L.
func NormalizedLongTail(train *dataset.Dataset, tail map[types.ItemID]struct{}) *Preferences {
	vals := make([]float64, train.NumUsers())
	for u := range vals {
		items := train.UserItems(types.UserID(u))
		if len(items) == 0 {
			continue
		}
		cnt := 0
		for _, i := range items {
			if _, ok := tail[i]; ok {
				cnt++
			}
		}
		vals[u] = float64(cnt) / float64(len(items))
	}
	return &Preferences{Model: ModelNormalizedLongTail, Values: vals}
}

// perUserItemPreference computes θ_ui = r_ui · log(|U| / |U^R_i|), the
// per-user-item long-tail preference value from Eq. II.3, for every train
// rating, then projects all θ_ui onto [0,1] as required by the generalized
// model (|θ_ui − θ^G_u| ≤ 1).
//
// The paper only states that the θ_ui are projected to the unit interval. A
// plain global min–max projection lets the handful of extreme values (a
// 5-star rating on an item rated once) compress the bulk of the distribution
// into the bottom of the interval, which flattens the Figure 2 histograms and
// neutralizes the θ_u > 0.5 region the Dyn coverage trade-off depends on. We
// therefore use a robust projection: min–max between the 1st and 99th
// percentiles with clamping, which preserves ordering for 98% of the mass and
// reproduces the paper's "normally distributed with larger mean and variance"
// shape for θ^G.
func perUserItemPreference(train *dataset.Dataset) []float64 {
	numUsers := float64(train.NumUsers())
	vals := make([]float64, train.NumRatings())
	for idx, r := range train.Ratings() {
		pop := float64(train.ItemPopularity(r.Item))
		if pop < 1 {
			pop = 1
		}
		vals[idx] = r.Value * math.Log(numUsers/pop)
	}
	projectUnitRobust(vals, 0.01, 0.99)
	return vals
}

// projectUnitRobust rescales vals in place so that the loQ quantile maps to 0
// and the hiQ quantile maps to 1, clamping values outside that range. A
// degenerate spread falls back to zeroing the vector, matching
// mat.Normalize01's convention for constant input.
func projectUnitRobust(vals []float64, loQ, hiQ float64) {
	if len(vals) == 0 {
		return
	}
	sorted := append([]float64(nil), vals...)
	sortFloat64s(sorted)
	lo := quantileSorted(sorted, loQ)
	hi := quantileSorted(sorted, hiQ)
	span := hi - lo
	if span <= 0 {
		mat.Normalize01(vals)
		return
	}
	for i, v := range vals {
		vals[i] = mat.Clamp((v-lo)/span, 0, 1)
	}
}

func sortFloat64s(v []float64) {
	sort.Float64s(v)
}

// quantileSorted returns the linearly interpolated q-quantile of a sorted
// slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// TFIDF computes θ^T_u (Eq. II.2): the average of the user's θ_ui values.
// The θ_ui are projected to [0,1] first, exactly as the generalized model
// requires, so θ^T and θ^G live on the same scale and are comparable in the
// Figure 2 histograms.
func TFIDF(train *dataset.Dataset) *Preferences {
	thetaUI := perUserItemPreference(train)
	vals := make([]float64, train.NumUsers())
	for u := range vals {
		idxs := train.UserRatings(types.UserID(u))
		if len(idxs) == 0 {
			continue
		}
		s := 0.0
		for _, idx := range idxs {
			s += thetaUI[idx]
		}
		vals[u] = s / float64(len(idxs))
	}
	return &Preferences{Model: ModelTFIDF, Values: vals}
}

// Random assigns each user an independent uniform preference in [0,1]
// (ablation control θ^R).
func Random(numUsers int, seed int64) *Preferences {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, numUsers)
	for u := range vals {
		vals[u] = rng.Float64()
	}
	return &Preferences{Model: ModelRandom, Values: vals}
}

// Constant assigns every user the same preference c (ablation control θ^C;
// the paper reports c = 0.5).
func Constant(numUsers int, c float64) *Preferences {
	c = mat.Clamp(c, 0, 1)
	vals := make([]float64, numUsers)
	for u := range vals {
		vals[u] = c
	}
	return &Preferences{Model: ModelConstant, Values: vals}
}

// GeneralizedConfig configures the alternating min–max solver for θ^G.
type GeneralizedConfig struct {
	// Iterations is the number of alternating w / θ^G updates. The updates
	// are closed form (Eq. II.5 and II.6), so a handful of iterations
	// suffices for convergence.
	Iterations int
	// Lambda is the log-barrier regularization coefficient λ₁ that keeps the
	// item weights away from zero. The paper sets λ₁ = 1.
	Lambda float64
	// Tolerance stops the iteration early once the largest change in any
	// θ^G_u falls below it.
	Tolerance float64
}

// DefaultGeneralizedConfig mirrors the paper: λ₁ = 1, with enough iterations
// for the closed-form alternation to converge.
func DefaultGeneralizedConfig() GeneralizedConfig {
	return GeneralizedConfig{Iterations: 50, Lambda: 1.0, Tolerance: 1e-6}
}

// GeneralizedResult bundles the learned user preferences and item weights.
type GeneralizedResult struct {
	Preferences *Preferences
	// ItemWeights are the learned importance weights w_i (Eq. II.5), indexed
	// by ItemID. Items with no train ratings keep weight 0.
	ItemWeights []float64
	// Iterations is the number of alternating updates actually performed.
	Iterations int
}

// Generalized learns θ^G by alternating the closed-form updates of the
// min–max objective (Eq. II.4):
//
//	w_i   = λ₁ / ε_i                        (Eq. II.5, minimization step)
//	θ^G_u = Σ_i w_i·θ_ui / Σ_i w_i          (Eq. II.6, maximization step)
//
// where ε_i = Σ_{u∈U_i} [1 − (θ_ui − θ^G_u)²] is the item mediocrity. θ_ui is
// projected onto [0,1] beforehand so |θ_ui − θ^G_u| ≤ 1 always holds and the
// mediocrity is non-negative. θ^G is initialized at the TFIDF solution (all
// weights equal), which is exactly the w_i = 1 special case the paper notes.
func Generalized(train *dataset.Dataset, cfg GeneralizedConfig) *GeneralizedResult {
	if cfg.Iterations <= 0 {
		cfg.Iterations = DefaultGeneralizedConfig().Iterations
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1.0
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1e-6
	}

	thetaUI := perUserItemPreference(train)
	numUsers, numItems := train.NumUsers(), train.NumItems()

	// Initialize θ^G at the equal-weight (TFIDF) solution.
	theta := make([]float64, numUsers)
	for u := 0; u < numUsers; u++ {
		idxs := train.UserRatings(types.UserID(u))
		if len(idxs) == 0 {
			continue
		}
		s := 0.0
		for _, idx := range idxs {
			s += thetaUI[idx]
		}
		theta[u] = s / float64(len(idxs))
	}
	weights := make([]float64, numItems)

	iters := 0
	for it := 0; it < cfg.Iterations; it++ {
		iters = it + 1
		// Minimization step: w_i = λ₁ / ε_i.
		for i := 0; i < numItems; i++ {
			idxs := train.ItemRatings(types.ItemID(i))
			if len(idxs) == 0 {
				weights[i] = 0
				continue
			}
			mediocrity := 0.0
			for _, idx := range idxs {
				r := train.Rating(idx)
				d := thetaUI[idx] - theta[r.User]
				mediocrity += 1 - d*d
			}
			if mediocrity < 1e-9 {
				mediocrity = 1e-9
			}
			weights[i] = cfg.Lambda / mediocrity
		}
		// Maximization step: θ^G_u = weighted average of the user's θ_ui.
		maxDelta := 0.0
		for u := 0; u < numUsers; u++ {
			idxs := train.UserRatings(types.UserID(u))
			if len(idxs) == 0 {
				continue
			}
			num, den := 0.0, 0.0
			for _, idx := range idxs {
				r := train.Rating(idx)
				w := weights[r.Item]
				num += w * thetaUI[idx]
				den += w
			}
			if den == 0 {
				continue
			}
			next := num / den
			if d := math.Abs(next - theta[u]); d > maxDelta {
				maxDelta = d
			}
			theta[u] = next
		}
		if maxDelta < cfg.Tolerance {
			break
		}
	}
	// θ_ui ∈ [0,1] and θ^G is a convex combination of them, so it is already
	// in [0,1]; clamp defensively against floating-point drift.
	for u := range theta {
		theta[u] = mat.Clamp(theta[u], 0, 1)
	}
	return &GeneralizedResult{
		Preferences: &Preferences{Model: ModelGeneralized, Values: theta},
		ItemWeights: weights,
		Iterations:  iters,
	}
}

// Estimate computes the preferences for the requested model. It is the
// convenience entry point used by the CLI and the experiment harness.
// The tail set is only needed for ModelNormalizedLongTail and may be nil for
// the others; constant is only used for ModelConstant; seed only for
// ModelRandom.
func Estimate(model Model, train *dataset.Dataset, tail map[types.ItemID]struct{}, constant float64, seed int64) (*Preferences, error) {
	switch model {
	case ModelActivity:
		return Activity(train), nil
	case ModelNormalizedLongTail:
		if tail == nil {
			tail = train.LongTail(dataset.DefaultTailShare)
		}
		return NormalizedLongTail(train, tail), nil
	case ModelTFIDF:
		return TFIDF(train), nil
	case ModelGeneralized:
		return Generalized(train, DefaultGeneralizedConfig()).Preferences, nil
	case ModelRandom:
		return Random(train.NumUsers(), seed), nil
	case ModelConstant:
		return Constant(train.NumUsers(), constant), nil
	default:
		return nil, fmt.Errorf("longtail: unknown preference model %q", model)
	}
}

// AllModels lists every preference model in the order the paper discusses
// them.
func AllModels() []Model {
	return []Model{ModelActivity, ModelNormalizedLongTail, ModelTFIDF, ModelGeneralized, ModelRandom, ModelConstant}
}
