package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func buildSample(t *testing.T) []byte {
	t.Helper()
	var b Builder
	b.Add("alpha", []byte("hello snapshot"))
	if err := b.AddGob("beta", map[string]int{"x": 1, "y": 2}); err != nil {
		t.Fatal(err)
	}
	b.Add("gamma", nil) // empty payloads are legal
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	raw := buildSample(t)
	snap, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got := snap.Sections()
	want := []string{"alpha", "beta", "gamma"}
	if len(got) != len(want) {
		t.Fatalf("sections %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("sections %v, want %v", got, want)
		}
	}
	payload, err := snap.Section("alpha")
	if err != nil || string(payload) != "hello snapshot" {
		t.Fatalf("alpha payload %q err %v", payload, err)
	}
	var m map[string]int
	if err := snap.Gob("beta", &m); err != nil {
		t.Fatal(err)
	}
	if m["x"] != 1 || m["y"] != 2 {
		t.Fatalf("beta decoded to %v", m)
	}
	if _, err := snap.Section("missing"); !errors.Is(err, ErrNoSection) {
		t.Fatalf("missing section error = %v, want ErrNoSection", err)
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.ganc")
	var b Builder
	b.Add("only", []byte("payload"))
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected exactly the snapshot in %s, found %d entries", dir, len(entries))
	}
	snap, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Has("only") {
		t.Fatal("section lost across save/load")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTASNAPxxxxxxxxxxx"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestUnsupportedVersion(t *testing.T) {
	raw := buildSample(t)
	raw[11] = 99 // big-endian format version's low byte
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("err = %v, want ErrUnsupportedVersion", err)
	}
}

func TestTruncated(t *testing.T) {
	raw := buildSample(t)
	for _, cut := range []int{4, 13, len(raw) / 2, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:cut])); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("cut at %d: err = %v, want corruption", cut, err)
		}
	}
}

func TestBitFlippedPayload(t *testing.T) {
	raw := buildSample(t)
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-10] ^= 0x40 // somewhere inside a payload
	if _, err := Read(bytes.NewReader(flipped)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestDuplicateSectionRejected(t *testing.T) {
	var b Builder
	b.Add("dup", []byte("a"))
	b.Add("dup", []byte("b"))
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err == nil {
		t.Fatal("duplicate section names must be rejected")
	}
}
