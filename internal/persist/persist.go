// Package persist implements the versioned binary snapshot container every
// engine snapshot in this library is stored in. A snapshot file is a small
// self-describing archive:
//
//	offset  size  field
//	0       8     magic "GANCSNAP"
//	8       4     format version (uint32, big endian)
//	12      4     section count (uint32, big endian)
//	16      …     section table: per section
//	              2  name length (uint16)
//	              …  name (UTF-8)
//	              8  payload length (uint64)
//	              4  payload CRC-32 (IEEE)
//	…       …     payloads, concatenated in table order
//
// Sections are opaque byte payloads — the facade encodes the dataset, the
// trained base model, the θ preferences, the coverage state and the ingestion
// bookkeeping as separate sections, so a reader can skip or tolerate sections
// it does not know about (forward-compatible additions) while the format
// version gates incompatible layout changes. Every payload is checksummed, so
// a truncated or bit-flipped snapshot fails loudly at load time instead of
// mis-decoding into a plausible-looking model.
//
// Save writes atomically (temp file + rename), so a crash mid-checkpoint
// never leaves a half-written snapshot at the target path.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Magic identifies a GANC snapshot file. It never changes; the format version
// after it gates layout evolution.
const Magic = "GANCSNAP"

// FormatVersion is the container layout version this build reads and writes.
const FormatVersion = 1

// Limits guarding against nonsense headers in corrupt or hostile files.
const (
	maxSections    = 1 << 10
	maxNameLen     = 1 << 8
	maxSectionSize = 1 << 40
)

// Sentinel errors, matchable with errors.Is so callers (e.g. cmd/ganc) can
// turn them into precise operator-facing messages.
var (
	// ErrBadMagic marks a file that is not a GANC snapshot at all.
	ErrBadMagic = errors.New("persist: not a GANC snapshot (bad magic)")
	// ErrUnsupportedVersion marks a snapshot written by an incompatible
	// format version.
	ErrUnsupportedVersion = errors.New("persist: unsupported snapshot format version")
	// ErrCorrupt marks a snapshot whose structure or checksums do not hold.
	ErrCorrupt = errors.New("persist: corrupt snapshot")
	// ErrNoSection marks a lookup of a section the snapshot does not contain.
	ErrNoSection = errors.New("persist: snapshot section not found")
)

// Builder accumulates named sections and writes the container. Sections are
// written in Add order. The zero value is ready to use.
type Builder struct {
	names    []string
	payloads [][]byte
}

// Add appends a raw section. Adding a duplicate name is rejected at WriteTo
// time. The payload is not copied; callers must not mutate it afterwards.
func (b *Builder) Add(name string, payload []byte) {
	b.names = append(b.names, name)
	b.payloads = append(b.payloads, payload)
}

// AddGob appends a section holding the gob encoding of v.
func (b *Builder) AddGob(name string, v interface{}) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("persist: encode section %q: %w", name, err)
	}
	b.Add(name, buf.Bytes())
	return nil
}

// AddFrom appends a section produced by a writer-style encoder (the model
// Save methods all have the shape func(io.Writer) error).
func (b *Builder) AddFrom(name string, encode func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := encode(&buf); err != nil {
		return fmt.Errorf("persist: encode section %q: %w", name, err)
	}
	b.Add(name, buf.Bytes())
	return nil
}

// WriteTo writes the complete container to w.
func (b *Builder) WriteTo(w io.Writer) (int64, error) {
	if len(b.names) > maxSections {
		return 0, fmt.Errorf("persist: %d sections exceeds the limit of %d", len(b.names), maxSections)
	}
	seen := make(map[string]struct{}, len(b.names))
	var table bytes.Buffer
	for k, name := range b.names {
		if name == "" || len(name) > maxNameLen {
			return 0, fmt.Errorf("persist: invalid section name %q", name)
		}
		if _, dup := seen[name]; dup {
			return 0, fmt.Errorf("persist: duplicate section %q", name)
		}
		seen[name] = struct{}{}
		if err := binary.Write(&table, binary.BigEndian, uint16(len(name))); err != nil {
			return 0, err
		}
		table.WriteString(name)
		if err := binary.Write(&table, binary.BigEndian, uint64(len(b.payloads[k]))); err != nil {
			return 0, err
		}
		if err := binary.Write(&table, binary.BigEndian, crc32.ChecksumIEEE(b.payloads[k])); err != nil {
			return 0, err
		}
	}

	var header bytes.Buffer
	header.WriteString(Magic)
	if err := binary.Write(&header, binary.BigEndian, uint32(FormatVersion)); err != nil {
		return 0, err
	}
	if err := binary.Write(&header, binary.BigEndian, uint32(len(b.names))); err != nil {
		return 0, err
	}

	total := int64(0)
	for _, chunk := range [][]byte{header.Bytes(), table.Bytes()} {
		n, err := w.Write(chunk)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	for _, payload := range b.payloads {
		n, err := w.Write(payload)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Save writes the container atomically to path: the bytes land in a temp file
// in the same directory, are fsynced, and are renamed over the target only on
// success.
func (b *Builder) Save(path string) error {
	return AtomicWrite(path, func(w io.Writer) error {
		if _, err := b.WriteTo(w); err != nil {
			return fmt.Errorf("persist: write snapshot: %w", err)
		}
		return nil
	})
}

// AtomicWrite streams write's output into a file at path atomically: the
// bytes land in a temp file in the same directory (widened from CreateTemp's
// 0600 to the usual umask-limited 0644), are fsynced, and are renamed over
// the target only on success — a crash mid-write never leaves a half-written
// file at path. Shared by the snapshot container and every other durable
// artifact (e.g. the load-benchmark report).
func AtomicWrite(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: create temp file: %w", err)
	}
	tmpPath := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpPath)
	}
	if err := tmp.Chmod(0o644); err != nil {
		cleanup()
		return fmt.Errorf("persist: chmod %s: %w", path, err)
	}
	if err := write(tmp); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("persist: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("persist: close %s: %w", path, err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("persist: install %s: %w", path, err)
	}
	return nil
}

// Snapshot is a fully read and checksum-verified container.
type Snapshot struct {
	sections map[string][]byte
	order    []string
}

// Read parses a container from r, verifying magic, version, structure and
// every section checksum.
func Read(r io.Reader) (*Snapshot, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrCorrupt, err)
	}
	if string(magic[:]) != Magic {
		return nil, ErrBadMagic
	}
	var version, count uint32
	if err := binary.Read(r, binary.BigEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: reading format version: %v", ErrCorrupt, err)
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: snapshot has version %d, this build reads version %d",
			ErrUnsupportedVersion, version, FormatVersion)
	}
	if err := binary.Read(r, binary.BigEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: reading section count: %v", ErrCorrupt, err)
	}
	if count > maxSections {
		return nil, fmt.Errorf("%w: section count %d exceeds the limit of %d", ErrCorrupt, count, maxSections)
	}

	type entry struct {
		name string
		size uint64
		crc  uint32
	}
	entries := make([]entry, count)
	for k := range entries {
		var nameLen uint16
		if err := binary.Read(r, binary.BigEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("%w: reading section table: %v", ErrCorrupt, err)
		}
		if nameLen == 0 || int(nameLen) > maxNameLen {
			return nil, fmt.Errorf("%w: section name length %d out of range", ErrCorrupt, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("%w: reading section name: %v", ErrCorrupt, err)
		}
		entries[k].name = string(name)
		if err := binary.Read(r, binary.BigEndian, &entries[k].size); err != nil {
			return nil, fmt.Errorf("%w: reading section size: %v", ErrCorrupt, err)
		}
		if entries[k].size > maxSectionSize {
			return nil, fmt.Errorf("%w: section %q size %d out of range", ErrCorrupt, entries[k].name, entries[k].size)
		}
		if err := binary.Read(r, binary.BigEndian, &entries[k].crc); err != nil {
			return nil, fmt.Errorf("%w: reading section checksum: %v", ErrCorrupt, err)
		}
	}

	snap := &Snapshot{sections: make(map[string][]byte, count)}
	for _, e := range entries {
		if _, dup := snap.sections[e.name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, e.name)
		}
		// Copy incrementally rather than trusting the declared size with one
		// up-front allocation: a corrupt or hostile header claiming a huge
		// section then fails at EOF after the real bytes, with memory growth
		// bounded by the data actually present.
		var buf bytes.Buffer
		if n, err := io.CopyN(&buf, r, int64(e.size)); err != nil {
			return nil, fmt.Errorf("%w: section %q truncated at byte %d of %d: %v", ErrCorrupt, e.name, n, e.size, err)
		}
		payload := buf.Bytes()
		if crc32.ChecksumIEEE(payload) != e.crc {
			return nil, fmt.Errorf("%w: section %q fails its checksum", ErrCorrupt, e.name)
		}
		snap.sections[e.name] = payload
		snap.order = append(snap.order, e.name)
	}
	return snap, nil
}

// Load reads and verifies the snapshot at path.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: open snapshot %s: %w", path, err)
	}
	defer f.Close()
	snap, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", path, err)
	}
	return snap, nil
}

// Sections lists the section names in file order.
func (s *Snapshot) Sections() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Has reports whether the snapshot contains the named section.
func (s *Snapshot) Has(name string) bool {
	_, ok := s.sections[name]
	return ok
}

// Section returns the named section's payload, or ErrNoSection.
func (s *Snapshot) Section(name string) ([]byte, error) {
	payload, ok := s.sections[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSection, name)
	}
	return payload, nil
}

// Gob decodes the named section's payload into v.
func (s *Snapshot) Gob(name string, v interface{}) error {
	payload, err := s.Section(name)
	if err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("%w: section %q: gob decode: %v", ErrCorrupt, name, err)
	}
	return nil
}

// Reader returns an io.Reader over the named section, for reader-style
// decoders (the model Load functions all have the shape func(io.Reader)).
func (s *Snapshot) Reader(name string) (io.Reader, error) {
	payload, err := s.Section(name)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(payload), nil
}
