package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// fuzzSeedContainer builds a realistic two-section snapshot for the corpus —
// the shape every real snapshot (dataset + base + prefs + coverage) has.
func fuzzSeedContainer(t interface{ Fatal(...interface{}) }) []byte {
	var b Builder
	b.Add("meta", []byte(`{"name":"GANC(Pop)","topn":10}`))
	if err := b.AddGob("prefs", struct{ Values []float64 }{Values: []float64{0.1, 0.9, 0.5}}); err != nil {
		t.Fatal(err)
	}
	b.Add("coverage", bytes.Repeat([]byte{0xAB, 0xCD}, 512))
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzSnapshotRead throws arbitrary bytes at the container parser. The
// contract under corruption: never panic, never allocate unboundedly (the
// parser copies incrementally and caps counts/names), and always fail with
// one of the three typed sentinels so callers can produce precise operator
// messages. Structurally valid inputs must yield enumerable sections.
func FuzzSnapshotRead(f *testing.F) {
	valid := fuzzSeedContainer(f)
	f.Add(valid)
	// Truncations at every structural boundary: magic, version, count, table,
	// payload.
	for _, cut := range []int{0, 4, 8, 10, 12, 14, 20, len(valid) / 2, len(valid) - 1} {
		if cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	// Bit flips in the header, table and payload regions.
	for _, pos := range []int{0, 9, 13, 17, 30, len(valid) - 3} {
		if pos >= 0 && pos < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[pos] ^= 0x40
			f.Add(mut)
		}
	}
	// A header claiming an absurd section size: must fail at EOF with memory
	// growth bounded by the bytes actually present.
	huge := append([]byte(nil), valid[:16]...)
	var hdr bytes.Buffer
	hdr.WriteString(Magic)
	binary.Write(&hdr, binary.BigEndian, uint32(FormatVersion))
	binary.Write(&hdr, binary.BigEndian, uint32(1))
	binary.Write(&hdr, binary.BigEndian, uint16(4))
	hdr.WriteString("boom")
	binary.Write(&hdr, binary.BigEndian, uint64(1<<39))
	binary.Write(&hdr, binary.BigEndian, uint32(0))
	f.Add(hdr.Bytes())
	f.Add([]byte("GANCSNAP"))
	f.Add([]byte("not a snapshot at all"))
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Read(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrUnsupportedVersion) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped parse error %v (input %d bytes)", err, len(data))
			}
			return
		}
		// A successfully parsed container must be internally consistent:
		// every listed section resolvable, unknown sections refused with the
		// typed sentinel.
		for _, name := range snap.Sections() {
			if !snap.Has(name) {
				t.Fatalf("section %q listed but not present", name)
			}
			if _, err := snap.Section(name); err != nil {
				t.Fatalf("section %q listed but unreadable: %v", name, err)
			}
		}
		if _, err := snap.Section("no-such-section-name"); !errors.Is(err, ErrNoSection) {
			t.Fatalf("missing-section error is untyped: %v", err)
		}
	})
}

// FuzzSnapshotGob narrows in on the second parse layer: gob payloads inside a
// valid container must decode or fail with ErrCorrupt — a bit-flipped model
// section must never panic or mis-decode silently into success.
func FuzzSnapshotGob(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x03, 0xFF, 0x82, 0x00})
	var ok bytes.Buffer
	b := &Builder{}
	if err := b.AddGob("v", []float64{1, 2, 3}); err != nil {
		f.Fatal(err)
	}
	if _, err := b.WriteTo(&ok); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes()[len(ok.Bytes())/2:])

	f.Fuzz(func(t *testing.T, payload []byte) {
		var b Builder
		b.Add("v", payload)
		var buf bytes.Buffer
		if _, err := b.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		snap, err := Read(&buf)
		if err != nil {
			t.Fatalf("self-built container unreadable: %v", err)
		}
		var out []float64
		if err := snap.Gob("v", &out); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped gob error %v", err)
		}
	})
}
