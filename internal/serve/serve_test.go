package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ganc/internal/dataset"
	"ganc/internal/types"
)

// fixture builds a tiny train set and a recommendation collection for it.
func fixture() (*dataset.Dataset, types.Recommendations) {
	b := dataset.NewBuilder("tiny", 8)
	b.Add("alice", "matrix", 5)
	b.Add("alice", "inception", 4)
	b.Add("bob", "matrix", 3)
	b.Add("bob", "alien", 5)
	d := b.Build()
	recs := types.Recommendations{
		0: {2}, // alice → alien
		1: {1}, // bob → inception
	}
	return d, recs
}

// countingEngine computes from a fixed per-user map and counts engine calls;
// an optional gate blocks computation until released, for coalescing tests.
type countingEngine struct {
	name     string
	recs     types.Recommendations
	computes atomic.Int64
	gate     chan struct{}
}

func (e *countingEngine) Name() string { return e.name }

func (e *countingEngine) RecommendUser(ctx context.Context, u types.UserID, n int) (types.TopNSet, error) {
	e.computes.Add(1)
	if e.gate != nil {
		select {
		case <-e.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return e.recs[u], nil
}

func newTestServer(t *testing.T, opts ...Option) (*Server, *countingEngine, *httptest.Server) {
	t.Helper()
	d, recs := fixture()
	eng := &countingEngine{name: "GANC(Pop, θ^G, Dyn)", recs: recs}
	s, err := New(d, eng, 1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, eng, ts
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestNewValidation(t *testing.T) {
	d, recs := fixture()
	eng := &countingEngine{name: "m", recs: recs}
	if _, err := New(nil, eng, 1); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := New(d, nil, 1); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := New(d, eng, 0); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestHealthEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t)
	var body HealthResponse
	if code := getJSON(t, ts.URL+"/health", &body); code != http.StatusOK {
		t.Fatalf("health status %d", code)
	}
	if body.Status != "ok" || body.Version != 1 {
		t.Fatalf("health body %+v", body)
	}
	if body.Admission != nil {
		t.Fatalf("admission block should be absent without admission control: %+v", body)
	}
}

func TestInfoEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t)
	var info InfoResponse
	if code := getJSON(t, ts.URL+"/info", &info); code != http.StatusOK {
		t.Fatalf("info status %d", code)
	}
	if info.Dataset != "tiny" || info.NumUsers != 2 || info.NumItems != 3 || info.TopN != 1 || info.Version != 1 {
		t.Fatalf("info payload %+v", info)
	}
	if info.Model != "GANC(Pop, θ^G, Dyn)" {
		t.Fatalf("info model %q", info.Model)
	}
}

// TestRecommendComputesOnline is the headline behavior: no precomputation
// anywhere, yet a user's request is answered by computing through the Engine.
func TestRecommendComputesOnline(t *testing.T) {
	_, eng, ts := newTestServer(t)
	var rec RecommendResponse
	if code := getJSON(t, ts.URL+"/recommend?user=alice", &rec); code != http.StatusOK {
		t.Fatalf("recommend status %d", code)
	}
	if rec.User != "alice" || len(rec.Items) != 1 || rec.Items[0] != "alien" {
		t.Fatalf("recommend payload %+v", rec)
	}
	if rec.Version != 1 {
		t.Fatalf("recommend version %d, want 1", rec.Version)
	}
	if got := eng.computes.Load(); got != 1 {
		t.Fatalf("engine computed %d times, want 1", got)
	}
}

func TestRecommendErrors(t *testing.T) {
	_, _, ts := newTestServer(t)
	if code := getJSON(t, ts.URL+"/recommend", nil); code != http.StatusBadRequest {
		t.Fatalf("missing user param → %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/recommend?user=nobody", nil); code != http.StatusNotFound {
		t.Fatalf("unknown user → %d, want 404", code)
	}
	resp, err := http.Post(ts.URL+"/recommend?user=alice", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST → %d, want 405", resp.StatusCode)
	}
}

func TestUsersEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t)
	var body map[string]int
	if code := getJSON(t, ts.URL+"/users", &body); code != http.StatusOK {
		t.Fatalf("users status %d", code)
	}
	if body["servable_users"] != 2 {
		t.Fatalf("users payload %v", body)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, eng, ts := newTestServer(t)
	body, _ := json.Marshal(BatchRequest{Users: []string{"alice", "bob", "nobody"}})
	resp, err := http.Post(ts.URL+"/recommend/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("batch results %d, want 3", len(out.Results))
	}
	if out.Results[0].Items[0] != "alien" || out.Results[1].Items[0] != "inception" {
		t.Fatalf("batch payload %+v", out.Results)
	}
	if out.Results[2].Error == "" {
		t.Fatal("unknown user in batch should report an inline error")
	}
	if got := eng.computes.Load(); got != 2 {
		t.Fatalf("engine computed %d times, want 2", got)
	}

	// Error paths: wrong method, bad JSON, empty users.
	if code := getJSON(t, ts.URL+"/recommend/batch", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET batch → %d, want 405", code)
	}
	resp2, _ := http.Post(ts.URL+"/recommend/batch", "application/json", bytes.NewReader([]byte("{")))
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON → %d, want 400", resp2.StatusCode)
	}
	resp3, _ := http.Post(ts.URL+"/recommend/batch", "application/json", bytes.NewReader([]byte(`{"users":[]}`)))
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty users → %d, want 400", resp3.StatusCode)
	}
}

func TestCacheHitsSkipEngine(t *testing.T) {
	s, eng, ts := newTestServer(t)
	for i := 0; i < 5; i++ {
		if code := getJSON(t, ts.URL+"/recommend?user=alice", nil); code != http.StatusOK {
			t.Fatalf("request %d status %d", i, code)
		}
	}
	if got := eng.computes.Load(); got != 1 {
		t.Fatalf("engine computed %d times for 5 identical requests, want 1", got)
	}
	stats := s.Stats()
	if stats.Hits != 4 || stats.Misses != 1 {
		t.Fatalf("cache stats %+v, want 4 hits / 1 miss", stats)
	}
}

func TestPrecomputedSeedServesWarm(t *testing.T) {
	d, recs := fixture()
	eng := &countingEngine{name: "m", recs: recs}
	s, err := New(d, eng, 1, WithPrecomputed(recs))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code := getJSON(t, ts.URL+"/recommend?user=alice", nil); code != http.StatusOK {
		t.Fatalf("warm request status %d", code)
	}
	if got := eng.computes.Load(); got != 0 {
		t.Fatalf("warm cache should avoid the engine entirely, computed %d times", got)
	}
}

func TestLRUEvictionBound(t *testing.T) {
	c := newLRUCache(2)
	c.put(0, types.TopNSet{0})
	c.put(1, types.TopNSet{1})
	c.get(0) // 0 is now most recently used
	c.put(2, types.TopNSet{2})
	if _, ok := c.get(1); ok {
		t.Fatal("user 1 should have been evicted (LRU)")
	}
	if _, ok := c.get(0); !ok {
		t.Fatal("user 0 should have survived (recently used)")
	}
	if c.len() != 2 {
		t.Fatalf("cache size %d exceeds capacity 2", c.len())
	}
	// Capacity ≤ 0 disables caching.
	off := newLRUCache(0)
	off.put(0, types.TopNSet{0})
	if _, ok := off.get(0); ok {
		t.Fatal("disabled cache returned a hit")
	}
}

// TestCoalescingDuplicateInFlight fires many concurrent requests for the same
// user while the engine is blocked: exactly one engine call must happen.
func TestCoalescingDuplicateInFlight(t *testing.T) {
	d, recs := fixture()
	eng := &countingEngine{name: "m", recs: recs, gate: make(chan struct{})}
	s, err := New(d, eng, 1)
	if err != nil {
		t.Fatal(err)
	}
	const parallel = 16
	var wg sync.WaitGroup
	results := make([]types.TopNSet, parallel)
	errs := make([]error, parallel)
	for k := 0; k < parallel; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			set, _, err := s.recommend(context.Background(), 0)
			results[k], errs[k] = set, err
		}(k)
	}
	// Wait until at least one compute started, then let everyone through.
	for eng.computes.Load() == 0 {
		runtime.Gosched()
	}
	close(eng.gate)
	wg.Wait()
	if got := eng.computes.Load(); got != 1 {
		t.Fatalf("engine computed %d times for %d concurrent requests, want 1", got, parallel)
	}
	for k := 0; k < parallel; k++ {
		if errs[k] != nil {
			t.Fatalf("request %d failed: %v", k, errs[k])
		}
		if len(results[k]) != 1 || results[k][0] != 2 {
			t.Fatalf("request %d got %v, want [2]", k, results[k])
		}
	}
	if s.Stats().Coalesced == 0 {
		t.Fatal("coalesced counter never incremented")
	}
}

// panicEngine panics on every compute.
type panicEngine struct{}

func (panicEngine) Name() string { return "panics" }
func (panicEngine) RecommendUser(context.Context, types.UserID, int) (types.TopNSet, error) {
	panic("engine exploded")
}

// TestEnginePanicDoesNotWedgeUser verifies that a panicking engine surfaces
// an error and releases the in-flight entry instead of hanging every future
// request for that user.
func TestEnginePanicDoesNotWedgeUser(t *testing.T) {
	d, _ := fixture()
	s, err := New(d, panicEngine{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		done := make(chan error, 1)
		go func() {
			_, _, err := s.recommend(context.Background(), 0)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil || !strings.Contains(err.Error(), "panic") {
				t.Fatalf("request %d: want panic error, got %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d hung: in-flight entry leaked by a previous panic", i)
		}
	}
}

// TestUpdateSwapsEngineAtomically verifies the versioned swap: new requests
// see the new engine and version, and the old generation's cache is dropped.
func TestUpdateSwapsEngineAtomically(t *testing.T) {
	s, _, ts := newTestServer(t)
	getJSON(t, ts.URL+"/recommend?user=alice", nil) // populate v1 cache

	next := &countingEngine{name: "retrained", recs: types.Recommendations{0: {1}}}
	if err := s.Update(next); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 2 {
		t.Fatalf("version %d after update, want 2", s.Version())
	}
	var info InfoResponse
	getJSON(t, ts.URL+"/info", &info)
	if info.Model != "retrained" || info.Version != 2 {
		t.Fatalf("update not reflected: %+v", info)
	}
	var rec RecommendResponse
	if code := getJSON(t, ts.URL+"/recommend?user=alice", &rec); code != http.StatusOK {
		t.Fatalf("recommend after update status %d", code)
	}
	if rec.Items[0] != "inception" {
		t.Fatalf("stale cache entry served after engine swap: %+v", rec)
	}
	if next.computes.Load() != 1 {
		t.Fatal("old generation's cache must not leak into the new engine")
	}
	// Bob has no list under the new engine → 404.
	if code := getJSON(t, ts.URL+"/recommend?user=bob", nil); code != http.StatusNotFound {
		t.Fatalf("bob should now be 404, got %d", code)
	}
	if err := s.Update(nil); err == nil {
		t.Fatal("nil engine accepted by Update")
	}
}

// TestConcurrentUpdateVsInFlightRecommend hammers /recommend while swapping
// engines; run with -race. Every response must be internally consistent (a
// well-formed list from some generation).
func TestConcurrentUpdateVsInFlightRecommend(t *testing.T) {
	s, _, ts := newTestServer(t)
	_, recs := fixture()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var rec RecommendResponse
				code := getJSON(t, ts.URL+"/recommend?user=alice", &rec)
				if code != http.StatusOK {
					t.Errorf("in-flight recommend → %d", code)
					return
				}
				if len(rec.Items) != 1 {
					t.Errorf("malformed response during swap: %+v", rec)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := s.Update(&countingEngine{name: fmt.Sprintf("v%d", i), recs: recs}); err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	if s.Version() != 51 {
		t.Fatalf("version %d after 50 updates, want 51", s.Version())
	}
}
