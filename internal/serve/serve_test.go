package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"ganc/internal/dataset"
	"ganc/internal/types"
)

// fixture builds a tiny train set and a recommendation collection for it.
func fixture() (*dataset.Dataset, types.Recommendations) {
	b := dataset.NewBuilder("tiny", 8)
	b.Add("alice", "matrix", 5)
	b.Add("alice", "inception", 4)
	b.Add("bob", "matrix", 3)
	b.Add("bob", "alien", 5)
	d := b.Build()
	recs := types.Recommendations{
		0: {2}, // alice → alien
		1: {1}, // bob → inception
	}
	return d, recs
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	d, recs := fixture()
	s, err := New(d, "GANC(Pop, θ^G, Dyn)", recs, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestNewValidation(t *testing.T) {
	d, recs := fixture()
	if _, err := New(nil, "m", recs, 1); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := New(d, "m", nil, 1); err == nil {
		t.Fatal("empty recommendations accepted")
	}
	if _, err := New(d, "m", recs, 0); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestHealthEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var body map[string]string
	if code := getJSON(t, ts.URL+"/health", &body); code != http.StatusOK {
		t.Fatalf("health status %d", code)
	}
	if body["status"] != "ok" {
		t.Fatalf("health body %v", body)
	}
}

func TestInfoEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var info InfoResponse
	if code := getJSON(t, ts.URL+"/info", &info); code != http.StatusOK {
		t.Fatalf("info status %d", code)
	}
	if info.Dataset != "tiny" || info.NumUsers != 2 || info.NumItems != 3 || info.TopN != 1 || info.Version != 1 {
		t.Fatalf("info payload %+v", info)
	}
}

func TestRecommendEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var rec RecommendResponse
	if code := getJSON(t, ts.URL+"/recommend?user=alice", &rec); code != http.StatusOK {
		t.Fatalf("recommend status %d", code)
	}
	if rec.User != "alice" || len(rec.Items) != 1 || rec.Items[0] != "alien" {
		t.Fatalf("recommend payload %+v", rec)
	}
}

func TestRecommendErrors(t *testing.T) {
	_, ts := newTestServer(t)
	if code := getJSON(t, ts.URL+"/recommend", nil); code != http.StatusBadRequest {
		t.Fatalf("missing user param → %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/recommend?user=nobody", nil); code != http.StatusNotFound {
		t.Fatalf("unknown user → %d, want 404", code)
	}
	resp, err := http.Post(ts.URL+"/recommend?user=alice", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST → %d, want 405", resp.StatusCode)
	}
}

func TestUsersEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var body map[string]int
	if code := getJSON(t, ts.URL+"/users", &body); code != http.StatusOK {
		t.Fatalf("users status %d", code)
	}
	if body["users_with_recommendations"] != 2 {
		t.Fatalf("users payload %v", body)
	}
}

func TestUpdateSwapsCollectionAndBumpsVersion(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.Update("retrained", types.Recommendations{0: {1}}); err != nil {
		t.Fatal(err)
	}
	var info InfoResponse
	getJSON(t, ts.URL+"/info", &info)
	if info.Model != "retrained" || info.Version != 2 {
		t.Fatalf("update not reflected: %+v", info)
	}
	var rec RecommendResponse
	if code := getJSON(t, ts.URL+"/recommend?user=alice", &rec); code != http.StatusOK {
		t.Fatalf("recommend after update status %d", code)
	}
	if rec.Items[0] != "inception" {
		t.Fatalf("updated recommendation not served: %+v", rec)
	}
	// Bob no longer has a list in the new collection.
	if code := getJSON(t, ts.URL+"/recommend?user=bob", nil); code != http.StatusNotFound {
		t.Fatalf("bob should now be 404, got %d", code)
	}
	if err := s.Update("x", nil); err == nil {
		t.Fatal("empty update accepted")
	}
}

func TestConcurrentReadsAndUpdates(t *testing.T) {
	s, ts := newTestServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := http.Get(ts.URL + "/recommend?user=alice")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = s.Update("v", types.Recommendations{0: {2}})
		}
	}()
	wg.Wait()
}
