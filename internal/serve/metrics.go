package serve

import (
	"net/http"
	"time"

	"ganc/internal/admit"
	"ganc/internal/obs"
)

// WithMetrics attaches a metrics registry: the server registers its engine,
// cache and ingestion series on it, instruments every route with request
// counters and latency histograms, and mounts GET /metrics on the handler.
// The registry may be shared (e.g. with an admission controller or a
// process-level registrar); series names are fixed, so two servers must not
// share one registry.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) { s.metrics = reg }
}

// WithRequestLog emits one structured JSON line per request (method, route,
// status, shard, duration, engine version, client key) to the logger.
func WithRequestLog(l *obs.RequestLogger) Option {
	return func(s *Server) { s.reqLog = l }
}

// WithAdmission applies an admission controller — per-client rate limiting
// and a concurrency cap — around every route except /health, /metrics and
// /info. A nil controller is accepted and admits everything.
func WithAdmission(c *admit.Controller) Option {
	return func(s *Server) { s.admission = c }
}

// WithRateLimit applies per-client token-bucket rate limiting: a sustained
// ratePerSec with a burst allowance (burst ≤ 0 defaults to max(rate, 1)).
// Clients are keyed by the X-Client-ID header, falling back to the remote
// host. Composes with WithMaxConcurrent into one admission controller; an
// explicit WithAdmission controller overrides both.
func WithRateLimit(ratePerSec, burst float64) Option {
	return func(s *Server) {
		cfg := s.pendingAdmit()
		cfg.RatePerSec = ratePerSec
		cfg.Burst = burst
	}
}

// WithMaxConcurrent caps requests inside handlers at n; an over-capacity
// request waits up to maxWait for a slot before being shed with a typed 429.
// Composes with WithRateLimit into one admission controller.
func WithMaxConcurrent(n int, maxWait time.Duration) Option {
	return func(s *Server) {
		cfg := s.pendingAdmit()
		cfg.MaxConcurrent = n
		cfg.MaxWait = maxWait
	}
}

// pendingAdmit returns the admission configuration accumulated by
// WithRateLimit/WithMaxConcurrent, creating it on first use. New builds the
// controller from it after all options have applied.
func (s *Server) pendingAdmit() *admit.Config {
	if s.admitCfg == nil {
		s.admitCfg = &admit.Config{}
	}
	return s.admitCfg
}

// initObservability finishes construction: builds the HTTP instrumentation
// middleware and registers the server's metric families. Called once from
// New after options are applied.
func (s *Server) initObservability() {
	if s.metrics == nil && s.reqLog == nil {
		return
	}
	reg := s.metrics
	if reg == nil {
		// Request logging without a /metrics endpoint still needs a registry
		// for the middleware's internals; keep it private.
		reg = obs.NewRegistry()
	}
	s.httpObs = obs.NewHTTPMetrics(reg, s.reqLog, s.requestMeta, nil)
	s.computeHist = reg.Histogram("ganc_engine_compute_seconds",
		"Cold-path engine computation latency per user (cache misses only).", nil)
	reg.GaugeFunc("ganc_engine_version",
		"Current engine generation (1 initial, +1 per swap).",
		func() float64 { return float64(s.Version()) })
	reg.CounterFunc("ganc_engine_swaps_total",
		"Atomic engine swaps since start.",
		func() float64 { return float64(s.swaps.Load()) })
	reg.CounterFunc("ganc_cache_hits_total",
		"Recommendation cache hits.",
		func() float64 { return float64(s.hits.Load()) })
	reg.CounterFunc("ganc_cache_misses_total",
		"Recommendation cache misses (each one is an engine computation).",
		func() float64 { return float64(s.misses.Load()) })
	reg.CounterFunc("ganc_cache_coalesced_total",
		"Requests coalesced onto another request's in-flight computation.",
		func() float64 { return float64(s.coalesced.Load()) })
	reg.GaugeFunc("ganc_cache_size",
		"Entries in the current generation's cache.",
		func() float64 { return float64(s.gen.Load().cache.len()) })
	reg.GaugeFunc("ganc_cache_capacity",
		"Configured cache capacity.",
		func() float64 { return float64(s.capacity) })
	reg.CounterFunc("ganc_batch_users_total",
		"Users processed through POST /recommend/batch.",
		func() float64 { return float64(s.batchUsers.Load()) })
	reg.CounterFunc("ganc_ingest_events_total",
		"Interaction events applied through POST /ingest.",
		func() float64 { return float64(s.ingestEvents.Load()) })
	if s.admission != nil {
		s.admission.Register(reg)
	}
}

// requestMeta supplies the request-log fields the middleware cannot derive:
// shard identity, serving version, and the admission client key.
func (s *Server) requestMeta(r *http.Request) (*int, int, string) {
	var shard *int
	if s.shard != nil {
		id := s.shard.ShardID
		shard = &id
	}
	return shard, s.Version(), s.admission.ClientKey(r)
}

// HealthResponse is the payload of GET /health. Status is always "ok" when
// the process can answer at all; the point of the extra fields is triage —
// a router aggregates them so an operator can see which shard is shedding
// and how saturated its concurrency cap is without scraping every node.
type HealthResponse struct {
	// Status is "ok".
	Status string `json:"status"`
	// Shard is the server's shard ID when it serves as part of a cluster.
	Shard *int `json:"shard,omitempty"`
	// Version is the current engine generation.
	Version int `json:"version"`
	// Admission carries shed counts and limiter saturation when admission
	// control is enabled.
	Admission *admit.Stats `json:"admission,omitempty"`
}
