package serve

import (
	"net/http"
	"time"

	"ganc/internal/admit"
	"ganc/internal/obs"
)

// WithMetrics attaches a metrics registry: the server registers its engine,
// cache and ingestion series on it, instruments every route with request
// counters and latency histograms, and mounts GET /metrics on the handler.
// The registry may be shared (e.g. with an admission controller or a
// process-level registrar); series names are fixed, so two servers must not
// share one registry.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) { s.metrics = reg }
}

// WithRequestLog emits one structured JSON line per request (method, route,
// status, shard, duration, engine version, client key) to the logger.
func WithRequestLog(l *obs.RequestLogger) Option {
	return func(s *Server) { s.reqLog = l }
}

// WithAdmission applies an admission controller — per-client rate limiting
// and a concurrency cap — around every route except /health, /metrics and
// /info. A nil controller is accepted and admits everything.
func WithAdmission(c *admit.Controller) Option {
	return func(s *Server) { s.admission = c }
}

// WithRateLimit applies per-client token-bucket rate limiting: a sustained
// ratePerSec with a burst allowance (burst ≤ 0 defaults to max(rate, 1)).
// Clients are keyed by the X-Client-ID header, falling back to the remote
// host. Composes with WithMaxConcurrent into one admission controller; an
// explicit WithAdmission controller overrides both.
func WithRateLimit(ratePerSec, burst float64) Option {
	return func(s *Server) {
		cfg := s.pendingAdmit()
		cfg.RatePerSec = ratePerSec
		cfg.Burst = burst
	}
}

// WithMaxConcurrent caps requests inside handlers at n; an over-capacity
// request waits up to maxWait for a slot before being shed with a typed 429.
// Composes with WithRateLimit into one admission controller.
func WithMaxConcurrent(n int, maxWait time.Duration) Option {
	return func(s *Server) {
		cfg := s.pendingAdmit()
		cfg.MaxConcurrent = n
		cfg.MaxWait = maxWait
	}
}

// pendingAdmit returns the admission configuration accumulated by
// WithRateLimit/WithMaxConcurrent, creating it on first use. New builds the
// controller from it after all options have applied.
func (s *Server) pendingAdmit() *admit.Config {
	if s.admitCfg == nil {
		s.admitCfg = &admit.Config{}
	}
	return s.admitCfg
}

// initObservability finishes construction: builds the HTTP instrumentation
// middleware and registers the server's metric families. Called once from
// New after options are applied.
func (s *Server) initObservability() {
	if s.metrics == nil && s.reqLog == nil {
		return
	}
	reg := s.metrics
	if reg == nil {
		// Request logging without a /metrics endpoint still needs a registry
		// for the middleware's internals; keep it private.
		reg = obs.NewRegistry()
	}
	s.httpObs = obs.NewHTTPMetrics(reg, s.reqLog, s.requestMeta, nil)
	s.computeHist = reg.Histogram("ganc_engine_compute_seconds",
		"Cold-path engine computation latency per user (cache misses only).", nil)
	reg.GaugeFunc("ganc_engine_version",
		"Current engine generation (1 initial, +1 per swap).",
		func() float64 { return float64(s.Version()) })
	reg.CounterFunc("ganc_engine_swaps_total",
		"Atomic engine swaps since start.",
		func() float64 { return float64(s.swaps.Load()) })
	reg.CounterFunc("ganc_cache_hits_total",
		"Recommendation cache hits.",
		func() float64 { return float64(s.hits.Load()) })
	reg.CounterFunc("ganc_cache_misses_total",
		"Recommendation cache misses (each one is an engine computation).",
		func() float64 { return float64(s.misses.Load()) })
	reg.CounterFunc("ganc_cache_coalesced_total",
		"Requests coalesced onto another request's in-flight computation.",
		func() float64 { return float64(s.coalesced.Load()) })
	reg.GaugeFunc("ganc_cache_size",
		"Entries in the current generation's cache.",
		func() float64 { return float64(s.gen.Load().cache.len()) })
	reg.GaugeFunc("ganc_cache_capacity",
		"Configured cache capacity.",
		func() float64 { return float64(s.capacity) })
	reg.CounterFunc("ganc_batch_users_total",
		"Users processed through POST /recommend/batch.",
		func() float64 { return float64(s.batchUsers.Load()) })
	reg.CounterFunc("ganc_ingest_events_total",
		"Interaction events applied through POST /ingest.",
		func() float64 { return float64(s.ingestEvents.Load()) })
	// Replication series read through the probe attached later with
	// SetReplicationProbe; they report 0 until (and unless) one is attached.
	reg.GaugeFunc("ganc_replication_applied_seq",
		"Applied write-ahead-log cursor of this node's replication role (0 when replication is off).",
		func() float64 {
			if p := s.repl.Load(); p != nil {
				return float64(p.fn().AppliedSeq)
			}
			return 0
		})
	reg.GaugeFunc("ganc_replication_lag_events",
		"Committed events this node has not applied yet (replicas; 0 on primaries and when replication is off).",
		func() float64 {
			if p := s.repl.Load(); p != nil {
				return float64(p.fn().LagEvents)
			}
			return 0
		})
	if s.admission != nil {
		s.admission.Register(reg)
	}
}

// requestMeta supplies the request-log fields the middleware cannot derive:
// shard identity, serving version, and the admission client key.
func (s *Server) requestMeta(r *http.Request) (*int, int, string) {
	var shard *int
	if sh := s.shard.Load(); sh != nil {
		id := sh.ShardID
		shard = &id
	}
	return shard, s.Version(), s.admission.ClientKey(r)
}

// HealthResponse is the payload of GET /health. Status is always "ok" when
// the process can answer at all; the point of the extra fields is triage —
// a router aggregates them so an operator can see which shard is shedding
// and how saturated its concurrency cap is without scraping every node.
type HealthResponse struct {
	// Status is "ok".
	Status string `json:"status"`
	// Shard is the server's shard ID when it serves as part of a cluster.
	Shard *int `json:"shard,omitempty"`
	// Version is the current engine generation.
	Version int `json:"version"`
	// Admission carries shed counts and limiter saturation when admission
	// control is enabled.
	Admission *admit.Stats `json:"admission,omitempty"`
	// Replication carries the server's replication role and cursor lag when
	// it participates in a primary→replica pair (absent otherwise).
	Replication *ReplicationStatus `json:"replication,omitempty"`
}

// --- Replication status -------------------------------------------------------

// ReplicationStatus describes a server's place in per-shard primary→replica
// replication: its role, its applied write-ahead-log cursor, and how far it
// (or its replicas) lag behind the committed head. The cluster layer computes
// it — a primary's shipper knows every replica's acknowledged cursor, a
// replica's applier knows the last head the primary announced — and attaches
// it with SetReplicationProbe; the server merely reports it through /health
// and /metrics. Lag is measured in events (WAL sequence delta); because every
// replicated batch is republished through the versioned engine swap, the
// version lag is bounded by the same number.
type ReplicationStatus struct {
	// Role is "primary" or "replica".
	Role string `json:"role"`
	// AppliedSeq is this server's applied write-ahead-log cursor.
	AppliedSeq uint64 `json:"applied_seq"`
	// PrimarySeq is the primary's committed head as this server knows it (on
	// a primary, equal to AppliedSeq; on a replica, the head last announced
	// over /replicate).
	PrimarySeq uint64 `json:"primary_seq"`
	// LagEvents is PrimarySeq − AppliedSeq: how many committed events this
	// server has not applied yet. Always 0 on a primary.
	LagEvents uint64 `json:"lag_events"`
	// Replicas reports per-replica shipping progress (primaries only).
	Replicas []ReplicaLag `json:"replicas,omitempty"`
	// WriteQuorum is the k of the primary's k-of-n write acknowledgement
	// policy (0 when commits are not quorum-acknowledged; primaries only).
	WriteQuorum int `json:"write_quorum,omitempty"`
	// QuorumAckedSeq is the highest committed cursor acknowledged by at
	// least WriteQuorum replicas — the durability frontier a quorum-acked
	// write is guaranteed to sit behind (primaries with a quorum only).
	QuorumAckedSeq uint64 `json:"quorum_acked_seq,omitempty"`
	// QuorumTimeouts counts commits whose quorum wait expired and degraded
	// to asynchronous catch-up (primaries with a quorum only).
	QuorumTimeouts int64 `json:"quorum_timeouts,omitempty"`
}

// ReplicaLag is one replica's shipping progress as seen by its primary.
type ReplicaLag struct {
	// Addr is the replica's host:port.
	Addr string `json:"addr"`
	// AckedSeq is the last cursor the replica acknowledged.
	AckedSeq uint64 `json:"acked_seq"`
	// LagEvents is the primary's head minus AckedSeq.
	LagEvents uint64 `json:"lag_events"`
	// InSync is true while the replica acknowledges commits inline; false
	// while the background catch-up loop is re-feeding it from the WAL.
	InSync bool `json:"in_sync"`
	// Error is the last shipping failure, empty while healthy.
	Error string `json:"error,omitempty"`
}

// replicationProbe wraps the status callback so the atomic pointer has a
// concrete type.
type replicationProbe struct{ fn func() ReplicationStatus }

// SetReplicationProbe attaches (or, with nil, detaches) the callback behind
// the /health replication section and the ganc_replication_* metric series.
// Safe to call while the server is handling requests; the callback must be
// safe for concurrent use.
func (s *Server) SetReplicationProbe(fn func() ReplicationStatus) {
	if fn == nil {
		s.repl.Store(nil)
		return
	}
	s.repl.Store(&replicationProbe{fn: fn})
}
