package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"ganc/internal/obs"
)

// stubSink absorbs ingest batches and reports them applied.
type stubSink struct{ applied atomic.Int64 }

func (s *stubSink) IngestEvents(_ context.Context, events []IngestEvent) (IngestResult, error) {
	seq := s.applied.Add(int64(len(events)))
	return IngestResult{Applied: len(events), Seq: uint64(seq), Version: 1}, nil
}

// scrape fetches and strictly parses /metrics.
func scrape(t *testing.T, url string) *obs.Scrape {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	sc, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics body failed strict parse: %v", err)
	}
	return sc
}

// TestMetricsExactUnderConcurrency pins the counter-accounting contract: with
// recommend, batch and ingest traffic racing engine swaps and concurrent
// /metrics scrapes (run it with -race), the final scrape must account for
// every request exactly — per-route totals, cache-path splits summing to the
// number of recommend() calls, applied ingest events, and the version/swap
// counters agreeing across a swap.
func TestMetricsExactUnderConcurrency(t *testing.T) {
	reg := obs.NewRegistry()
	s, _, ts := newTestServer(t, WithMetrics(reg))
	sink := &stubSink{}
	s.SetIngestSink(sink)

	const (
		recommendWorkers = 4
		recommendPer     = 50
		batchWorkers     = 2
		batchPer         = 10
		batchUsers       = 2
		ingestWorkers    = 2
		ingestPer        = 10
		ingestEvents     = 3
		scrapers         = 2
		swaps            = 5
	)

	var wg sync.WaitGroup
	for w := 0; w < recommendWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			users := []string{"alice", "bob"}
			for i := 0; i < recommendPer; i++ {
				resp, err := http.Get(ts.URL + "/recommend?user=" + users[(w+i)%2])
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(w)
	}
	for w := 0; w < batchWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := []byte(`{"users":["alice","bob"]}`)
			for i := 0; i < batchPer; i++ {
				resp, err := http.Post(ts.URL+"/recommend/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}()
	}
	for w := 0; w < ingestWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ingestPer; i++ {
				body := fmt.Sprintf(`{"events":[{"user":"u%d-%d","item":"a","value":1},{"user":"x","item":"b","value":1},{"user":"y","item":"c","value":1}]}`, w, i)
				resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(w)
	}
	for w := 0; w < scrapers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				scrape(t, ts.URL) // mid-traffic scrapes must always parse
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		d, recs := fixture()
		_ = d
		for i := 0; i < swaps; i++ {
			if err := s.Update(&countingEngine{name: "swapped", recs: recs}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	sc := scrape(t, ts.URL)
	recommendReqs := float64(recommendWorkers * recommendPer)
	batchReqs := float64(batchWorkers * batchPer)
	ingestReqs := float64(ingestWorkers * ingestPer)

	if got := sc.SumByPrefix("ganc_http_requests_total", obs.L("route", "/recommend")); got != recommendReqs {
		t.Errorf("recommend requests_total = %v, want %v", got, recommendReqs)
	}
	if got := sc.SumByPrefix("ganc_http_requests_total", obs.L("route", "/recommend/batch")); got != batchReqs {
		t.Errorf("batch requests_total = %v, want %v", got, batchReqs)
	}
	if got := sc.SumByPrefix("ganc_http_requests_total", obs.L("route", "/ingest")); got != ingestReqs {
		t.Errorf("ingest requests_total = %v, want %v", got, ingestReqs)
	}
	if got, ok := sc.Value("ganc_http_request_duration_seconds_count", obs.L("route", "/recommend")); !ok || got != recommendReqs {
		t.Errorf("recommend latency count = %v (ok %v), want %v", got, ok, recommendReqs)
	}

	// Every recommend() call lands in exactly one of hit/miss/coalesced, and
	// the per-category split is nondeterministic under coalescing and swaps —
	// but the sum is exact.
	hits, _ := sc.Value("ganc_cache_hits_total")
	misses, _ := sc.Value("ganc_cache_misses_total")
	coalesced, _ := sc.Value("ganc_cache_coalesced_total")
	wantCalls := recommendReqs + batchReqs*batchUsers
	if hits+misses+coalesced != wantCalls {
		t.Errorf("hit+miss+coalesced = %v+%v+%v = %v, want %v",
			hits, misses, coalesced, hits+misses+coalesced, wantCalls)
	}
	if misses < 1 {
		t.Errorf("expected at least one cold miss, got %v", misses)
	}

	if got, ok := sc.Value("ganc_batch_users_total"); !ok || got != batchReqs*batchUsers {
		t.Errorf("batch_users_total = %v, want %v", got, batchReqs*batchUsers)
	}
	if got, ok := sc.Value("ganc_ingest_events_total"); !ok || got != ingestReqs*ingestEvents {
		t.Errorf("ingest_events_total = %v, want %v", got, ingestReqs*ingestEvents)
	}
	if got, ok := sc.Value("ganc_engine_swaps_total"); !ok || got != swaps {
		t.Errorf("engine_swaps_total = %v, want %v", got, swaps)
	}
	if got, ok := sc.Value("ganc_engine_version"); !ok || got != swaps+1 {
		t.Errorf("engine_version = %v, want %v", got, swaps+1)
	}
	if n := sc.SumByPrefix("ganc_http_requests_total", obs.L("route", "/metrics")); n < float64(scrapers*20) {
		t.Errorf("metrics route should itself be instrumented: %v", n)
	}
}
