// Package serve exposes a trained recommendation pipeline over HTTP using
// only the standard library. It is the thin "production" layer a downstream
// adopter needs to put GANC behind a service boundary: recommendations are
// computed once (or refreshed on demand) and served from memory, with
// endpoints for per-user top-N lookups, model metadata and health checks.
//
// Endpoints:
//
//	GET /health              → 200 {"status":"ok"}
//	GET /info                → dataset and model metadata
//	GET /recommend?user=<id> → the user's top-N list (external identifiers)
//	GET /users               → the number of users with recommendations
//
// The handler is an http.Handler, so it can be mounted into any mux and
// tested with net/http/httptest.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"ganc/internal/dataset"
	"ganc/internal/types"
)

// Recommender is the minimal surface the server needs: a name and a full
// recommendation collection. core.GANC (via Recommend) and any baseline
// produce these.
type Recommender interface {
	Name() string
}

// Server serves precomputed recommendations for one dataset.
type Server struct {
	mu      sync.RWMutex
	train   *dataset.Dataset
	recs    types.Recommendations
	model   string
	n       int
	version int
}

// New builds a server from a train set (for identifier translation), the
// model's display name and its recommendation collection.
func New(train *dataset.Dataset, modelName string, recs types.Recommendations, n int) (*Server, error) {
	if train == nil {
		return nil, fmt.Errorf("serve: train dataset is required")
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("serve: refusing to serve an empty recommendation collection")
	}
	if n <= 0 {
		return nil, fmt.Errorf("serve: N must be positive, got %d", n)
	}
	return &Server{train: train, recs: recs, model: modelName, n: n, version: 1}, nil
}

// Update atomically replaces the served collection (e.g. after a nightly
// retrain) and bumps the version reported by /info.
func (s *Server) Update(modelName string, recs types.Recommendations) error {
	if len(recs) == 0 {
		return fmt.Errorf("serve: refusing to swap in an empty recommendation collection")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.model = modelName
	s.recs = recs
	s.version++
	return nil
}

// Handler returns the HTTP handler with all routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/health", s.handleHealth)
	mux.HandleFunc("/info", s.handleInfo)
	mux.HandleFunc("/recommend", s.handleRecommend)
	mux.HandleFunc("/users", s.handleUsers)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// InfoResponse is the payload of GET /info.
type InfoResponse struct {
	Model    string `json:"model"`
	Dataset  string `json:"dataset"`
	NumUsers int    `json:"num_users"`
	NumItems int    `json:"num_items"`
	TopN     int    `json:"top_n"`
	Version  int    `json:"version"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	s.mu.RLock()
	resp := InfoResponse{
		Model:    s.model,
		Dataset:  s.train.Name(),
		NumUsers: s.train.NumUsers(),
		NumItems: s.train.NumItems(),
		TopN:     s.n,
		Version:  s.version,
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

// RecommendResponse is the payload of GET /recommend.
type RecommendResponse struct {
	User  string   `json:"user"`
	Items []string `json:"items"`
	Model string   `json:"model"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	userKey := r.URL.Query().Get("user")
	if userKey == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing ?user="})
		return
	}
	idx, ok := s.train.UserInterner().Lookup(userKey)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown user " + userKey})
		return
	}
	s.mu.RLock()
	set, ok := s.recs[types.UserID(idx)]
	model := s.model
	s.mu.RUnlock()
	if !ok || len(set) == 0 {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no recommendations for user " + userKey})
		return
	}
	items := make([]string, len(set))
	for k, i := range set {
		items[k] = s.train.ItemInterner().Key(int32(i))
	}
	writeJSON(w, http.StatusOK, RecommendResponse{User: userKey, Items: items, Model: model})
}

func (s *Server) handleUsers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	s.mu.RLock()
	count := s.recs.NumUsers()
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]int{"users_with_recommendations": count})
}
