// Package serve exposes a recommendation Engine over HTTP using only the
// standard library. It is the "production" layer a downstream adopter needs
// to put GANC (or any baseline) behind a service boundary.
//
// Unlike a precomputed-map server, recommendations are computed lazily, one
// user at a time, through the Engine interface: a request for one user never
// pays for the rest of the catalog. Computed lists land in a bounded LRU
// cache, duplicate in-flight requests for the same user are coalesced into a
// single Engine call, and the whole engine can be swapped atomically (e.g.
// after a nightly retrain) while requests are in flight — old requests finish
// against the old engine, new requests see the new one.
//
// Endpoints:
//
//	GET  /health                   → 200 {"status":"ok"}
//	GET  /info                     → model, dataset and cache metadata
//	GET  /recommend?user=<id>[&n=] → the user's top-N list (external ids)
//	POST /recommend/batch          → {"users":[...]} → lists for many users
//	POST /ingest                   → {"events":[...]} → stream new interactions
//	GET  /users                    → the number of servable users
//	GET  /metrics                  → Prometheus text exposition (with WithMetrics)
//
// POST /ingest is live only when an IngestSink has been attached with
// SetIngestSink (the internal/ingest package provides one); without a sink it
// answers 404, so a read-only deployment exposes no write surface.
//
// The handler is an http.Handler, so it can be mounted into any mux and
// tested with net/http/httptest.
package serve

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ganc/internal/admit"
	"ganc/internal/dataset"
	"ganc/internal/obs"
	"ganc/internal/types"
)

// Engine is the consumer-side interface the server needs: a display name and
// per-user on-demand recommendation. core.GANC, recommender.TopNEngine and
// the facade engines all satisfy it. (It replaces the old package-level
// Recommender interface, which carried only a Name and was never used.)
type Engine interface {
	Name() string
	RecommendUser(ctx context.Context, u types.UserID, n int) (types.TopNSet, error)
}

// DefaultCacheCapacity bounds the per-generation LRU cache when no explicit
// capacity is configured.
const DefaultCacheCapacity = 65536

// Option customizes a Server at construction time.
type Option func(*Server)

// WithCacheCapacity bounds the per-user LRU cache. Capacity ≤ 0 disables
// caching entirely (every request computes through the Engine).
func WithCacheCapacity(capacity int) Option {
	return func(s *Server) { s.capacity = capacity }
}

// WithPrecomputed seeds the initial generation's cache with an existing
// collection (e.g. a batch RecommendAll run), so those users are served warm
// while everyone else is computed lazily.
func WithPrecomputed(recs types.Recommendations) Option {
	return func(s *Server) { s.seed = recs }
}

// ShardIdentity names a server's place in a sharded cluster: which shard it
// is, out of how many, cut for which hash-ring epoch. It is reported through
// /info and /health so a router can detect a shard serving a snapshot from a
// different ring generation (see internal/cluster).
type ShardIdentity struct {
	// ShardID is this server's shard number.
	ShardID int `json:"shard_id"`
	// NumShards is the ring's shard count.
	NumShards int `json:"num_shards"`
	// RingEpoch is the hash-ring membership epoch the shard was cut for.
	RingEpoch uint64 `json:"ring_epoch"`
}

// WithShardIdentity marks the server as one shard of a cluster; the identity
// is echoed in /info and /health for router-side epoch verification.
func WithShardIdentity(id ShardIdentity) Option {
	return func(s *Server) {
		shard := id
		s.shard.Store(&shard)
	}
}

// SetShardIdentity replaces the server's cluster identity at runtime. Replica
// promotion re-points the shard map under a bumped ring epoch while servers
// keep running, so the identity they echo must be swappable without a restart.
// Safe to call while the server is handling requests.
func (s *Server) SetShardIdentity(id ShardIdentity) {
	shard := id
	s.shard.Store(&shard)
}

// Shard returns the server's current cluster identity, or nil on single-node
// servers.
func (s *Server) Shard() *ShardIdentity {
	return s.shard.Load()
}

// WithBatchWorkers bounds how many engine sweeps one POST /recommend/batch
// request may run concurrently (default DefaultBatchWorkers). Engines built
// on the buffered candidate pipeline pool their sweep scratch, so raising
// this trades memory for batch latency linearly. Values ≤ 0 select the
// default.
func WithBatchWorkers(workers int) Option {
	return func(s *Server) {
		if workers > 0 {
			s.batchWorkers = workers
		}
	}
}

// generation is one immutable (engine, cache, in-flight table) triple. Update
// installs a fresh generation atomically: requests that loaded the old
// pointer finish against the old engine and cache, so a swap never mixes two
// engines' results under one version.
type generation struct {
	engine  Engine
	version int
	cache   *lruCache

	mu     sync.Mutex
	flight map[types.UserID]*inflight
}

// inflight is one coalesced computation: the first request for a user
// computes, later requests wait on done and share the result.
type inflight struct {
	done chan struct{}
	set  types.TopNSet
	err  error
}

// Server serves one Engine over HTTP with lazy per-user computation.
type Server struct {
	train        *dataset.Dataset
	n            int
	capacity     int
	batchWorkers int
	seed         types.Recommendations
	shard        atomic.Pointer[ShardIdentity]

	gen atomic.Pointer[generation]

	// ingest holds the optional streaming-ingestion sink behind POST /ingest.
	// It is attached after construction (the sink needs the server handle to
	// swap engines), hence the atomic rather than a constructor option.
	ingest atomic.Pointer[ingestHolder]

	// repl holds the optional replication-status probe reported through
	// /health and /metrics; attached after construction like the ingest sink
	// (the shipper/applier needs the server handle first).
	repl atomic.Pointer[replicationProbe]

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64

	// Observability and admission wiring (all optional; see metrics.go).
	metrics      *obs.Registry
	reqLog       *obs.RequestLogger
	admission    *admit.Controller
	admitCfg     *admit.Config
	httpObs      *obs.HTTPMetrics
	computeHist  *obs.Histogram
	swaps        atomic.Int64
	batchUsers   atomic.Int64
	ingestEvents atomic.Int64
}

// ingestHolder wraps the sink so the atomic pointer has a concrete type even
// though IngestSink is an interface.
type ingestHolder struct{ sink IngestSink }

// New builds a server from a train set (for identifier translation), the
// engine computing recommendations and the default list size n.
func New(train *dataset.Dataset, engine Engine, n int, opts ...Option) (*Server, error) {
	if train == nil {
		return nil, fmt.Errorf("serve: train dataset is required")
	}
	if engine == nil {
		return nil, fmt.Errorf("serve: engine is required")
	}
	if n <= 0 {
		return nil, fmt.Errorf("serve: N must be positive, got %d", n)
	}
	s := &Server{train: train, n: n, capacity: DefaultCacheCapacity, batchWorkers: DefaultBatchWorkers}
	for _, opt := range opts {
		opt(s)
	}
	if s.admission == nil && s.admitCfg != nil {
		// Build the controller from the WithRateLimit/WithMaxConcurrent
		// accumulation (admit.New returns nil when neither gate is enabled).
		s.admission = admit.New(*s.admitCfg)
	}
	gen := s.newGeneration(engine, 1)
	for u, set := range s.seed {
		gen.cache.put(u, set)
	}
	s.seed = nil
	s.gen.Store(gen)
	s.initObservability()
	return s, nil
}

func (s *Server) newGeneration(engine Engine, version int) *generation {
	return &generation{
		engine:  engine,
		version: version,
		cache:   newLRUCache(s.capacity),
		flight:  make(map[types.UserID]*inflight),
	}
}

// Update atomically swaps in a new engine (e.g. after a nightly retrain),
// bumps the version reported by /info and drops the old generation's cache.
// In-flight requests complete against the generation they started with.
func (s *Server) Update(engine Engine) error {
	if engine == nil {
		return fmt.Errorf("serve: refusing to swap in a nil engine")
	}
	for {
		old := s.gen.Load()
		next := s.newGeneration(engine, old.version+1)
		if s.gen.CompareAndSwap(old, next) {
			s.swaps.Add(1)
			return nil
		}
	}
}

// Version returns the current engine generation (1 for the initial engine,
// incremented by each Update).
func (s *Server) Version() int { return s.gen.Load().version }

// CacheStats reports cache effectiveness counters accumulated across all
// generations.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
}

// Stats returns a snapshot of the cache counters.
func (s *Server) Stats() CacheStats {
	return CacheStats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Coalesced: s.coalesced.Load(),
		Size:      s.gen.Load().cache.len(),
		Capacity:  s.capacity,
	}
}

// recommend resolves one user's list through the current generation:
// cache hit → coalesced wait → engine compute, in that order.
func (s *Server) recommend(ctx context.Context, u types.UserID) (set types.TopNSet, gen *generation, err error) {
	gen = s.gen.Load()
	if cached, ok := gen.cache.get(u); ok {
		s.hits.Add(1)
		return cached, gen, nil
	}

	gen.mu.Lock()
	if fl, ok := gen.flight[u]; ok {
		gen.mu.Unlock()
		s.coalesced.Add(1)
		select {
		case <-fl.done:
			return fl.set, gen, fl.err
		case <-ctx.Done():
			return nil, gen, ctx.Err()
		}
	}
	fl := &inflight{done: make(chan struct{})}
	gen.flight[u] = fl
	gen.mu.Unlock()

	s.misses.Add(1)
	// Cleanup runs deferred so a panicking engine still deregisters the
	// in-flight entry and releases waiters — otherwise every later request
	// for u would block on done forever. The recovered panic is surfaced as
	// an error to the leader and all coalesced waiters.
	defer func() {
		if r := recover(); r != nil {
			fl.err = fmt.Errorf("serve: engine panic for user %d: %v", u, r)
			set, err = nil, fl.err
		}
		if fl.err == nil {
			gen.cache.put(u, fl.set)
		}
		gen.mu.Lock()
		delete(gen.flight, u)
		gen.mu.Unlock()
		close(fl.done)
	}()
	// Compute without the requester's cancellation: coalesced waiters and the
	// cache should not be poisoned because the first requester hung up.
	var t0 time.Time
	if s.computeHist != nil {
		t0 = time.Now()
	}
	fl.set, fl.err = gen.engine.RecommendUser(context.WithoutCancel(ctx), u, s.n)
	if s.computeHist != nil {
		s.computeHist.Observe(time.Since(t0).Seconds())
	}
	return fl.set, gen, fl.err
}

// Handler returns the HTTP handler with all routes mounted. When metrics,
// request logging or admission control are configured the mux is wrapped in
// middleware, outermost first: instrumentation (so shed requests are still
// counted and logged), then admission (so /health and /metrics stay
// reachable on an overloaded server), then the routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/health", s.handleHealth)
	mux.HandleFunc("/info", s.handleInfo)
	mux.HandleFunc("/recommend", s.handleRecommend)
	mux.HandleFunc("/recommend/batch", s.handleBatch)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/users", s.handleUsers)
	if s.metrics != nil {
		mux.Handle("/metrics", s.metrics.Handler())
	}
	var h http.Handler = mux
	h = s.admission.Middleware(h)
	if s.httpObs != nil {
		h = s.httpObs.Wrap(h)
	}
	return h
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	resp := HealthResponse{Status: "ok", Version: s.Version()}
	if shard := s.shard.Load(); shard != nil {
		id := shard.ShardID
		resp.Shard = &id
	}
	if s.admission != nil {
		stats := s.admission.Stats()
		resp.Admission = &stats
	}
	if p := s.repl.Load(); p != nil {
		st := p.fn()
		resp.Replication = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// InfoResponse is the payload of GET /info.
type InfoResponse struct {
	Model    string     `json:"model"`
	Dataset  string     `json:"dataset"`
	NumUsers int        `json:"num_users"`
	NumItems int        `json:"num_items"`
	TopN     int        `json:"top_n"`
	Version  int        `json:"version"`
	Cache    CacheStats `json:"cache"`
	// Shard carries the server's cluster identity when it serves as one
	// shard of a sharded deployment (absent on single-node servers).
	Shard *ShardIdentity `json:"cluster_shard,omitempty"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	gen := s.gen.Load()
	// Universe sizes come from the identifier tables, not the construction-
	// time dataset snapshot: streaming ingestion grows the tables in place,
	// so this reflects every currently addressable user/item.
	writeJSON(w, http.StatusOK, InfoResponse{
		Model:    gen.engine.Name(),
		Dataset:  s.train.Name(),
		NumUsers: s.train.UserInterner().Len(),
		NumItems: s.train.ItemInterner().Len(),
		TopN:     s.n,
		Version:  gen.version,
		Cache:    s.Stats(),
		Shard:    s.shard.Load(),
	})
}

// RecommendResponse is the payload of GET /recommend and one element of the
// batch response.
type RecommendResponse struct {
	User    string   `json:"user"`
	Items   []string `json:"items"`
	Model   string   `json:"model,omitempty"`
	Version int      `json:"version"`
	Error   string   `json:"error,omitempty"`
}

func (s *Server) lookupUser(key string) (types.UserID, bool) {
	idx, ok := s.train.UserInterner().Lookup(key)
	return types.UserID(idx), ok
}

func (s *Server) externalItems(set types.TopNSet) []string {
	items := make([]string, len(set))
	for k, i := range set {
		items[k] = s.train.ItemInterner().Key(int32(i))
	}
	return items
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	userKey := r.URL.Query().Get("user")
	if userKey == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing ?user="})
		return
	}
	u, ok := s.lookupUser(userKey)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown user " + userKey})
		return
	}
	set, gen, err := s.recommend(r.Context(), u)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	if len(set) == 0 {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no recommendations for user " + userKey})
		return
	}
	// An explicit &n= below the server's N truncates the (cached) full list;
	// values above it are capped so every request stays cacheable.
	if n := parseN(r.URL.Query().Get("n"), s.n); n < len(set) {
		set = set[:n]
	}
	writeJSON(w, http.StatusOK, RecommendResponse{
		User:    userKey,
		Items:   s.externalItems(set),
		Model:   gen.engine.Name(),
		Version: gen.version,
	})
}

// BatchRequest is the payload of POST /recommend/batch.
type BatchRequest struct {
	Users []string `json:"users"`
}

// BatchResponse is the payload of POST /recommend/batch. Results preserve the
// request order; per-user failures are reported inline so one bad user does
// not fail the whole batch.
type BatchResponse struct {
	Model   string              `json:"model"`
	Version int                 `json:"version"`
	Results []RecommendResponse `json:"results"`
}

// MaxBatchUsers bounds a single batch request so a malformed client cannot
// ask for the whole catalog in one call; DefaultBatchWorkers bounds the
// concurrent engine sweeps one batch request may trigger unless
// WithBatchWorkers overrides it.
const (
	MaxBatchUsers       = 10000
	DefaultBatchWorkers = 8
)

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid JSON: " + err.Error()})
		return
	}
	if len(req.Users) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "users list is empty"})
		return
	}
	if len(req.Users) > MaxBatchUsers {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("batch of %d users exceeds the limit of %d", len(req.Users), MaxBatchUsers)})
		return
	}
	gen := s.gen.Load()
	results := make([]RecommendResponse, len(req.Users))
	// Cold users each cost an engine sweep; resolve them on a bounded worker
	// pool rather than serializing a potentially huge batch. recommend() is
	// concurrency-safe (cache, coalescing and the generation swap all are).
	workers := s.batchWorkers
	if len(req.Users) < workers {
		workers = len(req.Users)
	}
	var wg sync.WaitGroup
	idx := make(chan int, len(req.Users))
	for k := range req.Users {
		idx <- k
	}
	close(idx)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range idx {
				userKey := req.Users[k]
				results[k] = RecommendResponse{User: userKey}
				u, ok := s.lookupUser(userKey)
				if !ok {
					results[k].Error = "unknown user"
					continue
				}
				set, rgen, err := s.recommend(r.Context(), u)
				if err != nil {
					results[k].Error = err.Error()
					continue
				}
				if len(set) == 0 {
					// Mirror the single-user endpoint's 404 contract inline.
					results[k].Error = "no recommendations for user " + userKey
					continue
				}
				results[k].Items = s.externalItems(set)
				results[k].Version = rgen.version
			}
		}()
	}
	wg.Wait()
	s.batchUsers.Add(int64(len(req.Users)))
	writeJSON(w, http.StatusOK, BatchResponse{
		Model:   gen.engine.Name(),
		Version: gen.version,
		Results: results,
	})
}

// --- Streaming ingestion ------------------------------------------------------

// IngestEvent is one observed interaction submitted through POST /ingest,
// keyed by external identifiers (new users and items are interned on the
// fly).
type IngestEvent struct {
	User  string  `json:"user"`
	Item  string  `json:"item"`
	Value float64 `json:"value"`
}

// IngestResult summarizes one applied ingestion batch.
type IngestResult struct {
	// Applied is the number of events absorbed into the serving state.
	Applied int `json:"applied"`
	// Seq is the sink's total applied-event sequence number after the batch
	// (the checkpoint/replay cursor).
	Seq uint64 `json:"seq"`
	// Version is the engine generation serving the post-batch state.
	Version int `json:"version"`
	// Warning reports a post-commit problem (engine republish or checkpoint
	// failure): the events ARE durably applied — retrying the batch would
	// double-count it — but the operator should look. Empty on full success.
	Warning string `json:"warning,omitempty"`
}

// IngestSink consumes interaction events and folds them into the serving
// state, typically finishing with an atomic engine swap on this server. The
// internal/ingest package provides the standard implementation.
type IngestSink interface {
	IngestEvents(ctx context.Context, events []IngestEvent) (IngestResult, error)
}

// SetIngestSink attaches (or, with nil, detaches) the sink behind POST
// /ingest. Safe to call while the server is handling requests.
func (s *Server) SetIngestSink(sink IngestSink) {
	if sink == nil {
		s.ingest.Store(nil)
		return
	}
	s.ingest.Store(&ingestHolder{sink: sink})
}

// IngestRequest is the payload of POST /ingest.
type IngestRequest struct {
	Events []IngestEvent `json:"events"`
}

// MaxIngestEvents bounds one ingestion batch, mirroring MaxBatchUsers. The
// cluster router enforces the same limits, so a routed deployment rejects
// exactly what a single node rejects.
const MaxIngestEvents = 10000

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	holder := s.ingest.Load()
	if holder == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "ingestion is not enabled on this server"})
		return
	}
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid JSON: " + err.Error()})
		return
	}
	if len(req.Events) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "events list is empty"})
		return
	}
	if len(req.Events) > MaxIngestEvents {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("batch of %d events exceeds the limit of %d", len(req.Events), MaxIngestEvents)})
		return
	}
	for k, ev := range req.Events {
		if ev.User == "" || ev.Item == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("event %d is missing a user or item key", k)})
			return
		}
	}
	res, err := holder.sink.IngestEvents(r.Context(), req.Events)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	s.ingestEvents.Add(int64(res.Applied))
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleUsers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"servable_users": s.train.UserInterner().Len()})
}

// parseN reads an optional positive integer query parameter, falling back to
// def on absence or garbage.
func parseN(raw string, def int) int {
	if raw == "" {
		return def
	}
	if v, err := strconv.Atoi(raw); err == nil && v > 0 {
		return v
	}
	return def
}

// --- Bounded LRU cache --------------------------------------------------------

// lruCache is a mutex-guarded bounded LRU over per-user top-N sets. A
// capacity ≤ 0 disables it (every get misses, every put is dropped).
type lruCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[types.UserID]*list.Element
}

type lruEntry struct {
	user types.UserID
	set  types.TopNSet
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[types.UserID]*list.Element),
	}
}

func (c *lruCache) get(u types.UserID) (types.TopNSet, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[u]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).set, true
}

func (c *lruCache) put(u types.UserID, set types.TopNSet) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[u]; ok {
		el.Value.(*lruEntry).set = set
		c.ll.MoveToFront(el)
		return
	}
	c.items[u] = c.ll.PushFront(&lruEntry{user: u, set: set})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*lruEntry).user)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
