package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

// updatingSink is an IngestSink that republishes a fresh engine on every
// batch — the shape internal/ingest gives the server — so POST /ingest
// exercises the versioned-swap path from the HTTP surface.
type updatingSink struct {
	srv     *Server
	applied atomic.Int64
}

func (s *updatingSink) IngestEvents(ctx context.Context, events []IngestEvent) (IngestResult, error) {
	total := s.applied.Add(int64(len(events)))
	_, recs := fixture()
	eng := &countingEngine{name: fmt.Sprintf("gen-%d", total), recs: recs}
	if err := s.srv.Update(eng); err != nil {
		return IngestResult{}, err
	}
	return IngestResult{Applied: len(events), Seq: uint64(total), Version: s.srv.Version()}, nil
}

// TestIngestPublishRacesBatchAndStats pins the regression the versioned swap
// must survive: concurrent POST /ingest publishes (each swapping in a new
// engine generation) racing POST /recommend/batch fan-out workers, single
// GET /recommend lookups and cache-stats reads. Run under -race in CI; the
// functional assertions here are that every request succeeds against some
// coherent generation and the version counter advances exactly once per
// ingest batch.
func TestIngestPublishRacesBatchAndStats(t *testing.T) {
	s, _, ts := newTestServer(t, WithBatchWorkers(4))
	sink := &updatingSink{srv: s}
	s.SetIngestSink(sink)

	const (
		writers    = 4
		readers    = 4
		iterations = 40
	)
	start := make(chan struct{})
	// Sized for the worst case — every assertion firing on every iteration
	// (batch readers can send one error per result) — so a badly regressed
	// server fails loudly instead of blocking senders and hanging the test.
	errs := make(chan error, (writers+readers*8)*iterations)
	var wg sync.WaitGroup

	post := func(path string, body interface{}) (*http.Response, error) {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		return http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
	}

	// Ingest writers: every batch swaps the engine generation.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for k := 0; k < iterations; k++ {
				resp, err := post("/ingest", IngestRequest{Events: []IngestEvent{
					{User: "alice", Item: "alien", Value: 5},
				}})
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("ingest writer %d: status %d", w, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(w)
	}

	// Batch readers: multi-user fan-out through the worker pool.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for k := 0; k < iterations; k++ {
				resp, err := post("/recommend/batch", BatchRequest{Users: []string{"alice", "bob", "alice", "nobody"}})
				if err != nil {
					errs <- err
					continue
				}
				var body BatchResponse
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("batch reader %d: %v", r, err)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("batch reader %d: status %d", r, resp.StatusCode)
					continue
				}
				if len(body.Results) != 4 {
					errs <- fmt.Errorf("batch reader %d: %d results", r, len(body.Results))
					continue
				}
				// A result computed against any generation is fine; a result
				// claiming a version that never existed is not.
				for _, res := range body.Results {
					if res.Error == "" && (res.Version < 1 || res.Version > s.Version()) {
						errs <- fmt.Errorf("batch reader %d: impossible version %d", r, res.Version)
					}
				}
			}
		}(r)
	}

	// Single-user readers and stats readers race the same swaps.
	for r := 0; r < readers; r++ {
		wg.Add(2)
		go func(r int) {
			defer wg.Done()
			<-start
			for k := 0; k < iterations; k++ {
				resp, err := http.Get(ts.URL + "/recommend?user=bob")
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					errs <- fmt.Errorf("single reader %d: status %d", r, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(r)
		go func(r int) {
			defer wg.Done()
			<-start
			for k := 0; k < iterations; k++ {
				st := s.Stats()
				if st.Hits < 0 || st.Misses < 0 || st.Size < 0 {
					errs <- fmt.Errorf("stats reader %d: negative counters %+v", r, st)
				}
				resp, err := http.Get(ts.URL + "/info")
				if err != nil {
					errs <- err
					continue
				}
				var info InfoResponse
				if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
					errs <- fmt.Errorf("info reader %d: %v", r, err)
				}
				resp.Body.Close()
			}
		}(r)
	}

	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every applied batch swapped exactly one generation in.
	wantVersion := 1 + writers*iterations
	if got := s.Version(); got != wantVersion {
		t.Fatalf("version %d after %d ingest batches, want %d", got, writers*iterations, wantVersion)
	}
	if applied := sink.applied.Load(); applied != int64(writers*iterations) {
		t.Fatalf("sink applied %d events, want %d", applied, writers*iterations)
	}
}
