package simulate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ganc/internal/cluster"
	"ganc/internal/dataset"
	"ganc/internal/obs"
	"ganc/internal/serve"
	"ganc/internal/types"
)

// System is the recommendation stack a scenario drives: trainable,
// persistable, servable, ingestible, killable. The facade binds it to the
// real Pipeline/Server/Ingestor assembly; tests can substitute fakes. A
// scenario may run two instances side by side (a primary and an uninterrupted
// shadow) and compare their Fingerprints for equivalence.
type System interface {
	// Train builds the serving engine from the train set and stands the
	// serving layer up.
	Train(train *dataset.Dataset, topN int) error
	// Handler exposes the current HTTP serving surface.
	Handler() (http.Handler, error)
	// Save writes a warm-start snapshot of the current state to path.
	Save(path string) error
	// Load replaces the running system with one restored from the snapshot at
	// path (the process-restart half of a crash).
	Load(path string) error
	// EnableIngest attaches streaming ingestion. Empty paths select a pure
	// in-memory ingestor (no WAL, no checkpoints); checkpointEvery ≤ 0
	// disables periodic snapshots.
	EnableIngest(logPath, checkpointPath string, checkpointEvery int) error
	// Ingest applies one event batch directly (the shadow system's path; the
	// primary ingests over HTTP so the full endpoint stack is exercised).
	Ingest(ctx context.Context, events []serve.IngestEvent) error
	// Recover re-attaches ingestion after Load and replays the write-ahead
	// log suffix past the restored checkpoint cursor.
	Recover() (replayed int, err error)
	// Kill drops every in-memory structure and releases file handles,
	// simulating a crash; durable files survive for Load/Recover.
	Kill() error
	// Fingerprint returns a canonical byte serialization of the system's full
	// batch output in external identifiers. It must not disturb serving state
	// (implementations sweep a throwaway clone), so scenarios can fingerprint
	// mid-lifecycle.
	Fingerprint(ctx context.Context) ([]byte, error)
}

// ShardedSystem is the multi-node extension of System: a cluster whose
// shards can be killed and restarted individually. The facade binds it to
// the real router/shard-server assembly; scenario phases that name a shard
// (kill-shard, restart-shard, a mid-load kill) require the primary to
// implement it.
type ShardedSystem interface {
	System
	// NumShards returns the cluster's shard count.
	NumShards() int
	// ShardOwner returns the shard index owning an external user key (the
	// hash ring's assignment).
	ShardOwner(userKey string) int
	// KillShard crashes one shard: its listener drops, requests routed to it
	// fail, durable files survive.
	KillShard(shard int) error
	// RestartShard restores a killed shard from its snapshot and replays its
	// write-ahead-log suffix, returning the replayed event count.
	RestartShard(shard int) (replayed int, err error)
	// ShardFingerprint returns the canonical serialization of one shard's
	// output restricted to the users it owns. Like Fingerprint, it must not
	// disturb serving state.
	ShardFingerprint(ctx context.Context, shard int) ([]byte, error)
}

// ReplicatedSystem is the replication extension of ShardedSystem: a cluster
// whose shards each carry warm replicas, where a killed primary's freshest
// replica can be promoted in place (new ring epoch, new serving address for
// the shard) and the dead ex-primary can rejoin as a catching-up replica.
// Scenario phases that promote or rejoin require the primary to implement it.
type ReplicatedSystem interface {
	ShardedSystem
	// NumReplicas returns the per-shard replica count (0 = unreplicated).
	NumReplicas() int
	// PromoteReplica promotes the freshest live replica of a killed shard to
	// primary and returns the new ring epoch.
	PromoteReplica(shard int) (epoch uint64, err error)
	// RejoinAsReplica boots the shard's dead ex-primary as a replica of the
	// promoted primary, returning how many write-ahead-log events its local
	// replay restored before replication catch-up took over.
	RejoinAsReplica(shard int) (replayed int, err error)
	// ReplicaLag returns the shard's widest replica lag in committed events
	// (0 when the shard has no live primary-side shipper).
	ReplicaLag(shard int) uint64
}

// EpochReporter is the optional interface behind the await-promotion phase:
// a system exposes its current ring epoch so the runner can observe a
// detector-triggered promotion from the outside — the phase never calls
// PromoteReplica itself; the system's own failure detector must.
type EpochReporter interface {
	// Epoch returns the system's current ring epoch.
	Epoch() uint64
}

// ReshardableSystem is the elastic extension of ShardedSystem: a cluster
// that can grow or shrink its ring with a live migration while it serves.
// Scenario phases that reshard mid-load require the primary to implement it.
type ReshardableSystem interface {
	ShardedSystem
	// Reshard grows or shrinks the cluster to target shards with a live
	// migration and a staged cutover, returning the migration stats.
	Reshard(target int) (*cluster.ReshardStats, error)
	// OwnerAt returns the shard that would own userKey in a ring of the
	// given shard count. Ownership is a pure function of the shard-ID set,
	// so the post-reshard assignment is computable before the reshard runs —
	// the runner uses it to feed the shadow the drilled shard's final-
	// topology event slice from the scenario's first phase on.
	OwnerAt(userKey string, shards int) int
}

// PhaseKind names a lifecycle phase.
type PhaseKind string

// The scenario phase vocabulary.
const (
	// PhaseTrain generates nothing itself: it trains the system on the
	// universe's dataset and stands serving up. Must come first.
	PhaseTrain PhaseKind = "train"
	// PhaseSave snapshots the system to the scenario's snapshot path.
	PhaseSave PhaseKind = "save"
	// PhaseLoad restores the snapshot into the primary and asserts warm-start
	// parity: the fingerprint before and after the reload must be identical.
	PhaseLoad PhaseKind = "load"
	// PhaseServeUnderLoad runs the closed-loop driver against the primary.
	PhaseServeUnderLoad PhaseKind = "serve-under-load"
	// PhaseIngestChurn streams event batches through POST /ingest while
	// concurrent readers hammer /recommend and /recommend/batch.
	PhaseIngestChurn PhaseKind = "ingest-churn"
	// PhaseKillAndRecover crashes the primary, restores it from the last
	// checkpoint plus the write-ahead-log suffix, and asserts its fingerprint
	// matches the uninterrupted shadow system byte for byte.
	PhaseKillAndRecover PhaseKind = "kill-and-recover"
	// PhaseKillShard crashes one shard of a sharded primary (Phase.Shard);
	// the rest of the cluster keeps serving.
	PhaseKillShard PhaseKind = "kill-shard"
	// PhaseOverload offers load well beyond the primary's admission capacity
	// and asserts graceful degradation instead of collapse: shed requests get
	// typed 429 bodies, served requests keep a bounded p99, and nothing
	// answers 5xx. The primary must be built with admission control enabled —
	// a system that cannot shed fails the phase (zero 429s means the
	// assertion is vacuous).
	PhaseOverload PhaseKind = "overload"
	// PhaseRestartShard restores a killed shard from its snapshot plus its
	// write-ahead-log suffix and, when the scenario runs a shadow, asserts
	// the recovered shard's owned-user fingerprint matches the single-node
	// shadow byte for byte (the shadow is fed exactly the events the router
	// delivered to that shard, so an uninterrupted single node is the
	// ground truth for what the shard must look like after recovery).
	PhaseRestartShard PhaseKind = "restart-shard"
	// PhasePromoteReplica promotes the freshest live replica of a killed
	// shard (Phase.Shard) to primary and asserts the same owned-user parity
	// contract as restart-shard against the promoted runtime. The check is
	// deliberately address-agnostic: ownership is keyed by shard ID, so the
	// promoted replica's different listen address and the bumped ring epoch
	// must not perturb the fingerprint.
	PhasePromoteReplica PhaseKind = "promote-replica"
	// PhaseRejoinReplica boots the shard's dead ex-primary as a replica of
	// the promoted primary and waits for its replication lag to drain to
	// zero, proving the demoted node converges on the new history.
	PhaseRejoinReplica PhaseKind = "rejoin-replica"
	// PhaseAwaitPromotion is the hands-off form of promote-replica: the
	// runner never calls PromoteReplica — it waits up to Phase.
	// PromotionWindowMs for the system's own failure detector to suspect the
	// killed primary and promote its freshest replica (observed as a ring-
	// epoch bump through EpochReporter), then asserts the same owned-user
	// parity contract against the shadow. The primary must implement
	// EpochReporter and run with automatic failover enabled.
	PhaseAwaitPromotion PhaseKind = "await-promotion"
	// PhaseShardParity asserts the drilled shard's owned-user fingerprint is
	// byte-identical to the uninterrupted single-node shadow restricted to
	// the same users — the standalone form of the check restart-shard and
	// promote-replica run implicitly, used after a mid-load reshard to prove
	// the migrated shard converged on the ground truth.
	PhaseShardParity PhaseKind = "shard-parity"
)

// Phase is one step of a scenario. Zero-valued knobs select the defaults
// documented per field.
type Phase struct {
	// Kind selects the behavior.
	Kind PhaseKind `json:"kind"`
	// Requests is the serve-under-load request count (default 200).
	Requests int `json:"requests,omitempty"`
	// Concurrency is the worker count for serve-under-load and the reader
	// count for ingest-churn (default 4).
	Concurrency int `json:"concurrency,omitempty"`
	// Mix composes serve-under-load traffic (default 90% single lookups, 10%
	// batches). The ingest weight is forced to 0 in scenarios with a
	// kill-and-recover phase: the shadow system cannot observe the driver's
	// internally generated events, so they would void the equivalence check —
	// stream events through ingest-churn phases instead.
	Mix LoadMix `json:"mix,omitempty"`
	// BatchSize is the users per batch request (default 20, from the load
	// driver's own default).
	BatchSize int `json:"batch_size,omitempty"`
	// Events is the ingest-churn event count (default 200).
	Events int `json:"events,omitempty"`
	// EventBatch is the events per /ingest POST (default 25).
	EventBatch int `json:"event_batch,omitempty"`
	// Shard names the target of kill-shard and restart-shard phases.
	Shard int `json:"shard,omitempty"`
	// KillShardMid, on a serve-under-load phase against a sharded primary,
	// kills that shard KillDelayMs into the load (the mid-load outage
	// drill). Requests hitting the dead shard fail with the router's typed
	// 503, so the phase tolerates server-side errors instead of failing on
	// them; a later restart-shard + serve-under-load pair asserts the
	// cluster is error-free again.
	KillShardMid *int `json:"kill_shard_mid,omitempty"`
	// KillDelayMs is how far into the load the mid-load kill fires
	// (default 100).
	KillDelayMs int `json:"kill_delay_ms,omitempty"`
	// MaxP99Ms bounds the served-request p99 an overload phase tolerates
	// (default 2000). Generous by design: the assertion is "bounded, not
	// collapsing", robust to a loaded CI machine, while still catching a
	// server that stops answering admitted requests under overload.
	MaxP99Ms float64 `json:"max_p99_ms,omitempty"`
	// MaxReplicaLagEvents, on a serve-under-load phase against a replicated
	// primary, asserts that every live shard's widest replica lag drains to
	// at most this many committed events shortly after the load completes
	// (nil = no assertion; the shard killed by KillShardMid is exempt — its
	// shipper died with its primary).
	MaxReplicaLagEvents *uint64 `json:"max_replica_lag_events,omitempty"`
	// ReshardMid, on a serve-under-load phase against a reshardable primary,
	// grows or shrinks the cluster to this shard count ReshardDelayMs into
	// the load (the reshard-mid-load drill). The cutover must be invisible:
	// any client-visible error fails the phase. Phase.Shard names the shard
	// whose post-reshard state the shadow mirrors for a later shard-parity
	// phase. Mutually exclusive with KillShardMid.
	ReshardMid *int `json:"reshard_mid,omitempty"`
	// ReshardDelayMs is how far into the load the mid-load reshard fires
	// (default 100).
	ReshardDelayMs int `json:"reshard_delay_ms,omitempty"`
	// PromotionWindowMs bounds how long an await-promotion phase waits for
	// the system's failure detector to promote the killed shard's replica
	// (default 15000). Generous relative to real suspicion windows so a
	// loaded CI machine does not flake the drill; the point of the bound is
	// that promotion happens at all without an operator.
	PromotionWindowMs int `json:"promotion_window_ms,omitempty"`
}

// Scenario is a full lifecycle expressed as data: a universe, a system
// configuration hint (TopN, checkpoint cadence) and an ordered phase list.
type Scenario struct {
	// Name labels the run in results and errors.
	Name string `json:"name"`
	// Universe describes the synthetic population.
	Universe UniverseConfig `json:"universe"`
	// TopN is the serving list size (default 10).
	TopN int `json:"top_n"`
	// CheckpointEvery is the ingestion checkpoint cadence in events (0 =
	// only explicit PhaseSave snapshots).
	CheckpointEvery int `json:"checkpoint_every"`
	// Seed drives the scenario's event and request streams (the universe has
	// its own seed).
	Seed int64 `json:"seed"`
	// Stream shapes the scenario's event stream (new-user/new-item rates;
	// the zero value selects the stream defaults, negative rates close the
	// universe). Reshard parity scenarios close the universe: a migrated
	// shard applies its users' histories in per-user order, which is
	// byte-equivalent to the shadow's global order only when no event can
	// extend the interner tables. The Seed field inside is ignored —
	// Scenario.Seed drives the stream.
	Stream EventStreamConfig `json:"stream,omitempty"`
	// Phases run in order. The first must be PhaseTrain.
	Phases []Phase `json:"phases"`
}

// has reports whether the scenario contains a phase of the given kind.
func (sc *Scenario) has(kind PhaseKind) bool {
	for _, p := range sc.Phases {
		if p.Kind == kind {
			return true
		}
	}
	return false
}

// shardUnderTest returns the shard targeted by the scenario's kill/restart
// choreography (-1 when there is none), erroring when phases disagree: the
// shadow can mirror only one shard's event feed, so one scenario may drill
// one shard.
func (sc *Scenario) shardUnderTest() (int, error) {
	shard := -1
	consider := func(s int) error {
		if shard == -1 {
			shard = s
			return nil
		}
		if shard != s {
			return fmt.Errorf("simulate: scenario %q drills both shard %d and shard %d; one scenario may target one shard", sc.Name, shard, s)
		}
		return nil
	}
	for _, p := range sc.Phases {
		switch {
		case p.Kind == PhaseKillShard || p.Kind == PhaseRestartShard ||
			p.Kind == PhasePromoteReplica || p.Kind == PhaseRejoinReplica ||
			p.Kind == PhaseAwaitPromotion || p.Kind == PhaseShardParity:
			if err := consider(p.Shard); err != nil {
				return -1, err
			}
		case p.Kind == PhaseServeUnderLoad && p.KillShardMid != nil:
			if err := consider(*p.KillShardMid); err != nil {
				return -1, err
			}
		case p.Kind == PhaseServeUnderLoad && p.ReshardMid != nil:
			if err := consider(p.Shard); err != nil {
				return -1, err
			}
		}
	}
	return shard, nil
}

// finalShards returns the shard count the scenario ends with: the last
// mid-load reshard target, or 0 when the scenario never reshards.
func (sc *Scenario) finalShards() int {
	final := 0
	for _, p := range sc.Phases {
		if p.Kind == PhaseServeUnderLoad && p.ReshardMid != nil {
			final = *p.ReshardMid
		}
	}
	return final
}

// PhaseResult records one executed phase.
type PhaseResult struct {
	// Kind echoes the phase.
	Kind PhaseKind `json:"kind"`
	// Load carries the driver measurement of a serve-under-load phase.
	Load *LoadResult `json:"load,omitempty"`
	// EventsApplied counts ingest-churn events accepted by the server.
	EventsApplied int `json:"events_applied,omitempty"`
	// ReaderRequests and ReaderErrors count the concurrent read traffic of an
	// ingest-churn phase.
	ReaderRequests int64 `json:"reader_requests,omitempty"`
	ReaderErrors   int64 `json:"reader_errors,omitempty"`
	// Replayed is the write-ahead-log suffix length a kill-and-recover or
	// restart-shard phase replayed.
	Replayed int `json:"replayed,omitempty"`
	// ParityChecked marks phases that asserted a fingerprint equivalence.
	ParityChecked bool `json:"parity_checked,omitempty"`
	// MetricsValidated marks phases that scraped GET /metrics mid-phase and
	// validated the body with the strict text-format parser.
	MetricsValidated bool `json:"metrics_validated,omitempty"`
	// Shard echoes the target of a kill-shard/restart-shard phase (and of a
	// mid-load kill).
	Shard int `json:"shard,omitempty"`
	// Epoch is the ring epoch a promote-replica phase installed.
	Epoch uint64 `json:"epoch,omitempty"`
	// ReplicaLagEvents is the widest replica lag observed when a phase
	// asserted a lag bound (serve-under-load's MaxReplicaLagEvents, or the
	// rejoin-replica convergence wait).
	ReplicaLagEvents uint64 `json:"replica_lag_events,omitempty"`
	// Reshard carries the migration stats of a mid-load reshard.
	Reshard *cluster.ReshardStats `json:"reshard,omitempty"`
}

// Result is the outcome of one scenario run.
type Result struct {
	// Scenario echoes the scenario name.
	Scenario string `json:"scenario"`
	// Phases records each executed phase in order.
	Phases []PhaseResult `json:"phases"`
}

// Runner executes scenarios. NewSystem builds a fresh system instance; Dir is
// the working directory for snapshots and write-ahead logs (a test's TempDir).
type Runner struct {
	// NewSystem constructs one system under test. It is called once for the
	// primary and once more for the shadow when the scenario contains a
	// kill-and-recover or restart-shard phase (unless NewShadow overrides
	// the shadow's construction).
	NewSystem func() System
	// NewShadow, when set, constructs the shadow reference system instead of
	// NewSystem. Cluster scenarios use it to compare a sharded primary
	// against a single-node shadow.
	NewShadow func() System
	// Dir holds the scenario's durable files (snapshot, WAL).
	Dir string
}

// runState carries one run's live pieces between phase executions.
type runState struct {
	universe *Universe
	primary  System
	shadow   System // nil unless the scenario kill-and-recovers or restarts a shard
	events   *EventStream
	snapPath string
	walPath  string
	// sharded is the primary's multi-node view (nil for single-node runs);
	// replicated additionally carries per-shard replicas and promotion (nil
	// for unreplicated clusters); reshardable additionally carries live ring
	// grow/shrink (nil for fixed-topology systems); shadowShard is the shard
	// whose routed events feed the shadow (-1 when the shadow absorbs
	// everything, the single-node semantics); finalShards is the topology
	// the scenario's reshards end at (0 = the boot topology), which decides
	// the ownership the shadow's event slice is filtered by.
	sharded     ShardedSystem
	replicated  ReplicatedSystem
	reshardable ReshardableSystem
	shadowShard int
	finalShards int
	// baseEpoch is the highest ring epoch the runner has accounted for — the
	// train-time epoch, advanced by every phase that records an epoch bump
	// (promote-replica, mid-load reshard, await-promotion). An
	// await-promotion phase succeeds when the live epoch exceeds it: an
	// unaccounted bump can only be the detector's own promotion.
	baseEpoch uint64
}

// Run executes the scenario and returns its per-phase record. Any phase
// failure — including a broken parity or equivalence assertion — aborts the
// run with an error naming the scenario and phase.
func (r *Runner) Run(ctx context.Context, sc Scenario) (*Result, error) {
	if r.NewSystem == nil {
		return nil, fmt.Errorf("simulate: runner needs a NewSystem factory")
	}
	if r.Dir == "" {
		return nil, fmt.Errorf("simulate: runner needs a working directory")
	}
	if len(sc.Phases) == 0 {
		return nil, fmt.Errorf("simulate: scenario %q has no phases", sc.Name)
	}
	if sc.Phases[0].Kind != PhaseTrain {
		return nil, fmt.Errorf("simulate: scenario %q must start with a %q phase", sc.Name, PhaseTrain)
	}
	if sc.TopN <= 0 {
		sc.TopN = 10
	}
	u, err := NewUniverse(sc.Universe)
	if err != nil {
		return nil, err
	}
	shadowShard, err := sc.shardUnderTest()
	if err != nil {
		return nil, err
	}
	streamCfg := sc.Stream
	streamCfg.Seed = sc.Seed
	st := &runState{
		universe:    u,
		events:      u.EventStream(streamCfg),
		snapPath:    filepath.Join(r.Dir, "scenario.snap"),
		walPath:     filepath.Join(r.Dir, "scenario.wal"),
		shadowShard: shadowShard,
		finalShards: sc.finalShards(),
	}
	res := &Result{Scenario: sc.Name}
	for k, phase := range sc.Phases {
		pr, err := r.runPhase(ctx, &sc, st, phase)
		if err != nil {
			return res, fmt.Errorf("simulate: scenario %q phase %d (%s): %w", sc.Name, k, phase.Kind, err)
		}
		if pr.Epoch > st.baseEpoch {
			st.baseEpoch = pr.Epoch
		}
		res.Phases = append(res.Phases, pr)
	}
	return res, nil
}

// runPhase dispatches one phase against the run state.
func (r *Runner) runPhase(ctx context.Context, sc *Scenario, st *runState, p Phase) (PhaseResult, error) {
	pr := PhaseResult{Kind: p.Kind}
	switch p.Kind {
	case PhaseTrain:
		return pr, r.train(sc, st)
	case PhaseSave:
		if st.primary == nil {
			return pr, fmt.Errorf("save before train")
		}
		return pr, st.primary.Save(st.snapPath)
	case PhaseLoad:
		return r.load(ctx, st, pr)
	case PhaseServeUnderLoad:
		return r.serveUnderLoad(ctx, sc, st, p, pr)
	case PhaseOverload:
		return r.overload(ctx, sc, st, p, pr)
	case PhaseIngestChurn:
		return r.ingestChurn(ctx, sc, st, p, pr)
	case PhaseKillAndRecover:
		return r.killAndRecover(ctx, st, pr)
	case PhaseKillShard:
		pr.Shard = p.Shard
		ss, err := st.shardedOrErr(p.Kind)
		if err != nil {
			return pr, err
		}
		return pr, ss.KillShard(p.Shard)
	case PhaseRestartShard:
		pr.Shard = p.Shard
		return r.restartShard(ctx, st, p, pr)
	case PhasePromoteReplica:
		pr.Shard = p.Shard
		return r.promoteReplica(ctx, st, p, pr)
	case PhaseRejoinReplica:
		pr.Shard = p.Shard
		return r.rejoinReplica(st, p, pr)
	case PhaseAwaitPromotion:
		pr.Shard = p.Shard
		return r.awaitPromotion(ctx, st, p, pr)
	case PhaseShardParity:
		pr.Shard = p.Shard
		if _, err := st.shardedOrErr(p.Kind); err != nil {
			return pr, err
		}
		if st.shadow == nil {
			return pr, fmt.Errorf("shard-parity needs a shadow system (the check would be vacuous without one)")
		}
		return r.shardParity(ctx, st, p.Shard, pr)
	default:
		return pr, fmt.Errorf("unknown phase kind %q", p.Kind)
	}
}

// shardedOrErr returns the primary's multi-node view, erroring for phases
// that need one against a single-node primary.
func (st *runState) shardedOrErr(kind PhaseKind) (ShardedSystem, error) {
	if st.primary == nil {
		return nil, fmt.Errorf("%s before train", kind)
	}
	if st.sharded == nil {
		return nil, fmt.Errorf("%s phase requires a sharded primary", kind)
	}
	return st.sharded, nil
}

// replicatedOrErr returns the primary's replicated view, erroring for phases
// that need replicas against an unreplicated primary.
func (st *runState) replicatedOrErr(kind PhaseKind) (ReplicatedSystem, error) {
	if _, err := st.shardedOrErr(kind); err != nil {
		return nil, err
	}
	if st.replicated == nil || st.replicated.NumReplicas() == 0 {
		return nil, fmt.Errorf("%s phase requires a replicated primary", kind)
	}
	return st.replicated, nil
}

// reshardableOrErr returns the primary's reshardable view, erroring for
// phases that need live topology changes against a fixed-topology primary.
func (st *runState) reshardableOrErr(kind PhaseKind) (ReshardableSystem, error) {
	if _, err := st.shardedOrErr(kind); err != nil {
		return nil, err
	}
	if st.reshardable == nil {
		return nil, fmt.Errorf("%s phase requires a reshardable primary", kind)
	}
	return st.reshardable, nil
}

// train stands up the primary (and the shadow when the scenario needs one)
// and enables ingestion when later phases will stream events.
func (r *Runner) train(sc *Scenario, st *runState) error {
	st.primary = r.NewSystem()
	if err := st.primary.Train(st.universe.Train(), sc.TopN); err != nil {
		return err
	}
	st.sharded, _ = st.primary.(ShardedSystem)
	st.replicated, _ = st.primary.(ReplicatedSystem)
	st.reshardable, _ = st.primary.(ReshardableSystem)
	if st.shadowShard >= 0 {
		if st.sharded == nil {
			return fmt.Errorf("scenario drills shard %d but the primary is not sharded", st.shadowShard)
		}
		// The drilled shard must exist at some point of the lifecycle (the
		// boot topology or a reshard target) and in the final topology, where
		// the parity check runs.
		limit := st.sharded.NumShards()
		if st.finalShards > limit {
			limit = st.finalShards
		}
		if st.shadowShard >= limit {
			return fmt.Errorf("scenario drills shard %d of a primary that never exceeds %d shards", st.shadowShard, limit)
		}
		if st.finalShards > 0 && st.shadowShard >= st.finalShards {
			return fmt.Errorf("scenario drills shard %d but reshards down to %d shards; the drilled shard must survive", st.shadowShard, st.finalShards)
		}
	}
	if st.finalShards > 0 && st.reshardable == nil {
		return fmt.Errorf("scenario reshards mid-load but the primary is not reshardable")
	}
	if er, ok := st.primary.(EpochReporter); ok {
		st.baseEpoch = er.Epoch()
	} else if sc.has(PhaseAwaitPromotion) {
		return fmt.Errorf("scenario awaits a detector promotion but the primary does not report its ring epoch")
	}
	needIngest := sc.has(PhaseIngestChurn) || sc.has(PhaseKillAndRecover) ||
		sc.has(PhaseRestartShard) || sc.has(PhasePromoteReplica) || sc.has(PhaseAwaitPromotion)
	if needIngest {
		// The primary runs the full durability stack; checkpoints target the
		// same snapshot path PhaseSave writes, mirroring cmd/ganc.
		if err := st.primary.EnableIngest(st.walPath, st.snapPath, sc.CheckpointEvery); err != nil {
			return err
		}
	}
	if sc.has(PhaseKillAndRecover) ||
		((sc.has(PhaseRestartShard) || sc.has(PhasePromoteReplica) ||
			sc.has(PhaseAwaitPromotion) || sc.has(PhaseShardParity)) && st.shadowShard >= 0) {
		newShadow := r.NewShadow
		if newShadow == nil {
			newShadow = r.NewSystem
		}
		st.shadow = newShadow()
		if err := st.shadow.Train(st.universe.Train(), sc.TopN); err != nil {
			return fmt.Errorf("shadow: %w", err)
		}
		// The shadow is the uninterrupted reference: same events, no WAL, no
		// checkpoints, no crash. For a sharded primary it absorbs only the
		// drilled shard's routed events, making it the single-node ground
		// truth for that shard's recovery.
		if err := st.shadow.EnableIngest("", "", 0); err != nil {
			return fmt.Errorf("shadow: %w", err)
		}
	}
	return nil
}

// shadowEvents filters an applied batch down to what the shadow must
// absorb: everything for single-node runs, only the drilled shard's routed
// slice for cluster runs. When the scenario reshards, ownership is evaluated
// against the final topology from the first phase on — events a pre-reshard
// churn routes to the drilled shard's users' old owners reach the drilled
// shard later through the migration, so the shadow must hold them too.
func (st *runState) shadowEvents(events []serve.IngestEvent) []serve.IngestEvent {
	if st.sharded == nil || st.shadowShard < 0 {
		return events
	}
	owner := st.sharded.ShardOwner
	if st.finalShards > 0 && st.reshardable != nil {
		final := st.finalShards
		owner = func(userKey string) int { return st.reshardable.OwnerAt(userKey, final) }
	}
	var out []serve.IngestEvent
	for _, ev := range events {
		if owner(ev.User) == st.shadowShard {
			out = append(out, ev)
		}
	}
	return out
}

// load asserts warm-start parity: reloading the snapshot must not change the
// system's observable output.
func (r *Runner) load(ctx context.Context, st *runState, pr PhaseResult) (PhaseResult, error) {
	if st.primary == nil {
		return pr, fmt.Errorf("load before train")
	}
	before, err := st.primary.Fingerprint(ctx)
	if err != nil {
		return pr, fmt.Errorf("fingerprint before load: %w", err)
	}
	if err := st.primary.Load(st.snapPath); err != nil {
		return pr, err
	}
	after, err := st.primary.Fingerprint(ctx)
	if err != nil {
		return pr, fmt.Errorf("fingerprint after load: %w", err)
	}
	if !bytes.Equal(before, after) {
		return pr, fmt.Errorf("warm-start parity broken: output changed across save/load (%d vs %d bytes)", len(before), len(after))
	}
	pr.ParityChecked = true
	return pr, nil
}

// serveUnderLoad runs the closed-loop driver against the primary's handler.
func (r *Runner) serveUnderLoad(ctx context.Context, sc *Scenario, st *runState, p Phase, pr PhaseResult) (PhaseResult, error) {
	if st.primary == nil {
		return pr, fmt.Errorf("serve-under-load before train")
	}
	h, err := st.primary.Handler()
	if err != nil {
		return pr, err
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	requests := p.Requests
	if requests <= 0 {
		requests = 200
	}
	concurrency := p.Concurrency
	if concurrency <= 0 {
		concurrency = 4
	}
	mix := p.Mix
	if mix == (LoadMix{}) {
		mix = LoadMix{Recommend: 90, Batch: 10}
	}
	if st.shadow != nil {
		// Driver-generated ingest traffic would advance the primary past the
		// shadow (the driver's events never reach it), voiding the recovery
		// equivalence the shadow exists for; event streaming belongs to
		// ingest-churn phases, which feed both systems identically.
		mix.Ingest = 0
	}
	cfg := LoadConfig{
		BaseURL:     ts.URL,
		Requests:    requests,
		Concurrency: concurrency,
		Mix:         mix,
		BatchSize:   p.BatchSize,
		Seed:        sc.Seed + 1,
		Client:      ts.Client(),
	}

	if p.KillShardMid != nil && p.ReshardMid != nil {
		return pr, fmt.Errorf("a serve-under-load phase cannot both kill a shard and reshard mid-load")
	}

	if p.ReshardMid != nil {
		// The reshard-mid-load drill: grow or shrink the ring partway
		// through the load. Unlike the kill drill, nothing here is allowed
		// to fail — the staged cutover (writes re-routed at begin, reads
		// double-dispatched to old owners until each user's history lands)
		// must make the topology change invisible to clients.
		rs, err := st.reshardableOrErr(PhaseKind("serve-under-load reshard-mid"))
		if err != nil {
			return pr, err
		}
		target := *p.ReshardMid
		pr.Shard = p.Shard
		delay := time.Duration(p.ReshardDelayMs) * time.Millisecond
		if delay <= 0 {
			delay = 100 * time.Millisecond
		}
		type outcome struct {
			stats *cluster.ReshardStats
			err   error
		}
		done := make(chan outcome, 1)
		timer := time.AfterFunc(delay, func() {
			stats, err := rs.Reshard(target)
			done <- outcome{stats, err}
		})
		defer timer.Stop()
		res, err := RunLoad(ctx, st.universe, cfg)
		if err != nil {
			return pr, err
		}
		pr.Load = res
		select {
		case out := <-done:
			if out.err != nil {
				return pr, fmt.Errorf("mid-load reshard to %d shards: %w", target, out.err)
			}
			pr.Reshard = out.stats
			pr.Epoch = out.stats.Epoch
		case <-time.After(60 * time.Second):
			return pr, fmt.Errorf("mid-load reshard to %d shards never completed", target)
		}
		if res.Errors > 0 {
			return pr, fmt.Errorf("mid-load reshard to %d shards leaked %d of %d client-visible errors (the cutover must be invisible)",
				target, res.Errors, res.Requests)
		}
		return pr, r.assertReplicaLag(st, p, -1, &pr)
	}

	if p.KillShardMid != nil {
		// The mid-load outage drill: kill the shard partway through the
		// load. Requests owned by the dead shard fail with the router's
		// typed 503 from that moment on — those errors are the point, so
		// the phase records them instead of failing on them.
		ss, err := st.shardedOrErr(PhaseKind("serve-under-load kill-shard-mid"))
		if err != nil {
			return pr, err
		}
		shard := *p.KillShardMid
		pr.Shard = shard
		delay := time.Duration(p.KillDelayMs) * time.Millisecond
		if delay <= 0 {
			delay = 100 * time.Millisecond
		}
		killErr := make(chan error, 1)
		timer := time.AfterFunc(delay, func() { killErr <- ss.KillShard(shard) })
		defer timer.Stop()
		res, err := RunLoad(ctx, st.universe, cfg)
		if err != nil {
			return pr, err
		}
		pr.Load = res
		select {
		case err := <-killErr:
			if err != nil {
				return pr, fmt.Errorf("mid-load kill of shard %d: %w", shard, err)
			}
		case <-time.After(5 * time.Second):
			return pr, fmt.Errorf("mid-load kill of shard %d never fired", shard)
		}
		if st.replicated != nil && st.replicated.NumReplicas() > 0 && mix.Ingest == 0 && res.Errors > 0 {
			// With warm replicas behind every shard and a read-only mix, the
			// router's read failover must mask the outage completely: any
			// surviving error means a read was dropped instead of retried
			// against a replica.
			return pr, fmt.Errorf("mid-load kill of shard %d leaked %d of %d read errors despite replicas (failover must mask the outage)",
				shard, res.Errors, res.Requests)
		}
		return pr, r.assertReplicaLag(st, p, shard, &pr)
	}

	res, err := RunLoad(ctx, st.universe, cfg)
	if err != nil {
		return pr, err
	}
	pr.Load = res
	if res.Errors > 0 {
		return pr, fmt.Errorf("%d of %d requests failed with server-side errors", res.Errors, res.Requests)
	}
	return pr, r.assertReplicaLag(st, p, -1, &pr)
}

// assertReplicaLag enforces a serve-under-load phase's MaxReplicaLagEvents
// knob: every shard's widest replica lag (except skip, the shard whose
// primary a mid-load kill took down) must drain to the bound within a short
// grace window. A nil knob is a no-op.
func (r *Runner) assertReplicaLag(st *runState, p Phase, skip int, pr *PhaseResult) error {
	if p.MaxReplicaLagEvents == nil {
		return nil
	}
	rs, err := st.replicatedOrErr("serve-under-load max-replica-lag")
	if err != nil {
		return err
	}
	bound := *p.MaxReplicaLagEvents
	deadline := time.Now().Add(5 * time.Second)
	for {
		var widest uint64
		for sh := 0; sh < rs.NumShards(); sh++ {
			if sh == skip {
				continue
			}
			if lag := rs.ReplicaLag(sh); lag > widest {
				widest = lag
			}
		}
		pr.ReplicaLagEvents = widest
		if widest <= bound {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica lag of %d committed events never drained to the %d-event bound", widest, bound)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// overload drives offered load well past the primary's admission capacity
// and asserts the degradation is graceful: some requests shed with typed 429
// bodies, zero 5xx, and the requests that were served keep a bounded p99.
// When the handler exposes /metrics the phase also scrapes it mid-scenario
// and validates the body with the strict text-format parser.
func (r *Runner) overload(ctx context.Context, sc *Scenario, st *runState, p Phase, pr PhaseResult) (PhaseResult, error) {
	if st.primary == nil {
		return pr, fmt.Errorf("overload before train")
	}
	h, err := st.primary.Handler()
	if err != nil {
		return pr, err
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	requests := p.Requests
	if requests <= 0 {
		requests = 400
	}
	concurrency := p.Concurrency
	if concurrency <= 0 {
		concurrency = 16
	}
	mix := p.Mix
	if mix == (LoadMix{}) {
		mix = LoadMix{Recommend: 100}
	}
	maxP99 := p.MaxP99Ms
	if maxP99 <= 0 {
		maxP99 = 2000
	}
	res, err := RunLoad(ctx, st.universe, LoadConfig{
		BaseURL:     ts.URL,
		Requests:    requests,
		Concurrency: concurrency,
		Mix:         mix,
		BatchSize:   p.BatchSize,
		Seed:        sc.Seed + 1,
		Client:      ts.Client(),
	})
	if err != nil {
		return pr, err
	}
	pr.Load = res
	if res.Errors > 0 {
		return pr, fmt.Errorf("overload must degrade gracefully, but %d of %d requests failed with 5xx/transport errors", res.Errors, res.Requests)
	}
	if res.Shed == 0 {
		return pr, fmt.Errorf("overload shed nothing across %d requests — is the system built with admission control?", res.Requests)
	}
	if served := res.Overall.Count; served > 0 && res.Overall.P99Ms > maxP99 {
		return pr, fmt.Errorf("served-request p99 %.1fms exceeds the %.1fms bound (%d served, %d shed)",
			res.Overall.P99Ms, maxP99, served, res.Shed)
	}

	// The driver discards response bodies, so re-establish the typed-429
	// contract directly: the load just drained the admission budget, so a
	// prompt probe sheds — but admission recovers with time, hence the short
	// retry loop rather than a single attempt.
	if err := probeTyped429(ctx, ts.Client(), ts.URL, st.universe); err != nil {
		return pr, err
	}

	if validated, err := scrapeMetrics(ctx, ts.Client(), ts.URL); err != nil {
		return pr, err
	} else {
		pr.MetricsValidated = validated
	}
	return pr, nil
}

// probeTyped429 provokes one shed response and asserts the typed-429
// contract: status 429, a Retry-After header, and a JSON body whose code is
// rate_limited or over_capacity.
func probeTyped429(ctx context.Context, client *http.Client, base string, u *Universe) error {
	req := u.RequestStream(RequestStreamConfig{Seed: 424242})
	const rounds = 200
	for i := 0; i < rounds; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/recommend?user="+url.QueryEscape(req.NextUser()), nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(httpReq)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		defer resp.Body.Close()
		if resp.Header.Get("Retry-After") == "" {
			return fmt.Errorf("429 response is missing a Retry-After header")
		}
		var body struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return fmt.Errorf("429 body is not the typed JSON shape: %w", err)
		}
		if body.Code != "rate_limited" && body.Code != "over_capacity" {
			return fmt.Errorf("429 body code = %q, want rate_limited or over_capacity", body.Code)
		}
		if body.Error == "" {
			return fmt.Errorf("429 body has an empty error message")
		}
		return nil
	}
	return fmt.Errorf("no 429 observed across %d probe requests despite a shedding load", rounds)
}

// scrapeMetrics fetches GET /metrics and validates the exposition with the
// strict parser. Returns false without error when the handler has no
// /metrics endpoint (metrics not configured on the system under test).
func scrapeMetrics(ctx context.Context, client *http.Client, base string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return false, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		_, _ = io.Copy(io.Discard, resp.Body)
		return false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("/metrics answered %d", resp.StatusCode)
	}
	if _, err := obs.ParseText(resp.Body); err != nil {
		return false, fmt.Errorf("/metrics body failed the strict text-format parse: %w", err)
	}
	return true, nil
}

// restartShard restores a killed shard and, when a shadow exists, asserts
// the recovered shard's owned-user output is byte-identical to the
// uninterrupted single-node shadow restricted to the same users.
func (r *Runner) restartShard(ctx context.Context, st *runState, p Phase, pr PhaseResult) (PhaseResult, error) {
	ss, err := st.shardedOrErr(p.Kind)
	if err != nil {
		return pr, err
	}
	replayed, err := ss.RestartShard(p.Shard)
	if err != nil {
		return pr, fmt.Errorf("restart shard %d: %w", p.Shard, err)
	}
	pr.Replayed = replayed
	return r.shardParity(ctx, st, p.Shard, pr)
}

// shardParity asserts the shard's owned-user fingerprint is byte-identical
// to the single-node shadow restricted to the same users. The check is
// keyed entirely by shard ID — ShardOwner and ShardFingerprint are
// address-agnostic — so it holds across a same-address restart and across a
// promotion that moved the shard to a replica's address under a new ring
// epoch alike. A scenario without a shadow skips the check.
func (r *Runner) shardParity(ctx context.Context, st *runState, shard int, pr PhaseResult) (PhaseResult, error) {
	if st.shadow == nil {
		return pr, nil
	}
	ss := st.sharded
	shadowFp, err := st.shadow.Fingerprint(ctx)
	if err != nil {
		return pr, fmt.Errorf("shadow fingerprint: %w", err)
	}
	want := FilterCanonical(shadowFp, func(user string) bool { return ss.ShardOwner(user) == shard })
	if len(want) == 0 {
		return pr, fmt.Errorf("shadow fingerprint covers no users owned by shard %d: the parity check would be vacuous", shard)
	}
	got, err := ss.ShardFingerprint(ctx, shard)
	if err != nil {
		return pr, fmt.Errorf("recovered shard fingerprint: %w", err)
	}
	if !bytes.Equal(got, want) {
		return pr, fmt.Errorf("shard recovery equivalence broken: shard %d's owned-user output differs from the single-node shadow (replayed %d events, %d vs %d bytes)",
			shard, pr.Replayed, len(got), len(want))
	}
	pr.ParityChecked = true
	return pr, nil
}

// promoteReplica promotes the freshest live replica of a killed shard and
// asserts the promoted runtime passes the same owned-user parity contract a
// restarted shard must — non-vacuously, under the shard's new address and
// the bumped ring epoch.
func (r *Runner) promoteReplica(ctx context.Context, st *runState, p Phase, pr PhaseResult) (PhaseResult, error) {
	rs, err := st.replicatedOrErr(p.Kind)
	if err != nil {
		return pr, err
	}
	epoch, err := rs.PromoteReplica(p.Shard)
	if err != nil {
		return pr, fmt.Errorf("promote shard %d: %w", p.Shard, err)
	}
	pr.Epoch = epoch
	return r.shardParity(ctx, st, p.Shard, pr)
}

// awaitPromotion observes a hands-off failover: the runner waits for the
// system's own failure detector to promote the killed shard's replica —
// visible as a ring-epoch bump past everything the runner has accounted for —
// then asserts the promoted runtime passes the owned-user parity contract.
// No PromoteReplica call is made: a promotion that needs the runner is a
// failed drill.
func (r *Runner) awaitPromotion(ctx context.Context, st *runState, p Phase, pr PhaseResult) (PhaseResult, error) {
	if _, err := st.replicatedOrErr(p.Kind); err != nil {
		return pr, err
	}
	er, ok := st.primary.(EpochReporter)
	if !ok {
		return pr, fmt.Errorf("await-promotion requires the primary to report its ring epoch")
	}
	window := time.Duration(p.PromotionWindowMs) * time.Millisecond
	if window <= 0 {
		window = 15 * time.Second
	}
	deadline := time.Now().Add(window)
	for {
		if err := ctx.Err(); err != nil {
			return pr, err
		}
		if epoch := er.Epoch(); epoch > st.baseEpoch {
			pr.Epoch = epoch
			break
		}
		if time.Now().After(deadline) {
			return pr, fmt.Errorf("the failure detector never promoted shard %d's replica within the %s suspicion window (epoch still %d)",
				p.Shard, window, st.baseEpoch)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return r.shardParity(ctx, st, p.Shard, pr)
}

// rejoinReplica boots the shard's dead ex-primary as a replica and waits for
// its replication lag to drain to zero: the demoted node must converge on
// the promoted primary's history.
func (r *Runner) rejoinReplica(st *runState, p Phase, pr PhaseResult) (PhaseResult, error) {
	rs, err := st.replicatedOrErr(p.Kind)
	if err != nil {
		return pr, err
	}
	replayed, err := rs.RejoinAsReplica(p.Shard)
	if err != nil {
		return pr, fmt.Errorf("rejoin shard %d: %w", p.Shard, err)
	}
	pr.Replayed = replayed
	deadline := time.Now().Add(10 * time.Second)
	for {
		lag := rs.ReplicaLag(p.Shard)
		pr.ReplicaLagEvents = lag
		if lag == 0 {
			return pr, nil
		}
		if time.Now().After(deadline) {
			return pr, fmt.Errorf("rejoined shard %d never converged: replica lag stuck at %d committed events", p.Shard, lag)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ingestChurn streams event batches through the primary's POST /ingest while
// concurrent readers exercise /recommend and /recommend/batch; the shadow
// (when present) absorbs the identical batches directly.
func (r *Runner) ingestChurn(ctx context.Context, sc *Scenario, st *runState, p Phase, pr PhaseResult) (PhaseResult, error) {
	if st.primary == nil {
		return pr, fmt.Errorf("ingest-churn before train")
	}
	h, err := st.primary.Handler()
	if err != nil {
		return pr, err
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := ts.Client()

	events := p.Events
	if events <= 0 {
		events = 200
	}
	batch := p.EventBatch
	if batch <= 0 {
		batch = 25
	}
	concurrency := p.Concurrency
	if concurrency <= 0 {
		concurrency = 4
	}

	// Concurrent readers: half issue single lookups, half batch lookups, so
	// the versioned-swap path races both request shapes. They run until the
	// writer below finishes its stream.
	stop := make(chan struct{})
	var readerReqs, readerErrs atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			req := st.universe.RequestStream(RequestStreamConfig{Seed: sc.Seed + 100 + int64(w)})
			for {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				default:
				}
				var s sample
				if w%2 == 0 {
					s = doRecommend(ctx, client, ts.URL, req.NextUser())
				} else {
					s = doBatch(ctx, client, ts.URL, req.NextUsers(5))
				}
				readerReqs.Add(1)
				if s.bad {
					readerErrs.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Sprintf("reader %d: server-side error on %s", w, endpointNames[s.ep]))
				}
			}
		}(w)
	}

	applied := 0
	var ingestErr error
	for applied < events {
		n := batch
		if rest := events - applied; rest < n {
			n = rest
		}
		evs := st.events.NextBatch(n)
		if s := doIngest(ctx, client, ts.URL, evs); s.bad || s.rej {
			// Distinguish a driver-side cancellation from a server rejection,
			// so a CI deadline does not read as an ingestion bug.
			if err := ctx.Err(); err != nil {
				ingestErr = err
			} else {
				ingestErr = fmt.Errorf("ingest batch rejected after %d events", applied)
			}
			break
		}
		if st.shadow != nil {
			if mirror := st.shadowEvents(evs); len(mirror) > 0 {
				if err := st.shadow.Ingest(ctx, mirror); err != nil {
					ingestErr = fmt.Errorf("shadow ingest: %w", err)
					break
				}
			}
		}
		applied += n
	}
	close(stop)
	wg.Wait()

	pr.EventsApplied = applied
	pr.ReaderRequests = readerReqs.Load()
	pr.ReaderErrors = readerErrs.Load()
	if ingestErr != nil {
		return pr, ingestErr
	}
	if err := ctx.Err(); err != nil {
		return pr, err
	}
	if n := readerErrs.Load(); n > 0 {
		msg, _ := firstErr.Load().(string)
		return pr, fmt.Errorf("%d reader requests failed under ingest churn (%s)", n, msg)
	}
	return pr, nil
}

// killAndRecover crashes the primary, restores it from the checkpoint plus
// the WAL suffix, and asserts byte equivalence with the uninterrupted shadow.
func (r *Runner) killAndRecover(ctx context.Context, st *runState, pr PhaseResult) (PhaseResult, error) {
	if st.primary == nil {
		return pr, fmt.Errorf("kill-and-recover before train")
	}
	if st.shadow == nil {
		return pr, fmt.Errorf("kill-and-recover needs a shadow system (runner bug)")
	}
	want, err := st.shadow.Fingerprint(ctx)
	if err != nil {
		return pr, fmt.Errorf("shadow fingerprint: %w", err)
	}
	if err := st.primary.Kill(); err != nil {
		return pr, err
	}
	if err := st.primary.Load(st.snapPath); err != nil {
		return pr, fmt.Errorf("restore checkpoint: %w", err)
	}
	replayed, err := st.primary.Recover()
	if err != nil {
		return pr, fmt.Errorf("replay WAL: %w", err)
	}
	pr.Replayed = replayed
	got, err := st.primary.Fingerprint(ctx)
	if err != nil {
		return pr, fmt.Errorf("recovered fingerprint: %w", err)
	}
	if !bytes.Equal(got, want) {
		return pr, fmt.Errorf("recovery equivalence broken: recovered output differs from uninterrupted shadow (replayed %d events)", replayed)
	}
	pr.ParityChecked = true
	return pr, nil
}

// CanonicalRecommendations serializes a collection in external identifiers,
// one line per user sorted by user key, items in rank order — the byte form
// scenario fingerprints compare. External keys (not dense indices) make the
// form stable across systems whose interner tables grew in different orders.
func CanonicalRecommendations(train *dataset.Dataset, recs types.Recommendations) []byte {
	users := train.UserInterner()
	items := train.ItemInterner()
	lines := make([]string, 0, len(recs))
	for u, set := range recs {
		var sb strings.Builder
		sb.WriteString(users.Key(int32(u)))
		sb.WriteByte('\t')
		for k, i := range set {
			if k > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(items.Key(int32(i)))
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return []byte(strings.Join(lines, "\n"))
}

// FilterCanonical keeps the lines of a canonical fingerprint whose user key
// passes the predicate — how a sharded fingerprint is compared against the
// relevant slice of a whole-universe shadow fingerprint.
func FilterCanonical(fp []byte, keep func(userKey string) bool) []byte {
	if len(fp) == 0 {
		return fp
	}
	var out []string
	for _, line := range strings.Split(string(fp), "\n") {
		user, _, ok := strings.Cut(line, "\t")
		if ok && keep(user) {
			out = append(out, line)
		}
	}
	return []byte(strings.Join(out, "\n"))
}
