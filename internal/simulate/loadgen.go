package simulate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"ganc/internal/cluster"
	"ganc/internal/persist"
	"ganc/internal/serve"
)

// LoadMix weights the traffic composition of a load run. Weights are
// relative, not percentages; a zero weight disables the endpoint.
type LoadMix struct {
	// Recommend weights GET /recommend (single-user) traffic.
	Recommend int `json:"recommend"`
	// Batch weights POST /recommend/batch traffic.
	Batch int `json:"batch"`
	// Ingest weights POST /ingest traffic. Leave 0 against servers without an
	// ingestion sink (the endpoint answers 404 there).
	Ingest int `json:"ingest"`
}

// DefaultLoadMix is a read-heavy production-like composition: mostly single
// lookups, some batches, a trickle of ingestion.
func DefaultLoadMix() LoadMix { return LoadMix{Recommend: 90, Batch: 8, Ingest: 2} }

// LoadConfig configures one closed-loop load run: Concurrency workers each
// issue a request, wait for the response, and immediately issue the next, so
// offered load adapts to the server instead of overrunning it.
type LoadConfig struct {
	// BaseURL is the target server root, e.g. "http://127.0.0.1:8080".
	BaseURL string `json:"base_url"`
	// Requests is the total request count across all workers.
	Requests int `json:"requests"`
	// Concurrency is the closed-loop worker count (default 8).
	Concurrency int `json:"concurrency"`
	// Mix composes the traffic (default DefaultLoadMix; all-zero selects it).
	Mix LoadMix `json:"mix"`
	// BatchSize is the users per /recommend/batch request (default 20).
	BatchSize int `json:"batch_size"`
	// IngestBatchSize is the events per /ingest request (default 20).
	IngestBatchSize int `json:"ingest_batch_size"`
	// RequestZipf skews request popularity over users (default 1.0).
	RequestZipf float64 `json:"request_zipf"`
	// Seed derives every worker's request and event streams.
	Seed int64 `json:"seed"`
	// Timeout bounds a single request (default 30s).
	Timeout time.Duration `json:"-"`
	// Client overrides the HTTP client (tests inject an httptest client).
	Client *http.Client `json:"-"`
}

// withDefaults fills the optional fields.
func (c LoadConfig) withDefaults() LoadConfig {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Mix == (LoadMix{}) {
		c.Mix = DefaultLoadMix()
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 20
	}
	if c.IngestBatchSize <= 0 {
		c.IngestBatchSize = 20
	}
	if c.RequestZipf <= 0 {
		c.RequestZipf = 1.0
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// LatencyStats summarizes one endpoint's latency distribution.
type LatencyStats struct {
	// Count is the number of completed requests.
	Count int `json:"count"`
	// MeanMs through MaxMs are latency figures in milliseconds.
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// computeStats reduces a latency sample to its summary. The input is sorted
// in place.
func computeStats(d []time.Duration) LatencyStats {
	if len(d) == 0 {
		return LatencyStats{}
	}
	sort.Slice(d, func(a, b int) bool { return d[a] < d[b] })
	ms := func(x time.Duration) float64 { return float64(x) / float64(time.Millisecond) }
	// Nearest-rank percentiles.
	rank := func(q float64) time.Duration {
		k := int(q*float64(len(d))+0.5) - 1
		if k < 0 {
			k = 0
		}
		if k >= len(d) {
			k = len(d) - 1
		}
		return d[k]
	}
	sum := time.Duration(0)
	for _, x := range d {
		sum += x
	}
	return LatencyStats{
		Count:  len(d),
		MeanMs: ms(sum) / float64(len(d)),
		P50Ms:  ms(rank(0.50)),
		P95Ms:  ms(rank(0.95)),
		P99Ms:  ms(rank(0.99)),
		MaxMs:  ms(d[len(d)-1]),
	}
}

// LoadResult is the outcome of one load run.
type LoadResult struct {
	// Requests and Errors count completed calls and failures (transport
	// errors and 5xx responses; 4xx answers are client mistakes and counted
	// separately as Rejected, except 429s which are admission sheds and
	// counted as Shed).
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	Rejected int `json:"rejected"`
	// Shed counts 429 answers — requests the server's admission control
	// refused (rate limit or concurrency cap). ShedRate is Shed/Requests;
	// ShedByEndpoint breaks the 429s down per route.
	Shed           int            `json:"shed"`
	ShedRate       float64        `json:"shed_rate"`
	ShedByEndpoint map[string]int `json:"shed_by_endpoint,omitempty"`
	// DurationSec is the wall-clock span of the run.
	DurationSec float64 `json:"duration_sec"`
	// ThroughputRPS is successfully answered requests per second; failed and
	// rejected calls consume wall-clock but never count as served work.
	ThroughputRPS float64 `json:"throughput_rps"`
	// CacheHitRate is hits/(hits+misses) accumulated server-side during the
	// run (from /info deltas); -1 when the server saw no cache traffic.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CacheHits and CacheMisses are the raw /info deltas behind the rate.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// StartVersion and EndVersion are the serving-engine generations before
	// and after the run; they differ when ingestion traffic republished.
	StartVersion int `json:"start_version"`
	EndVersion   int `json:"end_version"`
	// Model and TopN are the target's self-reported engine name and list size
	// (from /info), authoritative even for externally driven servers.
	Model string `json:"model"`
	TopN  int    `json:"top_n"`
	// Overall aggregates every endpoint; Endpoints breaks the distribution
	// down per route. Only successful responses enter the distributions — a
	// fast 4xx or a timed-out transport call must not flatter (or poison)
	// the percentiles the benchmark artifact exists to track.
	Overall   LatencyStats            `json:"overall"`
	Endpoints map[string]LatencyStats `json:"endpoints"`
}

// endpoint indexes the per-route sample buckets.
const (
	epRecommend = iota
	epBatch
	epIngest
	epCount
)

// endpointNames maps sample buckets to route labels in the result.
var endpointNames = [epCount]string{"recommend", "batch", "ingest"}

// sample is one completed request observation.
type sample struct {
	ep   int8
	bad  bool // 5xx or transport failure
	rej  bool // 4xx other than 429
	shed bool // 429 — shed by admission control
	d    time.Duration
}

// RunLoad drives a closed loop of mixed traffic against the server at
// cfg.BaseURL, generating requests from the universe's deterministic streams,
// and reduces the observations to latency percentiles, throughput and the
// server-side cache-hit rate.
func RunLoad(ctx context.Context, u *Universe, cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("simulate: load config needs a BaseURL")
	}
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("simulate: load config needs a positive request count")
	}
	if cfg.Mix.Recommend < 0 || cfg.Mix.Batch < 0 || cfg.Mix.Ingest < 0 {
		return nil, fmt.Errorf("simulate: load mix weights must be non-negative, got %+v", cfg.Mix)
	}
	total := cfg.Mix.Recommend + cfg.Mix.Batch + cfg.Mix.Ingest
	if total <= 0 {
		return nil, fmt.Errorf("simulate: load mix selects no traffic")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}

	before, err := fetchInfo(ctx, client, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("simulate: read /info before the run: %w", err)
	}

	samples := make([][]sample, cfg.Concurrency)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a fixed request quota and seed-derived streams,
			// so the issued workload — which users are requested, which events
			// are ingested — is fully determined by (Seed, Requests,
			// Concurrency); only interleaving and timing vary run to run.
			quota := cfg.Requests / cfg.Concurrency
			if w < cfg.Requests%cfg.Concurrency {
				quota++
			}
			seed := cfg.Seed + int64(w)*7919
			rng := rand.New(rand.NewSource(seed))
			req := u.RequestStream(RequestStreamConfig{ZipfExponent: cfg.RequestZipf, Seed: seed + 1})
			evs := u.EventStream(EventStreamConfig{Seed: seed + 2})
			buf := make([]sample, 0, quota)
			for k := 0; k < quota; k++ {
				if ctx.Err() != nil {
					break
				}
				pick := rng.Intn(total)
				var s sample
				switch {
				case pick < cfg.Mix.Recommend:
					s = doRecommend(ctx, client, cfg.BaseURL, req.NextUser())
				case pick < cfg.Mix.Recommend+cfg.Mix.Batch:
					s = doBatch(ctx, client, cfg.BaseURL, req.NextUsers(cfg.BatchSize))
				default:
					s = doIngest(ctx, client, cfg.BaseURL, evs.NextBatch(cfg.IngestBatchSize))
				}
				buf = append(buf, s)
			}
			samples[w] = buf
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	after, err := fetchInfo(ctx, client, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("simulate: read /info after the run: %w", err)
	}
	return reduce(samples, elapsed, before, after), nil
}

// reduce folds the per-worker samples and the /info deltas into a LoadResult.
func reduce(samples [][]sample, elapsed time.Duration, before, after serve.InfoResponse) *LoadResult {
	res := &LoadResult{
		DurationSec:  elapsed.Seconds(),
		StartVersion: before.Version,
		EndVersion:   after.Version,
		Model:        after.Model,
		TopN:         after.TopN,
		Endpoints:    make(map[string]LatencyStats, epCount),
		CacheHitRate: -1,
	}
	perEp := make([][]time.Duration, epCount)
	var all []time.Duration
	for _, buf := range samples {
		for _, s := range buf {
			res.Requests++
			switch {
			case s.bad:
				res.Errors++
				continue
			case s.shed:
				res.Shed++
				if res.ShedByEndpoint == nil {
					res.ShedByEndpoint = make(map[string]int, epCount)
				}
				res.ShedByEndpoint[endpointNames[s.ep]]++
				continue
			case s.rej:
				res.Rejected++
				continue
			}
			perEp[s.ep] = append(perEp[s.ep], s.d)
			all = append(all, s.d)
		}
	}
	if res.Requests > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Requests)
	}
	res.Overall = computeStats(all)
	for ep, d := range perEp {
		if len(d) > 0 {
			res.Endpoints[endpointNames[ep]] = computeStats(d)
		}
	}
	if elapsed > 0 {
		res.ThroughputRPS = float64(len(all)) / elapsed.Seconds()
	}
	res.CacheHits = after.Cache.Hits - before.Cache.Hits
	res.CacheMisses = after.Cache.Misses - before.Cache.Misses
	if res.CacheHits < 0 || res.CacheMisses < 0 {
		// The /info aggregation scope shrank mid-run — a cluster target lost
		// a shard between the before and after reads (the mid-load kill
		// drill), taking its accumulated counters with it. The deltas are
		// meaningless then; report "no measurement" rather than negative
		// nonsense. StartVersion/EndVersion stay as observed for the same
		// reason — they are raw before/after readings, not deltas.
		res.CacheHits, res.CacheMisses, res.CacheHitRate = 0, 0, -1
	} else if lookups := res.CacheHits + res.CacheMisses; lookups > 0 {
		res.CacheHitRate = float64(res.CacheHits) / float64(lookups)
	}
	return res
}

// fetchInfo reads the server's /info snapshot.
func fetchInfo(ctx context.Context, client *http.Client, base string) (serve.InfoResponse, error) {
	var info serve.InfoResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/info", nil)
	if err != nil {
		return info, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("/info answered %d", resp.StatusCode)
	}
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

// doRecommend times one GET /recommend call.
func doRecommend(ctx context.Context, client *http.Client, base, user string) sample {
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/recommend?user="+url.QueryEscape(user), nil)
	if err != nil {
		return sample{ep: epRecommend, bad: true, d: time.Since(t0)}
	}
	return finish(client, req, sample{ep: epRecommend}, t0)
}

// doBatch times one POST /recommend/batch call.
func doBatch(ctx context.Context, client *http.Client, base string, users []string) sample {
	t0 := time.Now()
	body, _ := json.Marshal(serve.BatchRequest{Users: users})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/recommend/batch", bytes.NewReader(body))
	if err != nil {
		return sample{ep: epBatch, bad: true, d: time.Since(t0)}
	}
	req.Header.Set("Content-Type", "application/json")
	return finish(client, req, sample{ep: epBatch}, t0)
}

// doIngest times one POST /ingest call.
func doIngest(ctx context.Context, client *http.Client, base string, events []serve.IngestEvent) sample {
	t0 := time.Now()
	body, _ := json.Marshal(serve.IngestRequest{Events: events})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/ingest", bytes.NewReader(body))
	if err != nil {
		return sample{ep: epIngest, bad: true, d: time.Since(t0)}
	}
	req.Header.Set("Content-Type", "application/json")
	return finish(client, req, sample{ep: epIngest}, t0)
}

// finish executes the request, drains the body (keep-alive reuse) and stamps
// the sample.
func finish(client *http.Client, req *http.Request, s sample, t0 time.Time) sample {
	resp, err := client.Do(req)
	if err != nil {
		s.bad, s.d = true, time.Since(t0)
		return s
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.d = time.Since(t0)
	switch {
	case resp.StatusCode >= 500:
		s.bad = true
	case resp.StatusCode == http.StatusTooManyRequests:
		s.shed = true
	case resp.StatusCode >= 400:
		s.rej = true
	}
	return s
}

// --- Bench report --------------------------------------------------------------

// BenchReport is the serialized form of one load run, written as
// BENCH_serve.json next to BENCH_sweep.json: the universe, the load shape and
// the measured result together, so a regression diff carries its own context.
type BenchReport struct {
	// Universe describes the synthetic population the server held.
	Universe UniverseConfig `json:"universe"`
	// Engine is the served model's display name (from /info).
	Engine string `json:"engine"`
	// TopN is the serving list size.
	TopN int `json:"top_n"`
	// Load is the driver configuration of the run.
	Load LoadConfig `json:"load"`
	// Result is the measurement.
	Result *LoadResult `json:"result"`
}

// WriteBenchReport writes the report as indented JSON, atomically (the
// shared persist.AtomicWrite temp+fsync+rename sequence) so a crashed run
// never leaves a half-written benchmark artifact.
func WriteBenchReport(path string, rep *BenchReport) error {
	return writeJSONArtifact(path, rep)
}

// ClusterBenchReport is the BENCH_cluster.json document: the same universe
// and load driven once against a single node and once against an N-shard
// cluster behind the scatter-gather router, with identical per-node cache
// budgets. On one machine the comparison isolates what sharding actually
// buys — aggregate cache capacity (each node's LRU holds only its owned
// users, so the cluster's working set is N× a single node's) — while CPU is
// shared, making the measured speedup a conservative floor for a real
// multi-host deployment. See DESIGN.md §10.
type ClusterBenchReport struct {
	// Universe describes the synthetic population every node held.
	Universe UniverseConfig `json:"universe"`
	// Engine is the served model's display name.
	Engine string `json:"engine"`
	// TopN is the serving list size.
	TopN int `json:"top_n"`
	// Shards is the cluster's shard count.
	Shards int `json:"shards"`
	// Replicas is the per-shard warm-replica count behind the cluster
	// measurement (0 = unreplicated, no failover section).
	Replicas int `json:"replicas,omitempty"`
	// NodeCacheCapacity is the per-node LRU budget shared by the single
	// node and every shard — the knob that makes the comparison fair.
	NodeCacheCapacity int `json:"node_cache_capacity"`
	// WarmupRequests is the unmeasured warm-up request count driven before
	// each measured run (the same seeded sequence as the measurement).
	WarmupRequests int `json:"warmup_requests"`
	// Load is the measured driver configuration (identical for both
	// targets apart from the base URL).
	Load LoadConfig `json:"load"`
	// SingleNode and Cluster are the two measurements.
	SingleNode *LoadResult `json:"single_node"`
	Cluster    *LoadResult `json:"cluster"`
	// Speedup is Cluster.ThroughputRPS / SingleNode.ThroughputRPS.
	Speedup float64 `json:"speedup"`
	// Failover is the mid-run primary-kill drill measurement (nil when the
	// cluster runs without replicas).
	Failover *FailoverReport `json:"failover,omitempty"`
	// Reshard is the mid-run elastic-grow drill measurement (nil when the
	// drill was not requested).
	Reshard *ReshardReport `json:"reshard,omitempty"`
	// AutoFailover is the hands-off failover drill measurement (nil when the
	// drill was not requested). It replaces the manual Failover section: the
	// two drills are mutually exclusive because the failure detector would
	// race a manual promotion.
	AutoFailover *AutoFailoverReport `json:"auto_failover,omitempty"`
}

// FailoverReport is the failover section of BENCH_cluster.json: a read-only
// load run against a replicated cluster during which one shard's primary is
// killed mid-run, proving the router's replica failover keeps the error
// count at zero while throughput stays useful.
type FailoverReport struct {
	// KilledShard is the shard whose primary the drill killed.
	KilledShard int `json:"killed_shard"`
	// KillDelayMs is how far into the run the kill fired.
	KillDelayMs int `json:"kill_delay_ms"`
	// PromotedEpoch is the ring epoch after the post-run promotion (0 when
	// the drill did not promote).
	PromotedEpoch uint64 `json:"promoted_epoch,omitempty"`
	// Result is the measured run spanning the kill.
	Result *LoadResult `json:"result"`
}

// AutoFailoverReport is the auto-failover section of BENCH_cluster.json: a
// read-only run against a replicated cluster with the failure detector's
// suspicion callback armed, during which one shard's primary is killed and
// NO operator promotion is issued. The pass criteria are zero client-visible
// errors and a detector-driven promotion (ring epoch bump) within the
// suspicion window.
type AutoFailoverReport struct {
	// KilledShard is the shard whose primary the drill killed.
	KilledShard int `json:"killed_shard"`
	// KillDelayMs is how far into the run the kill fired.
	KillDelayMs int `json:"kill_delay_ms"`
	// WriteQuorum echoes the k-of-n quorum the cluster committed under
	// (0 = fire-and-forget shipping).
	WriteQuorum int `json:"write_quorum,omitempty"`
	// PromotedEpoch is the ring epoch after the detector's automatic
	// promotion.
	PromotedEpoch uint64 `json:"promoted_epoch"`
	// PromotionMs is the wall-clock time from the kill to the first
	// observation of the bumped epoch — detection plus promotion plus ring
	// republish, as a client would experience it.
	PromotionMs float64 `json:"promotion_ms"`
	// Result is the measured run spanning the kill.
	Result *LoadResult `json:"result"`
}

// ReshardReport is the reshard section of BENCH_cluster.json: a mixed
// read/write run during which the cluster grows by one or more shards
// mid-flight. Zero client-visible errors across the cutover is the pass
// criterion — elastic growth must be invisible to traffic.
type ReshardReport struct {
	// KickoffDelayMs is how far into the run the reshard fired.
	KickoffDelayMs int `json:"kickoff_delay_ms"`
	// Stats is the migration engine's own accounting: topology, users and
	// events migrated, router double-dispatches, cutover duration.
	Stats *cluster.ReshardStats `json:"stats"`
	// Result is the measured run spanning the reshard.
	Result *LoadResult `json:"result"`
}

// WriteClusterBenchReport writes the cluster comparison artifact
// atomically.
func WriteClusterBenchReport(path string, rep *ClusterBenchReport) error {
	return writeJSONArtifact(path, rep)
}

// writeJSONArtifact writes v as indented JSON through the atomic
// temp+fsync+rename sequence.
func writeJSONArtifact(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("simulate: encode bench report: %w", err)
	}
	data = append(data, '\n')
	return persist.AtomicWrite(path, func(w io.Writer) error {
		if _, err := w.Write(data); err != nil {
			return fmt.Errorf("simulate: write bench report: %w", err)
		}
		return nil
	})
}
