package simulate

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestUniverseDeterministic is the generator half of the determinism
// acceptance criterion: the same seed must produce the byte-identical
// dataset; a different seed must not.
func TestUniverseDeterministic(t *testing.T) {
	serialize := func(seed int64) []byte {
		u, err := NewUniverse(TinyConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := u.WriteRatings(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := serialize(7), serialize(7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different datasets")
	}
	if bytes.Equal(a, serialize(8)) {
		t.Fatal("different seeds produced the same dataset")
	}
}

// TestEventStreamDeterministic is the stream half of the criterion: the same
// seed yields the byte-identical event sequence (compared in JSON, the WAL's
// wire form).
func TestEventStreamDeterministic(t *testing.T) {
	u, err := NewUniverse(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	serialize := func(seed int64) []byte {
		s := u.EventStream(EventStreamConfig{Seed: seed})
		data, err := json.Marshal(s.NextBatch(500))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := serialize(11), serialize(11)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different event streams")
	}
	if bytes.Equal(a, serialize(12)) {
		t.Fatal("different seeds produced the same event stream")
	}
}

// TestEventStreamInjectsNewUsersAndItems checks the churn knobs: brand-new
// identifiers appear at roughly the configured rates, and known identifiers
// come from the universe.
func TestEventStreamInjectsNewUsersAndItems(t *testing.T) {
	u, err := NewUniverse(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	s := u.EventStream(EventStreamConfig{NewUserRate: 0.2, NewItemRate: 0.1, Seed: 5})
	users := u.Train().UserInterner()
	items := u.Train().ItemInterner()
	newUsers, newItems := 0, 0
	const n = 2000
	for k := 0; k < n; k++ {
		ev := s.Next()
		if _, ok := users.Lookup(ev.User); !ok {
			newUsers++
		}
		if _, ok := items.Lookup(ev.Item); !ok {
			newItems++
		}
		if ev.Value < 1 || ev.Value > 5 {
			t.Fatalf("event value %v outside the rating scale", ev.Value)
		}
	}
	if newUsers == 0 || newItems == 0 {
		t.Fatalf("no churn generated: %d new users, %d new items", newUsers, newItems)
	}
	if got := float64(newUsers) / n; got > 0.3 {
		t.Fatalf("new-user share %.2f far above the configured 0.2", got)
	}
	if s.Generated() != n {
		t.Fatalf("generated count %d, want %d", s.Generated(), n)
	}
}

// TestRequestStreamSkewAndDeterminism checks that request traffic is hot-user
// skewed (the cache-relevance property) and seed-deterministic.
func TestRequestStreamSkewAndDeterminism(t *testing.T) {
	u, err := NewUniverse(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	draw := func(seed int64) map[string]int {
		r := u.RequestStream(RequestStreamConfig{ZipfExponent: 1.2, Seed: seed})
		counts := make(map[string]int)
		for k := 0; k < 3000; k++ {
			counts[r.NextUser()]++
		}
		return counts
	}
	a := draw(9)
	max := 0
	for _, c := range a {
		if c > max {
			max = c
		}
	}
	uniform := 3000 / u.Train().NumUsers()
	if max < 3*uniform {
		t.Fatalf("hottest user drew %d requests, want ≥ 3× the uniform share %d", max, uniform)
	}
	b := draw(9)
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("same seed produced different request streams (user %s: %d vs %d)", k, v, b[k])
		}
	}
}

// TestComputeStats pins the percentile reduction on a known distribution.
func TestComputeStats(t *testing.T) {
	d := make([]time.Duration, 100)
	for k := range d {
		d[k] = time.Duration(k+1) * time.Millisecond
	}
	s := computeStats(d)
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if s.P50Ms != 50 || s.P95Ms != 95 || s.P99Ms != 99 || s.MaxMs != 100 {
		t.Fatalf("percentiles p50=%v p95=%v p99=%v max=%v", s.P50Ms, s.P95Ms, s.P99Ms, s.MaxMs)
	}
	if s.MeanMs != 50.5 {
		t.Fatalf("mean %v", s.MeanMs)
	}
	if zero := computeStats(nil); zero.Count != 0 || zero.MaxMs != 0 {
		t.Fatalf("empty stats %+v", zero)
	}
}
