package simulate

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"ganc/internal/admit"
	"ganc/internal/serve"
	"ganc/internal/types"
)

// echoEngine answers every user with a fixed list, counting computes.
type echoEngine struct {
	computes atomic.Int64
}

func (e *echoEngine) Name() string { return "echo" }

func (e *echoEngine) RecommendUser(ctx context.Context, u types.UserID, n int) (types.TopNSet, error) {
	e.computes.Add(1)
	return types.TopNSet{0}, nil
}

// countingSink applies batches by counting them (no engine swap).
type countingSink struct {
	events atomic.Int64
}

func (s *countingSink) IngestEvents(ctx context.Context, events []serve.IngestEvent) (serve.IngestResult, error) {
	s.events.Add(int64(len(events)))
	return serve.IngestResult{Applied: len(events), Seq: uint64(s.events.Load())}, nil
}

// TestRunLoadMixedTraffic drives the closed loop against a real serve.Server
// and checks the bookkeeping: request accounting, per-endpoint buckets,
// cache-hit measurement and zero errors on a healthy server.
func TestRunLoadMixedTraffic(t *testing.T) {
	u, err := NewUniverse(TinyConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	eng := &echoEngine{}
	srv, err := serve.New(u.Train(), eng, 5)
	if err != nil {
		t.Fatal(err)
	}
	sink := &countingSink{}
	srv.SetIngestSink(sink)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, err := RunLoad(context.Background(), u, LoadConfig{
		BaseURL:         ts.URL,
		Requests:        300,
		Concurrency:     4,
		Mix:             LoadMix{Recommend: 6, Batch: 2, Ingest: 2},
		BatchSize:       5,
		IngestBatchSize: 3,
		Seed:            13,
		Client:          ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 300 {
		t.Fatalf("completed %d requests, want 300", res.Requests)
	}
	if res.Errors != 0 || res.Rejected != 0 {
		t.Fatalf("errors=%d rejected=%d on a healthy server", res.Errors, res.Rejected)
	}
	total := 0
	for ep, st := range res.Endpoints {
		if st.Count == 0 {
			t.Fatalf("endpoint %s has an empty bucket", ep)
		}
		if st.P50Ms < 0 || st.P99Ms < st.P50Ms || st.MaxMs < st.P99Ms {
			t.Fatalf("endpoint %s has inconsistent percentiles: %+v", ep, st)
		}
		total += st.Count
	}
	if total != res.Overall.Count || total != 300 {
		t.Fatalf("endpoint buckets sum to %d, overall %d", total, res.Overall.Count)
	}
	if len(res.Endpoints) != 3 {
		t.Fatalf("expected all three endpoints in the mix, got %v", res.Endpoints)
	}
	if res.ThroughputRPS <= 0 || res.DurationSec <= 0 {
		t.Fatalf("throughput %v over %vs", res.ThroughputRPS, res.DurationSec)
	}
	if sink.events.Load() == 0 {
		t.Fatal("ingest traffic never reached the sink")
	}
	// The universe has 60 users and the cache is unbounded by default, so
	// repeated hot users must produce hits.
	if res.CacheHitRate <= 0 || res.CacheHitRate >= 1 {
		t.Fatalf("cache hit rate %v, want within (0,1)", res.CacheHitRate)
	}
	if res.CacheHits+res.CacheMisses == 0 {
		t.Fatal("no cache lookups measured")
	}
}

// TestRunLoadShedTracking drives an admission-limited server and checks the
// 429 bookkeeping: sheds counted apart from errors and rejections, broken
// down per endpoint, and excluded from the latency distributions.
func TestRunLoadShedTracking(t *testing.T) {
	u, err := NewUniverse(TinyConfig(22))
	if err != nil {
		t.Fatal(err)
	}
	eng := &echoEngine{}
	srv, err := serve.New(u.Train(), eng, 5,
		serve.WithAdmission(admit.New(admit.Config{RatePerSec: 1, Burst: 10})))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// All driver workers share one client key (the loopback remote host), so
	// 120 requests against a burst of 10 must drain the bucket and shed.
	res, err := RunLoad(context.Background(), u, LoadConfig{
		BaseURL:     ts.URL,
		Requests:    120,
		Concurrency: 4,
		Mix:         LoadMix{Recommend: 9, Batch: 1},
		Seed:        17,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Rejected != 0 {
		t.Fatalf("errors=%d rejected=%d; 429s must not count as either", res.Errors, res.Rejected)
	}
	if res.Shed == 0 {
		t.Fatal("no sheds recorded against a burst-10 rate limit")
	}
	if got := res.Overall.Count + res.Shed; got != res.Requests {
		t.Fatalf("served %d + shed %d = %d, want %d", res.Overall.Count, res.Shed, got, res.Requests)
	}
	if want := float64(res.Shed) / float64(res.Requests); res.ShedRate != want {
		t.Fatalf("shed rate %v, want %v", res.ShedRate, want)
	}
	byEp := 0
	for _, n := range res.ShedByEndpoint {
		byEp += n
	}
	if byEp != res.Shed {
		t.Fatalf("per-endpoint sheds sum to %d, total %d", byEp, res.Shed)
	}
}

// TestRunLoadValidation pins the config error paths.
func TestRunLoadValidation(t *testing.T) {
	u, err := NewUniverse(TinyConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := RunLoad(ctx, u, LoadConfig{Requests: 10}); err == nil {
		t.Fatal("missing BaseURL accepted")
	}
	if _, err := RunLoad(ctx, u, LoadConfig{BaseURL: "http://x"}); err == nil {
		t.Fatal("zero request count accepted")
	}
	if _, err := RunLoad(ctx, u, LoadConfig{BaseURL: "http://x", Requests: 1, Mix: LoadMix{Recommend: -1, Batch: 1}}); err == nil {
		t.Fatal("empty mix accepted")
	}
}

// TestWriteBenchReport checks the artifact round-trips as JSON.
func TestWriteBenchReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	rep := &BenchReport{
		Universe: TinyConfig(3),
		Engine:   "echo",
		TopN:     5,
		Load:     LoadConfig{Requests: 10}.withDefaults(),
		Result:   &LoadResult{Requests: 10, CacheHitRate: 0.5},
	}
	if err := WriteBenchReport(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Engine != "echo" || back.Result.Requests != 10 || back.Load.Concurrency != 8 {
		t.Fatalf("report did not round-trip: %+v", back)
	}
}

// TestWriteClusterBenchReport checks the cluster comparison artifact
// round-trips as JSON.
func TestWriteClusterBenchReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	rep := &ClusterBenchReport{
		Universe:          TinyConfig(3),
		Engine:            "echo",
		Shards:            3,
		NodeCacheCapacity: 1024,
		WarmupRequests:    100,
		SingleNode:        &LoadResult{Requests: 100, ThroughputRPS: 50},
		Cluster:           &LoadResult{Requests: 100, ThroughputRPS: 150},
		Speedup:           3,
	}
	if err := WriteClusterBenchReport(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ClusterBenchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Shards != 3 || back.Speedup != 3 || back.SingleNode.ThroughputRPS != 50 || back.Cluster.ThroughputRPS != 150 {
		t.Fatalf("cluster report did not round-trip: %+v", back)
	}
}
