// Package simulate is the scale-testing subsystem: deterministic synthetic
// serving universes, interaction/request stream generators, a closed-loop
// HTTP load driver for the serving endpoints, and a data-driven scenario
// runner that expresses full system lifecycles (train → save → serve → ingest
// → crash → recover) as phase lists.
//
// Everything here is seeded and reproducible: the same configuration always
// produces the byte-identical dataset and the byte-identical event stream, so
// an end-to-end scenario failure can be replayed exactly, and two systems fed
// the same streams can be compared for equivalence (the backbone of the
// kill-and-recover tests).
//
// The package builds only on the internal layers (dataset, synth, serve) and
// deliberately knows nothing about pipelines or persistence: the scenario
// runner drives the System interface, which the facade binds to the real
// Pipeline/Server/Ingestor stack.
package simulate

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"ganc/internal/dataset"
	"ganc/internal/serve"
	"ganc/internal/synth"
	"ganc/internal/types"
)

// UniverseConfig describes a synthetic serving universe: the user/item
// population, the interaction volume and the long-tail shape. The zero values
// of the optional fields select ML-100K-like marginals (Zipf-skewed item
// popularity, log-normal user activity, whole-star ratings — see
// internal/synth for the generative model).
type UniverseConfig struct {
	// Name labels the dataset (default "sim").
	Name string
	// Users and Items size the universe.
	Users int
	Items int
	// Ratings is the target interaction count (default: 20 per user).
	Ratings int
	// ZipfExponent controls item-popularity skew (default 1.0; the paper's
	// datasets span roughly 0.95–1.35).
	ZipfExponent float64
	// MinRatingsPerUser is the paper's τ (default 5).
	MinRatingsPerUser int
	// RatingLevels are the admissible rating values (default whole stars 1–5).
	RatingLevels []float64
	// Seed makes the universe fully deterministic: the same seed produces the
	// byte-identical dataset.
	Seed int64
}

// withDefaults fills the optional fields.
func (c UniverseConfig) withDefaults() UniverseConfig {
	if c.Name == "" {
		c.Name = "sim"
	}
	if c.Ratings <= 0 {
		c.Ratings = 20 * c.Users
	}
	if c.ZipfExponent <= 0 {
		c.ZipfExponent = 1.0
	}
	if c.MinRatingsPerUser <= 0 {
		c.MinRatingsPerUser = 5
	}
	if len(c.RatingLevels) == 0 {
		c.RatingLevels = []float64{1, 2, 3, 4, 5}
	}
	return c
}

// Universe is a generated synthetic serving universe: the train set plus the
// sampling state the stream generators draw from.
type Universe struct {
	cfg   UniverseConfig
	train *dataset.Dataset

	// userCum and itemCum are cumulative sampling weights over the generated
	// universe: users weighted by activity (profile size) and items by
	// popularity (+1 smoothing), so streams reproduce the rich-get-richer
	// shape of the underlying data.
	userCum []float64
	itemCum []float64
}

// NewUniverse generates the universe described by cfg. Generation is
// deterministic: the same configuration yields the byte-identical dataset.
func NewUniverse(cfg UniverseConfig) (*Universe, error) {
	cfg = cfg.withDefaults()
	if cfg.Users <= 0 || cfg.Items <= 1 {
		return nil, fmt.Errorf("simulate: universe needs Users > 0 and Items > 1, got %d × %d", cfg.Users, cfg.Items)
	}
	d, err := synth.Generate(synth.Config{
		Name:                  cfg.Name,
		NumUsers:              cfg.Users,
		NumItems:              cfg.Items,
		NumRatings:            cfg.Ratings,
		ZipfExponent:          cfg.ZipfExponent,
		MinRatingsPerUser:     cfg.MinRatingsPerUser,
		RatingLevels:          cfg.RatingLevels,
		LatentDim:             8,
		NoiseStd:              0.35,
		PopularityRatingBoost: 0.12,
		Seed:                  cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("simulate: generate universe: %w", err)
	}
	u := &Universe{cfg: cfg, train: d}
	u.userCum = make([]float64, d.NumUsers())
	acc := 0.0
	for i := range u.userCum {
		acc += float64(len(d.UserRatings(types.UserID(i))) + 1)
		u.userCum[i] = acc
	}
	u.itemCum = make([]float64, d.NumItems())
	acc = 0.0
	pop := d.PopularityVector()
	for i := range u.itemCum {
		acc += float64(pop[i] + 1)
		u.itemCum[i] = acc
	}
	return u, nil
}

// Config returns the (default-filled) configuration the universe was
// generated from.
func (u *Universe) Config() UniverseConfig { return u.cfg }

// Train returns the generated dataset, used as the train set of the system
// under test.
func (u *Universe) Train() *dataset.Dataset { return u.train }

// WriteRatings serializes the dataset as CSV, the canonical byte form used by
// the determinism tests (same seed → byte-identical output).
func (u *Universe) WriteRatings(w io.Writer) error {
	return dataset.WriteRatings(w, u.train)
}

// sampleCum draws an index from a cumulative weight vector by binary search.
func sampleCum(cum []float64, rng *rand.Rand) int {
	x := rng.Float64() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// --- Event streams -------------------------------------------------------------

// EventStreamConfig shapes a deterministic interaction stream.
type EventStreamConfig struct {
	// NewUserRate is the probability an event comes from a user outside the
	// generated universe (interned on the fly by ingestion). The zero value
	// selects the default 0.05; pass a negative rate for a stream with no new
	// users at all (e.g. against engines that cannot score unseen users).
	NewUserRate float64
	// NewItemRate is the probability an event references a brand-new item.
	// Zero value selects the default 0.02; negative disables new items.
	NewItemRate float64
	// Seed drives the stream; the same seed always yields the byte-identical
	// event sequence.
	Seed int64
}

// EventStream deterministically generates interaction events against a
// universe: existing users are drawn proportionally to their activity,
// existing items proportionally to their popularity (the preferential-
// attachment shape ingestion sees in production), with a configurable share
// of brand-new users and items. Not safe for concurrent use; give each worker
// its own stream.
type EventStream struct {
	u        *Universe
	cfg      EventStreamConfig
	rng      *rand.Rand
	newUsers int
	newItems int
	// generated counts the events produced so far.
	generated int
}

// EventStream builds a stream over the universe. Zero-value rates select the
// defaults documented on EventStreamConfig.
func (u *Universe) EventStream(cfg EventStreamConfig) *EventStream {
	switch {
	case cfg.NewUserRate == 0:
		cfg.NewUserRate = 0.05
	case cfg.NewUserRate < 0:
		cfg.NewUserRate = 0
	}
	switch {
	case cfg.NewItemRate == 0:
		cfg.NewItemRate = 0.02
	case cfg.NewItemRate < 0:
		cfg.NewItemRate = 0
	}
	return &EventStream{u: u, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Next generates the next event of the stream. Brand-new identifiers embed
// the stream seed, so concurrent streams with distinct seeds (e.g. one per
// load worker) introduce distinct users/items instead of aliasing onto each
// other's "new" keys.
func (s *EventStream) Next() serve.IngestEvent {
	var ev serve.IngestEvent
	if s.rng.Float64() < s.cfg.NewUserRate {
		ev.User = fmt.Sprintf("sim-user-%d-%07d", s.cfg.Seed, s.newUsers)
		s.newUsers++
	} else {
		idx := sampleCum(s.u.userCum, s.rng)
		ev.User = s.u.train.UserInterner().Key(int32(idx))
	}
	if s.rng.Float64() < s.cfg.NewItemRate {
		ev.Item = fmt.Sprintf("sim-item-%d-%07d", s.cfg.Seed, s.newItems)
		s.newItems++
	} else {
		idx := sampleCum(s.u.itemCum, s.rng)
		ev.Item = s.u.train.ItemInterner().Key(int32(idx))
	}
	levels := s.u.cfg.RatingLevels
	ev.Value = levels[s.rng.Intn(len(levels))]
	s.generated++
	return ev
}

// NextBatch generates the next n events as one batch.
func (s *EventStream) NextBatch(n int) []serve.IngestEvent {
	batch := make([]serve.IngestEvent, n)
	for k := range batch {
		batch[k] = s.Next()
	}
	return batch
}

// Generated reports how many events the stream has produced.
func (s *EventStream) Generated() int { return s.generated }

// --- Request streams -----------------------------------------------------------

// RequestStreamConfig shapes a deterministic recommendation-request stream.
type RequestStreamConfig struct {
	// ZipfExponent skews request popularity across users (default 1.0): a
	// handful of hot users dominate, which is what makes the serving layer's
	// LRU cache meaningful under load.
	ZipfExponent float64
	// Seed drives the stream deterministically.
	Seed int64
}

// RequestStream deterministically generates the external user keys of
// /recommend traffic: a seeded permutation of the universe's users ranked by
// a Zipf law, so some users are requested far more often than others. Not
// safe for concurrent use; give each worker its own stream.
type RequestStream struct {
	u   *Universe
	rng *rand.Rand
	cum []float64
	// perm decorrelates request rank from user identifier.
	perm []int
}

// RequestStream builds a stream over the universe's users.
func (u *Universe) RequestStream(cfg RequestStreamConfig) *RequestStream {
	if cfg.ZipfExponent <= 0 {
		cfg.ZipfExponent = 1.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := u.train.NumUsers()
	perm := rng.Perm(n)
	cum := make([]float64, n)
	acc := 0.0
	for rank := 0; rank < n; rank++ {
		acc += 1.0 / math.Pow(float64(rank+1), cfg.ZipfExponent)
		cum[rank] = acc
	}
	return &RequestStream{u: u, rng: rng, cum: cum, perm: perm}
}

// NextUser returns the external key of the next requested user.
func (r *RequestStream) NextUser() string {
	rank := sampleCum(r.cum, r.rng)
	return r.u.train.UserInterner().Key(int32(r.perm[rank]))
}

// NextUsers returns the next n requested users (one batch request's payload).
func (r *RequestStream) NextUsers(n int) []string {
	users := make([]string, n)
	for k := range users {
		users[k] = r.NextUser()
	}
	return users
}
