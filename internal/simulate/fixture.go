package simulate

// Canonical universe fixtures. Every layer that needs a seeded synthetic
// universe — the simulate unit tests, the tier-2 scenario suites, the
// cmd/loadgen benchmark driver — used to declare its own copy of these
// configurations; they live here once so a size change (or a new standard
// benchmark shape) propagates everywhere. internal/simtest wraps them with
// testing.TB conveniences for test code.

// TinyConfig is the unit-test universe: big enough for non-degenerate
// streams and caches, small enough to generate in microseconds.
func TinyConfig(seed int64) UniverseConfig {
	return UniverseConfig{Users: 60, Items: 40, Ratings: 900, Seed: seed}
}

// E2EConfig is the tier-2 scenario universe: large enough to exercise real
// eviction/coalescing behavior but small enough for -race throughput.
func E2EConfig(seed int64) UniverseConfig {
	return UniverseConfig{Users: 400, Items: 300, Ratings: 8000, Seed: seed}
}

// StandardConfig is the standard serving benchmark universe (100k users ×
// 10k items, 1M ratings) behind the checked-in BENCH_serve.json and
// BENCH_cluster.json artifacts.
func StandardConfig(seed int64) UniverseConfig {
	return UniverseConfig{
		Name:         "loadgen",
		Users:        100_000,
		Items:        10_000,
		Ratings:      1_000_000,
		ZipfExponent: 1.1,
		Seed:         seed,
	}
}
