package simulate

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"

	"ganc/internal/admit"
	"ganc/internal/dataset"
	"ganc/internal/obs"
	"ganc/internal/serve"
	"ganc/internal/types"
)

// fakeSystem is an in-memory System: state is the ordered list of applied
// events, "snapshots" serialize that list to disk, the WAL mirrors the real
// ingestor's append-then-checkpoint contract. It lets the runner's sequencing
// and assertions be tested without training anything.
type fakeSystem struct {
	mu     sync.Mutex
	train  *dataset.Dataset
	events []serve.IngestEvent
	// walPath/ckptPath/every mirror EnableIngest.
	walPath  string
	ckptPath string
	every    int
	// checkpointed is the event count covered by the last checkpoint.
	checkpointed int
	sinceCkpt    int
	killed       bool
	// calls records the lifecycle for sequencing assertions.
	calls []string
}

// fakeState is the snapshot/WAL wire form.
type fakeState struct {
	Events []serve.IngestEvent `json:"events"`
}

func (f *fakeSystem) record(call string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = append(f.calls, call)
}

func (f *fakeSystem) Train(train *dataset.Dataset, topN int) error {
	f.record("train")
	f.train = train
	f.killed = false
	return nil
}

func (f *fakeSystem) Handler() (http.Handler, error) {
	if f.killed {
		return nil, fmt.Errorf("fake: killed")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/info", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(serve.InfoResponse{Version: 1})
	})
	mux.HandleFunc("/recommend", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(serve.RecommendResponse{User: r.URL.Query().Get("user")})
	})
	mux.HandleFunc("/recommend/batch", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(serve.BatchResponse{})
	})
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		var req serve.IngestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		if err := f.Ingest(r.Context(), req.Events); err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(serve.IngestResult{Applied: len(req.Events)})
	})
	return mux, nil
}

func (f *fakeSystem) Save(path string) error {
	f.record("save")
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeStateLocked(path)
}

func (f *fakeSystem) writeStateLocked(path string) error {
	data, err := json.Marshal(fakeState{Events: f.events})
	if err != nil {
		return err
	}
	f.checkpointed = len(f.events)
	return os.WriteFile(path, data, 0o644)
}

func (f *fakeSystem) Load(path string) error {
	f.record("load")
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var st fakeState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.events = st.Events
	f.checkpointed = len(st.Events)
	f.killed = false
	return nil
}

func (f *fakeSystem) EnableIngest(logPath, checkpointPath string, every int) error {
	f.record("enable-ingest")
	f.walPath, f.ckptPath, f.every = logPath, checkpointPath, every
	return nil
}

func (f *fakeSystem) Ingest(ctx context.Context, events []serve.IngestEvent) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed {
		return fmt.Errorf("fake: killed")
	}
	// WAL first, then state, then maybe checkpoint — the real contract.
	if f.walPath != "" {
		wal, err := os.OpenFile(f.walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		for _, ev := range events {
			line, _ := json.Marshal(ev)
			if _, err := wal.Write(append(line, '\n')); err != nil {
				wal.Close()
				return err
			}
		}
		if err := wal.Close(); err != nil {
			return err
		}
	}
	f.events = append(f.events, events...)
	f.sinceCkpt += len(events)
	if f.every > 0 && f.sinceCkpt >= f.every && f.ckptPath != "" {
		if err := f.writeStateLocked(f.ckptPath); err != nil {
			return err
		}
		f.sinceCkpt = 0
	}
	return nil
}

func (f *fakeSystem) Recover() (int, error) {
	f.record("recover")
	if f.walPath == "" {
		return 0, nil
	}
	data, err := os.ReadFile(f.walPath)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	replayed := 0
	for k, line := range lines {
		if line == "" || k < f.checkpointed {
			continue
		}
		var ev serve.IngestEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return replayed, err
		}
		f.events = append(f.events, ev)
		replayed++
	}
	return replayed, nil
}

func (f *fakeSystem) Kill() error {
	f.record("kill")
	f.mu.Lock()
	defer f.mu.Unlock()
	f.killed = true
	// A crash loses everything not persisted.
	f.events = nil
	return nil
}

func (f *fakeSystem) Fingerprint(ctx context.Context) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed {
		return nil, fmt.Errorf("fake: killed")
	}
	return canonicalEvents(f.events), nil
}

// canonicalEvents serializes applied events in the canonical fingerprint
// line form ("user\tv1,v2,…", sorted by user), so fake fingerprints compose
// with FilterCanonical exactly like real ones.
func canonicalEvents(events []serve.IngestEvent) []byte {
	perUser := make(map[string][]string)
	for _, ev := range events {
		perUser[ev.User] = append(perUser[ev.User], fmt.Sprintf("%s=%g", ev.Item, ev.Value))
	}
	lines := make([]string, 0, len(perUser))
	for user, vals := range perUser {
		lines = append(lines, user+"\t"+strings.Join(vals, ","))
	}
	sort.Strings(lines)
	return []byte(strings.Join(lines, "\n"))
}

// shardedFake is a multi-node fake: one fakeSystem per shard behind a
// hash-partitioning mux — the same topology the real cluster binding has,
// without any training. It implements ShardedSystem for the cluster-phase
// runner tests.
type shardedFake struct {
	shards []*fakeSystem
	n      int
	// paths remember the prefixes EnableIngest/Save derived per-shard files
	// from, so RestartShard can reload shard i alone.
	snapPrefix string
}

func newShardedFake(n int) *shardedFake {
	f := &shardedFake{n: n}
	for i := 0; i < n; i++ {
		f.shards = append(f.shards, &fakeSystem{})
	}
	return f
}

// owner assigns users to shards by a stable string hash.
func (f *shardedFake) owner(user string) int {
	h := 0
	for _, c := range user {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return h % f.n
}

func (f *shardedFake) shardPath(prefix string, i int) string {
	return fmt.Sprintf("%s-shard%03d", prefix, i)
}

func (f *shardedFake) Train(train *dataset.Dataset, topN int) error {
	for _, s := range f.shards {
		if err := s.Train(train, topN); err != nil {
			return err
		}
	}
	return nil
}

func (f *shardedFake) Handler() (http.Handler, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/info", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(serve.InfoResponse{Version: 1})
	})
	mux.HandleFunc("/recommend", func(w http.ResponseWriter, r *http.Request) {
		user := r.URL.Query().Get("user")
		s := f.shards[f.owner(user)]
		s.mu.Lock()
		dead := s.killed
		s.mu.Unlock()
		if dead {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "shard unavailable", "code": "shard_unavailable"})
			return
		}
		json.NewEncoder(w).Encode(serve.RecommendResponse{User: user})
	})
	mux.HandleFunc("/recommend/batch", func(w http.ResponseWriter, r *http.Request) {
		var req serve.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		for _, user := range req.Users {
			s := f.shards[f.owner(user)]
			s.mu.Lock()
			dead := s.killed
			s.mu.Unlock()
			if dead {
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(map[string]string{"error": "shard unavailable", "code": "shard_unavailable"})
				return
			}
		}
		json.NewEncoder(w).Encode(serve.BatchResponse{})
	})
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		var req serve.IngestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		if err := f.Ingest(r.Context(), req.Events); err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(serve.IngestResult{Applied: len(req.Events)})
	})
	return mux, nil
}

func (f *shardedFake) Save(path string) error {
	f.snapPrefix = path
	for i, s := range f.shards {
		if err := s.Save(f.shardPath(path, i)); err != nil {
			return err
		}
	}
	return nil
}

func (f *shardedFake) Load(path string) error {
	for i, s := range f.shards {
		if err := s.Load(f.shardPath(path, i)); err != nil {
			return err
		}
	}
	return nil
}

func (f *shardedFake) EnableIngest(logPath, checkpointPath string, every int) error {
	for i, s := range f.shards {
		log := ""
		if logPath != "" {
			log = f.shardPath(logPath, i)
		}
		ckpt := ""
		if checkpointPath != "" {
			ckpt = f.shardPath(checkpointPath, i)
		}
		if err := s.EnableIngest(log, ckpt, every); err != nil {
			return err
		}
	}
	return nil
}

func (f *shardedFake) Ingest(ctx context.Context, events []serve.IngestEvent) error {
	perShard := make(map[int][]serve.IngestEvent)
	for _, ev := range events {
		o := f.owner(ev.User)
		perShard[o] = append(perShard[o], ev)
	}
	for shard, evs := range perShard {
		if err := f.shards[shard].Ingest(ctx, evs); err != nil {
			return err
		}
	}
	return nil
}

func (f *shardedFake) Recover() (int, error) {
	total := 0
	for _, s := range f.shards {
		n, err := s.Recover()
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (f *shardedFake) Kill() error {
	for _, s := range f.shards {
		if err := s.Kill(); err != nil {
			return err
		}
	}
	return nil
}

func (f *shardedFake) Fingerprint(ctx context.Context) ([]byte, error) {
	var all []serve.IngestEvent
	for _, s := range f.shards {
		s.mu.Lock()
		if s.killed {
			s.mu.Unlock()
			return nil, fmt.Errorf("fake: shard killed")
		}
		all = append(all, s.events...)
		s.mu.Unlock()
	}
	return canonicalEvents(all), nil
}

// NumShards implements ShardedSystem.
func (f *shardedFake) NumShards() int { return f.n }

// ShardOwner implements ShardedSystem.
func (f *shardedFake) ShardOwner(userKey string) int { return f.owner(userKey) }

// KillShard implements ShardedSystem.
func (f *shardedFake) KillShard(shard int) error { return f.shards[shard].Kill() }

// RestartShard implements ShardedSystem: reload the shard's snapshot, then
// replay its WAL suffix.
func (f *shardedFake) RestartShard(shard int) (int, error) {
	s := f.shards[shard]
	if err := s.Load(s.ckptPath); err != nil {
		return 0, err
	}
	return s.Recover()
}

// ShardFingerprint implements ShardedSystem.
func (f *shardedFake) ShardFingerprint(ctx context.Context, shard int) ([]byte, error) {
	s := f.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed {
		return nil, fmt.Errorf("fake: shard killed")
	}
	return canonicalEvents(s.events), nil
}

// scenarioFixture is a small but real universe for runner tests.
func scenarioFixture() Scenario {
	return Scenario{
		Name:            "fake-lifecycle",
		Universe:        UniverseConfig{Users: 30, Items: 20, Ratings: 400, Seed: 5},
		TopN:            5,
		CheckpointEvery: 40,
		Seed:            17,
	}
}

// TestRunnerFullLifecycle drives every phase kind through fake systems and
// checks the sequencing, the shadow bookkeeping and the recovery equivalence.
func TestRunnerFullLifecycle(t *testing.T) {
	var systems []*fakeSystem
	r := &Runner{
		NewSystem: func() System {
			f := &fakeSystem{}
			systems = append(systems, f)
			return f
		},
		Dir: t.TempDir(),
	}
	sc := scenarioFixture()
	// Checkpoint cadence 45 with 30-event batches: checkpoint at 60 applied
	// events, leaving a 40-event WAL suffix for the recovery to replay.
	sc.CheckpointEvery = 45
	sc.Phases = []Phase{
		{Kind: PhaseTrain},
		{Kind: PhaseSave},
		{Kind: PhaseLoad},
		{Kind: PhaseServeUnderLoad, Requests: 60, Concurrency: 3},
		{Kind: PhaseIngestChurn, Events: 100, EventBatch: 30, Concurrency: 2},
		{Kind: PhaseKillAndRecover},
	}
	res, err := r.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) != 2 {
		t.Fatalf("expected a primary and a shadow, got %d systems", len(systems))
	}
	primary, shadow := systems[0], systems[1]
	if len(res.Phases) != len(sc.Phases) {
		t.Fatalf("recorded %d phases, want %d", len(res.Phases), len(sc.Phases))
	}

	if !res.Phases[2].ParityChecked {
		t.Fatal("load phase did not record its parity check")
	}

	churn := res.Phases[4]
	if churn.EventsApplied != 100 {
		t.Fatalf("churn applied %d events, want 100", churn.EventsApplied)
	}
	if churn.ReaderRequests == 0 || churn.ReaderErrors != 0 {
		t.Fatalf("churn readers: %d requests, %d errors", churn.ReaderRequests, churn.ReaderErrors)
	}

	kr := res.Phases[5]
	if !kr.ParityChecked {
		t.Fatal("kill-and-recover did not record its equivalence check")
	}
	if kr.Replayed != 40 {
		t.Fatalf("kill-and-recover replayed %d events, want the 40-event WAL suffix", kr.Replayed)
	}
	pFp, _ := primary.Fingerprint(context.Background())
	sFp, _ := shadow.Fingerprint(context.Background())
	if string(pFp) != string(sFp) {
		t.Fatal("runner accepted diverged primary/shadow states")
	}
	wantCalls := []string{"train", "enable-ingest", "save", "load", "kill", "load", "recover"}
	if got := strings.Join(primary.calls, ","); got != strings.Join(wantCalls, ",") {
		t.Fatalf("primary lifecycle %v, want %v", primary.calls, wantCalls)
	}
}

// TestRunnerClusterLifecycle drives the multi-node phases through sharded
// fakes: ingest churn routed per shard, a mid-load shard kill, and a
// restart-shard recovery whose owned-user fingerprint must match a
// single-node shadow fed exactly the drilled shard's routed events.
func TestRunnerClusterLifecycle(t *testing.T) {
	const drilled = 1
	var primary *shardedFake
	var shadow *fakeSystem
	r := &Runner{
		NewSystem: func() System {
			primary = newShardedFake(3)
			return primary
		},
		NewShadow: func() System {
			shadow = &fakeSystem{}
			return shadow
		},
		Dir: t.TempDir(),
	}
	sc := scenarioFixture()
	sc.CheckpointEvery = 0 // WAL-only durability: the restart must replay everything
	target := drilled
	sc.Phases = []Phase{
		{Kind: PhaseTrain},
		{Kind: PhaseSave},
		{Kind: PhaseIngestChurn, Events: 90, EventBatch: 30, Concurrency: 2},
		{Kind: PhaseServeUnderLoad, Requests: 200, Concurrency: 2, KillShardMid: &target, KillDelayMs: 1},
		{Kind: PhaseRestartShard, Shard: drilled},
		{Kind: PhaseIngestChurn, Events: 30, EventBatch: 10, Concurrency: 2},
	}
	res, err := r.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if shadow == nil {
		t.Fatal("no shadow was constructed")
	}
	shadow.mu.Lock()
	shadowEvents := len(shadow.events)
	for _, ev := range shadow.events {
		if primary.owner(ev.User) != drilled {
			t.Fatalf("shadow absorbed %q, owned by shard %d not %d", ev.User, primary.owner(ev.User), drilled)
		}
	}
	shadow.mu.Unlock()
	if shadowEvents == 0 {
		t.Fatal("shadow absorbed no events — the churn never routed anything to the drilled shard")
	}

	restart := res.Phases[4]
	if !restart.ParityChecked {
		t.Fatal("restart-shard did not assert shard recovery equivalence")
	}
	// The kill wiped the shard after the first churn's 90 events; WAL-only
	// durability means the restart replays exactly the shard's slice of
	// them. The event stream is deterministic, so the expected slice can be
	// recomputed from the scenario's seed.
	u, err := NewUniverse(sc.Universe)
	if err != nil {
		t.Fatal(err)
	}
	wantReplayed := 0
	for _, ev := range u.EventStream(EventStreamConfig{Seed: sc.Seed}).NextBatch(90) {
		if primary.owner(ev.User) == drilled {
			wantReplayed++
		}
	}
	if wantReplayed == 0 {
		t.Fatal("fixture stream routes nothing to the drilled shard")
	}
	if restart.Replayed != wantReplayed {
		t.Fatalf("restart replayed %d events, want the shard's full %d-event WAL", restart.Replayed, wantReplayed)
	}
	if restart.Shard != drilled {
		t.Fatalf("restart phase recorded shard %d, want %d", restart.Shard, drilled)
	}
	if res.Phases[3].Load == nil {
		t.Fatal("mid-kill serve phase recorded no load result")
	}
	// The post-restart churn must have run error-free against the healed
	// cluster (an error would have failed the run).
	if res.Phases[5].EventsApplied != 30 {
		t.Fatalf("post-restart churn applied %d events, want 30", res.Phases[5].EventsApplied)
	}
}

// TestRunnerClusterPhaseValidation: shard phases against single-node
// primaries and conflicting shard targets must be rejected.
func TestRunnerClusterPhaseValidation(t *testing.T) {
	ctx := context.Background()
	single := &Runner{NewSystem: func() System { return &fakeSystem{} }, Dir: t.TempDir()}
	sc := scenarioFixture()
	sc.Phases = []Phase{{Kind: PhaseTrain}, {Kind: PhaseKillShard, Shard: 0}}
	if _, err := single.Run(ctx, sc); err == nil || !strings.Contains(err.Error(), "sharded") {
		t.Fatalf("kill-shard against a single-node primary: %v", err)
	}

	sharded := &Runner{NewSystem: func() System { return newShardedFake(2) }, Dir: t.TempDir()}
	sc = scenarioFixture()
	sc.Phases = []Phase{{Kind: PhaseTrain}, {Kind: PhaseKillShard, Shard: 0}, {Kind: PhaseRestartShard, Shard: 1}}
	if _, err := sharded.Run(ctx, sc); err == nil || !strings.Contains(err.Error(), "one shard") {
		t.Fatalf("conflicting shard targets: %v", err)
	}
	sc.Phases = []Phase{{Kind: PhaseTrain}, {Kind: PhaseRestartShard, Shard: 7}}
	if _, err := sharded.Run(ctx, sc); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// TestFilterCanonical pins the fingerprint filter the shard parity check
// composes with.
func TestFilterCanonical(t *testing.T) {
	fp := []byte("alice\ti1,i2\nbob\ti3\ncarol\ti4")
	got := string(FilterCanonical(fp, func(u string) bool { return u != "bob" }))
	if got != "alice\ti1,i2\ncarol\ti4" {
		t.Fatalf("filtered fingerprint %q", got)
	}
	if out := FilterCanonical(nil, func(string) bool { return true }); len(out) != 0 {
		t.Fatalf("empty fingerprint filtered to %q", out)
	}
	if out := string(FilterCanonical(fp, func(string) bool { return false })); out != "" {
		t.Fatalf("reject-all filter left %q", out)
	}
}

// TestRunnerRejectsBadScenarios pins the validation paths.
func TestRunnerRejectsBadScenarios(t *testing.T) {
	r := &Runner{NewSystem: func() System { return &fakeSystem{} }, Dir: t.TempDir()}
	ctx := context.Background()
	sc := scenarioFixture()
	if _, err := r.Run(ctx, sc); err == nil {
		t.Fatal("scenario without phases accepted")
	}
	sc.Phases = []Phase{{Kind: PhaseSave}}
	if _, err := r.Run(ctx, sc); err == nil {
		t.Fatal("scenario not starting with train accepted")
	}
	sc.Phases = []Phase{{Kind: PhaseTrain}, {Kind: PhaseKind("explode")}}
	if _, err := r.Run(ctx, sc); err == nil {
		t.Fatal("unknown phase kind accepted")
	}
	if _, err := (&Runner{Dir: t.TempDir()}).Run(ctx, scenarioFixture()); err == nil {
		t.Fatal("runner without a factory accepted")
	}
}

// TestRunnerDetectsBrokenParity ensures the load phase's parity assertion has
// teeth: a system whose reload diverges must fail the scenario.
func TestRunnerDetectsBrokenParity(t *testing.T) {
	r := &Runner{
		NewSystem: func() System { return &divergingSystem{fakeSystem{}} },
		Dir:       t.TempDir(),
	}
	sc := scenarioFixture()
	sc.Phases = []Phase{{Kind: PhaseTrain}, {Kind: PhaseSave}, {Kind: PhaseLoad}}
	_, err := r.Run(context.Background(), sc)
	if err == nil || !strings.Contains(err.Error(), "parity") {
		t.Fatalf("broken parity not detected, err=%v", err)
	}
}

// divergingSystem corrupts its state on reload.
type divergingSystem struct{ fakeSystem }

func (d *divergingSystem) Load(path string) error {
	if err := d.fakeSystem.Load(path); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.events = append(d.events, serve.IngestEvent{User: "ghost", Item: "ghost", Value: 1})
	return nil
}

// admittedFake wraps fakeSystem's handler with real admission control and
// metrics, mirroring the facade's middleware order: instrumentation outermost
// (sheds are counted), then admission, then the mux, with /metrics mounted.
type admittedFake struct {
	fakeSystem
	cfg admit.Config
}

func (f *admittedFake) Handler() (http.Handler, error) {
	inner, err := f.fakeSystem.Handler()
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	ctrl := admit.New(f.cfg)
	ctrl.Register(reg)
	mux := http.NewServeMux()
	mux.Handle("/", inner)
	mux.Handle("/metrics", reg.Handler())
	hm := obs.NewHTTPMetrics(reg, nil, nil, nil)
	return hm.Wrap(ctrl.Middleware(mux)), nil
}

// TestRunnerOverloadPhase drives the overload phase against an
// admission-limited system: the load must shed without 5xx, the typed-429
// probe must pass, and the mid-phase /metrics scrape must validate.
func TestRunnerOverloadPhase(t *testing.T) {
	r := &Runner{
		NewSystem: func() System {
			return &admittedFake{cfg: admit.Config{RatePerSec: 1, Burst: 8}}
		},
		Dir: t.TempDir(),
	}
	sc := scenarioFixture()
	sc.Phases = []Phase{
		{Kind: PhaseTrain},
		{Kind: PhaseOverload, Requests: 150, Concurrency: 8},
	}
	res, err := r.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	pr := res.Phases[1]
	if pr.Load == nil {
		t.Fatal("overload phase recorded no load result")
	}
	if pr.Load.Errors != 0 {
		t.Fatalf("overload produced %d server-side errors", pr.Load.Errors)
	}
	if pr.Load.Shed == 0 {
		t.Fatal("overload shed nothing against a burst-8 rate limit")
	}
	if !pr.MetricsValidated {
		t.Fatal("overload phase did not validate the /metrics scrape")
	}
}

// TestRunnerOverloadRequiresShedding gives the overload phase a system
// without admission control: the phase must fail rather than pass vacuously.
func TestRunnerOverloadRequiresShedding(t *testing.T) {
	r := &Runner{NewSystem: func() System { return &fakeSystem{} }, Dir: t.TempDir()}
	sc := scenarioFixture()
	sc.Phases = []Phase{
		{Kind: PhaseTrain},
		{Kind: PhaseOverload, Requests: 40, Concurrency: 4},
	}
	_, err := r.Run(context.Background(), sc)
	if err == nil || !strings.Contains(err.Error(), "shed nothing") {
		t.Fatalf("overload without admission control passed, err=%v", err)
	}
}

// TestCanonicalRecommendations pins the fingerprint serialization: sorted by
// external user key, items in rank order, stable across map iteration.
func TestCanonicalRecommendations(t *testing.T) {
	b := dataset.NewBuilder("c", 4)
	b.Add("u-b", "i-1", 5)
	b.Add("u-a", "i-2", 4)
	d := b.Build()
	recs := types.Recommendations{
		0: {1}, // u-b → i-2
		1: {0}, // u-a → i-1
	}
	got := string(CanonicalRecommendations(d, recs))
	want := "u-a\ti-1\nu-b\ti-2"
	if got != want {
		t.Fatalf("canonical form %q, want %q", got, want)
	}
	if again := string(CanonicalRecommendations(d, recs)); again != got {
		t.Fatal("canonical form is not stable")
	}
}
