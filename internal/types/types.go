// Package types defines the shared vocabulary of the GANC library: user and
// item identifiers, ratings, and the string-interning tables that map external
// dataset identifiers (arbitrary strings or sparse integer keys) to the dense
// zero-based indices every other package operates on.
//
// Keeping these definitions in a leaf package lets the data layer, the
// recommenders, the re-ranking framework and the evaluation harness agree on
// the representation of a rating without importing each other.
package types

import (
	"fmt"
	"sort"
	"sync"
)

// UserID is a dense, zero-based index identifying a user within a Dataset.
// It is assigned by an Interner in order of first appearance.
type UserID int32

// ItemID is a dense, zero-based index identifying an item within a Dataset.
type ItemID int32

// InvalidUser and InvalidItem are sentinel identifiers returned by lookups
// that fail. They never appear inside a valid Dataset.
const (
	InvalidUser UserID = -1
	InvalidItem ItemID = -1
)

// Rating is a single observed interaction: user u gave item i the value
// Value. Values are kept as float64 so that datasets with half-star
// increments (ML-10M) or rescaled scales (MovieTweetings mapped onto [1,5])
// flow through unchanged.
type Rating struct {
	User  UserID
	Item  ItemID
	Value float64
}

// String implements fmt.Stringer for debugging output.
func (r Rating) String() string {
	return fmt.Sprintf("Rating{u=%d i=%d v=%.2f}", r.User, r.Item, r.Value)
}

// Interner maps external string keys to dense indices. The zero value is not
// usable; construct with NewInterner or NewInternerFromKeys.
//
// An Interner is safe for concurrent use: lookups take a read lock only, so
// the serving hot path (key → index → key translation) never serializes, and
// streaming ingestion can intern new users and items while requests are in
// flight.
type Interner struct {
	mu      sync.RWMutex
	toIndex map[string]int32
	toKey   []string
}

// NewInterner returns an empty interner with capacity hint n.
func NewInterner(n int) *Interner {
	if n < 0 {
		n = 0
	}
	return &Interner{
		toIndex: make(map[string]int32, n),
		toKey:   make([]string, 0, n),
	}
}

// NewInternerFromKeys rebuilds an interner from a key list in index order
// (the inverse of Keys, used when loading a persisted dataset snapshot).
func NewInternerFromKeys(keys []string) *Interner {
	in := NewInterner(len(keys))
	for _, k := range keys {
		in.Intern(k)
	}
	return in
}

// Intern returns the dense index for key, assigning the next free index if
// the key has not been seen before.
func (in *Interner) Intern(key string) int32 {
	in.mu.RLock()
	idx, ok := in.toIndex[key]
	in.mu.RUnlock()
	if ok {
		return idx
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if idx, ok := in.toIndex[key]; ok {
		return idx
	}
	idx = int32(len(in.toKey))
	in.toIndex[key] = idx
	in.toKey = append(in.toKey, key)
	return idx
}

// Lookup returns the dense index for key and whether it has been interned.
func (in *Interner) Lookup(key string) (int32, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	idx, ok := in.toIndex[key]
	return idx, ok
}

// Key returns the external key for a dense index. It panics if idx is out of
// range, mirroring slice semantics.
func (in *Interner) Key(idx int32) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.toKey[idx]
}

// Len reports how many distinct keys have been interned.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.toKey)
}

// Keys returns a copy of all interned keys in index order.
func (in *Interner) Keys() []string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	out := make([]string, len(in.toKey))
	copy(out, in.toKey)
	return out
}

// ScoredItem pairs an item with a model score. It is the unit of currency of
// every ranking produced in this library.
type ScoredItem struct {
	Item  ItemID
	Score float64
}

// SortScoredDesc sorts items by descending score, breaking ties by ascending
// item identifier so that rankings are deterministic across runs.
func SortScoredDesc(items []ScoredItem) {
	sort.Slice(items, func(a, b int) bool {
		if items[a].Score != items[b].Score {
			return items[a].Score > items[b].Score
		}
		return items[a].Item < items[b].Item
	})
}

// TopNSet is the ordered top-N recommendation list for a single user. The
// first element is the highest-ranked item.
type TopNSet []ItemID

// Contains reports whether the set includes item i. Top-N sets are small
// (N ≤ a few dozen) so a linear scan is faster than building a map.
func (p TopNSet) Contains(i ItemID) bool {
	for _, it := range p {
		if it == i {
			return true
		}
	}
	return false
}

// Clone returns a copy of the set.
func (p TopNSet) Clone() TopNSet {
	out := make(TopNSet, len(p))
	copy(out, p)
	return out
}

// Recommendations is a collection of top-N sets, indexed by UserID. Users
// with no recommendations have a nil entry.
type Recommendations map[UserID]TopNSet

// NumUsers reports how many users have a non-empty top-N set.
func (r Recommendations) NumUsers() int {
	n := 0
	for _, p := range r {
		if len(p) > 0 {
			n++
		}
	}
	return n
}

// SortedUsers returns the collection's user identifiers in ascending order.
// Iterating a Recommendations map directly follows Go's randomized map order,
// which makes floating-point aggregates and printed tables differ run to run;
// every output and evaluation path iterates via SortedUsers instead.
func (r Recommendations) SortedUsers() []UserID {
	users := make([]UserID, 0, len(r))
	for u := range r {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
	return users
}

// DistinctItems returns the set of distinct items appearing anywhere in the
// collection.
func (r Recommendations) DistinctItems() map[ItemID]struct{} {
	out := make(map[ItemID]struct{})
	for _, p := range r {
		for _, i := range p {
			out[i] = struct{}{}
		}
	}
	return out
}

// ItemFrequencies counts how often each item is recommended across all users.
func (r Recommendations) ItemFrequencies() map[ItemID]int {
	out := make(map[ItemID]int)
	for _, p := range r {
		for _, i := range p {
			out[i]++
		}
	}
	return out
}
