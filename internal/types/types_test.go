package types

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInternerAssignsDenseIndices(t *testing.T) {
	in := NewInterner(4)
	a := in.Intern("alice")
	b := in.Intern("bob")
	c := in.Intern("carol")
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("expected dense indices 0,1,2 got %d,%d,%d", a, b, c)
	}
	if in.Len() != 3 {
		t.Fatalf("Len = %d, want 3", in.Len())
	}
}

func TestInternerIsIdempotent(t *testing.T) {
	in := NewInterner(0)
	first := in.Intern("x")
	second := in.Intern("x")
	if first != second {
		t.Fatalf("re-interning returned a new index: %d vs %d", first, second)
	}
	if in.Len() != 1 {
		t.Fatalf("Len = %d, want 1", in.Len())
	}
}

func TestInternerLookupAndKeyRoundTrip(t *testing.T) {
	in := NewInterner(0)
	keys := []string{"u1", "u2", "u3", "some-long-key"}
	for _, k := range keys {
		in.Intern(k)
	}
	for _, k := range keys {
		idx, ok := in.Lookup(k)
		if !ok {
			t.Fatalf("Lookup(%q) missing", k)
		}
		if got := in.Key(idx); got != k {
			t.Fatalf("Key(Lookup(%q)) = %q", k, got)
		}
	}
	if _, ok := in.Lookup("never-seen"); ok {
		t.Fatal("Lookup of unseen key reported ok")
	}
}

func TestInternerKeysReturnsCopy(t *testing.T) {
	in := NewInterner(0)
	in.Intern("a")
	in.Intern("b")
	ks := in.Keys()
	ks[0] = "mutated"
	if in.Key(0) != "a" {
		t.Fatal("Keys() exposed internal storage")
	}
}

func TestSortScoredDescOrdersByScoreThenItem(t *testing.T) {
	items := []ScoredItem{
		{Item: 5, Score: 0.3},
		{Item: 2, Score: 0.9},
		{Item: 9, Score: 0.9},
		{Item: 1, Score: 0.1},
	}
	SortScoredDesc(items)
	wantOrder := []ItemID{2, 9, 5, 1}
	for k, w := range wantOrder {
		if items[k].Item != w {
			t.Fatalf("position %d: got item %d want %d (full: %v)", k, items[k].Item, w, items)
		}
	}
}

func TestSortScoredDescIsDeterministicUnderTies(t *testing.T) {
	// Property: shuffling the input never changes the sorted output when all
	// scores are tied, because ties break on the item identifier.
	base := make([]ScoredItem, 50)
	for i := range base {
		base[i] = ScoredItem{Item: ItemID(i), Score: 1.0}
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		shuffled := make([]ScoredItem, len(base))
		copy(shuffled, base)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		SortScoredDesc(shuffled)
		for i := range shuffled {
			if shuffled[i].Item != ItemID(i) {
				t.Fatalf("trial %d: tie-break not deterministic at %d: %v", trial, i, shuffled[i])
			}
		}
	}
}

func TestSortScoredDescProperty(t *testing.T) {
	// Property: after sorting, scores are non-increasing.
	f := func(scores []float64) bool {
		items := make([]ScoredItem, len(scores))
		for i, s := range scores {
			items[i] = ScoredItem{Item: ItemID(i), Score: s}
		}
		SortScoredDesc(items)
		return sort.SliceIsSorted(items, func(a, b int) bool {
			if items[a].Score != items[b].Score {
				return items[a].Score > items[b].Score
			}
			return items[a].Item < items[b].Item
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTopNSetContains(t *testing.T) {
	p := TopNSet{3, 1, 4, 1, 5}
	if !p.Contains(4) {
		t.Fatal("Contains(4) = false")
	}
	if p.Contains(9) {
		t.Fatal("Contains(9) = true")
	}
	var empty TopNSet
	if empty.Contains(0) {
		t.Fatal("empty set claims to contain 0")
	}
}

func TestTopNSetCloneIsIndependent(t *testing.T) {
	p := TopNSet{1, 2, 3}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestRecommendationsAggregates(t *testing.T) {
	recs := Recommendations{
		0: {1, 2, 3},
		1: {2, 3, 4},
		2: {},
	}
	if got := recs.NumUsers(); got != 2 {
		t.Fatalf("NumUsers = %d, want 2 (empty sets excluded)", got)
	}
	distinct := recs.DistinctItems()
	if len(distinct) != 4 {
		t.Fatalf("DistinctItems = %d items, want 4", len(distinct))
	}
	freq := recs.ItemFrequencies()
	if freq[2] != 2 || freq[1] != 1 || freq[4] != 1 {
		t.Fatalf("unexpected frequencies: %v", freq)
	}
}

func TestRatingString(t *testing.T) {
	r := Rating{User: 3, Item: 7, Value: 4.5}
	if got := r.String(); got != "Rating{u=3 i=7 v=4.50}" {
		t.Fatalf("String() = %q", got)
	}
}
