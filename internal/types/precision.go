package types

import "fmt"

// ScoringPrecision selects the numeric tier a model's bulk scoring hot path
// runs at. The float64 tier is the precision reference: pointwise Score and
// bulk ScoreUser agree bit-for-bit. The float32 and int8 tiers trade
// precision for raw speed (contiguous float32 blocks with unrolled kernels,
// symmetric int8 quantization with per-row scales); their bulk scores agree
// with the float64 reference only up to documented tolerances (DESIGN.md
// §12), which is why they are opt-in per pipeline rather than the default.
type ScoringPrecision uint8

const (
	// PrecisionF64 is the exact float64 reference path (the default).
	PrecisionF64 ScoringPrecision = iota
	// PrecisionF32 scores from contiguous float32 factor blocks through
	// unrolled 8-wide kernels.
	PrecisionF32
	// PrecisionInt8 scores from symmetric int8-quantized factor blocks with
	// per-row scales (the fastest, least precise tier).
	PrecisionInt8
)

// String returns the stable textual form used by flags, snapshots and logs.
func (p ScoringPrecision) String() string {
	switch p {
	case PrecisionF64:
		return "f64"
	case PrecisionF32:
		return "f32"
	case PrecisionInt8:
		return "int8"
	default:
		return fmt.Sprintf("precision(%d)", uint8(p))
	}
}

// ParseScoringPrecision parses the textual form produced by String. The
// empty string maps to PrecisionF64 so zero-valued snapshot fields from
// pre-precision format versions load as the exact tier.
func ParseScoringPrecision(s string) (ScoringPrecision, error) {
	switch s {
	case "", "f64":
		return PrecisionF64, nil
	case "f32":
		return PrecisionF32, nil
	case "int8":
		return PrecisionInt8, nil
	default:
		return PrecisionF64, fmt.Errorf("types: unknown scoring precision %q (want f64, f32 or int8)", s)
	}
}
