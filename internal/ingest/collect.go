package ingest

// CollectUserEvents scans the write-ahead log at path and returns, for every
// user accepted by keep (nil keeps everyone), that user's events in log order
// — the per-user history slice a live migration ships to the user's next
// owner. Because the log is append-only and never truncated, the returned
// slices are each user's complete interaction history as this shard saw it.
// The second result is the log's last sequence number (the scan horizon, so a
// caller can detect appends that raced the scan). A missing log collects
// nothing: a shard that never ingested has no history to move.
func CollectUserEvents(path string, keep func(user string) bool) (map[string][]Event, uint64, error) {
	users := make(map[string][]Event)
	var last uint64
	err := ReplayLog(path, 0, func(seq uint64, ev Event) error {
		last = seq
		if keep == nil || keep(ev.User) {
			users[ev.User] = append(users[ev.User], ev)
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return users, last, nil
}
