package ingest

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedWAL builds a healthy three-record log in its exact wire form.
func fuzzSeedWAL() []byte {
	return []byte(`{"user":"u0000001","item":"i0000002","value":4}
{"user":"u0000002","item":"i0000007","value":5}
{"user":"sim-user-0000001","item":"i0000001","value":1}
`)
}

// FuzzLogOpenAndReplay throws arbitrary bytes at the write-ahead log's
// recovery path. The contract: OpenLog never panics; it either repairs the
// file (torn trailing records are truncated away) or fails with the typed
// ErrCorruptLog; after a successful open, the file is clean — an append must
// succeed and a reopen must count exactly one more record. ReplayLog on the
// repaired file must never fail with anything but ErrCorruptLog (arbitrary
// valid-JSON lines may still not decode as events — typed, not a panic).
func FuzzLogOpenAndReplay(f *testing.F) {
	valid := fuzzSeedWAL()
	f.Add(valid)
	f.Add([]byte{})
	// Torn trailing record (no newline): legitimately repaired.
	f.Add(append(append([]byte(nil), valid...), []byte(`{"user":"u3","it`)...))
	// Corruption mid-file: invalid record with data after it.
	f.Add([]byte("{\"user\":\"a\",\"item\":\"b\",\"value\":1}\ngarbage-not-json\n{\"user\":\"c\",\"item\":\"d\",\"value\":2}\n"))
	// Valid JSON that is not an event object.
	f.Add([]byte("5\n[1,2,3]\n\"quoted\"\n"))
	// Blank lines interleaved.
	f.Add([]byte("\n\n{\"user\":\"a\",\"item\":\"b\",\"value\":1}\n\n"))
	// Binary junk.
	f.Add([]byte{0x00, 0xFF, 0x47, 0x41, 0x4E, 0x43, 0x0A, 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "events.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := OpenLog(path)
		if err != nil {
			if !errors.Is(err, ErrCorruptLog) {
				t.Fatalf("untyped open error %v (input %d bytes)", err, len(data))
			}
			return
		}
		seq0 := l.Seq()
		if _, err := l.Append([]Event{{User: "fuzz-user", Item: "fuzz-item", Value: 3}}); err != nil {
			t.Fatalf("append to a repaired log failed: %v", err)
		}
		if got := l.Seq(); got != seq0+1 {
			t.Fatalf("sequence after append %d, want %d", got, seq0+1)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// Reopen: the repaired-and-appended file must be fully clean.
		l2, err := OpenLog(path)
		if err != nil {
			t.Fatalf("reopen after repair failed: %v", err)
		}
		if got := l2.Seq(); got != seq0+1 {
			t.Fatalf("reopened sequence %d, want %d", got, seq0+1)
		}
		l2.Close()

		// Replay sees every record; decode failures on arbitrary-JSON lines
		// must surface as ErrCorruptLog, never panic.
		var replayed uint64
		err = ReplayLog(path, 0, func(seq uint64, ev Event) error {
			replayed++
			return nil
		})
		if err != nil {
			if !errors.Is(err, ErrCorruptLog) {
				t.Fatalf("untyped replay error %v", err)
			}
			return
		}
		if replayed != seq0+1 {
			t.Fatalf("replayed %d records, reopen counted %d", replayed, seq0+1)
		}
	})
}

// FuzzReplayCursor checks the suffix-replay arithmetic on healthy logs: for
// any cursor, replay must deliver exactly the records after it, in order.
func FuzzReplayCursor(f *testing.F) {
	f.Add(uint64(0), 5)
	f.Add(uint64(3), 3)
	f.Add(uint64(10), 2)
	f.Fuzz(func(t *testing.T, after uint64, n int) {
		if n < 0 || n > 200 {
			t.Skip()
		}
		path := filepath.Join(t.TempDir(), "events.wal")
		l, err := OpenLog(path)
		if err != nil {
			t.Fatal(err)
		}
		events := make([]Event, n)
		for k := range events {
			events[k] = Event{User: "u", Item: "i", Value: float64(k)}
		}
		if n > 0 {
			if _, err := l.Append(events); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		want := 0
		if after < uint64(n) {
			want = n - int(after)
		}
		got := 0
		lastSeq := after
		err = ReplayLog(path, after, func(seq uint64, ev Event) error {
			if seq != lastSeq+1 {
				t.Fatalf("out-of-order replay: seq %d after %d", seq, lastSeq)
			}
			lastSeq = seq
			if ev.Value != float64(seq-1) {
				t.Fatalf("record %d carries value %v", seq, ev.Value)
			}
			got++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("replayed %d records after cursor %d of %d, want %d", got, after, n, want)
		}
	})
}
