package ingest

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ganc/internal/dataset"
	"ganc/internal/longtail"
	"ganc/internal/recommender"
	"ganc/internal/serve"
	"ganc/internal/types"
)

// testDataset builds a small dataset with string keys u0.., i0.. so ingested
// events can reference both existing and brand-new users/items.
func testDataset(t *testing.T, numUsers, numItems, ratings int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("ingest-test", ratings)
	for k := 0; k < ratings; k++ {
		u := rng.Intn(numUsers)
		i := rng.Intn(numItems)
		b.Add(fmt.Sprintf("u%d", u), fmt.Sprintf("i%d", i), float64(1+rng.Intn(5)))
	}
	return b.Build()
}

func testState(t *testing.T, d *dataset.Dataset) *State {
	t.Helper()
	prefs, err := longtail.Estimate(longtail.ModelActivity, d, nil, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	return NewStateFromDataset(d, prefs, 5)
}

// popEngine is the minimal engine rebuild used across these tests: a Pop
// model constructed from the incrementally maintained counts.
func popEngine(s *State) (serve.Engine, error) {
	return &recommender.TopNEngine{
		Model: recommender.NewPopFromCounts(s.PopCounts),
		Train: s.Train,
		N:     5,
	}, nil
}

func randomEvents(n int, seed int64) []Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]Event, n)
	for k := range events {
		// ~20% of events reference users/items beyond the cold universe.
		events[k] = Event{
			User:  fmt.Sprintf("u%d", rng.Intn(25)),
			Item:  fmt.Sprintf("i%d", rng.Intn(19)),
			Value: float64(1 + rng.Intn(5)),
		}
	}
	return events
}

// TestIncrementalMatchesRecount checks that the incrementally maintained
// statistics equal a from-scratch recount of the extended dataset.
func TestIncrementalMatchesRecount(t *testing.T) {
	d := testDataset(t, 20, 15, 300, 7)
	s := testState(t, d)
	ing, err := New(Config{State: s, Rebuild: popEngine})
	if err != nil {
		t.Fatal(err)
	}
	events := randomEvents(200, 11)
	for lo := 0; lo < len(events); lo += 17 {
		hi := lo + 17
		if hi > len(events) {
			hi = len(events)
		}
		if _, err := ing.Apply(context.Background(), events[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	ing.View(func(s *State) {
		want := s.Train.PopularityVector()
		if len(want) != len(s.PopCounts) {
			t.Fatalf("pop counts cover %d items, dataset has %d", len(s.PopCounts), len(want))
		}
		for i := range want {
			if want[i] != s.PopCounts[i] {
				t.Fatalf("item %d: incremental count %d != recount %d", i, s.PopCounts[i], want[i])
			}
		}
		if got, want := s.GlobalMean(), s.Train.MeanRating(); got != want {
			t.Fatalf("incremental global mean %v != dataset mean %v", got, want)
		}
		// Adjacency must be sorted and deduplicated for every user.
		for u := 0; u < s.Train.NumUsers(); u++ {
			items := s.Train.UserItemsSorted(types.UserID(u))
			for k := 1; k < len(items); k++ {
				if items[k] <= items[k-1] {
					t.Fatalf("user %d adjacency not strictly sorted: %v", u, items)
				}
			}
		}
		if s.AppliedSeq != uint64(len(events)) {
			t.Fatalf("applied seq %d, want %d", s.AppliedSeq, len(events))
		}
	})
}

// TestCheckpointRestoreEquivalence is the acceptance property: ingesting a
// stream uninterrupted and ingesting it with a mid-stream checkpoint +
// restore + log replay must land on identical Pop and Dyn state.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	dir := t.TempDir()
	events := randomEvents(120, 23)

	// Uninterrupted reference run (no log, no checkpoints).
	refState := testState(t, testDataset(t, 20, 15, 300, 7))
	ref, err := New(Config{State: refState, Rebuild: popEngine})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Apply(context.Background(), events); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: WAL + checkpoint every 50 events. The "checkpoint"
	// captures the state the way the facade snapshot would: deep copies of
	// the incremental statistics plus the cursor.
	type checkpoint struct {
		seq       uint64
		pop       []int
		dyn       []int
		train     *dataset.Dataset
		prefs     *longtail.Preferences
		avgSums   []float64
		avgCounts []int
		totalSum  float64
		totalCnt  int
	}
	var last checkpoint
	save := func(s *State) error {
		last = checkpoint{
			seq:       s.AppliedSeq,
			pop:       append([]int(nil), s.PopCounts...),
			dyn:       append([]int(nil), s.DynFreq...),
			train:     s.Train,
			prefs:     s.Prefs.Clone(),
			avgSums:   append([]float64(nil), s.AvgSums...),
			avgCounts: append([]int(nil), s.AvgCounts...),
			totalSum:  s.TotalSum,
			totalCnt:  s.TotalCount,
		}
		return nil
	}
	logPath := filepath.Join(dir, "events.log")
	wal, err := OpenLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	liveState := testState(t, testDataset(t, 20, 15, 300, 7))
	live, err := New(Config{State: liveState, Rebuild: popEngine, Log: wal, Checkpoint: save, CheckpointEvery: 70})
	if err != nil {
		t.Fatal(err)
	}
	// Apply in batches of 30: the only checkpoint lands at 90 applied events,
	// leaving a 30-event log suffix for recovery to replay.
	for lo := 0; lo < len(events); lo += 30 {
		if _, err := live.Apply(context.Background(), events[lo:lo+30]); err != nil {
			t.Fatal(err)
		}
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	if last.seq == 0 || last.seq == uint64(len(events)) {
		// The final checkpoint at seq 120 makes replay trivial; rewind to the
		// first one (seq 60) to exercise a genuine suffix replay.
		t.Fatalf("unexpected checkpoint cursor %d", last.seq)
	}

	// "Crash": rebuild a fresh ingestor from the checkpointed state and the
	// surviving log, replay, and compare against the uninterrupted run.
	restored := &State{
		Train:      last.train,
		Prefs:      last.prefs,
		PrefFill:   liveState.PrefFill,
		PopCounts:  last.pop,
		AvgSums:    last.avgSums,
		AvgCounts:  last.avgCounts,
		TotalSum:   last.totalSum,
		TotalCount: last.totalCnt,
		AvgLambda:  5,
		DynFreq:    last.dyn,
		AppliedSeq: last.seq,
	}
	wal2, err := OpenLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	revived, err := New(Config{State: restored, Rebuild: popEngine, Log: wal2})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := revived.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(events) - int(last.seq); replayed != want {
		t.Fatalf("replayed %d events, want %d", replayed, want)
	}

	ref.View(func(want *State) {
		revived.View(func(got *State) {
			if got.AppliedSeq != want.AppliedSeq {
				t.Fatalf("seq %d != %d", got.AppliedSeq, want.AppliedSeq)
			}
			assertIntsEqual(t, "pop counts", got.PopCounts, want.PopCounts)
			assertIntsEqual(t, "dyn freq", got.DynFreq, want.DynFreq)
			if got.TotalSum != want.TotalSum || got.TotalCount != want.TotalCount {
				t.Fatalf("global stats (%v,%d) != (%v,%d)", got.TotalSum, got.TotalCount, want.TotalSum, want.TotalCount)
			}
			if got.Train.NumRatings() != want.Train.NumRatings() {
				t.Fatalf("ratings %d != %d", got.Train.NumRatings(), want.Train.NumRatings())
			}
		})
	})
}

func assertIntsEqual(t *testing.T, label string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: index %d: %d != %d", label, i, got[i], want[i])
		}
	}
}

// TestTornTrailingLogRecord simulates a crash mid-append: the partial final
// record must be truncated on open (not counted, not concatenated onto by
// later appends) and skipped on replay, while mid-file corruption still
// fails loudly.
func TestTornTrailingLogRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.log")
	wal, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Append([]Event{{User: "u1", Item: "i1", Value: 5}, {User: "u2", Item: "i2", Value: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: a partial JSON line with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"user":"u3","it`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Replay tolerates the torn tail.
	var replayed []Event
	if err := ReplayLog(path, 0, func(_ uint64, ev Event) error {
		replayed = append(replayed, ev)
		return nil
	}); err != nil {
		t.Fatalf("replay over a torn tail must succeed, got %v", err)
	}
	if len(replayed) != 2 {
		t.Fatalf("replayed %d records, want 2", len(replayed))
	}

	// Re-opening repairs the file and appends continue cleanly.
	wal2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if wal2.Seq() != 2 {
		t.Fatalf("seq after repair = %d, want 2", wal2.Seq())
	}
	if _, err := wal2.Append([]Event{{User: "u3", Item: "i3", Value: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := wal2.Close(); err != nil {
		t.Fatal(err)
	}
	replayed = nil
	if err := ReplayLog(path, 0, func(_ uint64, ev Event) error {
		replayed = append(replayed, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 3 || replayed[2].User != "u3" || replayed[2].Item != "i3" {
		t.Fatalf("after repair+append, replayed %v", replayed)
	}

	// Mid-file corruption (garbage followed by more records) must error.
	if err := os.WriteFile(path, []byte("garbage not json\n{\"user\":\"u1\",\"item\":\"i1\",\"value\":5}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ReplayLog(path, 0, func(uint64, Event) error { return nil }); err == nil {
		t.Fatal("mid-file corruption must fail replay")
	}
	if _, err := OpenLog(path); err == nil {
		t.Fatal("mid-file corruption must fail open")
	}
}

// TestIngestSwapsServedEngine wires an Ingestor behind a live server and
// checks that ingested events change what is served, through a versioned
// swap, while concurrent readers keep getting answers.
func TestIngestSwapsServedEngine(t *testing.T) {
	d := testDataset(t, 20, 15, 300, 7)
	s := testState(t, d)
	engine, err := popEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(d, engine, 5)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := New(Config{State: s, Rebuild: popEngine, Server: srv})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetIngestSink(ing)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	v0 := srv.Version()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := ing.IngestEvents(context.Background(), randomEvents(25, int64(100+w)))
			if err != nil {
				t.Error(err)
				return
			}
			if res.Applied != 25 {
				t.Errorf("applied %d, want 25", res.Applied)
			}
		}(w)
	}
	// Concurrent reads against whatever generation is current.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 25; k++ {
				resp, err := http.Get(ts.URL + "/recommend?user=u0")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET /recommend status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	if srv.Version() != v0+4 {
		t.Fatalf("version %d, want %d (one swap per batch)", srv.Version(), v0+4)
	}
	if got := ing.Seq(); got != 100 {
		t.Fatalf("seq %d, want 100", got)
	}
}

// TestIngestEndpoint posts events through the HTTP surface and checks the
// 404-when-disabled contract.
func TestIngestEndpoint(t *testing.T) {
	d := testDataset(t, 10, 8, 120, 3)
	s := testState(t, d)
	engine, err := popEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(d, engine, 5)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"events":[{"user":"u1","item":"i2","value":4},{"user":"newcomer","item":"i3","value":5}]}`
	resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("without a sink, POST /ingest status = %d, want 404", resp.StatusCode)
	}

	ing, err := New(Config{State: s, Rebuild: popEngine, Server: srv})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetIngestSink(ing)
	resp, err = http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var res serve.IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ingest status = %d, want 200", resp.StatusCode)
	}
	if res.Applied != 2 || res.Seq != 2 || res.Version != 2 {
		t.Fatalf("unexpected ingest result %+v", res)
	}
	// The brand-new user must now be servable.
	resp, err = http.Get(ts.URL + "/recommend?user=newcomer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("newly ingested user not servable: status %d", resp.StatusCode)
	}
}
