// Package ingest implements streaming ingestion for the serving layer: an
// append-only interaction log plus an Ingestor that folds new (user, item)
// events into the recommendation state incrementally and publishes the result
// through the serving layer's versioned atomic engine swap.
//
// Each applied event updates four things without retraining anything:
//
//   - the per-item popularity counts (the Pop base and PopAccuracy input),
//   - the per-item rating sums/counts behind the damped ItemAvg means,
//   - the dataset adjacency, copy-on-write with only touched users re-sorted
//     (dataset.Extend), so candidate enumeration immediately stops offering
//     the consumed item to that user, and
//   - the Dyn coverage frequency f_i^A, so the paper's dynamic objective
//     keeps discounting items as they are consumed.
//
// The write path is write-ahead: events land in the Log (JSON lines, one
// event per line) before they touch state, and periodic checkpoints persist
// the full state together with the applied-sequence cursor. Recovery loads
// the latest checkpoint and replays the log suffix, which reproduces exactly
// the state an uninterrupted process would have reached (this equivalence is
// tested under -race).
//
// The package is engine-agnostic: a Rebuild callback (supplied by the facade,
// which knows how to assemble a Pipeline) turns the updated State into a
// fresh serve.Engine after every batch.
package ingest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"ganc/internal/dataset"
	"ganc/internal/longtail"
	"ganc/internal/serve"
	"ganc/internal/types"
)

// ErrCorruptLog marks a write-ahead log whose non-trailing records cannot be
// parsed — genuine corruption, as opposed to the torn trailing record a crash
// mid-append legitimately leaves (which is repaired silently). Matchable with
// errors.Is through every wrapping layer (OpenLog, ReplayLog).
var ErrCorruptLog = errors.New("ingest: corrupt log")

// Event is one interaction record, keyed by external identifiers. It is the
// serving layer's ingestion payload, re-used verbatim so the HTTP body and
// the write-ahead log share one schema.
type Event = serve.IngestEvent

// --- Append-only interaction log ----------------------------------------------

// Log is an append-only, JSON-lines interaction log: record n (1-based) is
// the n-th event ever ingested, so a byte offset never needs to be tracked —
// a checkpoint stores the applied sequence number and recovery replays every
// record after it. Appends are fsynced per batch; a record is only
// acknowledged (and only counts toward the sequence) once its full line,
// newline included, is durable.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	seq  uint64
	size int64 // byte offset past the last acknowledged record
	path string
	// broken is set when a failed append could not be rolled back; further
	// appends are refused so unacknowledged bytes can never be followed by
	// acknowledged ones (which would desynchronize replay positions from
	// the applied-sequence cursor).
	broken bool
}

// forEachRecord streams the complete, valid JSON-line records of r to fn and
// returns their count plus the byte offset just past the last good record.
// A torn trailing record — the partial line a crash mid-append leaves behind
// — is tolerated and excluded (it was never acknowledged); an invalid record
// with more data after it is genuine corruption and errors.
func forEachRecord(r *bufio.Reader, fn func(line []byte) error) (records uint64, goodEnd int64, err error) {
	for {
		line, err := r.ReadBytes('\n')
		switch {
		case err == io.EOF:
			// Data without a trailing newline is a torn record: Append only
			// acknowledges after the newline is flushed and synced.
			return records, goodEnd, nil
		case err != nil:
			return records, goodEnd, err
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			goodEnd += int64(len(line))
			continue
		}
		if !json.Valid(trimmed) {
			if _, peekErr := r.Peek(1); peekErr == io.EOF {
				return records, goodEnd, nil // torn trailing record
			}
			return records, goodEnd, fmt.Errorf("%w: unparseable record at byte %d", ErrCorruptLog, goodEnd)
		}
		if fn != nil {
			if err := fn(trimmed); err != nil {
				return records, goodEnd, err
			}
		}
		records++
		goodEnd += int64(len(line))
	}
}

// OpenLog opens (or creates) the log at path, counting existing records so
// new appends continue the sequence. A torn trailing record left by a crash
// mid-append is truncated away, so the next append starts on a clean line.
func OpenLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingest: open log %s: %w", path, err)
	}
	seq, goodEnd, err := forEachRecord(bufio.NewReader(f), nil)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ingest: scan log %s: %w", path, err)
	}
	if err := f.Truncate(goodEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("ingest: repair log %s: %w", path, err)
	}
	if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("ingest: seek log %s: %w", path, err)
	}
	return &Log{f: f, seq: seq, size: goodEnd, path: path}, nil
}

// Append writes the events as one durable batch and returns the sequence
// number of the last record written. The batch is all-or-nothing: every
// record is encoded before anything touches the file, the lines go out in a
// single write, and the sequence advances only after the fsync succeeds. A
// failed write or sync is rolled back by truncating to the pre-batch offset,
// so a retried batch never lands behind its own partial ghost.
func (l *Log) Append(events []Event) (uint64, error) {
	var buf bytes.Buffer
	for _, ev := range events {
		line, err := json.Marshal(ev)
		if err != nil {
			return l.Seq(), fmt.Errorf("ingest: encode log record: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken {
		return l.seq, fmt.Errorf("ingest: log %s is in a failed state (reopen to repair)", l.path)
	}
	if _, err := l.f.Write(buf.Bytes()); err != nil {
		l.rollbackLocked()
		return l.seq, fmt.Errorf("ingest: append log batch: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.rollbackLocked()
		return l.seq, fmt.Errorf("ingest: sync log: %w", err)
	}
	l.size += int64(buf.Len())
	l.seq += uint64(len(events))
	return l.seq, nil
}

// rollbackLocked discards any bytes a failed append may have left past the
// last acknowledged record; if even that fails, the log is marked broken so
// no further append can follow the ghost bytes. Callers hold l.mu.
func (l *Log) rollbackLocked() {
	if err := l.f.Truncate(l.size); err != nil {
		l.broken = true
		return
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		l.broken = true
	}
}

// Seq returns the sequence number of the last record in the log.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close closes the underlying file (every acknowledged batch is already
// durable; there is no buffered state to flush).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// ReplayLog streams the records of the log at path with sequence numbers in
// (after, ∞) to fn, in order. A missing file replays nothing (a fresh deploy
// has no history to recover), and a torn trailing record is skipped exactly
// as OpenLog would truncate it.
func ReplayLog(path string, after uint64, fn func(seq uint64, ev Event) error) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("ingest: open log %s: %w", path, err)
	}
	defer f.Close()
	seq := uint64(0)
	_, _, err = forEachRecord(bufio.NewReader(f), func(line []byte) error {
		seq++
		if seq <= after {
			return nil
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("%w: log %s record %d: %v", ErrCorruptLog, path, seq, err)
		}
		return fn(seq, ev)
	})
	if err != nil {
		return fmt.Errorf("ingest: replay log %s: %w", path, err)
	}
	return nil
}

// --- Mutable serving state ----------------------------------------------------

// State is the mutable mirror of everything an engine rebuild needs: the
// (extended) train set, the θ preference vector, the incrementally maintained
// popularity and item-average statistics, the Dyn coverage frequencies and
// the applied-event cursor. It is owned by one Ingestor and mutated only
// under its lock; the immutable structures it points to (Dataset, engine
// inputs) are shared freely with the serving layer.
type State struct {
	// Train is the current train set; every applied batch replaces it with a
	// copy-on-write extension.
	Train *dataset.Dataset
	// Prefs is the per-user θ vector, grown with PrefFill for new users.
	Prefs *longtail.Preferences
	// PrefFill is the θ assigned to users first seen in the event stream
	// (typically the mean of the estimated population).
	PrefFill float64
	// PopCounts is the per-item rating count f_i^R, indexed by ItemID.
	PopCounts []int
	// AvgSums and AvgCounts accumulate per-item rating totals for the damped
	// ItemAvg means; TotalSum and TotalCount track the global mean.
	AvgSums    []float64
	AvgCounts  []int
	TotalSum   float64
	TotalCount int
	// AvgLambda is the ItemAvg shrinkage pseudo-count.
	AvgLambda float64
	// DynFreq is the Dyn coverage recommendation/consumption frequency f_i^A.
	DynFreq []int
	// AppliedSeq is the sequence number of the last event folded into this
	// state — the checkpoint/replay cursor.
	AppliedSeq uint64
}

// NewStateFromDataset derives the incremental statistics of a fresh state
// from a train set (the cold-start path, before any events are applied).
func NewStateFromDataset(train *dataset.Dataset, prefs *longtail.Preferences, avgLambda float64) *State {
	s := &State{
		Train:     train,
		Prefs:     prefs.Clone(),
		PrefFill:  prefs.Mean(),
		PopCounts: train.PopularityVector(),
		AvgSums:   make([]float64, train.NumItems()),
		AvgCounts: make([]int, train.NumItems()),
		AvgLambda: avgLambda,
		DynFreq:   make([]int, train.NumItems()),
	}
	for _, r := range train.Ratings() {
		s.AvgSums[r.Item] += r.Value
		s.AvgCounts[r.Item]++
		s.TotalSum += r.Value
		s.TotalCount++
	}
	return s
}

// GlobalMean returns the running global mean rating.
func (s *State) GlobalMean() float64 {
	if s.TotalCount == 0 {
		return 0
	}
	return s.TotalSum / float64(s.TotalCount)
}

// applyEvents interns the events' keys, grows every per-user/per-item mirror
// to the new universe sizes, bumps the incremental statistics and extends the
// train set. It advances AppliedSeq by one per event.
func (s *State) applyEvents(events []Event) {
	users := s.Train.UserInterner()
	items := s.Train.ItemInterner()
	ratings := make([]types.Rating, len(events))
	for k, ev := range events {
		u := types.UserID(users.Intern(ev.User))
		i := types.ItemID(items.Intern(ev.Item))
		ratings[k] = types.Rating{User: u, Item: i, Value: ev.Value}
	}

	numItems := items.Len()
	s.PopCounts = growInts(s.PopCounts, numItems)
	s.AvgSums = growFloats(s.AvgSums, numItems)
	s.AvgCounts = growInts(s.AvgCounts, numItems)
	s.DynFreq = growInts(s.DynFreq, numItems)
	if numUsers := users.Len(); s.Prefs.Len() < numUsers {
		s.Prefs = s.Prefs.ExtendTo(numUsers, s.PrefFill)
	}

	for _, r := range ratings {
		s.PopCounts[r.Item]++
		s.AvgSums[r.Item] += r.Value
		s.AvgCounts[r.Item]++
		s.TotalSum += r.Value
		s.TotalCount++
		s.DynFreq[r.Item]++
	}
	s.Train = s.Train.Extend(ratings)
	s.AppliedSeq += uint64(len(events))
}

func growInts(v []int, n int) []int {
	if len(v) >= n {
		return v
	}
	out := make([]int, n)
	copy(out, v)
	return out
}

func growFloats(v []float64, n int) []float64 {
	if len(v) >= n {
		return v
	}
	out := make([]float64, n)
	copy(out, v)
	return out
}

// --- Ingestor -----------------------------------------------------------------

// Rebuild assembles a fresh serving engine from the current state. It runs
// after every applied batch, under the ingestor's lock; implementations
// should reuse frozen components (trained factor models) and rebuild only the
// cheap derived ones.
type Rebuild func(s *State) (serve.Engine, error)

// Checkpointer persists the current state (the facade composes the snapshot
// container). It runs under the ingestor's lock.
type Checkpointer func(s *State) error

// Config assembles an Ingestor.
type Config struct {
	// State is the initial serving state (cold-built or checkpoint-restored).
	State *State
	// Rebuild turns the state into a serve.Engine after each batch.
	Rebuild Rebuild
	// Server, when set, receives the rebuilt engine through its atomic
	// versioned swap after each batch.
	Server *serve.Server
	// Log, when set, makes the write path write-ahead: events are appended
	// and fsynced before they are applied.
	Log *Log
	// Checkpoint, when set together with a positive CheckpointEvery, is
	// invoked after every CheckpointEvery applied events.
	Checkpoint      Checkpointer
	CheckpointEvery int
	// OnCommit, when set, is invoked after every committed batch — Apply's
	// state mutation and Recover's replay alike — under the ingestor's lock,
	// with the sequence number of the batch's first event. It is the
	// replication hook: the cluster layer ships committed batches to replicas
	// from here. The hook has no error return on purpose; replication
	// failures must never fail a batch that is already durable (the shipper
	// falls back to catch-up from the write-ahead log instead).
	OnCommit func(firstSeq uint64, events []Event)
}

// Ingestor serializes event application: WAL append → state mutation →
// engine rebuild → atomic swap → (periodic) checkpoint. It implements
// serve.IngestSink, so attaching it to a Server enables POST /ingest.
type Ingestor struct {
	mu              sync.Mutex
	cfg             Config
	sinceCheckpoint int
}

// New validates the configuration and returns an Ingestor.
func New(cfg Config) (*Ingestor, error) {
	if cfg.State == nil {
		return nil, fmt.Errorf("ingest: an initial state is required")
	}
	if cfg.Rebuild == nil {
		return nil, fmt.Errorf("ingest: a rebuild callback is required")
	}
	if cfg.CheckpointEvery > 0 && cfg.Checkpoint == nil {
		return nil, fmt.Errorf("ingest: CheckpointEvery is set but no Checkpointer is configured")
	}
	return &Ingestor{cfg: cfg}, nil
}

// Apply folds one event batch into the serving state: append to the log (if
// configured), mutate the state, rebuild the engine, swap it into the server
// (if configured) and checkpoint when the interval is due. Batches are
// applied atomically with respect to each other; concurrent callers
// serialize.
//
// Failure semantics follow the commit point (the state mutation): an error
// return means nothing was applied or logged — the batch is safe to retry.
// Failures after the commit (engine republish, checkpoint) do NOT fail the
// batch, because the events are already durable and retrying would
// double-count them; they are reported in IngestResult.Warning instead, and
// the server keeps serving the previous engine generation until the next
// batch republishes.
func (in *Ingestor) Apply(ctx context.Context, events []Event) (serve.IngestResult, error) {
	if err := ctx.Err(); err != nil {
		return serve.IngestResult{}, err
	}
	if len(events) == 0 {
		return serve.IngestResult{}, fmt.Errorf("ingest: empty event batch")
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.Log != nil {
		if _, err := in.cfg.Log.Append(events); err != nil {
			return serve.IngestResult{}, err
		}
	}
	in.cfg.State.applyEvents(events) // the commit point
	var warnings []string
	if err := in.publishLocked(); err != nil {
		warnings = append(warnings, err.Error())
	}
	if in.cfg.OnCommit != nil {
		in.cfg.OnCommit(in.cfg.State.AppliedSeq-uint64(len(events))+1, events)
	}
	in.sinceCheckpoint += len(events)
	if in.cfg.CheckpointEvery > 0 && in.sinceCheckpoint >= in.cfg.CheckpointEvery {
		if err := in.cfg.Checkpoint(in.cfg.State); err != nil {
			warnings = append(warnings, fmt.Sprintf("ingest: checkpoint: %v", err))
		} else {
			in.sinceCheckpoint = 0
		}
	}
	res := in.resultLocked()
	res.Warning = strings.Join(warnings, "; ")
	return res, nil
}

// publishLocked rebuilds the engine from the current state and swaps it into
// the server. Callers hold in.mu.
func (in *Ingestor) publishLocked() error {
	engine, err := in.cfg.Rebuild(in.cfg.State)
	if err != nil {
		return fmt.Errorf("ingest: rebuild engine: %w", err)
	}
	if in.cfg.Server != nil {
		if err := in.cfg.Server.Update(engine); err != nil {
			return fmt.Errorf("ingest: swap engine: %w", err)
		}
	}
	return nil
}

// resultLocked summarizes the current state. Callers hold in.mu.
func (in *Ingestor) resultLocked() serve.IngestResult {
	res := serve.IngestResult{Seq: in.cfg.State.AppliedSeq}
	if in.cfg.Server != nil {
		res.Version = in.cfg.Server.Version()
	}
	return res
}

// IngestEvents implements serve.IngestSink.
func (in *Ingestor) IngestEvents(ctx context.Context, events []serve.IngestEvent) (serve.IngestResult, error) {
	res, err := in.Apply(ctx, events)
	if err != nil {
		return res, err
	}
	res.Applied = len(events)
	return res, nil
}

// Recover replays the write-ahead log suffix after the state's AppliedSeq
// cursor (events logged but not yet checkpointed when the process died),
// then rebuilds and swaps once. It must run before the ingestor starts
// accepting new batches.
func (in *Ingestor) Recover() (replayed int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.Log == nil {
		return 0, nil
	}
	var batch []Event
	err = ReplayLog(in.cfg.Log.Path(), in.cfg.State.AppliedSeq, func(_ uint64, ev Event) error {
		batch = append(batch, ev)
		return nil
	})
	if err != nil {
		return 0, err
	}
	if len(batch) == 0 {
		return 0, nil
	}
	in.cfg.State.applyEvents(batch)
	if err := in.publishLocked(); err != nil {
		return 0, err
	}
	if in.cfg.OnCommit != nil {
		in.cfg.OnCommit(in.cfg.State.AppliedSeq-uint64(len(batch))+1, batch)
	}
	return len(batch), nil
}

// Checkpoint forces a checkpoint of the current state regardless of the
// interval.
func (in *Ingestor) Checkpoint() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.Checkpoint == nil {
		return fmt.Errorf("ingest: no checkpointer configured")
	}
	if err := in.cfg.Checkpoint(in.cfg.State); err != nil {
		return err
	}
	in.sinceCheckpoint = 0
	return nil
}

// Close releases the write-ahead log's file handle, if any. Acknowledged
// batches are already durable, so there is nothing to flush; Close exists so
// an orderly shutdown — or a simulated crash in the scenario harness — lets a
// successor process reopen the same log file cleanly. The ingestor must not
// be used afterwards.
func (in *Ingestor) Close() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.Log == nil {
		return nil
	}
	return in.cfg.Log.Close()
}

// View runs fn with the current state under the ingestor's lock, for
// inspection (tests, /info-style reporting). fn must not retain or mutate the
// state.
func (in *Ingestor) View(fn func(s *State)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	fn(in.cfg.State)
}

// Seq returns the applied-event cursor.
func (in *Ingestor) Seq() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cfg.State.AppliedSeq
}
