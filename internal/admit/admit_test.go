package admit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ganc/internal/obs"
)

// fakeClock is a settable clock for deterministic bucket refills.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
}

func doReq(t *testing.T, h http.Handler, path, client string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if client != "" {
		req.Header.Set(DefaultKeyHeader, client)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	h := c.Middleware(okHandler())
	for i := 0; i < 100; i++ {
		if rec := doReq(t, h, "/recommend", "a"); rec.Code != http.StatusOK {
			t.Fatalf("nil controller shed a request: %d", rec.Code)
		}
	}
	if s := c.Stats(); s.Shed() != 0 {
		t.Fatalf("nil controller stats = %+v", s)
	}
	if New(Config{}) != nil {
		t.Fatal("zero config should yield a nil (admit-everything) controller")
	}
}

func TestRateLimitPerClient(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := New(Config{RatePerSec: 1, Burst: 3, Now: clk.now})
	h := c.Middleware(okHandler())

	for i := 0; i < 3; i++ {
		if rec := doReq(t, h, "/recommend", "alice"); rec.Code != http.StatusOK {
			t.Fatalf("burst request %d shed: %d", i, rec.Code)
		}
	}
	rec := doReq(t, h, "/recommend", "alice")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("4th request = %d, want 429", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("429 body is not JSON: %v", err)
	}
	if body["code"] != "rate_limited" || body["error"] == "" {
		t.Fatalf("429 body = %v", body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}

	// A different client has its own bucket.
	if rec := doReq(t, h, "/recommend", "bob"); rec.Code != http.StatusOK {
		t.Fatalf("bob shed by alice's bucket: %d", rec.Code)
	}

	// Refill: one token per second.
	clk.advance(2 * time.Second)
	if rec := doReq(t, h, "/recommend", "alice"); rec.Code != http.StatusOK {
		t.Fatalf("refilled request shed: %d", rec.Code)
	}

	s := c.Stats()
	if s.RateLimited != 1 || s.Admitted != 5 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestExemptPaths(t *testing.T) {
	c := New(Config{RatePerSec: 0.001, Burst: 0.001})
	h := c.Middleware(okHandler())
	for _, path := range []string{"/health", "/metrics", "/info"} {
		for i := 0; i < 5; i++ {
			if rec := doReq(t, h, path, "x"); rec.Code != http.StatusOK {
				t.Fatalf("%s shed by admission: %d", path, rec.Code)
			}
		}
	}
	if rec := doReq(t, h, "/recommend", "x"); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("non-exempt path admitted at near-zero rate: %d", rec.Code)
	}
}

func TestConcurrencyCap(t *testing.T) {
	c := New(Config{MaxConcurrent: 2, MaxWait: 0})
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}))

	var wg sync.WaitGroup
	var ok, shed atomic.Int64
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := doReq(t, h, "/recommend", "c")
			if rec.Code == http.StatusOK {
				ok.Add(1)
			}
		}()
	}
	<-started
	<-started
	// Both slots are held; the third request must shed immediately.
	rec := doReq(t, h, "/recommend", "c")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request = %d, want 429", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["code"] != "over_capacity" {
		t.Fatalf("429 body = %v (err %v)", body, err)
	}
	shed.Add(1)

	if s := c.Stats(); s.InFlight != 2 || s.Saturation != 1 {
		t.Fatalf("saturated stats = %+v", s)
	}
	close(release)
	wg.Wait()
	s := c.Stats()
	if s.InFlight != 0 || ok.Load() != 2 || s.OverCapacity != shed.Load() {
		t.Fatalf("final stats = %+v (ok %d)", s, ok.Load())
	}
}

func TestBoundedWaitAdmitsWhenSlotFrees(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxWait: 2 * time.Second})
	release := make(chan struct{})
	started := make(chan struct{})
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		select {
		case started <- struct{}{}:
			<-release
		default:
		}
		w.WriteHeader(http.StatusOK)
	}))

	go doReq(t, h, "/recommend", "c")
	<-started
	done := make(chan int, 1)
	go func() {
		done <- doReq(t, h, "/recommend", "c").Code
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park on the semaphore
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("waiter = %d, want 200 after slot freed", code)
	}
}

func TestClientKeyFallsBackToRemoteHost(t *testing.T) {
	c := New(Config{RatePerSec: 1})
	req := httptest.NewRequest(http.MethodGet, "/recommend", nil)
	req.RemoteAddr = "10.1.2.3:5555"
	if key := c.ClientKey(req); key != "10.1.2.3" {
		t.Fatalf("key = %q, want remote host", key)
	}
	req.Header.Set(DefaultKeyHeader, "svc-7")
	if key := c.ClientKey(req); key != "svc-7" {
		t.Fatalf("key = %q, want header value", key)
	}
}

func TestBucketTableEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := New(Config{RatePerSec: 1, Burst: 1, MaxClients: 4, Now: clk.now})
	h := c.Middleware(okHandler())
	for _, client := range []string{"a", "b", "c", "d", "e", "f"} {
		doReq(t, h, "/recommend", client)
	}
	c.bmu.Lock()
	n := len(c.buckets)
	c.bmu.Unlock()
	if n > 4 {
		t.Fatalf("bucket table grew to %d, cap 4", n)
	}
}

func TestRegisterMetrics(t *testing.T) {
	c := New(Config{RatePerSec: 1, Burst: 1, MaxConcurrent: 8})
	h := c.Middleware(okHandler())
	doReq(t, h, "/recommend", "a")
	doReq(t, h, "/recommend", "a") // shed

	reg := obs.NewRegistry()
	c.Register(reg, obs.L("shard", "0"))
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("ganc_admission_admitted_total", obs.L("shard", "0")); !ok || v != 1 {
		t.Fatalf("admitted = %v, %v", v, ok)
	}
	if v, ok := sc.Value("ganc_admission_rate_limited_total", obs.L("shard", "0")); !ok || v != 1 {
		t.Fatalf("rate_limited = %v, %v", v, ok)
	}
}

// TestEvictionSparesActiveClientUnderKeyChurn pins the LRU eviction policy:
// a stream of never-repeating synthetic keys overruns the bucket table many
// times over while one real client keeps making requests, and the active
// client's rate state must survive every eviction round. Under the old
// arbitrary (map-iteration-order) eviction the active bucket is eventually
// collected, silently handing the client a fresh full burst; with LRU the
// churn keys — each strictly older than the active client's last request —
// absorb every eviction.
func TestEvictionSparesActiveClientUnderKeyChurn(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := New(Config{RatePerSec: 1, Burst: 3, MaxClients: 8, Now: clk.now})

	// Drain the active client to exactly one remaining token. From here on it
	// issues no requests that would spend tokens — any later observation of a
	// full burst means its bucket was evicted and rebuilt.
	for i := 0; i < 2; i++ {
		if ok, _ := c.allowRate("active"); !ok {
			t.Fatalf("active client shed during warm-up request %d", i)
		}
	}

	// Key-rotation churn: hundreds of distinct one-shot keys, far past
	// MaxClients, interleaved with touches that keep the active client the
	// most recently used bucket. The clock advances less than a second per
	// round so the active bucket never refills a whole token.
	for round := 0; round < 300; round++ {
		clk.advance(10 * time.Millisecond)
		if ok, _ := c.allowRate(fmt.Sprintf("churn-%d", round)); !ok {
			t.Fatalf("fresh churn key %d was shed (fresh buckets start full)", round)
		}
		c.bmu.Lock()
		b := c.buckets["active"]
		c.bmu.Unlock()
		if b == nil {
			t.Fatalf("active client's bucket was evicted by churn round %d despite being the most recently refilled", round)
		}
		// Touch the bucket's LRU stamp the way a real request would, without
		// spending a token: a refill alone updates last.
		b.mu.Lock()
		b.last = clk.now()
		b.mu.Unlock()
		if n := len(c.buckets); n > 8 {
			t.Fatalf("bucket table grew to %d entries past MaxClients=8", n)
		}
	}

	// The surviving bucket still carries its drained state: 3 seconds of
	// churn refilled ~1 token/s against a 3-token burst it started 2 below,
	// so it must be at (or clamped to) burst only if it was rebuilt. Spend
	// down and verify the 4th request sheds — a rebuilt bucket would admit 3
	// then shed, an evicted-and-recreated one mid-loop would desynchronize
	// the count.
	admitted := 0
	for i := 0; i < 5; i++ {
		if ok, _ := c.allowRate("active"); ok {
			admitted++
		}
	}
	if admitted > 3 {
		t.Fatalf("active client admitted %d requests against a 3-token burst: bucket state was reset by eviction", admitted)
	}
}

// TestEvictLRUPicksOldestBucket drives evictLRU directly: with three buckets
// of known ages, inserting past MaxClients must drop exactly the oldest.
func TestEvictLRUPicksOldestBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2000, 0)}
	c := New(Config{RatePerSec: 1, MaxClients: 3, Now: clk.now})
	for _, key := range []string{"oldest", "middle", "newest"} {
		if ok, _ := c.allowRate(key); !ok {
			t.Fatalf("seeding bucket %q was shed", key)
		}
		clk.advance(time.Minute)
	}
	if ok, _ := c.allowRate("overflow"); !ok {
		t.Fatal("overflow key was shed")
	}
	c.bmu.Lock()
	defer c.bmu.Unlock()
	if c.buckets["oldest"] != nil {
		t.Fatal("oldest bucket survived an over-capacity insert")
	}
	for _, key := range []string{"middle", "newest", "overflow"} {
		if c.buckets[key] == nil {
			t.Fatalf("bucket %q was evicted instead of the oldest", key)
		}
	}
}
