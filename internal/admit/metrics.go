package admit

import "ganc/internal/obs"

// Register exposes the controller's admission counters on a metrics
// registry. The extra labels (e.g. shard identity on a sharded node) are
// attached to every series. Safe to call on a nil Controller — the series
// then render as permanent zeros, which keeps dashboards uniform whether or
// not admission is enabled.
func (c *Controller) Register(reg *obs.Registry, labels ...obs.Label) {
	reg.CounterFunc("ganc_admission_admitted_total",
		"Requests admitted through both admission gates.",
		func() float64 { return float64(c.Stats().Admitted) }, labels...)
	reg.CounterFunc("ganc_admission_rate_limited_total",
		"Requests shed with 429 by the per-client token bucket.",
		func() float64 { return float64(c.Stats().RateLimited) }, labels...)
	reg.CounterFunc("ganc_admission_over_capacity_total",
		"Requests shed with 429 by the concurrency cap.",
		func() float64 { return float64(c.Stats().OverCapacity) }, labels...)
	reg.GaugeFunc("ganc_admission_in_flight",
		"Requests currently inside handlers.",
		func() float64 { return float64(c.Stats().InFlight) }, labels...)
	reg.GaugeFunc("ganc_admission_saturation",
		"InFlight over MaxConcurrent, 0 when uncapped.",
		func() float64 { return c.Stats().Saturation }, labels...)
}
