// Package admit is the admission-control layer for the serving tier: a
// per-client token-bucket rate limiter and a server-wide concurrency cap with
// bounded wait. Requests that cannot be admitted are shed with a typed 429
// JSON body — {"error": ..., "code": "rate_limited" | "over_capacity"} —
// mirroring the cluster router's typed-503 convention, so load-test drivers
// and callers can distinguish "slow down" (429, retryable after backoff) from
// "a shard is gone" (503).
//
// The middleware sits between the observability wrapper and the route mux:
// shed requests are therefore still counted and logged, but never reach a
// handler. /health, /metrics and /info are exempt — an operator must be able
// to observe an overloaded server.
package admit

import (
	"encoding/json"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultKeyHeader is the request header identifying the client for rate
// limiting when Config.KeyHeader is empty.
const DefaultKeyHeader = "X-Client-ID"

// DefaultMaxClients caps the token-bucket table when Config.MaxClients is
// zero.
const DefaultMaxClients = 4096

// Config tunes a Controller. The zero value admits everything.
type Config struct {
	// RatePerSec is the sustained per-client request rate. Zero or negative
	// disables rate limiting.
	RatePerSec float64
	// Burst is the token-bucket capacity — how many requests a quiet client
	// may issue back to back. Zero defaults to max(RatePerSec, 1).
	Burst float64
	// KeyHeader names the header whose value identifies a client. Empty
	// selects DefaultKeyHeader; when the header is absent the remote host
	// (without port) is the key.
	KeyHeader string
	// MaxClients bounds the bucket table. When a new client would exceed it,
	// the least-recently-used bucket — the one whose last refill is oldest —
	// is evicted (the evicted client restarts with a full bucket — a brief
	// over-admit, never a lockout), so a table overrun by key churn sheds
	// idle clients, not active ones. Zero defaults to DefaultMaxClients.
	MaxClients int
	// MaxConcurrent caps requests inside handlers at once. Zero or negative
	// disables the cap.
	MaxConcurrent int
	// MaxWait bounds how long an over-capacity request waits for a slot
	// before being shed. Zero sheds immediately when saturated.
	MaxWait time.Duration
	// Now is the clock (tests pin it). Nil selects time.Now.
	Now func() time.Time
}

// Stats is a snapshot of a Controller's admission counters.
type Stats struct {
	// Admitted counts requests that passed both gates.
	Admitted int64 `json:"admitted"`
	// RateLimited counts 429s from the per-client token bucket.
	RateLimited int64 `json:"rate_limited"`
	// OverCapacity counts 429s from the concurrency cap.
	OverCapacity int64 `json:"over_capacity"`
	// InFlight is the number of requests currently inside handlers.
	InFlight int `json:"in_flight"`
	// MaxConcurrent echoes the configured cap (0 = uncapped).
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// Saturation is InFlight/MaxConcurrent in [0,1], 0 when uncapped.
	Saturation float64 `json:"saturation"`
}

// Shed returns the total number of shed (429) requests.
func (s Stats) Shed() int64 { return s.RateLimited + s.OverCapacity }

// bucket is one client's token bucket.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// Controller applies admission control. A nil Controller admits everything,
// so callers can thread it through unconditionally.
type Controller struct {
	cfg Config
	now func() time.Time

	sem chan struct{} // nil when uncapped

	bmu     sync.Mutex
	buckets map[string]*bucket

	admitted     atomic.Int64
	rateLimited  atomic.Int64
	overCapacity atomic.Int64
	inFlight     atomic.Int64
}

// New builds a Controller from cfg. Returns nil (admit-everything) when cfg
// enables neither gate.
func New(cfg Config) *Controller {
	if cfg.RatePerSec <= 0 && cfg.MaxConcurrent <= 0 {
		return nil
	}
	if cfg.KeyHeader == "" {
		cfg.KeyHeader = DefaultKeyHeader
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = DefaultMaxClients
	}
	if cfg.Burst <= 0 {
		cfg.Burst = math.Max(cfg.RatePerSec, 1)
	}
	c := &Controller{cfg: cfg, now: cfg.Now, buckets: make(map[string]*bucket)}
	if c.now == nil {
		c.now = time.Now
	}
	if cfg.MaxConcurrent > 0 {
		c.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	return c
}

// Stats snapshots the counters.
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		Admitted:      c.admitted.Load(),
		RateLimited:   c.rateLimited.Load(),
		OverCapacity:  c.overCapacity.Load(),
		InFlight:      int(c.inFlight.Load()),
		MaxConcurrent: c.cfg.MaxConcurrent,
	}
	if s.MaxConcurrent > 0 {
		s.Saturation = float64(s.InFlight) / float64(s.MaxConcurrent)
	}
	return s
}

// ClientKey returns the admission key the controller would use for r — the
// configured header when present, else the remote host.
func (c *Controller) ClientKey(r *http.Request) string {
	header := DefaultKeyHeader
	if c != nil && c.cfg.KeyHeader != "" {
		header = c.cfg.KeyHeader
	}
	if v := r.Header.Get(header); v != "" {
		return v
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// allowRate refills and drains the client's bucket; on refusal it also
// reports how long until a token is available.
func (c *Controller) allowRate(key string) (bool, time.Duration) {
	if c.cfg.RatePerSec <= 0 {
		return true, 0
	}
	c.bmu.Lock()
	b := c.buckets[key]
	if b == nil {
		if len(c.buckets) >= c.cfg.MaxClients {
			c.evictLRU()
		}
		b = &bucket{tokens: c.cfg.Burst, last: c.now()}
		c.buckets[key] = b
	}
	c.bmu.Unlock()

	b.mu.Lock()
	defer b.mu.Unlock()
	now := c.now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(c.cfg.Burst, b.tokens+dt*c.cfg.RatePerSec)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / c.cfg.RatePerSec * float64(time.Second))
	return false, wait
}

// evictLRU drops the bucket whose last refill is oldest. Map iteration order
// is deliberately NOT the eviction policy: under key-rotation churn (each
// request a fresh synthetic key) an arbitrary eviction eventually lands on an
// active client's bucket, silently resetting its rate state mid-conversation;
// the oldest-last bucket is by construction the one that has gone longest
// without a request. Called with bmu held; taking each bucket's mu inside is
// safe — the lock order everywhere is bmu before bucket.mu, never the
// reverse.
func (c *Controller) evictLRU() {
	var (
		oldestKey string
		oldest    time.Time
		found     bool
	)
	for key, b := range c.buckets {
		b.mu.Lock()
		last := b.last
		b.mu.Unlock()
		if !found || last.Before(oldest) {
			oldestKey, oldest, found = key, last, true
		}
	}
	if found {
		delete(c.buckets, oldestKey)
	}
}

// acquire takes a concurrency slot, waiting at most MaxWait.
func (c *Controller) acquire() bool {
	if c.sem == nil {
		return true
	}
	select {
	case c.sem <- struct{}{}:
		return true
	default:
	}
	if c.cfg.MaxWait <= 0 {
		return false
	}
	t := time.NewTimer(c.cfg.MaxWait)
	defer t.Stop()
	select {
	case c.sem <- struct{}{}:
		return true
	case <-t.C:
		return false
	}
}

// release returns a concurrency slot.
func (c *Controller) release() {
	if c.sem != nil {
		<-c.sem
	}
}

// exempt reports whether a path bypasses admission: operators (and the load
// driver's before/after bookkeeping reads) must be able to probe, scrape and
// inspect an overloaded server.
func exempt(path string) bool {
	return path == "/health" || path == "/metrics" || path == "/info"
}

// writeShed answers a typed 429. Retry-After is in whole seconds, rounded
// up, floored at 1.
func writeShed(w http.ResponseWriter, code string, msg string, retryAfter time.Duration) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg, "code": code})
}

// Middleware applies both admission gates around next. A nil Controller
// returns next unchanged.
func (c *Controller) Middleware(next http.Handler) http.Handler {
	if c == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		if ok, wait := c.allowRate(c.ClientKey(r)); !ok {
			c.rateLimited.Add(1)
			writeShed(w, "rate_limited", "client request rate exceeds the limit", wait)
			return
		}
		if !c.acquire() {
			c.overCapacity.Add(1)
			writeShed(w, "over_capacity", "server concurrency limit reached", time.Second)
			return
		}
		c.admitted.Add(1)
		c.inFlight.Add(1)
		defer func() {
			c.inFlight.Add(-1)
			c.release()
		}()
		next.ServeHTTP(w, r)
	})
}
