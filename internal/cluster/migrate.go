package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ganc/internal/serve"
)

// Live migration: the protocol that moves a user between shards when the ring
// grows or shrinks. Every shard holds the full trained model, so moving a
// user means moving only what the model does not have — the user's ingested
// interaction history, which the old owner's append-only write-ahead log
// holds in per-user order. The old owner ships that history to the new owner
// over POST /migrate in cursor-sequenced chunks, and the new owner folds it
// through the same Ingestor machinery that serves its reads (so the events
// land in the new owner's own WAL, durable and replicated, before the router
// flips the user).
//
// The transfer reuses the /replicate cursor discipline, but the cursor is
// per user rather than per shard: positions index the user's history slice
// (1-based), duplicates are acknowledged without re-applying, overlaps have
// their applied prefix skipped, and a chunk starting past cursor+1 is refused
// as a gap so the sender rewinds. The destination additionally seeds each
// user's cursor from its own WAL (SeedCursor), which makes the transfer
// exactly-once even across destination restarts and users that migrate away
// and later return: whatever prefix of the history the destination already
// holds is never applied twice.

// Sentinel errors for the migration wire path, matchable with errors.Is.
var (
	// ErrMigrateBody marks a /migrate body that is not a well-formed request:
	// undecodable JSON, a missing user key, out-of-range positions, an
	// oversized chunk, or events that do not all belong to the named user.
	ErrMigrateBody = errors.New("cluster: malformed migrate request")
	// ErrMigrateShard marks a chunk addressed to a different shard than the
	// node serves — a topology error, never retryable.
	ErrMigrateShard = errors.New("cluster: migrate shard mismatch")
	// ErrMigrateEpoch marks a chunk from an older ring epoch than the node
	// has already seen (a stale sender from an abandoned reshard).
	ErrMigrateEpoch = errors.New("cluster: migrate epoch mismatch")
	// ErrMigrateGap marks a chunk starting past the user's cursor + 1:
	// applying it would skip part of the user's history. The response carries
	// the cursor so the sender can rewind and re-ship.
	ErrMigrateGap = errors.New("cluster: migrate sequence gap")
)

// MaxMigrateEvents bounds one migrated chunk, mirroring the replication
// limit; maxMigrateBody bounds the request body a node will buffer.
const (
	MaxMigrateEvents = MaxReplicateEvents
	maxMigrateBody   = maxReplicateBody
)

// MigrateRequest is the POST /migrate payload: one chunk of a moving user's
// interaction history, positioned on that history by the 1-based index of its
// first event.
type MigrateRequest struct {
	// Shard is the destination shard ID (the user's owner under the next
	// ring).
	Shard int `json:"shard"`
	// Epoch is the next ring's epoch — the epoch the reshard is migrating
	// toward, not the one being left.
	Epoch uint64 `json:"epoch"`
	// User is the moving user's external key. Every event in the chunk must
	// belong to it.
	User string `json:"user"`
	// FirstIdx is the 1-based position of Events[0] within the user's full
	// history slice.
	FirstIdx uint64 `json:"first_idx"`
	// Total is the length of the user's full history at send time; the
	// destination reports Done once its cursor reaches it. A request with no
	// events is a pure cursor probe.
	Total uint64 `json:"total"`
	// Events is the chunk, in the user's WAL order.
	Events []serve.IngestEvent `json:"events"`
}

// MigrateResponse is the POST /migrate answer. AppliedIdx is always the
// destination's authoritative per-user cursor after the call, on success and
// refusal alike — the one field a sender needs to converge.
type MigrateResponse struct {
	// User echoes the moving user's key.
	User string `json:"user"`
	// AppliedIdx is the destination's cursor into the user's history after
	// this call.
	AppliedIdx uint64 `json:"applied_idx"`
	// Applied is how many of the chunk's events were actually applied (0 for
	// duplicates and probes).
	Applied int `json:"applied"`
	// Done is true once the cursor has reached the announced Total — the
	// user's history is fully transferred.
	Done bool `json:"done,omitempty"`
	// Version is the destination's serving engine generation after the call.
	Version int `json:"version"`
	// Gap is true when the chunk was refused because it starts past the
	// user's cursor; the sender must rewind to AppliedIdx and re-ship.
	Gap bool `json:"gap,omitempty"`
	// Error and Code carry the typed refusal on non-200 answers.
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// ParseMigrateRequest decodes and validates a /migrate body. Every failure
// wraps ErrMigrateBody — never a panic — and allocation is bounded: the
// reader is capped at the wire limit before any decoding happens.
func ParseMigrateRequest(r io.Reader) (*MigrateRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxMigrateBody))
	var req MigrateRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMigrateBody, err)
	}
	if req.Shard < 0 {
		return nil, fmt.Errorf("%w: negative shard %d", ErrMigrateBody, req.Shard)
	}
	if req.User == "" {
		return nil, fmt.Errorf("%w: missing user key", ErrMigrateBody)
	}
	if len(req.Events) > MaxMigrateEvents {
		return nil, fmt.Errorf("%w: chunk of %d events exceeds the limit of %d",
			ErrMigrateBody, len(req.Events), MaxMigrateEvents)
	}
	if len(req.Events) > 0 {
		if req.FirstIdx == 0 {
			return nil, fmt.Errorf("%w: first_idx 0 (history positions are 1-based)", ErrMigrateBody)
		}
		if req.FirstIdx > math.MaxUint64-uint64(len(req.Events)) {
			return nil, fmt.Errorf("%w: position range overflows", ErrMigrateBody)
		}
		for k, ev := range req.Events {
			if ev.User == "" || ev.Item == "" {
				return nil, fmt.Errorf("%w: event %d is missing a user or item key", ErrMigrateBody, k)
			}
			if ev.User != req.User {
				return nil, fmt.Errorf("%w: event %d belongs to user %q, chunk is for %q",
					ErrMigrateBody, k, ev.User, req.User)
			}
		}
	}
	return &req, nil
}

// MigrationApplier is the destination side of the protocol: it serializes
// incoming chunks, enforces the per-user cursor rules (idempotent duplicates,
// overlap skipping, gap refusal) and feeds the survivors to the backend —
// the same ReplicaBackend contract replication uses, so *ingest.Ingestor is
// the production implementation and tests substitute exact-accounting fakes.
// One applier guards one shard's primary.
type MigrationApplier struct {
	shard   int
	backend ReplicaBackend

	// mu serializes the cursor check against the apply, so two concurrent
	// chunks for the same user cannot interleave between "read cursor" and
	// "apply suffix".
	mu      sync.Mutex
	cursors map[string]uint64
	done    map[string]struct{}

	epoch  atomic.Uint64
	events atomic.Int64
}

// NewMigrationApplier builds the applier for one shard's primary, accepting
// chunks from ring epoch `epoch` onward.
func NewMigrationApplier(shard int, epoch uint64, backend ReplicaBackend) *MigrationApplier {
	ma := &MigrationApplier{
		shard:   shard,
		backend: backend,
		cursors: make(map[string]uint64),
		done:    make(map[string]struct{}),
	}
	ma.epoch.Store(epoch)
	return ma
}

// SetEpoch moves the applier to a new ring epoch (each reshard migrates
// toward a freshly bumped epoch; every surviving node adopts it).
func (ma *MigrationApplier) SetEpoch(epoch uint64) { ma.epoch.Store(epoch) }

// Epoch returns the ring epoch the applier currently accepts.
func (ma *MigrationApplier) Epoch() uint64 { return ma.epoch.Load() }

// SeedCursor pre-positions a user's cursor — the destination calls it with
// the number of that user's events already present in its own WAL, so a
// history prefix the node already holds (an earlier migration round, a
// restart mid-transfer, a user returning to a former owner) is acknowledged
// instead of applied twice. The cursor only ever moves forward.
func (ma *MigrationApplier) SeedCursor(user string, idx uint64) {
	if user == "" {
		return
	}
	ma.mu.Lock()
	if idx > ma.cursors[user] {
		ma.cursors[user] = idx
	}
	ma.mu.Unlock()
}

// Cursor returns the applier's cursor into the user's history (0 when the
// user is unknown).
func (ma *MigrationApplier) Cursor(user string) uint64 {
	ma.mu.Lock()
	defer ma.mu.Unlock()
	return ma.cursors[user]
}

// EventsApplied returns how many migrated events the applier has fed to its
// backend — the exact-accounting counter the race suite pins.
func (ma *MigrationApplier) EventsApplied() int64 { return ma.events.Load() }

// UsersCompleted returns how many distinct users have reported Done (cursor
// reached the announced history total).
func (ma *MigrationApplier) UsersCompleted() int {
	ma.mu.Lock()
	defer ma.mu.Unlock()
	return len(ma.done)
}

// Apply runs one migrate request through the per-user cursor rules. The
// returned response always carries the user's cursor; the error (when
// non-nil) wraps one of the ErrMigrate* sentinels, or the backend's own
// failure.
func (ma *MigrationApplier) Apply(ctx context.Context, req *MigrateRequest) (MigrateResponse, error) {
	if req.Shard != ma.shard {
		return MigrateResponse{User: req.User},
			fmt.Errorf("%w: chunk for shard %d reached shard %d", ErrMigrateShard, req.Shard, ma.shard)
	}
	for {
		cur := ma.epoch.Load()
		if req.Epoch < cur {
			return MigrateResponse{User: req.User},
				fmt.Errorf("%w: chunk from epoch %d, node is at epoch %d", ErrMigrateEpoch, req.Epoch, cur)
		}
		// A newer epoch is adopted: the reshard coordinator bumps the epoch
		// cluster-wide, and a migration chunk may arrive before the control
		// plane's SetEpoch call.
		if req.Epoch == cur || ma.epoch.CompareAndSwap(cur, req.Epoch) {
			break
		}
	}
	ma.mu.Lock()
	defer ma.mu.Unlock()
	cursor := ma.cursors[req.User]
	resp := MigrateResponse{User: req.User, AppliedIdx: cursor}
	if len(req.Events) == 0 {
		resp.Done = req.Total > 0 && cursor >= req.Total
		return resp, nil // cursor probe
	}
	last := req.FirstIdx + uint64(len(req.Events)) - 1
	if last <= cursor {
		// Full duplicate: every event is already applied. Acknowledge with
		// the cursor; re-applying would double-count.
		resp.Done = req.Total > 0 && cursor >= req.Total
		return resp, nil
	}
	if req.FirstIdx > cursor+1 {
		resp.Gap = true
		return resp, fmt.Errorf("%w: chunk for user %q starts at %d, cursor is %d",
			ErrMigrateGap, req.User, req.FirstIdx, cursor)
	}
	// Partial overlap: skip the prefix at or below the cursor.
	skip := cursor + 1 - req.FirstIdx
	res, err := ma.backend.Apply(ctx, req.Events[skip:])
	if err != nil {
		return resp, fmt.Errorf("cluster: migrate apply: %w", err)
	}
	applied := len(req.Events) - int(skip)
	ma.cursors[req.User] = last
	ma.events.Add(int64(applied))
	resp.AppliedIdx = last
	resp.Applied = applied
	resp.Version = res.Version
	if req.Total > 0 && last >= req.Total {
		resp.Done = true
		ma.done[req.User] = struct{}{}
	}
	return resp, nil
}

// Handler returns the POST /migrate endpoint. Refusals are typed JSON bodies
// mirroring the replication taxonomy: 400 migrate_body, 409 migrate_shard /
// migrate_epoch / migrate_gap, 500 migrate_apply.
func (ma *MigrationApplier) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
			return
		}
		req, err := ParseMigrateRequest(http.MaxBytesReader(w, r.Body, maxMigrateBody))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, MigrateResponse{Error: err.Error(), Code: "migrate_body"})
			return
		}
		resp, err := ma.Apply(r.Context(), req)
		if err == nil {
			writeJSON(w, http.StatusOK, resp)
			return
		}
		resp.Error = err.Error()
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrMigrateShard):
			status, resp.Code = http.StatusConflict, "migrate_shard"
		case errors.Is(err, ErrMigrateEpoch):
			status, resp.Code = http.StatusConflict, "migrate_epoch"
		case errors.Is(err, ErrMigrateGap):
			status, resp.Code = http.StatusConflict, "migrate_gap"
		default:
			resp.Code = "migrate_apply"
		}
		writeJSON(w, status, resp)
	})
}

// --- Sender side ---------------------------------------------------------------

// ShipUserHistory streams one user's complete event history to its next
// owner over POST /migrate in cursor-sequenced chunks, converging on the
// destination's acknowledged cursor: duplicates advance it for free, gap
// refusals rewind the send position, and transient transport failures are
// retried with backoff. It returns how many events the destination actually
// applied (0 when it already held the full history).
func ShipUserHistory(client *http.Client, addr string, shard int, epoch uint64, user string, events []serve.IngestEvent, batch int, timeout time.Duration) (int, error) {
	if client == nil {
		client = http.DefaultClient
	}
	if batch <= 0 || batch > MaxMigrateEvents {
		batch = 1024
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	total := uint64(len(events))
	var pos uint64 // events[:pos] acknowledged by the destination
	applied, failures := 0, 0
	for pos < total {
		end := pos + uint64(batch)
		if end > total {
			end = total
		}
		resp, err := shipMigrateChunk(client, addr, timeout, &MigrateRequest{
			Shard:    shard,
			Epoch:    epoch,
			User:     user,
			FirstIdx: pos + 1,
			Total:    total,
			Events:   events[pos:end],
		})
		if err != nil {
			failures++
			if failures > 3 {
				return applied, fmt.Errorf("cluster: migrating user %q to shard %d (%s): %w", user, shard, addr, err)
			}
			time.Sleep(time.Duration(failures) * 50 * time.Millisecond)
			continue
		}
		failures = 0
		applied += resp.Applied
		switch {
		case resp.AppliedIdx > pos:
			pos = resp.AppliedIdx // progress: applied, or already held
		case resp.Gap:
			pos = resp.AppliedIdx // rewind: the destination lost ground (restart)
		default:
			return applied, fmt.Errorf("cluster: migrating user %q: destination %s made no progress at position %d",
				user, addr, pos)
		}
	}
	return applied, nil
}

// shipMigrateChunk performs one /migrate call. A well-formed gap refusal is
// returned as a response (the caller rewinds); every other failure is an
// error.
func shipMigrateChunk(client *http.Client, addr string, timeout time.Duration, req *MigrateRequest) (*MigrateResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode migrate chunk: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/migrate", bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("cluster: build migrate request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(httpReq)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	var out MigrateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("cluster: node %s answered %d with an undecodable body: %s",
			addr, resp.StatusCode, truncate(body))
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return &out, nil
	case resp.StatusCode == http.StatusConflict && out.Gap:
		return &out, nil
	default:
		return nil, fmt.Errorf("cluster: node %s refused migrate chunk: status %d, code %q: %s",
			addr, resp.StatusCode, out.Code, out.Error)
	}
}

// --- Ring delta ----------------------------------------------------------------

// UserMove records one user's ownership change between two ring epochs.
type UserMove struct {
	// From and To are the user's owners under the old and next ring.
	From int `json:"from"`
	To   int `json:"to"`
}

// MovedUsers computes the ownership delta between two rings over the given
// user keys: the users whose owner changes, each mapped to its old and new
// owner. Consistent hashing keeps the delta minimal — only users owned by
// added or removed shards move — which the ring-delta unit tests pin.
func MovedUsers(old, next *Ring, keys []string) map[string]UserMove {
	moves := make(map[string]UserMove)
	for _, k := range keys {
		from, to := old.Owner(k), next.Owner(k)
		if from != to {
			moves[k] = UserMove{From: from, To: to}
		}
	}
	return moves
}

// ReshardStats summarizes one live reshard: the shape change, the migration
// volume and the client-visible transition window. It is the "reshard"
// section of BENCH_cluster.json and the scenario runner's phase record.
type ReshardStats struct {
	// FromShards and ToShards are the shard counts before and after.
	FromShards int `json:"from_shards"`
	ToShards   int `json:"to_shards"`
	// Epoch is the ring epoch published by the reshard.
	Epoch uint64 `json:"epoch"`
	// UsersMoved counts users whose ownership changed; UsersMigrated counts
	// the subset with ingested history that had to be shipped.
	UsersMoved    int `json:"users_moved"`
	UsersMigrated int `json:"users_migrated"`
	// EventsMigrated counts events applied at destinations during the
	// transfer.
	EventsMigrated int `json:"events_migrated"`
	// DoubleDispatches counts reads the router served from a user's old
	// owner while that user's history was still in flight.
	DoubleDispatches int64 `json:"double_dispatches"`
	// CutoverMs is the wall-clock width of the transition window, from the
	// router entering the double-ring state to the final ring publishing.
	CutoverMs float64 `json:"cutover_ms"`
}
