package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"ganc/internal/ingest"
	"ganc/internal/serve"
)

// TailPath is the route a primary serves WAL-tail pulls on — the
// replica-assisted catch-up half of the /replicate cursor protocol. A
// rejoining node whose local WAL is shorter than its snapshot cursor pulls
// the missing records from the live primary instead of refusing to rejoin.
const TailPath = "/replicate/tail"

// ErrTailRange marks a WAL-tail pull the primary cannot serve: the requested
// records are not (all) in its local WAL.
var ErrTailRange = errors.New("cluster: requested WAL tail not available")

// NewWALTailHandler serves TailPath for one shard's primary. The request and
// response reuse the ReplicateRequest wire shape: the puller asks for the
// records [FirstSeq, HeadSeq] (Events empty), the primary answers with a
// contiguous chunk starting at FirstSeq — capped at MaxReplicateEvents, so
// the puller loops — with HeadSeq set to the last sequence included. Pulls
// are reads of committed records, so epoch fencing does not apply (the
// request's epoch is ignored); a range the WAL cannot cover is refused with
// a typed 409 carrying Gap and the primary's view of where the WAL ends.
func NewWALTailHandler(shard int, walPath string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, ReplicateResponse{Error: "POST only", Code: "replicate_body"})
			return
		}
		req, err := ParseReplicateRequest(r.Body)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ReplicateResponse{Error: err.Error(), Code: "replicate_body"})
			return
		}
		switch {
		case req.Shard != shard:
			writeJSON(w, http.StatusConflict, ReplicateResponse{
				Error: fmt.Sprintf("tail pull for shard %d arrived at shard %d", req.Shard, shard),
				Code:  "replicate_shard"})
			return
		case len(req.Events) != 0:
			writeJSON(w, http.StatusBadRequest, ReplicateResponse{
				Error: "a tail pull carries no events", Code: "replicate_body"})
			return
		case req.FirstSeq == 0 || req.HeadSeq < req.FirstSeq:
			writeJSON(w, http.StatusBadRequest, ReplicateResponse{
				Error: fmt.Sprintf("bad tail range [%d, %d]", req.FirstSeq, req.HeadSeq), Code: "replicate_body"})
			return
		}
		end := req.HeadSeq
		if limit := req.FirstSeq + uint64(MaxReplicateEvents) - 1; limit < end {
			end = limit
		}
		var events []serve.IngestEvent
		next := req.FirstSeq
		err = ingest.ReplayLog(walPath, req.FirstSeq-1, func(seq uint64, ev ingest.Event) error {
			if seq > end {
				return errStopReplay
			}
			if seq != next {
				return fmt.Errorf("%w: record %d follows %d", ErrTailRange, seq, next-1)
			}
			events = append(events, ev)
			next++
			return nil
		})
		if err != nil && !errors.Is(err, errStopReplay) {
			writeJSON(w, http.StatusConflict, ReplicateResponse{
				Gap: true, AppliedSeq: next - 1, Error: err.Error(), Code: "replicate_gap"})
			return
		}
		if len(events) == 0 {
			writeJSON(w, http.StatusConflict, ReplicateResponse{
				Gap: true, AppliedSeq: req.FirstSeq - 1,
				Error: fmt.Sprintf("%v: no record at %d", ErrTailRange, req.FirstSeq), Code: "replicate_gap"})
			return
		}
		writeJSON(w, http.StatusOK, ReplicateRequest{
			Shard:    shard,
			FirstSeq: req.FirstSeq,
			HeadSeq:  req.FirstSeq + uint64(len(events)) - 1,
			Events:   events,
		})
	})
}

// FetchWALTail pulls the WAL records (after, upTo] from a primary's TailPath
// in MaxReplicateEvents chunks, validating contiguity, and returns them in
// order. It is the rejoin path's source of truth when the local disk did not
// survive with the full log.
func FetchWALTail(ctx context.Context, client *http.Client, addr string, shard int, after, upTo uint64) ([]serve.IngestEvent, error) {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	out := make([]serve.IngestEvent, 0, upTo-after)
	next := after + 1
	for next <= upTo {
		payload, err := json.Marshal(ReplicateRequest{Shard: shard, FirstSeq: next, HeadSeq: upTo})
		if err != nil {
			return nil, fmt.Errorf("cluster: encode tail pull: %w", err)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+TailPath, bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("cluster: build tail pull: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return nil, fmt.Errorf("cluster: tail pull from %s: %w", addr, err)
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxReplicateBody))
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("cluster: reading tail chunk from %s: %w", addr, err)
		}
		if resp.StatusCode != http.StatusOK {
			var refusal ReplicateResponse
			if json.Unmarshal(body, &refusal) == nil && refusal.Error != "" {
				return nil, fmt.Errorf("%w: %s refused [%d, %d]: %s", ErrTailRange, addr, next, upTo, refusal.Error)
			}
			return nil, fmt.Errorf("%w: %s answered %d", ErrTailRange, addr, resp.StatusCode)
		}
		var chunk ReplicateRequest
		if err := json.Unmarshal(body, &chunk); err != nil {
			return nil, fmt.Errorf("cluster: %s answered an undecodable tail chunk: %s", addr, truncate(body))
		}
		if chunk.FirstSeq != next || chunk.HeadSeq > upTo ||
			uint64(len(chunk.Events)) != chunk.HeadSeq-chunk.FirstSeq+1 {
			return nil, fmt.Errorf("%w: %s answered [%d, %d] with %d events to a pull at %d",
				ErrTailRange, addr, chunk.FirstSeq, chunk.HeadSeq, len(chunk.Events), next)
		}
		out = append(out, chunk.Events...)
		next = chunk.HeadSeq + 1
	}
	return out, nil
}
