package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ganc/internal/dataset"
	"ganc/internal/serve"
	"ganc/internal/types"
)

// echoEngine answers every known user with a deterministic single-item list
// derived from the user id, counting computes — enough to tell which shard
// actually served a request.
type echoEngine struct {
	name     string
	items    int
	computes atomic.Int64
}

// Name implements serve.Engine.
func (e *echoEngine) Name() string { return e.name }

// RecommendUser implements serve.Engine.
func (e *echoEngine) RecommendUser(ctx context.Context, u types.UserID, n int) (types.TopNSet, error) {
	e.computes.Add(1)
	return types.TopNSet{types.ItemID(int(u) % e.items)}, nil
}

// testShard is one live shard: its server, engine and HTTP listener.
type testShard struct {
	srv *serve.Server
	eng *echoEngine
	ts  *httptest.Server
}

// clusterFixture stands up n real shard servers over a shared tiny universe
// and a router in front of them. Every shard holds the full identifier
// tables (the replicated-universe model the cluster tier uses), so any shard
// can resolve any user — ownership decides which one is asked.
func clusterFixture(t testing.TB, n int, opts ...func(*RouterConfig)) (*Router, []*testShard) {
	t.Helper()
	const users, items = 40, 12
	shards := make([]*testShard, n)
	infos := make([]ShardInfo, n)
	for i := 0; i < n; i++ {
		b := dataset.NewBuilder("tiny", users)
		for u := 0; u < users; u++ {
			b.Add(fmt.Sprintf("user-%d", u), fmt.Sprintf("item-%d", u%items), 5)
		}
		for it := 0; it < items; it++ {
			b.Add("user-0", fmt.Sprintf("item-%d", it), 3)
		}
		d := b.Build()
		eng := &echoEngine{name: "echo", items: items}
		srv, err := serve.New(d, eng, 3,
			serve.WithShardIdentity(serve.ShardIdentity{ShardID: i, NumShards: n, RingEpoch: 1}))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		shards[i] = &testShard{srv: srv, eng: eng, ts: ts}
		infos[i] = ShardInfo{ID: i, Addr: strings.TrimPrefix(ts.URL, "http://")}
	}
	ring, err := NewRing(1, 0, infos)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RouterConfig{Ring: ring, Retries: 1, RetryBackoff: 5 * time.Millisecond, ProbeTimeout: 2 * time.Second}
	for _, opt := range opts {
		opt(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt, shards
}

// routerServer mounts the router on its own listener.
func routerServer(t testing.TB, rt *Router) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t testing.TB, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t testing.TB, url string, body, out interface{}) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s answer: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestRouterRecommendRoutesToOwner: a single-user read must be computed by
// exactly the owning shard, and the answer must match asking that shard
// directly.
func TestRouterRecommendRoutesToOwner(t *testing.T) {
	rt, shards := clusterFixture(t, 3)
	ts := routerServer(t, rt)
	for u := 0; u < 20; u++ {
		user := fmt.Sprintf("user-%d", u)
		owner := rt.Owner(user)
		before := make([]int64, len(shards))
		for i, s := range shards {
			before[i] = s.eng.computes.Load()
		}
		var viaRouter serve.RecommendResponse
		if status := getJSON(t, ts.URL+"/recommend?user="+user, &viaRouter); status != http.StatusOK {
			t.Fatalf("user %s: router answered %d", user, status)
		}
		var direct serve.RecommendResponse
		if status := getJSON(t, shards[owner].ts.URL+"/recommend?user="+user, &direct); status != http.StatusOK {
			t.Fatalf("user %s: owner shard answered %d", user, status)
		}
		if strings.Join(viaRouter.Items, ",") != strings.Join(direct.Items, ",") {
			t.Fatalf("user %s: routed answer %v != owner answer %v", user, viaRouter.Items, direct.Items)
		}
		for i, s := range shards {
			grew := s.eng.computes.Load() - before[i]
			if i != owner && grew > 0 {
				t.Fatalf("user %s (owner %d): shard %d computed %d times", user, owner, i, grew)
			}
		}
	}
}

// TestRouterRecommendPassesThroughClientErrors: unknown users and missing
// parameters surface as the shard's (or router's) 4xx, never a 503.
func TestRouterRecommendPassesThroughClientErrors(t *testing.T) {
	rt, _ := clusterFixture(t, 3)
	ts := routerServer(t, rt)
	if status := getJSON(t, ts.URL+"/recommend?user=never-seen", nil); status != http.StatusNotFound {
		t.Fatalf("unknown user answered %d, want 404 passthrough", status)
	}
	if status := getJSON(t, ts.URL+"/recommend", nil); status != http.StatusBadRequest {
		t.Fatalf("missing user answered %d, want 400", status)
	}
}

// TestRouterBatchScatterGather: a batch spanning all shards comes back in
// request order with per-user answers identical to direct owner calls, and
// the scatter metadata accounts for every user exactly once.
func TestRouterBatchScatterGather(t *testing.T) {
	rt, shards := clusterFixture(t, 3)
	ts := routerServer(t, rt)
	users := make([]string, 25)
	for k := range users {
		users[k] = fmt.Sprintf("user-%d", k)
	}
	users = append(users, "nobody-home")
	var got BatchResponse
	if status := postJSON(t, ts.URL+"/recommend/batch", serve.BatchRequest{Users: users}, &got); status != http.StatusOK {
		t.Fatalf("batch answered %d", status)
	}
	if len(got.Results) != len(users) {
		t.Fatalf("batch returned %d results for %d users", len(got.Results), len(users))
	}
	metaUsers := 0
	for _, m := range got.Shards {
		metaUsers += m.Users
		if m.Version != 1 {
			t.Fatalf("shard %d reported version %d, want 1", m.Shard, m.Version)
		}
	}
	if metaUsers != len(users) {
		t.Fatalf("scatter metadata covers %d users, want %d", metaUsers, len(users))
	}
	if got.Version != len(got.Shards) {
		t.Fatalf("aggregate version %d, want sum of %d shard versions", got.Version, len(got.Shards))
	}
	for k, res := range got.Results {
		if res.User != users[k] {
			t.Fatalf("result %d is for %q, want %q (order broken)", k, res.User, users[k])
		}
		if users[k] == "nobody-home" {
			if res.Error == "" {
				t.Fatal("unknown user did not get an inline error")
			}
			continue
		}
		var direct serve.RecommendResponse
		getJSON(t, shards[rt.Owner(users[k])].ts.URL+"/recommend?user="+users[k], &direct)
		if strings.Join(res.Items, ",") != strings.Join(direct.Items, ",") {
			t.Fatalf("user %s: batch answer %v != owner answer %v", users[k], res.Items, direct.Items)
		}
	}
	if status := postJSON(t, ts.URL+"/recommend/batch", serve.BatchRequest{}, nil); status != http.StatusBadRequest {
		t.Fatalf("empty batch answered %d, want 400", status)
	}
	// The router enforces the single-node size limit itself: clients must
	// not be able to tell a router from a single node by overshooting it.
	huge := make([]string, serve.MaxBatchUsers+1)
	for k := range huge {
		huge[k] = fmt.Sprintf("user-%d", k)
	}
	if status := postJSON(t, ts.URL+"/recommend/batch", serve.BatchRequest{Users: huge}, nil); status != http.StatusBadRequest {
		t.Fatalf("oversized batch answered %d, want the single-node 400", status)
	}
}

// recordingSink captures which events reached a shard's ingest endpoint.
type recordingSink struct {
	mu     chan struct{} // 1-token semaphore; avoids importing sync for one mutex
	events []serve.IngestEvent
}

func newRecordingSink() *recordingSink {
	s := &recordingSink{mu: make(chan struct{}, 1)}
	s.mu <- struct{}{}
	return s
}

// IngestEvents implements serve.IngestSink.
func (s *recordingSink) IngestEvents(ctx context.Context, events []serve.IngestEvent) (serve.IngestResult, error) {
	<-s.mu
	s.events = append(s.events, events...)
	n := len(s.events)
	s.mu <- struct{}{}
	return serve.IngestResult{Applied: len(events), Seq: uint64(n), Version: 1}, nil
}

// TestRouterIngestRoutedToOwners: every event lands at exactly its owner's
// sink, and the aggregate response accounts for all of them.
func TestRouterIngestRoutedToOwners(t *testing.T) {
	rt, shards := clusterFixture(t, 3)
	sinks := make([]*recordingSink, len(shards))
	for i, s := range shards {
		sinks[i] = newRecordingSink()
		s.srv.SetIngestSink(sinks[i])
	}
	ts := routerServer(t, rt)
	events := make([]serve.IngestEvent, 60)
	for k := range events {
		events[k] = serve.IngestEvent{User: fmt.Sprintf("user-%d", k%30), Item: fmt.Sprintf("item-%d", k%7), Value: 4}
	}
	var got IngestResponse
	if status := postJSON(t, ts.URL+"/ingest", serve.IngestRequest{Events: events}, &got); status != http.StatusOK {
		t.Fatalf("ingest answered %d", status)
	}
	if got.Applied != len(events) {
		t.Fatalf("applied %d of %d events", got.Applied, len(events))
	}
	total := 0
	for i, sink := range sinks {
		for _, ev := range sink.events {
			if owner := rt.Owner(ev.User); owner != i {
				t.Fatalf("event for %s landed on shard %d, owner is %d", ev.User, i, owner)
			}
		}
		total += len(sink.events)
	}
	if total != len(events) {
		t.Fatalf("sinks absorbed %d of %d events", total, len(events))
	}
	if status := postJSON(t, ts.URL+"/ingest", serve.IngestRequest{Events: []serve.IngestEvent{{User: "", Item: "x"}}}, nil); status != http.StatusBadRequest {
		t.Fatalf("missing-key event answered %d, want 400", status)
	}
	huge := make([]serve.IngestEvent, serve.MaxIngestEvents+1)
	for k := range huge {
		huge[k] = serve.IngestEvent{User: "u", Item: "i", Value: 1}
	}
	if status := postJSON(t, ts.URL+"/ingest", serve.IngestRequest{Events: huge}, nil); status != http.StatusBadRequest {
		t.Fatalf("oversized ingest batch answered %d, want the single-node 400", status)
	}
}

// TestRouterInfoAggregation: /info must sum versions and cache counters,
// carry every shard's row, and stay decodable as a single-node InfoResponse.
func TestRouterInfoAggregation(t *testing.T) {
	rt, shards := clusterFixture(t, 3)
	ts := routerServer(t, rt)
	// Bump shard 1 to version 3 via two engine swaps.
	for k := 0; k < 2; k++ {
		if err := shards[1].srv.Update(&echoEngine{name: "echo", items: 12}); err != nil {
			t.Fatal(err)
		}
	}
	var got InfoResponse
	if status := getJSON(t, ts.URL+"/info", &got); status != http.StatusOK {
		t.Fatalf("/info answered %d", status)
	}
	if got.Cluster.NumShards != 3 || got.Cluster.Healthy != 3 || got.Cluster.Epoch != 1 {
		t.Fatalf("cluster block %+v", got.Cluster)
	}
	if got.Version != 1+3+1 {
		t.Fatalf("aggregate version %d, want 5 (1+3+1)", got.Version)
	}
	for _, st := range got.Cluster.Shards {
		if !st.Healthy || st.Info == nil {
			t.Fatalf("shard row %+v not healthy", st)
		}
		if st.Info.Shard == nil || st.Info.Shard.ShardID != st.Shard {
			t.Fatalf("shard %d reports identity %+v", st.Shard, st.Info.Shard)
		}
		if st.EpochMismatch {
			t.Fatalf("spurious epoch mismatch on shard %d", st.Shard)
		}
	}
	// A plain single-node decoder must also understand the router's answer.
	var flat serve.InfoResponse
	if status := getJSON(t, ts.URL+"/info", &flat); status != http.StatusOK || flat.Model == "" || flat.Version != 5 {
		t.Fatalf("single-node decode of router /info: %+v", flat)
	}
}

// TestRouterDetectsEpochMismatch: a shard cut for another ring generation
// must be flagged, not silently served.
func TestRouterDetectsEpochMismatch(t *testing.T) {
	rt, shards := clusterFixture(t, 2)
	// Rebuild shard 1's server claiming a different epoch.
	d := dataset.NewBuilder("tiny", 2)
	d.Add("user-0", "item-0", 5)
	srv, err := serve.New(d.Build(), &echoEngine{name: "echo", items: 1}, 3,
		serve.WithShardIdentity(serve.ShardIdentity{ShardID: 1, NumShards: 2, RingEpoch: 9}))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv.Handler())
	t.Cleanup(ts1.Close)
	infos := rt.Ring().Shards()
	infos[1].Addr = strings.TrimPrefix(ts1.URL, "http://")
	ring, err := NewRing(1, 0, infos)
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := NewRouter(RouterConfig{Ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	ts := routerServer(t, rt2)
	var got InfoResponse
	getJSON(t, ts.URL+"/info", &got)
	if !got.Cluster.Shards[1].EpochMismatch {
		t.Fatalf("epoch mismatch not flagged: %+v", got.Cluster.Shards[1])
	}
	if got.Cluster.Shards[0].EpochMismatch {
		t.Fatal("healthy shard flagged as mismatched")
	}
	_ = shards
}

// TestRouterShardFailure: with one shard down, its users get typed 503s
// (code shard_unavailable), other users keep being served, health reports
// the cluster degraded, and batches touching the dead shard fail loudly
// rather than returning partial silence.
func TestRouterShardFailure(t *testing.T) {
	rt, shards := clusterFixture(t, 3)
	ts := routerServer(t, rt)
	dead := 1
	shards[dead].ts.Close()

	deadUser, liveUser := "", ""
	for u := 0; u < 40 && (deadUser == "" || liveUser == ""); u++ {
		user := fmt.Sprintf("user-%d", u)
		if rt.Owner(user) == dead {
			if deadUser == "" {
				deadUser = user
			}
		} else if liveUser == "" {
			liveUser = user
		}
	}

	var errBody map[string]interface{}
	if status := getJSON(t, ts.URL+"/recommend?user="+deadUser, &errBody); status != http.StatusServiceUnavailable {
		t.Fatalf("dead-shard user answered %d, want 503", status)
	}
	if errBody["code"] != "shard_unavailable" || int(errBody["shard"].(float64)) != dead {
		t.Fatalf("503 body %v lacks typed shard detail", errBody)
	}
	if status := getJSON(t, ts.URL+"/recommend?user="+liveUser, nil); status != http.StatusOK {
		t.Fatalf("live-shard user answered %d during partial outage", status)
	}

	if status := postJSON(t, ts.URL+"/recommend/batch", serve.BatchRequest{Users: []string{deadUser, liveUser}}, &errBody); status != http.StatusServiceUnavailable {
		t.Fatalf("batch touching dead shard answered %d, want 503", status)
	}
	if status := postJSON(t, ts.URL+"/recommend/batch", serve.BatchRequest{Users: []string{liveUser}}, nil); status != http.StatusOK {
		t.Fatalf("live-only batch answered %d", status)
	}

	var health HealthResponse
	if status := getJSON(t, ts.URL+"/health", &health); status != http.StatusOK {
		t.Fatalf("/health answered %d", status)
	}
	if health.Status != "degraded" || health.Healthy != 2 || len(health.Down) != 1 || health.Down[0] != dead {
		t.Fatalf("health %+v does not report the dead shard", health)
	}
	var info InfoResponse
	getJSON(t, ts.URL+"/info", &info)
	if info.Cluster.Healthy != 2 || info.Cluster.Shards[dead].Healthy {
		t.Fatalf("info %+v does not report the dead shard", info.Cluster)
	}
}

// TestRouterRetriesTransientFailure: a shard that fails once then recovers
// must be retried within the budget, invisibly to the client.
func TestRouterRetriesTransientFailure(t *testing.T) {
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		_ = json.NewEncoder(w).Encode(serve.RecommendResponse{User: "u", Items: []string{"item-1"}, Version: 1})
	}))
	t.Cleanup(flaky.Close)
	ring, err := NewRing(1, 0, []ShardInfo{{ID: 0, Addr: strings.TrimPrefix(flaky.URL, "http://")}})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(RouterConfig{Ring: ring, Retries: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := routerServer(t, rt)
	var got serve.RecommendResponse
	if status := getJSON(t, ts.URL+"/recommend?user=u", &got); status != http.StatusOK {
		t.Fatalf("flaky shard not retried: status %d", status)
	}
	if calls.Load() != 2 {
		t.Fatalf("shard called %d times, want 2 (one failure, one retry)", calls.Load())
	}
}

// TestRouterHostileShardResponse: garbage where JSON is expected must fail
// with the typed shard_response 503 — never a panic, never silent success.
func TestRouterHostileShardResponse(t *testing.T) {
	hostile := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("\x00\xff not json {{{"))
	}))
	t.Cleanup(hostile.Close)
	ring, err := NewRing(1, 0, []ShardInfo{{ID: 0, Addr: strings.TrimPrefix(hostile.URL, "http://")}})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(RouterConfig{Ring: ring, Retries: 0})
	if err != nil {
		t.Fatal(err)
	}
	ts := routerServer(t, rt)
	var errBody map[string]interface{}
	if status := postJSON(t, ts.URL+"/recommend/batch", serve.BatchRequest{Users: []string{"u"}}, &errBody); status != http.StatusServiceUnavailable {
		t.Fatalf("hostile batch answer produced status %d, want 503", status)
	}
	if errBody["code"] != "shard_response" {
		t.Fatalf("hostile answer coded %v, want shard_response", errBody["code"])
	}
	if status := postJSON(t, ts.URL+"/ingest", serve.IngestRequest{Events: []serve.IngestEvent{{User: "u", Item: "i", Value: 1}}}, &errBody); status != http.StatusServiceUnavailable {
		t.Fatalf("hostile ingest answer produced status %d, want 503", status)
	}
}

// TestNewRouterValidation pins construction errors.
func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(RouterConfig{}); !errors.Is(err, ErrBadRing) {
		t.Fatalf("nil ring: %v", err)
	}
	ring, _ := NewUniformRing(1, 2) // empty addresses
	if _, err := NewRouter(RouterConfig{Ring: ring}); !errors.Is(err, ErrBadRing) {
		t.Fatalf("address-less ring: %v", err)
	}
}

// TestReadFollowsRepointedPrimaryMidRetry pins the promotion-race fix: a
// read that burns its retry budget against a dying primary must re-resolve
// the shard against the current ring before giving up. A promotion that
// republishes the ring mid-retry re-points the primary, and with a single
// replica the new ring's replica slot holds exactly the dead ex-primary —
// so without the re-resolution the read has no failover target at all and
// a client-visible 503 leaks out of an otherwise hands-off failover.
func TestReadFollowsRepointedPrimaryMidRetry(t *testing.T) {
	newPrimary := newHealthNode(t, 0, "promoted")

	var rt *Router
	var oldAddr string
	var swapped atomic.Bool
	oldMux := http.NewServeMux()
	oldMux.HandleFunc("/recommend", func(w http.ResponseWriter, _ *http.Request) {
		// The promotion lands while the router is mid-retry against this
		// dying node: the first failed attempt triggers the ring republish,
		// then every attempt keeps failing.
		if swapped.CompareAndSwap(false, true) {
			ringB, err := NewRing(2, 0, []ShardInfo{
				{ID: 0, Addr: newPrimary.addr(), Replicas: []string{oldAddr}},
			})
			if err != nil {
				t.Errorf("building post-promotion ring: %v", err)
			} else if err := rt.UpdateRing(ringB); err != nil {
				t.Errorf("republishing ring mid-retry: %v", err)
			}
		}
		http.Error(w, "dying", http.StatusInternalServerError)
	})
	oldTS := httptest.NewServer(oldMux)
	defer oldTS.Close()
	oldAddr = strings.TrimPrefix(oldTS.URL, "http://")

	ringA, err := NewRing(1, 0, []ShardInfo{
		{ID: 0, Addr: oldAddr, Replicas: []string{newPrimary.addr()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err = NewRouter(RouterConfig{Ring: ringA, Retries: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/recommend?user=u1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read across a mid-retry promotion answered %d, want 200 from the re-pointed primary", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["served_by"] != "promoted" {
		t.Fatalf("read served by %q, want the promoted primary", body["served_by"])
	}
	if !swapped.Load() {
		t.Fatal("the dying primary was never consulted; the race under test did not occur")
	}
}
