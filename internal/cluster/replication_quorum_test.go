package cluster

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"ganc/internal/ingest"
)

// quorumRig stands up one primary WAL shipping to n real replica appliers,
// with a k-of-n write quorum.
func quorumRig(t *testing.T, n, k int, qTimeout time.Duration) (*ingest.Log, *Shipper, []*countingBackend) {
	t.Helper()
	walPath := filepath.Join(t.TempDir(), "quorum.wal")
	wal, err := ingest.OpenLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wal.Close() })
	backends := make([]*countingBackend, n)
	addrs := make([]string, n)
	for i := range backends {
		backends[i] = &countingBackend{}
		addrs[i] = replicaServer(t, NewReplicaApplier(0, 1, backends[i]))
	}
	sp := NewShipper(ShipperConfig{
		Shard: 0, Epoch: 1, WALPath: walPath,
		Replicas:    addrs,
		WriteQuorum: k, QuorumTimeout: qTimeout,
		ShipTimeout: 2 * time.Second, RetryBackoff: 2 * time.Millisecond,
	})
	t.Cleanup(sp.Close)
	return wal, sp, backends
}

func TestQuorumCommitAdvancesDurabilityFrontier(t *testing.T) {
	wal, sp, backends := quorumRig(t, 2, 2, 2*time.Second)
	batch := evs(1, 4)
	if _, err := wal.Append(batch); err != nil {
		t.Fatal(err)
	}
	sp.Commit(1, batch)

	// Commit returned, so k=2 of 2 replicas acknowledged the head: the write
	// is already on every quorum member, no WaitSync needed.
	for i, b := range backends {
		if got := b.Seq(); got != 4 {
			t.Fatalf("replica %d cursor %d immediately after a quorum-acked commit, want 4", i, got)
		}
	}
	st := sp.Status()
	if st.WriteQuorum != 2 {
		t.Fatalf("status reports write quorum %d, want 2", st.WriteQuorum)
	}
	if st.QuorumAckedSeq != 4 {
		t.Fatalf("quorum-acked frontier %d, want 4", st.QuorumAckedSeq)
	}
	if st.QuorumTimeouts != 0 {
		t.Fatalf("%d quorum timeouts on a healthy pair, want 0", st.QuorumTimeouts)
	}
}

func TestQuorumFrontierIsKthLargestAck(t *testing.T) {
	// k=1 of 2: the frontier follows the freshest replica, not the laggard.
	wal, sp, backends := quorumRig(t, 2, 1, 2*time.Second)

	// Take replica 1 down; k=1 commits still succeed through replica 0.
	backends[1].mu.Lock()
	backends[1].failErr = errors.New("injected outage")
	backends[1].mu.Unlock()

	batch := evs(1, 3)
	if _, err := wal.Append(batch); err != nil {
		t.Fatal(err)
	}
	sp.Commit(1, batch)

	st := sp.Status()
	if st.QuorumAckedSeq != 3 {
		t.Fatalf("k=1 frontier %d with one live replica at 3, want 3", st.QuorumAckedSeq)
	}
	if got := backends[0].Seq(); got != 3 {
		t.Fatalf("live replica cursor %d, want 3", got)
	}

	// With k=2 semantics the same state would pin the frontier at the
	// laggard: kthLargest is the durability floor, not the ceiling.
	if got := kthLargest([]uint64{3, 0}, 2); got != 0 {
		t.Fatalf("kthLargest([3,0], 2) = %d, want 0", got)
	}
	if got := kthLargest([]uint64{3, 0}, 1); got != 3 {
		t.Fatalf("kthLargest([3,0], 1) = %d, want 3", got)
	}
}

func TestQuorumTimeoutDegradesToAsyncCatchUp(t *testing.T) {
	wal, sp, backends := quorumRig(t, 2, 2, 25*time.Millisecond)

	backends[1].mu.Lock()
	backends[1].failErr = errors.New("injected outage")
	backends[1].mu.Unlock()

	batch := evs(1, 2)
	if _, err := wal.Append(batch); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	sp.Commit(1, batch) // must return after the quorum timeout, not block forever
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("quorum-degraded commit took %v", elapsed)
	}
	if n := sp.Status().QuorumTimeouts; n != 1 {
		t.Fatalf("recorded %d quorum timeouts, want 1", n)
	}

	// The outage heals; the background catch-up loop must still converge the
	// laggard and restore the quorum frontier without another commit.
	backends[1].mu.Lock()
	backends[1].failErr = nil
	backends[1].mu.Unlock()
	if err := sp.WaitSync(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st := sp.Status(); st.QuorumAckedSeq != 2 {
		t.Fatalf("frontier %d after catch-up, want 2", st.QuorumAckedSeq)
	}
}
