package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"ganc/internal/serve"
)

// swappingSink is an IngestSink that republishes a fresh engine generation
// on every routed slice — the shape internal/ingest gives each shard — so
// the router's scatter-gather paths race real per-shard version swaps.
type swappingSink struct {
	srv    *serve.Server
	shard  int
	slices atomic.Int64
}

// IngestEvents implements serve.IngestSink.
func (s *swappingSink) IngestEvents(ctx context.Context, events []serve.IngestEvent) (serve.IngestResult, error) {
	n := s.slices.Add(1)
	if err := s.srv.Update(&echoEngine{name: fmt.Sprintf("shard%d-gen%d", s.shard, n), items: 12}); err != nil {
		return serve.IngestResult{}, err
	}
	return serve.IngestResult{Applied: len(events), Seq: uint64(n), Version: s.srv.Version()}, nil
}

// TestRouterScatterGatherRacesShardPublishes is the cluster-tier sibling of
// internal/serve's swap_race_test: scatter-gather batch reads through the
// router racing concurrent per-shard ingest publishes (each slice swapping
// that shard's engine generation) and /info aggregation. Run under -race in
// CI. The functional assertions are exact per-shard version accounting —
// every shard's final version is 1 + the slices routed to it, the aggregate
// /info version is the sum across shards — and that every response the
// router hands out cites versions that actually existed.
func TestRouterScatterGatherRacesShardPublishes(t *testing.T) {
	rt, shards := clusterFixture(t, 3)
	sinks := make([]*swappingSink, len(shards))
	for i, s := range shards {
		sinks[i] = &swappingSink{srv: s.srv, shard: i}
		s.srv.SetIngestSink(sinks[i])
	}
	ts := routerServer(t, rt)

	// One event per shard per batch, so every ingest POST swaps every
	// shard's generation exactly once — the accounting below depends on it.
	perShardUser := make([]string, len(shards))
	for u := 0; u < 40; u++ {
		user := fmt.Sprintf("user-%d", u)
		if owner := rt.Owner(user); perShardUser[owner] == "" {
			perShardUser[owner] = user
		}
	}
	batchEvents := make([]serve.IngestEvent, 0, len(shards))
	for _, user := range perShardUser {
		if user == "" {
			t.Fatal("fixture users do not cover every shard")
		}
		batchEvents = append(batchEvents, serve.IngestEvent{User: user, Item: "item-1", Value: 4})
	}

	const (
		writers    = 3
		readers    = 4
		iterations = 30
	)
	start := make(chan struct{})
	errs := make(chan error, (writers+readers*2)*iterations*4)
	var wg sync.WaitGroup

	// Ingest writers: every batch fans one slice to every shard.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for k := 0; k < iterations; k++ {
				var res IngestResponse
				status := postJSON(t, ts.URL+"/ingest", serve.IngestRequest{Events: batchEvents}, &res)
				if status != http.StatusOK {
					errs <- fmt.Errorf("writer %d: ingest status %d", w, status)
					continue
				}
				if res.Applied != len(batchEvents) || len(res.Shards) != len(shards) {
					errs <- fmt.Errorf("writer %d: applied %d across %d shards", w, res.Applied, len(res.Shards))
				}
			}
		}(w)
	}

	// Batch readers: scatter-gather across all shards while versions churn.
	users := make([]string, 12)
	for k := range users {
		users[k] = fmt.Sprintf("user-%d", k)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for k := 0; k < iterations; k++ {
				var res BatchResponse
				status := postJSON(t, ts.URL+"/recommend/batch", serve.BatchRequest{Users: users}, &res)
				if status != http.StatusOK {
					errs <- fmt.Errorf("batch reader %d: status %d", r, status)
					continue
				}
				if len(res.Results) != len(users) {
					errs <- fmt.Errorf("batch reader %d: %d results for %d users", r, len(res.Results), len(users))
					continue
				}
				sum := 0
				for _, m := range res.Shards {
					// A slice served at any real generation is fine; a version
					// outside [1, current] never existed.
					if m.Version < 1 || m.Version > shards[m.Shard].srv.Version() {
						errs <- fmt.Errorf("batch reader %d: impossible version %d on shard %d", r, m.Version, m.Shard)
					}
					sum += m.Version
				}
				if res.Version != sum {
					errs <- fmt.Errorf("batch reader %d: aggregate version %d != shard sum %d", r, res.Version, sum)
				}
			}
		}(r)
	}

	// Info readers: aggregation must stay coherent mid-churn.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for k := 0; k < iterations; k++ {
				var info InfoResponse
				status := getJSON(t, ts.URL+"/info", &info)
				if status != http.StatusOK {
					errs <- fmt.Errorf("info reader %d: status %d", r, status)
					continue
				}
				if info.Cluster.Healthy != len(shards) {
					errs <- fmt.Errorf("info reader %d: %d healthy shards mid-churn", r, info.Cluster.Healthy)
					continue
				}
				sum := 0
				for _, st := range info.Cluster.Shards {
					if st.Info == nil {
						errs <- fmt.Errorf("info reader %d: shard %d row has no info", r, st.Shard)
						continue
					}
					if v := st.Info.Version; v < 1 || v > shards[st.Shard].srv.Version() {
						errs <- fmt.Errorf("info reader %d: impossible version %d on shard %d", r, v, st.Shard)
					}
					sum += st.Info.Version
				}
				if info.Version != sum {
					errs <- fmt.Errorf("info reader %d: aggregate version %d != shard sum %d", r, info.Version, sum)
				}
			}
		}(r)
	}

	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Exact per-shard accounting: every writer batch put exactly one slice
	// on every shard, and every slice swapped exactly one generation in.
	wantVersion := 1 + writers*iterations
	total := 0
	for i, s := range shards {
		if got := s.srv.Version(); got != wantVersion {
			t.Fatalf("shard %d at version %d after %d routed slices, want %d", i, got, writers*iterations, wantVersion)
		}
		if got := sinks[i].slices.Load(); got != int64(writers*iterations) {
			t.Fatalf("shard %d absorbed %d slices, want %d", i, got, writers*iterations)
		}
		total += s.srv.Version()
	}
	var info InfoResponse
	if status := getJSON(t, ts.URL+"/info", &info); status != http.StatusOK {
		t.Fatalf("final /info status %d", status)
	}
	if info.Version != total {
		t.Fatalf("final aggregate version %d, want %d", info.Version, total)
	}
}
