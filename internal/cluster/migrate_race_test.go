package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ganc/internal/obs"
)

// TestMigrationApplierRacesConcurrentShippers is the exact-accounting half of
// the migration race suite: many users ship their histories to one
// destination concurrently, every user twice (the drain-pass replay a real
// reshard performs), with a chunk size that forces multi-chunk transfers.
// Under -race the applier's per-user serialization is exercised for real;
// afterward the accounting must be exact — every event applied exactly once,
// every user completed exactly once, per-user order preserved.
func TestMigrationApplierRacesConcurrentShippers(t *testing.T) {
	const users, perUser = 24, 17
	backend := &countingBackend{}
	ma := NewMigrationApplier(3, 2, backend)
	addr := migrateServer(t, ma)

	var wg sync.WaitGroup
	var applied atomic.Int64
	errs := make(chan error, users*2)
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("mover-%03d", u)
		history := userEvs(user, 1, perUser)
		for round := 0; round < 2; round++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				n, err := ShipUserHistory(nil, addr, 3, 2, user, history, 5, 0)
				if err != nil {
					errs <- err
					return
				}
				applied.Add(int64(n))
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Exactly once: the duplicate shippers' acknowledgments and the applier's
	// own counter both land on users*perUser, never a multiple of it.
	if got := applied.Load(); got != users*perUser {
		t.Fatalf("shippers were acknowledged %d applied events, want %d", got, users*perUser)
	}
	if got := ma.EventsApplied(); got != users*perUser {
		t.Fatalf("EventsApplied = %d, want %d", got, users*perUser)
	}
	if got := ma.UsersCompleted(); got != users {
		t.Fatalf("UsersCompleted = %d, want %d", got, users)
	}
	backend.mu.Lock()
	defer backend.mu.Unlock()
	if got := len(backend.events); got != users*perUser {
		t.Fatalf("backend holds %d events, want %d", got, users*perUser)
	}
	pos := make(map[string]int)
	for _, ev := range backend.events {
		pos[ev.User]++
		if int(ev.Value) != pos[ev.User] {
			t.Fatalf("user %q received position %d as its event %d (per-user order broken)", ev.User, int(ev.Value), pos[ev.User])
		}
	}
}

// TestRouterReshardRoutingRacesFlips is the router half of the race suite:
// readers resolve read and write targets while the coordinator flips moving
// users one by one and finally completes the transition. Invariants checked
// under -race: writes route by the next ring from BeginReshard on; a read
// for a moving user lands on either its old or its new owner and never
// anywhere else, monotonically (once a reader sees the new owner, the flip
// has happened and stays); non-moving users never change owner; and the
// router's double-dispatch counter exactly matches the metric series and
// bounds the old-owner reads the readers observed.
func TestRouterReshardRoutingRacesFlips(t *testing.T) {
	keys := ringKeys(600)
	old, next := growRings(t, 2, 1)
	reg := obs.NewRegistry()
	rt, err := NewRouter(RouterConfig{Ring: old, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	moving := MovedUsers(old, next, keys)
	if len(moving) == 0 {
		t.Fatal("fixture moved no users")
	}
	if err := rt.BeginReshard(next, moving); err != nil {
		t.Fatal(err)
	}
	if !rt.Resharding() {
		t.Fatal("router does not report an in-flight reshard")
	}

	var oldReads atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	bad := make(chan string, 8)
	report := func(format string, args ...any) {
		select {
		case bad <- fmt.Sprintf(format, args...):
		default:
		}
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			flipped := make(map[string]bool)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := keys[(i*7+w*131)%len(keys)]
				mv, isMover := moving[u]
				if got := rt.writeTarget(u); got != next.Owner(u) {
					report("write for %q routed to %d, want next-ring owner %d", u, got, next.Owner(u))
					return
				}
				got := rt.readTarget(u)
				switch {
				case !isMover:
					if got != next.Owner(u) || got != old.Owner(u) {
						report("read for non-mover %q routed to %d (old %d, next %d)", u, got, old.Owner(u), next.Owner(u))
						return
					}
				case got == mv.From && !flipped[u]:
					oldReads.Add(1)
				case got == mv.To:
					flipped[u] = true // monotone: old owner must never reappear
				default:
					report("read for mover %q routed to %d (from %d, to %d, seen-flip %v)", u, got, mv.From, mv.To, flipped[u])
					return
				}
			}
		}(w)
	}

	// The coordinator: flip every mover (twice — flips are idempotent), then
	// complete.
	for u := range moving {
		rt.FlipUser(u)
		rt.FlipUser(u)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-bad:
		t.Fatal(msg)
	default:
	}
	if err := rt.CompleteReshard(next); err != nil {
		t.Fatal(err)
	}
	if rt.Resharding() {
		t.Fatal("router still reports a reshard after completion")
	}

	// Exact accounting: every old-owner read a worker observed went through
	// the router's counting branch and nothing else increments it, so the
	// counter, the metric series and the workers' observations all agree.
	dd := rt.DoubleDispatches()
	if dd != oldReads.Load() {
		t.Fatalf("router counted %d double-dispatches, workers observed %d old-owner reads", dd, oldReads.Load())
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatalf("registry failed strict parse: %v", err)
	}
	if v, ok := sc.Value("ganc_router_reshard_double_dispatches_total"); !ok || int64(v) != dd {
		t.Fatalf("metric counted %v double-dispatches (%v), router counted %d", v, ok, dd)
	}
	if v, ok := sc.Value("ganc_router_reshard_users_migrated_total"); !ok || int(v) != len(moving) {
		t.Fatalf("metric counted %v flipped users (%v), want %d (idempotent flips must count once)", v, ok, len(moving))
	}

	// After completion routing is plain next-ring ownership, no counting.
	for _, u := range keys {
		if got := rt.readTarget(u); got != next.Owner(u) {
			t.Fatalf("post-reshard read for %q routed to %d, want %d", u, got, next.Owner(u))
		}
	}
	if rt.DoubleDispatches() != dd {
		t.Fatal("post-reshard reads still count double-dispatches")
	}
}

// TestRouterReshardStateMachineRules pins the transition edges: begin
// requires a newer epoch and refuses a second transition, complete requires a
// matching shape, abort reverts routing to the current ring.
func TestRouterReshardStateMachineRules(t *testing.T) {
	keys := ringKeys(200)
	old, next := growRings(t, 2, 5)
	rt, err := NewRouter(RouterConfig{Ring: old})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.BeginReshard(old, nil); err == nil {
		t.Fatal("begin accepted a ring at the current epoch")
	}
	if err := rt.CompleteReshard(next); err == nil {
		t.Fatal("complete accepted with no transition in flight")
	}
	moving := MovedUsers(old, next, keys)
	if err := rt.BeginReshard(next, moving); err != nil {
		t.Fatal(err)
	}
	if err := rt.BeginReshard(next, moving); err == nil {
		t.Fatal("begin accepted a second in-flight transition")
	}
	if err := rt.CompleteReshard(old); err == nil {
		t.Fatal("complete accepted a ring of the wrong shape")
	}
	rt.AbortReshard()
	if rt.Resharding() {
		t.Fatal("abort left the transition in flight")
	}
	for _, u := range keys {
		if got := rt.readTarget(u); got != old.Owner(u) {
			t.Fatalf("post-abort read for %q routed to %d, want the current ring's %d", u, got, old.Owner(u))
		}
		if got := rt.writeTarget(u); got != old.Owner(u) {
			t.Fatalf("post-abort write for %q routed to %d, want the current ring's %d", u, got, old.Owner(u))
		}
	}
}
