package cluster

import (
	"fmt"
	"io"
	"net/http"
	"testing"
)

// BenchmarkRouterOverhead measures the price of the extra scatter-gather hop
// on the single-user read path: the same GET /recommend issued directly
// against a shard server versus through the router fronting it. The delta is
// the router's per-request cost (owner lookup, proxy call, passthrough) —
// the overhead every cache hit pays in a cluster, which DESIGN.md §10 weighs
// against the aggregate-cache win.
func BenchmarkRouterOverhead(b *testing.B) {
	rt, shards := clusterFixture(b, 1)
	routerTS := routerServer(b, rt)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}

	get := func(b *testing.B, url string) {
		b.Helper()
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d from %s", resp.StatusCode, url)
		}
	}

	users := make([]string, 16)
	for k := range users {
		users[k] = fmt.Sprintf("user-%d", k)
	}

	b.Run("direct", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			get(b, shards[0].ts.URL+"/recommend?user="+users[n%len(users)])
		}
	})
	b.Run("routed", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			get(b, routerTS.URL+"/recommend?user="+users[n%len(users)])
		}
	})
}
