package cluster

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ganc/internal/obs"
)

// RolePrimary and RoleReplica name a node's role in a detector liveness row.
const (
	RolePrimary = "primary"
	RoleReplica = "replica"
)

// NodeLiveness is one node's row in the detector's cached cluster view: the
// outcome of its most recent /health sample plus the suspicion state
// accumulated across samples.
type NodeLiveness struct {
	// Shard and Addr identify the node; Role is RolePrimary or RoleReplica.
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	Role  string `json:"role"`
	// Alive reports whether the node answered its most recent probe with a
	// decodable /health document.
	Alive bool `json:"alive"`
	// Suspected rises after SuspectAfter consecutive missed probes and falls
	// on the first successful one. A suspected primary is skipped by the
	// router's read path and, under auto-failover, triggers promotion.
	Suspected bool `json:"suspected"`
	// Misses is the current run of consecutive failed probes.
	Misses int `json:"misses"`
	// AppliedSeq and LagEvents echo the node's replication cursor from its
	// last successful probe (zero for nodes that report no replication
	// status). They are the freshness signal read failover selects by.
	AppliedSeq uint64 `json:"applied_seq"`
	LagEvents  uint64 `json:"lag_events"`
	// Error carries the probe failure when Alive is false.
	Error string `json:"error,omitempty"`
}

// DetectorConfig assembles a Detector.
type DetectorConfig struct {
	// Ring supplies the node set to sample. It is consulted every interval,
	// so promotions and reshards are picked up without restarting the
	// detector. It may return nil while the topology is still booting; the
	// detector skips those ticks. Required.
	Ring func() *Ring
	// Client is the HTTP client used for probes (default: keep-alive pooled,
	// no global timeout — ProbeTimeout bounds each probe).
	Client *http.Client
	// Interval is the sampling period (default 250ms).
	Interval time.Duration
	// ProbeTimeout bounds one node's /health probe (default 1s).
	ProbeTimeout time.Duration
	// SuspectAfter is how many consecutive missed probes turn a node
	// suspected (default 3). With the default interval, suspicion takes
	// ~750ms of sustained unreachability — long enough to ride out a GC
	// pause, short enough that failover beats a client timeout.
	SuspectAfter int
	// OnSuspectPrimary, when set, fires (in its own goroutine) the first
	// time a shard's primary turns suspected, once per outage episode: the
	// latch re-arms when the primary answers a probe again or the shard's
	// primary address changes (a promotion installed a new primary). The
	// cluster facade hangs automatic promotion off this hook.
	OnSuspectPrimary func(shard int, addr string)
	// Metrics, when set, registers the detector's probe and suspicion series.
	Metrics *obs.Registry
}

// detectorView is one immutable sample generation, swapped in atomically.
type detectorView struct {
	rows map[string]NodeLiveness // keyed by node address
}

// Detector maintains a cached liveness view of every node in the ring by
// sampling /health on a fixed interval. Readers (the router's failover path,
// /health aggregation, the facade's auto-promotion hook) consult the cached
// view and never probe inline. One detector serves any number of readers.
type Detector struct {
	ringFn       func() *Ring
	client       *http.Client
	interval     time.Duration
	probeTimeout time.Duration
	suspectAfter int
	onSuspect    func(shard int, addr string)

	view atomic.Pointer[detectorView]

	// misses and fired are touched only by the sampling goroutine: misses
	// holds consecutive-failure runs per address, fired the per-shard
	// one-shot latch for the suspicion callback (keyed by the primary
	// address it fired for, so a promotion re-arms it).
	misses map[string]int
	fired  map[int]string

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	dm *detectorMetrics
}

// detectorMetrics is the detector's instrument set (scalar: the node set is
// dynamic, so rows are not pre-sized per shard).
type detectorMetrics struct {
	probes    *obs.Counter
	failures  *obs.Counter
	live      *obs.Gauge
	suspected *obs.Gauge
}

func newDetectorMetrics(reg *obs.Registry) *detectorMetrics {
	return &detectorMetrics{
		probes: reg.Counter("ganc_detector_probes_total",
			"Node /health probes issued by the failure detector."),
		failures: reg.Counter("ganc_detector_probe_failures_total",
			"Detector probes that failed (unreachable node or undecodable /health)."),
		live: reg.Gauge("ganc_detector_live_nodes",
			"Nodes that answered their most recent detector probe."),
		suspected: reg.Gauge("ganc_detector_suspected_nodes",
			"Nodes past the consecutive-miss suspicion threshold."),
	}
}

// NewDetector builds the detector and starts its sampling loop. Close stops
// the loop and waits for any in-flight suspicion callback.
func NewDetector(cfg DetectorConfig) *Detector {
	d := newDetector(cfg)
	d.wg.Add(1)
	go d.run()
	return d
}

// newDetector builds a detector without starting the sampling loop — the
// fuzz harness drives sample() synchronously.
func newDetector(cfg DetectorConfig) *Detector {
	d := &Detector{
		ringFn:       cfg.Ring,
		client:       cfg.Client,
		interval:     cfg.Interval,
		probeTimeout: cfg.ProbeTimeout,
		suspectAfter: cfg.SuspectAfter,
		onSuspect:    cfg.OnSuspectPrimary,
		misses:       make(map[string]int),
		fired:        make(map[int]string),
		stop:         make(chan struct{}),
	}
	if d.client == nil {
		transport := http.DefaultTransport.(*http.Transport).Clone()
		transport.MaxIdleConnsPerHost = 16
		d.client = &http.Client{Transport: transport}
	}
	if d.interval <= 0 {
		d.interval = 250 * time.Millisecond
	}
	if d.probeTimeout <= 0 {
		d.probeTimeout = time.Second
	}
	if d.suspectAfter <= 0 {
		d.suspectAfter = 3
	}
	if cfg.Metrics != nil {
		d.dm = newDetectorMetrics(cfg.Metrics)
	}
	return d
}

// Close stops the sampling loop and waits for it — and for any suspicion
// callback it spawned — to finish. Safe to call more than once.
func (d *Detector) Close() {
	d.once.Do(func() { close(d.stop) })
	d.wg.Wait()
}

// run is the sampling loop: one sample immediately, then one per interval.
func (d *Detector) run() {
	defer d.wg.Done()
	d.sample()
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			d.sample()
		}
	}
}

// detectorNode is one sampling target resolved from the ring.
type detectorNode struct {
	shard int
	addr  string
	role  string
}

// nodes flattens the current ring into the sampling target list.
func (d *Detector) nodes() []detectorNode {
	ring := d.ringFn()
	if ring == nil {
		return nil
	}
	var out []detectorNode
	for i := 0; i < ring.NumShards(); i++ {
		info := ring.Shard(i)
		out = append(out, detectorNode{shard: info.ID, addr: info.Addr, role: RolePrimary})
		for _, addr := range info.Replicas {
			out = append(out, detectorNode{shard: info.ID, addr: addr, role: RoleReplica})
		}
	}
	return out
}

// sample probes every node once, swaps in the new view, and fires the
// suspicion callback for primaries that just crossed the threshold. A
// malformed /health body marks the node dead for this sample — it never
// panics and never installs garbage cursors in the view (the hostile-input
// fuzz target pins this).
func (d *Detector) sample() {
	targets := d.nodes()
	if len(targets) == 0 {
		return
	}
	type outcome struct {
		seq uint64
		lag uint64
		err error
	}
	ctx, cancel := context.WithTimeout(context.Background(), d.probeTimeout)
	results := make([]outcome, len(targets))
	var pwg sync.WaitGroup
	for i, n := range targets {
		pwg.Add(1)
		go func(i int, addr string) {
			defer pwg.Done()
			health, err := probeHealth(ctx, d.client, addr)
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			var o outcome
			if repl := health.Replication; repl != nil {
				o.seq = repl.AppliedSeq
				o.lag = repl.LagEvents
			}
			results[i] = o
		}(i, n.addr)
	}
	pwg.Wait()
	cancel()

	rows := make(map[string]NodeLiveness, len(targets))
	live, suspected := 0, 0
	for i, n := range targets {
		o := results[i]
		d.dm.probe(o.err != nil)
		row := NodeLiveness{Shard: n.shard, Addr: n.addr, Role: n.role}
		if o.err != nil {
			d.misses[n.addr]++
			row.Misses = d.misses[n.addr]
			row.Suspected = row.Misses >= d.suspectAfter
			row.Error = o.err.Error()
		} else {
			d.misses[n.addr] = 0
			row.Alive = true
			row.AppliedSeq = o.seq
			row.LagEvents = o.lag
		}
		if row.Alive {
			live++
		}
		if row.Suspected {
			suspected++
		}
		rows[n.addr] = row

		if n.role != RolePrimary {
			continue
		}
		// One-shot suspicion callback per outage episode: re-arm when the
		// primary answers again or a promotion changed the shard's primary.
		if firedAddr, ok := d.fired[n.shard]; ok && (row.Alive || firedAddr != n.addr) {
			delete(d.fired, n.shard)
		}
		if row.Suspected && d.fired[n.shard] == "" && d.onSuspect != nil {
			d.fired[n.shard] = n.addr
			d.wg.Add(1)
			go func(shard int, addr string) {
				defer d.wg.Done()
				d.onSuspect(shard, addr)
			}(n.shard, n.addr)
		}
	}
	// Prune miss counters for nodes that left the ring.
	for addr := range d.misses {
		if _, ok := rows[addr]; !ok {
			delete(d.misses, addr)
		}
	}
	d.view.Store(&detectorView{rows: rows})
	d.dm.levels(live, suspected)
}

// Node returns the cached liveness row for an address. ok is false when the
// detector has not sampled the address yet.
func (d *Detector) Node(addr string) (NodeLiveness, bool) {
	v := d.view.Load()
	if v == nil {
		return NodeLiveness{}, false
	}
	row, ok := v.rows[addr]
	return row, ok
}

// View returns the cached liveness rows sorted by shard, primary first —
// the /health detector section.
func (d *Detector) View() []NodeLiveness {
	v := d.view.Load()
	if v == nil {
		return nil
	}
	out := make([]NodeLiveness, 0, len(v.rows))
	for _, row := range v.rows {
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		if out[i].Role != out[j].Role {
			return out[i].Role == RolePrimary
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// FreshestReplica picks the best failover target among the given replica
// addresses from the cached view: alive, not suspected, lag within maxLag,
// highest applied cursor. known reports whether the view covers any of the
// addresses at all — when it does not (the detector has never sampled this
// shard's replicas), the caller should fall back to inline probing.
func (d *Detector) FreshestReplica(replicas []string, maxLag int64) (addr string, known, ok bool) {
	v := d.view.Load()
	if v == nil {
		return "", false, false
	}
	var best NodeLiveness
	for _, a := range replicas {
		row, present := v.rows[a]
		if !present {
			continue
		}
		known = true
		if !row.Alive || row.Suspected {
			continue
		}
		if maxLag >= 0 && row.LagEvents > uint64(maxLag) {
			continue
		}
		if !ok || row.AppliedSeq > best.AppliedSeq {
			best, ok = row, true
		}
	}
	return best.Addr, known, ok
}

// probe records one probe outcome.
func (dm *detectorMetrics) probe(failed bool) {
	if dm == nil {
		return
	}
	dm.probes.Inc()
	if failed {
		dm.failures.Inc()
	}
}

// levels records the live and suspected node counts of the latest sample.
func (dm *detectorMetrics) levels(live, suspected int) {
	if dm != nil {
		dm.live.Set(float64(live))
		dm.suspected.Set(float64(suspected))
	}
}
