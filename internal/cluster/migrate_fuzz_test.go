package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzMigrateHostileBody throws attacker-controlled bytes at the POST
// /migrate endpoint. The contract under fuzz: the handler never panics,
// allocation stays bounded (the reader is capped before decoding), every
// answer is a decodable MigrateResponse, the status is always from the
// protocol's taxonomy, refusals carry a typed code, and replaying a body is
// idempotent — a second delivery of an accepted chunk applies nothing, and
// the backend's event count always equals the sum of acknowledged applies.
func FuzzMigrateHostileBody(f *testing.F) {
	f.Add([]byte(`{"shard":0,"epoch":1,"user":"u","first_idx":1,"total":1,"events":[{"user":"u","item":"i","value":1}]}`))
	f.Add([]byte(`{"shard":7,"epoch":1,"user":"u","first_idx":1,"events":[{"user":"u","item":"i","value":1}]}`))
	f.Add([]byte(`{"shard":0,"epoch":0,"user":"u","first_idx":1,"events":[{"user":"u","item":"i","value":1}]}`))
	f.Add([]byte(`{"shard":0,"epoch":1,"user":"u","first_idx":999,"total":999,"events":[{"user":"u","item":"i","value":1}]}`))
	f.Add([]byte(`{"shard":0,"epoch":1,"user":"u","first_idx":0,"events":[{"user":"u","item":"i","value":1}]}`))
	f.Add([]byte(`{"shard":0,"epoch":1,"user":"u","first_idx":18446744073709551615,"events":[{"user":"u","item":"i","value":1},{"user":"u","item":"i","value":2}]}`))
	f.Add([]byte(`{"shard":0,"epoch":1,"user":"u","first_idx":1,"events":[{"user":"other","item":"i","value":1}]}`))
	f.Add([]byte(`{"shard":0,"epoch":1,"user":"","first_idx":1,"events":[{"user":"","item":"i","value":1}]}`))
	f.Add([]byte(`{"shard":-1,"user":"u"}`))
	f.Add([]byte(`{"shard":0,"epoch":1,"user":"u"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Add(bytes.Repeat([]byte(`[`), 4096))

	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusBadRequest:          true,
		http.StatusConflict:            true,
		http.StatusInternalServerError: true,
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		backend := &countingBackend{}
		ma := NewMigrationApplier(0, 1, backend)
		handler := ma.Handler()

		// Fire the same body twice: delivery retries must be idempotent.
		var acked int64
		var firstApplied int
		for round := 0; round < 2; round++ {
			req := httptest.NewRequest(http.MethodPost, "/migrate", bytes.NewReader(raw))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)

			if !allowed[rec.Code] {
				t.Fatalf("status %d outside the migrate taxonomy for body %q", rec.Code, truncate(raw))
			}
			var resp MigrateResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("undecodable answer %q for body %q", rec.Body.String(), truncate(raw))
			}
			if rec.Code != http.StatusOK {
				if resp.Code == "" || resp.Error == "" {
					t.Fatalf("refusal %d without a typed code/error: %q", rec.Code, rec.Body.String())
				}
				if resp.Applied != 0 {
					t.Fatalf("refusal %d claims %d applied events", rec.Code, resp.Applied)
				}
			}
			if round == 0 {
				firstApplied = resp.Applied
			} else if resp.Applied != 0 {
				t.Fatalf("replaying a body applied %d more events after %d (retries must be idempotent)",
					resp.Applied, firstApplied)
			}
			acked += int64(resp.Applied)
			if got := int64(len(backendEvents(backend))); got != acked {
				t.Fatalf("backend holds %d events, acknowledgments total %d", got, acked)
			}
		}
	})
}

// backendEvents snapshots a countingBackend's applied events under its lock.
func backendEvents(b *countingBackend) []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]int, len(b.events))
	for i, ev := range b.events {
		out[i] = int(ev.Value)
	}
	return out
}

// FuzzMigrateSequenceStream feeds an applier a fuzz-shaped stream of per-user
// history chunks — duplicated, overlapping, gapped, out of order, probes,
// interleaved across users — and model-checks the cursor rules after every
// call: a cursor never regresses, a gap refusal applies nothing, an accepted
// chunk lands the cursor exactly at its last position, Done fires exactly
// when the cursor reaches the announced total, and at the end each user's
// applied events are exactly positions 1..cursor in order. Every chunk goes
// through the wire codec first, so the stream exercises exactly what
// ShipUserHistory can send.
func FuzzMigrateSequenceStream(f *testing.F) {
	f.Add([]byte{0, 1, 4, 0, 1, 4, 0, 5, 2})          // apply, duplicate, extend
	f.Add([]byte{1, 1, 3, 1, 9, 2, 1, 4, 3})          // gap, then heal
	f.Add([]byte{0, 1, 0, 1, 1, 5, 0, 2, 0})          // probes around batches
	f.Add([]byte{0, 255, 7, 0, 1, 7, 1, 255, 7})      // far-future gaps
	f.Add([]byte{0, 1, 1, 1, 1, 1, 0, 2, 1, 1, 2, 1}) // interleaved single-event chains
	f.Add([]byte{2, 1, 6, 2, 1, 6, 3, 7, 6})          // replay storms on more users

	ctx := context.Background()
	f.Fuzz(func(t *testing.T, ops []byte) {
		backend := &countingBackend{}
		ma := NewMigrationApplier(0, 1, backend)
		users := []string{"alice", "bob", "carol", "dave"}
		cursors := make(map[string]uint64)
		totals := make(map[string]uint64)
		for i := 0; i+2 < len(ops) && i < 192; i += 3 {
			user := users[int(ops[i])%len(users)]
			first := uint64(ops[i+1])
			n := int(ops[i+2] % 8)
			req := MigrateRequest{Shard: 0, Epoch: 1, User: user, FirstIdx: first}
			if n > 0 {
				req.Events = userEvs(user, int(first), n)
				// Announce a stable per-user total so Done has one truth: the
				// largest last-position this stream has mentioned for the user.
				if last := first + uint64(n) - 1; last > totals[user] {
					totals[user] = last
				}
			}
			req.Total = totals[user]

			// Round-trip through the wire codec: chunks a real sender could not
			// encode (first_idx 0 with events) are a parse refusal, not an
			// applier input.
			payload, err := json.Marshal(req)
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := ParseMigrateRequest(bytes.NewReader(payload))
			if err != nil {
				if !errors.Is(err, ErrMigrateBody) {
					t.Fatalf("untyped parse failure: %v", err)
				}
				continue
			}
			cursor := cursors[user]
			resp, err := ma.Apply(ctx, parsed)
			if resp.AppliedIdx < cursor {
				t.Fatalf("user %q cursor regressed %d -> %d on chunk [%d,+%d)", user, cursor, resp.AppliedIdx, first, n)
			}
			last := first + uint64(n) - 1
			switch {
			case err == nil && n == 0:
				if resp.Applied != 0 || resp.AppliedIdx != cursor {
					t.Fatalf("probe for %q answered %+v at cursor %d", user, resp, cursor)
				}
			case err == nil && last <= cursor:
				if resp.Applied != 0 || resp.AppliedIdx != cursor {
					t.Fatalf("duplicate [%d,%d] for %q answered %+v at cursor %d", first, last, user, resp, cursor)
				}
			case err == nil:
				if resp.AppliedIdx != last {
					t.Fatalf("accepted chunk [%d,%d] for %q left cursor at %d", first, last, user, resp.AppliedIdx)
				}
				if got := uint64(resp.Applied); got != last-cursor {
					t.Fatalf("chunk [%d,%d] for %q at cursor %d applied %d events, want %d", first, last, user, cursor, got, last-cursor)
				}
			case errors.Is(err, ErrMigrateGap):
				if !resp.Gap || resp.AppliedIdx != cursor || first <= cursor+1 {
					t.Fatalf("gap refusal %+v (%v) for chunk [%d,%d] of %q at cursor %d", resp, err, first, last, user, cursor)
				}
			default:
				t.Fatalf("untyped apply failure: %v", err)
			}
			if err == nil {
				wantDone := req.Total > 0 && resp.AppliedIdx >= req.Total
				if resp.Done != wantDone {
					t.Fatalf("chunk for %q at total %d, cursor %d: done=%v, want %v", user, req.Total, resp.AppliedIdx, resp.Done, wantDone)
				}
			}
			if got := ma.Cursor(user); got != resp.AppliedIdx {
				t.Fatalf("Cursor(%q) = %d, answer said %d", user, got, resp.AppliedIdx)
			}
			cursors[user] = resp.AppliedIdx
		}

		// Exactly-once per user, in order: the backend holds, for each user,
		// precisely positions 1..cursor — and the global count matches both the
		// model and the applier's own accounting.
		var wantTotal uint64
		perUser := make(map[string][]int)
		backend.mu.Lock()
		for _, ev := range backend.events {
			perUser[ev.User] = append(perUser[ev.User], int(ev.Value))
		}
		got := len(backend.events)
		backend.mu.Unlock()
		for user, cursor := range cursors {
			wantTotal += cursor
			seq := perUser[user]
			if uint64(len(seq)) != cursor {
				t.Fatalf("backend holds %d events for %q at cursor %d", len(seq), user, cursor)
			}
			for i, v := range seq {
				if v != i+1 {
					t.Fatalf("user %q event %d has position %d, want %d", user, i, v, i+1)
				}
			}
		}
		if uint64(got) != wantTotal {
			t.Fatalf("backend holds %d events, cursors total %d", got, wantTotal)
		}
		if ma.EventsApplied() != int64(wantTotal) {
			t.Fatalf("EventsApplied = %d, cursors total %d", ma.EventsApplied(), wantTotal)
		}
	})
}
