package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ganc/internal/ingest"
	"ganc/internal/serve"
)

// countingBackend is an exact-accounting ReplicaBackend: it records every
// applied event, advances its cursor by exactly the batch length, and bumps a
// version per apply call — so tests can assert that replication applied each
// committed event exactly once, in order, and never re-applied a duplicate.
type countingBackend struct {
	mu      sync.Mutex
	seq     uint64
	version int
	events  []serve.IngestEvent
	failErr error
}

// Seq implements ReplicaBackend.
func (b *countingBackend) Seq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Apply implements ReplicaBackend.
func (b *countingBackend) Apply(ctx context.Context, events []serve.IngestEvent) (serve.IngestResult, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failErr != nil {
		return serve.IngestResult{}, b.failErr
	}
	b.events = append(b.events, events...)
	b.seq += uint64(len(events))
	b.version++
	return serve.IngestResult{Applied: len(events), Seq: b.seq, Version: b.version}, nil
}

// evs builds a batch of n well-formed events whose values encode their
// ordinal, so ordering and exactly-once application are checkable.
func evs(start, n int) []serve.IngestEvent {
	out := make([]serve.IngestEvent, n)
	for i := range out {
		out[i] = serve.IngestEvent{
			User:  fmt.Sprintf("user-%d", (start+i)%7),
			Item:  fmt.Sprintf("item-%d", (start+i)%5),
			Value: float64(start + i),
		}
	}
	return out
}

// TestParseReplicateRequestRejectsHostileBodies: every malformed body must
// come back as a typed ErrReplicateBody — never a panic, never a silent
// acceptance.
func TestParseReplicateRequestRejectsHostileBodies(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"garbage", "not json at all"},
		{"truncated", `{"shard": 0, "events": [`},
		{"negative-shard", `{"shard": -1}`},
		{"zero-first-seq", `{"shard":0,"first_seq":0,"events":[{"user":"u","item":"i","value":1}]}`},
		{"seq-overflow", `{"shard":0,"first_seq":18446744073709551615,"events":[{"user":"u","item":"i","value":1},{"user":"u","item":"i","value":2}]}`},
		{"empty-user", `{"shard":0,"first_seq":1,"events":[{"user":"","item":"i","value":1}]}`},
		{"empty-item", `{"shard":0,"first_seq":1,"events":[{"user":"u","item":"","value":1}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseReplicateRequest(strings.NewReader(tc.body))
			if !errors.Is(err, ErrReplicateBody) {
				t.Fatalf("want ErrReplicateBody, got %v", err)
			}
		})
	}
	// An oversized batch is refused before any event is inspected.
	var sb strings.Builder
	sb.WriteString(`{"shard":0,"first_seq":1,"events":[`)
	for i := 0; i <= MaxReplicateEvents; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"user":"u","item":"i","value":1}`)
	}
	sb.WriteString(`]}`)
	if _, err := ParseReplicateRequest(strings.NewReader(sb.String())); !errors.Is(err, ErrReplicateBody) {
		t.Fatalf("oversized batch: want ErrReplicateBody, got %v", err)
	}
	// A well-formed body parses.
	req, err := ParseReplicateRequest(strings.NewReader(
		`{"shard":2,"epoch":3,"first_seq":5,"head_seq":9,"events":[{"user":"u","item":"i","value":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Shard != 2 || req.Epoch != 3 || req.FirstSeq != 5 || req.HeadSeq != 9 || len(req.Events) != 1 {
		t.Fatalf("parsed %+v", req)
	}
}

// TestReplicaApplierCursorRules pins the protocol's cursor arithmetic:
// in-order apply, idempotent duplicates, overlap skipping, gap refusal, and
// heartbeats — with exact cursor accounting after every call.
func TestReplicaApplierCursorRules(t *testing.T) {
	ctx := context.Background()
	b := &countingBackend{}
	ra := NewReplicaApplier(0, 1, b)

	// In-order batch 1..4 applies fully.
	resp, err := ra.Apply(ctx, &ReplicateRequest{Shard: 0, Epoch: 1, FirstSeq: 1, HeadSeq: 4, Events: evs(1, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.AppliedSeq != 4 || resp.Applied != 4 || resp.Version != 1 {
		t.Fatalf("in-order: %+v", resp)
	}

	// The exact same batch again is a duplicate: acknowledged, nothing applied.
	resp, err = ra.Apply(ctx, &ReplicateRequest{Shard: 0, Epoch: 1, FirstSeq: 1, HeadSeq: 4, Events: evs(1, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.AppliedSeq != 4 || resp.Applied != 0 {
		t.Fatalf("duplicate: %+v", resp)
	}
	if got := b.Seq(); got != 4 {
		t.Fatalf("cursor moved on duplicate: %d", got)
	}

	// A batch overlapping the cursor (3..6) applies only its suffix (5, 6).
	resp, err = ra.Apply(ctx, &ReplicateRequest{Shard: 0, Epoch: 1, FirstSeq: 3, HeadSeq: 6, Events: evs(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.AppliedSeq != 6 || resp.Applied != 2 {
		t.Fatalf("overlap: %+v", resp)
	}

	// A batch starting past cursor+1 is a gap: refused with the cursor.
	resp, err = ra.Apply(ctx, &ReplicateRequest{Shard: 0, Epoch: 1, FirstSeq: 9, HeadSeq: 10, Events: evs(9, 2)})
	if !errors.Is(err, ErrReplicateGap) {
		t.Fatalf("gap: want ErrReplicateGap, got %v", err)
	}
	if !resp.Gap || resp.AppliedSeq != 6 {
		t.Fatalf("gap response: %+v", resp)
	}
	if got := b.Seq(); got != 6 {
		t.Fatalf("cursor moved on gap: %d", got)
	}
	// The refused head announcement still counts toward lag.
	if st := ra.Status(); st.LagEvents != 4 || st.AppliedSeq != 6 || st.PrimarySeq != 10 {
		t.Fatalf("status after gap: %+v", st)
	}

	// A heartbeat applies nothing but advances the observed head.
	resp, err = ra.Apply(ctx, &ReplicateRequest{Shard: 0, Epoch: 1, HeadSeq: 12})
	if err != nil || resp.Applied != 0 || resp.AppliedSeq != 6 {
		t.Fatalf("heartbeat: %+v, %v", resp, err)
	}
	if st := ra.Status(); st.PrimarySeq != 12 || st.LagEvents != 6 {
		t.Fatalf("status after heartbeat: %+v", st)
	}

	// Exactly-once: sequence 1..6 applied, each value exactly once, in order.
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.events) != 6 {
		t.Fatalf("backend holds %d events, want 6", len(b.events))
	}
	for i, ev := range b.events {
		if ev.Value != float64(i+1) {
			t.Fatalf("event %d has value %v, want %d", i, ev.Value, i+1)
		}
	}
}

// TestReplicaApplierShardAndEpochRules: misaddressed batches and stale epochs
// are refused with typed sentinels; newer epochs are adopted.
func TestReplicaApplierShardAndEpochRules(t *testing.T) {
	ctx := context.Background()
	b := &countingBackend{}
	ra := NewReplicaApplier(1, 2, b)

	if _, err := ra.Apply(ctx, &ReplicateRequest{Shard: 0, Epoch: 2, FirstSeq: 1, Events: evs(1, 1)}); !errors.Is(err, ErrReplicateShard) {
		t.Fatalf("shard mismatch: want ErrReplicateShard, got %v", err)
	}
	if _, err := ra.Apply(ctx, &ReplicateRequest{Shard: 1, Epoch: 1, FirstSeq: 1, Events: evs(1, 1)}); !errors.Is(err, ErrReplicateEpoch) {
		t.Fatalf("stale epoch: want ErrReplicateEpoch, got %v", err)
	}
	if got := b.Seq(); got != 0 {
		t.Fatalf("refused batches moved the cursor to %d", got)
	}
	// A newer epoch (promotion landed before SetEpoch) is adopted.
	if _, err := ra.Apply(ctx, &ReplicateRequest{Shard: 1, Epoch: 5, FirstSeq: 1, Events: evs(1, 1)}); err != nil {
		t.Fatal(err)
	}
	if got := ra.Epoch(); got != 5 {
		t.Fatalf("epoch after adoption: %d, want 5", got)
	}
	// The old epoch is now refused.
	if _, err := ra.Apply(ctx, &ReplicateRequest{Shard: 1, Epoch: 2, FirstSeq: 2, Events: evs(2, 1)}); !errors.Is(err, ErrReplicateEpoch) {
		t.Fatalf("demoted primary: want ErrReplicateEpoch, got %v", err)
	}
}

// TestReplicateHandlerStatusMapping pins the HTTP error taxonomy of the
// /replicate endpoint: 400 replicate_body, 409 replicate_shard /
// replicate_epoch / replicate_gap, 500 replicate_apply, 405 on non-POST —
// and that every refusal still reports the replica's authoritative cursor.
func TestReplicateHandlerStatusMapping(t *testing.T) {
	b := &countingBackend{}
	ra := NewReplicaApplier(0, 1, b)
	ts := httptest.NewServer(ra.Handler())
	defer ts.Close()

	post := func(t *testing.T, body string) (int, ReplicateResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out ReplicateResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("undecodable answer: %v", err)
		}
		return resp.StatusCode, out
	}

	// Seed the replica at cursor 2.
	if status, out := post(t, `{"shard":0,"epoch":1,"first_seq":1,"head_seq":2,"events":[{"user":"a","item":"x","value":1},{"user":"b","item":"y","value":2}]}`); status != http.StatusOK || out.AppliedSeq != 2 {
		t.Fatalf("seed: status %d, %+v", status, out)
	}

	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"malformed", `{{{`, http.StatusBadRequest, "replicate_body"},
		{"wrong-shard", `{"shard":7,"epoch":1,"first_seq":3,"events":[{"user":"a","item":"x","value":1}]}`, http.StatusConflict, "replicate_shard"},
		{"stale-epoch", `{"shard":0,"epoch":0,"first_seq":3,"events":[{"user":"a","item":"x","value":1}]}`, http.StatusConflict, "replicate_epoch"},
		{"gap", `{"shard":0,"epoch":1,"first_seq":9,"events":[{"user":"a","item":"x","value":1}]}`, http.StatusConflict, "replicate_gap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, out := post(t, tc.body)
			if status != tc.status || out.Code != tc.code {
				t.Fatalf("status %d code %q, want %d %q", status, out.Code, tc.status, tc.code)
			}
			if out.AppliedSeq != 2 {
				t.Fatalf("refusal does not carry the cursor: %+v", out)
			}
			if out.Error == "" {
				t.Fatal("refusal without an error string")
			}
		})
	}
	// The gap refusal flags itself so the shipper rewinds.
	if _, out := post(t, `{"shard":0,"epoch":1,"first_seq":9,"events":[{"user":"a","item":"x","value":1}]}`); !out.Gap {
		t.Fatalf("gap answer not flagged: %+v", out)
	}

	// A backend failure is a 500 replicate_apply.
	b.mu.Lock()
	b.failErr = errors.New("disk on fire")
	b.mu.Unlock()
	if status, out := post(t, `{"shard":0,"epoch":1,"first_seq":3,"events":[{"user":"a","item":"x","value":1}]}`); status != http.StatusInternalServerError || out.Code != "replicate_apply" {
		t.Fatalf("apply failure: status %d, %+v", status, out)
	}
	b.mu.Lock()
	b.failErr = nil
	b.mu.Unlock()

	// GET is not a replication verb.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET answered %d", resp.StatusCode)
	}
}

// replicaServer mounts an applier-backed /replicate endpoint and returns its
// host:port address.
func replicaServer(t testing.TB, ra *ReplicaApplier) string {
	t.Helper()
	ts := httptest.NewServer(ra.Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// TestShipperInlineShipAndWALCatchUp drives the shipper through both of its
// modes: inline post-commit shipping while in sync, and WAL-fed background
// catch-up after the replica was unreachable — ending with exact cursor
// agreement on both sides.
func TestShipperInlineShipAndWALCatchUp(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "shard-000.wal")
	wal, err := ingest.OpenLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()

	b := &countingBackend{}
	ra := NewReplicaApplier(0, 1, b)
	addr := replicaServer(t, ra)

	sp := NewShipper(ShipperConfig{
		Shard: 0, Epoch: 1, WALPath: walPath, Replicas: []string{addr},
		ShipTimeout: 2 * time.Second, RetryBackoff: 5 * time.Millisecond, BatchEvents: 3,
	})
	defer sp.Close()

	// Inline mode: each committed batch lands on the replica synchronously.
	commit := func(n int) {
		t.Helper()
		batch := evs(int(wal.Seq())+1, n)
		first := wal.Seq() + 1
		if _, err := wal.Append(batch); err != nil {
			t.Fatal(err)
		}
		sp.Commit(first, batch)
	}
	commit(4)
	commit(2)
	if got := b.Seq(); got != 6 {
		t.Fatalf("replica cursor %d after inline ships, want 6", got)
	}
	if lag := sp.MaxLag(); lag != 0 {
		t.Fatalf("lag %d while in sync", lag)
	}

	// Catch-up mode: the primary commits while the replica's applier refuses
	// (simulated outage), then the WAL loop re-feeds it after recovery.
	b.mu.Lock()
	b.failErr = errors.New("replica down")
	b.mu.Unlock()
	commit(5) // fails inline → flips to catch-up
	commit(3) // already in catch-up mode: queued for the background loop
	if head := sp.Head(); head != 14 {
		t.Fatalf("committed head %d, want 14", head)
	}
	st := sp.Status()
	if len(st.Replicas) != 1 || st.Replicas[0].InSync {
		t.Fatalf("replica not flipped to catch-up: %+v", st.Replicas)
	}
	b.mu.Lock()
	b.failErr = nil
	b.mu.Unlock()
	if err := sp.WaitSync(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := b.Seq(); got != 14 {
		t.Fatalf("replica cursor %d after catch-up, want 14", got)
	}
	st = sp.Status()
	if !st.Replicas[0].InSync || st.Replicas[0].AckedSeq != 14 || st.Replicas[0].LagEvents != 0 {
		t.Fatalf("post-catch-up status: %+v", st.Replicas[0])
	}

	// Exactly-once across both modes: values 1..14, in order, no re-applies
	// despite the failed inline ships being retried from the WAL.
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.events) != 14 {
		t.Fatalf("replica applied %d events, want 14", len(b.events))
	}
	for i, ev := range b.events {
		if ev.Value != float64(i+1) {
			t.Fatalf("event %d has value %v, want %d", i, ev.Value, i+1)
		}
	}
}

// TestShipperResyncAdoptsReplicaCursor: a shipper booted with a wrong
// positional guess (primary restart) converges after one Resync heartbeat —
// ahead-guesses rewind to the replica's answer, behind-guesses catch up from
// the WAL.
func TestShipperResyncAdoptsReplicaCursor(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "shard-000.wal")
	wal, err := ingest.OpenLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	all := evs(1, 10)
	if _, err := wal.Append(all); err != nil {
		t.Fatal(err)
	}

	// The replica already holds 4 of the 10 events.
	b := &countingBackend{}
	ra := NewReplicaApplier(0, 1, b)
	if _, err := ra.Apply(context.Background(), &ReplicateRequest{Shard: 0, Epoch: 1, FirstSeq: 1, HeadSeq: 4, Events: all[:4]}); err != nil {
		t.Fatal(err)
	}
	addr := replicaServer(t, ra)

	// The restarted primary assumes the replica is current (StartSeq 10).
	sp := NewShipper(ShipperConfig{
		Shard: 0, Epoch: 1, WALPath: walPath, Replicas: []string{addr},
		StartSeq: 10, RetryBackoff: 5 * time.Millisecond,
	})
	defer sp.Close()
	if lag := sp.MaxLag(); lag != 0 {
		t.Fatalf("pre-resync guess should show no lag, got %d", lag)
	}
	sp.Resync()
	if err := sp.WaitSync(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := b.Seq(); got != 10 {
		t.Fatalf("replica cursor %d after resync catch-up, want 10", got)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, ev := range b.events {
		if ev.Value != float64(i+1) {
			t.Fatalf("event %d has value %v, want %d", i, ev.Value, i+1)
		}
	}
}

// TestShipperGapRewind: a replica that lost state (restart from an old
// snapshot) answers an inline ship with a gap; the shipper must rewind to the
// replica's cursor and re-feed the missing range from the WAL rather than
// erroring or skipping.
func TestShipperGapRewind(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "shard-000.wal")
	wal, err := ingest.OpenLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()

	b := &countingBackend{}
	ra := NewReplicaApplier(0, 1, b)
	addr := replicaServer(t, ra)

	// The primary believes the replica is at 6 (it is actually at 0): the
	// durable history is already in the WAL, and the next commit ships a
	// batch starting at 7 — a gap from the replica's point of view.
	if _, err := wal.Append(evs(1, 6)); err != nil {
		t.Fatal(err)
	}
	sp := NewShipper(ShipperConfig{
		Shard: 0, Epoch: 1, WALPath: walPath, Replicas: []string{addr},
		StartSeq: 6, RetryBackoff: 5 * time.Millisecond, BatchEvents: 4,
	})
	defer sp.Close()

	batch := evs(7, 2)
	if _, err := wal.Append(batch); err != nil {
		t.Fatal(err)
	}
	sp.Commit(7, batch)
	if err := sp.WaitSync(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := b.Seq(); got != 8 {
		t.Fatalf("replica cursor %d after gap rewind, want 8", got)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.events) != 8 {
		t.Fatalf("replica applied %d events, want 8 (no skips, no re-applies)", len(b.events))
	}
	for i, ev := range b.events {
		if ev.Value != float64(i+1) {
			t.Fatalf("event %d has value %v, want %d", i, ev.Value, i+1)
		}
	}
}

// TestShipperCommitNeverBlocksOnDeadReplica: a primary whose replica is
// unreachable keeps committing — Commit flips the replica to catch-up mode
// and returns; it must not propagate the failure or hang.
func TestShipperCommitNeverBlocksOnDeadReplica(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "shard-000.wal")
	wal, err := ingest.OpenLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()

	// A dead address: a closed listener refuses instantly.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := strings.TrimPrefix(dead.URL, "http://")
	dead.Close()

	sp := NewShipper(ShipperConfig{
		Shard: 0, Epoch: 1, WALPath: walPath, Replicas: []string{deadAddr},
		ShipTimeout: 200 * time.Millisecond, RetryBackoff: 10 * time.Millisecond,
	})
	defer sp.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		batch := evs(1, 3)
		if _, err := wal.Append(batch); err != nil {
			t.Error(err)
			return
		}
		sp.Commit(1, batch)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Commit blocked on a dead replica")
	}
	st := sp.Status()
	if len(st.Replicas) != 1 || st.Replicas[0].InSync || st.Replicas[0].Error == "" {
		t.Fatalf("dead replica not reported: %+v", st.Replicas)
	}
	if lag := sp.MaxLag(); lag != 3 {
		t.Fatalf("lag %d with a dead replica, want 3", lag)
	}
}

// TestShipperHandlesHostileReplicaAnswers: a "replica" that answers with
// attacker-controlled statuses and bodies must only ever produce errors on
// the primary — never a panic, never a cursor moving on garbage.
func TestShipperHandlesHostileReplicaAnswers(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "shard-000.wal")
	wal, err := ingest.OpenLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	batch := evs(1, 2)
	if _, err := wal.Append(batch); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name   string
		status int
		body   string
	}{
		{"garbage-200", http.StatusOK, "][ not json"},
		{"empty-500", http.StatusInternalServerError, ""},
		{"huge-answer", http.StatusOK, strings.Repeat("x", 2<<20)},
		{"teapot", http.StatusTeapot, `{"applied_seq": 99999}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			hostile := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(tc.status)
				fmt.Fprint(w, tc.body)
			}))
			defer hostile.Close()
			sp := NewShipper(ShipperConfig{
				Shard: 0, Epoch: 1, WALPath: walPath,
				Replicas:    []string{strings.TrimPrefix(hostile.URL, "http://")},
				ShipTimeout: time.Second, RetryBackoff: 5 * time.Millisecond,
			})
			defer sp.Close()
			sp.Commit(1, batch)
			st := sp.Status()
			if st.Replicas[0].InSync {
				t.Fatalf("hostile answer %q left the replica in sync", tc.name)
			}
			if tc.name == "teapot" && st.Replicas[0].AckedSeq != 0 {
				t.Fatalf("refusal body moved the acked cursor: %+v", st.Replicas[0])
			}
		})
	}
}

// TestReplicateRoundTripJSON pins the wire format: a request and response
// survive an encode/decode round trip field for field.
func TestReplicateRoundTripJSON(t *testing.T) {
	req := ReplicateRequest{Shard: 3, Epoch: 7, FirstSeq: 100, HeadSeq: 120, Events: evs(100, 2)}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReplicateRequest(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if back.Shard != req.Shard || back.Epoch != req.Epoch || back.FirstSeq != req.FirstSeq ||
		back.HeadSeq != req.HeadSeq || len(back.Events) != len(req.Events) {
		t.Fatalf("round trip: %+v", back)
	}
	for i := range req.Events {
		if back.Events[i] != req.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back.Events[i], req.Events[i])
		}
	}
}
