package cluster

import (
	"net/http"
	"strconv"

	"ganc/internal/admit"
	"ganc/internal/obs"
)

// routerMetrics is the router's per-shard instrument set, indexed by shard
// number. Slices are sized at construction (the ring's shard count is fixed
// for a router's lifetime), so recording is an index plus an atomic add —
// no map, no lock.
type routerMetrics struct {
	fanout    []*obs.Counter
	retries   []*obs.Counter
	failures  []*obs.Counter
	mismatch  []*obs.Gauge
	failovers []*obs.Counter
	replag    []*obs.Gauge

	// Reshard series are cluster-scalar (a reshard is one transition, not a
	// per-shard event); shards added by a reshard do not grow the per-shard
	// slices above — their calls are routed but not individually counted
	// until the router is rebuilt (documented in DESIGN.md §14).
	reshardUsers   *obs.Counter
	reshardDouble  *obs.Counter
	reshardCutover *obs.Gauge
}

// newRouterMetrics registers the per-shard families on reg.
func newRouterMetrics(reg *obs.Registry, shards int) *routerMetrics {
	rm := &routerMetrics{
		fanout:    make([]*obs.Counter, shards),
		retries:   make([]*obs.Counter, shards),
		failures:  make([]*obs.Counter, shards),
		mismatch:  make([]*obs.Gauge, shards),
		failovers: make([]*obs.Counter, shards),
		replag:    make([]*obs.Gauge, shards),
	}
	for i := 0; i < shards; i++ {
		label := obs.L("shard", strconv.Itoa(i))
		rm.fanout[i] = reg.Counter("ganc_router_fanout_total",
			"Shard calls issued by the router (one per logical call, retries excluded).", label)
		rm.retries[i] = reg.Counter("ganc_router_retries_total",
			"Retry attempts beyond the first call per shard.", label)
		rm.failures[i] = reg.Counter("ganc_router_shard_failures_total",
			"Shard calls that exhausted the retry budget.", label)
		rm.mismatch[i] = reg.Gauge("ganc_router_epoch_mismatch",
			"1 when the shard's snapshot was cut for a different ring epoch or shard count (0 otherwise).", label)
		rm.failovers[i] = reg.Counter("ganc_router_failovers_total",
			"Reads served by a replica after the shard's primary exhausted its retry budget.", label)
		rm.replag[i] = reg.Gauge("ganc_router_replica_lag_events",
			"Widest replica lag in committed events for the shard, as of the last /health aggregation.", label)
	}
	rm.reshardUsers = reg.Counter("ganc_router_reshard_users_migrated_total",
		"Users flipped to their new owner across all reshards this router has driven.")
	rm.reshardDouble = reg.Counter("ganc_router_reshard_double_dispatches_total",
		"Reads served from a user's old owner while the user's history was still migrating.")
	rm.reshardCutover = reg.Gauge("ganc_router_reshard_cutover_seconds",
		"Wall-clock width of the last reshard's transition window (begin to final ring publish).")
	return rm
}

// userFlipped records one user cut over to its new owner during a reshard.
func (rm *routerMetrics) userFlipped() {
	if rm != nil {
		rm.reshardUsers.Inc()
	}
}

// doubleDispatch records one read routed to a user's old owner mid-reshard.
func (rm *routerMetrics) doubleDispatch() {
	if rm != nil {
		rm.reshardDouble.Inc()
	}
}

// cutover records the last reshard's transition-window width.
func (rm *routerMetrics) cutover(seconds float64) {
	if rm != nil {
		rm.reshardCutover.Set(seconds)
	}
}

// call records one logical shard call.
func (rm *routerMetrics) call(shard int) {
	if rm != nil && shard >= 0 && shard < len(rm.fanout) {
		rm.fanout[shard].Inc()
	}
}

// retry records one retry attempt against a shard.
func (rm *routerMetrics) retry(shard int) {
	if rm != nil && shard >= 0 && shard < len(rm.retries) {
		rm.retries[shard].Inc()
	}
}

// failure records a shard call that exhausted its retry budget.
func (rm *routerMetrics) failure(shard int) {
	if rm != nil && shard >= 0 && shard < len(rm.failures) {
		rm.failures[shard].Inc()
	}
}

// failover records one read served by a replica after primary failure.
func (rm *routerMetrics) failover(shard int) {
	if rm != nil && shard >= 0 && shard < len(rm.failovers) {
		rm.failovers[shard].Inc()
	}
}

// replicaLag records the widest replica lag observed for a shard.
func (rm *routerMetrics) replicaLag(shard int, lag uint64) {
	if rm != nil && shard >= 0 && shard < len(rm.replag) {
		rm.replag[shard].Set(float64(lag))
	}
}

// epochMismatch records a probe's epoch verdict for a shard.
func (rm *routerMetrics) epochMismatch(shard int, mismatched bool) {
	if rm == nil || shard < 0 || shard >= len(rm.mismatch) {
		return
	}
	v := 0.0
	if mismatched {
		v = 1.0
	}
	rm.mismatch[shard].Set(v)
}

// requestMeta supplies the router's request-log fields: no serving shard or
// engine version (the router is stateless), just the admission client key.
func (rt *Router) requestMeta(r *http.Request) (*int, int, string) {
	return nil, 0, rt.admission.ClientKey(r)
}

// ShardAdmission is one shard's admission row in the router's aggregated
// /health answer: how much the shard is shedding and how saturated its
// concurrency cap is, as reported by the shard's own /health endpoint.
type ShardAdmission struct {
	// Shard is the shard number.
	Shard int `json:"shard"`
	// Stats is the shard's admission snapshot.
	admit.Stats
	// Shed is RateLimited + OverCapacity, precomputed for dashboards.
	Shed int64 `json:"shed"`
}
